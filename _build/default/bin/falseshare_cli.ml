(* Command-line front end.

   falseshare list                      -- the benchmark suite (Table 1)
   falseshare report  <workload>        -- compiler analysis + decisions
   falseshare source  <workload>        -- ParC source of a benchmark
   falseshare sim     <workload> [...]  -- cache simulation, N vs C vs P
   falseshare speedup <workload> [...]  -- KSR2 scalability curves
   falseshare fig3 | table2 | fig4 | table3 | stats | exectime
                                        -- reproduce the paper's evaluation *)

open Cmdliner
module E = Falseshare.Experiments
module Sim = Falseshare.Sim
module T = Fs_transform.Transform
module C = Fs_cache.Mpcache
module W = Fs_workloads.Workload
module Ws = Fs_workloads.Workloads

let workload_arg =
  let wconv =
    Arg.conv
      ( (fun s ->
          match Ws.find s with
          | w -> Ok w
          | exception Not_found ->
            Error
              (`Msg
                 (Printf.sprintf "unknown workload %S (try: %s)" s
                    (String.concat ", " (List.map (fun w -> w.W.name) Ws.all))))),
        fun fmt w -> Format.pp_print_string fmt w.W.name )
  in
  Arg.(required & pos 0 (some wconv) None & info [] ~docv:"WORKLOAD")

let nprocs_arg =
  Arg.(value & opt int 12 & info [ "p"; "procs" ] ~docv:"P" ~doc:"Processor count.")

let scale_arg =
  Arg.(value & opt (some int) None & info [ "s"; "scale" ] ~docv:"N" ~doc:"Problem scale.")

let block_arg =
  Arg.(value & opt int 128 & info [ "b"; "block" ] ~docv:"BYTES" ~doc:"Cache block size.")

let scale_of w = function Some s -> s | None -> w.W.default_scale

(* --- list --- *)

let list_cmd =
  let run () =
    let header = [ "name"; "description"; "versions"; "orig. LoC" ] in
    let rows =
      List.map
        (fun (w : W.t) ->
          [ w.name;
            w.description;
            String.concat "/"
              (List.map
                 (fun v ->
                   match v with W.N -> "N" | W.C -> "C" | W.P -> "P")
                 w.versions);
            string_of_int w.lines_of_c ])
        Ws.all
    in
    print_string (Fs_util.Table.render ~header rows)
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark suite (Table 1).")
    Term.(const run $ const ())

(* --- report --- *)

let report_cmd =
  let run w nprocs scale =
    let prog = w.W.build ~nprocs ~scale:(scale_of w scale) in
    let report = T.plan prog ~nprocs in
    Format.printf "%a@." T.pp_report report
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Run the compile-time analysis and print its decisions.")
    Term.(const run $ workload_arg $ nprocs_arg $ scale_arg)

(* --- source --- *)

let source_cmd =
  let run w nprocs scale =
    let prog = w.W.build ~nprocs ~scale:(scale_of w scale) in
    print_string (Fs_ir.Pp.program_to_string prog)
  in
  Cmd.v (Cmd.info "source" ~doc:"Print a benchmark's ParC source.")
    Term.(const run $ workload_arg $ nprocs_arg $ scale_arg)

(* --- sim --- *)

let sim_cmd =
  let run w nprocs scale block =
    let scale = scale_of w scale in
    let prog = w.W.build ~nprocs ~scale in
    let versions =
      List.filter_map
        (fun v ->
          match v with
          | W.N -> Some ("unoptimized", [])
          | W.C -> Some ("compiler", E.plan_for w W.C prog ~nprocs ~scale)
          | W.P -> Some ("programmer", E.plan_for w W.P prog ~nprocs ~scale))
        (if List.mem W.N w.versions then w.versions else W.N :: w.versions)
    in
    let header = [ "version"; "accesses"; "misses"; "false sharing"; "miss rate" ] in
    let rows =
      List.map
        (fun (name, plan) ->
          let r = Sim.cache_sim prog plan ~nprocs ~block in
          let c = r.Sim.counts in
          [ name;
            string_of_int (C.accesses c);
            string_of_int (C.misses c);
            string_of_int c.C.false_sh;
            Fs_util.Table.pct (C.miss_rate c) ])
        versions
    in
    print_string (Fs_util.Table.render ~header rows)
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Trace-driven cache simulation of a benchmark, one row per version.")
    Term.(const run $ workload_arg $ nprocs_arg $ scale_arg $ block_arg)

(* --- speedup --- *)

let speedup_cmd =
  let procs_arg =
    Arg.(value & opt (list int) [ 1; 2; 4; 8; 12; 16; 24; 32 ]
         & info [ "procs-list" ] ~docv:"P,P,..." ~doc:"Processor counts to sweep.")
  in
  let run w procs =
    let series = E.speedups ~procs ~names:[ w.W.name ] () in
    print_string (E.render_series series)
  in
  Cmd.v
    (Cmd.info "speedup" ~doc:"KSR2-model scalability curves for one benchmark.")
    Term.(const run $ workload_arg $ procs_arg)

(* --- hotspots --- *)

let hotspots_cmd =
  let version_arg =
    Arg.(value & opt string "unoptimized"
         & info [ "layout" ] ~docv:"V"
             ~doc:"Which layout: unoptimized, compiler, or programmer.")
  in
  let run w nprocs scale block version =
    let scale = scale_of w scale in
    let prog = w.W.build ~nprocs ~scale in
    let plan =
      match version with
      | "unoptimized" -> []
      | "compiler" -> E.plan_for w W.C prog ~nprocs ~scale
      | "programmer" -> E.plan_for w W.P prog ~nprocs ~scale
      | other -> failwith ("unknown version " ^ other)
    in
    let rows = Falseshare.Attribution.attribute prog plan ~nprocs ~block in
    print_string (Falseshare.Attribution.render rows)
  in
  Cmd.v
    (Cmd.info "hotspots"
       ~doc:
         "Attribute simulated misses back to the shared data structures — \
          the dynamic counterpart of the compiler's static report.")
    Term.(const run $ workload_arg $ nprocs_arg $ scale_arg $ block_arg $ version_arg)

(* --- check (.parc sources) --- *)

let check_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.parc")
  in
  let procs_for_run =
    Arg.(value & opt (some int) None
         & info [ "run" ] ~docv:"P" ~doc:"Also execute with P processes.")
  in
  let run file procs =
    let ic = open_in file in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    match Fs_parc.Parser.parse_and_validate src with
    | Error errs ->
      List.iter prerr_endline errs;
      exit 1
    | Ok prog ->
      Printf.printf "%s: ok (%d globals, %d functions)\n" prog.Fs_ir.Ast.pname
        (List.length prog.Fs_ir.Ast.globals)
        (List.length prog.Fs_ir.Ast.funcs);
      (match procs with
       | None -> ()
       | Some nprocs ->
         let report = T.plan prog ~nprocs in
         Format.printf "%a@." T.pp_report report)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and validate a ParC source file.")
    Term.(const run $ file_arg $ procs_for_run)

(* --- paper reproductions --- *)

let paper_cmd name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let fig3_cmd =
  paper_cmd "fig3" "Reproduce Figure 3 (miss rates before/after)." (fun () ->
      print_string (E.render_figure3 (E.figure3 ())))

let table2_cmd =
  paper_cmd "table2" "Reproduce Table 2 (reduction by transformation)." (fun () ->
      print_string (E.render_table2 (E.table2 ())))

let fig4_cmd =
  paper_cmd "fig4" "Reproduce Figure 4 (scalability curves)." (fun () ->
      print_string (E.render_series (E.figure4 ())))

let table3_cmd =
  paper_cmd "table3" "Reproduce Table 3 (maximum speedups)." (fun () ->
      print_string (E.render_table3 (E.table3 ())))

let stats_cmd =
  paper_cmd "stats" "Reproduce the headline statistics." (fun () ->
      print_string (E.render_stats (E.text_stats ())))

let exectime_cmd =
  paper_cmd "exectime" "Reproduce the execution-time improvements." (fun () ->
      print_string (E.render_exec (E.exec_time_improvements ())))

let () =
  let doc =
    "Compile-time shared-data transformations that reduce false sharing \
     (reproduction of Jeremiassen & Eggers, PPoPP 1995)."
  in
  let info = Cmd.info "falseshare" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; report_cmd; source_cmd; sim_cmd; speedup_cmd;
            hotspots_cmd; check_cmd; fig3_cmd;
            table2_cmd; fig4_cmd; table3_cmd; stats_cmd; exectime_cmd ]))
