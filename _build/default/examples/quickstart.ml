(* Quickstart: write a small explicitly parallel program, let the compiler
   find its false sharing, and measure the difference.

   Run with:  dune exec examples/quickstart.exe *)

open Fs_ir.Dsl
module T = Fs_transform.Transform
module Sim = Falseshare.Sim
module C = Fs_cache.Mpcache

(* Eight processes each increment their own counter half a thousand times.
   The counters are adjacent in memory: every increment invalidates every
   other process's cache block.  This is the textbook false-sharing bug. *)
let prog =
  Fs_ir.Validate.validate_exn
    (program ~name:"quickstart"
       ~globals:[ ("counter", arr int_t 8); ("total", int_t); ("l", lock_t) ]
       [ fn "main" []
           [ sfor "k" (i 0) (i 500) [ bump ((v "counter").%(pdv)) (i 1) ];
             barrier;
             lock (v "l");
             bump (v "total") (ld (v "counter").%(pdv));
             unlock (v "l") ] ])

let nprocs = 8
let block = 128

let () =
  (* 1. What does the program look like? *)
  print_endline "--- the program ---";
  print_string (Fs_ir.Pp.program_to_string prog);

  (* 2. Run the compile-time analysis and read its decisions. *)
  let report = T.plan prog ~nprocs in
  Format.printf "@.--- compiler report ---@.%a@." T.pp_report report;

  (* 3. Simulate both layouts on the multiprocessor cache. *)
  let show name plan =
    let r = Sim.cache_sim prog plan ~nprocs ~block in
    Printf.printf "%-12s misses=%5d  false-sharing=%5d  miss rate=%s\n" name
      (C.misses r.Sim.counts) r.Sim.counts.C.false_sh
      (Fs_util.Table.pct (C.miss_rate r.Sim.counts))
  in
  print_endline "--- simulation (128-byte blocks, 8 processors) ---";
  show "unoptimized" [];
  show "transformed" report.T.plan;

  (* 4. And on the KSR2 timing model. *)
  let cycles plan = (Sim.machine_sim prog plan ~nprocs).Sim.machine.Fs_machine.Ksr.cycles in
  let n = cycles [] and c = cycles report.T.plan in
  Printf.printf "--- execution time ---\nunoptimized %d cycles, transformed %d cycles (%.1fx)\n"
    n c (float_of_int n /. float_of_int c)
