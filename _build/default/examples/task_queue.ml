(* A dynamic task queue: tasks are handed out at run time, so no static
   index tells the compiler which process touches which task — yet each
   process writes slot [task*P + pid], and the congruence analysis still
   proves the slots per-process and regroups them (the Radiosity pattern).
   The queue lock also sits right next to the queue head, the classic
   co-allocation mistake lock padding repairs.

   Run with:  dune exec examples/task_queue.exe *)

open Fs_ir.Dsl
module T = Fs_transform.Transform
module Sim = Falseshare.Sim
module C = Fs_cache.Mpcache

let tasks = 96

let build ~nprocs =
  Fs_ir.Validate.validate_exn
    (program ~name:"task_queue"
       ~globals:
         [ ("result", arr int_t (tasks * nprocs));
           ("qhead", int_t);
           ("qlock", lock_t);
           ("done_", int_t);
         ]
       [ fn "main" []
           [ sfor "round" (i 0) (i 5)
               [ when_ (pdv ==% i 0) [ (v "qhead") <-- i 0 ];
                 barrier;
                 decl "more" (i 1);
                 swhile (p "more")
                   [ lock (v "qlock");
                     decl "t" (ld (v "qhead"));
                     sif (p "t" <% i tasks)
                       [ (v "qhead") <-- (p "t" +% i 1) ]
                       [ set "more" (i 0) ];
                     unlock (v "qlock");
                     when_ (p "more")
                       [ (* work on task t, accumulating into this
                            process's slot for the task *)
                         decl "acc" (i 0);
                         sfor "j" (i 0) (i 40)
                           [ set "acc" ((p "acc" +% (p "t" *% p "j")) %% i 7919) ];
                         bump ((v "result").%((p "t" *% i nprocs) +% pdv)) (p "acc") ] ];
                 barrier ];
             when_ (pdv ==% i 0) [ (v "done_") <-- i 1 ] ] ])

let () =
  let nprocs = 12 in
  let prog = build ~nprocs in
  let report = T.plan prog ~nprocs in
  Format.printf
    "dynamic task distribution: the analysis sees result[t*P + pid] with t \
     unknown,@.but the congruence domain still proves the slots disjoint per \
     process.@.@.plan: %a@.@."
    Fs_layout.Plan.pp report.T.plan;
  List.iter
    (fun (e : T.entry) ->
      if e.T.key.Fs_analysis.Summary.var = "result" then
        Format.printf "result: per-process writes = %b (%s)@.@."
          e.T.per_process_writes e.T.reason)
    report.T.entries;
  let show name plan =
    let r = Sim.cache_sim prog plan ~nprocs ~block:128 in
    Printf.printf "%-12s misses=%5d  false-sharing=%5d\n" name
      (C.misses r.Sim.counts) r.Sim.counts.C.false_sh
  in
  show "unoptimized" [];
  show "transformed" report.T.plan
