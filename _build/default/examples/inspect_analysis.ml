(* A tour of the compiler internals on a real benchmark: the per-process
   regular-section summaries (stage 1+3), the PDV set, the barrier phase
   structure (stage 2), and the transformation decisions.

   Run with:  dune exec examples/inspect_analysis.exe [workload]     *)

module W = Fs_workloads.Workload
module Ws = Fs_workloads.Workloads
module Summary = Fs_analysis.Summary
module Pdv = Fs_analysis.Pdv
module NC = Fs_analysis.Nonconcurrency
module CG = Fs_cfg.Callgraph
module T = Fs_transform.Transform
module Rsd = Fs_rsd.Rsd

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "pverify" in
  let w = try Ws.find name with Not_found ->
    Printf.eprintf "unknown workload %s; try one of: %s\n" name
      (String.concat ", " (List.map (fun (w : W.t) -> w.W.name) Ws.all));
    exit 1
  in
  let nprocs = 4 in
  let prog = w.W.build ~nprocs ~scale:1 in
  Printf.printf "=== %s (%s), analyzed for %d processes ===\n\n" w.W.name
    w.W.description nprocs;

  (* the call graph (used by every interprocedural stage) *)
  let cg = CG.build prog in
  Printf.printf "functions reachable from %s: %s\n" prog.Fs_ir.Ast.entry
    (String.concat ", " (CG.reachable cg));

  (* stage 2: barrier phase structure *)
  let nc = NC.analyze prog in
  Printf.printf "static phases: %d (barrier loop depths: %s)\n\n"
    (NC.phase_count nc)
    (String.concat ", " (List.map string_of_int (NC.barrier_depths nc)));

  (* PDV detection *)
  List.iter
    (fun fname ->
      match Pdv.pdv_privates (Pdv.analyze prog) fname with
      | [] -> ()
      | pdvs ->
        Printf.printf "PDV-derived privates in %s: %s\n" fname
          (String.concat ", " pdvs))
    (CG.reachable cg);

  (* stages 1+3: per-process sections, shown for the first processes *)
  let s = Summary.analyze prog ~nprocs in
  Printf.printf "\nper-process write sections (all phases):\n";
  List.iter
    (fun key ->
      let any =
        List.exists
          (fun pid ->
            not (Rsd.Set.is_empty (Summary.per_pid s ~pid key).Summary.writes))
          [ 0; 1 ]
      in
      if any then begin
        Printf.printf "  %s\n" (Summary.key_to_string key);
        List.iter
          (fun pid ->
            let a = Summary.per_pid s ~pid key in
            if not (Rsd.Set.is_empty a.Summary.writes) then
              Format.printf "    P%d: %a@." pid Rsd.Set.pp a.Summary.writes)
          [ 0; 1 ]
      end)
    (Summary.keys s);

  (* the decisions *)
  let report = T.plan prog ~nprocs in
  Format.printf "@.=== transformation decisions ===@.%a@." T.pp_report report
