examples/inspect_analysis.mli:
