examples/worker_stats.ml: Falseshare Format Fs_ir Fs_layout Fs_machine Fs_transform List Printf
