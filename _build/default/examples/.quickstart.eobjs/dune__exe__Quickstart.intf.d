examples/quickstart.mli:
