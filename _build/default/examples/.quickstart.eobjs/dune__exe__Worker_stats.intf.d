examples/worker_stats.mli:
