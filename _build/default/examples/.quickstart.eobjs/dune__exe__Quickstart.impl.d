examples/quickstart.ml: Falseshare Format Fs_cache Fs_ir Fs_machine Fs_transform Fs_util Printf
