examples/inspect_analysis.ml: Array Format Fs_analysis Fs_cfg Fs_ir Fs_rsd Fs_transform Fs_workloads List Printf String Sys
