examples/task_queue.ml: Falseshare Format Fs_analysis Fs_cache Fs_ir Fs_layout Fs_transform List Printf
