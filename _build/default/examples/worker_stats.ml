(* A histogram service: worker processes classify records into buckets and
   keep per-worker statistics embedded in the bucket records — the Pverify
   pattern (per-process fields inside shared records), which group &
   transpose cannot fix and indirection can.

   The example sweeps processor counts on the KSR2 model and prints the
   speedup of the unoptimized, compiler-transformed and hand-padded
   layouts side by side.

   Run with:  dune exec examples/worker_stats.exe *)

open Fs_ir.Dsl
module T = Fs_transform.Transform
module Sim = Falseshare.Sim
module Plan = Fs_layout.Plan

let buckets = 24
let records = 480

let build ~nprocs =
  let bucket =
    { Fs_ir.Ast.sname = "bucket";
      fields =
        [ ("lo", int_t);
          ("hi", int_t);
          ("hits", arr int_t nprocs);    (* per-worker! *)
          ("sum", arr int_t nprocs) ] }
  in
  Fs_ir.Validate.validate_exn
    (program ~name:"worker_stats" ~structs:[ bucket ]
       ~globals:[ ("bkt", arr (struct_t "bucket") buckets); ("out", int_t); ("l", lock_t) ]
       [ fn "main" []
           ([ when_ (pdv ==% i 0)
                [ sfor "b" (i 0) (i buckets)
                    [ (v "bkt").%(p "b").%{"lo"} <-- (p "b" *% i 100);
                      (v "bkt").%(p "b").%{"hi"} <-- ((p "b" +% i 1) *% i 100) ] ];
              barrier;
              decl "s" (i (12345));
              sfor "k" (i 0) (i (records / 1))
                [ set "s" (((p "s" *% i 1103515245) +% i 12345) %% i 1073741824);
                  when_ ((p "k" %% i nprocs) ==% pdv)
                    [ decl "b" (p "s" %% i buckets);
                      bump ((v "bkt").%(p "b").%{"hits"}.%(pdv)) (i 1);
                      bump ((v "bkt").%(p "b").%{"sum"}.%(pdv)) (p "s" %% i 97) ] ];
              barrier;
              lock (v "l");
              decl "mine" (i 0);
              sfor "b" (i 0) (i buckets)
                [ set "mine" (p "mine" +% ld (v "bkt").%(p "b").%{"hits"}.%(pdv)) ];
              bump (v "out") (p "mine");
              unlock (v "l") ])
       ])

let () =
  print_endline "per-worker statistics embedded in shared bucket records";
  print_endline "(speedup relative to the unoptimized uniprocessor run)\n";
  let base =
    (Sim.machine_sim (build ~nprocs:1) [] ~nprocs:1).Sim.machine.Fs_machine.Ksr.cycles
  in
  Printf.printf "%6s %12s %12s %12s\n" "procs" "unoptimized" "compiler" "hand-padded";
  List.iter
    (fun nprocs ->
      let prog = build ~nprocs in
      let speedup plan =
        let c = (Sim.machine_sim prog plan ~nprocs).Sim.machine.Fs_machine.Ksr.cycles in
        float_of_int base /. float_of_int c
      in
      let cplan = if nprocs = 1 then [] else (T.plan prog ~nprocs).T.plan in
      let hand =
        (* padding whole records: the natural manual fix, which still leaves
           the per-worker arrays falsely shared inside each record *)
        if nprocs = 1 then []
        else [ Plan.Pad_align { var = "bkt"; element = true }; Plan.Pad_locks ]
      in
      Printf.printf "%6d %12.1f %12.1f %12.1f\n" nprocs (speedup [])
        (speedup cplan) (speedup hand))
    [ 1; 2; 4; 8; 16; 32 ];
  let prog = build ~nprocs:8 in
  Format.printf "@.compiler plan at P=8: %a@." Plan.pp (T.plan prog ~nprocs:8).T.plan
