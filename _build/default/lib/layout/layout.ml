module Ast = Fs_ir.Ast
module Cells = Fs_ir.Cells
module Align = Fs_util.Align

type vlayout = { addr : int array; extra : int array }

type t = {
  block : int;
  table : (string, vlayout) Hashtbl.t;
  size : int;
}

let block t = t.block
let size t = t.size
let lookup t name = Hashtbl.find t.table name
let addr t name cell = (lookup t name).addr.(cell)

(* Allocation cursor over the simulated address space. *)
type cursor = { mutable pos : int }

let alloc_word cur =
  let a = cur.pos in
  cur.pos <- cur.pos + Ast.word_size;
  a

let align_to cur n = cur.pos <- Align.round_up cur.pos n

let err fmt = Format.kasprintf (fun s -> raise (Plan.Plan_error s)) fmt

let realize p plan ~block =
  if not (Align.is_power_of_two block) || block < Ast.word_size then
    invalid_arg "Layout.realize: block size must be a power of two >= word size";
  Plan.validate p plan;
  let pad_locks = List.mem Plan.Pad_locks plan in
  let cur = { pos = 0 } in
  let table = Hashtbl.create 16 in
  let vl_of name =
    match Hashtbl.find_opt table name with
    | Some vl -> vl
    | None ->
      let n = Cells.count p (Ast.find_global p name) in
      let vl = { addr = Array.make n (-1); extra = [||] } in
      Hashtbl.add table name vl;
      vl
  in
  (* Lock cells pulled out of their variables when the plan pads locks. *)
  let deferred_locks = ref [] in
  let place vl ty cell =
    if pad_locks && Cells.scalar_at p ty cell = Ast.Tlock then
      deferred_locks := (vl, cell) :: !deferred_locks
    else vl.addr.(cell) <- alloc_word cur
  in
  let claimed = Plan.transformed_vars plan in
  (* 1. Untransformed globals: packed, declaration order. *)
  List.iter
    (fun (name, ty) ->
      if not (List.mem name claimed) then begin
        let vl = vl_of name in
        for cell = 0 to Array.length vl.addr - 1 do
          place vl ty cell
        done
      end)
    p.Ast.globals;
  (* 2. Planned transformations, in plan order. *)
  let group_transpose vars pdv_axis =
    let metas =
      List.map
        (fun v ->
          let ty = Ast.find_global p v in
          match Cells.array_dims p ty with
          | Some (dims, elt) -> (vl_of v, ty, dims, Cells.count p elt)
          | None -> assert false (* validate checked *))
        vars
    in
    let extent =
      match metas with
      | (_, _, dims, _) :: _ -> List.nth dims pdv_axis
      | [] -> assert false
    in
    align_to cur block;
    for proc = 0 to extent - 1 do
      List.iter
        (fun (vl, ty, dims, elt_cells) ->
          for cell = 0 to Array.length vl.addr - 1 do
            let coords, _inner = Cells.coords_of_cell ~dims ~elt_cells cell in
            if List.nth coords pdv_axis = proc then place vl ty cell
          done)
        metas;
      align_to cur block
    done
  in
  let indirect var fields =
    let ty = Ast.find_global p var in
    let sname, nrecords =
      match ty with
      | Ast.Array (Ast.Struct s, n) -> (s, n)
      | _ -> assert false (* validate checked *)
    in
    let sdef = Ast.find_struct p sname in
    (* per field: cell offset in the record, total cells, per-process cells *)
    let metas =
      List.map
        (fun f ->
          let fty = List.assoc f sdef.fields in
          let per_proc_cells =
            match fty with
            | Ast.Array (elt, _) -> Cells.count p elt
            | _ -> assert false
          in
          (Cells.field_offset p sdef f, Cells.count p fty, per_proc_cells))
        fields
    in
    let pdv_extent =
      match List.assoc (List.hd fields) sdef.fields with
      | Ast.Array (_, n) -> n
      | _ -> assert false
    in
    let rec_cells = Cells.count p (Ast.Struct sname) in
    let vl = vl_of var in
    let vl = { vl with extra = Array.make (Array.length vl.addr) (-1) } in
    Hashtbl.replace table var vl;
    (* Record region: each listed field collapses to one pointer cell. *)
    let nfields = List.length fields in
    let ptr_addrs = Array.make_matrix nrecords nfields (-1) in
    let field_at c =
      let rec go i = function
        | [] -> None
        | (off, cells, _) :: rest ->
          if c >= off && c < off + cells then Some (i, c = off) else go (i + 1) rest
      in
      go 0 metas
    in
    for r = 0 to nrecords - 1 do
      let base = r * rec_cells in
      for c = 0 to rec_cells - 1 do
        match field_at c with
        | Some (fi, true) -> ptr_addrs.(r).(fi) <- alloc_word cur
        | Some (_, false) -> ()
        | None -> place vl ty (base + c)
      done
    done;
    (* Per-process data areas: process p's slice of every listed field of
       every record, grouped record-major for processor locality. *)
    for proc = 0 to pdv_extent - 1 do
      align_to cur block;
      for r = 0 to nrecords - 1 do
        List.iteri
          (fun fi (off, _, ppc) ->
            for inner = 0 to ppc - 1 do
              let cell = (r * rec_cells) + off + (proc * ppc) + inner in
              place vl ty cell;
              vl.extra.(cell) <- ptr_addrs.(r).(fi)
            done)
          metas
      done
    done;
    align_to cur block
  in
  let regroup var ways chunked =
    let ty = Ast.find_global p var in
    let extent, elt_cells =
      match ty with
      | Ast.Array (elt, n) -> (n, Cells.count p elt)
      | _ -> assert false (* validate checked *)
    in
    let vl = vl_of var in
    let chunk = (extent + ways - 1) / ways in
    let group_of i = if chunked then i / chunk else i mod ways in
    for g = 0 to ways - 1 do
      align_to cur block;
      for i = 0 to extent - 1 do
        if group_of i = g then
          for c = 0 to elt_cells - 1 do
            place vl ty ((i * elt_cells) + c)
          done
      done
    done;
    align_to cur block
  in
  let pad_align var element =
    let ty = Ast.find_global p var in
    let vl = vl_of var in
    align_to cur block;
    (match (element, ty) with
     | true, Ast.Array (elt, n) ->
       let elt_cells = Cells.count p elt in
       for i = 0 to n - 1 do
         for c = 0 to elt_cells - 1 do
           place vl ty ((i * elt_cells) + c)
         done;
         align_to cur block
       done
     | _, _ ->
       for cell = 0 to Array.length vl.addr - 1 do
         place vl ty cell
       done);
    align_to cur block
  in
  List.iter
    (function
      | Plan.Group_transpose { vars; pdv_axis } -> group_transpose vars pdv_axis
      | Plan.Indirect { var; fields } -> indirect var fields
      | Plan.Pad_align { var; element } -> pad_align var element
      | Plan.Regroup { var; ways; chunked } -> regroup var ways chunked
      | Plan.Pad_locks -> ())
    plan;
  (* 3. Deferred lock cells: one block each. *)
  List.iter
    (fun (vl, cell) ->
      align_to cur block;
      vl.addr.(cell) <- alloc_word cur)
    (List.rev !deferred_locks);
  align_to cur block;
  (* Every cell must have an address. *)
  Hashtbl.iter
    (fun name vl ->
      Array.iteri
        (fun i a -> if a < 0 then err "internal: cell %d of %s unplaced" i name)
        vl.addr)
    table;
  { block; table; size = cur.pos }

let default p ~block = realize p Plan.empty ~block

let check_disjoint t =
  let seen = Hashtbl.create 4096 in
  let result = ref (Ok ()) in
  let note what a =
    match Hashtbl.find_opt seen a with
    | Some prev when prev <> what ->
      (* The same pointer cell is shared across the cells of one record, so
         duplicates of an identical owner label are fine for extras. *)
      if !result = Ok () then
        result := Error (Printf.sprintf "address 0x%x used by %s and %s" a prev what)
    | Some _ -> ()
    | None -> Hashtbl.add seen a what
  in
  Hashtbl.iter
    (fun name vl ->
      Array.iteri (fun i a -> note (Printf.sprintf "%s[%d]" name i) a) vl.addr)
    t.table;
  Hashtbl.iter
    (fun name vl ->
      Array.iter
        (fun a -> if a >= 0 then note (Printf.sprintf "%s.ptr[%d]" name a) a)
        vl.extra)
    t.table;
  !result

let touched_blocks t name =
  let vl = lookup t name in
  let set = Hashtbl.create 64 in
  Array.iter (fun a -> Hashtbl.replace set (Align.block_of ~block:t.block a) ()) vl.addr;
  List.sort compare (Hashtbl.fold (fun b () acc -> b :: acc) set [])
