lib/layout/plan.ml: Format Fs_ir Hashtbl List String
