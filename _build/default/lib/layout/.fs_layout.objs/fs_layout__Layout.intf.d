lib/layout/layout.mli: Fs_ir Plan
