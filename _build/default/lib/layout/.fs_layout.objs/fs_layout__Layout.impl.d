lib/layout/layout.ml: Array Format Fs_ir Fs_util Hashtbl List Plan Printf
