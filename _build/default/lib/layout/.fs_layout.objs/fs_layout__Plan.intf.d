lib/layout/plan.mli: Format Fs_ir
