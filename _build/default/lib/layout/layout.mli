(** Realizing a transformation plan as a memory layout.

    A layout maps every scalar cell of every shared global to a physical
    byte address — the {e address oracle}.  The interpreter consults it on
    every access, so applying a plan here is observationally equivalent to
    the source-to-source restructuring of the paper: the simulated machines
    only ever see the resulting address stream.

    The default (empty-plan) layout packs all globals contiguously in
    declaration order, cells in C order, with no padding — the natural
    allocation that gives rise to false sharing.

    Padding binds to the cache-block size given at realization time, which
    mirrors the paper's compiler padding data to the target architecture's
    coherence-unit size. *)

type vlayout = {
  addr : int array;
      (** cell id -> byte address *)
  extra : int array;
      (** cell id -> address of an injected pointer load preceding the
          access, or -1; [\[||\]] when the variable has no indirection *)
}

type t

val realize : Fs_ir.Ast.program -> Plan.t -> block:int -> t
(** @raise Plan.Plan_error when the plan does not fit the program. *)

val default : Fs_ir.Ast.program -> block:int -> t
(** [realize p Plan.empty ~block]. *)

val block : t -> int
val size : t -> int
(** Total bytes spanned, rounded up to a whole block. *)

val lookup : t -> string -> vlayout
(** @raise Not_found for names that are not globals of the program. *)

val addr : t -> string -> int -> int
(** [addr t var cell] — convenience for tests. *)

val check_disjoint : t -> (unit, string) result
(** Verifies that no two cells (or injected pointer cells) share a byte
    address — a layout invariant that property tests exercise. *)

val touched_blocks : t -> string -> int list
(** Sorted list of distinct block numbers occupied by the variable's cells
    (not counting injected pointer cells). *)
