lib/parc/lexer.ml: List Printf String
