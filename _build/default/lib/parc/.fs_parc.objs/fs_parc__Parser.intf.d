lib/parc/parser.mli: Fs_ir
