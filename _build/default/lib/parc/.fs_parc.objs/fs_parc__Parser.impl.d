lib/parc/parser.ml: Fs_ir Lexer List Printf Result
