lib/parc/lexer.mli:
