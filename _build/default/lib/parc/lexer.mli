(** Tokenizer for ParC's concrete syntax. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | BQ_IDENT of string  (** backtick-quoted infix, e.g. [`min`] *)
  | KW of string        (** reserved word *)
  | PUNCT of string     (** operator or punctuation, longest match *)
  | EOF

val keywords : string list

val tokenize : string -> (token * int) list
(** Token stream with line numbers, ending in [EOF].
    @raise Failure on an unexpected character, with a line number. *)

val to_string : token -> string
