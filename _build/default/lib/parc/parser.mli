(** Recursive-descent parser for ParC's concrete syntax — the inverse of
    {!Fs_ir.Pp}.  [parse (Pp.program_to_string p)] re-prints to exactly the
    same text (property-tested). *)

exception Parse_error of string
(** Carries a line number and what was expected. *)

val parse : string -> Fs_ir.Ast.program
(** @raise Parse_error on syntax errors. *)

val parse_result : string -> (Fs_ir.Ast.program, string) result

val parse_and_validate : string -> (Fs_ir.Ast.program, string list) result
(** Parse, then run {!Fs_ir.Validate.check}. *)
