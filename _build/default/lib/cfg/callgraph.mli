(** Interprocedural call graph of a ParC program.

    Feeds the interprocedural parts of all three analysis stages: which
    functions are reachable from the SPMD entry, which are recursive (their
    side-effect walks are cut off rather than followed forever), and how
    many static barrier synchronizations a call executes (so the
    non-concurrency analysis can number phases across call boundaries). *)

type t

val build : Fs_ir.Ast.program -> t

val callees : t -> string -> string list
(** Distinct direct callees, in first-call order.
    @raise Not_found for an unknown function. *)

val callers : t -> string -> string list
(** Distinct direct callers, unordered. *)

val reachable : t -> string list
(** Functions reachable from the entry, entry first, preorder. *)

val is_recursive : t -> string -> bool
(** True when the function lies on a call-graph cycle (including self
    recursion). *)

val barriers_in : t -> string -> int
(** Static barrier count of one activation: barriers in the body (loop
    bodies counted once) plus, recursively, those of every call site.
    Calls to recursive functions contribute their body's own count once. *)
