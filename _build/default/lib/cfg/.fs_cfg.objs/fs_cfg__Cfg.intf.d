lib/cfg/cfg.mli: Format Fs_ir
