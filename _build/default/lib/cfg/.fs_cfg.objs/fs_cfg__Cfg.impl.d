lib/cfg/cfg.ml: Array Format Fs_ir Fun List Printf String
