lib/cfg/callgraph.mli: Fs_ir
