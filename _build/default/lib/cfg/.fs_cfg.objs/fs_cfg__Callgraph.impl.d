lib/cfg/callgraph.ml: Fs_ir Hashtbl List
