(** Intraprocedural control-flow graphs over ParC's structured statements.

    Stage 1 of the paper annotates control-flow-graph nodes with the set of
    processes that execute them; this module provides the graph itself:
    basic blocks of straight-line statements linked by edges, with branch
    nodes recording the controlling expression so that the per-process
    analysis can test whether it is decided by the PDV. *)

type node_id = int

type node_kind =
  | Entry
  | Exit
  | Straight of Fs_ir.Ast.stmt list
      (** simple statements: stores, private sets, calls, sync ops *)
  | Branch of Fs_ir.Ast.expr
      (** two successors: the true edge first, then the false edge *)
  | Loop_head of Fs_ir.Ast.expr
      (** two successors: the body edge first, then the exit edge *)

type t

val build : Fs_ir.Ast.func -> t

val entry : t -> node_id
val exit_node : t -> node_id
val kind : t -> node_id -> node_kind
val succs : t -> node_id -> node_id list
val preds : t -> node_id -> node_id list
val nodes : t -> node_id list
(** All node ids in creation order (entry first). *)

val loop_depth : t -> node_id -> int
(** Number of enclosing loops of the node (0 at top level). *)

val pp : Format.formatter -> t -> unit
