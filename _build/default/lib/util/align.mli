(** Alignment arithmetic on byte addresses and sizes. *)

val round_up : int -> int -> int
(** [round_up n align] is the smallest multiple of [align] that is [>= n].
    @raise Invalid_argument if [align <= 0] or [n < 0]. *)

val is_aligned : int -> int -> bool
(** [is_aligned n align] holds when [n] is a multiple of [align]. *)

val block_of : block:int -> int -> int
(** [block_of ~block addr] is the block number containing byte [addr]. *)

val word_of : word:int -> int -> int
(** [word_of ~word addr] is the word number containing byte [addr]. *)

val is_power_of_two : int -> bool
