(** Deterministic splittable pseudo-random number generator.

    Every stochastic choice in the workload generators draws from one of
    these, seeded from the experiment parameters, so that every experiment
    is exactly reproducible.  The implementation is SplitMix64. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] is advanced. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val bool : t -> bool

val bits64 : t -> int64
(** The raw 64-bit output of the generator. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
