(** Small numeric helpers used when aggregating experiment results. *)

val mean : float list -> float
(** Arithmetic mean; 0.0 for the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0.0 for the empty list.
    @raise Invalid_argument on non-positive entries. *)

val ratio : int -> int -> float
(** [ratio num den] is [num /. den], or 0.0 when [den = 0]. *)

val argmax : ('a -> float) -> 'a list -> 'a option
(** Element maximizing [f]; [None] on the empty list.  Ties keep the first. *)
