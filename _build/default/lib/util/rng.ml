type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_seed t =
  let s = Int64.add t.state golden_gamma in
  t.state <- s;
  s

(* SplitMix64 output mix. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t = mix64 (next_seed t)

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* truncating a 63-bit value into an OCaml int can wrap negative, so mask
     down to the non-negative range explicitly *)
  let r = Int64.to_int (bits64 t) land max_int in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 significant bits, as in the standard doubles-from-bits recipe *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
