let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let geomean = function
  | [] -> 0.0
  | l ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive entry";
          acc +. log x)
        0.0 l
    in
    exp (log_sum /. float_of_int (List.length l))

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let argmax f = function
  | [] -> None
  | x :: rest ->
    let best, _ =
      List.fold_left
        (fun (bx, bv) y ->
          let v = f y in
          if v > bv then (y, v) else (bx, bv))
        (x, f x) rest
    in
    Some best
