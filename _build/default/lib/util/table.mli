(** Plain-text table rendering for experiment output. *)

type align = Left | Right

val render :
  ?header:string list ->
  ?aligns:align list ->
  string list list ->
  string
(** [render ?header ?aligns rows] lays the rows out in fixed-width columns
    separated by two spaces, with an underline below the header when one is
    given.  [aligns] defaults to left for the first column and right for the
    rest.  Ragged rows are padded with empty cells. *)

val pct : float -> string
(** [pct f] formats a fraction as a percentage with one decimal, e.g.
    [pct 0.565 = "56.5%"]. *)

val f1 : float -> string
(** One-decimal float. *)

val f2 : float -> string
(** Two-decimal float. *)
