let round_up n align =
  if align <= 0 then invalid_arg "Align.round_up: align must be positive";
  if n < 0 then invalid_arg "Align.round_up: n must be non-negative";
  (n + align - 1) / align * align

let is_aligned n align = n mod align = 0
let block_of ~block addr = addr / block
let word_of ~word addr = addr / word
let is_power_of_two n = n > 0 && n land (n - 1) = 0
