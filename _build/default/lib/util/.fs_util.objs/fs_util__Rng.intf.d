lib/util/rng.mli:
