lib/util/table.mli:
