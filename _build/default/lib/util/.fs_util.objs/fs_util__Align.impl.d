lib/util/align.ml:
