lib/util/align.mli:
