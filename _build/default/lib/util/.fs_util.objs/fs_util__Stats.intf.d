lib/util/stats.mli:
