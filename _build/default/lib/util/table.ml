type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?header ?aligns rows =
  let all = match header with None -> rows | Some h -> h :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  if ncols = 0 then ""
  else begin
    let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
    let width i =
      List.fold_left (fun acc r -> max acc (String.length (cell r i))) 0 all
    in
    let widths = Array.init ncols width in
    let align_of i =
      match aligns with
      | Some l -> (match List.nth_opt l i with Some a -> a | None -> Right)
      | None -> if i = 0 then Left else Right
    in
    let line row =
      String.concat "  "
        (List.init ncols (fun i -> pad (align_of i) widths.(i) (cell row i)))
    in
    let body = List.map line rows in
    let lines =
      match header with
      | None -> body
      | Some h ->
        let rule =
          String.concat "  "
            (List.init ncols (fun i -> String.make widths.(i) '-'))
        in
        line h :: rule :: body
    in
    String.concat "\n" lines ^ "\n"
  end

let pct f = Printf.sprintf "%.1f%%" (100.0 *. f)
let f1 f = Printf.sprintf "%.1f" f
let f2 f = Printf.sprintf "%.2f" f
