(** Bounded regular section descriptors with static-profile weights.

    A descriptor summarizes the array section touched by one or more
    textual references: one {!Sym.t} per array dimension, plus the
    estimated dynamic frequency of the references it summarizes.

    Descriptor lists are {e bounded} as in the paper (Section 3.1): a new
    descriptor is merged into an existing one when they differ in at most
    one dimension (little or no information lost), and when a list would
    exceed its limit the two most similar descriptors are merged.  The
    paper reports no array needing more than 10 descriptors; 10 is the
    default limit. *)

type t = { dims : Sym.t array; weight : float }

val create : Sym.t array -> weight:float -> t
val pp : Format.formatter -> t -> unit

val overlaps : t -> t -> bool
(** Do the described sections possibly intersect?  True for scalars
    (zero-dimensional sections are the whole variable). *)

val merge : t -> t -> t
(** Dimension-wise union; weights add. *)

(** Bounded descriptor lists. *)
module Set : sig
  type rsd := t
  type t

  val default_limit : int
  val empty : ?limit:int -> unit -> t
  val is_empty : t -> bool
  val add : t -> rsd -> t
  val union : t -> t -> t
  val to_list : t -> rsd list
  val total_weight : t -> float
  val cardinal : t -> int

  val overlaps : t -> t -> bool
  (** May any descriptor of one set intersect any of the other? *)

  val pp : Format.formatter -> t -> unit
end
