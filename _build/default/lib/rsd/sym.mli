(** Abstract index values for the summary side-effect analysis.

    The per-process analysis walks a process's code with its PDV bound to a
    concrete process id, so index expressions evaluate to one of: a known
    constant, a strided interval (the footprint of a loop induction
    variable), or Unknown.  These are the per-dimension entries of a
    bounded regular section descriptor [HK91]: simple invariant expression,
    range with bounds and stride, or unknown. *)

type t =
  | Const of int
  | Interval of { lo : int; hi : int; stride : int }
      (** inclusive bounds; [stride >= 1]; represents
          [{lo, lo+stride, ...} ∩ [lo, hi]] *)
  | Strided of int
      (** a section with unknown placement but known stride: the result of
          adding a dense loop range to an unknown base.  Records the
          "stride known" factor of the paper's heuristics even when the
          bounds are not derivable. *)
  | Congruent of { m : int; r : int }
      (** values congruent to [r] modulo [m] ([m >= 2]), bounds unknown:
          the footprint of [task*P + pid] when [task] comes from a dynamic
          work queue.  Two sections congruent to different residues are
          disjoint — how per-process structure survives dynamic work
          distribution, as it does under the paper's PDV-symbolic
          descriptors. *)
  | Unknown

val const : int -> t
val interval : lo:int -> hi:int -> stride:int -> t
(** Normalizes: an empty range is Unknown-free bottom-ish [Const lo] when
    [lo = hi]; [lo > hi] raises [Invalid_argument]. *)

val stride_of : t -> int option
(** The access stride when known ([Const] counts as stride 1;
    [Congruent] sections have stride [m]). *)

val congruent : m:int -> r:int -> t
(** Normalizes: [m < 2] gives [Unknown]; [r] is reduced into [\[0, m)]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Arithmetic} (conservative: Unknown wherever precision is lost) *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val mod_ : t -> t -> t
val neg : t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

(** {1 Queries} *)

val bounds : t -> (int * int) option
(** [Some (lo, hi)] when both bounds are known. *)

val lt : t -> t -> bool option
val le : t -> t -> bool option
val eq : t -> t -> bool option
(** Decide a comparison when the abstract values permit; [None] otherwise. *)

val overlaps : t -> t -> bool
(** May the two sections share an element?  Conservative (never a false
    "disjoint").  [Unknown] overlaps everything. *)

val union : t -> t -> t
(** Smallest representable section containing both (over-approximate). *)

val points : t -> extent:int -> int list
(** Concrete elements within [\[0, extent)]: all of them for [Unknown]. *)
