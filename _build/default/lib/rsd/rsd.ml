type t = { dims : Sym.t array; weight : float }

let create dims ~weight = { dims; weight }

let pp fmt t =
  Format.fprintf fmt "(";
  Array.iteri
    (fun i d ->
      if i > 0 then Format.pp_print_string fmt ", ";
      Sym.pp fmt d)
    t.dims;
  Format.fprintf fmt ")*%.1f" t.weight

let overlaps a b =
  Array.length a.dims = Array.length b.dims
  && Array.for_all2 (fun x y -> Sym.overlaps x y) a.dims b.dims

let merge a b =
  if Array.length a.dims <> Array.length b.dims then
    invalid_arg "Rsd.merge: rank mismatch";
  {
    dims = Array.map2 Sym.union a.dims b.dims;
    weight = a.weight +. b.weight;
  }

(* Number of dimensions on which the two descriptors agree exactly. *)
let agreement a b =
  let n = Array.length a.dims in
  let rec go i acc =
    if i >= n then acc
    else go (i + 1) (if Sym.equal a.dims.(i) b.dims.(i) then acc + 1 else acc)
  in
  go 0 0

module Set = struct
  type rsd = t

  type t = { limit : int; items : rsd list }

  let default_limit = 10
  let empty ?(limit = default_limit) () = { limit; items = [] }
  let is_empty t = t.items = []
  let to_list t = t.items
  let cardinal t = List.length t.items
  let total_weight t = List.fold_left (fun acc r -> acc +. r.weight) 0.0 t.items

  (* Merge the two most similar descriptors to get back under the limit. *)
  let compact items =
    let arr = Array.of_list items in
    let n = Array.length arr in
    let best = ref (0, 1, -1) in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let a = agreement arr.(i) arr.(j) in
        let _, _, ba = !best in
        if a > ba then best := (i, j, a)
      done
    done;
    let i, j, _ = !best in
    let merged = merge arr.(i) arr.(j) in
    merged
    :: List.filteri (fun k _ -> k <> i && k <> j) items

  let add t r =
    if Array.length r.dims > 0 || t.items = [] then begin
      (* merge into an existing descriptor differing in at most one dim *)
      let n = Array.length r.dims in
      let rec place acc = function
        | [] -> None
        | x :: rest ->
          if Array.length x.dims = n && agreement x r >= n - 1 then
            Some (List.rev_append acc (merge x r :: rest))
          else place (x :: acc) rest
      in
      match place [] t.items with
      | Some items -> { t with items }
      | None ->
        let items = r :: t.items in
        if List.length items > t.limit then { t with items = compact items }
        else { t with items }
    end
    else
      (* scalar descriptors always coincide *)
      match t.items with
      | x :: rest -> { t with items = merge x r :: rest }
      | [] -> assert false

  let union a b = List.fold_left add a b.items

  let overlaps a b =
    List.exists (fun x -> List.exists (fun y -> overlaps x y) b.items) a.items

  let pp fmt t =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " | ")
      pp fmt t.items
end
