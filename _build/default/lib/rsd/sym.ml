type t =
  | Const of int
  | Interval of { lo : int; hi : int; stride : int }
  | Strided of int
  | Congruent of { m : int; r : int }
  | Unknown

let const n = Const n

let interval ~lo ~hi ~stride =
  if lo > hi then invalid_arg "Sym.interval: lo > hi";
  let stride = if stride <= 0 then 1 else stride in
  (* normalize the upper bound to the last reachable member, so that both
     endpoints are members and negation maps the stride class correctly *)
  let hi = lo + ((hi - lo) / stride * stride) in
  if lo = hi then Const lo else Interval { lo; hi; stride }

let congruent ~m ~r =
  if m < 2 then Unknown
  else
    let r = ((r mod m) + m) mod m in
    Congruent { m; r }

let equal a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | Interval a, Interval b -> a.lo = b.lo && a.hi = b.hi && a.stride = b.stride
  | Strided x, Strided y -> x = y
  | Congruent a, Congruent b -> a.m = b.m && a.r = b.r
  | Unknown, Unknown -> true
  | _ -> false

let pp fmt = function
  | Const n -> Format.fprintf fmt "%d" n
  | Interval { lo; hi; stride } ->
    if stride = 1 then Format.fprintf fmt "[%d:%d]" lo hi
    else Format.fprintf fmt "[%d:%d:%d]" lo hi stride
  | Strided s -> Format.fprintf fmt "?:%d" s
  | Congruent { m; r } -> Format.fprintf fmt "%d mod %d" r m
  | Unknown -> Format.pp_print_string fmt "?"

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let stride_of = function
  | Const _ -> Some 1
  | Interval { stride; _ } -> Some stride
  | Strided s -> Some s
  | Congruent { m; _ } -> Some m
  | Unknown -> None

let add a b =
  match (a, b) with
  | Const x, Const y -> Const (x + y)
  | Const x, Interval i | Interval i, Const x ->
    interval ~lo:(i.lo + x) ~hi:(i.hi + x) ~stride:i.stride
  | Interval i, Interval j ->
    interval ~lo:(i.lo + j.lo) ~hi:(i.hi + j.hi) ~stride:(gcd i.stride j.stride)
  | Strided s, Const _ | Const _, Strided s -> Strided s
  | Strided s, Interval i | Interval i, Strided s -> Strided (max 1 (gcd s i.stride))
  | Strided s, Strided s' -> Strided (max 1 (gcd s s'))
  | Congruent { m; r }, Const c | Const c, Congruent { m; r } ->
    congruent ~m ~r:(r + c)
  | Congruent { m; r }, Interval i | Interval i, Congruent { m; r } ->
    if i.stride mod m = 0 then congruent ~m ~r:(r + i.lo)
    else Strided (max 1 (gcd m i.stride))
  | Congruent a, Congruent b ->
    let g = gcd a.m b.m in
    if g >= 2 then congruent ~m:g ~r:(a.r + b.r) else Unknown
  | Congruent { m; _ }, Strided s | Strided s, Congruent { m; _ } ->
    Strided (max 1 (gcd m s))
  (* an unknown point shifted by a strided range keeps the stride *)
  | Unknown, Interval i | Interval i, Unknown -> Strided i.stride
  | Unknown, Strided s | Strided s, Unknown -> Strided s
  | Unknown, (Const _ | Congruent _ | Unknown) | (Const _ | Congruent _), Unknown
    -> Unknown

let neg = function
  | Const n -> Const (-n)
  | Interval { lo; hi; stride } -> interval ~lo:(-hi) ~hi:(-lo) ~stride
  | Strided s -> Strided s
  | Congruent { m; r } -> congruent ~m ~r:(-r)
  | Unknown -> Unknown

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | Const x, Const y -> Const (x * y)
  | Const k, Interval i | Interval i, Const k ->
    if k = 0 then Const 0
    else if k > 0 then interval ~lo:(i.lo * k) ~hi:(i.hi * k) ~stride:(i.stride * k)
    else interval ~lo:(i.hi * k) ~hi:(i.lo * k) ~stride:(i.stride * -k)
  | Const k, Strided s | Strided s, Const k ->
    if k = 0 then Const 0 else Strided (abs (s * k))
  | Const k, Congruent { m; r } | Congruent { m; r }, Const k ->
    if k = 0 then Const 0 else congruent ~m:(m * abs k) ~r:(r * k)
  (* the product of an unknown point and a constant is a known multiple *)
  | Const k, Unknown | Unknown, Const k ->
    if k = 0 then Const 0 else if abs k >= 2 then congruent ~m:(abs k) ~r:0
    else Unknown
  | _ -> Unknown

let div a b =
  match (a, b) with
  | _, Const 0 -> Unknown
  | Const x, Const y -> Const (x / y)
  | Interval i, Const k when k > 0 && i.lo >= 0 ->
    let stride = if i.stride mod k = 0 then i.stride / k else 1 in
    interval ~lo:(i.lo / k) ~hi:(i.hi / k) ~stride:(max 1 stride)
  | _ -> Unknown

let mod_ a b =
  match (a, b) with
  | _, Const 0 -> Unknown
  | Const x, Const y -> Const (x mod y)
  | Interval i, Const k when k > 0 && i.lo >= 0 ->
    if i.hi < k then interval ~lo:i.lo ~hi:i.hi ~stride:i.stride
    else interval ~lo:0 ~hi:(k - 1) ~stride:1
  | Congruent { m; r }, Const k when k > 0 && m mod k = 0 ->
    (* every element is congruent to r mod k as well; the mod collapses it *)
    Const (r mod k)
  | _ -> Unknown

let bounds = function
  | Const n -> Some (n, n)
  | Interval { lo; hi; _ } -> Some (lo, hi)
  | Strided _ | Congruent _ | Unknown -> None

let min_ a b =
  match (bounds a, bounds b) with
  | Some (_, ha), Some (lb, _) when ha <= lb -> a
  | Some (la, _), Some (_, hb) when hb <= la -> b
  | Some (la, ha), Some (lb, hb) -> interval ~lo:(min la lb) ~hi:(min ha hb) ~stride:1
  | _ -> Unknown

let max_ a b =
  match (bounds a, bounds b) with
  | Some (la, _), Some (_, hb) when hb <= la -> a
  | Some (_, ha), Some (lb, _) when ha <= lb -> b
  | Some (la, ha), Some (lb, hb) -> interval ~lo:(max la lb) ~hi:(max ha hb) ~stride:1
  | _ -> Unknown

let lt a b =
  match (bounds a, bounds b) with
  | Some (_, ha), Some (lb, _) when ha < lb -> Some true
  | Some (la, _), Some (_, hb) when la >= hb -> Some false
  | _ -> None

let le a b =
  match (bounds a, bounds b) with
  | Some (_, ha), Some (lb, _) when ha <= lb -> Some true
  | Some (la, _), Some (_, hb) when la > hb -> Some false
  | _ -> None

let eq a b =
  match (a, b) with
  | Const x, Const y -> Some (x = y)
  | Congruent { m; r }, Const c | Const c, Congruent { m; r }
    when ((c mod m) + m) mod m <> r -> Some false
  | Congruent a, Congruent b
    when (let g = gcd a.m b.m in g >= 2 && a.r mod g <> b.r mod g) -> Some false
  | _ -> (
    match (bounds a, bounds b) with
    | Some (la, ha), Some (lb, hb) when ha < lb || hb < la -> Some false
    | _ -> None)

let member x ~lo ~hi ~stride = x >= lo && x <= hi && (x - lo) mod stride = 0

let overlaps a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> true
  | Strided _, _ | _, Strided _ -> true (* unknown placement *)
  | Const x, Const y -> x = y
  | Const x, Interval { lo; hi; stride } | Interval { lo; hi; stride }, Const x ->
    member x ~lo ~hi ~stride
  | Const x, Congruent { m; r } | Congruent { m; r }, Const x ->
    ((x mod m) + m) mod m = r
  | Congruent a, Congruent b ->
    let g = gcd a.m b.m in
    a.r mod g = b.r mod g
  | Congruent { m; r }, Interval i | Interval i, Congruent { m; r } ->
    if i.stride mod m = 0 then ((i.lo mod m) + m) mod m = r
    else true (* the interval walks through residue classes *)
  | Interval i, Interval j ->
    if i.hi < j.lo || j.hi < i.lo then false
    else if i.stride = j.stride && (i.lo - j.lo) mod i.stride <> 0 then false
    else true

let union a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> Unknown
  | Congruent x, Congruent y ->
    let g = gcd x.m y.m in
    if g >= 2 && x.r mod g = y.r mod g then congruent ~m:g ~r:(x.r mod g)
    else Unknown
  | Congruent { m; r }, Const c | Const c, Congruent { m; r } ->
    let g = gcd m (abs (c - r)) in
    if g >= 2 then congruent ~m:g ~r else Unknown
  | Congruent { m; _ }, o | o, Congruent { m; _ } -> (
    match stride_of o with
    | Some s ->
      let g = gcd m s in
      if g >= 2 then Strided g else Strided 1
    | None -> Unknown)
  | Strided s, o | o, Strided s -> (
    match stride_of o with
    | Some s' -> Strided (max 1 (gcd s s'))
    | None -> Unknown)
  | Const x, Const y ->
    if x = y then Const x
    else interval ~lo:(min x y) ~hi:(max x y) ~stride:(abs (x - y))
  | Const x, Interval i | Interval i, Const x ->
    let stride = gcd i.stride (abs (x - i.lo)) in
    interval ~lo:(min x i.lo) ~hi:(max x i.hi) ~stride:(max 1 stride)
  | Interval i, Interval j ->
    let stride = gcd (gcd i.stride j.stride) (abs (i.lo - j.lo)) in
    interval ~lo:(min i.lo j.lo) ~hi:(max i.hi j.hi) ~stride:(max 1 stride)

let points t ~extent =
  match t with
  | Const n -> if n >= 0 && n < extent then [ n ] else []
  | Interval { lo; hi; stride } ->
    let rec go x acc =
      if x > min hi (extent - 1) then List.rev acc
      else go (x + stride) (if x >= 0 then x :: acc else acc)
    in
    go lo []
  | Congruent { m; r } ->
    let rec go x acc = if x >= extent then List.rev acc else go (x + m) (x :: acc) in
    go r []
  | Strided _ | Unknown -> List.init extent Fun.id
