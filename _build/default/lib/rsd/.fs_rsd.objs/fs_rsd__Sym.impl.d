lib/rsd/sym.ml: Format Fun List
