lib/rsd/rsd.ml: Array Format List Sym
