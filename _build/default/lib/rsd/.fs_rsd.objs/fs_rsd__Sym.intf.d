lib/rsd/sym.mli: Format
