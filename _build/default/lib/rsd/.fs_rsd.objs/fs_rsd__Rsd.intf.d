lib/rsd/rsd.mli: Format Sym
