(** One-call simulation drivers tying the pipeline together:
    program -> plan -> layout -> interpreter -> cache / timing model. *)

type cache_run = {
  counts : Fs_cache.Mpcache.counts;
  per_block : (int * Fs_cache.Mpcache.counts) list;
      (** populated when [track_blocks] *)
  layout_bytes : int;
  interp : Fs_interp.Interp.result;
}

val cache_sim :
  ?cache_bytes:int ->
  ?assoc:int ->
  ?track_blocks:bool ->
  Fs_ir.Ast.program ->
  Fs_layout.Plan.t ->
  nprocs:int ->
  block:int ->
  cache_run
(** Trace-driven simulation of the paper's Section 4 architecture
    (32 KB 4-way L1 per processor unless overridden, infinite L2). *)

type timed_run = {
  machine : Fs_machine.Ksr.result;
  work : int array;
}

val machine_sim :
  ?config:Fs_machine.Ksr.config ->
  Fs_ir.Ast.program ->
  Fs_layout.Plan.t ->
  nprocs:int ->
  timed_run
(** Execution-time run on the KSR2 model (128-byte blocks). *)

val compiler_plan :
  ?options:Fs_transform.Transform.options ->
  Fs_ir.Ast.program ->
  nprocs:int ->
  Fs_layout.Plan.t
(** The compiler path: analyze and choose transformations. *)
