lib/core/attribution.ml: Array Fs_cache Fs_interp Fs_ir Fs_layout Fs_util Hashtbl List Option
