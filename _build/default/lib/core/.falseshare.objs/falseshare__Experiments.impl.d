lib/core/experiments.ml: Buffer Fs_cache Fs_layout Fs_machine Fs_util Fs_workloads Hashtbl List Option Printf Sim String
