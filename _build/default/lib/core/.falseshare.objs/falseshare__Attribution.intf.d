lib/core/attribution.mli: Fs_cache Fs_ir Fs_layout
