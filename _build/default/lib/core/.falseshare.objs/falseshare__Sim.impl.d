lib/core/sim.ml: Fs_cache Fs_interp Fs_layout Fs_machine Fs_transform
