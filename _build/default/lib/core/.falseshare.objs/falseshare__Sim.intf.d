lib/core/sim.mli: Fs_cache Fs_interp Fs_ir Fs_layout Fs_machine Fs_transform
