lib/core/experiments.mli: Fs_ir Fs_layout Fs_workloads
