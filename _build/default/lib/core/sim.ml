module Mpcache = Fs_cache.Mpcache
module Layout = Fs_layout.Layout
module Interp = Fs_interp.Interp
module Ksr = Fs_machine.Ksr

type cache_run = {
  counts : Mpcache.counts;
  per_block : (int * Mpcache.counts) list;
  layout_bytes : int;
  interp : Interp.result;
}

let cache_sim ?(cache_bytes = 32 * 1024) ?(assoc = 4) ?(track_blocks = false)
    prog plan ~nprocs ~block =
  let layout = Layout.realize prog plan ~block in
  let cache =
    Mpcache.create ~track_blocks
      { Mpcache.nprocs; block; cache_bytes; assoc }
  in
  let interp =
    Interp.run_to_sink prog ~nprocs ~layout ~sink:(Mpcache.sink cache)
  in
  {
    counts = Mpcache.counts cache;
    per_block = Mpcache.per_block cache;
    layout_bytes = Layout.size layout;
    interp;
  }

type timed_run = { machine : Ksr.result; work : int array }

let machine_sim ?config prog plan ~nprocs =
  let config =
    match config with Some c -> c | None -> Ksr.default_config ~nprocs
  in
  let layout = Layout.realize prog plan ~block:config.Ksr.block in
  let machine = Ksr.create config in
  let interp =
    Interp.run prog ~nprocs ~layout ~listener:(Ksr.listener machine)
  in
  { machine = Ksr.finish machine; work = interp.Interp.work }

let compiler_plan ?options prog ~nprocs =
  (Fs_transform.Transform.plan ?options prog ~nprocs).Fs_transform.Transform.plan
