lib/transform/transform.mli: Format Fs_analysis Fs_ir Fs_layout
