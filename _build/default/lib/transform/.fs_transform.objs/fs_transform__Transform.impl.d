lib/transform/transform.ml: Array Format Fs_analysis Fs_ir Fs_layout Fs_rsd Fun Hashtbl List Option Printf
