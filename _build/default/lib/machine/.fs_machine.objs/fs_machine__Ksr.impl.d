lib/machine/ksr.ml: Array Fs_cache Fs_trace Hashtbl Option
