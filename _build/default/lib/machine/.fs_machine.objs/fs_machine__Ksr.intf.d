lib/machine/ksr.mli: Fs_cache Fs_trace
