lib/ir/cells.ml: Ast List Printf
