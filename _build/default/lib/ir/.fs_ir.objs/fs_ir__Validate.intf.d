lib/ir/validate.mli: Ast
