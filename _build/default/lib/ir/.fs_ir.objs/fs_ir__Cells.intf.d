lib/ir/cells.mli: Ast
