lib/ir/validate.ml: Ast Hashtbl List Printf
