lib/ir/dsl.ml: Ast
