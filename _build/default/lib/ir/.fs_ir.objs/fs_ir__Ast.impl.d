lib/ir/ast.ml: List
