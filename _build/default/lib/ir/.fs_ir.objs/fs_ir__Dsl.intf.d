lib/ir/dsl.mli: Ast
