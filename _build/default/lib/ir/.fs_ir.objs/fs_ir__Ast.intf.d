lib/ir/ast.mli:
