lib/ir/pp.ml: Ast Format List String
