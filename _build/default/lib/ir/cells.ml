type eaccess = Eidx of int | Efld of string

let rec count p (t : Ast.ty) =
  match t with
  | Scalar _ -> 1
  | Array (elt, n) -> n * count p elt
  | Struct name -> (
    match List.find_opt (fun (s : Ast.struct_def) -> s.sname = name) p.Ast.structs with
    | None -> invalid_arg ("Cells.count: unknown struct " ^ name)
    | Some s -> List.fold_left (fun acc (_, ft) -> acc + count p ft) 0 s.fields)

let field_offset p (s : Ast.struct_def) fname =
  let rec go acc = function
    | [] -> raise Not_found
    | (f, ft) :: rest -> if f = fname then acc else go (acc + count p ft) rest
  in
  go 0 s.fields

exception Bounds of string

let rec resolve p (t : Ast.ty) path =
  match (t, path) with
  | _, [] -> (0, t)
  | Ast.Array (elt, n), Eidx i :: rest ->
    if i < 0 || i >= n then
      raise (Bounds (Printf.sprintf "index %d out of bounds [0,%d)" i n));
    let off, final = resolve p elt rest in
    ((i * count p elt) + off, final)
  | Ast.Struct name, Efld f :: rest ->
    let s = Ast.find_struct p name in
    (match List.assoc_opt f s.fields with
     | None -> raise (Bounds (Printf.sprintf "struct %s has no field %s" name f))
     | Some ft ->
       let off, final = resolve p ft rest in
       (field_offset p s f + off, final))
  | Ast.Scalar _, _ :: _ -> raise (Bounds "path descends into a scalar")
  | Ast.Array _, Efld _ :: _ -> raise (Bounds "field selection on an array")
  | Ast.Struct _, Eidx _ :: _ -> raise (Bounds "indexing a struct")

let rec scalar_at p (t : Ast.ty) id =
  match t with
  | Scalar s ->
    if id <> 0 then invalid_arg "Cells.scalar_at: id out of range";
    s
  | Array (elt, n) ->
    let ec = count p elt in
    if id < 0 || id >= n * ec then invalid_arg "Cells.scalar_at: id out of range";
    scalar_at p elt (id mod ec)
  | Struct name ->
    let s = Ast.find_struct p name in
    let rec go id = function
      | [] -> invalid_arg "Cells.scalar_at: id out of range"
      | (_, ft) :: rest ->
        let c = count p ft in
        if id < c then scalar_at p ft id else go (id - c) rest
    in
    go id s.fields

let iter_scalars p t f =
  let rec go base (t : Ast.ty) =
    match t with
    | Scalar s -> f base s
    | Array (elt, n) ->
      let ec = count p elt in
      for i = 0 to n - 1 do
        go (base + (i * ec)) elt
      done
    | Struct name ->
      let s = Ast.find_struct p name in
      ignore
        (List.fold_left
           (fun off (_, ft) ->
             go (base + off) ft;
             off + count p ft)
           0 s.fields)
  in
  go 0 t

let array_dims p t =
  let rec go acc = function
    | Ast.Array (elt, n) -> go (n :: acc) elt
    | (Ast.Scalar _ | Ast.Struct _) as elt ->
      if acc = [] then None else Some (List.rev acc, elt)
  in
  ignore p;
  go [] t

let coords_of_cell ~dims ~elt_cells id =
  let inner = id mod elt_cells in
  let rec go id = function
    | [] -> []
    | [ _d ] -> [ id ]
    | _d :: rest ->
      (* [rest_size] counts elements, not cells, in the remaining dims *)
      let rest_size = List.fold_left ( * ) 1 rest in
      (id / rest_size) :: go (id mod rest_size) rest
  in
  (go (id / elt_cells) dims, inner)

let cell_of_coords ~dims ~elt_cells coords inner =
  let rec go coords dims =
    match (coords, dims) with
    | [], [] -> 0
    | c :: cs, _ :: ds ->
      let rest_size = List.fold_left ( * ) 1 ds in
      (c * rest_size) + go cs ds
    | _ -> invalid_arg "Cells.cell_of_coords: rank mismatch"
  in
  (go coords dims * elt_cells) + inner
