(** Static well-formedness checking of ParC programs.

    Catches malformed programs at construction time: duplicate or dangling
    names, recursive struct types, non-positive array dimensions, shape
    errors in access paths (indexing a struct, selecting a field of an
    array, paths that stop short of a scalar), lock operations on non-lock
    cells, stores to lock cells, arity mismatches at call sites, and reads
    of undeclared private variables. *)

val check : Ast.program -> (unit, string list) result
(** All problems found, in source order; [Ok ()] for a well-formed
    program. *)

exception Invalid_program of string list

val validate_exn : Ast.program -> Ast.program
(** Identity on well-formed programs.
    @raise Invalid_program otherwise. *)
