(** The cell model: every shared global is a dense vector of scalar cells.

    Cell ids are assigned in C layout order — array elements row-major,
    struct fields in declaration order — so in the {e default} (untransformed)
    memory layout, cell [i] of a variable lives at byte offset
    [i * Ast.word_size] from the variable's base.  Layout transformations
    re-map cell ids to different physical addresses; the cell id itself is
    the layout-independent name of a scalar datum. *)

type eaccess = Eidx of int | Efld of string
(** An access path whose indices have been evaluated. *)

val count : Ast.program -> Ast.ty -> int
(** Number of scalar cells occupied by a value of this type.
    @raise Invalid_argument on an unknown struct name. *)

val field_offset : Ast.program -> Ast.struct_def -> string -> int
(** Cell offset of a field within its struct.
    @raise Not_found if the struct has no such field. *)

exception Bounds of string
(** Raised by {!resolve} on an out-of-bounds index or ill-shaped path. *)

val resolve : Ast.program -> Ast.ty -> eaccess list -> int * Ast.ty
(** [resolve p t path] walks the evaluated path from a value of type [t]
    and returns the cell offset it designates together with the type at
    that point (a scalar type when the path is complete).
    @raise Bounds on out-of-range indices or shape errors. *)

val scalar_at : Ast.program -> Ast.ty -> int -> Ast.scalar
(** [scalar_at p t id] is the scalar type of cell [id] within type [t].
    @raise Invalid_argument if [id] is out of range. *)

val iter_scalars : Ast.program -> Ast.ty -> (int -> Ast.scalar -> unit) -> unit
(** Apply [f id scalar] to every scalar cell of the type in cell order. *)

val array_dims : Ast.program -> Ast.ty -> (int list * Ast.ty) option
(** [array_dims p t] is [Some (dims, elt)] when [t] is a (possibly nested)
    array nest [elt dims.(0) dims.(1) ...] whose element [elt] is not an
    array; [None] for non-array types. *)

val coords_of_cell : dims:int list -> elt_cells:int -> int -> int list * int
(** Inverse of row-major flattening: [coords_of_cell ~dims ~elt_cells id]
    returns the per-dimension coordinates and the residual cell offset
    within the element. *)

val cell_of_coords : dims:int list -> elt_cells:int -> int list -> int -> int
(** Row-major flattening, inverse of {!coords_of_cell}. *)
