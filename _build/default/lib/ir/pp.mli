(** Pretty-printer for ParC's concrete syntax.

    Produces the textual form accepted by the {!Fs_parc} parser; the
    round-trip [parse (print p) = p] is property-tested. *)

val ty : Format.formatter -> Ast.ty -> unit
(** Prints the base type only; array dimensions are printed by the
    declaration printers ([int x[4][2]], C style). *)

val expr : Format.formatter -> Ast.expr -> unit
val lvalue : Format.formatter -> Ast.lvalue -> unit
val stmt : Format.formatter -> Ast.stmt -> unit
val func : Format.formatter -> Ast.func -> unit
val program : Format.formatter -> Ast.program -> unit

val program_to_string : Ast.program -> string
