lib/workloads/workload.mli: Fs_ir Fs_layout
