lib/workloads/radiosity.ml: Fs_ir Fs_layout Wl_common Workload
