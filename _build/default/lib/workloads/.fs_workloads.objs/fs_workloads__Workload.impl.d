lib/workloads/workload.ml: Fs_ir Fs_layout List
