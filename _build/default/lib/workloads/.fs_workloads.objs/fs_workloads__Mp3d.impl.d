lib/workloads/mp3d.ml: Fs_ir Fs_layout Wl_common Workload
