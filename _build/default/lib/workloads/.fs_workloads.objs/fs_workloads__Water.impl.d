lib/workloads/water.ml: Fs_ir Fs_layout Wl_common Workload
