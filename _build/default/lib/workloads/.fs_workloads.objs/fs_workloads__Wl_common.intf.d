lib/workloads/wl_common.mli: Fs_ir
