lib/workloads/pverify.ml: Fs_ir Fs_layout Wl_common Workload
