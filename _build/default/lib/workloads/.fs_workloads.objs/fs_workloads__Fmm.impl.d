lib/workloads/fmm.ml: Fs_ir Fs_layout Wl_common Workload
