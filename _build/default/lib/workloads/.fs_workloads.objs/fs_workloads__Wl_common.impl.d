lib/workloads/wl_common.ml: Fs_ir List
