lib/workloads/workloads.ml: Fmm Locusroute Maxflow Mp3d Pthor Pverify Radiosity Raytrace Topopt Water Workload
