lib/workloads/maxflow.ml: Fs_ir Wl_common Workload
