(** Registry of the full benchmark suite (Table 1). *)

val all : Workload.t list
(** The ten benchmarks in Table 1 order: Maxflow, Pverify, Topopt, Fmm,
    Radiosity, Raytrace, LocusRoute, Mp3d, Pthor, Water. *)

val find : string -> Workload.t
(** @raise Not_found on unknown names. *)

val simulated : unit -> Workload.t list
(** The six benchmarks with an unoptimized version — Figure 3 / Table 2. *)
