let all =
  [ Maxflow.spec;
    Pverify.spec;
    Topopt.spec;
    Fmm.spec;
    Radiosity.spec;
    Raytrace.spec;
    Locusroute.spec;
    Mp3d.spec;
    Pthor.spec;
    Water.spec ]

let find name = Workload.find all name
let simulated () = Workload.simulated all
