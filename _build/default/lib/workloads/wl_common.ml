open Fs_ir.Dsl

let interleaved ~idx ~nprocs ~n body =
  let per = (n + nprocs - 1) / nprocs in
  let k = idx ^ "_k" in
  [ sfor k (i 0) (i per)
      (decl idx ((p k *% i nprocs) +% pdv)
       :: (if per * nprocs = n then body (p idx)
           else [ when_ (p idx <% i n) (body (p idx)) ])) ]

let chunked ~idx ~nprocs ~n body =
  let per = (n + nprocs - 1) / nprocs in
  [ decl (idx ^ "_lo") (pdv *% i per);
    decl (idx ^ "_hi") (min_ ((pdv +% i 1) *% i per) (i n));
    sfor idx (p (idx ^ "_lo")) (p (idx ^ "_hi")) (body (p idx)) ]

let lcg_next s = set s (((p s *% i 1103515245) +% i 12345) %% i 1073741824)

let lcg_mod s m = p s %% i m

let master body = when_ (pdv ==% i 0) body

let spin k =
  if k <= 0 then []
  else
    decl "spin_" (i 1)
    :: List.init k (fun j -> set "spin_" ((p "spin_" *% i (j + 3)) %% i 65537))
