(** Shared building blocks for the benchmark programs. *)

val interleaved :
  idx:string -> nprocs:int -> n:int -> (Fs_ir.Ast.expr -> Fs_ir.Ast.block) ->
  Fs_ir.Ast.stmt list
(** Round-robin work partition: iterates [idx = k*nprocs + pid] over
    [\[0, n)], guarding the tail when [nprocs] does not divide [n].  The
    body receives the private index expression. *)

val chunked :
  idx:string -> nprocs:int -> n:int -> (Fs_ir.Ast.expr -> Fs_ir.Ast.block) ->
  Fs_ir.Ast.stmt list
(** Contiguous work partition: process [p] iterates over
    [\[p*ceil(n/nprocs), min ((p+1)*ceil(n/nprocs), n))]. *)

val lcg_next : string -> Fs_ir.Ast.stmt
(** [lcg_next s]: advance the private pseudo-random seed [s] (a
    deterministic linear congruential step, entirely in ParC, so programs
    self-initialize reproducibly). *)

val lcg_mod : string -> int -> Fs_ir.Ast.expr
(** [lcg_mod s m]: the current seed reduced to [\[0, m)]. *)

val master : Fs_ir.Ast.block -> Fs_ir.Ast.stmt
(** Code executed only by process 0 (the classic initialization idiom the
    per-process control-flow analysis must see through). *)

val spin : int -> Fs_ir.Ast.stmt list
(** [spin k]: [k] statements of private computation (no shared accesses).
    Calibrates the compute-to-shared-access ratio of an inner loop to a
    realistic level; the interpreter charges work for each statement. *)
