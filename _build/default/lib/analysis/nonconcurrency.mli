(** Non-concurrency analysis over the barrier structure (stage 2,
    Section 3.1; after Masticola & Ryder).

    Splits the program into static phases delimited by global barriers and
    records, for each barrier, the loop depth at which it executes: a
    barrier inside a loop means the phases around it recur, i.e. the
    program's sharing pattern cycles through them.  Code in different
    phases cannot execute concurrently. *)

type t

val analyze : Fs_ir.Ast.program -> t

val phase_count : t -> int
(** Static barriers along the entry, plus one. *)

val barrier_depths : t -> int list
(** Loop depth of each barrier, in program (walk) order; length is
    [phase_count - 1]. *)

val can_repeat : t -> int -> bool
(** Whether phase [i] (0-based) can execute more than once, i.e. one of
    its delimiting barriers sits inside a loop. *)
