(** Process-differentiating-variable detection.

    A PDV is a private variable whose value differs across processes —
    transitively derived from [Pdv] (Section 2 of the paper).  The set is
    computed interprocedurally: an argument that is PDV-derived at any call
    site makes the callee's parameter PDV-derived.

    The summary analysis does not consult this set (it propagates concrete
    per-process values instead, which subsumes it); it exists for the
    compiler report and for validating the analysis against hand
    inspection in tests. *)

type t

val analyze : Fs_ir.Ast.program -> t

val pdv_privates : t -> string -> string list
(** PDV-derived private variables of a function, sorted.
    @raise Not_found for an unknown function. *)

val is_pdv : t -> func:string -> string -> bool
