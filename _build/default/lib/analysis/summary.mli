(** Per-process summary side-effect analysis (stages 1 and 3 of the paper,
    Section 3.1), with the phase structure of stage 2 threaded through.

    For each process id, the analysis abstractly interprets the program
    from the SPMD entry with [Pdv] bound to that id:

    - {b Stage 1} (per-process control flow): branch conditions are
      evaluated in the abstract index domain, so conditions decided by the
      PDV (e.g. [if (pid == 0)]) restrict the walk to the code that
      process actually executes.  Interprocedural: the walk descends into
      callees with the abstract values of their arguments, so PDV-derived
      parameters keep differentiating processes across call boundaries.
    - {b Stage 2} (non-concurrency): a phase counter advances at every
      barrier (statically — each loop body is visited once, and calls
      advance the counter by their static barrier count), so side effects
      are recorded per inter-barrier phase.
    - {b Stage 3} (summary side effects): every shared reference is
      summarized as a bounded regular section descriptor over the abstract
      values of its index expressions, weighted by static profiling:
      constant-trip loops multiply by their trip count, loops with
      unknown bounds and while loops by {!unknown_loop_weight}, and the
      arms of undecidable conditionals by 0.5.

    Assumption (as in the paper's model): barriers are not placed under
    PDV-dependent conditionals, so every process sees the same phase
    numbering. *)

val unknown_loop_weight : float

(** A summarized datum: a shared global plus the struct-field path that
    selects one scalar (or sub-array) family inside it.  Plain arrays and
    scalars have an empty [fieldsig]. *)
type key = { var : string; fieldsig : string list }

val key_to_string : key -> string

type var_access = { reads : Fs_rsd.Rsd.Set.t; writes : Fs_rsd.Rsd.Set.t }

type t

val analyze :
  ?rsd_limit:int -> ?profile:bool -> Fs_ir.Ast.program -> nprocs:int -> t
(** [profile:false] disables the static-profile weighting (every reference
    counts 1.0 — an ablation of the paper's weighting). *)

val nprocs : t -> int
val phases : t -> int
(** Static phase count ([barriers along the entry + 1]). *)

val keys : t -> key list
(** All distinct summarized data, sorted by name. *)

val get : t -> phase:int -> pid:int -> key -> var_access option
val per_pid : t -> pid:int -> key -> var_access
(** Aggregated over all phases. *)

val phase_access : t -> phase:int -> key -> var_access
(** Aggregated over all processes within a phase. *)

val phase_weight : t -> int -> float
(** Total access weight recorded in the phase, across processes. *)

val read_weight : t -> key -> float
val write_weight : t -> key -> float
(** Aggregated over phases and processes. *)

val pp : Format.formatter -> t -> unit
