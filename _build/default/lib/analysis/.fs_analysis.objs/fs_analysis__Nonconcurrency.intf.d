lib/analysis/nonconcurrency.mli: Fs_ir
