lib/analysis/pdv.ml: Fs_ir Hashtbl List
