lib/analysis/pdv.mli: Fs_ir
