lib/analysis/summary.mli: Format Fs_ir Fs_rsd
