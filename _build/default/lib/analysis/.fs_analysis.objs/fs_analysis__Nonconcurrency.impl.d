lib/analysis/nonconcurrency.ml: Array Fs_ir List
