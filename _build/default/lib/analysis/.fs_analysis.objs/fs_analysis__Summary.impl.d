lib/analysis/summary.ml: Array Format Fs_cfg Fs_ir Fs_rsd Hashtbl List Option String
