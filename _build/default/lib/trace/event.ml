type t = { proc : int; write : bool; addr : int }

let pp fmt t =
  Format.fprintf fmt "P%d %s 0x%x" t.proc (if t.write then "W" else "R") t.addr
