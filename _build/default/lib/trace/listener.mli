(** Execution listeners: the full event interface between the interpreter
    and its consumers.

    A {!Sink.t} sees only memory references, which is all a cache simulator
    needs.  The KSR2 timing model additionally needs synchronization events
    (to align processor clocks at barriers and serialize at locks) and the
    amount of computation between references (to charge CPU cycles), so the
    interpreter reports through this richer interface. *)

type t = {
  access : proc:int -> write:bool -> addr:int -> unit;
  work : proc:int -> amount:int -> unit;
      (** [amount] interpreter work units (≈ statements) executed by [proc]
          since its previous event. *)
  barrier_arrive : proc:int -> unit;
  barrier_release : unit -> unit;
      (** all live processes have arrived; everyone proceeds *)
  lock_wait : proc:int -> addr:int -> unit;
      (** [proc] found the lock at [addr] held and blocked *)
  lock_grant : proc:int -> addr:int -> from:int -> unit;
      (** [proc] now owns the lock; [from] is the releasing processor, or
          [-1] when the lock was free on arrival *)
}

val null : t

val of_sink : Sink.t -> t
(** Forward accesses to the sink; ignore everything else. *)

val combine : t -> t -> t
(** Deliver every event to both listeners, left first. *)
