(** Trace consumers.

    The interpreter pushes every reference into a sink as it executes, so
    traces need never be materialized unless a consumer wants them. *)

type t = proc:int -> write:bool -> addr:int -> unit

val null : t
(** Discards everything. *)

val tee : t -> t -> t
(** Feeds both sinks, left first. *)

(** Reference counting. *)
module Counter : sig
  type sink := t

  type t = {
    mutable reads : int;
    mutable writes : int;
    per_proc : int array;  (** references per processor *)
  }

  val create : nprocs:int -> t
  val sink : t -> sink
  val total : t -> int
end

(** Full capture into growable arrays, for tests and offline analysis. *)
module Capture : sig
  type sink := t
  type t

  val create : unit -> t
  val sink : t -> sink
  val length : t -> int
  val get : t -> int -> Event.t
  val to_list : t -> Event.t list
  val iter : (Event.t -> unit) -> t -> unit
end
