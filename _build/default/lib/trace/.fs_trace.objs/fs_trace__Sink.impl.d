lib/trace/sink.ml: Array Event
