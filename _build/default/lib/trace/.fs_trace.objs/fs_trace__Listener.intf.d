lib/trace/listener.mli: Sink
