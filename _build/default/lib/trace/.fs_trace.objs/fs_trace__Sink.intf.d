lib/trace/sink.mli: Event
