lib/trace/listener.ml:
