type t = proc:int -> write:bool -> addr:int -> unit

let null ~proc:_ ~write:_ ~addr:_ = ()

let tee a b ~proc ~write ~addr =
  a ~proc ~write ~addr;
  b ~proc ~write ~addr

module Counter = struct
  type t = { mutable reads : int; mutable writes : int; per_proc : int array }

  let create ~nprocs = { reads = 0; writes = 0; per_proc = Array.make nprocs 0 }

  let sink t ~proc ~write ~addr:_ =
    if write then t.writes <- t.writes + 1 else t.reads <- t.reads + 1;
    t.per_proc.(proc) <- t.per_proc.(proc) + 1

  let total t = t.reads + t.writes
end

module Capture = struct
  (* Events packed into an int each: addr lsl 9 | proc lsl 1 | write.
     Addresses in our simulations stay far below 2^53, so this is safe. *)
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 1024 0; len = 0 }

  let sink t ~proc ~write ~addr =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- (addr lsl 9) lor (proc lsl 1) lor (if write then 1 else 0);
    t.len <- t.len + 1

  let length t = t.len

  let unpack packed =
    { Event.proc = (packed lsr 1) land 0xff;
      write = packed land 1 = 1;
      addr = packed lsr 9 }

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Capture.get: out of range";
    unpack t.data.(i)

  let iter f t =
    for i = 0 to t.len - 1 do
      f (unpack t.data.(i))
    done

  let to_list t =
    let acc = ref [] in
    for i = t.len - 1 downto 0 do
      acc := unpack t.data.(i) :: !acc
    done;
    !acc
end
