(** Memory reference trace events.

    An event is one shared-memory reference by one simulated processor.
    References injected by a transformation (the pointer load of
    indirection) are ordinary reads and are not distinguished here; they
    simply appear in the stream, as they would on real hardware. *)

type t = {
  proc : int;      (** issuing processor, [0 .. nprocs-1] *)
  write : bool;    (** true for writes *)
  addr : int;      (** byte address *)
}

val pp : Format.formatter -> t -> unit
