type t = {
  access : proc:int -> write:bool -> addr:int -> unit;
  work : proc:int -> amount:int -> unit;
  barrier_arrive : proc:int -> unit;
  barrier_release : unit -> unit;
  lock_wait : proc:int -> addr:int -> unit;
  lock_grant : proc:int -> addr:int -> from:int -> unit;
}

let null =
  {
    access = (fun ~proc:_ ~write:_ ~addr:_ -> ());
    work = (fun ~proc:_ ~amount:_ -> ());
    barrier_arrive = (fun ~proc:_ -> ());
    barrier_release = (fun () -> ());
    lock_wait = (fun ~proc:_ ~addr:_ -> ());
    lock_grant = (fun ~proc:_ ~addr:_ ~from:_ -> ());
  }

let of_sink sink = { null with access = (fun ~proc ~write ~addr -> sink ~proc ~write ~addr) }

let combine a b =
  {
    access =
      (fun ~proc ~write ~addr ->
        a.access ~proc ~write ~addr;
        b.access ~proc ~write ~addr);
    work =
      (fun ~proc ~amount ->
        a.work ~proc ~amount;
        b.work ~proc ~amount);
    barrier_arrive =
      (fun ~proc ->
        a.barrier_arrive ~proc;
        b.barrier_arrive ~proc);
    barrier_release =
      (fun () ->
        a.barrier_release ();
        b.barrier_release ());
    lock_wait =
      (fun ~proc ~addr ->
        a.lock_wait ~proc ~addr;
        b.lock_wait ~proc ~addr);
    lock_grant =
      (fun ~proc ~addr ~from ->
        a.lock_grant ~proc ~addr ~from;
        b.lock_grant ~proc ~addr ~from);
  }
