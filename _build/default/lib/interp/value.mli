(** Dynamically-typed ParC runtime values.

    Integer operands stay exact (indices, counters); mixing an integer with
    a float promotes to float.  Comparison and logic produce integer 0/1. *)

type t = Vint of int | Vfloat of float

exception Type_error of string

val zero : t
val of_bool : bool -> t
val to_int : t -> int
(** @raise Type_error on a float (indices must be integers). *)

val truthy : t -> bool
val unop : Fs_ir.Ast.unop -> t -> t
val binop : Fs_ir.Ast.binop -> t -> t -> t
(** @raise Type_error on lock values, [Division_by_zero] on zero divisors. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
