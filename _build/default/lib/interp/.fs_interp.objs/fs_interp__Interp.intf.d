lib/interp/interp.mli: Fs_ir Fs_layout Fs_trace Hashtbl Value
