lib/interp/value.mli: Format Fs_ir
