lib/interp/interp.ml: Array Effect Format Fs_ir Fs_layout Fs_trace Hashtbl List Option Printf Queue String Value
