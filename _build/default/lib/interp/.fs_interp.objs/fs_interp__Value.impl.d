lib/interp/value.ml: Format Fs_ir Printf
