module Ast = Fs_ir.Ast

type t = Vint of int | Vfloat of float

exception Type_error of string

let zero = Vint 0
let of_bool b = Vint (if b then 1 else 0)

let to_int = function
  | Vint n -> n
  | Vfloat f -> raise (Type_error (Printf.sprintf "expected int, got float %g" f))

let truthy = function Vint n -> n <> 0 | Vfloat f -> f <> 0.0

let to_float = function Vint n -> float_of_int n | Vfloat f -> f

let unop op v =
  match (op, v) with
  | Ast.Neg, Vint n -> Vint (-n)
  | Ast.Neg, Vfloat f -> Vfloat (-.f)
  | Ast.Not, v -> of_bool (not (truthy v))

let arith fint ffloat a b =
  match (a, b) with
  | Vint x, Vint y -> Vint (fint x y)
  | _ -> Vfloat (ffloat (to_float a) (to_float b))

let compare_vals a b =
  match (a, b) with
  | Vint x, Vint y -> compare x y
  | _ -> compare (to_float a) (to_float b)

let binop op a b =
  match op with
  | Ast.Add -> arith ( + ) ( +. ) a b
  | Ast.Sub -> arith ( - ) ( -. ) a b
  | Ast.Mul -> arith ( * ) ( *. ) a b
  | Ast.Div -> (
    match (a, b) with
    | Vint _, Vint 0 -> raise Division_by_zero
    | Vint x, Vint y -> Vint (x / y)
    | _ ->
      let d = to_float b in
      if d = 0.0 then raise Division_by_zero else Vfloat (to_float a /. d))
  | Ast.Mod -> (
    match (a, b) with
    | Vint _, Vint 0 -> raise Division_by_zero
    | Vint x, Vint y -> Vint (x mod y)
    | _ -> raise (Type_error "mod requires integer operands"))
  | Ast.Eq -> of_bool (compare_vals a b = 0)
  | Ast.Ne -> of_bool (compare_vals a b <> 0)
  | Ast.Lt -> of_bool (compare_vals a b < 0)
  | Ast.Le -> of_bool (compare_vals a b <= 0)
  | Ast.Gt -> of_bool (compare_vals a b > 0)
  | Ast.Ge -> of_bool (compare_vals a b >= 0)
  | Ast.And -> of_bool (truthy a && truthy b)
  | Ast.Or -> of_bool (truthy a || truthy b)
  | Ast.Min -> if compare_vals a b <= 0 then a else b
  | Ast.Max -> if compare_vals a b >= 0 then a else b

let pp fmt = function
  | Vint n -> Format.fprintf fmt "%d" n
  | Vfloat f -> Format.fprintf fmt "%g" f

let equal a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> x = y
  | Vint _, Vfloat _ | Vfloat _, Vint _ -> false
