lib/cache/mpcache.ml: Array Fs_util Hashtbl List Option
