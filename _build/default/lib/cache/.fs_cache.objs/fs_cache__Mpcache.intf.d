lib/cache/mpcache.mli: Fs_trace
