(* Tests for the abstract index domain (Sym) and bounded regular section
   descriptors (Rsd): soundness of the interval/congruence arithmetic and
   the bounded-merge behavior. *)

module Sym = Fs_rsd.Sym
module Rsd = Fs_rsd.Rsd

(* A generator of abstract values paired with a sampler of concrete members,
   so arithmetic soundness can be checked by membership: any sum of members
   must be a member of the abstract sum. *)
let sym_gen =
  QCheck.Gen.(
    oneof
      [ map (fun n -> Sym.Const n) (int_range (-50) 50);
        map3
          (fun lo len stride -> Sym.interval ~lo ~hi:(lo + len) ~stride)
          (int_range (-20) 20) (int_range 0 40) (int_range 1 5);
        map2 (fun m r -> Sym.congruent ~m ~r) (int_range 2 8) (int_range 0 7) ])

let arbitrary_sym = QCheck.make ~print:(Format.asprintf "%a" Sym.pp) sym_gen

(* Concrete members of an abstract value (a finite sample). *)
let members = function
  | Sym.Const n -> [ n ]
  | Sym.Interval { lo; hi; stride } ->
    let rec go x acc = if x > hi then List.rev acc else go (x + stride) (x :: acc) in
    go lo []
  | Sym.Congruent { m; r } -> List.init 6 (fun k -> (k * m) + r)
  | Sym.Strided _ | Sym.Unknown -> []

let test_add_sound =
  QCheck.Test.make ~name:"sym add is sound" ~count:300
    QCheck.(pair arbitrary_sym arbitrary_sym)
    (fun (a, b) ->
      let s = Sym.add a b in
      List.for_all
        (fun x ->
          List.for_all
            (fun y -> Sym.overlaps s (Sym.Const (x + y)))
            (members b))
        (members a))

let test_mul_const_sound =
  QCheck.Test.make ~name:"sym mul by const is sound" ~count:300
    QCheck.(pair arbitrary_sym (int_range (-6) 6))
    (fun (a, k) ->
      let s = Sym.mul a (Sym.Const k) in
      List.for_all (fun x -> Sym.overlaps s (Sym.Const (x * k))) (members a))

let test_union_superset =
  QCheck.Test.make ~name:"sym union contains both sides" ~count:300
    QCheck.(pair arbitrary_sym arbitrary_sym)
    (fun (a, b) ->
      let u = Sym.union a b in
      List.for_all (fun x -> Sym.overlaps u (Sym.Const x)) (members a)
      && List.for_all (fun x -> Sym.overlaps u (Sym.Const x)) (members b))

let test_overlap_sound =
  QCheck.Test.make ~name:"sym disjointness is sound" ~count:300
    QCheck.(pair arbitrary_sym arbitrary_sym)
    (fun (a, b) ->
      (* if overlaps says no, the concrete samples must indeed be disjoint *)
      Sym.overlaps a b
      || List.for_all (fun x -> not (List.mem x (members b))) (members a))

let test_congruence_cases () =
  let c0 = Sym.congruent ~m:12 ~r:0 and c5 = Sym.congruent ~m:12 ~r:5 in
  Alcotest.(check bool) "distinct residues disjoint" false (Sym.overlaps c0 c5);
  Alcotest.(check bool) "same residue overlaps" true (Sym.overlaps c0 c0);
  let c_even = Sym.congruent ~m:4 ~r:2 and c_odd = Sym.congruent ~m:6 ~r:1 in
  (* gcd 2: residues 0 vs 1 mod 2 -> disjoint *)
  Alcotest.(check bool) "gcd residues" false (Sym.overlaps c_even c_odd);
  (* task*P + pid with unknown task: Unknown * 12 + 5 *)
  let slot = Sym.add (Sym.mul Sym.Unknown (Sym.Const 12)) (Sym.Const 5) in
  Alcotest.(check bool) "unknown*P+pid is congruent" true
    (Sym.equal slot (Sym.congruent ~m:12 ~r:5));
  (* mod collapses congruences: (12k+5) mod 4 = 1 *)
  (match Sym.mod_ slot (Sym.Const 4) with
   | Sym.Const 1 -> ()
   | other -> Alcotest.failf "expected Const 1, got %a" Sym.pp other)

let test_strided_cases () =
  (* unknown base plus a dense loop range keeps the stride *)
  let s = Sym.add Sym.Unknown (Sym.interval ~lo:0 ~hi:9 ~stride:1) in
  Alcotest.(check bool) "strided 1" true (Sym.equal s (Sym.Strided 1));
  Alcotest.(check (option int)) "stride_of" (Some 1) (Sym.stride_of s);
  Alcotest.(check bool) "strided overlaps everything" true
    (Sym.overlaps s (Sym.Const 3))

let test_comparisons () =
  let a = Sym.interval ~lo:0 ~hi:5 ~stride:1 in
  let b = Sym.interval ~lo:10 ~hi:20 ~stride:1 in
  Alcotest.(check (option bool)) "lt decidable" (Some true) (Sym.lt a b);
  Alcotest.(check (option bool)) "lt undecidable" None
    (Sym.lt a (Sym.interval ~lo:3 ~hi:8 ~stride:1));
  Alcotest.(check (option bool)) "eq disjoint" (Some false) (Sym.eq a b);
  Alcotest.(check (option bool)) "eq congruent vs const" (Some false)
    (Sym.eq (Sym.congruent ~m:4 ~r:1) (Sym.Const 8))

let test_points () =
  Alcotest.(check (list int)) "const" [ 3 ] (Sym.points (Sym.Const 3) ~extent:5);
  Alcotest.(check (list int)) "const out" [] (Sym.points (Sym.Const 7) ~extent:5);
  Alcotest.(check (list int)) "interval" [ 1; 3 ]
    (Sym.points (Sym.interval ~lo:1 ~hi:4 ~stride:2) ~extent:5);
  Alcotest.(check (list int)) "congruent" [ 2; 5; 8 ]
    (Sym.points (Sym.congruent ~m:3 ~r:2) ~extent:9);
  Alcotest.(check int) "unknown = all" 5
    (List.length (Sym.points Sym.Unknown ~extent:5))

(* --- Rsd --- *)

let rsd dims w = Rsd.create (Array.of_list dims) ~weight:w

let test_rsd_overlap () =
  let a = rsd [ Sym.Const 1; Sym.interval ~lo:0 ~hi:5 ~stride:1 ] 1.0 in
  let b = rsd [ Sym.Const 2; Sym.interval ~lo:0 ~hi:5 ~stride:1 ] 1.0 in
  let c = rsd [ Sym.Const 1; Sym.Const 3 ] 1.0 in
  Alcotest.(check bool) "disjoint on dim 0" false (Rsd.overlaps a b);
  Alcotest.(check bool) "overlapping" true (Rsd.overlaps a c);
  (* rank-0 descriptors describe the whole scalar *)
  Alcotest.(check bool) "scalars overlap" true (Rsd.overlaps (rsd [] 1.0) (rsd [] 2.0))

let test_rsd_merge () =
  let a = rsd [ Sym.Const 1; Sym.Const 2 ] 1.5 in
  let b = rsd [ Sym.Const 1; Sym.Const 4 ] 2.5 in
  let m = Rsd.merge a b in
  Alcotest.(check (float 1e-9)) "weights add" 4.0 m.Rsd.weight;
  Alcotest.(check bool) "dim 0 kept" true (Sym.equal m.Rsd.dims.(0) (Sym.Const 1));
  Alcotest.(check bool) "dim 1 widened" true
    (Sym.overlaps m.Rsd.dims.(1) (Sym.Const 2)
     && Sym.overlaps m.Rsd.dims.(1) (Sym.Const 4))

let test_rsd_set_merging () =
  (* descriptors differing in at most one dim merge in place *)
  let s = Rsd.Set.empty () in
  let s = Rsd.Set.add s (rsd [ Sym.Const 0; Sym.Const 0 ] 1.0) in
  let s = Rsd.Set.add s (rsd [ Sym.Const 0; Sym.Const 1 ] 1.0) in
  Alcotest.(check int) "merged" 1 (Rsd.Set.cardinal s);
  Alcotest.(check (float 1e-9)) "weight kept" 2.0 (Rsd.Set.total_weight s)

let test_rsd_set_limit () =
  (* force many pairwise-different descriptors; the list stays bounded *)
  let s = ref (Rsd.Set.empty ~limit:4 ()) in
  for k = 0 to 19 do
    s := Rsd.Set.add !s (rsd [ Sym.Const k; Sym.Const (100 * k); Sym.Const (-k) ] 1.0)
  done;
  Alcotest.(check bool) "bounded" true (Rsd.Set.cardinal !s <= 4);
  Alcotest.(check (float 1e-9)) "weight conserved" 20.0 (Rsd.Set.total_weight !s)

let test_rsd_set_weight_conserved =
  QCheck.Test.make ~name:"rsd set conserves weight" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 25) (pair small_nat small_nat))
    (fun items ->
      let s =
        List.fold_left
          (fun s (a, b) -> Rsd.Set.add s (rsd [ Sym.Const a; Sym.Const b ] 1.0))
          (Rsd.Set.empty ~limit:5 ()) items
      in
      abs_float (Rsd.Set.total_weight s -. float_of_int (List.length items)) < 1e-6
      && Rsd.Set.cardinal s <= 5)

let suite =
  [ QCheck_alcotest.to_alcotest test_add_sound;
    QCheck_alcotest.to_alcotest test_mul_const_sound;
    QCheck_alcotest.to_alcotest test_union_superset;
    QCheck_alcotest.to_alcotest test_overlap_sound;
    Alcotest.test_case "congruence cases" `Quick test_congruence_cases;
    Alcotest.test_case "strided cases" `Quick test_strided_cases;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "points" `Quick test_points;
    Alcotest.test_case "rsd overlap" `Quick test_rsd_overlap;
    Alcotest.test_case "rsd merge" `Quick test_rsd_merge;
    Alcotest.test_case "rsd set merging" `Quick test_rsd_set_merging;
    Alcotest.test_case "rsd set limit" `Quick test_rsd_set_limit;
    QCheck_alcotest.to_alcotest test_rsd_set_weight_conserved ]
