(* Tests for the KSR2-style timing model. *)

open Fs_ir
module Ksr = Fs_machine.Ksr
module Layout = Fs_layout.Layout
module Interp = Fs_interp.Interp
module Plan = Fs_layout.Plan

let run ?config ?(plan = []) prog ~nprocs =
  let config = match config with Some c -> c | None -> Ksr.default_config ~nprocs in
  let layout = Layout.realize prog plan ~block:config.Ksr.block in
  let m = Ksr.create config in
  let _ = Interp.run prog ~nprocs ~layout ~listener:(Ksr.listener m) in
  Ksr.finish m

let dsl_prog globals funcs =
  Validate.validate_exn (Dsl.program ~name:"t" ~globals funcs)

let compute_prog =
  let open Dsl in
  dsl_prog [ ("out", arr int_t 64) ]
    [ fn "main" []
        [ decl "acc" (i 0);
          sfor "k" (i 0) (i 2000) [ set "acc" ((p "acc" +% p "k") %% i 9973) ];
          (v "out").%(pdv %% i 64) <-- p "acc" ] ]

let test_deterministic () =
  let a = run compute_prog ~nprocs:4 and b = run compute_prog ~nprocs:4 in
  Alcotest.(check int) "same cycles" a.Ksr.cycles b.Ksr.cycles

let test_compute_scales () =
  (* pure per-process computation scales nearly linearly *)
  let t1 = (run compute_prog ~nprocs:1).Ksr.cycles in
  let t8 = (run compute_prog ~nprocs:8).Ksr.cycles in
  let speedup = float_of_int t1 /. float_of_int t8 in
  Alcotest.(check bool)
    (Printf.sprintf "near-linear (got %.2f)" speedup)
    true (speedup > 0.9)
  (* each process runs the same loop here, so the parallel run does P times
     the work in roughly the serial time: the point is that no artificial
     bottleneck appears *)

let fs_prog =
  (* heavy false sharing: everyone hammers one block *)
  let open Dsl in
  dsl_prog [ ("hot", arr int_t 64) ]
    [ fn "main" []
        [ sfor "k" (i 0) (i 200) [ bump ((v "hot").%(pdv)) (i 1) ] ] ]

let test_false_sharing_costs () =
  (* the same program, same references, transformed layout: much cheaper *)
  let n = (run fs_prog ~nprocs:8).Ksr.cycles in
  let c =
    (run fs_prog ~nprocs:8
       ~plan:[ Plan.Group_transpose { vars = [ "hot" ]; pdv_axis = 0 } ])
      .Ksr.cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "transformed at least 3x cheaper (N=%d C=%d)" n c)
    true
    (n > 3 * c)

let test_mem_stall_attribution () =
  let r = run fs_prog ~nprocs:8 in
  let stall = Array.fold_left ( + ) 0 r.Ksr.mem_stall in
  Alcotest.(check bool) "stalls recorded" true (stall > 0);
  Alcotest.(check bool) "misses recorded" true
    (Fs_cache.Mpcache.misses r.Ksr.cache > 0)

let barrier_prog =
  let open Dsl in
  dsl_prog [ ("x", int_t) ]
    [ fn "main" [] [ sfor "k" (i 0) (i 10) [ barrier ] ] ]

let test_barrier_cost_grows_with_procs () =
  let t2 = (run barrier_prog ~nprocs:2).Ksr.cycles in
  let t32 = (run barrier_prog ~nprocs:32).Ksr.cycles in
  Alcotest.(check bool) "barriers dearer on more processors" true (t32 > t2)

let test_clock_alignment_at_barriers () =
  (* after a barrier-terminated program every participant's clock is equal *)
  let open Dsl in
  let p =
    dsl_prog [ ("a", arr int_t 8) ]
      [ fn "main" []
          [ when_ (pdv ==% i 0) [ sfor "k" (i 0) (i 500) [ (v "a").%(i 0) <-- p "k" ] ];
            barrier ] ]
  in
  let r = run p ~nprocs:4 in
  Array.iter
    (fun c -> Alcotest.(check int) "aligned" r.Ksr.per_proc.(0) c)
    r.Ksr.per_proc

let test_lock_handoff_serializes () =
  let open Dsl in
  let p =
    dsl_prog [ ("l", lock_t); ("x", int_t) ]
      [ fn "main" []
          [ lock (v "l");
            sfor "k" (i 0) (i 300) [ bump (v "x") (i 1) ];
            unlock (v "l") ] ]
  in
  (* the critical sections execute one after another: the 8-process run
     costs roughly 8 serial sections, not one *)
  let t1 = (run p ~nprocs:1).Ksr.cycles in
  let t8 = (run p ~nprocs:8).Ksr.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "serialized (t1=%d t8=%d)" t1 t8)
    true
    (t8 > 5 * t1)

let test_cross_ring_latency () =
  (* a 33rd processor sits on the second ring: fetching data owned by
     processor 0 is dearer for it than for a same-ring processor *)
  let cfg = Ksr.default_config ~nprocs:34 in
  Alcotest.(check bool) "config sane" true
    (cfg.Ksr.cross_ring_latency > cfg.Ksr.same_ring_latency)

let suite =
  [ Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "compute scales" `Quick test_compute_scales;
    Alcotest.test_case "false sharing costs" `Quick test_false_sharing_costs;
    Alcotest.test_case "mem stall attribution" `Quick test_mem_stall_attribution;
    Alcotest.test_case "barrier cost grows" `Quick test_barrier_cost_grows_with_procs;
    Alcotest.test_case "clock alignment" `Quick test_clock_alignment_at_barriers;
    Alcotest.test_case "lock handoff serializes" `Quick test_lock_handoff_serializes;
    Alcotest.test_case "cross ring config" `Quick test_cross_ring_latency ]
