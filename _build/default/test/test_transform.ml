(* Tests for the transformation heuristics of Section 3.3. *)

open Fs_ir
module T = Fs_transform.Transform
module Plan = Fs_layout.Plan
module Summary = Fs_analysis.Summary

let dsl_prog ?structs globals funcs =
  Validate.validate_exn (Dsl.program ~name:"t" ?structs ~globals funcs)

let decision_of report name =
  let e =
    List.find
      (fun (e : T.entry) -> Summary.key_to_string e.T.key = name)
      report.T.entries
  in
  e.T.decision

let has_action pred report = List.exists pred report.T.plan

let test_group_transpose_found () =
  let open Dsl in
  let p =
    dsl_prog [ ("cnt", arr int_t 8) ]
      [ fn "main" []
          [ sfor "k" (i 0) (i 100) [ bump ((v "cnt").%(pdv)) (p "k") ] ] ]
  in
  let r = T.plan p ~nprocs:8 in
  match decision_of r "cnt" with
  | T.Group { axis = 0 } -> ()
  | _ -> Alcotest.fail "expected group & transpose on axis 0"

let test_group_axis_1 () =
  let open Dsl in
  let p =
    dsl_prog [ ("m", arr2 int_t 16 8) ]
      [ fn "main" []
          [ sfor "r" (i 0) (i 16) [ bump ((v "m").%(p "r").%(pdv)) (i 1) ] ] ]
  in
  let r = T.plan p ~nprocs:8 in
  match decision_of r "m" with
  | T.Group { axis = 1 } -> ()
  | _ -> Alcotest.fail "expected axis 1"

let test_grouping_joins_vars () =
  let open Dsl in
  let p =
    dsl_prog [ ("a", arr int_t 8); ("b", arr int_t 8) ]
      [ fn "main" []
          [ sfor "k" (i 0) (i 100)
              [ bump ((v "a").%(pdv)) (i 1); bump ((v "b").%(pdv)) (i 1) ] ] ]
  in
  let r = T.plan p ~nprocs:8 in
  Alcotest.(check bool) "one grouped action" true
    (has_action
       (function
         | Plan.Group_transpose { vars; _ } -> vars = [ "a"; "b" ]
         | _ -> false)
       r)

let test_regroup_strided () =
  let open Dsl in
  let p =
    dsl_prog [ ("flat", arr int_t 64) ]
      [ fn "main" []
          [ sfor "k" (i 0) (i 8)
              [ bump ((v "flat").%((p "k" *% i 8) +% pdv)) (i 1) ] ] ]
  in
  let r = T.plan p ~nprocs:8 in
  match decision_of r "flat" with
  | T.Regroup { ways = 8; chunked = false } -> ()
  | _ -> Alcotest.fail "expected strided regroup"

let test_regroup_chunked () =
  let open Dsl in
  let p =
    dsl_prog [ ("flat", arr int_t 64) ]
      [ fn "main" []
          [ sfor "k" (i 0) (i 8)
              [ bump ((v "flat").%((pdv *% i 8) +% p "k")) (i 1) ] ] ]
  in
  let r = T.plan p ~nprocs:8 in
  match decision_of r "flat" with
  | T.Regroup { chunked = true; _ } -> ()
  | _ -> Alcotest.fail "expected chunked regroup"

let test_indirection_found () =
  let open Dsl in
  let structs = [ { Ast.sname = "s"; fields = [ ("hdr", int_t); ("per", arr int_t 8) ] } ] in
  let p =
    dsl_prog ~structs [ ("n", arr (struct_t "s") 16) ]
      [ fn "main" []
          [ sfor "k" (i 0) (i 16)
              [ bump ((v "n").%(p "k").%{"per"}.%(pdv)) (i 1) ] ] ]
  in
  let r = T.plan p ~nprocs:8 in
  (match decision_of r "n.per" with
   | T.Indirection { field = "per" } -> ()
   | _ -> Alcotest.fail "expected indirection");
  Alcotest.(check bool) "plan carries it" true
    (has_action
       (function Plan.Indirect { var = "n"; fields = [ "per" ] } -> true | _ -> false)
       r)

let test_pad_align_found () =
  let open Dsl in
  (* scattered write-shared records: pad & align per element *)
  let p =
    dsl_prog
      ~structs:[ { Ast.sname = "c"; fields = [ ("d", int_t); ("m", int_t) ] } ]
      [ ("cells", arr (struct_t "c") 16); ("ptr", int_t) ]
      [ fn "main" []
          [ sfor "k" (i 0) (i 50)
              [ decl "c" (ld (v "ptr") %% i 16);
                bump ((v "cells").%(p "c").%{"d"}) (i 1);
                (v "ptr") <-- ((ld (v "ptr") +% pdv +% i 1) %% i 97) ] ] ]
  in
  let r = T.plan p ~nprocs:8 in
  (match decision_of r "cells.d" with
   | T.Pad { element = true } -> ()
   | d ->
     Alcotest.failf "expected pad, got %s"
       (match d with
        | T.Keep -> "keep" | T.Group _ -> "group" | T.Regroup _ -> "regroup"
        | T.Indirection _ -> "ind" | T.Pad _ -> "pad"))

let test_locks_always_padded () =
  let open Dsl in
  let p =
    dsl_prog [ ("l", lock_t); ("x", int_t) ]
      [ fn "main" [] [ lock (v "l"); bump (v "x") (i 1); unlock (v "l") ] ]
  in
  let r = T.plan p ~nprocs:4 in
  Alcotest.(check bool) "pad locks present" true
    (has_action (function Plan.Pad_locks -> true | _ -> false) r);
  (* and can be disabled for the ablation *)
  let r' = T.plan ~options:{ T.default_options with pad_locks = false } p ~nprocs:4 in
  Alcotest.(check bool) "ablation removes it" false
    (has_action (function Plan.Pad_locks -> true | _ -> false) r')

let test_hotness_threshold () =
  let open Dsl in
  (* a cold write-shared scalar next to a hot per-process vector: the
     scalar stays because static profiling rates it cold *)
  let p =
    dsl_prog [ ("hot", arr int_t 8); ("coldvar", int_t) ]
      [ fn "main" []
          [ sfor "k" (i 0) (i 500) [ bump ((v "hot").%(pdv)) (i 1) ];
            bump (v "coldvar") (i 1) ] ]
  in
  let r = T.plan p ~nprocs:8 in
  (match decision_of r "coldvar" with
   | T.Keep -> ()
   | _ -> Alcotest.fail "cold scalar should stay");
  (* with a zero threshold it is padded *)
  let r' = T.plan ~options:{ T.default_options with hot_threshold = 0.0 } p ~nprocs:8 in
  match decision_of r' "coldvar" with
  | T.Pad _ -> ()
  | _ -> Alcotest.fail "zero threshold should pad it"

let test_single_writer_kept () =
  let open Dsl in
  let p =
    dsl_prog [ ("tbl", arr int_t 16); ("out", arr int_t 8) ]
      [ fn "main" []
          [ when_ (pdv ==% i 0)
              [ sfor "k" (i 0) (i 16) [ (v "tbl").%(p "k") <-- p "k" ] ];
            barrier;
            sfor "k" (i 0) (i 50)
              [ bump ((v "out").%(pdv)) (ld (v "tbl").%((p "k" +% pdv) %% i 16)) ] ] ]
  in
  let r = T.plan p ~nprocs:8 in
  match decision_of r "tbl" with
  | T.Keep -> ()
  | _ -> Alcotest.fail "single-writer table should stay"

let test_shared_reads_with_locality_block_transform () =
  let open Dsl in
  (* written per-process rarely, read by everyone with unit stride often:
     the order-of-magnitude rule keeps it *)
  let p =
    dsl_prog [ ("tab", arr int_t 8) ]
      [ fn "main" []
          [ (v "tab").%(pdv) <-- pdv;
            barrier;
            sfor "r" (i 0) (i 60)
              [ decl "s" (i 0);
                sfor "q" (i 0) (i 8) [ set "s" (p "s" +% ld (v "tab").%(p "q")) ];
                (v "tab").%(pdv) <-- (p "s" %% i 1000) ] ] ]
  in
  let r = T.plan p ~nprocs:8 in
  match decision_of r "tab" with
  | T.Keep -> ()
  | _ -> Alcotest.fail "read-dominated table should stay"

let test_unit_stride_writes_not_padded () =
  let open Dsl in
  (* Topopt's revolving partition: write-shared, but unit stride *)
  let p =
    dsl_prog [ ("a", arr int_t 64) ]
      [ fn "main" []
          [ sfor "r" (i 0) (i 10)
              [ decl "base" (((pdv +% p "r") %% i 8) *% i 8);
                sfor "j" (i 0) (i 8) [ bump ((v "a").%(p "base" +% p "j")) (i 1) ] ] ] ]
  in
  let r = T.plan p ~nprocs:8 in
  match decision_of r "a" with
  | T.Keep -> ()
  | _ -> Alcotest.fail "revolving unit-stride array should stay"

let test_profile_ablation_changes_plan () =
  let open Dsl in
  (* with profiling the loop-heavy vector dominates; without it the weights
     flatten and the cold scalar crosses the threshold *)
  let p =
    dsl_prog [ ("hot", arr int_t 8); ("coldvar", int_t) ]
      [ fn "main" []
          [ sfor "k" (i 0) (i 500) [ bump ((v "hot").%(pdv)) (i 1) ];
            bump (v "coldvar") (i 1) ] ]
  in
  let with_p = T.plan p ~nprocs:8 in
  let without =
    T.plan ~options:{ T.default_options with profile = false } p ~nprocs:8
  in
  let pads r = has_action (function Plan.Pad_align _ -> true | _ -> false) r in
  Alcotest.(check bool) "profiled: scalar kept" false (pads with_p);
  Alcotest.(check bool) "unprofiled: scalar padded" true (pads without)

let test_plan_validates () =
  (* every compiler plan must validate against its program *)
  List.iter
    (fun (w : Fs_workloads.Workload.t) ->
      List.iter
        (fun nprocs ->
          let prog = w.build ~nprocs ~scale:1 in
          let r = T.plan prog ~nprocs in
          Plan.validate prog r.T.plan)
        [ 2; 7; 12 ])
    Fs_workloads.Workloads.all

let test_report_renders () =
  let open Dsl in
  let p =
    dsl_prog [ ("cnt", arr int_t 4) ]
      [ fn "main" [] [ sfor "k" (i 0) (i 100) [ bump ((v "cnt").%(pdv)) (i 1) ] ] ]
  in
  let r = T.plan p ~nprocs:4 in
  let s = Format.asprintf "%a" T.pp_report r in
  Tutil.check_contains "report" s "cnt";
  Tutil.check_contains "report" s "group&transpose"

let suite =
  [ Alcotest.test_case "group & transpose" `Quick test_group_transpose_found;
    Alcotest.test_case "group axis 1" `Quick test_group_axis_1;
    Alcotest.test_case "grouping joins vars" `Quick test_grouping_joins_vars;
    Alcotest.test_case "regroup strided" `Quick test_regroup_strided;
    Alcotest.test_case "regroup chunked" `Quick test_regroup_chunked;
    Alcotest.test_case "indirection" `Quick test_indirection_found;
    Alcotest.test_case "pad & align" `Quick test_pad_align_found;
    Alcotest.test_case "locks always padded" `Quick test_locks_always_padded;
    Alcotest.test_case "hotness threshold" `Quick test_hotness_threshold;
    Alcotest.test_case "single writer kept" `Quick test_single_writer_kept;
    Alcotest.test_case "read locality blocks transform" `Quick
      test_shared_reads_with_locality_block_transform;
    Alcotest.test_case "unit stride not padded" `Quick test_unit_stride_writes_not_padded;
    Alcotest.test_case "profile ablation" `Quick test_profile_ablation_changes_plan;
    Alcotest.test_case "workload plans validate" `Quick test_plan_validates;
    Alcotest.test_case "report renders" `Quick test_report_renders ]
