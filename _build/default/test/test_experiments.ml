(* Tests for the experiment drivers: structural sanity of every table and
   figure reproduction, on reduced parameters so the suite stays fast. *)

module E = Falseshare.Experiments
module W = Fs_workloads.Workload

let test_figure3_rows () =
  let rows = E.figure3 ~blocks:[ 32 ] ~scale_override:1 () in
  Alcotest.(check int) "six programs, one block" 6 (List.length rows);
  List.iter
    (fun (r : E.fig3_row) ->
      (* indirection adds pointer loads, so the transformed run may have
         more references, never fewer *)
      Alcotest.(check bool) (r.name ^ " accesses not lost") true
        (r.unopt.E.accesses <= r.compiler.E.accesses);
      Alcotest.(check bool) (r.name ^ " has misses") true (r.unopt.E.misses > 0);
      Alcotest.(check bool) (r.name ^ " fs <= misses") true
        (r.unopt.E.false_sharing <= r.unopt.E.misses
         && r.compiler.E.false_sharing <= r.compiler.E.misses);
      Alcotest.(check bool) (r.name ^ " fs reduced") true
        (r.compiler.E.false_sharing < r.unopt.E.false_sharing))
    rows;
  let s = E.render_figure3 rows in
  Tutil.check_contains "fig3 render" s "maxflow";
  Tutil.check_contains "fig3 render" s "FS removed"

let test_table2_rows () =
  let rows = E.table2 ~blocks:[ 64 ] () in
  Alcotest.(check int) "six programs" 6 (List.length rows);
  List.iter
    (fun (r : E.table2_row) ->
      (* the per-transformation fractions decompose the total *)
      let parts = r.group_transpose +. r.indirection +. r.pad_align +. r.locks in
      Alcotest.(check (float 0.02)) (r.name ^ " parts sum to total")
        r.total_reduction parts;
      Alcotest.(check bool) (r.name ^ " meaningful reduction") true
        (r.total_reduction > 0.5))
    rows;
  (* the per-benchmark signatures of Table 2 *)
  let row n = List.find (fun (r : E.table2_row) -> r.name = n) rows in
  Alcotest.(check bool) "pverify is indirection-dominated" true
    ((row "pverify").indirection > (row "pverify").group_transpose);
  Alcotest.(check bool) "fmm is g&t-dominated" true
    ((row "fmm").group_transpose > 0.5);
  Alcotest.(check bool) "maxflow uses no g&t" true
    ((row "maxflow").group_transpose < 0.01 && (row "maxflow").indirection < 0.01);
  Alcotest.(check bool) "maxflow pads" true ((row "maxflow").pad_align > 0.1);
  let s = E.render_table2 rows in
  Tutil.check_contains "table2 render" s "pverify"

let test_speedups_and_table3 () =
  let procs = [ 1; 4; 8 ] in
  let series = E.speedups ~procs ~names:[ "pverify"; "water" ] () in
  (* pverify has three versions, water two *)
  Alcotest.(check int) "five series" 5 (List.length series);
  List.iter
    (fun (s : E.series) ->
      Alcotest.(check int) "all points" 3 (List.length s.points);
      let one = List.assoc 1 s.points in
      Alcotest.(check bool) "defined at P=1" true (one > 0.0))
    series;
  (* the baseline is the unoptimized uniprocessor run: its own speedup is 1 *)
  let pv_n =
    List.find (fun (s : E.series) -> s.workload = "pverify" && s.version = W.N) series
  in
  Alcotest.(check (float 1e-6)) "N speedup at 1" 1.0 (List.assoc 1 pv_n.points);
  let rows = E.table3 ~series () in
  let pv = List.find (fun (r : E.table3_row) -> r.name = "pverify") rows in
  Alcotest.(check int) "three versions reported" 3 (List.length pv.results);
  let best_of v =
    let _, sp, _ = List.find (fun (v', _, _) -> v' = v) pv.results in
    sp
  in
  Alcotest.(check bool) "compiler wins" true (best_of W.C > best_of W.N);
  let s = E.render_table3 rows in
  Tutil.check_contains "table3 render" s "pverify"

let test_plan_for () =
  let w = Fs_workloads.Workloads.find "pverify" in
  let prog = w.W.build ~nprocs:4 ~scale:1 in
  Alcotest.(check bool) "N empty" true (E.plan_for w W.N prog ~nprocs:4 ~scale:1 = []);
  Alcotest.(check bool) "single proc empty" true
    (E.plan_for w W.C prog ~nprocs:1 ~scale:1 = []);
  Alcotest.(check bool) "C non-empty" true
    (E.plan_for w W.C prog ~nprocs:4 ~scale:1 <> []);
  Alcotest.(check bool) "P non-empty" true
    (E.plan_for w W.P prog ~nprocs:4 ~scale:1 <> [])

let test_renderers_nonempty () =
  let stats =
    { E.fs_share_of_misses_128 = 0.7;
      fs_removed_128 = 0.8;
      other_miss_increase_128 = 0.19;
      total_miss_reduction_64 = 0.49 }
  in
  let s = E.render_stats stats in
  Tutil.check_contains "stats render" s "70.0%";
  let rows = [ { E.name = "x"; improvement = 0.25; at_procs = 8 } ] in
  Tutil.check_contains "exec render" (E.render_exec rows) "25.0%"

let suite =
  [ Alcotest.test_case "figure 3" `Slow test_figure3_rows;
    Alcotest.test_case "table 2" `Slow test_table2_rows;
    Alcotest.test_case "speedups / table 3" `Slow test_speedups_and_table3;
    Alcotest.test_case "plan_for" `Quick test_plan_for;
    Alcotest.test_case "renderers" `Quick test_renderers_nonempty ]

let test_attribution () =
  (* the simulator's per-structure verdict names the same culprits the
     compiler's static report does *)
  let w = Fs_workloads.Workloads.find "pverify" in
  let nprocs = 8 in
  let prog = w.W.build ~nprocs ~scale:1 in
  let rows = Falseshare.Attribution.attribute prog [] ~nprocs ~block:128 in
  (match rows with
   | top :: _ ->
     Alcotest.(check string) "gates records dominate false sharing" "gates"
       top.Falseshare.Attribution.var
   | [] -> Alcotest.fail "no rows");
  (* after transformation the false sharing collapses everywhere *)
  let cplan = Falseshare.Sim.compiler_plan prog ~nprocs in
  let rows' = Falseshare.Attribution.attribute prog cplan ~nprocs ~block:128 in
  let total_fs r =
    List.fold_left
      (fun acc (x : Falseshare.Attribution.row) ->
        acc + x.counts.Fs_cache.Mpcache.false_sh)
      0 r
  in
  Alcotest.(check bool) "transformed fs tiny" true
    (total_fs rows' * 10 < total_fs rows);
  Tutil.check_contains "render" (Falseshare.Attribution.render rows) "gates"

let test_parc_example_file () =
  (* the shipped .parc example parses, validates, and gets the expected plan *)
  let file = "../../../examples/histogram.parc" in
  if Sys.file_exists file then begin
    let ic = open_in file in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Fs_parc.Parser.parse_and_validate src with
    | Error errs -> Alcotest.fail (String.concat "; " errs)
    | Ok prog ->
      let plan = Falseshare.Sim.compiler_plan prog ~nprocs:8 in
      Alcotest.(check bool) "counts regrouped" true
        (List.exists
           (function
             | Fs_layout.Plan.Regroup { var = "counts"; _ } -> true
             | _ -> false)
           plan)
  end

let suite =
  suite
  @ [ Alcotest.test_case "attribution" `Slow test_attribution;
      Alcotest.test_case "parc example file" `Quick test_parc_example_file ]
