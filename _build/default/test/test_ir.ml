(* Unit and property tests for the ParC IR: the cell model, validation,
   and the builder DSL. *)

open Fs_ir
module A = Ast

let tiny_structs =
  [ { A.sname = "pair"; fields = [ ("fst", A.Scalar A.Tint); ("snd", A.Scalar A.Tfloat) ] };
    { A.sname = "node";
      fields =
        [ ("hdr", A.Scalar A.Tint);
          ("vals", A.Array (A.Scalar A.Tint, 4));
          ("l", A.Scalar A.Tlock) ] } ]

let prog_with globals funcs =
  { A.pname = "t"; structs = tiny_structs; globals; funcs; entry = "main" }

let empty_main = { A.fname = "main"; params = []; body = [] }

let base = prog_with [ ("x", A.Scalar A.Tint) ] [ empty_main ]

let test_cells_count () =
  Alcotest.(check int) "scalar" 1 (Cells.count base (A.Scalar A.Tint));
  Alcotest.(check int) "array" 6 (Cells.count base (A.Array (A.Scalar A.Tint, 6)));
  Alcotest.(check int) "nested" 12
    (Cells.count base (A.Array (A.Array (A.Scalar A.Tint, 4), 3)));
  Alcotest.(check int) "struct pair" 2 (Cells.count base (A.Struct "pair"));
  Alcotest.(check int) "struct node" 6 (Cells.count base (A.Struct "node"));
  Alcotest.(check int) "array of struct" 18
    (Cells.count base (A.Array (A.Struct "node", 3)))

let test_field_offset () =
  let node = A.find_struct base "node" in
  Alcotest.(check int) "hdr" 0 (Cells.field_offset base node "hdr");
  Alcotest.(check int) "vals" 1 (Cells.field_offset base node "vals");
  Alcotest.(check int) "l" 5 (Cells.field_offset base node "l")

let test_resolve () =
  let ty = A.Array (A.Struct "node", 3) in
  let off, final = Cells.resolve base ty [ Cells.Eidx 2; Cells.Efld "vals"; Cells.Eidx 1 ] in
  Alcotest.(check int) "offset" ((2 * 6) + 1 + 1) off;
  (match final with
   | A.Scalar A.Tint -> ()
   | _ -> Alcotest.fail "expected int scalar");
  Alcotest.check_raises "oob" (Cells.Bounds "index 3 out of bounds [0,3)")
    (fun () -> ignore (Cells.resolve base ty [ Cells.Eidx 3 ]))

let test_scalar_at () =
  let ty = A.Array (A.Struct "node", 2) in
  Alcotest.(check bool) "lock cell" true (Cells.scalar_at base ty 5 = A.Tlock);
  Alcotest.(check bool) "int cell" true (Cells.scalar_at base ty 7 = A.Tint);
  let locks = ref 0 in
  Cells.iter_scalars base ty (fun _ s -> if s = A.Tlock then incr locks);
  Alcotest.(check int) "two locks" 2 !locks

let test_array_dims () =
  (match Cells.array_dims base (A.Array (A.Array (A.Scalar A.Tint, 4), 3)) with
   | Some ([ 3; 4 ], A.Scalar A.Tint) -> ()
   | _ -> Alcotest.fail "dims wrong");
  (match Cells.array_dims base (A.Scalar A.Tint) with
   | None -> ()
   | Some _ -> Alcotest.fail "scalar has no dims")

let test_coords_roundtrip =
  QCheck.Test.make ~name:"cell coords roundtrip" ~count:500
    QCheck.(triple (int_range 1 6) (int_range 1 6) (int_range 1 3))
    (fun (d0, d1, ec) ->
      let dims = [ d0; d1 ] in
      let total = d0 * d1 * ec in
      List.for_all
        (fun id ->
          let coords, inner = Cells.coords_of_cell ~dims ~elt_cells:ec id in
          Cells.cell_of_coords ~dims ~elt_cells:ec coords inner = id)
        (List.init total Fun.id))

(* --- validation --- *)

let check_invalid expected_frag prog =
  match Validate.check prog with
  | Ok () -> Alcotest.fail ("expected invalid: " ^ expected_frag)
  | Error errs ->
    let found = List.exists (fun e -> Tutil.contains e expected_frag) errs in
    if not found then
      Alcotest.fail
        (Printf.sprintf "expected %S among: %s" expected_frag (String.concat "; " errs))

let test_validate_ok () =
  let open Dsl in
  let p =
    program ~name:"ok"
      ~globals:[ ("a", arr int_t 4); ("l", lock_t) ]
      [ fn "main" []
          [ lock (v "l"); (v "a").%(i 0) <-- i 1; unlock (v "l") ] ]
  in
  match Validate.check p with
  | Ok () -> ()
  | Error e -> Alcotest.fail (String.concat "; " e)

let test_validate_errors () =
  let open Dsl in
  let with_main body = [ { A.fname = "main"; params = []; body } ] in
  check_invalid "unknown global"
    (prog_with [] (with_main [ (v "nope") <-- i 1 ]));
  check_invalid "undeclared private"
    (prog_with [ ("x", int_t) ] (with_main [ (v "x") <-- p "u" ]));
  check_invalid "lock operation on data cell"
    (prog_with [ ("x", int_t) ] (with_main [ lock (v "x") ]));
  check_invalid "data access to lock cell"
    (prog_with [ ("l", lock_t) ] (with_main [ (v "l") <-- i 1 ]));
  check_invalid "needs an index"
    (prog_with [ ("a", arr int_t 3) ] (with_main [ (v "a") <-- i 1 ]));
  check_invalid "call to unknown function"
    (prog_with [] (with_main [ call "nope" [] ]));
  check_invalid "entry function \"main\" not defined" (prog_with [] []);
  check_invalid "duplicate global"
    (prog_with [ ("x", int_t); ("x", int_t) ] (with_main []));
  check_invalid "array dimension"
    { A.pname = "t"; structs = []; globals = [ ("a", A.Array (A.Scalar A.Tint, 0)) ];
      funcs = with_main []; entry = "main" }

let test_validate_arity () =
  let open Dsl in
  let p =
    { A.pname = "t"; structs = []; globals = [];
      funcs = [ fn "f" [ "a"; "b" ] []; fn "main" [] [ call "f" [ i 1 ] ] ];
      entry = "main" }
  in
  check_invalid "expected 2" p

let test_validate_recursive_struct () =
  let p =
    { A.pname = "t";
      structs = [ { A.sname = "s"; fields = [ ("self", A.Struct "s") ] } ];
      globals = [ ("x", A.Struct "s") ]; funcs = [ empty_main ]; entry = "main" }
  in
  check_invalid "contains itself" p

let test_iterators () =
  let open Dsl in
  let body =
    [ sfor "k" (i 0) (i 3) [ (v "x") <-- (ld (v "x") +% p "k") ];
      when_ (pdv ==% i 0) [ barrier ] ]
  in
  let stores = ref 0 and total = ref 0 in
  Ast.iter_stmts
    (fun s ->
      incr total;
      match s with A.Store _ -> incr stores | _ -> ())
    body;
  Alcotest.(check int) "stores found" 1 !stores;
  Alcotest.(check int) "statements walked" 4 !total;
  let loads = ref 0 in
  Ast.iter_lvalues_expr (fun _ -> incr loads) (ld (v "a").%(ld (v "b")));
  Alcotest.(check int) "nested lvalue loads" 2 !loads

let test_pp_prints () =
  let open Dsl in
  let p =
    program ~name:"pp" ~structs:tiny_structs
      ~globals:[ ("a", arr2 int_t 3 4); ("n", struct_t "node") ]
      [ fn "main" []
          [ decl "t" (i 1);
            sif (p "t" >% i 0) [ (v "a").%(i 0).%(i 1) <-- f 2.5 ] [ barrier ];
            swhile (p "t" <% i 10) [ set "t" (p "t" *% i 2) ] ] ]
  in
  let s = Pp.program_to_string p in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" frag) true
        (Tutil.contains s frag))
    [ "program pp;"; "int a[3][4]"; "struct node"; "while"; "if"; "barrier;" ]

let suite =
  [ Alcotest.test_case "cells count" `Quick test_cells_count;
    Alcotest.test_case "field offset" `Quick test_field_offset;
    Alcotest.test_case "resolve" `Quick test_resolve;
    Alcotest.test_case "scalar at / iter" `Quick test_scalar_at;
    Alcotest.test_case "array dims" `Quick test_array_dims;
    QCheck_alcotest.to_alcotest test_coords_roundtrip;
    Alcotest.test_case "validate ok" `Quick test_validate_ok;
    Alcotest.test_case "validate errors" `Quick test_validate_errors;
    Alcotest.test_case "validate arity" `Quick test_validate_arity;
    Alcotest.test_case "validate recursive struct" `Quick test_validate_recursive_struct;
    Alcotest.test_case "iterators" `Quick test_iterators;
    Alcotest.test_case "pretty printer" `Quick test_pp_prints ]
