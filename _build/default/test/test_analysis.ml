(* Tests for the three analysis stages: per-process summaries with RSDs,
   PDV detection, and the barrier phase structure. *)

open Fs_ir
module Summary = Fs_analysis.Summary
module Pdv = Fs_analysis.Pdv
module NC = Fs_analysis.Nonconcurrency
module Sym = Fs_rsd.Sym
module Rsd = Fs_rsd.Rsd

let key ?(fieldsig = []) var = { Summary.var; fieldsig }

let writes_of summary ~phase ~pid k =
  match Summary.get summary ~phase ~pid k with
  | Some a -> Rsd.Set.to_list a.Summary.writes
  | None -> []

let dsl_prog globals body =
  let open Dsl in
  Validate.validate_exn (program ~name:"t" ~globals [ fn "main" [] body ])

let test_per_pid_sections () =
  let open Dsl in
  let p = dsl_prog [ ("a", arr int_t 8) ] [ (v "a").%(pdv) <-- i 1 ] in
  let s = Summary.analyze p ~nprocs:4 in
  List.iteri
    (fun pid () ->
      match writes_of s ~phase:0 ~pid (key "a") with
      | [ r ] ->
        Alcotest.(check bool)
          (Printf.sprintf "P%d writes a[%d]" pid pid)
          true
          (Sym.equal r.Rsd.dims.(0) (Sym.Const pid))
      | _ -> Alcotest.fail "expected one descriptor")
    [ (); (); (); () ]

let test_pdv_derived_sections () =
  let open Dsl in
  (* lo = pid*4 propagates interprocedurally through a call *)
  let p =
    Validate.validate_exn
      (program ~name:"t"
         ~globals:[ ("a", arr int_t 16) ]
         [ Dsl.fn "work" [ "lo" ]
             [ sfor "j" (i 0) (i 4) [ (v "a").%(p "lo" +% p "j") <-- i 1 ] ];
           Dsl.fn "main" [] [ call "work" [ pdv *% i 4 ] ] ])
  in
  let s = Summary.analyze p ~nprocs:4 in
  match writes_of s ~phase:0 ~pid:2 (key "a") with
  | [ r ] ->
    Alcotest.(check bool) "P2 writes [8..11]" true
      (Sym.equal r.Rsd.dims.(0) (Sym.interval ~lo:8 ~hi:11 ~stride:1))
  | _ -> Alcotest.fail "expected one descriptor"

let test_interleaved_sections () =
  let open Dsl in
  let p =
    dsl_prog [ ("a", arr int_t 16) ]
      [ sfor "k" (i 0) (i 4) [ (v "a").%((p "k" *% i 4) +% pdv) <-- i 1 ] ]
  in
  let s = Summary.analyze p ~nprocs:4 in
  match writes_of s ~phase:0 ~pid:1 (key "a") with
  | [ r ] ->
    Alcotest.(check bool) "stride 4 offset 1" true
      (Sym.equal r.Rsd.dims.(0) (Sym.interval ~lo:1 ~hi:13 ~stride:4))
  | _ -> Alcotest.fail "expected one descriptor"

let test_dynamic_congruence () =
  let open Dsl in
  (* an index loaded from shared memory is an unknown point; times P plus
     pid it is still a provably per-process congruence class *)
  let p =
    dsl_prog [ ("a", arr int_t 32); ("q", int_t) ]
      [ decl "t" (ld (v "q"));
        (v "a").%((p "t" *% i 4) +% pdv) <-- i 1 ]
  in
  let s = Summary.analyze p ~nprocs:4 in
  match writes_of s ~phase:0 ~pid:3 (key "a") with
  | [ r ] ->
    Alcotest.(check bool) "congruent 3 mod 4" true
      (Sym.equal r.Rsd.dims.(0) (Sym.congruent ~m:4 ~r:3))
  | _ -> Alcotest.fail "expected one descriptor"

let test_master_only_control_flow () =
  let open Dsl in
  let p =
    dsl_prog [ ("a", arr int_t 4) ]
      [ when_ (pdv ==% i 0) [ (v "a").%(i 0) <-- i 1 ] ]
  in
  let s = Summary.analyze p ~nprocs:4 in
  Alcotest.(check int) "P0 writes" 1
    (List.length (writes_of s ~phase:0 ~pid:0 (key "a")));
  Alcotest.(check int) "P1 does not" 0
    (List.length (writes_of s ~phase:0 ~pid:1 (key "a")))

let test_phases () =
  let open Dsl in
  let p =
    dsl_prog [ ("a", int_t); ("b", int_t) ]
      [ (v "a") <-- i 1; barrier; (v "b") <-- i 2 ]
  in
  let s = Summary.analyze p ~nprocs:2 in
  Alcotest.(check int) "two phases" 2 (Summary.phases s);
  Alcotest.(check int) "a in phase 0" 1
    (List.length (writes_of s ~phase:0 ~pid:0 (key "a")));
  Alcotest.(check int) "b not in phase 0" 0
    (List.length (writes_of s ~phase:0 ~pid:0 (key "b")));
  Alcotest.(check int) "b in phase 1" 1
    (List.length (writes_of s ~phase:1 ~pid:0 (key "b")))

let test_phase_alignment_under_pdv_branch () =
  let open Dsl in
  (* a barrier-free master branch must not desynchronize phase numbering *)
  let p =
    dsl_prog [ ("a", int_t) ]
      [ when_ (pdv ==% i 0) [ (v "a") <-- i 1 ];
        barrier;
        (v "a") <-- i 2 ]
  in
  let s = Summary.analyze p ~nprocs:3 in
  Alcotest.(check int) "phase 1 write seen by all" 3
    (List.length
       (List.concat_map
          (fun pid -> writes_of s ~phase:1 ~pid (key "a"))
          [ 0; 1; 2 ]))

let test_profile_weights () =
  let open Dsl in
  let p =
    dsl_prog [ ("a", arr int_t 8) ]
      [ sfor "j" (i 0) (i 8) [ (v "a").%(p "j") <-- i 1 ] ]
  in
  let s = Summary.analyze p ~nprocs:1 in
  Alcotest.(check (float 1e-6)) "constant trip weight" 8.0
    (Summary.write_weight s (key "a"));
  let s' = Summary.analyze ~profile:false p ~nprocs:1 in
  Alcotest.(check (float 1e-6)) "profiling off" 1.0
    (Summary.write_weight s' (key "a"))

let test_while_weight () =
  let open Dsl in
  let p =
    dsl_prog [ ("a", int_t) ]
      [ decl "go" (i 1);
        swhile (p "go") [ (v "a") <-- i 1; set "go" (i 0) ] ]
  in
  let s = Summary.analyze p ~nprocs:1 in
  Alcotest.(check (float 1e-6)) "unknown loop weight"
    Summary.unknown_loop_weight
    (Summary.write_weight s (key "a"))

let test_loop_widening () =
  let open Dsl in
  (* a variable assigned in a loop body is unknown after the loop *)
  let p =
    dsl_prog [ ("a", arr int_t 8) ]
      [ decl "x" (i 2);
        sfor "j" (i 0) (i 3) [ set "x" (p "x" +% i 1) ];
        (v "a").%(p "x") <-- i 1 ]
  in
  let s = Summary.analyze p ~nprocs:1 in
  match writes_of s ~phase:0 ~pid:0 (key "a") with
  | [ r ] ->
    Alcotest.(check bool) "widened to unknown" true
      (Sym.equal r.Rsd.dims.(0) Sym.Unknown)
  | _ -> Alcotest.fail "expected one descriptor"

let test_empty_loop_skipped () =
  let open Dsl in
  let p =
    dsl_prog [ ("a", arr int_t 8) ]
      [ sfor "j" (i 5) (i 5) [ (v "a").%(p "j") <-- i 1 ] ]
  in
  let s = Summary.analyze p ~nprocs:1 in
  Alcotest.(check (float 1e-6)) "no writes recorded" 0.0
    (Summary.write_weight s (key "a"))

let test_fieldsig_keys () =
  let open Dsl in
  let p =
    Validate.validate_exn
      (program ~name:"t"
         ~structs:[ { Ast.sname = "s"; fields = [ ("f", arr int_t 4); ("g", int_t) ] } ]
         ~globals:[ ("n", arr (struct_t "s") 3) ]
         [ Dsl.fn "main" []
             [ (v "n").%(i 1).%{"f"}.%(pdv) <-- i 1;
               (v "n").%(i 1).%{"g"} <-- i 2 ] ])
  in
  let s = Summary.analyze p ~nprocs:2 in
  let keys = List.map Summary.key_to_string (Summary.keys s) in
  Alcotest.(check (list string)) "field-split keys" [ "n.f"; "n.g" ] keys;
  match writes_of s ~phase:0 ~pid:1 (key ~fieldsig:[ "f" ] "n") with
  | [ r ] ->
    Alcotest.(check int) "two index dims" 2 (Array.length r.Rsd.dims);
    Alcotest.(check bool) "inner dim is pid" true
      (Sym.equal r.Rsd.dims.(1) (Sym.Const 1))
  | _ -> Alcotest.fail "expected one descriptor"

(* --- PDV detection --- *)

let test_pdv_detection () =
  let open Dsl in
  let p =
    Validate.validate_exn
      (program ~name:"t" ~globals:[ ("a", arr int_t 8) ]
         [ Dsl.fn "work" [ "base"; "cnt" ] [ (v "a").%(p "base") <-- p "cnt" ];
           Dsl.fn "main" []
             [ decl "mine" (pdv *% i 2);
               decl "c" (i 7);
               call "work" [ p "mine"; p "c" ] ] ])
  in
  let d = Pdv.analyze p in
  Alcotest.(check bool) "mine is PDV" true (Pdv.is_pdv d ~func:"main" "mine");
  Alcotest.(check bool) "c is not" false (Pdv.is_pdv d ~func:"main" "c");
  Alcotest.(check bool) "param base inherits" true (Pdv.is_pdv d ~func:"work" "base");
  Alcotest.(check bool) "param cnt does not" false (Pdv.is_pdv d ~func:"work" "cnt")

(* --- non-concurrency --- *)

let test_nonconcurrency () =
  let open Dsl in
  let p =
    dsl_prog [ ("a", int_t) ]
      [ barrier;
        sfor "r" (i 0) (i 3) [ (v "a") <-- i 1; barrier ];
        (v "a") <-- i 2 ]
  in
  let nc = NC.analyze p in
  Alcotest.(check int) "phase count" 3 (NC.phase_count nc);
  Alcotest.(check (list int)) "depths" [ 0; 1 ] (NC.barrier_depths nc);
  Alcotest.(check bool) "phase 0 does not repeat" false (NC.can_repeat nc 0);
  Alcotest.(check bool) "phase 1 repeats" true (NC.can_repeat nc 1);
  Alcotest.(check bool) "phase 2 repeats" true (NC.can_repeat nc 2)

let suite =
  [ Alcotest.test_case "per-pid sections" `Quick test_per_pid_sections;
    Alcotest.test_case "pdv-derived sections" `Quick test_pdv_derived_sections;
    Alcotest.test_case "interleaved sections" `Quick test_interleaved_sections;
    Alcotest.test_case "dynamic congruence" `Quick test_dynamic_congruence;
    Alcotest.test_case "master-only control flow" `Quick test_master_only_control_flow;
    Alcotest.test_case "phases" `Quick test_phases;
    Alcotest.test_case "phase alignment" `Quick test_phase_alignment_under_pdv_branch;
    Alcotest.test_case "profile weights" `Quick test_profile_weights;
    Alcotest.test_case "while weight" `Quick test_while_weight;
    Alcotest.test_case "loop widening" `Quick test_loop_widening;
    Alcotest.test_case "empty loop skipped" `Quick test_empty_loop_skipped;
    Alcotest.test_case "fieldsig keys" `Quick test_fieldsig_keys;
    Alcotest.test_case "pdv detection" `Quick test_pdv_detection;
    Alcotest.test_case "nonconcurrency" `Quick test_nonconcurrency ]
