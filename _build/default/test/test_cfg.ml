(* Tests for the call graph and the intraprocedural CFG. *)

open Fs_ir
module CG = Fs_cfg.Callgraph
module Cfg = Fs_cfg.Cfg

let prog =
  let open Dsl in
  program ~name:"cg"
    ~globals:[ ("x", int_t) ]
    [ fn "leaf" [ "a" ] [ (v "x") <-- p "a" ];
      fn "mid" [] [ call "leaf" [ i 1 ]; barrier; call "leaf" [ i 2 ] ];
      fn "rec1" [] [ call "rec2" [] ];
      fn "rec2" [] [ barrier; when_ (ld (v "x") >% i 0) [ call "rec1" [] ] ];
      fn "unused" [] [];
      fn "main" [] [ call "mid" []; barrier; call "rec1" [] ] ]

let cg = CG.build prog

let test_callees () =
  Alcotest.(check (list string)) "main" [ "mid"; "rec1" ] (CG.callees cg "main");
  Alcotest.(check (list string)) "mid dedup" [ "leaf" ] (CG.callees cg "mid");
  Alcotest.(check (list string)) "leaf" [] (CG.callees cg "leaf")

let test_callers () =
  Alcotest.(check (list string)) "leaf callers" [ "mid" ]
    (List.sort compare (CG.callers cg "leaf"));
  Alcotest.(check (list string)) "rec1 callers" [ "main"; "rec2" ]
    (List.sort compare (CG.callers cg "rec1"))

let test_reachable () =
  let r = CG.reachable cg in
  Alcotest.(check bool) "main first" true (List.hd r = "main");
  Alcotest.(check bool) "unused excluded" false (List.mem "unused" r);
  Alcotest.(check bool) "leaf included" true (List.mem "leaf" r)

let test_recursive () =
  Alcotest.(check bool) "rec1" true (CG.is_recursive cg "rec1");
  Alcotest.(check bool) "rec2" true (CG.is_recursive cg "rec2");
  Alcotest.(check bool) "mid not" false (CG.is_recursive cg "mid");
  Alcotest.(check bool) "leaf not" false (CG.is_recursive cg "leaf")

let test_barriers_in () =
  Alcotest.(check int) "leaf" 0 (CG.barriers_in cg "leaf");
  Alcotest.(check int) "mid" 1 (CG.barriers_in cg "mid");
  (* main: mid(1) + own barrier + rec1 -> rec2 (1, cycle cut) *)
  Alcotest.(check int) "main" 3 (CG.barriers_in cg "main")

(* --- CFG --- *)

let build_cfg body = Cfg.build { Ast.fname = "f"; params = []; body }

let test_cfg_straight () =
  let open Dsl in
  let g = build_cfg [ (v "x") <-- i 1; (v "x") <-- i 2 ] in
  (* entry -> straight -> exit *)
  Alcotest.(check int) "three nodes" 3 (List.length (Cfg.nodes g));
  Alcotest.(check (list int)) "entry succ" [ 1 ] (Cfg.succs g (Cfg.entry g));
  (match Cfg.kind g 1 with
   | Cfg.Straight ss -> Alcotest.(check int) "two stmts" 2 (List.length ss)
   | _ -> Alcotest.fail "expected straight block")

let test_cfg_if () =
  let open Dsl in
  let g = build_cfg [ sif (ld (v "x") >% i 0) [ (v "x") <-- i 1 ] [ (v "x") <-- i 2 ] ] in
  let branch =
    List.find (fun n -> match Cfg.kind g n with Cfg.Branch _ -> true | _ -> false)
      (Cfg.nodes g)
  in
  Alcotest.(check int) "branch has two succs" 2 (List.length (Cfg.succs g branch));
  (* both arms reach the exit *)
  let exit_preds = Cfg.preds g (Cfg.exit_node g) in
  Alcotest.(check bool) "exit reachable" true (exit_preds <> [])

let test_cfg_loop_depth () =
  let open Dsl in
  let g =
    build_cfg
      [ sfor "i" (i 0) (i 3)
          [ swhile (ld (v "x") >% i 0) [ (v "x") <-- i 0 ] ] ]
  in
  let max_depth =
    List.fold_left (fun acc n -> max acc (Cfg.loop_depth g n)) 0 (Cfg.nodes g)
  in
  Alcotest.(check int) "nested depth" 2 max_depth

let test_cfg_loop_back_edge () =
  let open Dsl in
  let g = build_cfg [ swhile (ld (v "x") >% i 0) [ (v "x") <-- i 0 ] ] in
  let head =
    List.find (fun n -> match Cfg.kind g n with Cfg.Loop_head _ -> true | _ -> false)
      (Cfg.nodes g)
  in
  (* the loop head has a predecessor inside the loop: the back edge *)
  let back =
    List.exists (fun p -> Cfg.loop_depth g p > Cfg.loop_depth g head) (Cfg.preds g head)
  in
  Alcotest.(check bool) "back edge" true back

let suite =
  [ Alcotest.test_case "callees" `Quick test_callees;
    Alcotest.test_case "callers" `Quick test_callers;
    Alcotest.test_case "reachable" `Quick test_reachable;
    Alcotest.test_case "recursive" `Quick test_recursive;
    Alcotest.test_case "barriers_in" `Quick test_barriers_in;
    Alcotest.test_case "cfg straight" `Quick test_cfg_straight;
    Alcotest.test_case "cfg if" `Quick test_cfg_if;
    Alcotest.test_case "cfg loop depth" `Quick test_cfg_loop_depth;
    Alcotest.test_case "cfg back edge" `Quick test_cfg_loop_back_edge ]
