(* Tests for the SPMD interpreter: sequential semantics, synchronization,
   determinism, error detection, and the layout-driven trace. *)

open Fs_ir
module Interp = Fs_interp.Interp
module Value = Fs_interp.Value
module Layout = Fs_layout.Layout
module Plan = Fs_layout.Plan
module Sink = Fs_trace.Sink
module Listener = Fs_trace.Listener

let run ?(nprocs = 1) ?(plan = []) ?(block = 64) prog ~sink =
  let layout = Layout.realize prog plan ~block in
  Interp.run_to_sink prog ~nprocs ~layout ~sink

let run_quiet ?nprocs ?plan ?block prog = run ?nprocs ?plan ?block prog ~sink:Sink.null

let int_of v = match v with Value.Vint n -> n | Value.Vfloat _ -> Alcotest.fail "float"

let dsl_prog ?structs globals funcs =
  Validate.validate_exn (Dsl.program ~name:"t" ?structs ~globals funcs)

let test_arithmetic () =
  let open Dsl in
  let p =
    dsl_prog [ ("out", arr int_t 8) ]
      [ fn "main" []
          [ (v "out").%(i 0) <-- ((i 7 *% i 3) +% (i 10 /% i 4));
            (v "out").%(i 1) <-- (i 17 %% i 5);
            (v "out").%(i 2) <-- min_ (i 3) (i 9);
            (v "out").%(i 3) <-- max_ (i 3) (i 9);
            (v "out").%(i 4) <-- neg (i 5);
            (v "out").%(i 5) <-- ((i 3 <% i 4) &&% (i 4 <=% i 4));
            (v "out").%(i 6) <-- not_ (i 0);
            (v "out").%(i 7) <-- ((i 1 >% i 2) ||% (i 5 ==% i 5)) ] ]
  in
  let r = run_quiet p in
  let expect = [ 23; 2; 3; 9; -5; 1; 1; 1 ] in
  List.iteri
    (fun idx e ->
      Alcotest.(check int) (Printf.sprintf "out[%d]" idx) e
        (int_of (Interp.read_global r "out" idx)))
    expect

let test_control_flow () =
  let open Dsl in
  (* iterative fibonacci via while, plus function calls with return *)
  let p =
    dsl_prog [ ("out", int_t); ("out2", int_t) ]
      [ fn "fib" [ "n" ]
          [ decl "a" (i 0); decl "b" (i 1); decl "k" (i 0);
            swhile (p "k" <% p "n")
              [ decl "t" (p "a" +% p "b");
                set "a" (p "b"); set "b" (p "t"); set "k" (p "k" +% i 1) ];
            ret (p "a") ];
        fn "main" []
          [ decl "r" (i 0);
            call_ret "r" "fib" [ i 10 ];
            (v "out") <-- p "r";
            decl "acc" (i 0);
            sfor "j" (i 0) (i 5) [ set "acc" (p "acc" +% (p "j" *% p "j")) ];
            (v "out2") <-- p "acc" ] ]
  in
  let r = run_quiet p in
  Alcotest.(check int) "fib 10" 55 (int_of (Interp.read_global r "out" 0));
  Alcotest.(check int) "sum of squares" 30 (int_of (Interp.read_global r "out2" 0))

let test_recursion () =
  let open Dsl in
  let p =
    dsl_prog [ ("out", int_t) ]
      [ fn "fact" [ "n" ]
          [ sif (p "n" <=% i 1) [ ret (i 1) ]
              [ decl "r" (i 0);
                call_ret "r" "fact" [ p "n" -% i 1 ];
                ret (p "n" *% p "r") ] ];
        fn "main" [] [ decl "r" (i 0); call_ret "r" "fact" [ i 6 ]; (v "out") <-- p "r" ] ]
  in
  Alcotest.(check int) "6!" 720
    (int_of (Interp.read_global (run_quiet p) "out" 0))

let test_floats () =
  let open Dsl in
  let p =
    dsl_prog [ ("out", float_t) ]
      [ fn "main" [] [ (v "out") <-- ((f 1.5 *% i 4) +% f 0.25) ] ]
  in
  match Interp.read_global (run_quiet p) "out" 0 with
  | Value.Vfloat x -> Alcotest.(check (float 1e-9)) "float math" 6.25 x
  | Value.Vint _ -> Alcotest.fail "expected float"

let test_lock_mutual_exclusion () =
  let open Dsl in
  (* read-modify-write under a lock must lose no updates despite the
     fine-grained interleaving *)
  let p =
    dsl_prog [ ("total", int_t); ("l", lock_t) ]
      [ fn "main" []
          [ sfor "k" (i 0) (i 50)
              [ lock (v "l"); bump (v "total") (i 1); unlock (v "l") ] ] ]
  in
  let r = run_quiet ~nprocs:8 p in
  Alcotest.(check int) "no lost updates" 400
    (int_of (Interp.read_global r "total" 0))

let test_barrier_ordering () =
  let open Dsl in
  (* values written before a barrier are visible after it *)
  let p =
    dsl_prog [ ("a", arr int_t 8); ("ok", arr int_t 8) ]
      [ fn "main" []
          [ (v "a").%(pdv) <-- (pdv +% i 1);
            barrier;
            decl "sum" (i 0);
            sfor "q" (i 0) (i 8) [ set "sum" (p "sum" +% ld (v "a").%(p "q")) ];
            (v "ok").%(pdv) <-- p "sum" ] ]
  in
  let r = run_quiet ~nprocs:8 p in
  for pid = 0 to 7 do
    Alcotest.(check int) "every proc saw all writes" 36
      (int_of (Interp.read_global r "ok" pid))
  done

let test_barrier_episodes () =
  let open Dsl in
  let p =
    dsl_prog [ ("x", int_t) ]
      [ fn "main" [] [ barrier; sfor "k" (i 0) (i 3) [ barrier ] ] ]
  in
  let r = run_quiet ~nprocs:4 p in
  Alcotest.(check int) "episodes" 4 r.Interp.barrier_episodes

let test_deadlock_detected () =
  let open Dsl in
  let p =
    dsl_prog [ ("l", lock_t) ]
      [ fn "main" [] [ when_ (pdv ==% i 0) [ lock (v "l"); barrier ] ] ]
  in
  (* P0 holds the lock and waits at a barrier P1 never reaches... actually
     P1 finishes, so P0's barrier releases; make P1 wait on the lock. *)
  let p2 =
    dsl_prog [ ("l", lock_t) ]
      [ fn "main" []
          [ sif (pdv ==% i 0) [ lock (v "l"); barrier ] [ lock (v "l") ] ] ]
  in
  ignore p;
  match run_quiet ~nprocs:2 p2 with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Interp.Deadlock _ -> ()

let test_runtime_errors () =
  let open Dsl in
  let expect_error name prog =
    match run_quiet prog with
    | _ -> Alcotest.fail ("expected runtime error: " ^ name)
    | exception Interp.Runtime_error _ -> ()
  in
  expect_error "out of bounds"
    (dsl_prog [ ("a", arr int_t 4) ] [ fn "main" [] [ (v "a").%(i 9) <-- i 1 ] ]);
  expect_error "negative index"
    (dsl_prog [ ("a", arr int_t 4) ] [ fn "main" [] [ (v "a").%(neg (i 1)) <-- i 1 ] ]);
  expect_error "unlock not held"
    (dsl_prog [ ("l", lock_t) ] [ fn "main" [] [ unlock (v "l") ] ]);
  expect_error "missing return"
    (dsl_prog [ ("x", int_t) ]
       [ fn "f" [] []; fn "main" [] [ decl "r" (i 0); call_ret "r" "f" [] ] ])

let test_division_by_zero () =
  let open Dsl in
  let p =
    dsl_prog [ ("x", int_t) ] [ fn "main" [] [ (v "x") <-- (i 1 /% ld (v "x")) ] ]
  in
  match run_quiet p with
  | _ -> Alcotest.fail "expected Division_by_zero"
  | exception Division_by_zero -> ()

let test_trace_determinism () =
  let open Dsl in
  let p =
    dsl_prog [ ("a", arr int_t 16); ("l", lock_t); ("t", int_t) ]
      [ fn "main" []
          [ sfor "k" (i 0) (i 10) [ (v "a").%((p "k" +% pdv) %% i 16) <-- p "k" ];
            lock (v "l"); bump (v "t") (i 1); unlock (v "l") ] ]
  in
  let capture () =
    let c = Sink.Capture.create () in
    ignore (run ~nprocs:6 p ~sink:(Sink.Capture.sink c));
    Sink.Capture.to_list c
  in
  Alcotest.(check int) "same traces" 0 (compare (capture ()) (capture ()))

let test_layout_changes_addresses_not_semantics () =
  let open Dsl in
  let p =
    dsl_prog [ ("a", arr int_t 8); ("sum", int_t); ("l", lock_t) ]
      [ fn "main" []
          [ sfor "k" (i 0) (i 5) [ bump ((v "a").%(pdv)) (p "k") ];
            barrier;
            lock (v "l");
            bump (v "sum") (ld (v "a").%(pdv));
            unlock (v "l") ] ]
  in
  let result plan =
    int_of (Interp.read_global (run_quiet ~nprocs:8 ~plan p) "sum" 0)
  in
  let transposed = [ Plan.Group_transpose { vars = [ "a" ]; pdv_axis = 0 }; Plan.Pad_locks ] in
  Alcotest.(check int) "same result" (result []) (result transposed);
  Alcotest.(check int) "value" 80 (result transposed)

let test_indirection_extra_loads () =
  let open Dsl in
  let structs = [ { Ast.sname = "s"; fields = [ ("f", arr int_t 2) ] } ] in
  let p =
    dsl_prog ~structs [ ("n", arr (struct_t "s") 2) ]
      [ fn "main" [] [ (v "n").%(i 0).%{"f"}.%(pdv) <-- i 1 ] ]
  in
  let count plan =
    let c = Sink.Capture.create () in
    ignore (run ~nprocs:2 ~plan p ~sink:(Sink.Capture.sink c));
    Sink.Capture.length c
  in
  let direct = count [] in
  let indirect = count [ Plan.Indirect { var = "n"; fields = [ "f" ] } ] in
  (* each field access now carries one extra pointer load *)
  Alcotest.(check int) "extra loads" (direct * 2) indirect

let test_work_and_access_counters () =
  let open Dsl in
  let p =
    dsl_prog [ ("a", arr int_t 4) ]
      [ fn "main" [] [ sfor "k" (i 0) (i 10) [ (v "a").%(pdv) <-- p "k" ] ] ]
  in
  let r = run_quiet ~nprocs:4 p in
  Array.iter
    (fun w -> Alcotest.(check bool) "work counted" true (w > 0))
    r.Interp.work;
  Array.iter
    (fun a -> Alcotest.(check int) "accesses per proc" 10 a)
    r.Interp.accesses

let test_nontermination_guard () =
  let open Dsl in
  let p =
    dsl_prog [ ("x", int_t) ]
      [ fn "main" [] [ swhile (i 1) [ (v "x") <-- i 1 ] ] ]
  in
  let layout = Layout.default p ~block:64 in
  match
    Interp.run ~max_steps:10_000 p ~nprocs:1 ~layout ~listener:Listener.null
  with
  | _ -> Alcotest.fail "expected nontermination guard"
  | exception Interp.Nontermination _ -> ()

let test_listener_events () =
  let open Dsl in
  let p =
    dsl_prog [ ("l", lock_t); ("x", int_t) ]
      [ fn "main" []
          [ lock (v "l"); bump (v "x") (i 1); unlock (v "l"); barrier ] ]
  in
  let grants = ref 0 and waits = ref 0 and releases = ref 0 and work = ref 0 in
  let listener =
    { Listener.null with
      lock_grant = (fun ~proc:_ ~addr:_ ~from:_ -> incr grants);
      lock_wait = (fun ~proc:_ ~addr:_ -> incr waits);
      barrier_release = (fun () -> incr releases);
      work = (fun ~proc:_ ~amount -> work := !work + amount);
    }
  in
  let layout = Layout.default p ~block:64 in
  let _ = Interp.run p ~nprocs:3 ~layout ~listener in
  Alcotest.(check int) "three grants" 3 !grants;
  Alcotest.(check bool) "some contention" true (!waits >= 1);
  Alcotest.(check int) "one release" 1 !releases;
  Alcotest.(check bool) "work reported" true (!work > 0)

let suite =
  [ Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "floats" `Quick test_floats;
    Alcotest.test_case "lock mutual exclusion" `Quick test_lock_mutual_exclusion;
    Alcotest.test_case "barrier ordering" `Quick test_barrier_ordering;
    Alcotest.test_case "barrier episodes" `Quick test_barrier_episodes;
    Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
    Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "trace determinism" `Quick test_trace_determinism;
    Alcotest.test_case "layout transparency" `Quick test_layout_changes_addresses_not_semantics;
    Alcotest.test_case "indirection extra loads" `Quick test_indirection_extra_loads;
    Alcotest.test_case "work/access counters" `Quick test_work_and_access_counters;
    Alcotest.test_case "nontermination guard" `Quick test_nontermination_guard;
    Alcotest.test_case "listener events" `Quick test_listener_events ]

(* Differential testing: random arithmetic expression trees evaluated by
   the interpreter must match direct evaluation with Value.binop. *)
let expr_gen =
  let open QCheck.Gen in
  let leaf = map (fun n -> Ast.Int_lit n) (int_range (-20) 20) in
  fix
    (fun self depth ->
      if depth <= 0 then leaf
      else
        frequency
          [ (2, leaf);
            ( 3,
              let op =
                oneofl
                  [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Min; Ast.Max; Ast.Lt;
                    Ast.Le; Ast.Eq; Ast.Ne ]
              in
              map3
                (fun op a b -> Ast.Binop (op, a, b))
                op (self (depth - 1)) (self (depth - 1)) );
            (1, map (fun e -> Ast.Unop (Ast.Neg, e)) (self (depth - 1))) ])
    4

let rec eval_direct (e : Ast.expr) =
  match e with
  | Ast.Int_lit n -> Value.Vint n
  | Ast.Unop (op, a) -> Value.unop op (eval_direct a)
  | Ast.Binop (op, a, b) -> Value.binop op (eval_direct a) (eval_direct b)
  | _ -> assert false

let test_differential_eval =
  QCheck.Test.make ~name:"interpreter matches direct evaluation" ~count:200
    (QCheck.make expr_gen)
    (fun e ->
      let open Dsl in
      let prog = dsl_prog [ ("out", int_t) ] [ fn "main" [] [ (v "out") <-- e ] ] in
      let r = run_quiet prog in
      Value.equal (Interp.read_global r "out" 0) (eval_direct e))

let suite = suite @ [ QCheck_alcotest.to_alcotest test_differential_eval ]
