(* Tests over the benchmark suite: every program builds and validates,
   runs to completion at several processor counts, computes the same
   result under every layout (transformations must be semantically
   transparent), and responds to its compiler plan with a large
   false-sharing reduction. *)

module W = Fs_workloads.Workload
module Ws = Fs_workloads.Workloads
module Interp = Fs_interp.Interp
module Value = Fs_interp.Value
module Layout = Fs_layout.Layout
module Plan = Fs_layout.Plan
module C = Fs_cache.Mpcache
module T = Fs_transform.Transform

let all = Ws.all

let checksum_global (w : W.t) =
  (* every benchmark ends by computing a checksum-like global *)
  match w.name with "topopt" | "mp3d" | "fmm" | "radiosity" | "raytrace"
                  | "locusroute" | "pthor" | "water" -> "checksum"
  | "maxflow" -> "result"
  | "pverify" -> "mismatch"
  | other -> Alcotest.fail ("unknown workload " ^ other)

let run_result (w : W.t) ~nprocs ~plan =
  let prog = w.build ~nprocs ~scale:1 in
  let layout = Layout.realize prog plan ~block:64 in
  let r = Interp.run_to_sink prog ~nprocs ~layout ~sink:Fs_trace.Sink.null in
  Interp.read_global r (checksum_global w) 0

let test_builds_and_validates () =
  List.iter
    (fun (w : W.t) ->
      List.iter
        (fun nprocs ->
          List.iter
            (fun scale -> ignore (w.build ~nprocs ~scale))
            [ 1; 2 ])
        [ 1; 2; 9; 12; 56 ])
    all

let test_runs_to_completion () =
  List.iter
    (fun (w : W.t) ->
      List.iter
        (fun nprocs -> ignore (run_result w ~nprocs ~plan:[]))
        [ 1; 3; 8 ])
    all

let test_deterministic_results () =
  List.iter
    (fun (w : W.t) ->
      let a = run_result w ~nprocs:4 ~plan:[] in
      let b = run_result w ~nprocs:4 ~plan:[] in
      Alcotest.(check bool) (w.name ^ " deterministic") true (Value.equal a b))
    all

let test_layout_transparency () =
  (* the compiler and programmer transformations change only addresses,
     never program results *)
  List.iter
    (fun (w : W.t) ->
      let nprocs = 6 in
      let prog = w.build ~nprocs ~scale:1 in
      let base = run_result w ~nprocs ~plan:[] in
      let cplan = (T.plan prog ~nprocs).T.plan in
      Alcotest.(check bool)
        (w.name ^ ": compiler layout preserves the result")
        true
        (Value.equal base (run_result w ~nprocs ~plan:cplan));
      match w.programmer_plan with
      | None -> ()
      | Some f ->
        Alcotest.(check bool)
          (w.name ^ ": programmer layout preserves the result")
          true
          (Value.equal base (run_result w ~nprocs ~plan:(f ~nprocs ~scale:1))))
    all

let fs_counts (w : W.t) ~nprocs ~plan =
  let prog = w.build ~nprocs ~scale:w.default_scale in
  let cache = C.create (C.default_config ~nprocs ~block:128) in
  let layout = Layout.realize prog plan ~block:128 in
  let _ = Interp.run_to_sink prog ~nprocs ~layout ~sink:(C.sink cache) in
  C.counts cache

let test_compiler_reduces_false_sharing () =
  (* the headline claim, per benchmark with an unoptimized version: the
     compiler plan removes most false-sharing misses *)
  List.iter
    (fun (w : W.t) ->
      let nprocs = w.fig3_procs in
      let prog = w.build ~nprocs ~scale:w.default_scale in
      let cplan = (T.plan prog ~nprocs).T.plan in
      let n = fs_counts w ~nprocs ~plan:[] in
      let c = fs_counts w ~nprocs ~plan:cplan in
      let reduction =
        1.0 -. (float_of_int c.C.false_sh /. float_of_int (max 1 n.C.false_sh))
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: FS reduced by %.0f%%" w.name (100.0 *. reduction))
        true
        (reduction > 0.5);
      Alcotest.(check bool)
        (Printf.sprintf "%s: total misses do not explode" w.name)
        true
        (C.misses c < 2 * C.misses n))
    (Ws.simulated ())

let test_unoptimized_has_false_sharing () =
  (* each simulated benchmark actually produces the pathology under study *)
  List.iter
    (fun (w : W.t) ->
      let n = fs_counts w ~nprocs:w.fig3_procs ~plan:[] in
      let share = float_of_int n.C.false_sh /. float_of_int (max 1 (C.misses n)) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: FS is the dominant miss type (%.0f%%)" w.name
           (100.0 *. share))
        true (share > 0.4))
    (Ws.simulated ())

let test_compiler_beats_or_matches_programmer () =
  (* Section 5: the compiler-directed transformations always outperformed
     programmer efforts (here: on false-sharing misses, with a little slack
     for simulator noise) *)
  List.iter
    (fun (w : W.t) ->
      match w.programmer_plan with
      | None -> ()
      | Some f ->
        let nprocs = w.fig3_procs in
        let prog = w.build ~nprocs ~scale:w.default_scale in
        let cplan = (T.plan prog ~nprocs).T.plan in
        let c = fs_counts w ~nprocs ~plan:cplan in
        let p = fs_counts w ~nprocs ~plan:(f ~nprocs ~scale:w.default_scale) in
        Alcotest.(check bool)
          (Printf.sprintf "%s: compiler FS (%d) <= programmer FS (%d)" w.name
             c.C.false_sh p.C.false_sh)
          true
          (c.C.false_sh <= p.C.false_sh + (p.C.false_sh / 10) + 5))
    all

let test_registry () =
  Alcotest.(check int) "ten benchmarks" 10 (List.length all);
  Alcotest.(check int) "six simulated" 6 (List.length (Ws.simulated ()));
  Alcotest.(check string) "find" "fmm" (Ws.find "fmm").W.name;
  Alcotest.(check bool) "find unknown" true
    (match Ws.find "nope" with _ -> false | exception Not_found -> true);
  List.iter
    (fun (w : W.t) ->
      Alcotest.(check bool) (w.name ^ " has P plan iff listed") true
        (List.mem W.P w.versions = Option.is_some w.programmer_plan))
    all

let test_table1_metadata () =
  (* the suite mirrors Table 1 *)
  let by_name n = Ws.find n in
  Alcotest.(check bool) "maxflow has no programmer version" true
    ((by_name "maxflow").versions = [ W.N; W.C ]);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " N/C/P") true
        ((by_name n).versions = [ W.N; W.C; W.P ]))
    [ "pverify"; "topopt"; "fmm"; "radiosity"; "raytrace" ];
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " C/P only") true
        ((by_name n).versions = [ W.C; W.P ]))
    [ "locusroute"; "mp3d"; "pthor"; "water" ];
  Alcotest.(check int) "topopt runs on 9 procs in fig 3" 9
    (by_name "topopt").W.fig3_procs

let suite =
  [ Alcotest.test_case "builds and validates" `Quick test_builds_and_validates;
    Alcotest.test_case "runs to completion" `Quick test_runs_to_completion;
    Alcotest.test_case "deterministic results" `Quick test_deterministic_results;
    Alcotest.test_case "layout transparency" `Slow test_layout_transparency;
    Alcotest.test_case "compiler reduces FS" `Slow test_compiler_reduces_false_sharing;
    Alcotest.test_case "unoptimized has FS" `Slow test_unoptimized_has_false_sharing;
    Alcotest.test_case "compiler >= programmer" `Slow test_compiler_beats_or_matches_programmer;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "table 1 metadata" `Quick test_table1_metadata ]
