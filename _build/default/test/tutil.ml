(* Shared helpers for the test suites. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec go i =
      if i + nn > nh then false
      else if String.sub haystack i nn = needle then true
      else go (i + 1)
    in
    go 0

let check_contains what haystack needle =
  if not (contains haystack needle) then
    Alcotest.fail (Printf.sprintf "%s: expected %S in %S" what needle haystack)
