test/test_trace.ml: Alcotest Array Format Fs_trace List Tutil
