test/test_cache.ml: Alcotest Fs_cache Gen List QCheck QCheck_alcotest
