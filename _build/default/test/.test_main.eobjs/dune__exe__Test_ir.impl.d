test/test_ir.ml: Alcotest Ast Cells Dsl Fs_ir Fun List Pp Printf QCheck QCheck_alcotest String Tutil Validate
