test/test_parc.ml: Alcotest Fs_interp Fs_ir Fs_layout Fs_parc Fs_trace Fs_workloads List String Tutil
