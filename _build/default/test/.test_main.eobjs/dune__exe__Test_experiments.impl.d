test/test_experiments.ml: Alcotest Falseshare Fs_cache Fs_layout Fs_parc Fs_workloads List String Sys Tutil
