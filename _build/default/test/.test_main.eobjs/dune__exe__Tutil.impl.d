test/tutil.ml: Alcotest Printf String
