test/test_machine.ml: Alcotest Array Dsl Fs_cache Fs_interp Fs_ir Fs_layout Fs_machine Printf Validate
