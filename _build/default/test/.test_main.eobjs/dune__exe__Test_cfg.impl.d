test/test_cfg.ml: Alcotest Ast Dsl Fs_cfg Fs_ir List
