test/test_interp.ml: Alcotest Array Ast Dsl Fs_interp Fs_ir Fs_layout Fs_trace List Printf QCheck QCheck_alcotest Validate
