test/test_workloads.ml: Alcotest Fs_cache Fs_interp Fs_layout Fs_trace Fs_transform Fs_workloads List Option Printf
