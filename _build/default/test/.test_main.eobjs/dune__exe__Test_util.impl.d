test/test_util.ml: Alcotest Array Fs_util Fun List QCheck QCheck_alcotest String
