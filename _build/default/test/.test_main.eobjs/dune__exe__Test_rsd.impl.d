test/test_rsd.ml: Alcotest Array Format Fs_rsd Gen List QCheck QCheck_alcotest
