test/test_analysis.ml: Alcotest Array Ast Dsl Fs_analysis Fs_ir Fs_rsd List Printf Validate
