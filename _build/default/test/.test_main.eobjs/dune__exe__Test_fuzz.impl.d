test/test_fuzz.ml: Array Ast Dsl Fs_interp Fs_ir Fs_layout Fs_parc Fs_trace Fs_transform Hashtbl List Pp Printf QCheck QCheck_alcotest String Validate
