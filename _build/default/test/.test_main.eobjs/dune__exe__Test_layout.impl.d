test/test_layout.ml: Alcotest Array Ast Dsl Fs_ir Fs_layout Hashtbl List Printf QCheck QCheck_alcotest String Validate
