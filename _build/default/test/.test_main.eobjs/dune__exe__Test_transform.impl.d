test/test_transform.ml: Alcotest Ast Dsl Format Fs_analysis Fs_ir Fs_layout Fs_transform Fs_workloads List Tutil Validate
