(* Program-level fuzzing: generate random (but well-formed, terminating,
   barrier-balanced) ParC programs and check the end-to-end properties
   that hold for *every* program, not just the curated workloads:

   - the program validates and executes without runtime errors;
   - the compiler's plan validates and its layout has no overlapping
     addresses;
   - every layout — default, compiler-planned, and randomly planned —
     produces bit-identical final shared memory.  The scheduler is
     layout-independent, so even racy programs must agree exactly: any
     difference would mean a transformation changed program semantics;
   - the concrete syntax round-trips. *)

open Fs_ir
module Interp = Fs_interp.Interp
module Value = Fs_interp.Value
module Layout = Fs_layout.Layout
module Plan = Fs_layout.Plan
module T = Fs_transform.Transform

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)

(* Globals available to generated programs.  pv has a per-process shape so
   the compiler has something to find; every other index goes through the
   safe-index wrapper below. *)
let nprocs = 4

let globals =
  [ ("s0", Dsl.int_t);
    ("s1", Dsl.int_t);
    ("a8", Dsl.arr Dsl.int_t 8);
    ("m46", Dsl.arr2 Dsl.int_t 4 6);
    ("pv", Dsl.arr Dsl.int_t nprocs);
    ("lk", Dsl.lock_t) ]

(* clamp any int expression into [0, n) *)
let safe_idx e n = Dsl.(((e %% i n) +% i n) %% i n)

let np_expr = Dsl.nprocs

let gen_expr privs =
  let open QCheck.Gen in
  let open Dsl in
  let leaf =
    frequency
      [ (3, map i (int_range (-9) 9));
        (2, return pdv);
        (1, return np_expr);
        (if privs = [] then (0, return (i 0)) else (3, map p (oneofl privs)));
        (2,
         oneof
           [ return (ld (v "s0"));
             return (ld (v "s1"));
             return (ld (v "pv").%(pdv)) ]) ]
  in
  fix
    (fun self depth ->
      if depth <= 0 then leaf
      else
        frequency
          [ (3, leaf);
            ( 4,
              let op = oneofl [ ( +% ); ( -% ); ( *% ); min_; max_ ] in
              map3 (fun f a b -> f a b) op (self (depth - 1)) (self (depth - 1)) );
            ( 1,
              map (fun a -> a /% i 3) (self (depth - 1)) );
            ( 1,
              map2
                (fun a b -> ld (v "a8").%(safe_idx (a +% b) 8))
                (self (depth - 1)) (self (depth - 1)) ) ])
    3

let gen_lvalue privs =
  let open QCheck.Gen in
  let open Dsl in
  let* e = gen_expr privs in
  oneofl
    [ v "s0";
      v "s1";
      (v "a8").%(safe_idx e 8);
      (v "m46").%(safe_idx e 4).%(safe_idx (e +% i 1) 6);
      (v "pv").%(pdv) ]

(* Statements; [privs] is the set of declared privates in scope. *)
let rec gen_stmts privs depth budget =
  let open QCheck.Gen in
  if budget <= 0 then return []
  else
    let* n = int_range 1 3 in
    let rec seq privs k acc =
      if k <= 0 then return (List.rev acc)
      else
        let* s, privs' = gen_stmt privs depth in
        seq privs' (k - 1) (s :: acc)
    in
    seq privs n []

and gen_stmt privs depth =
  let open QCheck.Gen in
  let open Dsl in
  let store =
    let* lv = gen_lvalue privs in
    let* e = gen_expr privs in
    return (lv <-- e, privs)
  in
  let declare =
    let name = Printf.sprintf "t%d" (List.length privs) in
    let* e = gen_expr privs in
    return (decl name e, name :: privs)
  in
  let assign =
    if privs = [] then store
    else
      let* name = oneofl privs in
      let* e = gen_expr privs in
      return (set name e, privs)
  in
  let loop =
    if depth <= 0 then store
    else
      let vn = Printf.sprintf "k%d" depth in
      let* hi = int_range 1 4 in
      let* body = gen_stmts (vn :: privs) (depth - 1) 2 in
      return (sfor vn (i 0) (i hi) body, privs)
  in
  let cond =
    if depth <= 0 then store
    else
      let* c = gen_expr privs in
      let* b1 = gen_stmts privs (depth - 1) 2 in
      let* b2 = gen_stmts privs (depth - 1) 1 in
      return (sif (c >% i 0) b1 b2, privs)
  in
  let critical =
    let* lv = gen_lvalue privs in
    let* e = gen_expr privs in
    return
      ( sif (i 1) [ lock (v "lk"); (lv <-- e); unlock (v "lk") ] [],
        privs )
  in
  frequency
    [ (4, store); (2, declare); (2, assign); (2, loop); (2, cond); (1, critical) ]

let gen_program =
  let open QCheck.Gen in
  (* top-level: a few phases separated by barriers *)
  let* nphases = int_range 1 3 in
  let rec phases k acc =
    if k <= 0 then return (List.rev acc)
    else
      let* body = gen_stmts [] 2 3 in
      phases (k - 1) ((body @ [ Ast.Barrier ]) :: acc)
  in
  let* ps = phases nphases [] in
  let prog =
    Dsl.program ~name:"fuzz" ~globals
      [ Dsl.fn "main" [] (List.concat ps) ]
  in
  return prog

let arbitrary_program =
  QCheck.make ~print:Pp.program_to_string gen_program

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let final_memory prog plan =
  let layout = Layout.realize prog plan ~block:64 in
  let r = Interp.run_to_sink prog ~nprocs ~layout ~sink:Fs_trace.Sink.null in
  List.map
    (fun (name, _) ->
      let values = Hashtbl.find r.Interp.store name in
      Array.to_list values)
    prog.Ast.globals

let test_fuzz_transparency =
  QCheck.Test.make ~name:"random programs: every layout preserves semantics"
    ~count:150 arbitrary_program
    (fun prog ->
      match Validate.check prog with
      | Error errs -> QCheck.Test.fail_reportf "invalid: %s" (String.concat ";" errs)
      | Ok () ->
        let base = final_memory prog [] in
        let report = T.plan prog ~nprocs in
        Plan.validate prog report.T.plan;
        let cplan_mem = final_memory prog report.T.plan in
        let manual =
          [ Plan.Group_transpose { vars = [ "pv" ]; pdv_axis = 0 };
            Plan.Pad_align { var = "a8"; element = true };
            Plan.Regroup { var = "m46"; ways = 2; chunked = true };
            Plan.Pad_locks ]
        in
        let manual_mem = final_memory prog manual in
        base = cplan_mem && base = manual_mem)

let test_fuzz_layout_disjoint =
  QCheck.Test.make ~name:"random programs: compiler layouts never overlap"
    ~count:100 arbitrary_program
    (fun prog ->
      let report = T.plan prog ~nprocs in
      List.for_all
        (fun block ->
          match Layout.check_disjoint (Layout.realize prog report.T.plan ~block) with
          | Ok () -> true
          | Error _ -> false)
        [ 16; 128 ])

let test_fuzz_parse_roundtrip =
  QCheck.Test.make ~name:"random programs: concrete syntax round-trips"
    ~count:100 arbitrary_program
    (fun prog ->
      let s1 = Pp.program_to_string prog in
      let s2 = Pp.program_to_string (Fs_parc.Parser.parse s1) in
      s1 = s2)

let suite =
  [ QCheck_alcotest.to_alcotest test_fuzz_transparency;
    QCheck_alcotest.to_alcotest test_fuzz_layout_disjoint;
    QCheck_alcotest.to_alcotest test_fuzz_parse_roundtrip ]
