(* The benchmark harness.

   Running with no arguments regenerates every table and figure of the
   paper's evaluation (Section 5) — Figure 3, Table 2, Figure 4, Table 3,
   the headline statistics quoted in the text, and the execution-time
   improvements — and then times the pipeline components with Bechamel.

   A single argument selects one piece:
     fig3 | table2 | fig4 | table3 | stats | exectime | replay | simspeed |
     sharded | tracefmt | tracefmt-decode | tracescale | telemetry | micro |
     ablation | repair | stealing | phases
   plus `quick`, which shrinks the processor sweep for a fast pass,
   `baseline`, which runs the quick pass and seeds bench/BASELINE.json,
   and `check`, which runs the quick pass and fails (exit 1) if any
   deterministic section drifted from the committed baseline or ran
   slower than the baseline by more than the tolerance factor
   (`--tolerance F`, default 10).  `--jobs N` sets the number of worker
   domains for parallel replay (default: the FALSESHARE_JOBS environment
   variable, else the recommended domain count); `--shards N` adds an
   extra point to the simspeed scaling-vs-domains curve (the default
   curve sweeps shards in {1, 2, 4, default_jobs}).

   Besides the text tables, every run writes BENCH_results.json
   (atomically: temp file + rename) — the same records in
   machine-readable form (via Falseshare.Emit), with the wall-clock
   seconds each section took, the job count, and the measured
   replay-vs-reinterpret speedup. *)

module E = Falseshare.Experiments
module Sim = Falseshare.Sim
module T = Fs_transform.Transform
module Plan = Fs_layout.Plan
module Layout = Fs_layout.Layout
module Interp = Fs_interp.Interp
module C = Fs_cache.Mpcache
module W = Fs_workloads.Workload
module Ws = Fs_workloads.Workloads

module Json = Fs_obs.Json
module Emit = Falseshare.Emit
module Ct = Fs_trace.Cell_trace

let section title = Printf.printf "\n=== %s ===\n\n" title

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let tmp_trace tag =
  Filename.temp_file (Printf.sprintf "fs-bench-%s-" tag) ".fstrace"

(* accumulated for BENCH_results.json, in run order *)
let results : (string * Json.t) list ref = ref []

let record name ~seconds payload =
  results :=
    (name, Json.Obj [ ("seconds", Json.float seconds); ("data", payload) ])
    :: !results

(* written atomically so a concurrent reader (or an interrupted run)
   never sees a partial file *)
let write_results ~quick ~jobs ~seconds =
  let path = "BENCH_results.json" in
  let j =
    Json.Obj
      [ ("harness", Json.String "falseshare bench");
        ("quick", Json.Bool quick);
        ("jobs", Json.Int jobs);
        ("total_seconds", Json.float seconds);
        ("sections", Json.Obj (List.rev !results)) ]
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Json.to_channel ~compact:false oc j;
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path;
  Printf.printf "\nwrote %s (%d sections)\n" path (List.length !results)

(* ------------------------------------------------------------------ *)
(* Paper reproductions                                                 *)

let fig3 ~jobs () =
  section "Figure 3 - miss rates, unoptimized vs compiler-transformed \
           (16B and 128B blocks; paper: white bar = false sharing)";
  let rows, dt = time_it (fun () -> E.figure3 ~jobs ()) in
  print_string (E.render_figure3 rows);
  record "fig3" ~seconds:dt (Emit.fig3 rows);
  Printf.printf "(%.1fs)\n" dt

let table2 ~jobs () =
  section "Table 2 - false-sharing reduction by transformation \
           (averaged over 8-256B blocks)";
  let rows, dt = time_it (fun () -> E.table2 ~jobs ()) in
  print_string (E.render_table2 rows);
  record "table2" ~seconds:dt (Emit.table2 rows);
  print_string
    "\npaper:    maxflow 56.5% (pad 49.2, locks 7.3) | pverify 91.2% (g&t 6.4, \
     ind 81.6, locks 3.1)\n\
    \          topopt 79.9% (g&t 61.3, ind 18.6) | fmm 90.8% (g&t 84.8, locks 6.0)\n\
    \          radiosity 93.5% (g&t 85.6, pad 1.0, locks 6.8) | raytrace 78.3% \
     (g&t 70.4, pad 3.3, locks 4.6)\n";
  Printf.printf "(%.1fs)\n" dt

let fig4 ~procs ~jobs () =
  section "Figure 4 - scalability of the three representative programs \
           (speedup vs processors, relative to unoptimized uniprocessor)";
  let series, dt = time_it (fun () -> E.figure4 ?procs ~jobs ()) in
  print_string (E.render_series series);
  record "fig4" ~seconds:dt (Emit.series series);
  print_string
    "paper maxima: raytrace 7.0/9.6/9.2 | fmm 16.4/33.6/16.4 | pverify 2.5/5.9/3.5\n";
  Printf.printf "(%.1fs)\n" dt

let table3 ~procs ~jobs () =
  section "Table 3 - maximum speedup (and processor count) per version";
  let series, dt = time_it (fun () -> E.speedups ?procs ~jobs ()) in
  let rows = E.table3 ~series () in
  print_string (E.render_table3 rows);
  record "table3" ~seconds:dt (Emit.table3 rows);
  print_string
    "\npaper:    maxflow 1.4(8)/4.3(16) | pverify 2.5(16)/5.9(16)/3.5(8) | \
     topopt 9.2(44)/10.3(28)/10.2(28)\n\
    \          fmm 16.4(20)/33.6(48+)/16.4(20) | radiosity 7.0(8)/19.2(28)/7.4(8) | \
     raytrace 7.0(8)/9.6(12)/9.2(12)\n\
    \          locusroute -/12.3(20)/12.0(20) | mp3d -/2.9(28)/1.3(4) | \
     pthor -/2.8(4)/2.2(4) | water -/9.9(40)/4.6(12)\n";
  Printf.printf "(%.1fs)\n" dt

let stats ~jobs () =
  section "Headline statistics (abstract / Section 1)";
  let s, dt = time_it (fun () -> E.text_stats ~jobs ()) in
  print_string (E.render_stats s);
  record "stats" ~seconds:dt (Emit.stats s);
  Printf.printf "(%.1fs)\n" dt

let exectime ~procs ~jobs () =
  section "Execution-time improvements while the unoptimized version still \
           scales (Section 5; paper: fmm 3%, radiosity 6%, raytrace 2%, \
           maxflow 50%, pverify 58%, topopt 20%)";
  let rows, dt = time_it (fun () -> E.exec_time_improvements ?procs ~jobs ()) in
  print_string (E.render_exec rows);
  record "exectime" ~seconds:dt (Emit.exec rows);
  Printf.printf "(%.1fs)\n" dt

(* ------------------------------------------------------------------ *)
(* The refactor's headline: record once, replay per layout             *)

let replay_bench ~jobs () =
  section "Replay vs re-interpretation (one block-size sweep of pverify)";
  let w = Ws.find "pverify" in
  let nprocs = w.W.fig3_procs in
  let prog = w.W.build ~nprocs ~scale:w.W.default_scale in
  let blocks = [ 8; 16; 32; 64; 128; 256 ] in
  let direct, t_direct =
    time_it (fun () ->
        List.map
          (fun block ->
            (Sim.cache_sim prog Plan.empty ~nprocs ~block).Sim.counts)
          blocks)
  in
  let replayed, t_replay =
    time_it (fun () ->
        let recorded = Sim.record prog ~nprocs in
        Fs_util.Par.map ~jobs
          (fun block ->
            (Sim.cache_sim ~recorded prog Plan.empty ~nprocs ~block).Sim.counts)
          blocks)
  in
  assert (direct = replayed);
  let speedup = if t_replay > 0. then t_direct /. t_replay else 0. in
  Printf.printf
    "re-interpret per block size: %.2fs\nrecord once + replay:        %.2fs\n\
     speedup: %.2fx (jobs=%d, identical counts)\n"
    t_direct t_replay speedup jobs;
  record "replay" ~seconds:(t_direct +. t_replay)
    (Json.Obj
       [ ("reinterpret_seconds", Json.float t_direct);
         ("replay_seconds", Json.float t_replay);
         ("speedup", Json.float speedup);
         ("jobs", Json.Int jobs) ])

(* ------------------------------------------------------------------ *)
(* The simulator hot path, three ways over the same recorded trace:
   the engine the flat-array rewrite replaced (bench/legacy_cache.ml:
   hashtables + int-list LRU sets, driven through the listener path),
   the live flat-array engine on the same listener path, and the fused
   packed-replay loop.  legacy -> fused is the rewrite's total win;
   reference -> fused isolates the per-event unpack + dispatch +
   outcome-boxing cost the fused loop removes.                         *)

let simspeed ~extra_shards () =
  section "Simulator hot path - fused packed replay vs listener paths \
           (pverify, unoptimized, 128B)";
  let w = Ws.find "pverify" in
  let nprocs = w.W.fig3_procs in
  (* 4x the experiment scale: a longer trace amortizes per-run setup
     (cache construction) so the measurement is per-event throughput *)
  let prog = w.W.build ~nprocs ~scale:(4 * w.W.default_scale) in
  let recorded = Sim.record prog ~nprocs in
  let layout = Layout.default prog ~block:128 in
  let max_addr = Layout.size layout in
  let events = Fs_trace.Cell_trace.length recorded.Sim.trace in
  let reps = 10 in
  let legacy () =
    let c = Legacy_cache.create (C.default_config ~nprocs ~block:128) in
    Fs_replay.Replay.replay_to_sink recorded.Sim.trace ~layout
      ~sink:(Legacy_cache.sink c);
    Legacy_cache.counts c
  in
  let reference () =
    let c = C.create ~max_addr (C.default_config ~nprocs ~block:128) in
    Fs_replay.Replay.replay_to_sink recorded.Sim.trace ~layout
      ~sink:(C.sink c);
    C.counts c
  in
  let fused () =
    let c = C.create ~max_addr (C.default_config ~nprocs ~block:128) in
    Fs_replay.Replay.simulate recorded.Sim.trace ~layout ~cache:c;
    C.counts c
  in
  (* identical counts is load-bearing: the throughput comparison is only
     meaningful because the three engines are interchangeable *)
  let c_fused = fused () in
  assert (legacy () = c_fused);
  assert (reference () = c_fused);
  (* interleaved trials, min per engine: each engine sees the same
     machine conditions within a round, and the min is insensitive to
     GC pauses and scheduler noise on these short runs.  The
     full_major keeps one engine's garbage from being collected on
     another engine's clock. *)
  let t_legacy = ref infinity and t_ref = ref infinity
  and t_fused = ref infinity in
  let trial best f =
    Gc.full_major ();
    let t = snd (time_it (fun () ->
        for _ = 1 to reps do ignore (f ()) done))
    in
    if t < !best then best := t
  in
  for _ = 1 to 4 do
    trial t_legacy legacy;
    trial t_ref reference;
    trial t_fused fused
  done;
  let t_legacy = !t_legacy and t_ref = !t_ref and t_fused = !t_fused in
  let rate t =
    if t > 0. then float_of_int (events * reps) /. t /. 1e6 else 0.
  in
  let speedup num den = if den > 0. then num /. den else 0. in
  Printf.printf
    "pre-rewrite engine, listener path: %.3fs  (%.1f Mevents/s)\n\
     flat-array engine, listener path:  %.3fs  (%.1f Mevents/s)\n\
     flat-array engine, fused loop:     %.3fs  (%.1f Mevents/s)\n\
     fused vs pre-rewrite: %.2fx | fused vs listener path: %.2fx \
     (%d events x%d, identical counts)\n"
    t_legacy (rate t_legacy) t_ref (rate t_ref) t_fused (rate t_fused)
    (speedup t_legacy t_fused) (speedup t_ref t_fused) events reps;
  (* scaling vs domains: the same trace through the sharded engine, one
     point per shard count, each on a persistent pool of [shards]
     workers (deliberately oversubscribed when the box has fewer cores —
     the curve then reports what sharding costs there, not a guess).
     Counts are asserted bit-identical to the fused run at every point. *)
  let module R = Fs_replay.Replay in
  let points =
    List.sort_uniq compare
      (List.filter
         (fun n -> n >= 1)
         ([ 1; 2; 4; Fs_util.Par.default_jobs () ] @ extra_shards))
  in
  let config = C.default_config ~nprocs ~block:128 in
  let run_sharded shards pool () =
    (R.simulate_sharded ?pool recorded.Sim.trace ~shards ~layout ~config)
      .R.counts
  in
  let reps_s = 5 in
  let runs =
    List.map
      (fun shards ->
        let pool =
          if shards > 1 then Some (Fs_util.Par.Pool.create ~jobs:shards ())
          else None
        in
        (shards, pool, ref infinity))
      points
  in
  (* warm-up doubles as the identity check *)
  List.iter
    (fun (shards, pool, _) -> assert (run_sharded shards pool () = c_fused))
    runs;
  for _ = 1 to 3 do
    List.iter
      (fun (shards, pool, best) ->
        Gc.full_major ();
        let t =
          snd
            (time_it (fun () ->
                 for _ = 1 to reps_s do
                   ignore (run_sharded shards pool ())
                 done))
        in
        if t < !best then best := t)
      runs
  done;
  let rate_s t =
    if t > 0. then float_of_int (events * reps_s) /. t /. 1e6 else 0.
  in
  let scaling =
    List.map
      (fun (shards, pool, best) ->
        let utilization =
          match pool with
          | None -> []
          | Some p ->
            let st = Fs_util.Par.Pool.stats p in
            let u =
              Array.to_list
                (Array.map
                   (fun w -> Fs_util.Par.utilization st w)
                   st.Fs_util.Par.workers)
            in
            Fs_util.Par.Pool.shutdown p;
            u
        in
        let t = !best in
        Printf.printf
          "sharded, %d shard(s): %.3fs  (%.1f Mevents/s, %.2fx vs fused)\n"
          shards t (rate_s t)
          (speedup (t_fused *. float_of_int reps_s /. float_of_int reps) t);
        Json.Obj
          [ ("shards", Json.Int shards);
            ("seconds", Json.float t);
            ("mevents_per_s", Json.float (rate_s t));
            ("speedup_vs_fused",
             Json.float
               (speedup (t_fused *. float_of_int reps_s /. float_of_int reps) t));
            ("counts_identical", Json.Bool true);
            ("worker_utilization",
             Json.List (List.map Json.float utilization)) ])
      runs
  in
  (* the same curve against the on-disk v2 form: blocks decoded on the
     pool, pipelined one window ahead of the drain, so the trace never
     materializes as an array.  Reported with the bytes actually read
     and the effective bandwidth that implies. *)
  let v2_path = tmp_trace "simspeed" in
  Ct.write_file recorded.Sim.trace v2_path;
  let stream = Ct.of_file_stream v2_path in
  let trace_bytes = Ct.Stream.byte_size stream in
  let streamed =
    List.map
      (fun shards ->
        let pool =
          if shards > 1 then Some (Fs_util.Par.Pool.create ~jobs:shards ())
          else None
        in
        let run () =
          (R.simulate_sharded_stream ?pool stream ~shards ~layout ~config)
            .R.counts
        in
        assert (run () = c_fused);
        let best = ref infinity in
        for _ = 1 to 3 do
          Gc.full_major ();
          let t =
            snd (time_it (fun () ->
                for _ = 1 to reps_s do ignore (run ()) done))
          in
          if t < !best then best := t
        done;
        (match pool with Some p -> Fs_util.Par.Pool.shutdown p | None -> ());
        let t = !best in
        let mbs =
          if t > 0. then
            float_of_int (trace_bytes * reps_s) /. t /. (1024. *. 1024.)
          else 0.
        in
        Printf.printf
          "streamed v2, %d shard(s): %.3fs  (%.1f Mevents/s, %.1f MB/s read)\n"
          shards t (rate_s t) mbs;
        Json.Obj
          [ ("shards", Json.Int shards);
            ("seconds", Json.float t);
            ("mevents_per_s", Json.float (rate_s t));
            ("mb_per_s", Json.float mbs);
            ("counts_identical", Json.Bool true) ])
      points
  in
  Ct.Stream.close stream;
  Sys.remove v2_path;
  record "simspeed" ~seconds:(t_legacy +. t_ref +. t_fused)
    (Json.Obj
       [ ("events", Json.Int events);
         ("reps", Json.Int reps);
         ("legacy_seconds", Json.float t_legacy);
         ("reference_seconds", Json.float t_ref);
         ("fused_seconds", Json.float t_fused);
         ("legacy_mevents_per_s", Json.float (rate t_legacy));
         ("reference_mevents_per_s", Json.float (rate t_ref));
         ("fused_mevents_per_s", Json.float (rate t_fused));
         ("speedup_vs_legacy", Json.float (speedup t_legacy t_fused));
         ("speedup_vs_reference", Json.float (speedup t_ref t_fused));
         ("scaling", Json.List scaling);
         ("trace_bytes", Json.Int trace_bytes);
         ("streamed_v2", Json.List streamed) ])

(* ------------------------------------------------------------------ *)
(* Trace format v2: on-disk size, decode throughput, and the streamed
   replay path.  File sizes and replay counts are pure functions of the
   workload (the interpreter's schedule and the encoding are both
   deterministic), so `tracefmt` sits inside the baseline gate; the
   decode/replay timings are wall-clock and stay out of it.            *)

let tracefmt () =
  section "Trace format v2 - on-disk bytes vs v1, streamed counts identical \
           (every workload, default scale, 128B)";
  let module R = Fs_replay.Replay in
  let t0 = Unix.gettimeofday () in
  let rows = ref [] in
  let payloads =
    List.map
      (fun (w : W.t) ->
        let nprocs = w.fig3_procs in
        let prog = w.build ~nprocs ~scale:w.default_scale in
        let recorded = Sim.record prog ~nprocs in
        let trace = recorded.Sim.trace in
        let events = Ct.length trace in
        let layout = Layout.default prog ~block:128 in
        let config = C.default_config ~nprocs ~block:128 in
        let reference =
          (R.simulate_sharded trace ~shards:1 ~layout ~config).R.counts
        in
        (* both formats must replay from disk to the exact in-memory
           counts — the compression numbers only matter if the round
           trip is lossless *)
        let size_of format =
          let path = tmp_trace w.name in
          Ct.write_file ~format trace path;
          let s = Ct.of_file_stream path in
          let st = R.simulate_sharded_stream s ~shards:1 ~layout ~config in
          assert (st.R.counts = reference);
          let bytes = Ct.Stream.byte_size s in
          Ct.Stream.close s;
          Sys.remove path;
          bytes
        in
        let v1 = size_of Ct.V1 in
        let v2 = size_of Ct.V2 in
        let ratio = float_of_int v1 /. float_of_int v2 in
        let bpe = float_of_int v2 /. float_of_int (max 1 events) in
        rows :=
          [ w.name; string_of_int events; string_of_int v1; string_of_int v2;
            Printf.sprintf "%.2fx" ratio; Printf.sprintf "%.2f" bpe; "yes" ]
          :: !rows;
        Json.Obj
          [ ("workload", Json.String w.name);
            ("events", Json.Int events);
            ("v1_bytes", Json.Int v1);
            ("v2_bytes", Json.Int v2);
            ("ratio", Json.float ratio);
            ("v2_bytes_per_event", Json.float bpe);
            ("streamed_counts_identical", Json.Bool true) ])
      Ws.all
  in
  print_string
    (Fs_util.Table.render
       ~header:
         [ "program"; "events"; "v1 bytes"; "v2 bytes"; "v1/v2"; "B/event";
           "identical" ]
       (List.rev !rows));
  record "tracefmt" ~seconds:(Unix.gettimeofday () -. t0) (Json.List payloads)

let tracefmt_decode ~jobs () =
  section "Trace format v2 - decode throughput and streamed sharded replay \
           vs v1 (pverify, unoptimized, 128B)";
  let module R = Fs_replay.Replay in
  let t0 = Unix.gettimeofday () in
  let w = Ws.find "pverify" in
  let nprocs = w.W.fig3_procs in
  let prog = w.W.build ~nprocs ~scale:(4 * w.W.default_scale) in
  let recorded = Sim.record prog ~nprocs in
  let trace = recorded.Sim.trace in
  let events = Ct.length trace in
  let layout = Layout.default prog ~block:128 in
  let config = C.default_config ~nprocs ~block:128 in
  let reference =
    (R.simulate_sharded trace ~shards:1 ~layout ~config).R.counts
  in
  let mk format =
    let path = tmp_trace "decode" in
    Ct.write_file ~format trace path;
    path
  in
  let p1 = mk Ct.V1 and p2 = mk Ct.V2 in
  let s1 = Ct.of_file_stream p1 and s2 = Ct.of_file_stream p2 in
  let reps = 5 in
  let best_of f =
    let best = ref infinity in
    for _ = 1 to 3 do
      Gc.full_major ();
      let t = snd (time_it (fun () -> for _ = 1 to reps do f () done)) in
      if t < !best then best := t
    done;
    !best
  in
  (* raw decode: every block through the codec into the reused buffer,
     no simulation behind it *)
  let sink = ref 0 in
  let decode s () =
    Ct.Stream.iter_chunks (fun buf n -> sink := !sink + n + (buf.(0) land 1)) s
  in
  let d1 = best_of (decode s1) and d2 = best_of (decode s2) in
  let b1 = Ct.Stream.byte_size s1 and b2 = Ct.Stream.byte_size s2 in
  let rate t = if t > 0. then float_of_int (events * reps) /. t /. 1e6 else 0. in
  let mbs bytes t =
    if t > 0. then float_of_int (bytes * reps) /. t /. (1024. *. 1024.) else 0.
  in
  Printf.printf
    "decode only:  v1 %.3fs (%.1f Mevents/s)  |  v2 %.3fs (%.1f Mevents/s)\n"
    d1 (rate d1) d2 (rate d2);
  (* streamed sharded replay at 1 and 4 shards: at 1 the decode runs
     inline on the calling domain, at 4 it is pipelined onto the pool
     (oversubscribed when the box has fewer cores, same policy as the
     simspeed curve) *)
  let points = List.sort_uniq compare [ 1; 4; max 1 jobs ] in
  let replay_points =
    List.map
      (fun shards ->
        let pool =
          if shards > 1 then Some (Fs_util.Par.Pool.create ~jobs:shards ())
          else None
        in
        let replay s () =
          let st = R.simulate_sharded_stream ?pool s ~shards ~layout ~config in
          assert (st.R.counts = reference)
        in
        replay s1 ();
        replay s2 ();
        let r1 = best_of (replay s1) and r2 = best_of (replay s2) in
        (match pool with Some p -> Fs_util.Par.Pool.shutdown p | None -> ());
        let speedup = if r2 > 0. then r1 /. r2 else 0. in
        Printf.printf
          "streamed replay, %d shard(s): v1 %.3fs (%.1f Mevents/s, %.1f MB/s \
           read)  |  v2 %.3fs (%.1f Mevents/s, %.1f MB/s read)  |  v2 vs v1 \
           %.2fx\n"
          shards r1 (rate r1) (mbs b1 r1) r2 (rate r2) (mbs b2 r2) speedup;
        Json.Obj
          [ ("shards", Json.Int shards);
            ("v1_replay_seconds", Json.float r1);
            ("v2_replay_seconds", Json.float r2);
            ("v1_replay_mevents_per_s", Json.float (rate r1));
            ("v2_replay_mevents_per_s", Json.float (rate r2));
            ("v1_replay_mb_per_s", Json.float (mbs b1 r1));
            ("v2_replay_mb_per_s", Json.float (mbs b2 r2));
            ("v2_vs_v1_replay_speedup", Json.float speedup);
            ("counts_identical", Json.Bool true) ])
      points
  in
  Ct.Stream.close s1;
  Ct.Stream.close s2;
  Sys.remove p1;
  Sys.remove p2;
  Printf.printf
    "(%d events x%d; v1 %d bytes, v2 %d bytes; counts identical to \
     in-memory at every point)\n"
    events reps b1 b2;
  record "tracefmt-decode" ~seconds:(Unix.gettimeofday () -. t0)
    (Json.Obj
       [ ("events", Json.Int events);
         ("reps", Json.Int reps);
         ("v1_bytes", Json.Int b1);
         ("v2_bytes", Json.Int b2);
         ("v1_decode_seconds", Json.float d1);
         ("v2_decode_seconds", Json.float d2);
         ("v1_decode_mevents_per_s", Json.float (rate d1));
         ("v2_decode_mevents_per_s", Json.float (rate d2));
         ("replay", Json.List replay_points) ])

(* the scale-up path: stream a >=10^8-event recording to disk (constant
   memory while recording), then replay it through the sharded streamed
   engine — the whole point of v2 is that neither side ever holds the
   trace, so peak heap stays at the decode window while the file runs
   to hundreds of megabytes *)

let tracefmt_scale ~jobs () =
  section "Trace format v2 - 10^8-event recordings streamed end to end \
           (record -> v2 file -> sharded streamed replay, bounded heap)";
  let module R = Fs_replay.Replay in
  let t0 = Unix.gettimeofday () in
  let target = 100_000_000 in
  let shards = max 2 (min 4 jobs) in
  let payloads =
    List.map
      (fun name ->
        let w = Ws.find name in
        let nprocs = w.W.fig3_procs in
        (* event yield per scale is workload-specific and not always
           linear, so fit a power law through two cheap probes and solve
           for the target (with a 5% overshoot) *)
        let probe s =
          let prog = w.W.build ~nprocs ~scale:s in
          float_of_int (Ct.length (Sim.record prog ~nprocs).Sim.trace)
        in
        let s0 = w.W.default_scale in
        let s1 = 16 * s0 in
        let e0 = probe s0 and e1 = probe s1 in
        let b = log (e1 /. e0) /. log (float_of_int s1 /. float_of_int s0) in
        let scale =
          max s1
            (int_of_float
               (ceil
                  (float_of_int s0
                  *. ((1.1 *. float_of_int target /. e0) ** (1. /. b)))))
        in
        let prog = w.W.build ~nprocs ~scale in
        let path = tmp_trace ("scale-" ^ name) in
        let wr = Ct.Writer.create ~vars:(Interp.vars prog) ~nprocs path in
        let record_s =
          snd
            (time_it (fun () ->
                 (* the default nontermination guard is sized for
                    experiment-scale runs; a 10^8-event capture is
                    legitimately ~50x that *)
                 match
                   Interp.run_cells ~max_steps:max_int prog ~nprocs
                     ~cells:(Ct.Writer.recorder wr)
                 with
                 | _ -> Ct.Writer.close wr
                 | exception e ->
                   Ct.Writer.abort wr;
                   raise e))
        in
        let events = Ct.Writer.length wr in
        assert (events >= target);
        let bytes = (Unix.stat path).Unix.st_size in
        let layout = Layout.default prog ~block:128 in
        let config = C.default_config ~nprocs ~block:128 in
        let s = Ct.of_file_stream path in
        let st, replay_s =
          time_it (fun () ->
              R.simulate_sharded_stream s ~shards ~layout ~config)
        in
        assert (C.accesses st.R.counts > 0);
        let epochs = Array.length st.R.epochs in
        (* the decode window: (jobs + 1) block buffers of boxed ints — the
           streamed engine's whole per-trace allocation *)
        let window_bytes =
          (shards + 1) * Ct.Stream.max_block_events s * 8
        in
        Ct.Stream.close s;
        Sys.remove path;
        let top_heap_mb =
          float_of_int ((Gc.quick_stat ()).Gc.top_heap_words * 8)
          /. (1024. *. 1024.)
        in
        let rate = float_of_int events /. 1e6 /. Float.max 1e-9 replay_s in
        let mbs =
          float_of_int bytes /. (1024. *. 1024.) /. Float.max 1e-9 replay_s
        in
        Printf.printf
          "%-10s %9d events -> %d bytes (%.2f B/event) in %.1fs; streamed \
           replay %.1fs (%.1f Mevents/s, %.1f MB/s, %d shards, %d epochs)\n\
           %-10s decode window %.1f MB, process top-of-heap %.1f MB (the \
           in-memory trace alone would need %.0f MB)\n"
          name events bytes
          (float_of_int bytes /. float_of_int events)
          record_s replay_s rate mbs shards epochs ""
          (float_of_int window_bytes /. (1024. *. 1024.))
          top_heap_mb
          (float_of_int (events * 8) /. (1024. *. 1024.));
        Json.Obj
          [ ("workload", Json.String name);
            ("nprocs", Json.Int nprocs);
            ("scale", Json.Int scale);
            ("events", Json.Int events);
            ("bytes", Json.Int bytes);
            ("bytes_per_event",
             Json.float (float_of_int bytes /. float_of_int events));
            ("record_seconds", Json.float record_s);
            ("replay_seconds", Json.float replay_s);
            ("replay_mevents_per_s", Json.float rate);
            ("replay_mb_per_s", Json.float mbs);
            ("shards", Json.Int shards);
            ("epochs", Json.Int epochs);
            ("decode_window_bytes", Json.Int window_bytes);
            ("top_heap_mb", Json.float top_heap_mb) ])
      [ "pverify"; "maxflow" ]
  in
  record "tracescale" ~seconds:(Unix.gettimeofday () -. t0)
    (Json.List payloads)

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: the flight recorder's budget is <3% on the fused
   replay loop.  Same methodology as simspeed — interleaved min-of-N
   trials over the same trace — comparing the recorder-disabled loop
   (which must be the untouched original: zero cost off) against the
   instrumented twin sampling at the default interval.                 *)

let telemetry_bench () =
  section "Telemetry - flight recorder overhead on the fused replay loop \
           (pverify, unoptimized, 128B)";
  let w = Ws.find "pverify" in
  let nprocs = w.W.fig3_procs in
  let prog = w.W.build ~nprocs ~scale:(4 * w.W.default_scale) in
  let recorded = Sim.record prog ~nprocs in
  let layout = Layout.default prog ~block:128 in
  let max_addr = Layout.size layout in
  let events = Fs_trace.Cell_trace.length recorded.Sim.trace in
  let reps = 10 in
  let flight = Fs_replay.Flight.create () in
  let run_fused flight () =
    let c = C.create ~max_addr (C.default_config ~nprocs ~block:128) in
    Fs_replay.Replay.simulate ?flight recorded.Sim.trace ~layout ~cache:c;
    C.counts c
  in
  (* counts must be bit-identical with the recorder on or off — the
     instrumented loop only reads the live counters, never feeds them *)
  let c_off = run_fused None () in
  let c_on = run_fused (Some flight) () in
  let counts_identical = c_off = c_on in
  assert counts_identical;
  let t_off = ref infinity and t_on = ref infinity in
  let trial best f =
    Gc.full_major ();
    let t = snd (time_it (fun () ->
        for _ = 1 to reps do ignore (f ()) done))
    in
    if t < !best then best := t
  in
  (* eight interleaved trials: the instrumented loop does zero per-event
     work, so the measured delta is min-of-N jitter — more trials tighten
     both minima and keep the reported ratio honest on a noisy box *)
  for _ = 1 to 8 do
    trial t_off (run_fused None);
    trial t_on (run_fused (Some flight))
  done;
  let t_off = !t_off and t_on = !t_on in
  let overhead = if t_off > 0. then (t_on -. t_off) /. t_off else 0. in
  let d = Fs_replay.Flight.digest flight in
  Printf.printf
    "recorder off: %.3fs | recorder on: %.3fs | overhead %+.1f%% \
     (budget <3%%)\n\
     %d samples every %d events, counts identical: %b\n"
    t_off t_on (overhead *. 100.)
    d.Fs_replay.Flight.d_taken d.Fs_replay.Flight.d_interval counts_identical;
  record "telemetry-overhead" ~seconds:(t_off +. t_on)
    (Json.Obj
       [ ("events", Json.Int events);
         ("reps", Json.Int reps);
         ("off_seconds", Json.float t_off);
         ("on_seconds", Json.float t_on);
         ("overhead_ratio", Json.float (if t_off > 0. then t_on /. t_off else 0.));
         ("overhead_pct", Json.float (overhead *. 100.));
         ("interval", Json.Int d.Fs_replay.Flight.d_interval);
         ("samples", Json.Int d.Fs_replay.Flight.d_taken);
         ("counts_identical", Json.Bool counts_identical) ])

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out                 *)

let ablation () =
  section "Ablations - lock padding, static profiling, RSD merge limit \
           (residual false-sharing misses at 128B under each compiler variant)";
  let header = [ "program"; "full"; "no lock pad"; "no profiling"; "rsd limit 1" ] in
  let t0 = Unix.gettimeofday () in
  let rows =
    List.map
      (fun (w : W.t) ->
        let nprocs = w.fig3_procs in
        let prog = w.build ~nprocs ~scale:w.default_scale in
        let recorded = Sim.record prog ~nprocs in
        let fs_with options =
          let plan = (T.plan ~options prog ~nprocs).T.plan in
          (Sim.cache_sim ~recorded prog plan ~nprocs ~block:128)
            .Sim.counts.C.false_sh
        in
        let base = fs_with T.default_options in
        let nolocks = fs_with { T.default_options with pad_locks = false } in
        let noprof = fs_with { T.default_options with profile = false } in
        let rsd1 = fs_with { T.default_options with rsd_limit = 1 } in
        [ w.name; string_of_int base; string_of_int nolocks;
          string_of_int noprof; string_of_int rsd1 ])
      (Ws.simulated ())
  in
  print_string (Fs_util.Table.render ~header rows);
  record "ablation" ~seconds:(Unix.gettimeofday () -. t0)
    (Json.List
       (List.map
          (fun row ->
            match row with
            | [ name; base; nolocks; noprof; rsd1 ] ->
              Json.Obj
                [ ("program", Json.String name);
                  ("full", Json.Int (int_of_string base));
                  ("no_lock_pad", Json.Int (int_of_string nolocks));
                  ("no_profiling", Json.Int (int_of_string noprof));
                  ("rsd_limit_1", Json.Int (int_of_string rsd1)) ]
            | _ -> Json.Null)
          rows))

(* ------------------------------------------------------------------ *)
(* Feedback repair: the profile-guided refinement loop                 *)

let repair_bench ~jobs () =
  section "Feedback repair - N/C/P/F comparison (compiler and programmer \
           plans refined to fixpoint; 16B and 128B blocks)";
  let rows, dt =
    time_it (fun () -> Fs_feedback.Repair_experiments.table ~jobs ())
  in
  print_string (Fs_feedback.Repair_experiments.render rows);
  record "repair" ~seconds:dt (Fs_feedback.Repair_experiments.to_json rows);
  Printf.printf "(%.1fs)\n" dt

(* ------------------------------------------------------------------ *)
(* Work stealing: the dynamic family the static planner cannot see     *)

let stealing_bench ~jobs () =
  section "Work stealing - N/C/F on the dynamic workload family \
           (deterministic scheduler, seed 42; 16B and 128B blocks)";
  let module RE = Fs_feedback.Repair_experiments in
  let rows, dt = time_it (fun () -> RE.stealing_table ~seed:42 ~jobs ()) in
  print_string (RE.render_stealing rows);
  (* the dynamic family's reason to exist: the compiler plan is made from
     the AST, which shows neither the scheduler's deques nor where stolen
     tasks land, so C leaves false sharing behind that the profile-guided
     repair must remove — by at least half, on at least two workloads *)
  let qualifying =
    List.sort_uniq compare
      (List.filter_map
         (fun (r : RE.steal_row) ->
           let c = r.RE.scompiler.RE.false_sharing in
           let f = r.RE.sfeedback.RE.rcell.RE.false_sharing in
           if c > 0 && 2 * (c - f) >= c then Some r.RE.sname else None)
         rows)
  in
  Printf.printf
    "\nworkloads where repair removes >=50%% of the false sharing the \
     compiler plan left: %s\n"
    (String.concat ", " qualifying);
  if List.length qualifying < 2 then begin
    print_endline
      "stealing: FAILED — expected >=50% C->F removal on at least 2 dynamic \
       workloads";
    exit 1
  end;
  let json = RE.stealing_to_json rows in
  record "stealing" ~seconds:dt json;
  (* a standalone artifact for CI, next to BENCH_results.json *)
  let oc = open_out "stealing_ncpf.json" in
  Json.to_channel ~compact:false oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "(%.1fs; wrote stealing_ncpf.json)\n" dt

(* ------------------------------------------------------------------ *)
(* Phase-resolved sharing: per-epoch profiles + tracking overhead      *)

let phases_bench () =
  section "Per-epoch sharing profile (pverify and topopt, unoptimized, 128B)";
  let t0 = Unix.gettimeofday () in
  let payloads =
    List.map
      (fun name ->
        let w = Ws.find name in
        let nprocs = w.W.fig3_procs in
        let prog = w.W.build ~nprocs ~scale:w.W.default_scale in
        let p = Falseshare.Phases.analyze prog Plan.empty ~nprocs ~block:128 in
        Printf.printf "--- %s ---\n" name;
        print_string (Falseshare.Phases.render p);
        print_newline ();
        (name, Emit.phases p))
      [ "pverify"; "topopt" ]
  in
  record "phases" ~seconds:(Unix.gettimeofday () -. t0)
    (Json.Obj payloads);
  (* epoch + line tracking is opt-in; measure what turning it on costs a
     replay of the same recorded trace (separate section: timings are
     machine-dependent, so `check` must not compare them) *)
  let w = Ws.find "pverify" in
  let nprocs = w.W.fig3_procs in
  let prog = w.W.build ~nprocs ~scale:w.W.default_scale in
  let recorded = Sim.record prog ~nprocs in
  let layout = Layout.default prog ~block:128 in
  let reps = 5 in
  let _, plain =
    time_it (fun () ->
        for _ = 1 to reps do
          let cache = C.create (C.default_config ~nprocs ~block:128) in
          Fs_replay.Replay.replay_to_sink recorded.Sim.trace ~layout
            ~sink:(C.sink cache)
        done)
  in
  let _, tracked =
    time_it (fun () ->
        for _ = 1 to reps do
          let cache =
            C.create ~track_lines:true (C.default_config ~nprocs ~block:128)
          in
          let tracker, close = Falseshare.Phases.tracker cache in
          Fs_replay.Replay.replay recorded.Sim.trace ~layout
            ~listener:
              (Fs_trace.Listener.combine
                 (Fs_trace.Listener.of_sink (C.sink cache))
                 tracker);
          ignore (close ())
        done)
  in
  let ratio = if plain > 0. then tracked /. plain else 1.0 in
  Printf.printf
    "tracking overhead (pverify replay x%d): plain %.3fs, epoch+line \
     tracking %.3fs (%.2fx)\n"
    reps plain tracked ratio;
  record "tracking_overhead" ~seconds:(plain +. tracked)
    (Json.Obj
       [ ("reps", Json.Int reps);
         ("plain_seconds", Json.float plain);
         ("tracked_seconds", Json.float tracked);
         ("ratio", Json.float ratio) ])

(* ------------------------------------------------------------------ *)
(* Sharded replay: deterministic bit-identity + epoch reconciliation.
   Unlike the simspeed scaling curve (wall-clock, nondeterministic),
   everything here is exact experiment data, so the baseline gate
   compares it bit for bit.                                            *)

let sharded_bench () =
  section "Sharded replay - bit-identity vs the listener path \
           (pverify and topopt, unoptimized, 16B and 128B)";
  let module R = Fs_replay.Replay in
  let t0 = Unix.gettimeofday () in
  let rows = ref [] in
  let payloads =
    List.concat_map
      (fun name ->
        let w = Ws.find name in
        let nprocs = w.W.fig3_procs in
        let prog = w.W.build ~nprocs ~scale:w.W.default_scale in
        let recorded = Sim.record prog ~nprocs in
        (* the same trace from disk: every point below also replays the
           v2 file through the streamed engine and must land on the same
           counts, so the bit-identity evidence covers the on-disk path
           and reports the bytes it read *)
        let v2_path = tmp_trace ("sharded-" ^ name) in
        Ct.write_file recorded.Sim.trace v2_path;
        let stream = Ct.of_file_stream v2_path in
        let trace_bytes = Ct.Stream.byte_size stream in
        let out =
          List.concat_map
            (fun block ->
              let layout = Layout.default prog ~block in
              let config = C.default_config ~nprocs ~block in
              let reference =
                let c = C.create ~max_addr:(Layout.size layout) config in
                Fs_replay.Replay.replay_to_sink recorded.Sim.trace ~layout
                  ~sink:(C.sink c);
                C.counts c
              in
              List.map
                (fun shards ->
                  let s =
                    R.simulate_sharded recorded.Sim.trace ~shards ~layout
                      ~config
                  in
                  let identical = s.R.counts = reference in
                  let esum = C.zero_counts () in
                  Array.iter (fun e -> C.add_into esum e) s.R.epochs;
                  let epochs_sum_ok = esum = s.R.counts in
                  let streamed, stream_s =
                    time_it (fun () ->
                        R.simulate_sharded_stream stream ~shards ~layout
                          ~config)
                  in
                  let stream_identical = streamed.R.counts = reference in
                  (* load-bearing: a drifted shard must fail the bench run
                     itself, not just the baseline diff *)
                  assert identical;
                  assert epochs_sum_ok;
                  assert stream_identical;
                  let mbs =
                    float_of_int trace_bytes /. (1024. *. 1024.)
                    /. Float.max 1e-9 stream_s
                  in
                  rows :=
                    [ name; string_of_int block; string_of_int shards;
                      string_of_int (C.misses s.R.counts);
                      string_of_int s.R.counts.C.false_sh;
                      string_of_int (Array.length s.R.epochs); "yes";
                      Printf.sprintf "%.0f" mbs ]
                    :: !rows;
                  Json.Obj
                    [ ("workload", Json.String name);
                      ("block", Json.Int block);
                      ("shards", Json.Int shards);
                      ("identical", Json.Bool identical);
                      ("epochs", Json.Int (Array.length s.R.epochs));
                      ("epochs_sum_ok", Json.Bool epochs_sum_ok);
                      ("stream_identical", Json.Bool stream_identical);
                      ("trace_bytes", Json.Int trace_bytes);
                      ("counts", Emit.counts s.R.counts) ])
                [ 1; 2; 4 ])
            [ 16; 128 ]
        in
        Ct.Stream.close stream;
        Sys.remove v2_path;
        out)
      [ "pverify"; "topopt" ]
  in
  print_string
    (Fs_util.Table.render
       ~header:
         [ "program"; "block"; "shards"; "misses"; "false sh"; "epochs";
           "identical"; "stream MB/s" ]
       (List.rev !rows));
  record "sharded" ~seconds:(Unix.gettimeofday () -. t0) (Json.List payloads)

(* ------------------------------------------------------------------ *)
(* Serving: daemon latency over loopback, cold store vs warm           *)

let percentile sorted q =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let serve_bench ~quick ~jobs () =
  section
    "Serving - daemon requests over loopback, cold (computed) vs warm \
     (content-addressed store hit)";
  let t0 = Unix.gettimeofday () in
  let cache_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fs-bench-serve-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists cache_dir) then Sys.mkdir cache_dir 0o755;
  let t =
    Fs_serve.Server.start
      { Fs_serve.Server.default_config with workers = 2; jobs; cache_dir }
  in
  let port = Fs_serve.Server.port t in
  let reps = if quick then 20 else 100 in
  let timed_request body path =
    let t0 = Unix.gettimeofday () in
    let status, _, _ = Fs_serve.Http.request ~port ~body path in
    if status <> 200 then failwith (Printf.sprintf "%s -> %d" path status);
    Unix.gettimeofday () -. t0
  in
  let rows = ref [] in
  let payloads =
    List.map
      (fun endpoint ->
        let body = {|{"workload":"pverify","nprocs":8,"block":128}|} in
        let path = "/" ^ endpoint ^ "?spans=none" in
        (* first request computes and fills the store; the repeats are
           pure store hits — the daemon's steady state for a tenant
           re-asking an unchanged question *)
        let cold = timed_request body path in
        let warm =
          Array.init reps (fun _ -> timed_request body path)
        in
        Array.sort compare warm;
        let p50 = percentile warm 0.50 and p99 = percentile warm 0.99 in
        let total = Array.fold_left ( +. ) 0.0 warm in
        let rps = float_of_int reps /. total in
        rows :=
          [ endpoint;
            Printf.sprintf "%.1f" (cold *. 1e3);
            Printf.sprintf "%.2f" (p50 *. 1e3);
            Printf.sprintf "%.2f" (p99 *. 1e3);
            Printf.sprintf "%.0f" rps ]
          :: !rows;
        ( endpoint,
          Json.Obj
            [ ("cold_ms", Json.float (cold *. 1e3));
              ("warm_p50_ms", Json.float (p50 *. 1e3));
              ("warm_p99_ms", Json.float (p99 *. 1e3));
              ("warm_requests_per_s", Json.float rps);
              ("reps", Json.Int reps) ] ))
      [ "analyze"; "blame"; "hotlines"; "repair" ]
  in
  Fs_serve.Server.stop t;
  print_string
    (Fs_util.Table.render
       ~header:[ "endpoint"; "cold ms"; "warm p50 ms"; "warm p99 ms"; "warm req/s" ]
       (List.rev !rows));
  record "serve" ~seconds:(Unix.gettimeofday () -. t0) (Json.Obj payloads)

(* ------------------------------------------------------------------ *)
(* Regression gate: compare this run against the committed baseline    *)

(* sections whose payloads are wall-clock measurements, not
   deterministic experiment data *)
let nondeterministic =
  [ "micro"; "replay"; "tracking_overhead"; "simspeed"; "telemetry-overhead";
    "serve"; "tracefmt-decode"; "tracescale" ]

let baseline_path () =
  if Sys.file_exists "bench/BASELINE.json" then "bench/BASELINE.json"
  else "BASELINE.json"

let read_json path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | Ok j -> j
  | Error e -> failwith (Printf.sprintf "%s: %s" path e)

let write_baseline () =
  let path = "bench/BASELINE.json" in
  let j =
    Json.Obj
      [ ("harness", Json.String "falseshare bench");
        ("sections",
         Json.Obj
           (List.rev !results
            |> List.filter (fun (name, _) ->
                   not (List.mem name nondeterministic)))) ]
  in
  let oc = open_out path in
  Json.to_channel ~compact:false oc j;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nseeded %s\n" path

let check_against_baseline ~tolerance =
  let path = baseline_path () in
  if not (Sys.file_exists path) then begin
    Printf.printf
      "\nno baseline at %s — run `bench baseline` and commit it\n" path;
    exit 1
  end;
  let obj = function Json.Obj kv -> kv | _ -> [] in
  let base_sections =
    match Json.member "sections" (read_json path) with
    | Some s -> obj s
    | None -> []
  in
  let current = List.rev !results in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun (name, bj) ->
      if not (List.mem name nondeterministic) then
        match List.assoc_opt name current with
        | None -> fail "%s: in the baseline but not produced by this run" name
        | Some cj -> (
          (match (Json.member "data" bj, Json.member "data" cj) with
           | Some b, Some c ->
             (* the pipeline is deterministic, so the payloads must agree
                bit for bit; floats survive the round-trip exactly *)
             if Json.to_string b <> Json.to_string c then
               fail "%s: data drifted from the baseline" name
           | _ -> fail "%s: malformed section record" name);
          match
            ( Option.bind (Json.member "seconds" bj) Json.get_float,
              Option.bind (Json.member "seconds" cj) Json.get_float )
          with
          | Some b, Some c when c > (b +. 0.1) *. tolerance ->
            (* +0.1s so near-instant baseline sections don't trip on noise *)
            fail "%s: took %.2fs, baseline %.2fs (tolerance %gx)" name c b
              tolerance
          | _ -> ()))
    base_sections;
  List.iter
    (fun (name, _) ->
      if
        (not (List.mem name nondeterministic))
        && not (List.mem_assoc name base_sections)
      then
        fail "%s: produced by this run but missing from the baseline" name)
    current;
  match !failures with
  | [] ->
    Printf.printf "\nbench check: ok — %d section(s) match %s\n"
      (List.length base_sections) path
  | fs ->
    Printf.printf "\nbench check: %d FAILURE(S) against %s\n" (List.length fs)
      path;
    List.iter (fun f -> Printf.printf "  %s\n" f) (List.rev fs);
    exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the pipeline components                *)

let micro ~quick () =
  section "Component micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let pverify = Ws.find "pverify" in
  let prog = pverify.W.build ~nprocs:8 ~scale:1 in
  let layout = Layout.default prog ~block:128 in
  let bench_analysis =
    Test.make ~name:"analyze+plan (pverify, P=8)"
      (Staged.stage (fun () -> ignore (T.plan prog ~nprocs:8)))
  in
  let bench_layout =
    let plan = (T.plan prog ~nprocs:8).T.plan in
    Test.make ~name:"layout realize (pverify)"
      (Staged.stage (fun () -> ignore (Layout.realize prog plan ~block:128)))
  in
  let bench_interp =
    Test.make ~name:"interpret (pverify, P=8)"
      (Staged.stage (fun () ->
           ignore
             (Interp.run_to_sink prog ~nprocs:8 ~layout ~sink:Fs_trace.Sink.null)))
  in
  let bench_cache =
    (* a synthetic ping-pong trace through the protocol simulator *)
    Test.make ~name:"cache sim (100k refs)"
      (Staged.stage (fun () ->
           let t = C.create (C.default_config ~nprocs:8 ~block:64) in
           for k = 0 to 99_999 do
             ignore
               (C.access t ~proc:(k mod 8) ~write:(k land 1 = 0)
                  ~addr:(4 * (k mod 512)))
           done))
  in
  let bench_full =
    Test.make ~name:"full pipeline (pverify cache sim)"
      (Staged.stage (fun () ->
           ignore (Sim.cache_sim prog Plan.empty ~nprocs:8 ~block:128)))
  in
  let tests =
    Test.make_grouped ~name:"falseshare"
      [ bench_analysis; bench_layout; bench_interp; bench_cache; bench_full ]
  in
  let limit, quota = if quick then (50, 0.1) else (200, 0.5) in
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimates =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> Some (t /. 1e6)
          | _ -> None
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  let rows =
    List.map
      (fun (name, est) ->
        [ name;
          (match est with
           | Some ms -> Printf.sprintf "%.3f ms" ms
           | None -> "n/a") ])
      estimates
  in
  print_string (Fs_util.Table.render ~header:[ "component"; "time/run" ] rows);
  record "micro" ~seconds:0.
    (Json.List
       (List.map
          (fun (name, est) ->
            Json.Obj
              [ ("component", Json.String name);
                ("ms_per_run",
                 match est with Some ms -> Json.float ms | None -> Json.Null) ])
          estimates))

(* ------------------------------------------------------------------ *)

let () =
  let t0 = Unix.gettimeofday () in
  let jobs = ref (Fs_util.Par.default_jobs ()) in
  let tolerance = ref 10.0 in
  let extra_shards = ref [] in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest ->
      jobs := int_of_string n;
      parse rest
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
      jobs := int_of_string (String.sub a 7 (String.length a - 7));
      parse rest
    | "--shards" :: n :: rest ->
      extra_shards := int_of_string n :: !extra_shards;
      parse rest
    | a :: rest when String.length a > 9 && String.sub a 0 9 = "--shards=" ->
      extra_shards := int_of_string (String.sub a 9 (String.length a - 9)) :: !extra_shards;
      parse rest
    | "--tolerance" :: f :: rest ->
      tolerance := float_of_string f;
      parse rest
    | a :: rest when String.length a > 12 && String.sub a 0 12 = "--tolerance=" ->
      tolerance := float_of_string (String.sub a 12 (String.length a - 12));
      parse rest
    | a :: rest ->
      positional := a :: !positional;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let positional = List.rev !positional in
  let jobs = !jobs in
  let pick = match positional with p :: _ -> p | [] -> "all" in
  (* baseline/check run the quick pass of every deterministic section *)
  let gate = pick = "baseline" || pick = "check" in
  let quick = List.mem "quick" positional || gate in
  let procs = if quick then Some [ 1; 2; 4; 8; 12; 16; 24; 32 ] else None in
  let all = pick = "all" || pick = "quick" in
  if all || gate || pick = "fig3" then fig3 ~jobs ();
  if all || gate || pick = "table2" then table2 ~jobs ();
  if all || gate || pick = "stats" then stats ~jobs ();
  if all || gate || pick = "fig4" then fig4 ~procs ~jobs ();
  if all || gate || pick = "table3" then table3 ~procs ~jobs ();
  if all || gate || pick = "exectime" then exectime ~procs ~jobs ();
  if all || pick = "replay" then replay_bench ~jobs ();
  if all || gate || pick = "simspeed" then
    simspeed ~extra_shards:!extra_shards ();
  if all || gate || pick = "sharded" then sharded_bench ();
  if all || gate || pick = "tracefmt" then tracefmt ();
  if all || gate || pick = "tracefmt-decode" then tracefmt_decode ~jobs ();
  if all || pick = "tracescale" then tracefmt_scale ~jobs ();
  if all || gate || pick = "telemetry" then telemetry_bench ();
  if all || gate || pick = "ablation" then ablation ();
  if all || gate || pick = "repair" then repair_bench ~jobs ();
  if all || gate || pick = "stealing" then stealing_bench ~jobs ();
  if all || gate || pick = "phases" then phases_bench ();
  if all || gate || pick = "serve" then serve_bench ~quick ~jobs ();
  if all || pick = "micro" then micro ~quick ();
  write_results ~quick ~jobs ~seconds:(Unix.gettimeofday () -. t0);
  if pick = "baseline" then write_baseline ();
  if pick = "check" then check_against_baseline ~tolerance:!tolerance
