(* The simulator engine as it stood before the flat-array rewrite:
   per-processor (block -> entry) hashtables, one global (block -> binfo)
   hashtable, and int-list LRU sets rebuilt with [List.filter] on every
   eviction and invalidation.

   Kept ONLY as the measurement baseline for the bench `simspeed`
   section, so the fused engine's speedup is reported against the engine
   it replaced rather than against itself.  Tracking tables and the
   boxed outcome API are stripped: this is exactly the untracked
   listener-path workload.  Tallies go into [Mpcache.counts] records so
   the bench can assert count equality against the live engine. *)

module C = Fs_cache.Mpcache

let word_size = 4

type lost = Never | Evicted | Invalidated of int

type entry = {
  mutable state : int;  (* 0 = I, 1 = S, 2 = M *)
  mutable lost : lost;
  mutable last_use : int;
}

type binfo = {
  mutable mask : int;
  mutable owner : int;
  mutable last_writer : int;
  wproc : int array;
  wtime : int array;
}

type pcache = {
  entries : (int, entry) Hashtbl.t;
  sets : int list array;
}

type t = {
  cfg : C.config;
  nsets : int;
  procs : pcache array;
  blocks : (int, binfo) Hashtbl.t;
  totals : C.counts;
  per_proc : C.counts array;
  mutable time : int;
}

let create (cfg : C.config) =
  let nsets = cfg.C.cache_bytes / (cfg.C.block * cfg.C.assoc) in
  {
    cfg;
    nsets;
    procs =
      Array.init cfg.C.nprocs (fun _ ->
          { entries = Hashtbl.create 512; sets = Array.make nsets [] });
    blocks = Hashtbl.create 1024;
    totals = C.zero_counts ();
    per_proc = Array.init cfg.C.nprocs (fun _ -> C.zero_counts ());
    time = 0;
  }

let entry_of pc b =
  match Hashtbl.find_opt pc.entries b with
  | Some e -> e
  | None ->
    let e = { state = 0; lost = Never; last_use = 0 } in
    Hashtbl.add pc.entries b e;
    e

let binfo_of t b =
  match Hashtbl.find_opt t.blocks b with
  | Some bi -> bi
  | None ->
    let words = t.cfg.C.block / word_size in
    let bi =
      { mask = 0; owner = -1; last_writer = -1;
        wproc = Array.make words (-1); wtime = Array.make words 0 }
    in
    Hashtbl.add t.blocks b bi;
    bi

let invalidate t bi b ~victim =
  let pc = t.procs.(victim) in
  let e = entry_of pc b in
  e.state <- 0;
  e.lost <- Invalidated t.time;
  bi.mask <- bi.mask land lnot (1 lsl victim);
  if bi.owner = victim then bi.owner <- -1;
  let set = b mod t.nsets in
  pc.sets.(set) <- List.filter (fun b' -> b' <> b) pc.sets.(set);
  t.totals.C.invalidations <- t.totals.C.invalidations + 1;
  let c = t.per_proc.(victim) in
  c.C.invalidations <- c.C.invalidations + 1

let invalidate_others t bi b ~keep =
  let mask = bi.mask land lnot (1 lsl keep) in
  if mask <> 0 then
    for q = 0 to t.cfg.C.nprocs - 1 do
      if mask land (1 lsl q) <> 0 then invalidate t bi b ~victim:q
    done

let install t ~proc b =
  let pc = t.procs.(proc) in
  let set = b mod t.nsets in
  let resident = pc.sets.(set) in
  if List.length resident >= t.cfg.C.assoc then begin
    let victim =
      List.fold_left
        (fun best b' ->
          let e' = Hashtbl.find pc.entries b' in
          match best with
          | None -> Some (b', e'.last_use)
          | Some (_, lu) when e'.last_use < lu -> Some (b', e'.last_use)
          | some -> some)
        None resident
    in
    match victim with
    | None -> ()
    | Some (vb, _) ->
      let ve = Hashtbl.find pc.entries vb in
      ve.state <- 0;
      ve.lost <- Evicted;
      let vbi = binfo_of t vb in
      vbi.mask <- vbi.mask land lnot (1 lsl proc);
      if vbi.owner = proc then vbi.owner <- -1;
      pc.sets.(set) <- List.filter (fun b' -> b' <> vb) pc.sets.(set)
  end;
  pc.sets.(set) <- b :: pc.sets.(set)

let classify_miss bi ~proc ~word e =
  match e.lost with
  | Never -> C.Cold
  | Evicted -> C.Replacement
  | Invalidated t_inv ->
    if bi.wproc.(word) >= 0 && bi.wproc.(word) <> proc
       && bi.wtime.(word) >= t_inv
    then C.True_sharing
    else C.False_sharing

let bump_kind c = function
  | C.Cold -> c.C.cold <- c.C.cold + 1
  | C.Replacement -> c.C.repl <- c.C.repl + 1
  | C.True_sharing -> c.C.true_sh <- c.C.true_sh + 1
  | C.False_sharing -> c.C.false_sh <- c.C.false_sh + 1

let sink t ~proc ~write ~addr =
  t.time <- t.time + 1;
  let b = addr / t.cfg.C.block in
  let word = addr mod t.cfg.C.block / word_size in
  let pc = t.procs.(proc) in
  let e = entry_of pc b in
  let bi = binfo_of t b in
  let count f =
    f t.totals;
    f t.per_proc.(proc)
  in
  if write then count (fun c -> c.C.writes <- c.C.writes + 1)
  else count (fun c -> c.C.reads <- c.C.reads + 1);
  let note_write () =
    bi.wproc.(word) <- proc;
    bi.wtime.(word) <- t.time;
    bi.last_writer <- proc
  in
  if write then begin
    match e.state with
    | 2 ->
      e.last_use <- t.time;
      note_write ()
    | 1 ->
      invalidate_others t bi b ~keep:proc;
      e.state <- 2;
      e.last_use <- t.time;
      bi.owner <- proc;
      note_write ();
      count (fun c -> c.C.upgrades <- c.C.upgrades + 1)
    | _ ->
      let kind = classify_miss bi ~proc ~word e in
      invalidate_others t bi b ~keep:proc;
      install t ~proc b;
      e.state <- 2;
      e.lost <- Never;
      e.last_use <- t.time;
      bi.mask <- bi.mask lor (1 lsl proc);
      bi.owner <- proc;
      note_write ();
      count (fun c -> bump_kind c kind)
  end
  else begin
    match e.state with
    | 1 | 2 -> e.last_use <- t.time
    | _ ->
      let kind = classify_miss bi ~proc ~word e in
      if bi.owner >= 0 then begin
        let oe = entry_of t.procs.(bi.owner) b in
        oe.state <- 1;
        bi.owner <- -1
      end;
      install t ~proc b;
      e.state <- 1;
      e.lost <- Never;
      e.last_use <- t.time;
      bi.mask <- bi.mask lor (1 lsl proc);
      count (fun c -> bump_kind c kind)
  end

let counts t = t.totals
