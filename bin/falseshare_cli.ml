(* Command-line front end.

   falseshare list                      -- the benchmark suite (Table 1)
   falseshare report  <workload>        -- compiler analysis + phase profile
   falseshare source  <workload>        -- ParC source of a benchmark
   falseshare sim     <workload> [...]  -- cache simulation, N vs C vs P
   falseshare speedup <workload> [...]  -- KSR2 scalability curves
   falseshare blame   <workload> [...]  -- invalidation blame matrix
   falseshare phases  <workload> [...]  -- per-epoch sharing profile
   falseshare hotlines <workload> [...] -- hot-line lifetimes + fixes
   falseshare timeline <workload> [...] -- Chrome-trace timeline export
   falseshare profile <workload> [...]  -- span tree + pool + flight digest
   falseshare serve [...]               -- the multi-tenant analysis daemon
   falseshare fig3 | table2 | fig4 | table3 | stats | exectime
                                        -- reproduce the paper's evaluation

   Every subcommand takes --json to emit machine-readable output, and
   --metrics-out/--spans-out to export the run's telemetry. *)

open Cmdliner
module E = Falseshare.Experiments
module Sim = Falseshare.Sim
module Pipeline = Falseshare.Pipeline
module Emit = Falseshare.Emit
module T = Fs_transform.Transform
module C = Fs_cache.Mpcache
module W = Fs_workloads.Workload
module Ws = Fs_workloads.Workloads
module Json = Fs_obs.Json

let wconv =
  Arg.conv
    ( (fun s ->
        match Ws.find s with
        | w -> Ok w
        | exception Not_found ->
          let names = List.map (fun w -> w.W.name) Ws.every in
          let hint =
            match Fs_util.Strdist.suggest s names with
            | [] -> "run `falseshare list` for the benchmark suite"
            | near ->
              Printf.sprintf "did you mean %s?"
                (String.concat " or " (List.map (Printf.sprintf "%S") near))
          in
          Error (`Msg (Printf.sprintf "unknown workload %S (%s)" s hint))),
      fun fmt w -> Format.pp_print_string fmt w.W.name )

let workload_arg =
  Arg.(required & pos 0 (some wconv) None & info [] ~docv:"WORKLOAD")

let nprocs_arg =
  Arg.(value & opt int 12 & info [ "p"; "procs" ] ~docv:"P" ~doc:"Processor count.")

let scale_arg =
  Arg.(value & opt (some int) None & info [ "s"; "scale" ] ~docv:"N" ~doc:"Problem scale.")

let block_arg =
  Arg.(value & opt int 128 & info [ "b"; "block" ] ~docv:"BYTES" ~doc:"Cache block size.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of text.")

let jobs_arg =
  Arg.(value
       & opt int (Fs_util.Par.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for parallel replay (default: the \
                 $(b,FALSESHARE_JOBS) environment variable, else the \
                 recommended domain count).")

let shards_arg =
  Arg.(value
       & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"Shard the cache replay across $(docv) domains (counts are \
                 bit-identical to $(b,--shards 1); versions then run \
                 sequentially so the shard pool owns the cores).")

let layout_arg =
  Arg.(value
       & opt (enum [ ("unoptimized", `U); ("compiler", `C); ("programmer", `P) ]) `U
       & info [ "layout" ] ~docv:"V"
           ~doc:"Which layout: $(b,unoptimized), $(b,compiler), or $(b,programmer).")

let scale_of w = function Some s -> s | None -> w.W.default_scale

let sched_seed_arg =
  Arg.(value & opt (some int) None
       & info [ "sched-seed" ] ~docv:"SEED"
           ~doc:"Seed for the deterministic work-stealing scheduler.  \
                 Required by the dynamic (spawn/sync) workloads; the same \
                 seed reproduces the same execution bit for bit.  Ignored \
                 by the static suite.")

(* Dynamic workloads refuse to run without an explicit seed: a silent
   default would make two people's "same" run diverge the moment one of
   them is comparing against a seeded capture. *)
let sched_of (w : W.t) = function
  | Some s -> Some (Fs_sched.Sched.seeded s)
  | None when not w.W.dynamic -> None
  | None ->
    Printf.eprintf
      "falseshare: %s is a dynamic workload; its schedule is decided at \
       run time by the work-stealing runtime, so pass --sched-seed SEED \
       (there is no silent default: the seed pins the steal schedule and \
       makes the run reproducible).\n"
      w.W.name;
    exit 2

(* For commands whose experiment drivers are defined over the static
   suite only (speedup sweeps, the paper reproductions). *)
let reject_dynamic ~cmd (w : W.t) =
  if w.W.dynamic then begin
    Printf.eprintf
      "falseshare: %s only covers the static suite; %s is a dynamic \
       workload (run `falseshare repair --stealing` for the dynamic \
       N/C/F comparison).\n"
      cmd w.W.name;
    exit 2
  end

let print_json j = Json.to_channel ~compact:false stdout j

(* --- telemetry plumbing ------------------------------------------- *)

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write this run's metrics in Prometheus text exposition \
                 format to $(docv) on exit (\"-\" for stdout).  Includes \
                 domain-pool fan-out instrumentation and per-command \
                 timings.")

let spans_out_arg =
  Arg.(value & opt (some string) None
       & info [ "spans-out" ] ~docv:"FILE"
           ~doc:"Write this run's causal span tree as nested JSON to \
                 $(docv) on exit.")

(* Every subcommand runs inside one telemetry scope: the process-global
   metrics registry fed by the domain pool's observer, an ambient span
   recorder rooted at the subcommand name, and the optional exports —
   flushed on success, on an exception, and (via [at_exit]) on an early
   [exit], so a failed run still leaves its telemetry behind. *)
let with_telemetry ~cmd ~metrics_out ~spans_out f =
  let reg = Fs_obs.Metrics.global () in
  Fs_util.Par.set_observer (Some (Fs_obs.Pool.ingest reg));
  let recorder = Fs_obs.Span.create () in
  Fs_obs.Span.set_current (Some recorder);
  let seconds =
    Fs_obs.Metrics.histogram reg "cli_command_seconds"
      ~labels:[ ("command", cmd) ]
      ~help:"Wall-clock seconds per CLI subcommand"
  in
  let t0 = Unix.gettimeofday () in
  let finished = ref false in
  let finish () =
    if not !finished then begin
      finished := true;
      Fs_obs.Metrics.Histogram.observe seconds (Unix.gettimeofday () -. t0);
      Fs_obs.Span.set_current None;
      Fs_util.Par.set_observer None;
      (match metrics_out with
       | None -> ()
       | Some "-" -> print_string (Fs_obs.Metrics.render reg)
       | Some path -> Fs_obs.Metrics.write_file reg path);
      match spans_out with
      | None -> ()
      | Some path -> Fs_obs.Span.write_file recorder path
    end
  in
  at_exit finish;
  match Fs_obs.Span.with_ recorder cmd f with
  | v -> finish (); v
  | exception e -> finish (); raise e

(* Wrap a subcommand term in the telemetry scope.  The inner term must
   evaluate to a thunk (each [run] takes a trailing [()]), so the
   subcommand body runs inside [with_telemetry] rather than during term
   evaluation. *)
let telemetrize cmd_name thunk_term =
  let wrap metrics_out spans_out thunk =
    with_telemetry ~cmd:cmd_name ~metrics_out ~spans_out thunk
  in
  Term.(const wrap $ metrics_out_arg $ spans_out_arg $ thunk_term)

let plan_of w version prog ~nprocs ~scale =
  match version with
  | `U -> []
  | `C -> E.plan_for w W.C prog ~nprocs ~scale
  | `P -> E.plan_for w W.P prog ~nprocs ~scale

(* --- list --- *)

let list_cmd =
  let run json () =
    if json then print_json (Emit.workloads Ws.every)
    else begin
      let header =
        [ "name"; "description"; "versions"; "scheduling"; "orig. LoC" ]
      in
      let rows =
        List.map
          (fun (w : W.t) ->
            [ w.name;
              w.description;
              String.concat "/"
                (List.map
                   (fun v ->
                     match v with W.N -> "N" | W.C -> "C" | W.P -> "P")
                   w.versions);
              (if w.dynamic then "dynamic" else "static");
              string_of_int w.lines_of_c ])
          Ws.every
      in
      print_string (Fs_util.Table.render ~header rows)
    end
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:
         "List the benchmark suite: the static Table 1 programs plus the \
          dynamic (work-stealing) workload family.")
    (telemetrize "list" Term.(const run $ json_arg))

(* --- report --- *)

let report_cmd =
  let run w nprocs scale block seed json () =
    let sched = sched_of w seed in
    let prog = w.W.build ~nprocs ~scale:(scale_of w scale) in
    let r = Pipeline.run ?sched prog ~nprocs ~block in
    if json then print_json (Json.Obj [ ("report", Emit.transform_report r.Pipeline.report);
                                        ("profile", Fs_obs.Profile.to_json r.profile);
                                        ("metrics", Fs_obs.Metrics.to_json r.metrics) ])
    else begin
      Format.printf "%a@." T.pp_report r.Pipeline.report;
      print_endline "pipeline phases:";
      print_string (Fs_obs.Profile.render r.profile)
    end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run the compile-time analysis and print its decisions, with a \
          wall-clock profile of every pipeline phase.")
    (telemetrize "report"
       Term.(const run $ workload_arg $ nprocs_arg $ scale_arg $ block_arg
             $ sched_seed_arg $ json_arg))

(* --- source --- *)

let source_cmd =
  let run w nprocs scale json () =
    let prog = w.W.build ~nprocs ~scale:(scale_of w scale) in
    let src = Fs_ir.Pp.program_to_string prog in
    if json then
      print_json
        (Json.Obj [ ("workload", Json.String w.W.name); ("source", Json.String src) ])
    else print_string src
  in
  Cmd.v (Cmd.info "source" ~doc:"Print a benchmark's ParC source.")
    (telemetrize "source"
       Term.(const run $ workload_arg $ nprocs_arg $ scale_arg $ json_arg))

(* --- sim --- *)

let sim_versions w prog ~nprocs ~scale =
  List.filter_map
    (fun v ->
      match v with
      | W.N -> Some ("unoptimized", [])
      | W.C -> Some ("compiler", E.plan_for w W.C prog ~nprocs ~scale)
      | W.P -> Some ("programmer", E.plan_for w W.P prog ~nprocs ~scale))
    (if List.mem W.N w.W.versions then w.W.versions else W.N :: w.W.versions)

let sim_cmd =
  let run w nprocs scale block seed jobs shards json () =
    let sched = sched_of w seed in
    let scale = scale_of w scale in
    let prog = w.W.build ~nprocs ~scale in
    let versions = sim_versions w prog ~nprocs ~scale in
    let recorded = Sim.record ?sched prog ~nprocs in
    let runs =
      (* sharded replay parallelizes inside one run, so the versions run
         sequentially on one shared pool instead of fanning out across
         domains twice *)
      if shards > 1 then
        Fs_util.Par.Pool.with_pool ~jobs:(min shards jobs) (fun pool ->
            List.map
              (fun (name, plan) ->
                (name, Sim.cache_sim ~shards ~pool ~recorded prog plan ~nprocs ~block))
              versions)
      else
        Fs_util.Par.map ~jobs
          (fun (name, plan) ->
            (name, Sim.cache_sim ~recorded prog plan ~nprocs ~block))
          versions
    in
    if json then print_json (Emit.sim ~workload:w.W.name ~nprocs ~block runs)
    else begin
      let header = [ "version"; "accesses"; "misses"; "false sharing"; "miss rate" ] in
      let rows =
        List.map
          (fun (name, r) ->
            let c = r.Sim.counts in
            [ name;
              string_of_int (C.accesses c);
              string_of_int (C.misses c);
              string_of_int c.C.false_sh;
              Fs_util.Table.pct (C.miss_rate c) ])
          runs
      in
      print_string (Fs_util.Table.render ~header rows)
    end
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Trace-driven cache simulation of a benchmark: the execution is \
          interpreted once and replayed under each version's layout.")
    (telemetrize "sim"
       Term.(const run $ workload_arg $ nprocs_arg $ scale_arg $ block_arg
             $ sched_seed_arg $ jobs_arg $ shards_arg $ json_arg))

(* --- speedup --- *)

let speedup_cmd =
  let procs_arg =
    Arg.(value & opt (list int) [ 1; 2; 4; 8; 12; 16; 24; 32 ]
         & info [ "procs-list" ] ~docv:"P,P,..." ~doc:"Processor counts to sweep.")
  in
  let run w procs jobs json () =
    reject_dynamic ~cmd:"speedup" w;
    let series = E.speedups ~procs ~names:[ w.W.name ] ~jobs () in
    if json then print_json (Emit.series series)
    else print_string (E.render_series series)
  in
  Cmd.v
    (Cmd.info "speedup" ~doc:"KSR2-model scalability curves for one benchmark.")
    (telemetrize "speedup"
       Term.(const run $ workload_arg $ procs_arg $ jobs_arg $ json_arg))

(* --- hotspots --- *)

let hotspots_cmd =
  let run w nprocs scale block version seed json () =
    let sched = sched_of w seed in
    let scale = scale_of w scale in
    let prog = w.W.build ~nprocs ~scale in
    let plan = plan_of w version prog ~nprocs ~scale in
    let rows =
      Falseshare.Attribution.attribute ?sched prog plan ~nprocs ~block
    in
    if json then print_json (Emit.attribution rows)
    else print_string (Falseshare.Attribution.render rows)
  in
  Cmd.v
    (Cmd.info "hotspots"
       ~doc:
         "Attribute simulated misses back to the shared data structures — \
          the dynamic counterpart of the compiler's static report.")
    (telemetrize "hotspots"
       Term.(const run $ workload_arg $ nprocs_arg $ scale_arg $ block_arg
             $ layout_arg $ sched_seed_arg $ json_arg))

(* --- blame --- *)

let blame_cmd =
  let top_arg =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"K" ~doc:"How many hot blocks to list.")
  in
  let epochs_arg =
    Arg.(value & flag
         & info [ "epochs" ]
             ~doc:"Also segment the run at barrier releases and append the \
                   per-epoch sharing profile.")
  in
  let run w nprocs scale block version top epochs seed json () =
    let sched = sched_of w seed in
    let scale = scale_of w scale in
    let prog = w.W.build ~nprocs ~scale in
    let plan = plan_of w version prog ~nprocs ~scale in
    let recorded = Sim.record ?sched prog ~nprocs in
    let b = Falseshare.Blame.analyze ~top ~recorded prog plan ~nprocs ~block in
    let ph =
      if epochs then
        Some (Falseshare.Phases.analyze ~recorded prog plan ~nprocs ~block)
      else None
    in
    if json then
      print_json
        (match ph with
         | None -> Emit.blame b
         | Some p ->
           Json.Obj [ ("blame", Emit.blame b); ("phases", Emit.phases p) ])
    else begin
      print_string (Falseshare.Blame.render b);
      match ph with
      | None -> ()
      | Some p ->
        print_newline ();
        print_string (Falseshare.Phases.render p)
    end
  in
  Cmd.v
    (Cmd.info "blame"
       ~doc:
         "The false-sharing blame matrix: per shared variable, which \
          processor's writes invalidate which processor's cached copies \
          (split by upgrade vs. write miss), plus the hottest blocks with \
          their owning variable and cell ranges.")
    (telemetrize "blame"
       Term.(const run $ workload_arg $ nprocs_arg $ scale_arg $ block_arg
             $ layout_arg $ top_arg $ epochs_arg $ sched_seed_arg $ json_arg))

(* --- phases --- *)

let phases_cmd =
  let run w nprocs scale block version seed json () =
    let sched = sched_of w seed in
    let scale = scale_of w scale in
    let prog = w.W.build ~nprocs ~scale in
    let plan = plan_of w version prog ~nprocs ~scale in
    let p = Falseshare.Phases.analyze ?sched prog plan ~nprocs ~block in
    if json then print_json (Emit.phases p)
    else print_string (Falseshare.Phases.render p)
  in
  Cmd.v
    (Cmd.info "phases"
       ~doc:
         "Phase-resolved sharing profile: split the replay into \
          barrier-delimited epochs, report each epoch's miss-class \
          counters and observed write-sharing, and cross-check the \
          dynamic epochs against the static non-concurrency phases.")
    (telemetrize "phases"
       Term.(const run $ workload_arg $ nprocs_arg $ scale_arg $ block_arg
             $ layout_arg $ sched_seed_arg $ json_arg))

(* --- hotlines --- *)

let hotlines_cmd =
  let top_arg =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"K" ~doc:"How many hot lines to list.")
  in
  (* unlike the other inspection commands, the interesting default here is
     the compiler's layout: the lines that remain hot are exactly the ones
     the static analysis could not fix *)
  let layout_arg =
    Arg.(value
         & opt (enum [ ("unoptimized", `U); ("compiler", `C); ("programmer", `P) ]) `C
         & info [ "layout" ] ~docv:"V"
             ~doc:"Which layout: $(b,unoptimized), $(b,compiler) (default), \
                   or $(b,programmer).")
  in
  let run w nprocs scale block version top seed json () =
    let sched = sched_of w seed in
    let scale = scale_of w scale in
    let prog = w.W.build ~nprocs ~scale in
    let plan = plan_of w version prog ~nprocs ~scale in
    let h = Falseshare.Hotlines.analyze ~top ?sched prog plan ~nprocs ~block in
    if json then print_json (Emit.hotlines h)
    else print_string (Falseshare.Hotlines.render h)
  in
  Cmd.v
    (Cmd.info "hotlines"
       ~doc:
         "Hot cache lines with their lifetimes: ownership migrations, \
          ping-pong scores, invalidation chains, and word-level \
          footprints, attributed to the owning variable with the \
          transformation that would fix each line.")
    (telemetrize "hotlines"
       Term.(const run $ workload_arg $ nprocs_arg $ scale_arg $ block_arg
             $ layout_arg $ top_arg $ sched_seed_arg $ json_arg))

(* --- repair --- *)

let repair_cmd =
  let workload_opt_arg =
    Arg.(value & pos 0 (some wconv) None & info [] ~docv:"WORKLOAD")
  in
  (* the natural starting point is the compiler's layout: repair is the
     feedback pass that cleans up what the static analysis left behind *)
  let layout_arg =
    Arg.(value
         & opt (enum [ ("unoptimized", `U); ("compiler", `C); ("programmer", `P) ]) `C
         & info [ "layout" ] ~docv:"V"
             ~doc:"Starting layout to refine: $(b,unoptimized), \
                   $(b,compiler) (default), or $(b,programmer).")
  in
  let iters_arg =
    Arg.(value
         & opt int Fs_feedback.Repair.default_options.max_iters
         & info [ "max-iters" ] ~docv:"N"
             ~doc:"Cap on accepted repair iterations.")
  in
  let stealing_arg =
    Arg.(value & flag
         & info [ "stealing" ]
             ~doc:"Run the dynamic-suite N/C/F comparison instead: every \
                   spawn/sync workload on the seeded work-stealing \
                   scheduler, with the scheduler-deque false sharing \
                   isolated in its own columns.  Use $(b,--sched-seed) to \
                   pick the steal schedule (default 42).")
  in
  let run w nprocs scale block version max_iters seed stealing jobs json () =
    match w with
    | Some w ->
      let sched = sched_of w seed in
      let scale = scale_of w scale in
      let prog = w.W.build ~nprocs ~scale in
      let plan = plan_of w version prog ~nprocs ~scale in
      let options = { Fs_feedback.Repair.default_options with max_iters } in
      let r =
        Fs_feedback.Repair.refine ~options ?sched prog plan ~nprocs ~block
      in
      if json then print_json (Fs_feedback.Repair.to_json r)
      else print_string (Fs_feedback.Repair.render r)
    | None when stealing ->
      (* the dynamic family under the work-stealing scheduler *)
      let seed = Option.value seed ~default:42 in
      let rows = Fs_feedback.Repair_experiments.stealing_table ~seed ~jobs () in
      if json then
        print_json (Fs_feedback.Repair_experiments.stealing_to_json rows)
      else print_string (Fs_feedback.Repair_experiments.render_stealing rows)
    | None ->
      (* no workload: the suite-wide N/C/P/F comparison *)
      let rows = Fs_feedback.Repair_experiments.table ~jobs () in
      if json then print_json (Fs_feedback.Repair_experiments.to_json rows)
      else print_string (Fs_feedback.Repair_experiments.render rows)
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Profile-guided layout repair: replay the recorded execution \
          under the starting layout, extract repair candidates from the \
          hot-line forensics, apply the best one, and iterate to a \
          fixpoint.  With a workload, narrate the refinement; without \
          one, print the suite-wide N/C/P/F comparison (static suite by \
          default, the dynamic work-stealing family with $(b,--stealing)).")
    (telemetrize "repair"
       Term.(const run $ workload_opt_arg $ nprocs_arg $ scale_arg $ block_arg
             $ layout_arg $ iters_arg $ sched_seed_arg $ stealing_arg
             $ jobs_arg $ json_arg))

(* --- timeline --- *)

let timeline_cmd =
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Output file; \"-\" for stdout.  Default: <workload>.trace.json.")
  in
  let run w nprocs scale block version seed out () =
    let sched = sched_of w seed in
    let scale = scale_of w scale in
    let prog = w.W.build ~nprocs ~scale in
    let plan = plan_of w version prog ~nprocs ~scale in
    let layout = Fs_layout.Layout.realize prog plan ~block in
    let tl = Fs_obs.Timeline.create ~nprocs in
    let recorded = Sim.record ?sched prog ~nprocs in
    (* a cache rides along so each barrier release can drop one sample of
       the epoch's miss-class deltas onto a Chrome-trace counter track *)
    let cache = C.create (C.default_config ~nprocs ~block) in
    let prev = ref (C.copy_counts (C.counts cache)) in
    let push_counters () =
      let now = C.copy_counts (C.counts cache) in
      let d = C.sub_counts now !prev in
      prev := now;
      Fs_obs.Timeline.counter tl ~name:"misses per epoch"
        ~ts:(Fs_obs.Timeline.time tl)
        ~values:
          [ ("cold", float_of_int d.C.cold);
            ("replacement", float_of_int d.C.repl);
            ("true sharing", float_of_int d.C.true_sh);
            ("false sharing", float_of_int d.C.false_sh) ]
    in
    let module L = Fs_trace.Listener in
    let listener =
      L.combine
        (Fs_obs.Timeline.listener tl)
        (L.combine
           (L.of_sink (C.sink cache))
           { L.null with barrier_release = push_counters })
    in
    Fs_replay.Replay.replay recorded.Sim.trace ~layout ~listener;
    push_counters ();
    match out with
    | Some "-" -> print_json (Fs_obs.Timeline.to_json tl)
    | out ->
      let path = Option.value out ~default:(w.W.name ^ ".trace.json") in
      Fs_obs.Timeline.write_file tl path;
      Printf.printf
        "wrote %d trace events to %s (open in https://ui.perfetto.dev or \
         chrome://tracing)\n"
        (Fs_obs.Timeline.events tl) path
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Record a benchmark run's per-processor timeline — work segments, \
          barrier waits, lock convoys — as Chrome trace-event JSON for \
          Perfetto.")
    (telemetrize "timeline"
       Term.(const run $ workload_arg $ nprocs_arg $ scale_arg $ block_arg
             $ layout_arg $ sched_seed_arg $ out_arg))

(* --- check (.parc sources) --- *)

let check_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.parc")
  in
  let procs_for_run =
    Arg.(value & opt (some int) None
         & info [ "run" ] ~docv:"P" ~doc:"Also execute with P processes.")
  in
  let run file procs json () =
    let ic = open_in file in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    let profile = Fs_obs.Profile.create () in
    match
      Fs_obs.Profile.time profile "parse"
        ~events:(fun _ -> String.length src)
        (fun () -> Fs_parc.Parser.parse_and_validate src)
    with
    | Error errs ->
      if json then
        print_json
          (Json.Obj
             [ ("ok", Json.Bool false);
               ("errors", Json.List (List.map (fun e -> Json.String e) errs)) ])
      else List.iter prerr_endline errs;
      exit 1
    | Ok prog -> (
      match procs with
      | None ->
        if json then
          print_json
            (Json.Obj
               [ ("ok", Json.Bool true);
                 ("name", Json.String prog.Fs_ir.Ast.pname);
                 ("globals", Json.Int (List.length prog.Fs_ir.Ast.globals));
                 ("functions", Json.Int (List.length prog.Fs_ir.Ast.funcs)) ])
        else
          Printf.printf "%s: ok (%d globals, %d functions)\n" prog.Fs_ir.Ast.pname
            (List.length prog.Fs_ir.Ast.globals)
            (List.length prog.Fs_ir.Ast.funcs)
      | Some nprocs ->
        let r = Pipeline.run ~profile prog ~nprocs ~block:128 in
        if json then
          print_json
            (Json.Obj
               [ ("ok", Json.Bool true);
                 ("name", Json.String prog.Fs_ir.Ast.pname);
                 ("report", Emit.transform_report r.Pipeline.report);
                 ("profile", Fs_obs.Profile.to_json r.profile) ])
        else begin
          Printf.printf "%s: ok (%d globals, %d functions)\n" prog.Fs_ir.Ast.pname
            (List.length prog.Fs_ir.Ast.globals)
            (List.length prog.Fs_ir.Ast.funcs);
          Format.printf "%a@." T.pp_report r.Pipeline.report;
          print_endline "pipeline phases:";
          print_string (Fs_obs.Profile.render r.profile)
        end)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and validate a ParC source file.")
    (telemetrize "check" Term.(const run $ file_arg $ procs_for_run $ json_arg))

(* --- profile --- *)

let profile_cmd =
  let interval_arg =
    Arg.(value & opt int 4096
         & info [ "flight-interval" ] ~docv:"N"
             ~doc:"Packed events between flight-recorder samples.")
  in
  let blocks = [ 8; 16; 32; 64; 128; 256 ] in
  let run w nprocs scale seed jobs interval json () =
    let sched = sched_of w seed in
    let scale = scale_of w scale in
    (* the ambient recorder was installed by the telemetry scope; grab it
       so the report can render the tree this very command grew *)
    let recorder =
      match Fs_obs.Span.current () with Some r -> r | None -> assert false
    in
    let prog =
      Fs_obs.Span.timed "build" (fun () -> w.W.build ~nprocs ~scale)
    in
    let plan =
      Fs_obs.Span.timed "plan" (fun () -> Sim.compiler_plan prog ~nprocs)
    in
    let recorded =
      Fs_obs.Span.timed "record" (fun () -> Sim.record ?sched prog ~nprocs)
    in
    (* the block sweep exercises the domain pool; its stats become the
       per-worker summary *)
    let sweep, pool =
      Fs_obs.Span.timed "block-sweep"
        ~attrs:[ ("jobs", string_of_int jobs) ]
        (fun () ->
          Fs_util.Par.map_with_stats ~jobs
            (fun block ->
              (block, (Sim.cache_sim ~recorded prog plan ~nprocs ~block).Sim.counts))
            blocks)
    in
    (* one flight-instrumented fused replay at the paper's block size *)
    let flight = Fs_replay.Flight.create ~interval () in
    let frun =
      Fs_obs.Span.timed "flight-replay"
        ~attrs:[ ("interval", string_of_int interval) ]
        (fun () ->
          Sim.cache_sim ~flight ~recorded prog plan ~nprocs ~block:128)
    in
    ignore frun;
    if json then
      print_json
        (Json.Obj
           [ ("workload", Json.String w.W.name);
             ("nprocs", Json.Int nprocs);
             ("scale", Json.Int scale);
             ("spans", Fs_obs.Span.to_json recorder);
             ("pool", Fs_obs.Pool.to_json pool);
             ("flight", Fs_replay.Flight.to_json flight);
             ("sweep",
              Json.List
                (List.map
                   (fun (block, (c : C.counts)) ->
                     Json.Obj
                       [ ("block", Json.Int block);
                         ("misses", Json.Int (C.misses c));
                         ("false_sharing", Json.Int c.C.false_sh) ])
                   sweep)) ])
    else begin
      Printf.printf "profile: %s (P=%d, scale=%d, --jobs %d)\n\n" w.W.name
        nprocs scale jobs;
      print_endline "spans:";
      print_string (Fs_obs.Span.render recorder);
      print_newline ();
      print_endline "domain pool (block sweep):";
      print_string (Fs_util.Par.render_stats pool);
      print_newline ();
      print_string (Fs_replay.Flight.render flight)
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile one workload end to end: causal span tree of every \
          pipeline stage, per-worker domain-pool summary of a cache-block \
          sweep, and a flight-recorder digest of the fused replay hot \
          loop.")
    (telemetrize "profile"
       Term.(const run $ workload_arg $ nprocs_arg $ scale_arg $ sched_seed_arg
             $ jobs_arg $ interval_arg $ json_arg))

(* --- serve --- *)

let serve_cmd =
  let port_arg =
    Arg.(value & opt int 8414
         & info [ "port" ] ~docv:"PORT"
             ~doc:"TCP port to listen on (127.0.0.1 only); 0 picks an \
                   ephemeral port.")
  in
  let workers_arg =
    Arg.(value & opt int Fs_serve.Server.default_config.workers
         & info [ "workers" ] ~docv:"N" ~doc:"Worker threads draining the request queue.")
  in
  let queue_arg =
    Arg.(value & opt int Fs_serve.Server.default_config.queue_capacity
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admitted-request bound; beyond it the daemon answers \
                   503 with Retry-After.")
  in
  let cache_dir_arg =
    Arg.(value & opt string Fs_serve.Server.default_config.cache_dir
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Root of the content-addressed result store.")
  in
  let cache_budget_arg =
    Arg.(value & opt int (Fs_serve.Server.default_config.cache_budget_bytes / (1024 * 1024))
         & info [ "cache-budget-mb" ] ~docv:"MB"
             ~doc:"Byte budget of the result store; least recently used \
                   entries are evicted beyond it.")
  in
  let debug_arg =
    Arg.(value & flag
         & info [ "debug-endpoints" ]
             ~doc:"Enable the debug endpoints (GET /sleepz) used by tests \
                   and benchmarks.")
  in
  (* not telemetrize-wrapped: the daemon owns its own registry and span
     recorders per request; the CLI scope's ambient state would only
     race the worker threads *)
  let run port workers queue jobs cache_dir budget_mb debug =
    let cfg =
      { Fs_serve.Server.default_config with
        port; workers; queue_capacity = queue; jobs; cache_dir;
        cache_budget_bytes = budget_mb * 1024 * 1024;
        debug_endpoints = debug }
    in
    let t = Fs_serve.Server.start cfg in
    Printf.printf
      "falseshare serve: listening on http://127.0.0.1:%d (workers %d, \
       queue %d, jobs %d, cache %s)\n\
       endpoints: POST /analyze /blame /hotlines /phases /repair /profile; \
       GET /healthz /metrics /statusz; POST /quitquitquit\n%!"
      (Fs_serve.Server.port t) workers queue jobs cache_dir;
    (* the handler runs on this very thread, which is about to block in
       [wait]: it may only trigger the shutdown, never join *)
    let stop_on_signal _ = Fs_serve.Server.shutdown t in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on_signal)
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on_signal)
     with Invalid_argument _ -> ());
    Fs_serve.Server.wait t;
    print_endline "falseshare serve: stopped"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the analysis daemon: a multi-tenant HTTP/JSON server that \
          answers the toolchain's queries over recorded executions, with \
          a content-addressed result cache, request coalescing, bounded-\
          queue backpressure, and a live Prometheus surface at /metrics.")
    Term.(const run $ port_arg $ workers_arg $ queue_arg $ jobs_arg
          $ cache_dir_arg $ cache_budget_arg $ debug_arg)

(* --- trace: on-disk recordings ------------------------------------ *)

module Ct = Fs_trace.Cell_trace

let trace_format_arg =
  Arg.(value
       & opt (enum [ ("1", Ct.V1); ("2", Ct.V2) ]) Ct.default_format
       & info [ "trace-format" ] ~docv:"V"
           ~doc:"On-disk trace format: $(b,1) (flat 8-byte words) or \
                 $(b,2) (delta+varint blocks with a CRC per block and a \
                 trailing epoch index; the default).")

let block_events_arg =
  Arg.(value & opt int Ct.default_block_events
       & info [ "block-events" ] ~docv:"N"
           ~doc:"Events per v2 block (default 65536).")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")

let trace_file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let mb = 1024. *. 1024.

let trace_stat_json path =
  let s = Ct.of_file_stream path in
  let events = Ct.Stream.length s in
  let bytes = Ct.Stream.byte_size s in
  let epochs =
    match Ct.Stream.epochs s with Some e -> Array.length e | None -> 0
  in
  let j =
    Json.Obj
      [ ("file", Json.String path);
        ("format", Json.Int (Ct.format_version (Ct.Stream.format s)));
        ("events", Json.Int events);
        ("nprocs", Json.Int (Ct.Stream.nprocs s));
        ("vars", Json.Int (Array.length (Ct.Stream.vars s)));
        ("bytes", Json.Int bytes);
        ("bytes_per_event",
         Json.Float (float_of_int bytes /. float_of_int (max 1 events)));
        ("blocks", Json.Int (Ct.Stream.nblocks s));
        ("block_events", Json.Int (Ct.Stream.chunk s));
        ("epochs", Json.Int epochs) ]
  in
  Ct.Stream.close s;
  j

let print_trace_stat ~heading path =
  match trace_stat_json path with
  | Json.Obj fields ->
    Printf.printf "%s %s\n" heading path;
    List.iter
      (fun (k, v) ->
        match v with
        | Json.Int n when k <> "file" -> Printf.printf "  %-16s %d\n" k n
        | Json.Float f -> Printf.printf "  %-16s %.3f\n" k f
        | _ -> ())
      fields
  | _ -> assert false

let trace_record_cmd =
  let run w nprocs scale seed out fmt block_events json () =
    let sched = sched_of w seed in
    let scale = scale_of w scale in
    let prog = w.W.build ~nprocs ~scale in
    let path = Option.value out ~default:(w.W.name ^ ".fstrace") in
    let t0 = Unix.gettimeofday () in
    (* stream straight to disk: the recording never materializes in
       memory, which is what makes --scale large enough for 10^8-event
       captures practical *)
    let wr =
      Ct.Writer.create ~format:fmt ~block_events
        ~vars:(Fs_interp.Interp.vars prog) ~nprocs path
    in
    (* registered workloads terminate by construction, and --scale can
       legitimately push a capture past the default nontermination
       guard, so run unguarded *)
    (match
       Fs_interp.Interp.run_cells ~max_steps:max_int ?sched prog ~nprocs
         ~cells:(Ct.Writer.recorder wr)
     with
    | _ -> Ct.Writer.close wr
    | exception e ->
      Ct.Writer.abort wr;
      raise e);
    let dt = Unix.gettimeofday () -. t0 in
    let events = Ct.Writer.length wr in
    let bytes = (Unix.stat path).Unix.st_size in
    if json then
      print_json
        (Json.Obj
           [ ("workload", Json.String w.W.name);
             ("nprocs", Json.Int nprocs);
             ("scale", Json.Int scale);
             ("file", Json.String path);
             ("format", Json.Int (Ct.format_version fmt));
             ("events", Json.Int events);
             ("bytes", Json.Int bytes);
             ("bytes_per_event",
              Json.Float (float_of_int bytes /. float_of_int (max 1 events)));
             ("seconds", Json.Float dt) ])
    else
      Printf.printf
        "recorded %s: %d events to %s (v%d, %d bytes, %.3f B/event, %.2fs, \
         %.1f Mevents/s)\n"
        w.W.name events path (Ct.format_version fmt) bytes
        (float_of_int bytes /. float_of_int (max 1 events))
        dt
        (float_of_int events /. 1e6 /. Float.max 1e-9 dt)
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Interpret a workload once and stream the cell-event recording \
          to disk (constant memory however long the run; use $(b,--scale) \
          to size it).")
    (telemetrize "trace-record"
       Term.(const run $ workload_arg $ nprocs_arg $ scale_arg $ sched_seed_arg
             $ trace_out_arg $ trace_format_arg $ block_events_arg $ json_arg))

let trace_stat_cmd =
  let run path json () =
    if json then print_json (trace_stat_json path)
    else print_trace_stat ~heading:"trace" path
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:
         "Describe a trace file: format version, event/epoch/block counts, \
          bytes per event.")
    (telemetrize "trace-stat" Term.(const run $ trace_file_arg $ json_arg))

let trace_convert_cmd =
  let run path out fmt block_events json () =
    let s = Ct.of_file_stream path in
    let out = Option.value out ~default:path in
    let in_bytes = Ct.Stream.byte_size s in
    let wr =
      Ct.Writer.create ~format:fmt ~block_events ~vars:(Ct.Stream.vars s)
        ~nprocs:(Ct.Stream.nprocs s) out
    in
    (* block-at-a-time re-encode: memory stays bounded, and converting a
       file onto itself is safe — the writer lands in a temp file renamed
       over the target only at close, while the source stays mapped *)
    (match
       Ct.Stream.iter_chunks
         (fun buf n ->
           for i = 0 to n - 1 do
             Ct.Writer.push wr buf.(i)
           done)
         s
     with
    | () -> Ct.Writer.close wr
    | exception e ->
      Ct.Writer.abort wr;
      raise e);
    Ct.Stream.close s;
    let events = Ct.Writer.length wr in
    let out_bytes = (Unix.stat out).Unix.st_size in
    if json then
      print_json
        (Json.Obj
           [ ("input", Json.String path);
             ("output", Json.String out);
             ("format", Json.Int (Ct.format_version fmt));
             ("events", Json.Int events);
             ("input_bytes", Json.Int in_bytes);
             ("output_bytes", Json.Int out_bytes);
             ("ratio",
              Json.Float (float_of_int in_bytes /. float_of_int (max 1 out_bytes))) ])
    else
      Printf.printf "converted %s -> %s (v%d): %d events, %d -> %d bytes (%.2fx)\n"
        path out (Ct.format_version fmt) events in_bytes out_bytes
        (float_of_int in_bytes /. float_of_int (max 1 out_bytes))
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Re-encode a trace between format versions (either direction; \
          the default output is v2).  Omitting $(b,--output) converts in \
          place, atomically.")
    (telemetrize "trace-convert"
       Term.(const run $ trace_file_arg $ trace_out_arg $ trace_format_arg
             $ block_events_arg $ json_arg))

let trace_replay_cmd =
  let workload_pos1 =
    Arg.(required & pos 1 (some wconv) None & info [] ~docv:"WORKLOAD")
  in
  let run path w scale block version shards jobs json () =
    let s = Ct.of_file_stream path in
    let nprocs = Ct.Stream.nprocs s in
    let scale = scale_of w scale in
    let prog = w.W.build ~nprocs ~scale in
    let plan = plan_of w version prog ~nprocs ~scale in
    let layout = Fs_layout.Layout.realize prog plan ~block in
    let config = C.default_config ~nprocs ~block in
    let t0 = Unix.gettimeofday () in
    let sharded =
      if shards > 1 then
        Fs_util.Par.Pool.with_pool ~jobs:(min (max shards 2) jobs) (fun pool ->
            Fs_replay.Replay.simulate_sharded_stream ~pool s ~shards ~layout
              ~config)
      else
        Fs_replay.Replay.simulate_sharded_stream s ~shards:1 ~layout ~config
    in
    let dt = Unix.gettimeofday () -. t0 in
    let events = Ct.Stream.length s in
    let bytes = Ct.Stream.byte_size s in
    let fmt = Ct.Stream.format s in
    Ct.Stream.close s;
    let c = sharded.Fs_replay.Replay.counts in
    if json then
      print_json
        (Json.Obj
           [ ("file", Json.String path);
             ("workload", Json.String w.W.name);
             ("format", Json.Int (Ct.format_version fmt));
             ("nprocs", Json.Int nprocs);
             ("block", Json.Int block);
             ("shards", Json.Int shards);
             ("events", Json.Int events);
             ("bytes", Json.Int bytes);
             ("seconds", Json.Float dt);
             ("mevents_per_s",
              Json.Float (float_of_int events /. 1e6 /. Float.max 1e-9 dt));
             ("mb_per_s",
              Json.Float (float_of_int bytes /. mb /. Float.max 1e-9 dt));
             ("epochs", Json.Int (Array.length sharded.Fs_replay.Replay.epochs));
             ("counts",
              Json.Obj
                [ ("accesses", Json.Int (C.accesses c));
                  ("misses", Json.Int (C.misses c));
                  ("false_sharing", Json.Int c.C.false_sh);
                  ("true_sharing", Json.Int c.C.true_sh);
                  ("cold", Json.Int c.C.cold);
                  ("replacement", Json.Int c.C.repl) ]) ])
    else begin
      Printf.printf
        "replayed %s through %s/%s: %d events in %.2fs (%.1f Mevents/s, \
         %.1f MB/s read, shards %d)\n"
        path w.W.name
        (match version with `U -> "unoptimized" | `C -> "compiler" | `P -> "programmer")
        events dt
        (float_of_int events /. 1e6 /. Float.max 1e-9 dt)
        (float_of_int bytes /. mb /. Float.max 1e-9 dt)
        shards;
      let header = [ "accesses"; "misses"; "false sharing"; "miss rate" ] in
      print_string
        (Fs_util.Table.render ~header
           [ [ string_of_int (C.accesses c);
               string_of_int (C.misses c);
               string_of_int c.C.false_sh;
               Fs_util.Table.pct (C.miss_rate c) ] ])
    end
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a recorded trace file through a workload's layout with \
          the streamed sharded engine (decode pipelined onto the pool), \
          reporting counts, Mevents/s, and effective read bandwidth.  The \
          processor count comes from the trace; pass the same \
          $(b,--scale) the recording used.")
    (telemetrize "trace-replay"
       Term.(const run $ trace_file_arg $ workload_pos1 $ scale_arg
             $ block_arg $ layout_arg $ shards_arg $ jobs_arg $ json_arg))

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Record, inspect, convert, and replay on-disk trace files — the \
          durable form of one interpreted execution.")
    [ trace_record_cmd; trace_stat_cmd; trace_convert_cmd; trace_replay_cmd ]

(* --- paper reproductions --- *)

let paper_cmd name doc ~text ~json =
  let run jobs use_json () =
    if use_json then print_json (json ~jobs) else print_string (text ~jobs)
  in
  Cmd.v (Cmd.info name ~doc)
    (telemetrize name Term.(const run $ jobs_arg $ json_arg))

let fig3_cmd =
  paper_cmd "fig3" "Reproduce Figure 3 (miss rates before/after)."
    ~text:(fun ~jobs -> E.render_figure3 (E.figure3 ~jobs ()))
    ~json:(fun ~jobs -> Emit.fig3 (E.figure3 ~jobs ()))

let table2_cmd =
  paper_cmd "table2" "Reproduce Table 2 (reduction by transformation)."
    ~text:(fun ~jobs -> E.render_table2 (E.table2 ~jobs ()))
    ~json:(fun ~jobs -> Emit.table2 (E.table2 ~jobs ()))

let fig4_cmd =
  paper_cmd "fig4" "Reproduce Figure 4 (scalability curves)."
    ~text:(fun ~jobs -> E.render_series (E.figure4 ~jobs ()))
    ~json:(fun ~jobs -> Emit.series (E.figure4 ~jobs ()))

let table3_cmd =
  paper_cmd "table3" "Reproduce Table 3 (maximum speedups)."
    ~text:(fun ~jobs -> E.render_table3 (E.table3 ~jobs ()))
    ~json:(fun ~jobs -> Emit.table3 (E.table3 ~jobs ()))

let stats_cmd =
  paper_cmd "stats" "Reproduce the headline statistics."
    ~text:(fun ~jobs -> E.render_stats (E.text_stats ~jobs ()))
    ~json:(fun ~jobs -> Emit.stats (E.text_stats ~jobs ()))

let exectime_cmd =
  paper_cmd "exectime" "Reproduce the execution-time improvements."
    ~text:(fun ~jobs -> E.render_exec (E.exec_time_improvements ~jobs ()))
    ~json:(fun ~jobs -> Emit.exec (E.exec_time_improvements ~jobs ()))

let () =
  let doc =
    "Compile-time shared-data transformations that reduce false sharing \
     (reproduction of Jeremiassen & Eggers, PPoPP 1995)."
  in
  let info = Cmd.info "falseshare" ~version:"1.0.0" ~doc in
  let cmds =
    [ list_cmd; report_cmd; source_cmd; sim_cmd; speedup_cmd; hotspots_cmd;
      blame_cmd; phases_cmd; hotlines_cmd; repair_cmd; timeline_cmd;
      profile_cmd; check_cmd; serve_cmd; trace_cmd; fig3_cmd; table2_cmd; fig4_cmd;
      table3_cmd; stats_cmd; exectime_cmd ]
  in
  (* same near-miss courtesy the workload argument gets: a mistyped
     subcommand gets a suggestion, not just cmdliner's usage dump *)
  let names = List.map Cmd.name cmds in
  (match Array.to_list Sys.argv with
   | _ :: arg :: _
     when String.length arg > 0 && arg.[0] <> '-' && not (List.mem arg names)
     -> (
     match Fs_util.Strdist.suggest arg names with
     | [] -> ()
     | near ->
       Printf.eprintf "falseshare: unknown command %S, did you mean %s?\n" arg
         (String.concat " or " (List.map (Printf.sprintf "%S") near));
       exit 124)
   | _ -> ());
  exit (Cmd.eval (Cmd.group info cmds))
