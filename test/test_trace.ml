(* Tests for trace events, sinks, and listeners. *)

module Sink = Fs_trace.Sink
module Event = Fs_trace.Event
module Listener = Fs_trace.Listener

let test_counter () =
  let c = Sink.Counter.create ~nprocs:3 in
  let s = Sink.Counter.sink c in
  s ~proc:0 ~write:true ~addr:0;
  s ~proc:1 ~write:false ~addr:4;
  s ~proc:1 ~write:false ~addr:8;
  Alcotest.(check int) "writes" 1 c.Sink.Counter.writes;
  Alcotest.(check int) "reads" 2 c.Sink.Counter.reads;
  Alcotest.(check int) "total" 3 (Sink.Counter.total c);
  Alcotest.(check int) "per proc" 2 c.Sink.Counter.per_proc.(1)

let test_capture () =
  let c = Sink.Capture.create () in
  let s = Sink.Capture.sink c in
  for k = 0 to 4999 do
    s ~proc:(k mod 7) ~write:(k land 1 = 1) ~addr:(k * 4)
  done;
  Alcotest.(check int) "length" 5000 (Sink.Capture.length c);
  let e = Sink.Capture.get c 4999 in
  Alcotest.(check int) "proc" (4999 mod 7) e.Event.proc;
  Alcotest.(check bool) "write" true e.Event.write;
  Alcotest.(check int) "addr" (4999 * 4) e.Event.addr;
  Alcotest.(check int) "to_list length" 5000 (List.length (Sink.Capture.to_list c));
  Alcotest.(check bool) "get out of range" true
    (match Sink.Capture.get c 5000 with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_tee () =
  let a = Sink.Counter.create ~nprocs:1 and b = Sink.Counter.create ~nprocs:1 in
  let s = Sink.tee (Sink.Counter.sink a) (Sink.Counter.sink b) in
  s ~proc:0 ~write:true ~addr:0;
  Alcotest.(check int) "both fed" 2 (Sink.Counter.total a + Sink.Counter.total b)

let test_listener_combine () =
  let hits = ref 0 in
  let l =
    { Listener.null with access = (fun ~proc:_ ~write:_ ~addr:_ -> incr hits) }
  in
  let both = Listener.combine l l in
  both.Listener.access ~proc:0 ~write:false ~addr:0;
  Alcotest.(check int) "delivered twice" 2 !hits;
  both.Listener.barrier_arrive ~proc:0;
  both.Listener.barrier_release ();
  both.Listener.work ~proc:0 ~amount:3;
  both.Listener.lock_wait ~proc:0 ~addr:0;
  both.Listener.lock_grant ~proc:0 ~addr:0 ~from:(-1)

let test_of_sink () =
  let c = Sink.Counter.create ~nprocs:1 in
  let l = Listener.of_sink (Sink.Counter.sink c) in
  l.Listener.access ~proc:0 ~write:true ~addr:4;
  l.Listener.barrier_arrive ~proc:0;
  Alcotest.(check int) "access forwarded" 1 (Sink.Counter.total c)

let test_combine_order () =
  (* combine must deliver to its first argument before its second, for
     every event kind — the cache sink must see an access before the
     metrics listener counts it *)
  let order = ref [] in
  let tagged tag =
    { Listener.access = (fun ~proc:_ ~write:_ ~addr:_ -> order := tag :: !order);
      work = (fun ~proc:_ ~amount:_ -> order := tag :: !order);
      barrier_arrive = (fun ~proc:_ -> order := tag :: !order);
      barrier_release = (fun () -> order := tag :: !order);
      lock_wait = (fun ~proc:_ ~addr:_ -> order := tag :: !order);
      lock_grant = (fun ~proc:_ ~addr:_ ~from:_ -> order := tag :: !order);
    }
  in
  let both = Listener.combine (tagged "a") (tagged "b") in
  both.Listener.access ~proc:0 ~write:false ~addr:0;
  both.Listener.work ~proc:0 ~amount:1;
  both.Listener.barrier_arrive ~proc:0;
  both.Listener.barrier_release ();
  both.Listener.lock_wait ~proc:0 ~addr:0;
  both.Listener.lock_grant ~proc:0 ~addr:0 ~from:(-1);
  Alcotest.(check (list string))
    "first listener first, every kind"
    [ "a"; "b"; "a"; "b"; "a"; "b"; "a"; "b"; "a"; "b"; "a"; "b" ]
    (List.rev !order)

let test_capture_pp_roundtrip () =
  (* every captured event prints with Event.pp in a form that parses back
     to the same (proc, write, addr) triple *)
  let c = Sink.Capture.create () in
  let s = Sink.Capture.sink c in
  List.iter
    (fun (proc, write, addr) -> s ~proc ~write ~addr)
    [ (0, false, 0); (3, true, 256); (11, false, 0xdeadbeef); (7, true, 4) ];
  List.iter
    (fun (e : Event.t) ->
      let str = Format.asprintf "%a" Event.pp e in
      let proc, rw, addr = Scanf.sscanf str "P%d %s 0x%x" (fun p s a -> (p, s, a)) in
      Alcotest.(check int) "proc round-trips" e.Event.proc proc;
      Alcotest.(check bool) "write round-trips" e.Event.write (rw = "W");
      Alcotest.(check int) "addr round-trips" e.Event.addr addr)
    (Sink.Capture.to_list c)

let test_event_pp () =
  let s = Format.asprintf "%a" Event.pp { Event.proc = 3; write = true; addr = 256 } in
  Tutil.check_contains "event pp" s "P3";
  Tutil.check_contains "event pp" s "W"

let suite =
  [ Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "capture growth" `Quick test_capture;
    Alcotest.test_case "tee" `Quick test_tee;
    Alcotest.test_case "listener combine" `Quick test_listener_combine;
    Alcotest.test_case "combine delivery order" `Quick test_combine_order;
    Alcotest.test_case "capture round-trip vs pp" `Quick test_capture_pp_roundtrip;
    Alcotest.test_case "listener of_sink" `Quick test_of_sink;
    Alcotest.test_case "event pp" `Quick test_event_pp ]
