(* Shared helpers for the test suites. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec go i =
      if i + nn > nh then false
      else if String.sub haystack i nn = needle then true
      else go (i + 1)
    in
    go 0

let check_contains what haystack needle =
  if not (contains haystack needle) then
    Alcotest.fail (Printf.sprintf "%s: expected %S in %S" what needle haystack)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition: a hand-written checker of the format's
   structural rules, independent of the renderer — it re-parses the text
   from scratch, so a renderer bug can't hide behind its own output.
   Shared between the obs suite (registry render) and the serve suite
   (the daemon's GET /metrics). *)

type parsed_sample = { ps_name : string; ps_labels : (string * string) list;
                       ps_value : string }

let parse_exposition what text =
  let fail msg = Alcotest.fail (Printf.sprintf "%s: %s" what msg) in
  let types = Hashtbl.create 8 in
  let helps = Hashtbl.create 8 in
  let samples = ref [] in
  let parse_labels s =
    (* k1="v1",k2="v2" — label values in these tests contain no escapes *)
    if s = "" then []
    else
      List.map
        (fun kv ->
          match String.index_opt kv '=' with
          | Some i ->
            let k = String.sub kv 0 i in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            let n = String.length v in
            if n < 2 || v.[0] <> '"' || v.[n - 1] <> '"' then
              fail ("unquoted label value in " ^ s);
            (k, String.sub v 1 (n - 2))
          | None -> fail ("bad label pair " ^ kv))
        (String.split_on_char ',' s)
  in
  (* the metric a sample line belongs to: its own name, or — for the
     histogram series — the name with _bucket/_sum/_count stripped *)
  let base_of name =
    if Hashtbl.mem types name then name
    else
      let try_suffix sfx =
        let n = String.length name and m = String.length sfx in
        if n > m && String.sub name (n - m) m = sfx then begin
          let b = String.sub name 0 (n - m) in
          if Hashtbl.find_opt types b = Some "histogram" then Some b else None
        end
        else None
      in
      match List.find_map try_suffix [ "_bucket"; "_sum"; "_count" ] with
      | Some b -> b
      | None -> fail ("sample " ^ name ^ " has no preceding # TYPE")
  in
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line > 1 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "HELP" :: name :: _ :: _ ->
          if Hashtbl.mem types name then fail ("HELP after TYPE for " ^ name);
          Hashtbl.replace helps name ()
        | "#" :: "TYPE" :: name :: [ ty ] ->
          if not (List.mem ty [ "counter"; "gauge"; "histogram" ]) then
            fail ("unknown type " ^ ty);
          if Hashtbl.mem types name then fail ("duplicate TYPE for " ^ name);
          Hashtbl.replace types name ty
        | _ -> fail ("malformed comment line: " ^ line)
      end
      else begin
        match String.rindex_opt line ' ' with
        | None -> fail ("malformed sample line: " ^ line)
        | Some sp ->
          let head = String.sub line 0 sp in
          let value = String.sub line (sp + 1) (String.length line - sp - 1) in
          let name, labels =
            match String.index_opt head '{' with
            | None -> (head, [])
            | Some lb ->
              if head.[String.length head - 1] <> '}' then
                fail ("unterminated label set: " ^ head);
              ( String.sub head 0 lb,
                parse_labels
                  (String.sub head (lb + 1) (String.length head - lb - 2)) )
          in
          ignore (base_of name);
          samples := { ps_name = name; ps_labels = labels; ps_value = value }
                     :: !samples
      end)
    (String.split_on_char '\n' text);
  (types, helps, List.rev !samples)

let find_sample what samples name labels =
  match
    List.find_opt
      (fun s ->
        s.ps_name = name
        && List.sort compare s.ps_labels = List.sort compare labels)
      samples
  with
  | Some s -> s.ps_value
  | None ->
    Alcotest.fail
      (Printf.sprintf "%s: no sample %s{%s}" what name
         (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)))

(* the structural rules of one histogram's series under one label set *)
let check_histogram what samples name labels =
  let le_of s = List.assoc "le" s.ps_labels in
  let others s = List.remove_assoc "le" s.ps_labels in
  let buckets =
    List.filter
      (fun s ->
        s.ps_name = name ^ "_bucket"
        && List.mem_assoc "le" s.ps_labels
        && List.sort compare (others s) = List.sort compare labels)
      samples
  in
  if buckets = [] then Alcotest.fail (what ^ ": no _bucket series");
  let les = List.map le_of buckets in
  (match List.rev les with
   | "+Inf" :: _ -> ()
   | _ -> Alcotest.fail (what ^ ": last bucket is not le=\"+Inf\""));
  let numeric =
    List.map
      (fun le -> if le = "+Inf" then infinity else float_of_string le)
      les
  in
  if List.sort compare numeric <> numeric then
    Alcotest.fail (what ^ ": bucket bounds not ascending");
  let cums = List.map (fun s -> int_of_string s.ps_value) buckets in
  if List.sort compare cums <> cums then
    Alcotest.fail (what ^ ": cumulative counts decrease");
  let count =
    int_of_string (find_sample what samples (name ^ "_count") labels)
  in
  Alcotest.(check int) (what ^ ": +Inf bucket = _count") count
    (List.nth cums (List.length cums - 1));
  ignore (float_of_string (find_sample what samples (name ^ "_sum") labels))
