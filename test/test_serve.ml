(* Tests for the analysis daemon: the HTTP reader/writer pair, the
   content-addressed result store (round-trip, persistence, LRU
   eviction, quarantine, contention), singleflight coalescing, the trace
   memo's in-flight coalescing under the domain pool, and the daemon end
   to end over real loopback sockets — including the warm-cache path,
   the Prometheus surface (validated by the same independent exposition
   checker the obs suite uses), and bounded-queue backpressure. *)

open Fs_ir.Dsl
module Srv = Fs_serve.Server
module Http = Fs_serve.Http
module Store = Fs_serve.Store
module Sf = Fs_serve.Singleflight
module Sha256 = Fs_util.Sha256
module Memo = Falseshare.Trace_memo
module W = Fs_workloads.Workload
module Json = Fs_obs.Json

let fresh_dir =
  let n = ref 0 in
  fun tag ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "fs-serve-%s-%d-%d" tag (Unix.getpid ()) !n)
    in
    if not (Sys.file_exists d) then Sys.mkdir d 0o755;
    d

(* ------------------------------------------------------------------ *)
(* HTTP reader                                                         *)

let feed_request raw =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let n = Unix.write_substring a raw 0 (String.length raw) in
  assert (n = String.length raw);
  Unix.close a;
  Fun.protect
    ~finally:(fun () -> Unix.close b)
    (fun () -> Http.read_request b)

let test_http_reader () =
  (match
     feed_request
       "POST /an%20alyze?x=a%2Bb&flag HTTP/1.1\r\nHost: h\r\nContent-Type: \
        application/json\r\nContent-Length: 11\r\n\r\nhello world"
   with
  | Some req ->
    Alcotest.(check string) "method" "POST" req.Http.meth;
    Alcotest.(check string) "decoded path" "/an alyze" req.Http.path;
    Alcotest.(check (option string)) "decoded query" (Some "a+b")
      (Http.query_param req "x");
    Alcotest.(check (option string)) "bare query key" (Some "")
      (Http.query_param req "flag");
    Alcotest.(check (option string)) "case-insensitive header"
      (Some "application/json")
      (Http.header req "CONTENT-type");
    Alcotest.(check string) "body" "hello world" req.Http.body
  | None -> Alcotest.fail "request not parsed");
  (* bare-\n separators (hand-typed clients) parse too *)
  (match feed_request "GET /x HTTP/1.1\nHost: h\n\n" with
  | Some req -> Alcotest.(check string) "lf path" "/x" req.Http.path
  | None -> Alcotest.fail "lf request not parsed");
  (* clean EOF before any byte is a quiet None, not an error *)
  (match feed_request "" with
  | None -> ()
  | Some _ -> Alcotest.fail "EOF parsed as a request");
  let reject what raw =
    match feed_request raw with
    | exception Http.Bad_request _ -> ()
    | _ -> Alcotest.fail (what ^ ": accepted")
  in
  reject "garbage request line" "NONSENSE\r\n\r\n";
  reject "bad version" "GET / HTTP/2\r\n\r\n";
  reject "bad content-length" "GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n";
  reject "truncated body" "GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab";
  reject "over-limit body"
    "POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n";
  reject "truncated escape" "GET /a%2 HTTP/1.1\r\n\r\n"

(* ------------------------------------------------------------------ *)
(* Sha256 content addresses                                            *)

let test_store_key () =
  let k = Store.key [ "a"; "b" ] in
  Alcotest.(check int) "64 hex chars" 64 (String.length k);
  Alcotest.(check bool) "hex alphabet" true
    (String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) k);
  Alcotest.(check string) "deterministic" k (Store.key [ "a"; "b" ]);
  (* length prefixes make part boundaries real: ab|c and a|bc differ *)
  Alcotest.(check bool) "boundaries matter" false
    (Store.key [ "ab"; "c" ] = Store.key [ "a"; "bc" ]);
  Alcotest.(check bool) "arity matters" false
    (Store.key [ "ab" ] = Store.key [ "ab"; "" ]);
  (* the underlying digest matches the NIST vector *)
  Alcotest.(check string) "sha256(abc)"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest_hex "abc")

(* ------------------------------------------------------------------ *)
(* Store                                                               *)

let test_store_roundtrip () =
  let dir = fresh_dir "rt" in
  let s = Store.open_ dir in
  let k = Store.key [ "roundtrip" ] in
  (match Store.find s k with
  | Ok None -> ()
  | _ -> Alcotest.fail "fresh store not a miss");
  let payload = "{\"x\":1}\nbinary\x00bits\xff" in
  Store.put s k payload;
  (match Store.find s k with
  | Ok (Some p) -> Alcotest.(check string) "payload survives" payload p
  | _ -> Alcotest.fail "put entry not found");
  (* overwrite with new content *)
  Store.put s k "v2";
  (match Store.find s k with
  | Ok (Some p) -> Alcotest.(check string) "overwritten" "v2" p
  | _ -> Alcotest.fail "overwritten entry not found");
  let st = Store.stats s in
  Alcotest.(check int) "hits" 2 st.Store.hits;
  Alcotest.(check int) "misses" 1 st.Store.misses;
  Alcotest.(check int) "puts" 2 st.Store.puts;
  Alcotest.(check int) "entries" 1 st.Store.entries;
  (* a second handle on the same directory sees the entry: the store is
     durable across daemon restarts *)
  let s2 = Store.open_ dir in
  (match Store.find s2 k with
  | Ok (Some p) -> Alcotest.(check string) "persistent" "v2" p
  | _ -> Alcotest.fail "entry lost across reopen");
  Store.clear s2;
  (match Store.find s2 k with
  | Ok None -> ()
  | _ -> Alcotest.fail "clear left the entry");
  Alcotest.(check int) "clear removed bytes" 0 (Store.stats s2).Store.bytes

let test_store_eviction () =
  let payload tag = String.make 64 tag in
  (* measure what one entry really costs on disk (header + payload)
     before picking a budget that holds exactly two of them *)
  let size =
    let probe = Store.open_ (fresh_dir "lru-probe") in
    Store.put probe (Store.key [ "probe" ]) (payload 'p');
    (Store.stats probe).Store.bytes
  in
  let dir = fresh_dir "lru" in
  let s = Store.open_ ~budget_bytes:(2 * size) dir in
  let ka = Store.key [ "a" ] and kb = Store.key [ "b" ] and kc = Store.key [ "c" ] in
  Store.put s ka (payload 'a');
  Store.put s kb (payload 'b');
  (* touch [a] so [b] is the least recently used *)
  (match Store.find s ka with
  | Ok (Some _) -> ()
  | _ -> Alcotest.fail "a missing before eviction");
  Store.put s kc (payload 'c');
  let st = Store.stats s in
  Alcotest.(check bool) "evicted something" true (st.Store.evictions >= 1);
  Alcotest.(check bool) "budget holds" true
    (st.Store.bytes <= 2 * size);
  (match Store.find s kb with
  | Ok None -> ()
  | _ -> Alcotest.fail "LRU victim [b] still present");
  (match (Store.find s ka, Store.find s kc) with
  | Ok (Some _), Ok (Some _) -> ()
  | _ -> Alcotest.fail "recently used entries lost");
  (* one payload bigger than the whole budget is still accepted *)
  let big = String.make (4 * size) 'B' in
  Store.put s ka big;
  (match Store.find s ka with
  | Ok (Some p) -> Alcotest.(check int) "oversized accepted" (String.length big) (String.length p)
  | _ -> Alcotest.fail "oversized put lost")

let test_store_quarantine () =
  let dir = fresh_dir "quar" in
  let s = Store.open_ dir in
  let k = Store.key [ "poison" ] in
  Store.put s k "good payload";
  (* flip payload bytes on disk behind the store's back *)
  let path = Filename.concat dir (k ^ ".entry") in
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let bad = Bytes.of_string text in
  Bytes.set bad (Bytes.length bad - 1) '!';
  let oc = open_out_bin path in
  output_bytes oc bad;
  close_out oc;
  (match Store.find s k with
  | Error c ->
    Alcotest.(check string) "corrupt key" k c.Store.ckey;
    Tutil.check_contains "reason names the checksum" c.Store.reason "checksum";
    (match c.Store.quarantined_to with
     | Some q ->
       Alcotest.(check bool) "quarantined file exists" true (Sys.file_exists q);
       Tutil.check_contains "under quarantine/" q "quarantine"
     | None -> Alcotest.fail "corrupt entry not moved aside")
  | _ -> Alcotest.fail "corrupt entry served or missed");
  (* after quarantine the key is a plain miss, and a fresh put heals it *)
  (match Store.find s k with
  | Ok None -> ()
  | _ -> Alcotest.fail "quarantined key not a miss");
  Store.put s k "healed";
  (match Store.find s k with
  | Ok (Some p) -> Alcotest.(check string) "healed" "healed" p
  | _ -> Alcotest.fail "healed entry not found");
  let st = Store.stats s in
  Alcotest.(check int) "quarantined counted" 1 st.Store.quarantined;
  (* a truncated header is quarantined too, with a different reason *)
  let k2 = Store.key [ "short" ] in
  Store.put s k2 "x";
  let path2 = Filename.concat dir (k2 ^ ".entry") in
  let oc = open_out_bin path2 in
  output_string oc "not the magic";
  close_out oc;
  (match Store.find s k2 with
  | Error c -> Tutil.check_contains "reason mentions magic" c.Store.reason "magic"
  | _ -> Alcotest.fail "bad magic not quarantined")

(* the store is shared by every worker: domains hammering overlapping
   keys under a tiny budget must stay consistent — every find returns
   either the true payload or a miss, never garbage *)
let test_store_contention () =
  let dir = fresh_dir "cont" in
  let payload i = Printf.sprintf "payload-%d-%s" i (String.make 200 'p') in
  let size = String.length (payload 0) + 128 in
  let s = Store.open_ ~budget_bytes:(3 * size) dir in
  let keys = Array.init 8 (fun i -> Store.key [ "k"; string_of_int i ]) in
  let bad = Atomic.make 0 in
  Fs_util.Par.iter ~jobs:4
    (fun task ->
      let i = task mod 8 in
      Store.put s keys.(i) (payload i);
      match Store.find s keys.(i) with
      | Ok (Some p) when p = payload i -> ()
      | Ok (Some _) -> Atomic.incr bad
      | Ok None -> () (* racing eviction: a miss is honest *)
      | Error _ -> Atomic.incr bad)
    (List.init 64 Fun.id);
  Alcotest.(check int) "no wrong payloads" 0 (Atomic.get bad);
  let st = Store.stats s in
  Alcotest.(check bool) "evicted under contention" true (st.Store.evictions > 0);
  Alcotest.(check bool) "budget holds" true (st.Store.bytes <= 3 * size);
  Alcotest.(check int) "nothing quarantined" 0 st.Store.quarantined;
  (* the directory agrees with the index *)
  let on_disk =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".entry")
    |> List.length
  in
  Alcotest.(check int) "index matches directory" st.Store.entries on_disk

(* ------------------------------------------------------------------ *)
(* Singleflight                                                        *)

let test_singleflight () =
  let sf = Sf.create () in
  let gate = Mutex.create () in
  let gcond = Condition.create () in
  let entered = ref false and released = ref false in
  let calls = Atomic.make 0 in
  let work () =
    Atomic.incr calls;
    Mutex.protect gate (fun () ->
        entered := true;
        Condition.broadcast gcond;
        while not !released do
          Condition.wait gcond gate
        done);
    "payload"
  in
  let results = Array.make 3 ("?", `Joined) in
  let spawn i = Thread.create (fun () -> results.(i) <- Sf.run sf "k" work) () in
  let leader = spawn 0 in
  (* wait until the leader is provably inside the computation… *)
  Mutex.protect gate (fun () ->
      while not !entered do
        Condition.wait gcond gate
      done);
  (* …then send in the herd and let them reach the flight *)
  let f1 = spawn 1 and f2 = spawn 2 in
  Thread.delay 0.05;
  Mutex.protect gate (fun () ->
      released := true;
      Condition.broadcast gcond);
  List.iter Thread.join [ leader; f1; f2 ];
  Alcotest.(check int) "one computation" 1 (Atomic.get calls);
  Array.iter
    (fun (v, _) -> Alcotest.(check string) "shared payload" "payload" v)
    results;
  let leds =
    Array.to_list results
    |> List.filter (fun (_, role) -> role = `Led)
    |> List.length
  in
  Alcotest.(check int) "exactly one leader" 1 leds;
  (* not a cache: after the flight lands, the next caller leads anew *)
  released := true;
  let v, role = Sf.run sf "k" (fun () -> Atomic.incr calls; "again") in
  Alcotest.(check string) "fresh flight" "again" v;
  Alcotest.(check bool) "fresh leader" true (role = `Led);
  Alcotest.(check int) "second computation" 2 (Atomic.get calls);
  (* a leader's exception reaches everyone — here, the only caller *)
  (match Sf.run sf "boom" (fun () -> failwith "flight failed") with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure m -> Alcotest.(check string) "leader exn" "flight failed" m);
  (* and the failed flight is retired: the key is reusable *)
  let v, _ = Sf.run sf "boom" (fun () -> "recovered") in
  Alcotest.(check string) "failed key reusable" "recovered" v

(* ------------------------------------------------------------------ *)
(* Trace memo in-flight coalescing                                     *)

(* a workload whose build blocks on a gate: the leader can be held
   inside the memo's computation while followers pile up on the key *)
let gated_workload =
  let gate = Mutex.create () in
  let gcond = Condition.create () in
  let entered = ref 0 and released = ref false in
  let build ~nprocs ~scale:_ =
    Mutex.protect gate (fun () ->
        incr entered;
        Condition.broadcast gcond;
        while not !released do
          Condition.wait gcond gate
        done);
    Fs_ir.Validate.validate_exn
      (program ~name:"serve_gated"
         ~globals:[ ("c", arr int_t nprocs) ]
         [ fn "main" []
             [ sfor "k" (i 0) (i 10) [ bump ((v "c").%(pdv)) (i 1) ] ] ])
  in
  let w =
    {
      W.name = "serve_gated";
      description = "gated build for coalescing tests";
      lines_of_c = 0;
      versions = [ W.N ];
      dynamic = false;
      fig3_procs = 2;
      default_scale = 1;
      build;
      programmer_plan = None;
      notes = "";
    }
  in
  (w, gate, gcond, entered, released)

let test_memo_coalescing () =
  let w, gate, gcond, entered, released = gated_workload in
  Memo.clear ();
  let entries = Array.make 3 None in
  let getter i =
    Thread.create (fun () -> entries.(i) <- Some (Memo.get w ~nprocs:2 ~scale:1)) ()
  in
  let leader = getter 0 in
  Mutex.protect gate (fun () ->
      while !entered = 0 do
        Condition.wait gcond gate
      done);
  let f1 = getter 1 and f2 = getter 2 in
  Thread.delay 0.05;
  Mutex.protect gate (fun () ->
      released := true;
      Condition.broadcast gcond);
  List.iter Thread.join [ leader; f1; f2 ];
  Alcotest.(check int) "one build" 1 !entered;
  let _, misses, _, _ = Memo.read_stats () in
  Alcotest.(check int) "one miss" 1 misses;
  Alcotest.(check int) "two coalesced" 2 (Memo.read_coalesced ());
  (match (entries.(0), entries.(1), entries.(2)) with
   | Some a, Some b, Some c ->
     Alcotest.(check bool) "same trace" true
       (a.Memo.trace == b.Memo.trace && b.Memo.trace == c.Memo.trace)
   | _ -> Alcotest.fail "a getter returned nothing");
  Memo.clear ()

(* the same key hammered from the domain pool: one interpretation,
   bit-identical traces everywhere *)
let test_memo_coalescing_domains () =
  Memo.clear ();
  let w = Fs_workloads.Workloads.find "water" in
  let es = Fs_util.Par.map ~jobs:4 (fun _ -> Memo.get w ~nprocs:3 ~scale:1) (List.init 8 Fun.id) in
  let _, misses, _, _ = Memo.read_stats () in
  Alcotest.(check int) "one interpretation" 1 misses;
  (match es with
   | first :: rest ->
     List.iter
       (fun (e : Memo.entry) ->
         Alcotest.(check bool) "physically shared trace" true
           (e.Memo.trace == first.Memo.trace))
       rest
   | [] -> Alcotest.fail "no entries");
  Memo.clear ()

(* ------------------------------------------------------------------ *)
(* The daemon, end to end                                              *)

let get_json what body =
  match Json.of_string body with
  | Ok j -> j
  | Error m -> Alcotest.fail (Printf.sprintf "%s: unparsable JSON: %s" what m)

let member_bool what j name =
  match Option.bind (Json.member name j) Json.get_bool with
  | Some b -> b
  | None -> Alcotest.fail (Printf.sprintf "%s: no boolean %S" what name)

let test_server_end_to_end () =
  let cache_dir = fresh_dir "daemon" in
  let cfg =
    { Srv.default_config with
      workers = 1;
      queue_capacity = 1;
      jobs = 2;
      cache_dir;
      debug_endpoints = true }
  in
  let t = Srv.start cfg in
  let port = Srv.port t in
  Fun.protect
    ~finally:(fun () -> Srv.stop t)
    (fun () ->
      (* healthz *)
      let s, _, body = Http.request ~port "/healthz" in
      Alcotest.(check int) "healthz status" 200 s;
      Alcotest.(check bool) "healthz ok" true
        (member_bool "healthz" (get_json "healthz" body) "ok");
      (* cold analyze: computed, stored, spans show the replay *)
      let q = {|{"workload":"water","nprocs":3,"block":64}|} in
      let s, _, cold = Http.request ~port ~body:q "/analyze" in
      Alcotest.(check int) "cold status" 200 s;
      let cj = get_json "cold" cold in
      Alcotest.(check bool) "cold not cached" false (member_bool "cold" cj "cached");
      Tutil.check_contains "cold replayed" cold "\"replay\"";
      (* warm repeat: identical result straight from the store, no replay
         child in the request's span tree *)
      let s, _, warm = Http.request ~port ~body:q "/analyze" in
      Alcotest.(check int) "warm status" 200 s;
      let wj = get_json "warm" warm in
      Alcotest.(check bool) "warm cached" true (member_bool "warm" wj "cached");
      Alcotest.(check bool) "warm has no replay span" false
        (Tutil.contains warm "\"replay\"");
      Alcotest.(check bool) "warm has no compute span" false
        (Tutil.contains warm "\"compute\"");
      Tutil.check_contains "warm probed the store" warm "store.find";
      (* the result payloads are bit-identical *)
      let result j = Json.to_string (Option.get (Json.member "result" j)) in
      Alcotest.(check string) "same result" (result cj) (result wj);
      (* chrome-trace span export on demand *)
      let s, _, chrome = Http.request ~port ~body:q "/analyze?spans=chrome" in
      Alcotest.(check int) "chrome status" 200 s;
      Tutil.check_contains "chrome fragment" chrome "traceEvents";
      (* metrics: the same independent checker the obs suite trusts *)
      let s, hdrs, text = Http.request ~port "/metrics" in
      Alcotest.(check int) "metrics status" 200 s;
      (match List.assoc_opt "content-type" hdrs with
       | Some ct -> Tutil.check_contains "exposition content type" ct "text/plain"
       | None -> Alcotest.fail "no content-type on /metrics");
      let _, _, samples = Tutil.parse_exposition "serve metrics" text in
      let counter name labels =
        int_of_string (Tutil.find_sample "serve metrics" samples name labels)
      in
      Alcotest.(check int) "three analyze requests" 3
        (counter "serve_requests_total"
           [ ("endpoint", "analyze"); ("status", "200") ]);
      Alcotest.(check bool) "cache hits moved" true
        (counter "serve_cache_hits_total" [] >= 2);
      Alcotest.(check bool) "cache misses moved" true
        (counter "serve_cache_misses_total" [] >= 1);
      Tutil.check_histogram "request latency" samples "serve_request_seconds"
        [ ("endpoint", "analyze") ];
      ignore (Tutil.find_sample "serve metrics" samples "serve_queue_depth" []);
      (* statusz: config echo and the recent-request ring *)
      let s, _, st = Http.request ~port "/statusz" in
      Alcotest.(check int) "statusz status" 200 s;
      let sj = get_json "statusz" st in
      let recent =
        Option.bind (Json.member "recent" sj) Json.get_list |> Option.get
      in
      Alcotest.(check bool) "ring remembers requests" true
        (List.length recent >= 3);
      Tutil.check_contains "statusz lists workloads" st "water";
      (* client errors *)
      let s, _, b = Http.request ~port ~body:{|{"workload":"wa ter"}|} "/analyze" in
      Alcotest.(check int) "unknown workload" 400 s;
      Tutil.check_contains "suggests the name" b "water";
      let s, _, _ = Http.request ~port ~body:"{not json" "/analyze" in
      Alcotest.(check int) "bad json" 400 s;
      let s, _, _ = Http.request ~port ~meth:"GET" "/analyze" in
      Alcotest.(check int) "GET on a work endpoint" 405 s;
      let s, _, _ = Http.request ~port "/nope" in
      Alcotest.(check int) "unknown path" 404 s;
      (* a ParC source body goes through the same pipeline *)
      let src =
        {|{"source":"program tiny; shared int c[4]; void main() { c[pid] = c[pid] + 1; }","nprocs":2}|}
      in
      let s, _, b = Http.request ~port ~body:src "/analyze" in
      Alcotest.(check int) "source analyzed" 200 s;
      Tutil.check_contains "source result" b "\"result\"";
      (* and a source that fails validation is a client error *)
      let s, _, _ =
        Http.request ~port ~body:{|{"source":"shared int x;"}|} "/analyze"
      in
      Alcotest.(check int) "bad source" 400 s)

(* Dynamic workloads over HTTP: no seed is a client error, the seed is
   part of the content address (distinct seeds never alias), and the same
   seed is served from the store on repeat. *)
let test_server_sched_seed () =
  let cache_dir = fresh_dir "seed" in
  let cfg =
    { Srv.default_config with workers = 1; queue_capacity = 4; jobs = 2; cache_dir }
  in
  let t = Srv.start cfg in
  let port = Srv.port t in
  Fun.protect
    ~finally:(fun () -> Srv.stop t)
    (fun () ->
      let s, _, body =
        Http.request ~port ~body:{|{"workload":"dstress","nprocs":4}|} "/analyze"
      in
      Alcotest.(check int) "seedless dynamic is a client error" 400 s;
      Tutil.check_contains "names the missing field" body "sched_seed";
      let q seed =
        Printf.sprintf {|{"workload":"dstress","nprocs":4,"sched_seed":%d}|} seed
      in
      let s, _, cold = Http.request ~port ~body:(q 7) "/analyze" in
      Alcotest.(check int) "seeded status" 200 s;
      Alcotest.(check bool) "seeded cold" false
        (member_bool "cold" (get_json "cold" cold) "cached");
      let s, _, warm = Http.request ~port ~body:(q 7) "/analyze" in
      Alcotest.(check int) "repeat status" 200 s;
      Alcotest.(check bool) "same seed hits the store" true
        (member_bool "warm" (get_json "warm" warm) "cached");
      let s, _, other = Http.request ~port ~body:(q 8) "/analyze" in
      Alcotest.(check int) "other-seed status" 200 s;
      Alcotest.(check bool) "distinct seed is a distinct address" false
        (member_bool "other" (get_json "other" other) "cached"))

let test_server_backpressure () =
  let cache_dir = fresh_dir "bp" in
  let cfg =
    { Srv.default_config with
      workers = 1;
      queue_capacity = 1;
      cache_dir;
      debug_endpoints = true }
  in
  let t = Srv.start cfg in
  let port = Srv.port t in
  Fun.protect
    ~finally:(fun () -> Srv.stop t)
    (fun () ->
      (* occupy the single worker, then fill the queue of one *)
      let slow i = Thread.create (fun () -> ignore (Http.request ~port (Printf.sprintf "/sleepz?s=0.6&i=%d" i))) () in
      let a = slow 0 in
      Thread.delay 0.15;
      let b = slow 1 in
      Thread.delay 0.15;
      (* the third concurrent request finds worker busy + queue full *)
      let s, hdrs, body = Http.request ~port "/sleepz?s=0.6&i=2" in
      Alcotest.(check int) "backpressure 503" 503 s;
      Alcotest.(check (option string)) "retry-after" (Some "1")
        (List.assoc_opt "retry-after" hdrs);
      Tutil.check_contains "says why" body "queue full";
      Thread.join a;
      Thread.join b;
      (* once drained, the daemon admits work again *)
      let s, _, _ = Http.request ~port "/sleepz?s=0.01" in
      Alcotest.(check int) "admits again" 200 s;
      let _, _, samples =
        let _, _, text = Http.request ~port "/metrics" in
        Tutil.parse_exposition "bp metrics" text
      in
      Alcotest.(check string) "rejection counted" "1"
        (Tutil.find_sample "bp" samples "serve_rejected_total" []))

let test_server_quitquitquit () =
  let cache_dir = fresh_dir "quit" in
  let t = Srv.start { Srv.default_config with workers = 2; cache_dir } in
  let port = Srv.port t in
  let s, _, body = Http.request ~port ~meth:"POST" "/quitquitquit" in
  Alcotest.(check int) "quit status" 200 s;
  Tutil.check_contains "acknowledges" body "stopping";
  (* wait returns because the daemon initiated its own shutdown *)
  Srv.wait t;
  (* stop after wait is a harmless no-op *)
  Srv.stop t;
  (match Http.request ~port "/healthz" with
  | exception (Unix.Unix_error _ | Http.Bad_request _) -> ()
  | _ -> Alcotest.fail "daemon still answering after quit")

let suite =
  [ Alcotest.test_case "http reader" `Quick test_http_reader;
    Alcotest.test_case "store key" `Quick test_store_key;
    Alcotest.test_case "store round-trip" `Quick test_store_roundtrip;
    Alcotest.test_case "store eviction" `Quick test_store_eviction;
    Alcotest.test_case "store quarantine" `Quick test_store_quarantine;
    Alcotest.test_case "store contention" `Quick test_store_contention;
    Alcotest.test_case "singleflight" `Quick test_singleflight;
    Alcotest.test_case "memo coalescing (threads)" `Quick test_memo_coalescing;
    Alcotest.test_case "memo coalescing (domains)" `Quick test_memo_coalescing_domains;
    Alcotest.test_case "daemon end to end" `Quick test_server_end_to_end;
    Alcotest.test_case "daemon sched seed" `Quick test_server_sched_seed;
    Alcotest.test_case "daemon backpressure" `Quick test_server_backpressure;
    Alcotest.test_case "daemon quitquitquit" `Quick test_server_quitquitquit ]
