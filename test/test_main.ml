let () =
  Alcotest.run "falseshare"
    [ ("util", Test_util.suite);
      ("ir", Test_ir.suite);
      ("rsd", Test_rsd.suite);
      ("cfg", Test_cfg.suite);
      ("analysis", Test_analysis.suite);
      ("layout", Test_layout.suite);
      ("interp", Test_interp.suite);
      ("cache", Test_cache.suite);
      ("machine", Test_machine.suite);
      ("transform", Test_transform.suite);
      ("workloads", Test_workloads.suite);
      ("experiments", Test_experiments.suite);
      ("parc", Test_parc.suite);
      ("trace", Test_trace.suite);
      ("tracefmt", Test_tracefmt.suite);
      ("replay", Test_replay.suite);
      ("sharded", Test_sharded.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
      ("telemetry", Test_telemetry.suite);
      ("phases", Test_phases.suite);
      ("sched", Test_sched.suite);
      ("feedback", Test_feedback.suite);
      ("fuzz", Test_fuzz.suite) ]
