(* Tests for the multiprocessor cache simulator: MSI protocol invariants
   and the false/true sharing miss classification. *)

module C = Fs_cache.Mpcache

let mk ?(nprocs = 4) ?(block = 16) ?(cache_bytes = 1024) ?(assoc = 2)
    ?(track_blocks = false) ?(track_lines = false) () =
  C.create ~track_blocks ~track_lines { C.nprocs; block; cache_bytes; assoc }

let rd t p a = C.access t ~proc:p ~write:false ~addr:a
let wr t p a = C.access t ~proc:p ~write:true ~addr:a

let kind = function
  | C.Miss { info = { kind; _ }; _ } -> Some kind
  | C.Hit | C.Upgrade _ -> None

let test_cold_then_hit () =
  let t = mk () in
  Alcotest.(check bool) "first ref cold" true (kind (rd t 0 0) = Some C.Cold);
  Alcotest.(check bool) "second ref hits" true (rd t 0 4 = C.Hit);
  Alcotest.(check bool) "other block cold" true (kind (rd t 0 16) = Some C.Cold);
  Alcotest.(check bool) "other proc cold" true (kind (rd t 1 0) = Some C.Cold)

let test_msi_states () =
  let t = mk () in
  ignore (wr t 0 0);
  Alcotest.(check bool) "writer modified" true (C.state_of t ~proc:0 ~addr:0 = `Modified);
  ignore (rd t 1 0);
  Alcotest.(check bool) "writer downgraded" true (C.state_of t ~proc:0 ~addr:0 = `Shared);
  Alcotest.(check bool) "reader shared" true (C.state_of t ~proc:1 ~addr:0 = `Shared);
  ignore (wr t 2 0);
  Alcotest.(check bool) "new writer modified" true (C.state_of t ~proc:2 ~addr:0 = `Modified);
  Alcotest.(check bool) "old copies invalid" true
    (C.state_of t ~proc:0 ~addr:0 = `Invalid && C.state_of t ~proc:1 ~addr:0 = `Invalid)

let test_upgrade () =
  let t = mk () in
  ignore (rd t 0 0);
  ignore (rd t 1 0);
  (match wr t 0 0 with
   | C.Upgrade { invalidated } -> Alcotest.(check int) "one copy invalidated" 1 invalidated
   | _ -> Alcotest.fail "expected upgrade");
  Alcotest.(check int) "upgrade counted" 1 (C.counts t).C.upgrades

let test_true_sharing () =
  let t = mk () in
  (* P1 reads word 0; P0 writes word 0; P1 rereads word 0: essential *)
  ignore (rd t 1 0);
  ignore (wr t 0 0);
  Alcotest.(check bool) "true sharing" true (kind (rd t 1 0) = Some C.True_sharing)

let test_false_sharing () =
  let t = mk () in
  (* P1 reads word 1; P0 writes word 0 (same block); P1 rereads word 1 *)
  ignore (rd t 1 4);
  ignore (wr t 0 0);
  Alcotest.(check bool) "false sharing" true (kind (rd t 1 4) = Some C.False_sharing)

let test_false_sharing_own_word () =
  let t = mk () in
  (* the word P1 rereads was last written by P1 itself: false sharing *)
  ignore (wr t 1 4);
  ignore (wr t 0 0);  (* invalidates P1's copy via word 0 *)
  Alcotest.(check bool) "own word false sharing" true
    (kind (rd t 1 4) = Some C.False_sharing)

let test_write_write_false_sharing () =
  let t = mk () in
  ignore (wr t 0 0);
  ignore (wr t 1 4);
  (* P0's next write to its own word misses only because of P1: false *)
  Alcotest.(check bool) "write/write false sharing" true
    (kind (wr t 0 0) = Some C.False_sharing)

let test_one_word_blocks_no_false_sharing () =
  (* with one-word blocks false sharing is impossible by definition *)
  let t = mk ~block:4 () in
  for k = 0 to 200 do
    let p = k mod 4 in
    ignore (wr t p (4 * p));
    ignore (rd t p (4 * ((p + 1) mod 4)))
  done;
  Alcotest.(check int) "no false sharing" 0 (C.counts t).C.false_sh

let test_replacement () =
  (* direct-mapped single-set cache: two conflicting blocks evict each other *)
  let t = mk ~nprocs:1 ~cache_bytes:32 ~block:16 ~assoc:2 () in
  ignore (rd t 0 0);
  ignore (rd t 0 16);
  ignore (rd t 0 32);  (* evicts block 0 (LRU) *)
  Alcotest.(check bool) "replacement classified" true
    (kind (rd t 0 0) = Some C.Replacement);
  Alcotest.(check int) "repl counted" 1 (C.counts t).C.repl

let test_lru () =
  let t = mk ~nprocs:1 ~cache_bytes:32 ~block:16 ~assoc:2 () in
  ignore (rd t 0 0);
  ignore (rd t 0 16);
  ignore (rd t 0 0);   (* touch block 0: block 16 is now LRU *)
  ignore (rd t 0 32);  (* evicts 16 *)
  Alcotest.(check bool) "block 0 still resident" true (rd t 0 0 = C.Hit);
  Alcotest.(check bool) "block 16 evicted" true (kind (rd t 0 16) = Some C.Replacement)

let test_provider () =
  let t = mk () in
  ignore (wr t 2 0);
  (match rd t 0 0 with
   | C.Miss { info = { provider; _ }; _ } ->
     Alcotest.(check int) "modified owner provides" 2 provider
   | _ -> Alcotest.fail "expected miss");
  (* now 2 and 0 share; a write miss by 3 invalidates both *)
  (match wr t 3 0 with
   | C.Miss { invalidated; _ } -> Alcotest.(check int) "two invalidated" 2 invalidated
   | _ -> Alcotest.fail "expected miss")

let test_counts_consistency =
  QCheck.Test.make ~name:"cache counts are consistent" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 400)
              (triple (int_range 0 3) bool (int_range 0 63)))
    (fun ops ->
      let t = mk () in
      List.iter (fun (p, w, word) -> ignore (C.access t ~proc:p ~write:w ~addr:(4 * word))) ops;
      let c = C.counts t in
      C.accesses c = List.length ops
      && C.misses c <= C.accesses c
      && c.C.cold >= 0 && c.C.repl >= 0 && c.C.true_sh >= 0 && c.C.false_sh >= 0)

let test_single_writer_no_sharing_misses =
  QCheck.Test.make ~name:"single processor never has sharing misses" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 300) (pair bool (int_range 0 255)))
    (fun ops ->
      let t = mk ~nprocs:1 () in
      List.iter (fun (w, word) -> ignore (C.access t ~proc:0 ~write:w ~addr:(4 * word))) ops;
      let c = C.counts t in
      c.C.true_sh = 0 && c.C.false_sh = 0 && c.C.invalidations = 0)

let test_per_block_tracking () =
  let t = mk ~track_blocks:true () in
  ignore (wr t 0 0);
  ignore (wr t 1 4);
  ignore (wr t 0 160);
  let blocks = C.per_block t in
  Alcotest.(check int) "two blocks tracked" 2 (List.length blocks);
  let b0 = List.assoc 0 blocks in
  Alcotest.(check int) "block 0 writes" 2 b0.C.writes

let test_line_tracking () =
  let t = mk ~track_lines:true () in
  (* P0 and P1 ping-pong over distinct words of block 0; P2 reads once *)
  ignore (wr t 0 0);
  ignore (wr t 1 4);
  ignore (wr t 0 0);
  ignore (wr t 1 4);
  ignore (rd t 2 8);
  ignore (wr t 3 160);  (* a second, single-writer line *)
  match C.lines t with
  | [ l0; l10 ] ->
    Alcotest.(check int) "block id" 0 l0.C.line_block;
    Alcotest.(check int) "reads" 1 l0.C.line_reads;
    Alcotest.(check int) "writes" 4 l0.C.line_writes;
    Alcotest.(check int) "writers" 2 l0.C.writers;
    Alcotest.(check int) "readers" 1 l0.C.readers;
    (* every write after the first changed hands *)
    Alcotest.(check int) "migrations" 3 l0.C.migrations;
    (* the last two writes returned to their previous writer: ABA *)
    Alcotest.(check int) "strict aba ping-pong" 2 l0.C.pingpong;
    Alcotest.(check int) "longest alternating run" 4 l0.C.max_run;
    Alcotest.(check (float 1e-9)) "score = migrations/writes" 0.75
      (C.pingpong_score l0);
    Alcotest.(check int) "two words written" 2 l0.C.written_words;
    Alcotest.(check int) "no word has two writers" 0 l0.C.shared_words;
    Alcotest.(check int) "word 0 writer mask" 0b0001 l0.C.word_writers.(0);
    Alcotest.(check int) "word 1 writer mask" 0b0010 l0.C.word_writers.(1);
    Alcotest.(check int) "other line single writer" 1 l10.C.writers;
    Alcotest.(check int) "other line no migrations" 0 l10.C.migrations;
    Alcotest.(check (float 1e-9)) "other line score" 0.0 (C.pingpong_score l10)
  | ls -> Alcotest.fail (Printf.sprintf "expected 2 lines, got %d" (List.length ls))

let test_shared_words () =
  let t = mk ~track_lines:true () in
  ignore (wr t 0 0);
  ignore (wr t 1 0);  (* same word, second writer *)
  match C.lines t with
  | [ l ] ->
    Alcotest.(check int) "one word written" 1 l.C.written_words;
    Alcotest.(check int) "and it is shared" 1 l.C.shared_words
  | _ -> Alcotest.fail "expected one line"

let test_tracking_off_raises () =
  let t = mk () in
  ignore (wr t 0 0);
  let raises what f =
    Alcotest.(check bool) (what ^ " raises when tracking off") true
      (match f () with _ -> false | exception Invalid_argument _ -> true)
  in
  raises "per_block" (fun () -> C.per_block t);
  raises "invalidation_pairs" (fun () -> C.invalidation_pairs t);
  raises "lines" (fun () -> C.lines t)

let test_counts_arithmetic () =
  let t = mk () in
  ignore (wr t 0 0);
  ignore (wr t 1 4);
  ignore (rd t 2 0);
  let c = C.counts t in
  let copy = C.copy_counts c in
  Alcotest.(check bool) "copy equals" true (copy = c);
  ignore (wr t 3 8);
  Alcotest.(check bool) "copy is a snapshot" true (copy <> C.counts t);
  let diff = C.sub_counts (C.counts t) copy in
  let rebuilt = C.copy_counts copy in
  C.add_into rebuilt diff;
  Alcotest.(check bool) "sub then add rebuilds" true (rebuilt = C.counts t)

let test_miss_rates () =
  let t = mk () in
  ignore (rd t 0 0);
  ignore (rd t 0 0);
  ignore (rd t 0 0);
  ignore (rd t 0 0);
  let c = C.counts t in
  Alcotest.(check (float 1e-9)) "miss rate" 0.25 (C.miss_rate c);
  Alcotest.(check (float 1e-9)) "fs rate" 0.0 (C.false_sharing_rate c)

let test_touch_matches_access () =
  (* touch is access minus the boxed outcome; drive the same reference
     stream through both entry points, with and without a max_addr hint,
     and compare every counter — exercising the growth path on the
     unhinted cache (addresses run far past the initial arena) *)
  let ops =
    List.init 4000 (fun k -> (k mod 4, k land 3 = 0, 4 * (k * 37 mod 40_000)))
  in
  let a = mk () in
  let b = mk () in
  let c = C.create ~max_addr:160_000 { C.nprocs = 4; block = 16; cache_bytes = 1024; assoc = 2 } in
  List.iter
    (fun (p, w, addr) ->
      ignore (C.access a ~proc:p ~write:w ~addr);
      C.touch b ~proc:p ~write:w ~addr;
      C.touch c ~proc:p ~write:w ~addr)
    ops;
  Alcotest.(check bool) "touch = access" true (C.counts a = C.counts b);
  Alcotest.(check bool) "presized = grown" true (C.counts a = C.counts c);
  Alcotest.(check bool) "per-proc agree" true (C.proc_counts a = C.proc_counts c);
  (* an address beyond anything ever touched reads as Invalid *)
  Alcotest.(check bool) "unseen block invalid" true
    (C.state_of a ~proc:0 ~addr:10_000_000 = `Invalid)

let test_bad_config () =
  Alcotest.(check bool) "non-power block rejected" true
    (match mk ~block:24 () with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* Shard-merge of counts is a field-wise sum, so it must be associative
   and order-independent — the property that makes the sharded replay's
   merge deterministic whatever order the slabs are combined in. *)
let counts_gen =
  QCheck.Gen.(
    map
      (fun l ->
        match l with
        | [ reads; writes; cold; repl; true_sh; false_sh; invalidations;
            upgrades ] ->
          { C.reads; writes; cold; repl; true_sh; false_sh; invalidations;
            upgrades }
        | _ -> assert false)
      (list_repeat 8 (int_bound 1_000_000)))

let counts_arb =
  QCheck.make counts_gen ~print:(fun (c : C.counts) ->
      Printf.sprintf "{r=%d w=%d cold=%d repl=%d ts=%d fs=%d inv=%d up=%d}"
        c.C.reads c.writes c.cold c.repl c.true_sh c.false_sh c.invalidations
        c.upgrades)

let test_merge_associative =
  QCheck.Test.make ~name:"counts merge is associative" ~count:200
    QCheck.(triple counts_arb counts_arb counts_arb)
    (fun (a, b, c) ->
      C.merge_counts (C.merge_counts a b) c
      = C.merge_counts a (C.merge_counts b c))

let test_merge_order_independent =
  QCheck.Test.make ~name:"counts merge is order-independent" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 8) counts_arb)
    (fun cs ->
      let fold l =
        List.fold_left C.merge_counts (C.zero_counts ()) l
      in
      fold cs = fold (List.rev cs)
      && fold cs = fold (List.sort compare cs))

let suite =
  [ Alcotest.test_case "cold then hit" `Quick test_cold_then_hit;
    Alcotest.test_case "msi states" `Quick test_msi_states;
    Alcotest.test_case "upgrade" `Quick test_upgrade;
    Alcotest.test_case "true sharing" `Quick test_true_sharing;
    Alcotest.test_case "false sharing" `Quick test_false_sharing;
    Alcotest.test_case "own-word false sharing" `Quick test_false_sharing_own_word;
    Alcotest.test_case "write/write false sharing" `Quick test_write_write_false_sharing;
    Alcotest.test_case "one-word blocks" `Quick test_one_word_blocks_no_false_sharing;
    Alcotest.test_case "replacement" `Quick test_replacement;
    Alcotest.test_case "lru" `Quick test_lru;
    Alcotest.test_case "provider" `Quick test_provider;
    QCheck_alcotest.to_alcotest test_counts_consistency;
    QCheck_alcotest.to_alcotest test_single_writer_no_sharing_misses;
    Alcotest.test_case "per-block tracking" `Quick test_per_block_tracking;
    Alcotest.test_case "line tracking" `Quick test_line_tracking;
    Alcotest.test_case "shared words" `Quick test_shared_words;
    Alcotest.test_case "tracking off raises" `Quick test_tracking_off_raises;
    Alcotest.test_case "counts arithmetic" `Quick test_counts_arithmetic;
    Alcotest.test_case "miss rates" `Quick test_miss_rates;
    Alcotest.test_case "touch matches access" `Quick test_touch_matches_access;
    Alcotest.test_case "bad config" `Quick test_bad_config;
    QCheck_alcotest.to_alcotest test_merge_associative;
    QCheck_alcotest.to_alcotest test_merge_order_independent ]
