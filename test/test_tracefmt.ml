(* Trace format v2: round-trips through both on-disk formats, streamed
   replay identity against the in-memory engine, and corruption
   detection (truncation anywhere, CRC damage naming the bad block). *)

module Ct = Fs_trace.Cell_trace
module R = Fs_replay.Replay
module C = Fs_cache.Mpcache
module Layout = Fs_layout.Layout
module W = Fs_workloads.Workload
module Ws = Fs_workloads.Workloads
module Sim = Falseshare.Sim
module E = Falseshare.Experiments

let tmp tag = Filename.temp_file ("fstracefmt-" ^ tag) ".fstrace"

let with_tmp tag f =
  let path = tmp tag in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* one recorded trace per workload, shared across every property case *)
let recorded : (string, W.t * int * Fs_ir.Ast.program * Sim.recorded) Hashtbl.t
    =
  Hashtbl.create 16

let trace_of name =
  match Hashtbl.find_opt recorded name with
  | Some x -> x
  | None ->
    let w = Ws.find name in
    let nprocs = w.W.fig3_procs in
    let prog = w.W.build ~nprocs ~scale:w.W.default_scale in
    let r = Sim.record prog ~nprocs in
    let x = (w, nprocs, prog, r) in
    Hashtbl.add recorded name x;
    x

let names = List.map (fun (w : W.t) -> w.W.name) Ws.all

let read_all path = In_channel.with_open_bin path In_channel.input_all

let write_all path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* ------------------------------------------------------------------ *)
(* Round-trip property: for every workload, either format, any block
   granularity, the file reads back equal, and replaying the streamed
   file through any of the workload's layout versions at 16B or 128B
   lands on counts bit-identical to the in-memory engine.             *)

let prop_roundtrip =
  QCheck.Test.make
    ~name:
      "disk round-trip + streamed replay identity (workloads x formats x \
       versions x {16,128}B)"
    ~count:48
    QCheck.(
      quad
        (int_range 0 (List.length names - 1))
        (int_range 0 23) (int_range 1 300) bool)
    (fun (wi, mix, block_events, big_block) ->
      let name = List.nth names wi in
      let w, nprocs, prog, r = trace_of name in
      let trace = r.Sim.trace in
      let format = if mix / 3 mod 2 = 0 then Ct.V1 else Ct.V2 in
      let block = if big_block then 128 else 16 in
      let shards = 1 + (mix / 6 mod 2) in
      let version =
        List.nth w.W.versions (mix mod List.length w.W.versions)
      in
      with_tmp "prop" @@ fun path ->
      Ct.write_file ~format ~block_events trace path;
      let back = Ct.read_file path in
      if not (Ct.equal trace back) then
        QCheck.Test.fail_reportf "%s: %s round-trip not equal" name
          (match format with Ct.V1 -> "v1" | Ct.V2 -> "v2");
      let plan =
        E.plan_for w version prog ~nprocs ~scale:w.W.default_scale
      in
      let layout = Layout.realize prog plan ~block in
      let config = C.default_config ~nprocs ~block in
      let reference =
        (R.simulate_sharded trace ~shards:1 ~layout ~config).R.counts
      in
      let s = Ct.of_file_stream path in
      let st = R.simulate_sharded_stream s ~shards ~layout ~config in
      Ct.Stream.close s;
      if st.R.counts <> reference then
        QCheck.Test.fail_reportf
          "%s: streamed %s counts differ from in-memory (block %d, %d \
           shard(s))"
          name
          (match format with Ct.V1 -> "v1" | Ct.V2 -> "v2")
          block shards;
      true)

(* ------------------------------------------------------------------ *)
(* Corruption: v2 must refuse damaged input, never mis-decode it.      *)

let expect_corrupt what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Corrupt" what
  | exception Ct.Corrupt msg -> msg

(* little-endian u64 at [off], as an int *)
let u64_at s off =
  let v = ref 0 in
  for k = 7 downto 0 do
    v := (!v lsl 8) lor Char.code s.[off + k]
  done;
  !v

let v2_bytes ?(block_events = 1024) name =
  let _, _, _, r = trace_of name in
  let path = tmp "corrupt" in
  Ct.write_file ~format:Ct.V2 ~block_events r.Sim.trace path;
  let s = read_all path in
  Sys.remove path;
  s

let test_truncation () =
  let whole = v2_bytes "pverify" in
  let len = String.length whole in
  let index_off = u64_at whole (len - 24) in
  (* mid-block, mid-footer (just before the index), and mid-index: every
     cut destroys the trailer, so both readers refuse at open *)
  List.iter
    (fun (what, cut) ->
      with_tmp "trunc" @@ fun path ->
      write_all path (String.sub whole 0 cut);
      ignore (expect_corrupt (what ^ " (stream)")
                (fun () -> Ct.of_file_stream path));
      ignore (expect_corrupt (what ^ " (read_file)")
                (fun () -> Ct.read_file path)))
    [ ("mid-block", index_off / 2);
      ("mid-footer", index_off - 4);
      ("mid-index", index_off + ((len - 24 - index_off) / 2));
      ("mid-trailer", len - 9) ]

let test_crc_corruption () =
  let whole = v2_bytes "pverify" in
  let len = String.length whole in
  let index_off = u64_at whole (len - 24) in
  (* flip one payload byte well past the tiny header: the index still
     parses, so the stream opens — but decoding must stop at exactly the
     damaged block and name it *)
  let p = index_off * 2 / 3 in
  let damaged = Bytes.of_string whole in
  Bytes.set damaged p (Char.chr (Char.code (Bytes.get damaged p) lxor 0x55));
  with_tmp "crc" @@ fun path ->
  write_all path (Bytes.to_string damaged);
  let s = Ct.of_file_stream path in
  let buf = Array.make (Ct.Stream.max_block_events s) 0 in
  let bad = ref (-1) in
  let msg = ref "" in
  (try
     for k = 0 to Ct.Stream.nblocks s - 1 do
       ignore (Ct.Stream.decode_block s k buf)
     done
   with Ct.Corrupt m ->
     msg := m;
     (* recover which block the message names and check it also fails in
        isolation while its neighbors still decode *)
     Scanf.sscanf m "block %d" (fun k -> bad := k));
  Alcotest.(check bool) "one block failed" true (!bad >= 0);
  let prefix = Printf.sprintf "block %d" !bad in
  Alcotest.(check bool)
    (Printf.sprintf "message %S names block %d" !msg !bad)
    true
    (String.length !msg >= String.length prefix
    && String.sub !msg 0 (String.length prefix) = prefix);
  ignore
    (expect_corrupt "damaged block in isolation"
       (fun () -> Ct.Stream.decode_block s !bad buf));
  if !bad > 0 then ignore (Ct.Stream.decode_block s (!bad - 1) buf);
  if !bad < Ct.Stream.nblocks s - 1 then
    ignore (Ct.Stream.decode_block s (!bad + 1) buf);
  Ct.Stream.close s

let test_index_crc () =
  let whole = v2_bytes "pverify" in
  let len = String.length whole in
  let index_off = u64_at whole (len - 24) in
  let p = index_off + ((len - 24 - index_off) / 2) in
  let damaged = Bytes.of_string whole in
  Bytes.set damaged p (Char.chr (Char.code (Bytes.get damaged p) lxor 0x55));
  with_tmp "idx" @@ fun path ->
  write_all path (Bytes.to_string damaged);
  ignore
    (expect_corrupt "damaged index" (fun () -> Ct.of_file_stream path))

(* ------------------------------------------------------------------ *)
(* Conversion: v2 -> v1 -> v2 through the streaming Writer preserves
   the event stream exactly (the CLI's `trace convert` path).          *)

let test_convert_roundtrip () =
  let _, _, _, r = trace_of "mp3d" in
  let trace = r.Sim.trace in
  let convert src format dst =
    let s = Ct.of_file_stream src in
    let wr =
      Ct.Writer.create ~format ~block_events:512 ~vars:(Ct.Stream.vars s)
        ~nprocs:(Ct.Stream.nprocs s) dst
    in
    Ct.Stream.iter_chunks
      (fun buf n ->
        for i = 0 to n - 1 do
          Ct.Writer.push wr buf.(i)
        done)
      s;
    Ct.Writer.close wr;
    Ct.Stream.close s
  in
  with_tmp "conv2" @@ fun p2 ->
  with_tmp "conv1" @@ fun p1 ->
  with_tmp "conv2b" @@ fun p2b ->
  Ct.write_file ~format:Ct.V2 trace p2;
  convert p2 Ct.V1 p1;
  convert p1 Ct.V2 p2b;
  Alcotest.(check bool) "sniffed v1" true (Ct.file_format p1 = Ct.V1);
  Alcotest.(check bool) "sniffed v2" true (Ct.file_format p2b = Ct.V2);
  Alcotest.(check bool) "v2 -> v1 -> v2 equal" true
    (Ct.equal trace (Ct.read_file p2b))

let suite =
  [ Alcotest.test_case "v2 truncation refused (block/footer/index/trailer)"
      `Quick test_truncation;
    Alcotest.test_case "v2 CRC damage names the bad block" `Quick
      test_crc_corruption;
    Alcotest.test_case "v2 index damage refused at open" `Quick test_index_crc;
    Alcotest.test_case "convert round-trip v2 -> v1 -> v2" `Quick
      test_convert_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip ]
