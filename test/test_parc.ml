(* Tests for the ParC concrete syntax: print/parse round-trips over every
   benchmark program, plus targeted parses and error cases. *)

module Pp = Fs_ir.Pp
module Parser = Fs_parc.Parser
module Lexer = Fs_parc.Lexer
module W = Fs_workloads.Workload

(* The robust round-trip property: printing, parsing and re-printing is a
   fixed point (ASTs may normalize, e.g. negated literals). *)
let roundtrip_fixed name prog =
  let s1 = Pp.program_to_string prog in
  match Parser.parse_result s1 with
  | Error m -> Alcotest.fail (name ^ ": " ^ m)
  | Ok p2 ->
    let s2 = Pp.program_to_string p2 in
    Alcotest.(check string) (name ^ " round-trips") s1 s2

let test_roundtrip_workloads () =
  List.iter
    (fun (w : W.t) ->
      roundtrip_fixed w.name (w.build ~nprocs:5 ~scale:1);
      roundtrip_fixed (w.name ^ "@12") (w.build ~nprocs:12 ~scale:2))
    Fs_workloads.Workloads.every

let test_roundtrip_is_ast_identical () =
  (* for most programs the AST itself round-trips exactly *)
  List.iter
    (fun (w : W.t) ->
      let p = w.build ~nprocs:4 ~scale:1 in
      let p2 = Parser.parse (Pp.program_to_string p) in
      Alcotest.(check bool) (w.name ^ " ast equal") true (p = p2))
    Fs_workloads.Workloads.every

let test_parse_literal_program () =
  let src = {|
program demo;

struct node {
  int hdr;
  int vals[4];
  lock l;
}

shared int a[8];
shared struct node nodes[3];
shared lock biglock;
shared float x;

void helper(base, n) {
  for (j = 0; j < n; j++) {
    a[base + j] = a[base + j] + 1;
  }
  return;
}

void main() {
  let mine = pid * 2;
  helper(mine, 2);
  barrier;
  if (pid == 0) {
    lock(biglock);
    x = 2.5;
    nodes[0].vals[pid] = a[0] `max` a[1];
    unlock(biglock);
  } else {
    let t = 0;
    while (t < 3) {
      t = t + 1;
    }
  }
}
|} in
  match Parser.parse_and_validate src with
  | Error errs -> Alcotest.fail (String.concat "; " errs)
  | Ok p ->
    Alcotest.(check string) "name" "demo" p.Fs_ir.Ast.pname;
    Alcotest.(check int) "two funcs" 2 (List.length p.Fs_ir.Ast.funcs);
    Alcotest.(check int) "four globals" 4 (List.length p.Fs_ir.Ast.globals);
    (* and it actually runs *)
    let layout = Fs_layout.Layout.default p ~block:64 in
    let r =
      Fs_interp.Interp.run_to_sink p ~nprocs:4 ~layout ~sink:Fs_trace.Sink.null
    in
    (match Fs_interp.Interp.read_global r "a" 0 with
     | Fs_interp.Value.Vint 1 -> ()
     | v -> Alcotest.failf "a[0] = %a" Fs_interp.Value.pp v)

let test_store_vs_set_disambiguation () =
  let src = {|
program d;
shared int g;
void main() {
  let x = 1;
  x = x + 1;
  g = x;
}
|} in
  let p = Parser.parse src in
  let main = Fs_ir.Ast.find_func p "main" in
  match main.Fs_ir.Ast.body with
  | [ Fs_ir.Ast.Decl _; Fs_ir.Ast.Set ("x", _); Fs_ir.Ast.Store ({ base = "g"; _ }, _) ]
    -> ()
  | _ -> Alcotest.fail "wrong statement kinds"

let test_call_vs_assign_disambiguation () =
  let src = {|
program d;
shared int g;
void f(a) { g = a; return 1; }
void main() {
  let r = 0;
  r = f(3);
  f(4);
}
|} in
  let p = Parser.parse src in
  let main = Fs_ir.Ast.find_func p "main" in
  match main.Fs_ir.Ast.body with
  | [ Fs_ir.Ast.Decl _;
      Fs_ir.Ast.Call { ret = Some "r"; callee = "f"; _ };
      Fs_ir.Ast.Call { ret = None; callee = "f"; _ } ] -> ()
  | _ -> Alcotest.fail "call forms misparsed"

let test_precedence () =
  let src = {|
program d;
shared int g;
void main() {
  g = 1 + 2 * 3;
  g = (1 + 2) * 3;
  g = 1 < 2 && 3 < 4 || 0 == 1;
}
|} in
  let p = Parser.parse src in
  let main = Fs_ir.Ast.find_func p "main" in
  let open Fs_ir.Ast in
  (match main.body with
   | [ Store (_, Binop (Add, Int_lit 1, Binop (Mul, Int_lit 2, Int_lit 3)));
       Store (_, Binop (Mul, Binop (Add, Int_lit 1, Int_lit 2), Int_lit 3));
       Store (_, Binop (Or, Binop (And, _, _), Binop (Eq, _, _))) ] -> ()
   | _ -> Alcotest.fail "precedence wrong")

let test_parse_errors () =
  let bad what src =
    match Parser.parse_result src with
    | Ok _ -> Alcotest.fail ("expected parse error: " ^ what)
    | Error m ->
      Alcotest.(check bool) (what ^ " mentions a line") true
        (Tutil.contains m "line")
  in
  bad "missing program" "shared int x;";
  bad "unclosed block" "program p;\nvoid main() { let x = 1;";
  bad "bad token" "program p;\nvoid main() { let x = 1 ? 2; }";
  bad "mismatched loop var" "program p;\nvoid main() { for (a = 0; b < 3; a++) {} }";
  bad "missing semicolon" "program p;\nvoid main() { barrier }"

let test_comments_and_whitespace () =
  let src = {|
program d; // line comment
/* block
   comment */
shared int g;
void main() { g = 1; /* inline */ g = 2; }
|} in
  match Parser.parse_result src with
  | Ok p -> Alcotest.(check int) "stmts" 2
              (List.length (Fs_ir.Ast.find_func p "main").Fs_ir.Ast.body)
  | Error m -> Alcotest.fail m

let test_float_roundtrip () =
  let open Fs_ir.Dsl in
  let p =
    Fs_ir.Validate.validate_exn
      (program ~name:"f" ~globals:[ ("x", float_t) ]
         [ fn "main" [] [ (v "x") <-- f 3.14159; (v "x") <-- f (-0.5) ] ])
  in
  roundtrip_fixed "floats" p

let test_lexer_tokens () =
  let toks = Lexer.tokenize "a <= 3 && `min` 0x1.8p+1 // c" in
  let kinds = List.map fst toks in
  Alcotest.(check bool) "has BQ" true
    (List.mem (Lexer.BQ_IDENT "min") kinds);
  Alcotest.(check bool) "has hex float" true
    (List.exists (function Lexer.FLOAT f -> f = 3.0 | _ -> false) kinds);
  Alcotest.(check bool) "ends with EOF" true
    (match List.rev kinds with Lexer.EOF :: _ -> true | _ -> false)

let suite =
  [ Alcotest.test_case "workload round-trips" `Quick test_roundtrip_workloads;
    Alcotest.test_case "ast-identical round-trips" `Quick test_roundtrip_is_ast_identical;
    Alcotest.test_case "literal program" `Quick test_parse_literal_program;
    Alcotest.test_case "store vs set" `Quick test_store_vs_set_disambiguation;
    Alcotest.test_case "call vs assign" `Quick test_call_vs_assign_disambiguation;
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
    Alcotest.test_case "float round-trip" `Quick test_float_roundtrip;
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens ]
