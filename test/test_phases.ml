(* Tests for the phase-resolved forensics: the epoch segmenter's sum
   property over the whole benchmark suite, its agreement with the
   interpreter's barrier count, the static cross-check on pverify, and
   the hot-line report's attribution of topopt's revolving assignment
   array. *)

module Phases = Falseshare.Phases
module Hotlines = Falseshare.Hotlines
module Sim = Falseshare.Sim
module E = Falseshare.Experiments
module Emit = Falseshare.Emit
module C = Fs_cache.Mpcache
module W = Fs_workloads.Workload
module Ws = Fs_workloads.Workloads
module Plan = Fs_layout.Plan
module Json = Fs_obs.Json

let sum_epochs epochs =
  let total = C.zero_counts () in
  List.iter
    (fun (e : Phases.epoch) -> C.add_into total (Phases.epoch_total e))
    epochs;
  total

(* Per-epoch counters are snapshots of the same monotone accumulators, so
   they must sum exactly to the whole-run counts — for every workload, at
   a false-sharing-prone and a word-sized block.  [proc_counts] is the
   per-processor ground truth the snapshots were cut from. *)
let test_epoch_sums () =
  List.iter
    (fun (w : W.t) ->
      List.iter
        (fun block ->
          let nprocs = 4 in
          let prog = w.W.build ~nprocs ~scale:1 in
          let recorded = Sim.record prog ~nprocs in
          let p = Phases.analyze ~recorded prog Plan.empty ~nprocs ~block in
          let what = Printf.sprintf "%s@%dB" w.W.name block in
          Alcotest.(check bool)
            (what ^ ": epochs sum to aggregate")
            true
            (sum_epochs p.Phases.epochs = p.Phases.aggregate);
          let nepochs =
            recorded.Sim.interp.Fs_interp.Interp.barrier_episodes + 1
          in
          Alcotest.(check int)
            (what ^ ": one epoch per barrier episode plus the tail")
            nepochs
            (List.length p.Phases.epochs);
          (* per processor too: each proc's epoch deltas rebuild its row *)
          let per_proc = Array.init nprocs (fun _ -> C.zero_counts ()) in
          List.iter
            (fun (e : Phases.epoch) ->
              Array.iteri
                (fun i c -> C.add_into per_proc.(i) c)
                e.Phases.per_proc)
            p.Phases.epochs;
          let whole = C.zero_counts () in
          Array.iter (C.add_into whole) per_proc;
          Alcotest.(check bool)
            (what ^ ": per-proc deltas sum too")
            true
            (whole = p.Phases.aggregate))
        [ 16; 128 ])
    Ws.all

let test_pverify_cross_check () =
  let w = Ws.find "pverify" in
  let nprocs = w.W.fig3_procs in
  let prog = w.W.build ~nprocs ~scale:w.W.default_scale in
  let p = Phases.analyze prog Plan.empty ~nprocs ~block:128 in
  Alcotest.(check bool) "no violations" true (p.Phases.violations = []);
  Alcotest.(check bool)
    "some epoch observes write-sharing" true
    (List.exists
       (fun (e : Phases.epoch) -> e.Phases.write_shared <> [])
       p.Phases.epochs)

(* The CLI's JSON must carry the same sum property: per-epoch per-proc
   counts summing exactly to the aggregate, after a serialization
   round-trip. *)
let test_phases_json_sums () =
  let w = Ws.find "pverify" in
  let nprocs = w.W.fig3_procs in
  let prog = w.W.build ~nprocs ~scale:w.W.default_scale in
  let p = Phases.analyze prog Plan.empty ~nprocs ~block:128 in
  let j =
    match Json.of_string (Json.to_string (Emit.phases p)) with
    | Ok j -> j
    | Error e -> Alcotest.fail ("phases JSON does not parse: " ^ e)
  in
  let geti path j =
    match Option.bind (Json.member path j) Json.get_int with
    | Some n -> n
    | None -> Alcotest.fail ("missing int field " ^ path)
  in
  let epochs =
    match Option.bind (Json.member "epochs" j) Json.get_list with
    | Some l -> l
    | None -> Alcotest.fail "missing epochs"
  in
  let field name =
    let agg =
      match Json.member "aggregate" j with
      | Some a -> geti name a
      | None -> Alcotest.fail "missing aggregate"
    in
    let from_epochs =
      List.fold_left
        (fun acc e ->
          let per_proc =
            match Option.bind (Json.member "per_proc" e) Json.get_list with
            | Some l -> l
            | None -> Alcotest.fail "missing per_proc"
          in
          List.fold_left (fun acc c -> acc + geti name c) acc per_proc)
        0 epochs
    in
    Alcotest.(check int) ("json sum: " ^ name) agg from_epochs
  in
  List.iter field
    [ "reads"; "writes"; "cold"; "replacement"; "true_sharing";
      "false_sharing"; "invalidations"; "upgrades" ]

(* Under the compiler's layout (cost transposed, the gain field behind
   indirection), the revolving dynamically partitioned assignment array is
   what remains: it must rank first, classified as false sharing, with a
   healthy migration rate. *)
let test_topopt_hotlines () =
  let w = Ws.find "topopt" in
  let nprocs = w.W.fig3_procs in
  let scale = w.W.default_scale in
  let prog = w.W.build ~nprocs ~scale in
  let plan = E.plan_for w W.C prog ~nprocs ~scale in
  let h = Hotlines.analyze prog plan ~nprocs ~block:128 in
  match h.Hotlines.hot with
  | [] -> Alcotest.fail "no hot lines"
  | top :: _ ->
    Alcotest.(check string) "assign owns the top line" "assign"
      top.Hotlines.owner;
    Alcotest.(check bool) "classified as false sharing" true
      (top.Hotlines.verdict = Hotlines.Falsely_shared);
    Alcotest.(check bool)
      (Printf.sprintf "non-trivial ping-pong score (%.3f)" top.Hotlines.score)
      true
      (top.Hotlines.score > 0.2);
    Alcotest.(check bool) "top line has false-sharing misses" true
      (top.Hotlines.counts.C.false_sh > 0)

(* The hot-line report's per-line counters are the per-block counters: an
   independent simulation of the same recorded trace must agree, line by
   line. *)
let test_hotlines_agree_with_per_block () =
  let w = Ws.find "pverify" in
  let nprocs = w.W.fig3_procs in
  let prog = w.W.build ~nprocs ~scale:w.W.default_scale in
  let recorded = Sim.record prog ~nprocs in
  let h = Hotlines.analyze ~recorded ~top:1000 prog [] ~nprocs ~block:128 in
  let run =
    Sim.cache_sim ~track_blocks:true ~recorded prog [] ~nprocs ~block:128
  in
  Alcotest.(check bool) "some lines" true (h.Hotlines.hot <> []);
  List.iter
    (fun (x : Hotlines.hot) ->
      match List.assoc_opt x.Hotlines.line.C.line_block run.Sim.per_block with
      | None -> Alcotest.fail "hot line missing from per_block"
      | Some c ->
        Alcotest.(check bool)
          (Printf.sprintf "line 0x%x counts agree" x.Hotlines.line.C.line_block)
          true
          (x.Hotlines.counts = c))
    h.Hotlines.hot;
  (* and the line set covers every block that missed *)
  Alcotest.(check int) "one line per tracked block"
    (List.length run.Sim.per_block)
    (List.length h.Hotlines.hot + h.Hotlines.dropped)

let test_pipeline_epochs () =
  let w = Ws.find "pverify" in
  let nprocs = w.W.fig3_procs in
  let prog = w.W.build ~nprocs ~scale:w.W.default_scale in
  let r = Falseshare.Pipeline.run ~epochs:true prog ~nprocs ~block:128 in
  match r.Falseshare.Pipeline.epochs with
  | None -> Alcotest.fail "epochs requested but absent"
  | Some es ->
    Alcotest.(check bool) "epochs sum to the run's counts" true
      (sum_epochs es = r.Falseshare.Pipeline.cache.Sim.counts)

let suite =
  [ Alcotest.test_case "epoch sums (all workloads x {16,128}B)" `Slow
      test_epoch_sums;
    Alcotest.test_case "pverify cross-check" `Quick test_pverify_cross_check;
    Alcotest.test_case "phases json sums" `Quick test_phases_json_sums;
    Alcotest.test_case "topopt hot lines" `Quick test_topopt_hotlines;
    Alcotest.test_case "hot lines agree with per-block" `Quick
      test_hotlines_agree_with_per_block;
    Alcotest.test_case "pipeline epochs" `Quick test_pipeline_epochs ]
