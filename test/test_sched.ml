(* Tests for the deterministic work-stealing runtime: semantic
   correctness under stealing, seed reproducibility down to the bit,
   steal events in both trace formats, the scheduler's preconditions,
   and the static planner's designed blindness to the scheduler
   globals. *)

open Fs_ir
module Sched = Fs_sched.Sched
module Interp = Fs_interp.Interp
module Value = Fs_interp.Value
module Cell_trace = Fs_trace.Cell_trace
module Cell_event = Fs_trace.Cell_event
module Mpcache = Fs_cache.Mpcache
module Sim = Falseshare.Sim
module Phases = Falseshare.Phases
module W = Fs_workloads.Workload

let wl name = Fs_workloads.Workloads.find name

let record ?(seed = 42) (w : W.t) ~nprocs ~scale =
  Sim.record
    ~sched:(Sched.seeded seed)
    (w.W.build ~nprocs ~scale)
    ~nprocs

let int_of = function
  | Value.Vint n -> n
  | Value.Vfloat _ -> Alcotest.fail "expected an int"

(* the answer cannot depend on who stole what *)
let test_fib_result () =
  let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) in
  List.iter
    (fun (nprocs, seed) ->
      let r = (record ~seed (wl "fib") ~nprocs ~scale:2).Sim.interp in
      Alcotest.(check int)
        (Printf.sprintf "fib@%d seed %d" nprocs seed)
        (fib 9)
        (int_of (Interp.read_global r "result" 0)))
    [ (1, 7); (2, 7); (4, 7); (4, 1234567); (8, 3) ]

(* dstress counts every task exactly once, wherever it ran *)
let test_dstress_conservation () =
  List.iter
    (fun nprocs ->
      let r = (record (wl "dstress") ~nprocs ~scale:2).Sim.interp in
      Alcotest.(check int)
        (Printf.sprintf "hits sum@%d" nprocs)
        (48 * 2)
        (int_of (Interp.read_global r "result" 0)))
    [ 1; 2; 4; 8 ]

(* identical seeds: bit-identical traces, and identical cache counts
   across record/replay, block sizes, and shard counts *)
let test_same_seed_identical () =
  List.iter
    (fun (w : W.t) ->
      let nprocs = 4 and scale = 1 in
      let r1 = record ~seed:42 w ~nprocs ~scale in
      let r2 = record ~seed:42 w ~nprocs ~scale in
      Alcotest.(check bool)
        (w.W.name ^ ": same seed, same trace")
        true
        (Cell_trace.equal r1.Sim.trace r2.Sim.trace);
      let prog = w.W.build ~nprocs ~scale in
      List.iter
        (fun block ->
          let base = ref None in
          List.iter
            (fun (recorded, shards) ->
              let run =
                Sim.cache_sim ~shards ~recorded prog [] ~nprocs ~block
              in
              match !base with
              | None -> base := Some run.Sim.counts
              | Some c ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: counts %dB shards=%d" w.W.name block
                     shards)
                  true
                  (c = run.Sim.counts))
            [ (r1, 1); (r2, 1); (r1, 2); (r2, 3); (r1, 4) ])
        [ 16; 128 ])
    Fs_workloads.Workloads.dynamic

(* distinct seeds schedule differently (the whole point of seeding) *)
let test_distinct_seeds_diverge () =
  let w = wl "dstress" in
  let r1 = record ~seed:1 w ~nprocs:4 ~scale:2 in
  let r2 = record ~seed:2 w ~nprocs:4 ~scale:2 in
  Alcotest.(check bool)
    "different seeds, different traces" false
    (Cell_trace.equal r1.Sim.trace r2.Sim.trace)

let steal_stats trace =
  let steals = ref 0 in
  Cell_trace.iter
    (function
      | Cell_event.Steal { thief; victim; task } ->
        incr steals;
        Alcotest.(check bool) "thief <> victim" true (thief <> victim);
        Alcotest.(check bool) "task id sane" true (task >= 0)
      | _ -> ())
    trace;
  !steals

(* steals really happen, are tagged in the trace, and agree with the
   runtime's own counters *)
let test_steal_events () =
  let r = record (wl "dstress") ~nprocs:4 ~scale:2 in
  let steals = steal_stats r.Sim.trace in
  Alcotest.(check bool) "some steals" true (steals > 0);
  match r.Sim.interp.Interp.sched with
  | None -> Alcotest.fail "dynamic run must report scheduler stats"
  | Some s ->
    Alcotest.(check int) "trace steals = stats steals" s.Sched.steals steals;
    Alcotest.(check bool) "tasks spawned" true (s.Sched.tasks > 0);
    Alcotest.(check bool) "attempts >= steals" true
      (s.Sched.steal_attempts >= s.Sched.steals)

(* steal events survive both on-disk formats *)
let test_trace_formats_roundtrip () =
  let r = record (wl "fib") ~nprocs:4 ~scale:1 in
  List.iter
    (fun format ->
      let path =
        Filename.temp_file "fs_sched_test"
          (Printf.sprintf ".v%d.fstrace" (Cell_trace.format_version format))
      in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Cell_trace.write_file ~format r.Sim.trace path;
          let back = Cell_trace.read_file path in
          Alcotest.(check bool)
            (Printf.sprintf "v%d round-trip" (Cell_trace.format_version format))
            true
            (Cell_trace.equal r.Sim.trace back)))
    [ Cell_trace.V1; Cell_trace.V2 ]

(* running a task-parallel program without a seed is an error, never a
   silent default *)
let test_seed_required () =
  let prog = (wl "fib").W.build ~nprocs:2 ~scale:1 in
  match Interp.record prog ~nprocs:2 with
  | (_ : Cell_trace.t * Interp.result) ->
    Alcotest.fail "recorded a dynamic program without a seed"
  | exception Interp.Runtime_error msg ->
    Alcotest.(check bool) "message names the flag" true
      (Tutil.contains msg "--sched-seed")

(* spawn without the scheduler globals is a build error, pointing at
   Sched.instrument *)
let test_instrument_required () =
  let open Dsl in
  let prog =
    Validate.validate_exn
      (program ~name:"bare" ~globals:[ ("x", int_t) ]
         [ fn "task" [] [ (v "x") <-- i 1 ];
           fn "main" [] [ spawn "task" []; sync ] ])
  in
  match Interp.record ~sched:(Sched.seeded 1) prog ~nprocs:2 with
  | (_ : Cell_trace.t * Interp.result) ->
    Alcotest.fail "ran a spawn without scheduler globals"
  | exception Interp.Runtime_error msg ->
    Alcotest.(check bool) "message names Sched.instrument" true
      (Tutil.contains msg "Sched.instrument")

(* a barrier reached from a spawned task is rejected statically *)
let test_barrier_in_task_rejected () =
  let open Dsl in
  let prog =
    program ~name:"bad" ~globals:[ ("x", int_t) ]
      [ fn "leaf" [] [ barrier ];
        fn "task" [] [ call "leaf" [] ];
        fn "main" [] [ spawn "task" []; sync ] ]
  in
  match Validate.check prog with
  | Ok () -> Alcotest.fail "validated a barrier inside a spawned task"
  | Error msgs ->
    Alcotest.(check bool) "names the spawned function" true
      (List.exists (fun m -> Tutil.contains m "task") msgs)

(* instrument is idempotent and its capacity is recoverable *)
let test_instrument_shape () =
  let prog = (wl "taskbag").W.build ~nprocs:4 ~scale:1 in
  Alcotest.(check bool) "instrument idempotent" true
    (Sched.instrument ~nprocs:4 prog == prog);
  Alcotest.(check (option int))
    "capacity recovered" (Some Sched.default_cap)
    (Sched.deque_cap ~nprocs:4 prog)

(* the phase cross-check exempts the scheduler globals — their
   write-sharing is by design invisible to the static analyses — while
   still flagging the task-scattered data writes the planner missed *)
let test_phases_exemption () =
  let w = wl "dstress" in
  let nprocs = 4 in
  let prog = w.W.build ~nprocs ~scale:1 in
  let t =
    Phases.analyze ~sched:(Sched.seeded 42) prog [] ~nprocs ~block:64
  in
  List.iter
    (fun (viol : Phases.violation) ->
      Alcotest.(check bool)
        ("no __sched_ violation: " ^ viol.Phases.vvar)
        false
        (Sched.is_sched_var viol.Phases.vvar))
    t.Phases.violations;
  Alcotest.(check bool) "the stolen data writes are flagged" true
    (List.exists
       (fun (viol : Phases.violation) -> viol.Phases.vvar = "hits")
       t.Phases.violations)

let suite =
  [ Alcotest.test_case "fib result" `Quick test_fib_result;
    Alcotest.test_case "dstress conservation" `Quick test_dstress_conservation;
    Alcotest.test_case "same seed identical" `Quick test_same_seed_identical;
    Alcotest.test_case "distinct seeds diverge" `Quick
      test_distinct_seeds_diverge;
    Alcotest.test_case "steal events" `Quick test_steal_events;
    Alcotest.test_case "trace formats round-trip" `Quick
      test_trace_formats_roundtrip;
    Alcotest.test_case "seed required" `Quick test_seed_required;
    Alcotest.test_case "instrument required" `Quick test_instrument_required;
    Alcotest.test_case "barrier in task rejected" `Quick
      test_barrier_in_task_rejected;
    Alcotest.test_case "instrument shape" `Quick test_instrument_shape;
    Alcotest.test_case "phases exemption" `Quick test_phases_exemption ]
