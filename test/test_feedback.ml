(* Tests for the profile-guided repair loop: candidate extraction from
   synthetic hot-line reports, fixpoint termination and monotone
   non-regression over the whole suite, the Topopt acceptance bar, and
   semantic transparency of the refined (F) layouts. *)

open Fs_ir
module W = Fs_workloads.Workload
module Ws = Fs_workloads.Workloads
module Plan = Fs_layout.Plan
module Layout = Fs_layout.Layout
module C = Fs_cache.Mpcache
module T = Fs_transform.Transform
module Interp = Fs_interp.Interp
module Value = Fs_interp.Value
module Sim = Falseshare.Sim
module H = Falseshare.Hotlines
module R = Fs_feedback.Repair

(* ------------------------------------------------------------------ *)
(* Candidate extraction from synthetic hot-line reports               *)

let block = 64

let mkline ?(reads = 40) ?(writes = 40) ?(writers = 2) blk ww =
  let written = Array.fold_left (fun n m -> if m > 0 then n + 1 else n) 0 ww in
  {
    C.line_block = blk;
    line_reads = reads;
    line_writes = writes;
    writers;
    readers = writers;
    migrations = 10;
    pingpong = 5;
    max_run = 4;
    max_inval_chain = 3;
    written_words = written;
    shared_words = 0;
    word_writers = ww;
  }

let cnt fs =
  let c = C.zero_counts () in
  c.C.false_sh <- fs;
  c

let hot ?(verdict = H.Falsely_shared) ~owner ~fs line =
  { H.line; counts = cnt fs; owner; cell_lo = 0; cell_hi = 0; score = 0.;
    verdict; fix = "" }

let report ~nprocs hots =
  { H.nprocs; block; total = cnt 0; hot = hots; dropped = 0 }

let words masks =
  (* a word_writers array for one [block]-byte line *)
  Array.init (block / Ast.word_size) (fun w ->
      if w < Array.length masks then masks.(w) else 0)

let kind_in cands pred = List.exists (fun (c : R.candidate) -> pred c) cands

let test_extract_busy_scalars () =
  let prog =
    let open Dsl in
    Validate.validate_exn
      (program ~name:"scal" ~structs:[]
         ~globals:[ ("a", int_t); ("b", int_t); ("c", int_t) ]
         [ fn "main" [] [ (v "a") <-- i 1 ] ])
  in
  (* one falsely shared line holding all three scalars *)
  let h =
    report ~nprocs:4
      [ hot ~owner:"a" ~fs:30 (mkline 0 (words [| 1; 2; 4 |])) ]
  in
  match R.extract prog [] h with
  | [ c ] ->
    (match c.R.kind with
     | R.Pad_hot_scalars vars ->
       Alcotest.(check (list string)) "pads all co-allocated scalars"
         [ "a"; "b"; "c" ] vars;
       Alcotest.(check int) "est covers the line" 30 c.R.est_fs;
       Alcotest.(check int) "three pad actions" 3 (List.length c.R.adds)
     | _ -> Alcotest.fail ("unexpected kind: " ^ R.candidate_label c))
  | cands ->
    Alcotest.fail (Printf.sprintf "expected one candidate, got %d"
                     (List.length cands))

let test_extract_partition () =
  let prog =
    let open Dsl in
    Validate.validate_exn
      (program ~name:"part" ~structs:[] ~globals:[ ("arr", arr int_t 16) ]
         [ fn "main" [] [ (v "arr").%(i 0) <-- i 1 ] ])
  in
  (* four contiguous partitions of four cells each, one writer per
     partition: the chunked-regroup inference *)
  let ww = words [| 1; 1; 1; 1; 2; 2; 2; 2; 4; 4; 4; 4; 8; 8; 8; 8 |] in
  let h = report ~nprocs:4 [ hot ~owner:"arr" ~fs:50 (mkline 0 ww) ] in
  let cands = R.extract prog [] h in
  Alcotest.(check bool) "partition candidate present" true
    (kind_in cands (fun c ->
         c.R.kind = R.Partition_array { ways = 4; chunked = true }
         && c.R.adds = [ Plan.Regroup { var = "arr"; ways = 4; chunked = true } ]));
  (* a strided footprint: writers revolve cell by cell with period 4 *)
  let ww = words (Array.init 16 (fun i -> 1 lsl (i mod 4))) in
  let h = report ~nprocs:4 [ hot ~owner:"arr" ~fs:50 (mkline 0 ww) ] in
  let cands = R.extract prog [] h in
  Alcotest.(check bool) "strided candidate present" true
    (kind_in cands (fun c ->
         c.R.kind = R.Partition_array { ways = 4; chunked = false }))

let test_extract_lock () =
  let prog =
    let open Dsl in
    Validate.validate_exn
      (program ~name:"lk" ~structs:[]
         ~globals:[ ("l", lock_t); ("x", int_t) ]
         [ fn "main" [] [ (v "x") <-- i 1 ] ])
  in
  let h =
    report ~nprocs:4 [ hot ~owner:"x" ~fs:20 (mkline 0 (words [| 3; 3 |])) ]
  in
  (* the lock and the datum share the line: the only repair is Pad_locks *)
  (match R.extract prog [] h with
   | [ c ] ->
     Alcotest.(check bool) "lock repair" true (c.R.kind = R.Pad_lock_cells);
     Alcotest.(check bool) "adds pad-locks" true (c.R.adds = [ Plan.Pad_locks ])
   | cands ->
     Alcotest.fail (Printf.sprintf "expected one candidate, got %d"
                      (List.length cands)));
  (* once the plan pads locks, the lock repair is never proposed again *)
  Alcotest.(check bool) "no repeat once padded" false
    (kind_in (R.extract prog [ Plan.Pad_locks ] h) (fun c ->
         c.R.kind = R.Pad_lock_cells))

let test_extract_widen () =
  let prog =
    let open Dsl in
    Validate.validate_exn
      (program ~name:"wd" ~structs:[] ~globals:[ ("vec", arr int_t 8) ]
         [ fn "main" [] [ (v "vec").%(i 0) <-- i 1 ] ])
  in
  let old = Plan.Pad_align { var = "vec"; element = false } in
  let h =
    report ~nprocs:4 [ hot ~owner:"vec" ~fs:15 (mkline 0 (words [| 1; 2 |])) ]
  in
  match R.extract prog [ old ] h with
  | [ c ] ->
    Alcotest.(check bool) "widen" true (c.R.kind = R.Widen_pad);
    Alcotest.(check bool) "drops the old pad" true (c.R.drops = [ old ]);
    Alcotest.(check bool) "adds the element pad" true
      (c.R.adds = [ Plan.Pad_align { var = "vec"; element = true } ])
  | cands ->
    Alcotest.fail (Printf.sprintf "expected one candidate, got %d"
                     (List.length cands))

(* ------------------------------------------------------------------ *)
(* The loop over the real suite                                       *)

let test_fixpoint_monotone () =
  (* every workload, both block sizes: the loop terminates and never
     regresses the plan it starts from *)
  List.iter
    (fun (w : W.t) ->
      let nprocs = w.fig3_procs in
      let prog = w.build ~nprocs ~scale:1 in
      let cplan = (T.plan prog ~nprocs).T.plan in
      let recorded = Sim.record prog ~nprocs in
      List.iter
        (fun block ->
          let r = R.refine ~recorded prog cplan ~nprocs ~block in
          let name what =
            Printf.sprintf "%s/%dB: %s" w.name block what
          in
          Alcotest.(check bool) (name "false sharing never regresses") true
            (r.R.final.C.false_sh <= r.R.initial.C.false_sh);
          Alcotest.(check bool) (name "total misses never regress") true
            (C.misses r.R.final <= C.misses r.R.initial);
          Alcotest.(check bool) (name "terminates within the cap") true
            (R.accepted r <= R.default_options.R.max_iters);
          (* every accepted iteration strictly improved *)
          List.iter
            (fun (it : R.iteration) ->
              match it.R.applied with
              | Some _ ->
                Alcotest.(check bool) (name "accepted iters improve") true
                  (it.R.fs_after < it.R.fs_before
                   && it.R.misses_after <= it.R.misses_before)
              | None -> ())
            r.R.iterations;
          (* the refined plan still validates *)
          Plan.validate prog r.R.plan)
        [ 16; 128 ])
    Ws.all

let test_determinism () =
  let w = Ws.find "raytrace" in
  let nprocs = w.W.fig3_procs in
  let prog = w.W.build ~nprocs ~scale:1 in
  let cplan = (T.plan prog ~nprocs).T.plan in
  let a = R.refine prog cplan ~nprocs ~block:128 in
  let b = R.refine prog cplan ~nprocs ~block:128 in
  Alcotest.(check string) "identical narration" (R.render a) (R.render b);
  Alcotest.(check bool) "identical plan" true (a.R.plan = b.R.plan)

let test_topopt_acceptance () =
  (* the ISSUE bar: repair of topopt's compiler plan at 128B converges in
     at most five iterations and removes at least a quarter of the
     residual false sharing *)
  let w = Ws.find "topopt" in
  let nprocs = 12 in
  let prog = w.W.build ~nprocs ~scale:w.W.default_scale in
  let cplan = (T.plan prog ~nprocs).T.plan in
  let r = R.refine prog cplan ~nprocs ~block:128 in
  Alcotest.(check bool) "residual FS to recover" true
    (r.R.initial.C.false_sh > 0);
  Alcotest.(check bool) "converges within five iterations" true
    (R.accepted r <= 5 && r.R.stop <> R.Iteration_cap);
  Alcotest.(check bool) "removes at least 25% of residual FS" true
    (R.removed_fraction r >= 0.25)

let test_repairs_programmer_locks () =
  (* water's hand plan forgot Pad_locks; the dynamic diagnosis puts it
     back *)
  let w = Ws.find "water" in
  let nprocs = w.W.fig3_procs in
  let scale = w.W.default_scale in
  let prog = w.W.build ~nprocs ~scale in
  let pplan =
    match w.W.programmer_plan with
    | Some f -> f ~nprocs ~scale
    | None -> Alcotest.fail "water has a programmer plan"
  in
  Alcotest.(check bool) "hand plan omits pad-locks" false
    (List.mem Plan.Pad_locks pplan);
  let r = R.refine prog pplan ~nprocs ~block:128 in
  Alcotest.(check bool) "repair restores pad-locks" true
    (List.mem Plan.Pad_locks r.R.plan)

(* ------------------------------------------------------------------ *)
(* Semantic transparency of the refined layouts                       *)

let checksum_global (w : W.t) =
  match w.name with
  | "maxflow" -> "result"
  | "pverify" -> "mismatch"
  | _ -> "checksum"

let test_f_layout_transparency () =
  (* repaired layouts change only addresses, never program results *)
  List.iter
    (fun (w : W.t) ->
      let nprocs = 6 in
      let prog = w.build ~nprocs ~scale:1 in
      let run plan =
        let layout = Layout.realize prog plan ~block:128 in
        let r =
          Interp.run_to_sink prog ~nprocs ~layout ~sink:Fs_trace.Sink.null
        in
        Interp.read_global r (checksum_global w) 0
      in
      let base = run [] in
      let cplan = (T.plan prog ~nprocs).T.plan in
      let f = R.refine prog cplan ~nprocs ~block:128 in
      Alcotest.(check bool)
        (w.name ^ ": repaired layout preserves the result")
        true
        (Value.equal base (run f.R.plan)))
    Ws.all

(* ------------------------------------------------------------------ *)
(* The N/C/P/F experiment driver                                      *)

let test_experiment_rows () =
  let rows =
    Fs_feedback.Repair_experiments.table ~blocks:[ 128 ] ~scale_override:1
      ~jobs:2 ()
  in
  Alcotest.(check int) "one row per workload" (List.length Ws.all)
    (List.length rows);
  List.iter
    (fun (r : Fs_feedback.Repair_experiments.row) ->
      Alcotest.(check bool) (r.name ^ ": F never worse than C") true
        (r.feedback.rcell.false_sharing <= r.compiler.false_sharing);
      match (r.programmer, r.feedback_p) with
      | Some p, Some fp ->
        Alcotest.(check bool) (r.name ^ ": F(P) never worse than P") true
          (fp.rcell.false_sharing <= p.false_sharing)
      | None, None -> ()
      | _ -> Alcotest.fail (r.name ^ ": P and F(P) must appear together"))
    rows

let suite =
  [ Alcotest.test_case "extract: busy scalars" `Quick test_extract_busy_scalars;
    Alcotest.test_case "extract: partition inference" `Quick test_extract_partition;
    Alcotest.test_case "extract: co-allocated lock" `Quick test_extract_lock;
    Alcotest.test_case "extract: widen pad" `Quick test_extract_widen;
    Alcotest.test_case "fixpoint + monotone" `Slow test_fixpoint_monotone;
    Alcotest.test_case "deterministic" `Slow test_determinism;
    Alcotest.test_case "topopt acceptance" `Slow test_topopt_acceptance;
    Alcotest.test_case "repairs programmer locks" `Slow test_repairs_programmer_locks;
    Alcotest.test_case "F layout transparency" `Slow test_f_layout_transparency;
    Alcotest.test_case "N/C/P/F rows" `Slow test_experiment_rows ]
