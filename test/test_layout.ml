(* Tests for transformation plans and their realization as layouts. *)

open Fs_ir
module Plan = Fs_layout.Plan
module Layout = Fs_layout.Layout

let prog =
  let open Dsl in
  Validate.validate_exn
    (program ~name:"t"
       ~structs:
         [ { Ast.sname = "rec_";
             fields = [ ("hdr", int_t); ("per", arr int_t 4); ("l", lock_t) ] } ]
       ~globals:
         [ ("s1", int_t);
           ("s2", int_t);
           ("vec", arr int_t 8);
           ("mat", arr2 int_t 6 4);
           ("recs", arr (struct_t "rec_") 3);
           ("locks", arr lock_t 4);
           ("flat", arr int_t 16);
         ]
       [ fn "main" [] [ (v "s1") <-- i 1 ] ])

let block = 64

let test_default_packed () =
  let l = Layout.default prog ~block in
  (* declaration order, 4 bytes per cell, no padding *)
  Alcotest.(check int) "s1" 0 (Layout.addr l "s1" 0);
  Alcotest.(check int) "s2" 4 (Layout.addr l "s2" 0);
  Alcotest.(check int) "vec[0]" 8 (Layout.addr l "vec" 0);
  Alcotest.(check int) "vec[7]" 36 (Layout.addr l "vec" 7);
  Alcotest.(check int) "mat starts after vec" 40 (Layout.addr l "mat" 0);
  (match Layout.check_disjoint l with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "size covers all" true
    (Layout.size l >= 4 * (2 + 8 + 24 + 18 + 4 + 16))

let test_group_transpose () =
  let plan = [ Plan.Group_transpose { vars = [ "mat" ]; pdv_axis = 1 } ] in
  let l = Layout.realize prog plan ~block in
  (* column p of mat is contiguous and block-aligned *)
  let vl = Layout.lookup l "mat" in
  let addr i j = vl.Layout.addr.((i * 4) + j) in
  for p = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "column %d aligned" p)
      true
      (addr 0 p mod block = 0);
    for i = 0 to 4 do
      Alcotest.(check int) "contiguous within column" (addr 0 p + (4 * (i + 1)))
        (addr (i + 1) p)
    done
  done;
  (* no two columns share a block *)
  let blocks p = List.init 6 (fun i -> addr i p / block) in
  Alcotest.(check bool) "columns in distinct blocks" true
    (List.for_all
       (fun p ->
         List.for_all
           (fun q -> p = q || blocks p <> blocks q)
           [ 0; 1; 2; 3 ])
       [ 0; 1; 2; 3 ]);
  match Layout.check_disjoint l with Ok () -> () | Error e -> Alcotest.fail e

let test_group_multiple_vars () =
  let plan =
    [ Plan.Group_transpose { vars = [ "vec"; "flat" ]; pdv_axis = 0 } ]
  in
  (* vec has extent 8 and flat 16: extents disagree *)
  Alcotest.check_raises "extent mismatch"
    (Plan.Plan_error "group&transpose targets disagree on PDV extent")
    (fun () -> ignore (Layout.realize prog plan ~block))

let test_indirection () =
  let plan = [ Plan.Indirect { var = "recs"; fields = [ "per" ] } ] in
  let l = Layout.realize prog plan ~block in
  let vl = Layout.lookup l "recs" in
  let rec_cells = 6 in
  (* per-field cells carry a pointer-load address; others do not *)
  for r = 0 to 2 do
    for c = 0 to rec_cells - 1 do
      let cell = (r * rec_cells) + c in
      let has_extra = vl.Layout.extra.(cell) >= 0 in
      let in_field = c >= 1 && c < 5 in
      Alcotest.(check bool)
        (Printf.sprintf "extra iff per-field (r=%d c=%d)" r c)
        in_field has_extra
    done
  done;
  (* all of one process's slices share that process's area, and areas of
     different processes do not share blocks *)
  let slice_block p r = vl.Layout.addr.((r * rec_cells) + 1 + p) / block in
  Alcotest.(check bool) "proc areas disjoint" true
    (slice_block 0 0 <> slice_block 1 0);
  Alcotest.(check int) "same proc same area" (slice_block 2 0) (slice_block 2 1);
  match Layout.check_disjoint l with Ok () -> () | Error e -> Alcotest.fail e

let test_pad_align_element () =
  let plan = [ Plan.Pad_align { var = "recs"; element = true } ] in
  let l = Layout.realize prog plan ~block in
  let vl = Layout.lookup l "recs" in
  for r = 0 to 2 do
    Alcotest.(check bool) "record aligned" true (vl.Layout.addr.(r * 6) mod block = 0)
  done;
  let b r = vl.Layout.addr.(r * 6) / block in
  Alcotest.(check bool) "records in own blocks" true (b 0 <> b 1 && b 1 <> b 2)

let test_pad_locks () =
  let plan = [ Plan.Pad_locks ] in
  let l = Layout.realize prog plan ~block in
  let locks = Layout.lookup l "locks" in
  let recs = Layout.lookup l "recs" in
  (* every lock cell gets a block of its own *)
  let lock_blocks =
    List.init 4 (fun k -> locks.Layout.addr.(k) / block)
    @ List.init 3 (fun r -> recs.Layout.addr.((r * 6) + 5) / block)
  in
  Alcotest.(check int) "distinct lock blocks" 7
    (List.length (List.sort_uniq compare lock_blocks));
  (* and no data shares those blocks *)
  let data_blocks = Layout.touched_blocks l "vec" @ Layout.touched_blocks l "s1" in
  Alcotest.(check bool) "no data in lock blocks" true
    (List.for_all (fun b -> not (List.mem b lock_blocks)) data_blocks)

let test_regroup_strided () =
  let plan = [ Plan.Regroup { var = "flat"; ways = 4; chunked = false } ] in
  let l = Layout.realize prog plan ~block in
  let vl = Layout.lookup l "flat" in
  (* elements i and i+4 belong to the same process and land close together;
     elements with different residues never share a block *)
  let blk i = vl.Layout.addr.(i) / block in
  Alcotest.(check bool) "residues separated" true
    (blk 0 <> blk 1 && blk 1 <> blk 2);
  Alcotest.(check int) "same residue same block" (blk 0) (blk 4);
  match Layout.check_disjoint l with Ok () -> () | Error e -> Alcotest.fail e

let test_regroup_chunked () =
  let plan = [ Plan.Regroup { var = "flat"; ways = 4; chunked = true } ] in
  let l = Layout.realize prog plan ~block in
  let vl = Layout.lookup l "flat" in
  let blk i = vl.Layout.addr.(i) / block in
  Alcotest.(check int) "chunk together" (blk 0) (blk 3);
  Alcotest.(check bool) "chunks apart" true (blk 3 <> blk 4)

let test_plan_validation () =
  let bad name plan =
    match Plan.validate prog plan with
    | () -> Alcotest.fail ("expected Plan_error: " ^ name)
    | exception Plan.Plan_error _ -> ()
  in
  bad "unknown var" [ Plan.Pad_align { var = "zzz"; element = false } ];
  bad "double claim"
    [ Plan.Pad_align { var = "vec"; element = false };
      Plan.Regroup { var = "vec"; ways = 2; chunked = false } ];
  bad "regroup scalar" [ Plan.Regroup { var = "s1"; ways = 2; chunked = false } ];
  bad "regroup too many ways" [ Plan.Regroup { var = "vec"; ways = 9; chunked = false } ];
  bad "indirect non-struct" [ Plan.Indirect { var = "vec"; fields = [ "f" ] } ];
  bad "indirect scalar field" [ Plan.Indirect { var = "recs"; fields = [ "hdr" ] } ];
  bad "indirect no fields" [ Plan.Indirect { var = "recs"; fields = [] } ];
  bad "group non-array" [ Plan.Group_transpose { vars = [ "s1" ]; pdv_axis = 0 } ];
  bad "group axis out of range"
    [ Plan.Group_transpose { vars = [ "vec" ]; pdv_axis = 1 } ];
  bad "duplicate pad-locks" [ Plan.Pad_locks; Plan.Pad_locks ]

let test_transformed_vars () =
  let plan =
    [ Plan.Group_transpose { vars = [ "vec"; "flat" ]; pdv_axis = 0 };
      Plan.Pad_align { var = "s1"; element = false };
      Plan.Pad_locks ]
  in
  Alcotest.(check (list string)) "claimed vars" [ "vec"; "flat"; "s1" ]
    (Plan.transformed_vars plan)

let test_merge () =
  let base =
    [ Plan.Group_transpose { vars = [ "mat" ]; pdv_axis = 1 };
      Plan.Pad_locks ]
  in
  (* disjoint delta: appended, with pad-locks deduplicated *)
  let delta =
    [ Plan.Pad_align { var = "s1"; element = false }; Plan.Pad_locks ]
  in
  let merged = Plan.merge base delta in
  Alcotest.(check int) "pad-locks deduplicated" 3 (List.length merged);
  Plan.validate prog merged;
  Alcotest.(check (list string)) "claims union" [ "mat"; "s1" ]
    (Plan.transformed_vars merged);
  (* the empty delta is a no-op *)
  Alcotest.(check bool) "empty delta" true (Plan.merge base [] = base)

let test_merge_conflicts () =
  let base = [ Plan.Pad_align { var = "vec"; element = false } ] in
  let delta = [ Plan.Regroup { var = "vec"; ways = 2; chunked = true } ] in
  (match Plan.conflicts base delta with
   | [ c ] ->
     Alcotest.(check string) "conflicting var" "vec" c.Plan.cvar;
     Alcotest.(check bool) "base action" true
       (c.Plan.in_base = List.hd base);
     Alcotest.(check bool) "delta action" true
       (c.Plan.in_delta = List.hd delta)
   | cs ->
     Alcotest.fail
       (Printf.sprintf "expected one conflict, got %d" (List.length cs)));
  (* merge refuses, naming the variable and both actions *)
  (match Plan.merge base delta with
   | _ -> Alcotest.fail "expected Plan_error"
   | exception Plan.Plan_error msg ->
     Tutil.check_contains "merge error names the variable" msg "vec";
     Tutil.check_contains "merge error names the base action" msg "pad&align";
     Tutil.check_contains "merge error names the delta action" msg "regroup");
  (* a group-transpose claim conflicts through any of its vars *)
  let base = [ Plan.Group_transpose { vars = [ "vec"; "flat" ]; pdv_axis = 0 } ] in
  let delta = [ Plan.Pad_align { var = "flat"; element = true } ] in
  Alcotest.(check int) "group claim conflicts" 1
    (List.length (Plan.conflicts base delta));
  Alcotest.(check int) "no conflict the other way" 0
    (List.length (Plan.conflicts delta [ Plan.Pad_align { var = "s2"; element = false } ]))

(* Random plans never produce overlapping layouts. *)
let plan_gen =
  QCheck.Gen.(
    let action =
      oneof
        [ return (Plan.Pad_align { var = "vec"; element = true });
          return (Plan.Pad_align { var = "s1"; element = false });
          return (Plan.Group_transpose { vars = [ "mat" ]; pdv_axis = 1 });
          return (Plan.Indirect { var = "recs"; fields = [ "per" ] });
          return (Plan.Regroup { var = "flat"; ways = 4; chunked = false });
          return (Plan.Regroup { var = "flat"; ways = 2; chunked = true });
          return Plan.Pad_locks ]
    in
    list_size (int_range 0 4) action)

let test_disjoint_prop =
  QCheck.Test.make ~name:"layouts never overlap" ~count:200
    (QCheck.make plan_gen)
    (fun actions ->
      (* drop duplicate claims to keep the plan valid *)
      let seen = Hashtbl.create 8 in
      let plan =
        List.filter
          (fun a ->
            let k =
              match a with
              | Plan.Group_transpose { vars; _ } -> String.concat "," vars
              | Plan.Indirect { var; _ } | Plan.Pad_align { var; _ }
              | Plan.Regroup { var; _ } -> var
              | Plan.Pad_locks -> "@locks"
            in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          actions
      in
      (* vec and flat might both be claimed; that is fine — distinct vars *)
      match Plan.validate prog plan with
      | exception Plan.Plan_error _ -> QCheck.assume_fail ()
      | () ->
        List.for_all
          (fun block ->
            match Layout.check_disjoint (Layout.realize prog plan ~block) with
            | Ok () -> true
            | Error _ -> false)
          [ 16; 64; 256 ])

let suite =
  [ Alcotest.test_case "default packed" `Quick test_default_packed;
    Alcotest.test_case "group & transpose" `Quick test_group_transpose;
    Alcotest.test_case "group extent mismatch" `Quick test_group_multiple_vars;
    Alcotest.test_case "indirection" `Quick test_indirection;
    Alcotest.test_case "pad & align element" `Quick test_pad_align_element;
    Alcotest.test_case "pad locks" `Quick test_pad_locks;
    Alcotest.test_case "regroup strided" `Quick test_regroup_strided;
    Alcotest.test_case "regroup chunked" `Quick test_regroup_chunked;
    Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "transformed vars" `Quick test_transformed_vars;
    Alcotest.test_case "plan merge" `Quick test_merge;
    Alcotest.test_case "plan merge conflicts" `Quick test_merge_conflicts;
    QCheck_alcotest.to_alcotest test_disjoint_prop ]
