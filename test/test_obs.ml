(* Tests for the telemetry layer: the JSON tree and parser, the metrics
   registry, the phase profiler, the Chrome-trace timeline, the experiment
   emitters (every record round-trips through the parser), and the blame
   matrix's agreement with per-variable attribution. *)

open Fs_ir.Dsl
module Json = Fs_obs.Json
module Metrics = Fs_obs.Metrics
module Profile = Fs_obs.Profile
module Timeline = Fs_obs.Timeline
module Emit = Falseshare.Emit
module Blame = Falseshare.Blame
module Attribution = Falseshare.Attribution
module Sim = Falseshare.Sim
module E = Falseshare.Experiments
module Interp = Fs_interp.Interp
module Layout = Fs_layout.Layout
module C = Fs_cache.Mpcache
module W = Fs_workloads.Workload

(* the textbook false-sharing program: adjacent per-process counters *)
let fs_prog ~nprocs =
  Fs_ir.Validate.validate_exn
    (program ~name:"obs_test"
       ~globals:[ ("counter", arr int_t nprocs); ("total", int_t); ("l", lock_t) ]
       [ fn "main" []
           [ sfor "k" (i 0) (i 200) [ bump ((v "counter").%(pdv)) (i 1) ];
             barrier;
             lock (v "l");
             bump (v "total") (ld (v "counter").%(pdv));
             unlock (v "l") ] ])

let parse_ok what s =
  match Json.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.fail (Printf.sprintf "%s: parse error %s in %s" what e s)

let geti what j path =
  let rec go j = function
    | [] -> ( match Json.get_int j with
      | Some n -> n
      | None -> Alcotest.fail (what ^ ": not an int"))
    | f :: rest -> (
      match Json.member f j with
      | Some j' -> go j' rest
      | None -> Alcotest.fail (Printf.sprintf "%s: missing field %s" what f))
  in
  go j path

(* ------------------------------------------------------------------ *)
(* The JSON tree, serializer, and parser                               *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("ints", Json.List [ Json.Int 0; Json.Int (-42); Json.Int max_int ]);
        ("floats", Json.List [ Json.Float 1.5; Json.Float (-0.25); Json.Float 1e-9 ]);
        ("escapes", Json.String "a\"b\\c\nd\te\r\x0c\x08 / é\xe2\x82\xac");
        ("empty obj", Json.Obj []);
        ("empty list", Json.List []);
        ("nested", Json.Obj [ ("k", Json.List [ Json.Obj [ ("x", Json.Int 1) ] ]) ]) ]
  in
  let check_same label s =
    match Json.of_string s with
    | Error e -> Alcotest.fail (label ^ ": " ^ e)
    | Ok v' -> if v <> v' then Alcotest.fail (label ^ ": round-trip changed value")
  in
  check_same "compact" (Json.to_string v);
  check_same "pretty" (Json.to_string ~compact:false v)

let test_json_parser () =
  (* unicode escapes decode to UTF-8 *)
  (match Json.of_string "\"A\\u00e9\\u20ac\"" with
   | Ok (Json.String s) -> Alcotest.(check string) "\\u escapes" "A\xc3\xa9\xe2\x82\xac" s
   | _ -> Alcotest.fail "unicode escape");
  (* numbers without . or e are ints, others floats *)
  Alcotest.(check bool) "int" true (Json.of_string "42" = Ok (Json.Int 42));
  Alcotest.(check bool) "float" true (Json.of_string "4.5" = Ok (Json.Float 4.5));
  Alcotest.(check bool) "exp float" true (Json.of_string "1e2" = Ok (Json.Float 100.));
  (* errors *)
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "trailing garbage" true (is_err (Json.of_string "1 2"));
  Alcotest.(check bool) "unterminated string" true (is_err (Json.of_string {|"abc|}));
  Alcotest.(check bool) "bare word" true (is_err (Json.of_string "nope"));
  Alcotest.(check bool) "trailing comma" true (is_err (Json.of_string "[1,]"));
  Alcotest.(check bool) "empty input" true (is_err (Json.of_string "  "))

let test_json_accessors () =
  let j = parse_ok "accessors" {|{"a": 1, "b": 2.0, "c": "s", "d": [1], "e": true}|} in
  Alcotest.(check (option int)) "member+int" (Some 1)
    (Option.bind (Json.member "a" j) Json.get_int);
  Alcotest.(check (option int)) "integral float as int" (Some 2)
    (Option.bind (Json.member "b" j) Json.get_int);
  Alcotest.(check bool) "int as float" true
    (Option.bind (Json.member "a" j) Json.get_float = Some 1.0);
  Alcotest.(check (option string)) "string" (Some "s")
    (Option.bind (Json.member "c" j) Json.get_string);
  Alcotest.(check (option bool)) "bool" (Some true)
    (Option.bind (Json.member "e" j) Json.get_bool);
  Alcotest.(check bool) "list" true
    (Option.bind (Json.member "d" j) Json.get_list = Some [ Json.Int 1 ]);
  Alcotest.(check bool) "missing member" true (Json.member "zz" j = None);
  Alcotest.(check bool) "member of non-obj" true (Json.member "a" (Json.Int 1) = None);
  (* non-finite floats serialize as null *)
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.float nan))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_instruments () =
  let m = Metrics.create () in
  let c = Metrics.counter m "hits" ~labels:[ ("proc", "0"); ("kind", "read") ] in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  (* same name + same labels (any order) is the same instrument *)
  let c' = Metrics.counter m "hits" ~labels:[ ("kind", "read"); ("proc", "0") ] in
  Metrics.Counter.incr c';
  Alcotest.(check int) "shared counter" 6 (Metrics.Counter.value c);
  let g = Metrics.gauge m "temp" in
  Metrics.Gauge.set g 1.5;
  Alcotest.(check bool) "gauge" true (Metrics.Gauge.value g = 1.5);
  let h = Metrics.histogram m "lat" ~buckets:[ 1.; 10. ] in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 5.; 50. ];
  Alcotest.(check int) "hist count" 3 (Metrics.Histogram.count h);
  Alcotest.(check bool) "hist sum" true (Metrics.Histogram.sum h = 55.5);
  (match Metrics.Histogram.buckets h with
   | [ (1., 1); (10., 2); (inf, 3) ] when inf = infinity -> ()
   | bs ->
     Alcotest.fail
       (Printf.sprintf "cumulative buckets: got %d entries" (List.length bs)));
  let text = Metrics.render m in
  Tutil.check_contains "render" text "hits{kind=\"read\",proc=\"0\"} 6";
  Tutil.check_contains "render" text "lat_count";
  (* to_json parses and is an array of objects with names *)
  let j = parse_ok "metrics json" (Json.to_string (Metrics.to_json m)) in
  match Json.get_list j with
  | Some (_ :: _ as entries) ->
    List.iter
      (fun e ->
        match Option.bind (Json.member "name" e) Json.get_string with
        | Some _ -> ()
        | None -> Alcotest.fail "metric entry without name")
      entries
  | _ -> Alcotest.fail "metrics json not a non-empty array"

let test_metrics_listener () =
  let m = Metrics.create () in
  let l = Metrics.listener m in
  l.Fs_trace.Listener.access ~proc:0 ~write:true ~addr:0;
  l.Fs_trace.Listener.access ~proc:0 ~write:false ~addr:4;
  l.Fs_trace.Listener.access ~proc:0 ~write:false ~addr:8;
  l.Fs_trace.Listener.work ~proc:1 ~amount:7;
  l.Fs_trace.Listener.lock_grant ~proc:1 ~addr:0 ~from:(-1);
  l.Fs_trace.Listener.lock_grant ~proc:1 ~addr:0 ~from:0;
  let value name labels =
    Metrics.Counter.value (Metrics.counter m ~labels name)
  in
  Alcotest.(check int) "reads" 2
    (value "interp_accesses" [ ("kind", "read"); ("proc", "0") ]);
  Alcotest.(check int) "writes" 1
    (value "interp_accesses" [ ("kind", "write"); ("proc", "0") ]);
  Alcotest.(check int) "work" 7 (value "interp_work_units" [ ("proc", "1") ]);
  Alcotest.(check int) "uncontended grant" 1
    (value "interp_lock_grants" [ ("contended", "false"); ("proc", "1") ]);
  Alcotest.(check int) "contended grant" 1
    (value "interp_lock_grants" [ ("contended", "true"); ("proc", "1") ])

(* Prometheus exposition format escapes exactly backslash, double quote,
   and newline in label values; everything else (tabs, UTF-8) passes
   through raw.  OCaml's %S would decimal-escape the tab. *)
let test_prometheus_escaping () =
  let m = Metrics.create () in
  let labels = [ ("path", "a\"b\\c\nd\te") ] in
  Metrics.Counter.incr (Metrics.counter m "weird" ~labels);
  let text = Metrics.render m in
  Tutil.check_contains "escaped label" text
    "weird{path=\"a\\\"b\\\\c\\nd\te\"} 1";
  (* the JSON side stays raw — its own escaping is the serializer's job *)
  let j = parse_ok "metrics json" (Json.to_string (Metrics.to_json m)) in
  match Json.get_list j with
  | Some [ entry ] ->
    let v =
      Option.bind (Json.member "labels" entry) (fun l ->
          Option.bind (Json.member "path" l) Json.get_string)
    in
    Alcotest.(check (option string)) "raw in json" (Some "a\"b\\c\nd\te") v
  | _ -> Alcotest.fail "expected one metric"

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition: a hand-written checker of the format's
   structural rules, then a value round-trip through it.  The checker is
   independent of the renderer — it re-parses the text from scratch — so
   a renderer bug can't hide behind its own output. *)

(* the checker itself lives in Tutil, shared with the serve suite, which
   runs the daemon's GET /metrics through the same parser *)

let parse_exposition = Tutil.parse_exposition
let find_sample = Tutil.find_sample
let check_histogram = Tutil.check_histogram

let test_prometheus_exposition () =
  let m = Metrics.create () in
  let c =
    Metrics.counter m "rt_hits" ~help:"Round-trip hits"
      ~labels:[ ("proc", "0") ]
  in
  Metrics.Counter.add c 7;
  Metrics.Counter.add (Metrics.counter m "rt_hits" ~labels:[ ("proc", "1") ]) 3;
  Metrics.Gauge.set (Metrics.gauge m "rt_temp" ~help:"A gauge") 1.5;
  let h = Metrics.histogram m "rt_lat" ~help:"A histogram" ~buckets:[ 0.1; 1.; 10. ] in
  List.iter (Metrics.Histogram.observe h) [ 0.05; 0.5; 5.; 50. ];
  let text = Metrics.render m in
  let types, helps, samples = parse_exposition "exposition" text in
  (* headers present with the right types, HELP before TYPE (checked by
     the parser), help only where registered *)
  Alcotest.(check (option string)) "counter type" (Some "counter")
    (Hashtbl.find_opt types "rt_hits");
  Alcotest.(check (option string)) "gauge type" (Some "gauge")
    (Hashtbl.find_opt types "rt_temp");
  Alcotest.(check (option string)) "histogram type" (Some "histogram")
    (Hashtbl.find_opt types "rt_lat");
  Alcotest.(check bool) "help recorded" true (Hashtbl.mem helps "rt_hits");
  (* value round-trip *)
  Alcotest.(check string) "counter 0" "7"
    (find_sample "rt" samples "rt_hits" [ ("proc", "0") ]);
  Alcotest.(check string) "counter 1" "3"
    (find_sample "rt" samples "rt_hits" [ ("proc", "1") ]);
  Alcotest.(check bool) "gauge" true
    (float_of_string (find_sample "rt" samples "rt_temp" []) = 1.5);
  check_histogram "rt_lat" samples "rt_lat" [];
  Alcotest.(check string) "hist count" "4"
    (find_sample "rt" samples "rt_lat_count" []);
  Alcotest.(check bool) "hist sum" true
    (float_of_string (find_sample "rt" samples "rt_lat_sum" []) = 55.55);
  Alcotest.(check string) "first bucket" "1"
    (find_sample "rt" samples "rt_lat_bucket" [ ("le", "0.1") ]);
  Alcotest.(check string) "+Inf bucket" "4"
    (find_sample "rt" samples "rt_lat_bucket" [ ("le", "+Inf") ]);
  (* labeled histograms keep their labels alongside le *)
  let hl =
    Metrics.histogram m "rt_lab" ~buckets:[ 1. ] ~labels:[ ("worker", "2") ]
  in
  Metrics.Histogram.observe hl 0.5;
  let _, _, samples = parse_exposition "exposition" (Metrics.render m) in
  check_histogram "rt_lab" samples "rt_lab" [ ("worker", "2") ]

let test_metric_name_validation () =
  let reject what f =
    match f () with
    | _ -> Alcotest.fail (what ^ ": accepted")
    | exception Invalid_argument _ -> ()
  in
  let m = Metrics.create () in
  (* a dash or a leading digit would render an exposition no scraper
     accepts — rejected at registration, loudly *)
  reject "bad-name" (fun () -> ignore (Metrics.counter m "bad-name"));
  reject "1bad" (fun () -> ignore (Metrics.gauge m "1bad"));
  reject "empty name" (fun () -> ignore (Metrics.counter m ""));
  reject "sp ace" (fun () -> ignore (Metrics.histogram m "sp ace"));
  reject "bad-label" (fun () ->
      ignore (Metrics.counter m "fine" ~labels:[ ("bad-label", "v") ]));
  reject "9label" (fun () ->
      ignore (Metrics.gauge m "fine" ~labels:[ ("9label", "v") ]));
  (* a colon is legal in a metric name (recording rules) but not in a
     label name *)
  reject "co:lon" (fun () ->
      ignore (Metrics.counter m "fine" ~labels:[ ("co:lon", "v") ]));
  (* the error message names the offender so a failed startup is
     debuggable from the exception alone *)
  (match Metrics.counter m "bad-name" with
   | _ -> Alcotest.fail "accepted bad-name"
   | exception Invalid_argument msg ->
     Tutil.check_contains "message names the metric" msg "bad-name");
  (match Metrics.counter m "fine" ~labels:[ ("bad-label", "v") ] with
   | _ -> Alcotest.fail "accepted bad-label"
   | exception Invalid_argument msg ->
     Tutil.check_contains "message names the label" msg "bad-label");
  ignore (Metrics.counter m "ns:requests_total" ~labels:[ ("le_gal_1", "v") ]);
  ignore (Metrics.gauge m "_underscore_first");
  (* label values are unconstrained — escaping is the renderer's job *)
  ignore (Metrics.counter m "valued" ~labels:[ ("k", "any-thing: goes 9") ]);
  (* nothing invalid got registered along the way *)
  let types, _, _ = Tutil.parse_exposition "validated" (Metrics.render m) in
  Alcotest.(check bool) "valid names render" true
    (Hashtbl.mem types "ns:requests_total")

(* ------------------------------------------------------------------ *)
(* Span JSON round-trip: error-carrying spans and attribute strings
   full of quotes, newlines, and backslashes must survive the
   serializer and come back bit-identical through the parser. *)

let test_span_json_roundtrip () =
  let nasty = "a \"quoted\" value\nwith a newline\tand \\backslash\x01" in
  let r = Fs_obs.Span.create () in
  Fs_obs.Span.with_ r "outer" ~attrs:[ ("nasty", nasty) ] (fun () ->
      (match
         Fs_obs.Span.with_ r "failing" (fun () ->
             failwith "boom \"inner\"\nsecond line")
       with
      | () -> Alcotest.fail "inner span did not raise"
      | exception Failure _ -> ());
      Fs_obs.Span.with_ r "ok \"child\"" Fun.id);
  let text = Json.to_string (Fs_obs.Span.to_json r) in
  let j =
    match Json.of_string text with
    | Ok j -> j
    | Error m -> Alcotest.fail (Printf.sprintf "span json unparsable: %s" m)
  in
  let outer =
    match Json.get_list j with
    | Some [ o ] -> o
    | _ -> Alcotest.fail "expected one root span"
  in
  Alcotest.(check (option string)) "attr round-trips" (Some nasty)
    (Option.bind (Json.member "attrs" outer) (fun a ->
         Option.bind (Json.member "nasty" a) Json.get_string));
  let children =
    match Option.bind (Json.member "children" outer) Json.get_list with
    | Some kids -> kids
    | None -> Alcotest.fail "outer span lost its children"
  in
  (match children with
   | [ failing; ok ] ->
     (* with_ records [Printexc.to_string exn] as the "error" attribute;
        that exact string — Printexc's own escapes and all — must
        survive the trip through the JSON encoder and back *)
     let expect = Printexc.to_string (Failure "boom \"inner\"\nsecond line") in
     let err =
       Option.bind (Json.member "attrs" failing) (fun a ->
           Option.bind (Json.member "error" a) Json.get_string)
     in
     (match err with
      | Some e -> Alcotest.(check string) "error attr keeps the message" expect e
      | None -> Alcotest.fail "failing span has no error attr");
     Alcotest.(check (option string)) "quoted span name" (Some "ok \"child\"")
       (Option.bind (Json.member "name" ok) Json.get_string)
   | _ -> Alcotest.fail "expected two children");
  (* the same tree through the pretty-printer parses too *)
  match Json.of_string (Json.to_string ~compact:false (Fs_obs.Span.to_json r)) with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("pretty span json unparsable: " ^ m)

let test_histogram_edges () =
  (* an empty registry renders as the empty exposition *)
  Alcotest.(check string) "empty registry" "" (Metrics.render (Metrics.create ()));
  let m = Metrics.create () in
  let h = Metrics.histogram m "edge" ~buckets:[ 1.; 10. ] in
  (* a negative observation lands in the first bucket and drags the sum
     negative — never dropped, never a crash *)
  Metrics.Histogram.observe h (-5.);
  (match Metrics.Histogram.buckets h with
   | [ (1., 1); (10., 1); (_, 1) ] -> ()
   | _ -> Alcotest.fail "negative observation not in first bucket");
  Alcotest.(check bool) "negative sum" true (Metrics.Histogram.sum h = -5.);
  (* an observation exactly on a bucket bound is inclusive (le semantics) *)
  Metrics.Histogram.observe h 1.0;
  (match Metrics.Histogram.buckets h with
   | (1., 2) :: _ -> ()
   | _ -> Alcotest.fail "exact bound not inclusive");
  (* absorb with mismatched bucket shape is a programming error *)
  (match Metrics.Histogram.absorb h ~counts:[| 1; 2 |] ~sum:3. with
   | () -> Alcotest.fail "absorb accepted mismatched buckets"
   | exception Invalid_argument _ -> ());
  (* matched absorb adds per-bucket counts and the sum *)
  Metrics.Histogram.absorb h ~counts:[| 1; 0; 2 |] ~sum:30.;
  Alcotest.(check int) "absorbed count" 5 (Metrics.Histogram.count h);
  Alcotest.(check bool) "absorbed sum" true (Metrics.Histogram.sum h = 26.);
  (* the negative-sum histogram still renders a valid exposition *)
  let _, _, samples = parse_exposition "edges" (Metrics.render m) in
  check_histogram "edge" samples "edge" []

(* ------------------------------------------------------------------ *)
(* Heatmap                                                             *)

let test_heatmap () =
  let grid =
    Fs_obs.Heatmap.render ~col_tick:2
      [| [| 0.0; 1.0; 1000.0 |]; [| 0.0; 0.0; 0.0 |] |]
  in
  (match String.split_on_char '\n' grid with
   | _ruler :: r0 :: r1 :: _legend ->
     Tutil.check_contains "row label" r0 "P0";
     (* zero cells are '.', the max is '@', small nonzero is distinct *)
     Alcotest.(check char) "zero cell" '.' r0.[String.length r0 - 3];
     Alcotest.(check char) "max cell" '@' r0.[String.length r0 - 1];
     Alcotest.(check bool) "small nonzero not blank" true
       (r0.[String.length r0 - 2] <> '.' && r0.[String.length r0 - 2] <> '@');
     Alcotest.(check string) "all-zero row" "..."
       (String.sub r1 (String.length r1 - 3) 3)
   | _ -> Alcotest.fail "unexpected grid shape");
  Alcotest.(check string) "empty grid" "" (Fs_obs.Heatmap.render [||]);
  let bars = Fs_obs.Heatmap.bars ~width:10 [ ("a", 10); ("bb", 5); ("c", 0) ] in
  Tutil.check_contains "full bar" bars "##########";
  Tutil.check_contains "half bar" bars "#####";
  Tutil.check_contains "counts shown" bars "10";
  Alcotest.(check string) "no rows" "" (Fs_obs.Heatmap.bars [])

let test_heatmap_edges () =
  (* a single-cell grid: the one value is the maximum, so it renders as
     the densest glyph and the legend pins the range to it *)
  let one = Fs_obs.Heatmap.render [| [| 5.0 |] |] in
  (match String.split_on_char '\n' one with
   | _ruler :: row :: legend :: _ ->
     Alcotest.(check char) "single cell is max glyph" '@'
       row.[String.length row - 1];
     Tutil.check_contains "legend upper bound" legend "=5.00"
   | _ -> Alcotest.fail "unexpected single-cell shape");
  (* an all-zero grid: every cell '.', and the legend's fixed format
     shows the degenerate 0.00 range rather than dividing by it *)
  let zero = Fs_obs.Heatmap.render [| [| 0.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  (match String.split_on_char '\n' zero with
   | _ruler :: r0 :: r1 :: legend :: _ ->
     Alcotest.(check string) "zero row 0" ".."
       (String.sub r0 (String.length r0 - 2) 2);
     Alcotest.(check string) "zero row 1" ".."
       (String.sub r1 (String.length r1 - 2) 2);
     Tutil.check_contains "zero legend" legend "'@'=0.00"
   | _ -> Alcotest.fail "unexpected all-zero shape")

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)

let test_profile () =
  let p = Profile.create () in
  let r = Profile.time p "a" ~events:(fun x -> x) (fun () -> 3) in
  Alcotest.(check int) "result passed through" 3 r;
  ignore (Profile.time p "b" (fun () -> ()));
  ignore (Profile.time p "a" ~events:(fun x -> x) (fun () -> 4));
  (match Profile.entries p with
   | [ ea; eb ] ->
     Alcotest.(check string) "order" "a" ea.Profile.name;
     Alcotest.(check int) "events accumulate" 7 ea.Profile.events;
     Alcotest.(check int) "default events" 0 eb.Profile.events;
     Alcotest.(check bool) "nonnegative time" true (ea.Profile.seconds >= 0.)
   | es -> Alcotest.fail (Printf.sprintf "%d entries" (List.length es)));
  (* a phase that raises is still recorded *)
  (try ignore (Profile.time p "boom" (fun () -> failwith "x")) with Failure _ -> ());
  Alcotest.(check int) "exn phase recorded" 3 (List.length (Profile.entries p));
  let j = parse_ok "profile json" (Json.to_string (Profile.to_json p)) in
  match Json.get_list j with
  | Some entries -> Alcotest.(check int) "json entries" 3 (List.length entries)
  | None -> Alcotest.fail "profile json not a list"

(* ------------------------------------------------------------------ *)
(* Timeline: structurally valid Chrome trace JSON                      *)

let test_timeline () =
  let nprocs = 4 in
  let prog = fs_prog ~nprocs in
  let layout = Layout.realize prog [] ~block:64 in
  let tl = Timeline.create ~nprocs in
  let _ = Interp.run prog ~nprocs ~layout ~listener:(Timeline.listener tl) in
  Alcotest.(check bool) "recorded events" true (Timeline.events tl > 0);
  let j = parse_ok "trace json" (Json.to_string (Timeline.to_json tl)) in
  let events =
    match Option.bind (Json.member "traceEvents" j) Json.get_list with
    | Some es -> es
    | None -> Alcotest.fail "no traceEvents array"
  in
  let phases = Hashtbl.create 4 in
  List.iter
    (fun e ->
      let str f =
        match Option.bind (Json.member f e) Json.get_string with
        | Some s -> s
        | None -> Alcotest.fail ("event without string field " ^ f)
      in
      let ph = str "ph" in
      Hashtbl.replace phases ph (1 + Option.value ~default:0 (Hashtbl.find_opt phases ph));
      ignore (str "name");
      if ph <> "M" then begin
        let ts = geti "event" e [ "ts" ] in
        Alcotest.(check bool) "ts >= 0" true (ts >= 0);
        ignore (geti "event" e [ "pid" ])
      end;
      if ph = "X" then
        Alcotest.(check bool) "dur >= 0" true (geti "event" e [ "dur" ] >= 0);
      if ph <> "M" && ph <> "X" && ph <> "i" then
        Alcotest.fail ("unexpected phase " ^ ph))
    events;
  (* one process_name metadata record per processor, plus thread names *)
  Alcotest.(check bool) "metadata events" true
    (Option.value ~default:0 (Hashtbl.find_opt phases "M") >= nprocs);
  Alcotest.(check bool) "duration slices" true (Hashtbl.mem phases "X");
  (* the program has one barrier: at least one release instant *)
  Alcotest.(check bool) "barrier instant" true (Hashtbl.mem phases "i")

let test_timeline_counter () =
  let tl = Timeline.create ~nprocs:2 in
  Alcotest.(check int) "fresh clock" 0 (Timeline.time tl);
  Timeline.counter tl ~name:"misses per epoch" ~ts:5
    ~values:[ ("false sharing", 3.0); ("cold", 1.0) ];
  let j = parse_ok "counter json" (Json.to_string (Timeline.to_json tl)) in
  let events =
    match Option.bind (Json.member "traceEvents" j) Json.get_list with
    | Some es -> es
    | None -> Alcotest.fail "no traceEvents"
  in
  let counters =
    List.filter
      (fun e ->
        Option.bind (Json.member "ph" e) Json.get_string = Some "C")
      events
  in
  match counters with
  | [ e ] ->
    Alcotest.(check int) "ts" 5 (geti "counter" e [ "ts" ]);
    let v =
      Option.bind (Json.member "args" e) (fun a ->
          Option.bind (Json.member "false sharing" a) Json.get_float)
    in
    Alcotest.(check bool) "value" true (v = Some 3.0)
  | cs -> Alcotest.fail (Printf.sprintf "expected 1 counter event, got %d" (List.length cs))

(* ------------------------------------------------------------------ *)
(* Emitters: every record round-trips through the parser               *)

let test_emit_sim_roundtrip () =
  let nprocs = 4 in
  let prog = fs_prog ~nprocs in
  let unopt = Sim.cache_sim prog [] ~nprocs ~block:64 in
  let j0 = Emit.sim ~workload:"obs_test" ~nprocs ~block:64 [ ("unoptimized", unopt) ] in
  let j = parse_ok "sim json" (Json.to_string j0) in
  Alcotest.(check int) "procs" nprocs (geti "sim" j [ "procs" ]);
  Alcotest.(check int) "block" 64 (geti "sim" j [ "block" ]);
  let versions =
    match Option.bind (Json.member "versions" j) Json.get_list with
    | Some [ v ] -> v
    | _ -> Alcotest.fail "expected one version"
  in
  let c = unopt.Sim.counts in
  Alcotest.(check int) "accesses" (C.accesses c) (geti "sim" versions [ "counts"; "accesses" ]);
  Alcotest.(check int) "misses" (C.misses c) (geti "sim" versions [ "counts"; "misses" ]);
  Alcotest.(check int) "false sharing" c.C.false_sh
    (geti "sim" versions [ "counts"; "false_sharing" ]);
  Alcotest.(check int) "layout bytes" unopt.Sim.layout_bytes
    (geti "sim" versions [ "layout_bytes" ])

let test_emit_records_roundtrip () =
  let cell = { E.accesses = 100; misses = 10; false_sharing = 5 } in
  let fig3 =
    Emit.fig3
      [ { E.name = "w"; procs = 4; block = 16; unopt = cell;
          compiler = { cell with false_sharing = 1 } } ]
  in
  let j = parse_ok "fig3" (Json.to_string fig3) in
  (match Json.get_list j with
   | Some [ row ] ->
     Alcotest.(check int) "unopt fs" 5 (geti "fig3" row [ "unoptimized"; "false_sharing" ]);
     Alcotest.(check int) "compiler fs" 1 (geti "fig3" row [ "compiler"; "false_sharing" ])
   | _ -> Alcotest.fail "fig3 rows");
  let table2 =
    Emit.table2
      [ { E.name = "w"; total_reduction = 0.5; group_transpose = 0.25;
          indirection = 0.1; pad_align = 0.1; locks = 0.05 } ]
  in
  (match Json.get_list (parse_ok "table2" (Json.to_string table2)) with
   | Some [ row ] ->
     Alcotest.(check bool) "total" true
       (Option.bind (Json.member "total_reduction" row) Json.get_float = Some 0.5)
   | _ -> Alcotest.fail "table2 rows");
  let series =
    Emit.series [ { E.workload = "w"; version = W.C; points = [ (1, 1.0); (4, 2.5) ] } ]
  in
  (match Json.get_list (parse_ok "series" (Json.to_string series)) with
   | Some [ s ] -> (
     match Option.bind (Json.member "points" s) Json.get_list with
     | Some [ _; p ] ->
       Alcotest.(check int) "procs" 4 (geti "series" p [ "procs" ]);
       Alcotest.(check bool) "speedup" true
         (Option.bind (Json.member "speedup" p) Json.get_float = Some 2.5)
     | _ -> Alcotest.fail "series points")
   | _ -> Alcotest.fail "series rows");
  let table3 = Emit.table3 [ { E.name = "w"; results = [ (W.P, 3.5, 12) ] } ] in
  (match Json.get_list (parse_ok "table3" (Json.to_string table3)) with
   | Some [ row ] -> (
     match Option.bind (Json.member "results" row) Json.get_list with
     | Some [ r ] -> Alcotest.(check int) "at procs" 12 (geti "table3" r [ "at_procs" ])
     | _ -> Alcotest.fail "table3 results")
   | _ -> Alcotest.fail "table3 rows");
  let stats =
    Emit.stats
      { E.fs_share_of_misses_128 = 0.8; fs_removed_128 = 0.9;
        other_miss_increase_128 = 0.7; total_miss_reduction_64 = 0.6 }
  in
  let j = parse_ok "stats" (Json.to_string stats) in
  Alcotest.(check bool) "stat field" true
    (Option.bind (Json.member "fs_removed_128" j) Json.get_float = Some 0.9);
  let exec = Emit.exec [ { E.name = "w"; improvement = 0.5; at_procs = 8 } ] in
  (match Json.get_list (parse_ok "exec" (Json.to_string exec)) with
   | Some [ row ] -> Alcotest.(check int) "at procs" 8 (geti "exec" row [ "at_procs" ])
   | _ -> Alcotest.fail "exec rows")

let test_emit_report_roundtrip () =
  let nprocs = 4 in
  let prog = fs_prog ~nprocs in
  let report = Fs_transform.Transform.plan prog ~nprocs in
  let j = parse_ok "report" (Json.to_string (Emit.transform_report report)) in
  match
    ( Option.bind (Json.member "entries" j) Json.get_list,
      Option.bind (Json.member "plan" j) Json.get_list )
  with
  | Some entries, Some _ ->
    Alcotest.(check int) "one entry per report line"
      (List.length report.Fs_transform.Transform.entries)
      (List.length entries);
    List.iter
      (fun e ->
        match
          Option.bind (Json.member "decision" e) (fun d ->
              Option.bind (Json.member "kind" d) Json.get_string)
        with
        | Some _ -> ()
        | None -> Alcotest.fail "entry without decision kind")
      entries
  | _ -> Alcotest.fail "report json shape"

(* ------------------------------------------------------------------ *)
(* Blame                                                               *)

let test_blame_agrees_with_attribution () =
  let nprocs = 4 and block = 64 in
  let prog = fs_prog ~nprocs in
  let blame = Blame.analyze prog [] ~nprocs ~block in
  let attr = Attribution.attribute prog [] ~nprocs ~block in
  Alcotest.(check bool) "found invalidations" true (blame.Blame.rows <> []);
  List.iter
    (fun (row : Blame.var_row) ->
      let a =
        match List.find_opt (fun (a : Attribution.row) -> a.var = row.var) attr with
        | Some a -> a
        | None -> Alcotest.fail ("blame var missing from attribution: " ^ row.var)
      in
      Alcotest.(check int)
        (row.var ^ " invalidations")
        a.Attribution.counts.C.invalidations row.invalidations;
      (* internal consistency: matrix, pairs, and cause split all sum up *)
      let msum =
        Array.fold_left (fun acc r -> Array.fold_left ( + ) acc r) 0 row.matrix
      in
      Alcotest.(check int) (row.var ^ " matrix sum") row.invalidations msum;
      Alcotest.(check int)
        (row.var ^ " cause split")
        row.invalidations
        (row.by_upgrade + row.by_write_miss);
      let psum =
        List.fold_left
          (fun acc (p : Blame.pair) -> acc + p.upgrades + p.write_misses)
          0 row.pairs
      in
      Alcotest.(check int) (row.var ^ " pair sum") row.invalidations psum;
      (* nobody invalidates their own copy *)
      Array.iteri (fun s r -> Alcotest.(check int) "diagonal" 0 r.(s)) row.matrix)
    blame.Blame.rows;
  (* hot blocks: owners exist, cell ranges sane, render works *)
  List.iter
    (fun (h : Blame.hot_block) ->
      Alcotest.(check bool) "cell range" true (h.cell_lo <= h.cell_hi))
    blame.Blame.hot;
  Tutil.check_contains "render" (Blame.render blame) "invalidation blame matrix";
  (* and the JSON emitter parses back with matching totals *)
  let j = parse_ok "blame json" (Json.to_string (Emit.blame blame)) in
  match Option.bind (Json.member "vars" j) Json.get_list with
  | Some vars ->
    Alcotest.(check int) "vars emitted" (List.length blame.Blame.rows)
      (List.length vars)
  | None -> Alcotest.fail "blame json vars"

(* ------------------------------------------------------------------ *)
(* Pipeline: one instrumented run                                      *)

let test_pipeline () =
  let nprocs = 4 in
  let prog = fs_prog ~nprocs in
  let r = Falseshare.Pipeline.run prog ~nprocs ~block:64 in
  let names = List.map (fun e -> e.Profile.name) (Profile.entries r.Falseshare.Pipeline.profile) in
  List.iter
    (fun phase ->
      if not (List.mem phase names) then Alcotest.fail ("missing phase " ^ phase))
    [ "pdv"; "non-concurrency"; "summary"; "transform"; "layout"; "interp";
      "replay+cache" ];
  (* metrics carry the cache's totals *)
  let total = ref 0 in
  for p = 0 to nprocs - 1 do
    total :=
      !total
      + Metrics.Counter.value
          (Metrics.counter r.metrics ~labels:[ ("proc", string_of_int p) ]
             "cache_accesses")
  done;
  Alcotest.(check int) "metrics match cache" (C.accesses r.cache.Sim.counts) !total;
  let j = parse_ok "pipeline json" (Json.to_string (Falseshare.Pipeline.to_json r)) in
  Alcotest.(check bool) "has profile" true (Json.member "profile" j <> None);
  Alcotest.(check bool) "has metrics" true (Json.member "metrics" j <> None)

(* ------------------------------------------------------------------ *)
(* Edit distance (CLI suggestions)                                     *)

let test_strdist () =
  let d = Fs_util.Strdist.levenshtein in
  Alcotest.(check int) "equal" 0 (d "maxflow" "maxflow");
  Alcotest.(check int) "deletion" 1 (d "maxfow" "maxflow");
  Alcotest.(check int) "substitution" 1 (d "maxflaw" "maxflow");
  Alcotest.(check int) "empty" 7 (d "" "maxflow");
  let names = [ "maxflow"; "pverify"; "topopt"; "water" ] in
  Alcotest.(check (list string)) "close match" [ "maxflow" ]
    (Fs_util.Strdist.suggest "maxfow" names);
  Alcotest.(check (list string)) "case-insensitive" [ "water" ]
    (Fs_util.Strdist.suggest "WATER" names);
  Alcotest.(check (list string)) "no match" []
    (Fs_util.Strdist.suggest "zzzzzz" names)

let suite =
  [ Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "metrics instruments" `Quick test_metrics_instruments;
    Alcotest.test_case "metrics listener" `Quick test_metrics_listener;
    Alcotest.test_case "prometheus escaping" `Quick test_prometheus_escaping;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
    Alcotest.test_case "metric name validation" `Quick test_metric_name_validation;
    Alcotest.test_case "span json round-trip" `Quick test_span_json_roundtrip;
    Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
    Alcotest.test_case "heatmap" `Quick test_heatmap;
    Alcotest.test_case "heatmap edges" `Quick test_heatmap_edges;
    Alcotest.test_case "profile" `Quick test_profile;
    Alcotest.test_case "timeline chrome trace" `Quick test_timeline;
    Alcotest.test_case "timeline counter track" `Quick test_timeline_counter;
    Alcotest.test_case "emit sim round-trip" `Quick test_emit_sim_roundtrip;
    Alcotest.test_case "emit records round-trip" `Quick test_emit_records_roundtrip;
    Alcotest.test_case "emit report round-trip" `Quick test_emit_report_roundtrip;
    Alcotest.test_case "blame vs attribution" `Quick test_blame_agrees_with_attribution;
    Alcotest.test_case "pipeline" `Quick test_pipeline;
    Alcotest.test_case "strdist" `Quick test_strdist ]
