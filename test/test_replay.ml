(* Tests for the cell-trace / replay layer: the replayed address stream
   is event-for-event identical to the direct interpretation path for
   every benchmark, version and block size; traces survive packing and
   disk round-trips; the trace memo shares interpretations; and the
   domain-pool fan-out is deterministic in the job count. *)

module W = Fs_workloads.Workload
module Ws = Fs_workloads.Workloads
module E = Falseshare.Experiments
module Sim = Falseshare.Sim
module Memo = Falseshare.Trace_memo
module Interp = Fs_interp.Interp
module Replay = Fs_replay.Replay
module Layout = Fs_layout.Layout
module Listener = Fs_trace.Listener
module Cell_event = Fs_trace.Cell_event
module Cell_trace = Fs_trace.Cell_trace
module Par = Fs_util.Par

(* ------------------------------------------------------------------ *)
(* Full-listener capture: every event, tagged, in delivery order        *)

type ev =
  | A of int * bool * int
  | Wk of int * int
  | Ba of int
  | Br
  | Lw of int * int
  | Lg of int * int * int

let capture acc : Listener.t =
  {
    access = (fun ~proc ~write ~addr -> acc := A (proc, write, addr) :: !acc);
    work = (fun ~proc ~amount -> acc := Wk (proc, amount) :: !acc);
    barrier_arrive = (fun ~proc -> acc := Ba proc :: !acc);
    barrier_release = (fun () -> acc := Br :: !acc);
    lock_wait = (fun ~proc ~addr -> acc := Lw (proc, addr) :: !acc);
    lock_grant =
      (fun ~proc ~addr ~from -> acc := Lg (proc, addr, from) :: !acc);
  }

let direct_stream prog ~nprocs ~layout =
  let acc = ref [] in
  let _ = Interp.run prog ~nprocs ~layout ~listener:(capture acc) in
  List.rev !acc

let replay_stream trace ~layout =
  let acc = ref [] in
  Replay.replay trace ~layout ~listener:(capture acc);
  List.rev !acc

(* Replay of a recorded trace must reproduce the direct path event for
   event — including injected indirection pointer loads and every sync
   event — for all ten benchmarks, every available version, and both a
   small and a large block size. *)
let test_equivalence () =
  let nprocs = 4 and scale = 1 in
  List.iter
    (fun (w : W.t) ->
      let prog = w.build ~nprocs ~scale in
      let trace, _ = Interp.record prog ~nprocs in
      List.iter
        (fun version ->
          let plan = E.plan_for w version prog ~nprocs ~scale in
          List.iter
            (fun block ->
              let layout = Layout.realize prog plan ~block in
              let what =
                Printf.sprintf "%s/%s b=%d" w.name
                  (W.version_to_string version) block
              in
              let d = direct_stream prog ~nprocs ~layout in
              let r = replay_stream trace ~layout in
              Alcotest.(check int) (what ^ " event count") (List.length d)
                (List.length r);
              if d <> r then Alcotest.fail (what ^ ": streams differ"))
            [ 16; 128 ])
        w.versions)
    Ws.all

(* The indirected layouts really do inject pointer loads at replay: the
   replayed stream has more accesses than the trace records. *)
let test_pointer_loads_injected () =
  let w = Ws.find "pverify" in
  let nprocs = 4 in
  let prog = w.W.build ~nprocs ~scale:1 in
  let trace, _ = Interp.record prog ~nprocs in
  let plan = E.plan_for w W.C prog ~nprocs ~scale:1 in
  Alcotest.(check bool) "plan indirects" true
    (List.exists
       (function Fs_layout.Plan.Indirect _ -> true | _ -> false)
       plan);
  let layout = Layout.realize prog plan ~block:128 in
  let accesses stream =
    List.length (List.filter (function A _ -> true | _ -> false) stream)
  in
  let traced = ref 0 in
  Cell_trace.iter
    (function Cell_event.Access _ -> incr traced | _ -> ())
    trace;
  let replayed = accesses (replay_stream trace ~layout) in
  Alcotest.(check bool)
    (Printf.sprintf "pointer loads injected (%d traced, %d replayed)" !traced
       replayed)
    true
    (replayed > !traced)

(* ------------------------------------------------------------------ *)
(* The fused engine: Replay.simulate must be count-identical to the
   reference listener path — globally, per processor, and per block —
   for every workload, both the unoptimized and the compiler layout,
   and a small and a large block size. *)

let test_fused_equivalence () =
  let nprocs = 4 and scale = 1 in
  let cfg block = Fs_cache.Mpcache.default_config ~nprocs ~block in
  List.iter
    (fun (w : W.t) ->
      let prog = w.build ~nprocs ~scale in
      let trace, _ = Interp.record prog ~nprocs in
      List.iter
        (fun version ->
          let plan = E.plan_for w version prog ~nprocs ~scale in
          List.iter
            (fun block ->
              let layout = Layout.realize prog plan ~block in
              let max_addr = Layout.size layout in
              let reference =
                Fs_cache.Mpcache.create ~track_blocks:true ~max_addr
                  (cfg block)
              in
              Replay.replay_to_sink trace ~layout
                ~sink:(Fs_cache.Mpcache.sink reference);
              let fused =
                Fs_cache.Mpcache.create ~track_blocks:true ~max_addr
                  (cfg block)
              in
              Replay.simulate trace ~layout ~cache:fused;
              let what =
                Printf.sprintf "%s/%s b=%d" w.name
                  (W.version_to_string version) block
              in
              Alcotest.(check bool) (what ^ ": global counts") true
                (Fs_cache.Mpcache.counts reference
                = Fs_cache.Mpcache.counts fused);
              Alcotest.(check bool) (what ^ ": per-proc counts") true
                (Fs_cache.Mpcache.proc_counts reference
                = Fs_cache.Mpcache.proc_counts fused);
              Alcotest.(check bool) (what ^ ": per-block counts") true
                (Fs_cache.Mpcache.per_block reference
                = Fs_cache.Mpcache.per_block fused))
            [ 16; 128 ])
        [ W.N; W.C ])
    Ws.all

(* Without a ~max_addr hint the cache's flat arrays grow on demand; the
   counts must not depend on the presizing. *)
let test_fused_growth () =
  let w = Ws.find "topopt" in
  let nprocs = 4 in
  let prog = w.W.build ~nprocs ~scale:1 in
  let trace, _ = Interp.record prog ~nprocs in
  let layout = Layout.default prog ~block:16 in
  let cfg = Fs_cache.Mpcache.default_config ~nprocs ~block:16 in
  let hinted = Fs_cache.Mpcache.create ~max_addr:(Layout.size layout) cfg in
  Replay.simulate trace ~layout ~cache:hinted;
  let grown = Fs_cache.Mpcache.create cfg in
  Replay.simulate trace ~layout ~cache:grown;
  Alcotest.(check bool) "growable arrays match presized" true
    (Fs_cache.Mpcache.counts hinted = Fs_cache.Mpcache.counts grown)

(* ------------------------------------------------------------------ *)
(* Packing and disk round-trips                                         *)

let event = Alcotest.testable Cell_event.pp ( = )

let test_pack_roundtrip () =
  let cases =
    [ Cell_event.Access { proc = 0; write = false; var = 0; cell = 0 };
      Cell_event.Access
        { proc = Cell_event.max_proc; write = true; var = Cell_event.max_var;
          cell = Cell_event.max_cell };
      Cell_event.Work { proc = 7; amount = 123_456 };
      Cell_event.Barrier_arrive { proc = 255 };
      Cell_event.Barrier_release;
      Cell_event.Lock_wait { proc = 3; var = 12; cell = 99 };
      Cell_event.Lock_grant { proc = 3; var = 12; cell = 99; from = -1 };
      Cell_event.Lock_grant { proc = 0; var = 255; cell = 1 lsl 30; from = 255 };
    ]
  in
  List.iter
    (fun e ->
      Alcotest.check event "pack/unpack" e
        (Cell_event.unpack (Cell_event.pack e)))
    cases;
  (* out-of-range fields are rejected, not silently truncated *)
  List.iter
    (fun e ->
      match Cell_event.pack e with
      | (_ : int) -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [ Cell_event.Access
        { proc = Cell_event.max_proc + 1; write = false; var = 0; cell = 0 };
      Cell_event.Access
        { proc = 0; write = false; var = Cell_event.max_var + 1; cell = 0 };
      Cell_event.Lock_grant
        { proc = 0; var = 0; cell = Cell_event.max_cell + 1; from = 0 };
      Cell_event.Lock_grant { proc = 0; var = 0; cell = 0; from = -2 };
    ]

let prop_pack_roundtrip =
  let gen =
    let open QCheck.Gen in
    let proc = int_bound Cell_event.max_proc in
    let var = int_bound Cell_event.max_var in
    let cell = int_bound Cell_event.max_cell in
    oneof
      [ (proc >>= fun p -> var >>= fun v -> cell >>= fun c ->
         bool >|= fun w -> Cell_event.Access { proc = p; write = w; var = v; cell = c });
        (proc >>= fun p -> int_bound 1_000_000 >|= fun a ->
         Cell_event.Work { proc = p; amount = a });
        (proc >|= fun p -> Cell_event.Barrier_arrive { proc = p });
        return Cell_event.Barrier_release;
        (proc >>= fun p -> var >>= fun v -> cell >|= fun c ->
         Cell_event.Lock_wait { proc = p; var = v; cell = c });
        (proc >>= fun p -> var >>= fun v -> cell >>= fun c ->
         int_range (-1) Cell_event.max_proc >|= fun f ->
         Cell_event.Lock_grant { proc = p; var = v; cell = c; from = f });
      ]
  in
  QCheck.Test.make ~count:500 ~name:"cell event pack round-trip"
    (QCheck.make gen ~print:(Format.asprintf "%a" Cell_event.pp))
    (fun e -> Cell_event.unpack (Cell_event.pack e) = e)

let test_disk_roundtrip () =
  let w = Ws.find "maxflow" in
  let nprocs = 4 in
  let prog = w.W.build ~nprocs ~scale:1 in
  let trace, _ = Interp.record prog ~nprocs in
  let path = Filename.temp_file "fstrace" ".fstrace" in
  Cell_trace.write_file trace path;
  let back = Cell_trace.read_file path in
  Alcotest.(check bool) "trace survives disk" true (Cell_trace.equal trace back);
  Alcotest.(check int) "nprocs survives" (Cell_trace.nprocs trace)
    (Cell_trace.nprocs back);
  Alcotest.(check bool) "vars survive" true
    (Cell_trace.vars trace = Cell_trace.vars back);
  let oc = open_out path in
  output_string oc "not a trace";
  close_out oc;
  (match Cell_trace.read_file path with
   | (_ : Cell_trace.t) -> Alcotest.fail "expected Corrupt"
   | exception Cell_trace.Corrupt _ -> ());
  Sys.remove path

(* Corruption surfaces as the typed [Corrupt] error — never a bare
   [End_of_file] or [Failure] — at both truncation points: inside the
   header (name table) and inside the event section.  The streaming
   reader must reject the same files at open time. *)
let test_disk_truncation () =
  let w = Ws.find "maxflow" in
  let nprocs = 4 in
  let prog = w.W.build ~nprocs ~scale:1 in
  let trace, _ = Interp.record prog ~nprocs in
  let path = Filename.temp_file "fstrace" ".fstrace" in
  Cell_trace.write_file trace path;
  let size =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  let truncate_to n =
    let ic = open_in_bin path in
    let data = really_input_string ic n in
    close_in ic;
    let oc = open_out_bin path in
    output_string oc data;
    close_out oc
  in
  let expect_corrupt what =
    (match Cell_trace.read_file path with
     | (_ : Cell_trace.t) -> Alcotest.fail (what ^ ": expected Corrupt")
     | exception Cell_trace.Corrupt _ -> ()
     | exception e ->
       Alcotest.fail
         (Printf.sprintf "%s: expected Corrupt, got %s" what
            (Printexc.to_string e)));
    match Cell_trace.of_file_stream path with
    | (_ : Cell_trace.Stream.t) ->
      Alcotest.fail (what ^ ": stream open expected Corrupt")
    | exception Cell_trace.Corrupt _ -> ()
    | exception e ->
      Alcotest.fail
        (Printf.sprintf "%s: stream open expected Corrupt, got %s" what
           (Printexc.to_string e))
  in
  (* event-section truncation: drop the last word of the payload *)
  truncate_to (size - 4);
  expect_corrupt "event section truncated";
  (* header truncation: cut inside the variable-name table, well before
     the event-count field *)
  truncate_to 29;
  expect_corrupt "header truncated";
  Sys.remove path

(* The boundary sizes of the disk format: a trace with no events at all,
   and a trace of exactly one event (the [max len 1] backing-array
   allocation in [read_channel]). *)
let test_disk_roundtrip_edges () =
  let roundtrip what t =
    let path = Filename.temp_file "fstrace" ".fstrace" in
    Cell_trace.write_file t path;
    let back = Cell_trace.read_file path in
    Sys.remove path;
    Alcotest.(check bool) (what ^ " survives disk") true
      (Cell_trace.equal t back);
    Alcotest.(check int) (what ^ " length") (Cell_trace.length t)
      (Cell_trace.length back);
    back
  in
  let empty = Cell_trace.create ~vars:[| "a"; "b" |] ~nprocs:2 in
  let back = roundtrip "empty trace" empty in
  Alcotest.(check int) "empty trace has no events" 0 (Cell_trace.length back);
  Alcotest.(check (option int)) "var table survives empty trace" (Some 1)
    (Cell_trace.var_id back "b");
  let one = Cell_trace.create ~vars:[| "x" |] ~nprocs:1 in
  let r = Cell_trace.recorder one in
  r.Fs_trace.Cell_listener.access ~proc:0 ~write:true ~var:0 ~cell:7;
  let back = roundtrip "one-event trace" one in
  Alcotest.check
    (Alcotest.testable Cell_event.pp ( = ))
    "the one event survives"
    (Cell_event.Access { proc = 0; write = true; var = 0; cell = 7 })
    (Cell_trace.get back 0)

(* ------------------------------------------------------------------ *)
(* The trace memo                                                       *)

let test_memo_sharing () =
  Memo.clear ();
  let w = Ws.find "water" in
  let e1 = Memo.get w ~nprocs:4 ~scale:1 in
  let e2 = Memo.get w ~nprocs:4 ~scale:1 in
  Alcotest.(check bool) "second get shares the trace" true
    (e1.Memo.trace == e2.Memo.trace);
  let hits, misses, _, _ = Memo.read_stats () in
  Alcotest.(check (pair int int)) "one miss then one hit" (1, 1) (hits, misses);
  (* get_all: duplicates collapse to one interpretation, order is kept *)
  Memo.clear ();
  let es = Memo.get_all ~jobs:2 [ (w, 4, 1); (w, 4, 1); (w, 2, 1) ] in
  (match es with
   | [ a; b; c ] ->
     Alcotest.(check bool) "duplicates share" true (a.Memo.trace == b.Memo.trace);
     Alcotest.(check int) "4-proc trace" 4 (Cell_trace.nprocs a.Memo.trace);
     Alcotest.(check int) "2-proc trace" 2 (Cell_trace.nprocs c.Memo.trace)
   | _ -> Alcotest.fail "expected three entries");
  let _, misses, _, _ = Memo.read_stats () in
  Alcotest.(check int) "two distinct interpretations" 2 misses;
  Memo.clear ()

let test_memo_eviction () =
  Memo.clear ();
  Memo.set_capacity 1;
  let w = Ws.find "water" in
  ignore (Memo.get w ~nprocs:2 ~scale:1);
  ignore (Memo.get w ~nprocs:3 ~scale:1);
  let _, _, evictions, _ = Memo.read_stats () in
  Alcotest.(check int) "bounded cache evicts" 1 evictions;
  Memo.set_capacity 128;
  Memo.clear ()

(* The memo under concurrent access from pool workers: a tight capacity
   forces evictions to race with hits across domains; the invariants are
   that every worker gets a usable entry, bookkeeping balances (each
   lookup is exactly one hit or one miss), and evictions never exceed
   insertions. *)
let test_memo_concurrent () =
  Memo.clear ();
  Memo.set_capacity 2;
  let w = Ws.find "water" in
  let scales = [| 1; 1; 1; 1 |] in
  let lookups_per_worker = 8 in
  let failures = Atomic.make 0 in
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      for _ = 1 to 3 do
        Par.Pool.run pool (fun worker ->
            for i = 0 to lookups_per_worker - 1 do
              (* workers hit overlapping keys so hits, misses, and
                 evictions all occur concurrently *)
              let nprocs = 2 + ((worker + i) mod 3) in
              let e = Memo.get w ~nprocs ~scale:scales.(worker mod 4) in
              if Cell_trace.nprocs e.Memo.trace <> nprocs then
                Atomic.incr failures
            done)
      done);
  Alcotest.(check int) "every entry usable" 0 (Atomic.get failures);
  let hits, misses, evictions, _ = Memo.read_stats () in
  let total = 3 * 4 * lookups_per_worker in
  Alcotest.(check int) "every lookup is a hit or a miss" total (hits + misses);
  Alcotest.(check bool)
    (Printf.sprintf "evictions (%d) bounded by misses (%d)" evictions misses)
    true
    (evictions <= misses && evictions > 0);
  Memo.set_capacity 128;
  Memo.clear ()

let test_memo_capture_dir () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fstrace-capture" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Memo.clear ();
  Memo.set_capture_dir (Some dir);
  let w = Ws.find "mp3d" in
  let e1 = Memo.get w ~nprocs:4 ~scale:1 in
  Memo.clear ();
  (* a fresh memo finds the capture on disk instead of re-interpreting *)
  Memo.set_capture_dir (Some dir);
  let e2 = Memo.get w ~nprocs:4 ~scale:1 in
  let _, _, _, disk_loads = Memo.read_stats () in
  Alcotest.(check int) "loaded from disk" 1 disk_loads;
  Alcotest.(check bool) "same trace" true
    (Cell_trace.equal e1.Memo.trace e2.Memo.trace);
  (* the interp summary is reconstructed from the event stream *)
  Alcotest.(check bool) "summary rebuilt" true
    (e1.Memo.interp.Interp.work = e2.Memo.interp.Interp.work
    && e1.Memo.interp.Interp.accesses = e2.Memo.interp.Interp.accesses
    && e1.Memo.interp.Interp.barrier_episodes
       = e2.Memo.interp.Interp.barrier_episodes);
  Memo.set_capture_dir None;
  Memo.clear ();
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Sys.rmdir dir

(* ------------------------------------------------------------------ *)
(* Parallel fan-out determinism                                         *)

let test_par_map () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expect = List.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "order kept at jobs=%d" jobs)
        expect
        (Par.map ~jobs f xs))
    [ 1; 2; 4; 7 ];
  (match Par.map ~jobs:4 (fun x -> if x = 41 then failwith "boom" else x) xs with
   | (_ : int list) -> Alcotest.fail "expected failure to propagate"
   | exception Failure msg -> Alcotest.(check string) "error surfaced" "boom" msg);
  Alcotest.(check (list int)) "empty" [] (Par.map ~jobs:4 f []);
  (* clamp edges: 0 means sequential, 1 is sequential, and a request far
     above both the core count and the task count is clamped, not an
     error — all three produce the same ordered results *)
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "clamped at jobs=%d" jobs)
        expect
        (Par.map ~jobs f xs))
    [ 0; 1; 100_000 ];
  Alcotest.(check (list int)) "jobs above n on a short list" [ f 1; f 2 ]
    (Par.map ~jobs:64 f [ 1; 2 ])

(* The experiment drivers return identical results whatever the job
   count — the determinism guarantee behind the --jobs flag. *)
let test_jobs_independence () =
  let fig_a = E.figure3 ~blocks:[ 32 ] ~scale_override:1 ~jobs:1 () in
  let fig_b = E.figure3 ~blocks:[ 32 ] ~scale_override:1 ~jobs:4 () in
  Alcotest.(check bool) "figure3 independent of jobs" true (fig_a = fig_b);
  let sp_a = E.speedups ~procs:[ 1; 4 ] ~names:[ "maxflow" ] ~jobs:1 () in
  let sp_b = E.speedups ~procs:[ 1; 4 ] ~names:[ "maxflow" ] ~jobs:4 () in
  Alcotest.(check bool) "speedups independent of jobs" true (sp_a = sp_b)

(* Replays through Sim agree with the direct-path simulation counts. *)
let test_sim_recorded_counts () =
  let w = Ws.find "raytrace" in
  let nprocs = 4 in
  let prog = w.W.build ~nprocs ~scale:1 in
  let recorded = Sim.record prog ~nprocs in
  let plan = E.plan_for w W.C prog ~nprocs ~scale:1 in
  List.iter
    (fun block ->
      let fresh = Sim.cache_sim prog plan ~nprocs ~block in
      let replayed = Sim.cache_sim ~recorded prog plan ~nprocs ~block in
      Alcotest.(check bool)
        (Printf.sprintf "counts identical at block %d" block)
        true
        (fresh.Sim.counts = replayed.Sim.counts))
    [ 16; 128 ];
  let fresh = Sim.machine_sim prog plan ~nprocs in
  let replayed = Sim.machine_sim ~recorded prog plan ~nprocs in
  Alcotest.(check int) "KSR cycles identical"
    fresh.Sim.machine.Fs_machine.Ksr.cycles
    replayed.Sim.machine.Fs_machine.Ksr.cycles

let suite =
  [ Alcotest.test_case "replay equivalence (all benchmarks)" `Quick
      test_equivalence;
    Alcotest.test_case "pointer loads injected at replay" `Quick
      test_pointer_loads_injected;
    Alcotest.test_case "fused engine count equivalence (all benchmarks)" `Quick
      test_fused_equivalence;
    Alcotest.test_case "fused engine growable arrays" `Quick test_fused_growth;
    Alcotest.test_case "event packing" `Quick test_pack_roundtrip;
    QCheck_alcotest.to_alcotest prop_pack_roundtrip;
    Alcotest.test_case "trace disk round-trip" `Quick test_disk_roundtrip;
    Alcotest.test_case "trace disk truncation points" `Quick
      test_disk_truncation;
    Alcotest.test_case "trace disk round-trip edges" `Quick
      test_disk_roundtrip_edges;
    Alcotest.test_case "memo sharing" `Quick test_memo_sharing;
    Alcotest.test_case "memo eviction" `Quick test_memo_eviction;
    Alcotest.test_case "memo concurrent pool access" `Quick
      test_memo_concurrent;
    Alcotest.test_case "memo capture dir" `Quick test_memo_capture_dir;
    Alcotest.test_case "par map" `Quick test_par_map;
    Alcotest.test_case "jobs independence" `Quick test_jobs_independence;
    Alcotest.test_case "sim replay counts" `Quick test_sim_recorded_counts ]
