(* Tests for the sharded replay engine: bit-identity with the listener
   reference path across shard counts, epoch reconciliation against the
   Phases tracker, set-aligned shard hashing, and the streamed chunked
   reader producing counts identical to the in-memory path. *)

module W = Fs_workloads.Workload
module Ws = Fs_workloads.Workloads
module E = Falseshare.Experiments
module Sim = Falseshare.Sim
module Phases = Falseshare.Phases
module Interp = Fs_interp.Interp
module Replay = Fs_replay.Replay
module Layout = Fs_layout.Layout
module Mpcache = Fs_cache.Mpcache
module Cell_trace = Fs_trace.Cell_trace
module Par = Fs_util.Par

(* The load-bearing property of the whole refactor: for every workload,
   version, block size, and shard count, the merged sharded counts —
   global, per processor, and per block — are bit-identical to the
   listener reference path.  One persistent two-worker pool serves every
   sharded run, so the test exercises real cross-domain execution even
   on a single-core box. *)
let test_sharded_equivalence () =
  let nprocs = 4 and scale = 1 in
  let shard_counts =
    List.sort_uniq compare [ 1; 2; 3; 4; Par.default_jobs () ]
  in
  Par.Pool.with_pool ~jobs:2 (fun pool ->
      List.iter
        (fun (w : W.t) ->
          let prog = w.build ~nprocs ~scale in
          let trace, _ = Interp.record prog ~nprocs in
          List.iter
            (fun version ->
              let plan = E.plan_for w version prog ~nprocs ~scale in
              List.iter
                (fun block ->
                  let layout = Layout.realize prog plan ~block in
                  let config = Mpcache.default_config ~nprocs ~block in
                  let reference =
                    Mpcache.create ~track_blocks:true
                      ~max_addr:(Layout.size layout) config
                  in
                  Replay.replay_to_sink trace ~layout
                    ~sink:(Mpcache.sink reference);
                  List.iter
                    (fun shards ->
                      let s =
                        Replay.simulate_sharded ~pool ~track_blocks:true trace
                          ~shards ~layout ~config
                      in
                      let caches = Replay.sharded_caches s in
                      let what =
                        Printf.sprintf "%s/%s b=%d shards=%d" w.name
                          (W.version_to_string version) block shards
                      in
                      Alcotest.(check bool) (what ^ ": global counts") true
                        (s.Replay.counts = Mpcache.counts reference);
                      Alcotest.(check bool) (what ^ ": per-proc counts") true
                        (Mpcache.merged_proc_counts caches
                        = Mpcache.proc_counts reference);
                      Alcotest.(check bool) (what ^ ": per-block counts") true
                        (Mpcache.merged_per_block caches
                        = Mpcache.per_block reference))
                    shard_counts)
                [ 16; 128 ])
            [ W.N; W.C ])
        Ws.all)

(* Epoch reconciliation: the merged per-epoch deltas must sum to the
   whole-run totals, and must agree epoch for epoch with the Phases
   tracker's listener-path segmentation of the same replay. *)
let test_epoch_reconciliation () =
  List.iter
    (fun name ->
      let w = Ws.find name in
      let nprocs = w.W.fig3_procs in
      let prog = w.W.build ~nprocs ~scale:w.W.default_scale in
      let recorded = Sim.record prog ~nprocs in
      let block = 128 in
      let layout = Layout.default prog ~block in
      let config = Mpcache.default_config ~nprocs ~block in
      let p =
        Phases.analyze ~recorded prog Fs_layout.Plan.empty ~nprocs ~block
      in
      List.iter
        (fun shards ->
          let s =
            Replay.simulate_sharded recorded.Sim.trace ~shards ~layout ~config
          in
          let what = Printf.sprintf "%s shards=%d" name shards in
          let esum = Mpcache.zero_counts () in
          Array.iter (fun e -> Mpcache.add_into esum e) s.Replay.epochs;
          Alcotest.(check bool) (what ^ ": epochs sum to totals") true
            (esum = s.Replay.counts);
          Alcotest.(check int) (what ^ ": epoch count")
            (List.length p.Phases.epochs)
            (Array.length s.Replay.epochs);
          List.iter
            (fun (e : Phases.epoch) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: epoch %d counts" what e.Phases.index)
                true
                (Phases.epoch_total e = s.Replay.epochs.(e.Phases.index)))
            p.Phases.epochs)
        [ 1; 3; 4 ])
    [ "pverify"; "topopt" ]

(* The shard hash is set-aligned: every address of one block, and every
   block of one LRU set, must land in the same shard — the invariant the
   bit-identity argument rests on. *)
let test_shard_hash_set_aligned () =
  let config =
    { Mpcache.nprocs = 4; block = 64; cache_bytes = 32 * 1024; assoc = 4 }
  in
  let sh = Mpcache.sharding config in
  let nsets = 32 * 1024 / (64 * 4) in
  List.iter
    (fun shards ->
      for b = 0 to 4 * nsets do
        let base = b * 64 in
        let s0 = Mpcache.shard_of_addr sh ~shards ~addr:base in
        Alcotest.(check bool) "shard in range" true (s0 >= 0 && s0 < shards);
        (* all addresses of the block *)
        Alcotest.(check int) "block-aligned" s0
          (Mpcache.shard_of_addr sh ~shards ~addr:(base + 63));
        (* the block one whole cache round away shares the set *)
        Alcotest.(check int) "set-aligned" s0
          (Mpcache.shard_of_addr sh ~shards ~addr:(base + (nsets * 64)))
      done)
    [ 1; 2; 3; 4; 7 ];
  let w = Ws.find "pverify" in
  let prog = w.W.build ~nprocs:4 ~scale:1 in
  let trace, _ = Interp.record prog ~nprocs:4 in
  let layout = Layout.default prog ~block:64 in
  (match Replay.simulate_sharded trace ~shards:0 ~layout ~config with
   | (_ : Replay.sharded) -> Alcotest.fail "expected Invalid_argument"
   | exception Invalid_argument _ -> ())

(* Streamed replay: a trace written to disk and replayed through the
   chunked reader — with a chunk far smaller than the trace, so many
   windows are exercised — produces counts identical to the in-memory
   path, sharded or not. *)
let test_stream_replay_identity () =
  let w = Ws.find "maxflow" in
  let nprocs = 4 in
  let prog = w.W.build ~nprocs ~scale:1 in
  let trace, _ = Interp.record prog ~nprocs in
  let block = 64 in
  let layout = Layout.default prog ~block in
  let config = Mpcache.default_config ~nprocs ~block in
  let in_memory =
    Replay.simulate_sharded trace ~shards:1 ~layout ~config
  in
  let path = Filename.temp_file "fstrace" ".fstrace" in
  Cell_trace.write_file trace path;
  let chunk = 1024 in
  Alcotest.(check bool) "trace spans several chunks" true
    (Cell_trace.length trace > 2 * chunk);
  List.iter
    (fun shards ->
      let stream = Cell_trace.of_file_stream ~chunk path in
      Alcotest.(check int) "stream length" (Cell_trace.length trace)
        (Cell_trace.Stream.length stream);
      Alcotest.(check int) "stream nprocs" nprocs
        (Cell_trace.Stream.nprocs stream);
      Alcotest.(check bool) "stream vars" true
        (Cell_trace.Stream.vars stream = Cell_trace.vars trace);
      let s =
        Replay.simulate_sharded_stream stream ~shards ~layout ~config
      in
      Alcotest.(check bool)
        (Printf.sprintf "streamed counts identical (shards=%d)" shards)
        true
        (s.Replay.counts = in_memory.Replay.counts);
      Alcotest.(check bool)
        (Printf.sprintf "streamed epochs identical (shards=%d)" shards)
        true
        (s.Replay.epochs = in_memory.Replay.epochs);
      Cell_trace.Stream.close stream;
      (match Cell_trace.Stream.iter_chunks (fun _ _ -> ()) stream with
       | () -> Alcotest.fail "expected Invalid_argument after close"
       | exception Invalid_argument _ -> ()))
    [ 1; 3 ];
  Sys.remove path

(* The routing surface: Sim.cache_sim and Pipeline.run with shards > 1
   must report the same counts (and per-block table) as their
   single-core defaults. *)
let test_routing_equivalence () =
  let w = Ws.find "raytrace" in
  let nprocs = 4 in
  let prog = w.W.build ~nprocs ~scale:1 in
  let recorded = Sim.record prog ~nprocs in
  let plan = E.plan_for w W.C prog ~nprocs ~scale:1 in
  List.iter
    (fun block ->
      let single = Sim.cache_sim ~recorded prog plan ~nprocs ~block in
      let sharded =
        Sim.cache_sim ~shards:3 ~recorded prog plan ~nprocs ~block
      in
      Alcotest.(check bool)
        (Printf.sprintf "cache_sim counts at block %d" block)
        true
        (single.Sim.counts = sharded.Sim.counts))
    [ 16; 128 ];
  let p1 = Falseshare.Pipeline.run prog ~nprocs ~block:128 in
  let p3 = Falseshare.Pipeline.run ~shards:3 prog ~nprocs ~block:128 in
  Alcotest.(check bool) "pipeline counts" true
    (p1.Falseshare.Pipeline.cache.Sim.counts
    = p3.Falseshare.Pipeline.cache.Sim.counts);
  Alcotest.(check bool) "pipeline per-block" true
    (p1.Falseshare.Pipeline.cache.Sim.per_block
    = p3.Falseshare.Pipeline.cache.Sim.per_block);
  (* epochs pin the run to the listener path: the epoch list must be
     populated even when shards are requested *)
  let pe = Falseshare.Pipeline.run ~shards:3 ~epochs:true prog ~nprocs ~block:128 in
  Alcotest.(check bool) "epochs still tracked" true
    (match pe.Falseshare.Pipeline.epochs with
     | Some (_ :: _) -> true
     | _ -> false)

let suite =
  [ Alcotest.test_case "sharded count equivalence (all benchmarks)" `Quick
      test_sharded_equivalence;
    Alcotest.test_case "epoch reconciliation vs phases tracker" `Quick
      test_epoch_reconciliation;
    Alcotest.test_case "shard hash set-aligned" `Quick
      test_shard_hash_set_aligned;
    Alcotest.test_case "streamed replay identity" `Quick
      test_stream_replay_identity;
    Alcotest.test_case "sim/pipeline sharded routing" `Quick
      test_routing_equivalence ]
