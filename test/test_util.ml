(* Unit tests for lib/util: the deterministic PRNG, alignment arithmetic,
   table rendering and the small statistics helpers. *)

module Rng = Fs_util.Rng
module Align = Fs_util.Align
module Table = Fs_util.Table
module Stats = Fs_util.Stats

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_changes_stream () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let test_rng_invalid_bound () =
  let r = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 100 do
    let x = Rng.float r 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 2.5)
  done

let test_shuffle_permutes () =
  let r = Rng.create 5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_align_round_up () =
  Alcotest.(check int) "already aligned" 128 (Align.round_up 128 128);
  Alcotest.(check int) "rounds up" 128 (Align.round_up 1 128);
  Alcotest.(check int) "zero" 0 (Align.round_up 0 64);
  Alcotest.check_raises "bad align"
    (Invalid_argument "Align.round_up: align must be positive") (fun () ->
      ignore (Align.round_up 4 0))

let test_align_round_up_prop =
  QCheck.Test.make ~name:"round_up is smallest aligned >= n" ~count:500
    QCheck.(pair (int_range 0 100000) (int_range 1 512))
    (fun (n, a) ->
      let r = Align.round_up n a in
      r >= n && r mod a = 0 && r - n < a)

let test_align_helpers () =
  Alcotest.(check bool) "aligned" true (Align.is_aligned 256 128);
  Alcotest.(check bool) "not aligned" false (Align.is_aligned 260 128);
  Alcotest.(check int) "block of" 2 (Align.block_of ~block:128 257);
  Alcotest.(check int) "word of" 3 (Align.word_of ~word:4 12);
  Alcotest.(check bool) "power of two" true (Align.is_power_of_two 64);
  Alcotest.(check bool) "not power of two" false (Align.is_power_of_two 48);
  Alcotest.(check bool) "zero not power" false (Align.is_power_of_two 0)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ] in
  Alcotest.(check bool) "has rule" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  (* header, rule, two rows, and the trailing newline's empty tail *)
  Alcotest.(check int) "five pieces" 5 (List.length lines)

let test_table_ragged () =
  let s = Table.render [ [ "a" ]; [ "b"; "c" ] ] in
  Alcotest.(check bool) "renders ragged rows" true (String.length s > 0)

let test_table_formats () =
  Alcotest.(check string) "pct" "56.5%" (Table.pct 0.565);
  Alcotest.(check string) "f1" "3.1" (Table.f1 3.14159);
  Alcotest.(check string) "f2" "3.14" (Table.f2 3.14159)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean []);
  Alcotest.(check (float 1e-6)) "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (Stats.ratio 1 2);
  Alcotest.(check (float 1e-9)) "ratio den 0" 0.0 (Stats.ratio 1 0);
  Alcotest.(check (option int)) "argmax" (Some 3)
    (Stats.argmax float_of_int [ 1; 3; 2 ]);
  Alcotest.(check (option int)) "argmax empty" None (Stats.argmax float_of_int [])

(* The FALSESHARE_JOBS environment override: a positive integer wins
   over the detected core count, malformed or non-positive values are
   ignored, and the value is clamped to 64. *)
let test_default_jobs_env () =
  let with_env v f =
    (match v with
     | Some s -> Unix.putenv "FALSESHARE_JOBS" s
     | None -> Unix.putenv "FALSESHARE_JOBS" "");
    Fun.protect ~finally:(fun () -> Unix.putenv "FALSESHARE_JOBS" "") f
  in
  let detected = with_env None Fs_util.Par.default_jobs in
  with_env (Some "3") (fun () ->
      Alcotest.(check int) "override honored" 3 (Fs_util.Par.default_jobs ()));
  with_env (Some " 5 ") (fun () ->
      Alcotest.(check int) "whitespace tolerated" 5 (Fs_util.Par.default_jobs ()));
  with_env (Some "500") (fun () ->
      Alcotest.(check int) "clamped to 64" 64 (Fs_util.Par.default_jobs ()));
  List.iter
    (fun bad ->
      with_env (Some bad) (fun () ->
          Alcotest.(check int)
            (Printf.sprintf "%S ignored" bad)
            detected (Fs_util.Par.default_jobs ())))
    [ "0"; "-2"; "lots"; "2.5" ]

(* The persistent pool: every worker runs each generation exactly once,
   errors propagate without killing the pool, nested runs are rejected,
   shutdown is idempotent, and the cumulative stats account one task per
   worker per generation. *)
let test_pool () =
  let module Pool = Fs_util.Par.Pool in
  Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.(check int) "jobs clamped" 3 (Pool.jobs p);
      let hits = Array.make 3 0 in
      for _ = 1 to 5 do
        Pool.run p (fun w -> hits.(w) <- hits.(w) + 1)
      done;
      Alcotest.(check (list int)) "each worker ran every generation"
        [ 5; 5; 5 ] (Array.to_list hits);
      (* an error from any worker surfaces in the caller; the pool stays
         usable afterwards *)
      (match Pool.run p (fun w -> if w = 1 then failwith "boom") with
       | () -> Alcotest.fail "expected failure to propagate"
       | exception Failure msg ->
         Alcotest.(check string) "error surfaced" "boom" msg);
      Pool.run p (fun w -> hits.(w) <- hits.(w) + 1);
      Alcotest.(check (list int)) "pool usable after error" [ 6; 6; 6 ]
        (Array.to_list hits);
      (* a nested run from inside a body must be rejected, not deadlock *)
      let nested_rejected = ref false in
      Pool.run p (fun w ->
          if w = 0 then
            match Pool.run p (fun _ -> ()) with
            | () -> ()
            | exception Invalid_argument _ -> nested_rejected := true);
      Alcotest.(check bool) "nested run rejected" true !nested_rejected;
      let st = Pool.stats p in
      Alcotest.(check int) "stats jobs" 3 st.Fs_util.Par.jobs;
      Alcotest.(check int) "one task per worker per generation"
        (8 * 3) st.Fs_util.Par.task_count);
  (* with_pool shut the pool down; a second shutdown is a no-op and
     running afterwards is an error *)
  let p = Pool.create ~jobs:2 () in
  Pool.shutdown p;
  Pool.shutdown p;
  (match Pool.run p (fun _ -> ()) with
   | () -> Alcotest.fail "expected run after shutdown to be rejected"
   | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Sha256: the NIST FIPS 180-2 vectors, plus the streaming interface —
   the store's content addresses are only as good as this digest *)

let test_sha256_vectors () =
  let check what expect input =
    Alcotest.(check string) what expect (Fs_util.Sha256.digest_hex input)
  in
  check "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" "";
  check "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" "abc";
  check "448-bit message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  check "million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (String.make 1_000_000 'a');
  (* padding edge cases: lengths 55/56/64 straddle the length-word split *)
  check "55 bytes"
    "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"
    (String.make 55 'a');
  check "56 bytes"
    "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
    (String.make 56 'a');
  check "64 bytes"
    "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
    (String.make 64 'a')

let test_sha256_streaming () =
  (* feeding in ragged chunks must equal the one-shot digest *)
  let msg = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let expect = Fs_util.Sha256.digest_hex msg in
  List.iter
    (fun chunk ->
      let ctx = Fs_util.Sha256.init () in
      let i = ref 0 in
      while !i < String.length msg do
        let n = min chunk (String.length msg - !i) in
        Fs_util.Sha256.feed ctx (String.sub msg !i n);
        i := !i + n
      done;
      Alcotest.(check string)
        (Printf.sprintf "chunk size %d" chunk)
        expect (Fs_util.Sha256.hex ctx))
    [ 1; 3; 55; 64; 65; 997 ]

let suite =
  [ Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "sha256 streaming" `Quick test_sha256_streaming;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seed_changes_stream;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    QCheck_alcotest.to_alcotest test_rng_bounds;
    Alcotest.test_case "rng invalid bound" `Quick test_rng_invalid_bound;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "align round_up" `Quick test_align_round_up;
    QCheck_alcotest.to_alcotest test_align_round_up_prop;
    Alcotest.test_case "align helpers" `Quick test_align_helpers;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table ragged" `Quick test_table_ragged;
    Alcotest.test_case "table formats" `Quick test_table_formats;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "default_jobs env override" `Quick test_default_jobs_env;
    Alcotest.test_case "persistent pool" `Quick test_pool ]
