(* Tests for the runtime telemetry spine: causal spans (nesting, ids,
   attrs, error capture, the ambient recorder), a QCheck property that
   child span intervals always sit inside their parent's, the domain
   pool's per-worker instrumentation, and the fused-replay flight
   recorder's agreement with the uninstrumented path. *)

module Span = Fs_obs.Span
module Par = Fs_util.Par
module Rng = Fs_util.Rng
module Flight = Fs_replay.Flight
module Replay = Fs_replay.Replay
module Sim = Falseshare.Sim
module Layout = Fs_layout.Layout
module Cell_trace = Fs_trace.Cell_trace
module C = Fs_cache.Mpcache
module W = Fs_workloads.Workload
module Ws = Fs_workloads.Workloads

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let test_span_basics () =
  let t = Span.create () in
  let r =
    Span.with_ t "root" ~attrs:[ ("block", "64") ] (fun () ->
        let a = Span.with_ t "child1" (fun () -> Span.attr t "inner" "1"; 1) in
        let b = Span.with_ t "child2" (fun () -> 2) in
        a + b)
  in
  Alcotest.(check int) "with_ returns the thunk's value" 3 r;
  match Span.spans t with
  | [ root; c1; c2 ] ->
    Alcotest.(check int) "dense ids" 0 root.Span.id;
    Alcotest.(check int) "root has no parent" (-1) root.Span.parent;
    Alcotest.(check int) "child1 under root" root.Span.id c1.Span.parent;
    Alcotest.(check int) "child2 under root" root.Span.id c2.Span.parent;
    Alcotest.(check int) "root depth" 0 root.Span.depth;
    Alcotest.(check int) "child depth" 1 c2.Span.depth;
    Alcotest.(check (option string)) "start attrs kept" (Some "64")
      (List.assoc_opt "block" root.Span.attrs);
    Alcotest.(check (option string)) "attr lands on innermost open span"
      (Some "1")
      (List.assoc_opt "inner" c1.Span.attrs);
    List.iter
      (fun s ->
        Alcotest.(check bool) (s.Span.name ^ " closed") true
          (s.Span.dur_s >= 0. && s.Span.alloc_bytes >= 0.))
      [ root; c1; c2 ]
  | spans ->
    Alcotest.fail (Printf.sprintf "expected 3 spans, got %d" (List.length spans))

let test_span_errors_and_ambient () =
  (* an exception closes the span, stamps an "error" attribute, and
     re-raises unchanged *)
  let t = Span.create () in
  (match Span.with_ t "boom" (fun () -> failwith "kaput") with
   | () -> Alcotest.fail "exception swallowed"
   | exception Failure m -> Alcotest.(check string) "re-raised" "kaput" m);
  (match Span.spans t with
   | [ s ] ->
     Alcotest.(check bool) "span closed despite raise" true (s.Span.dur_s >= 0.);
     (match List.assoc_opt "error" s.Span.attrs with
      | Some e -> Tutil.check_contains "error attr" e "kaput"
      | None -> Alcotest.fail "no error attribute")
   | _ -> Alcotest.fail "expected exactly one span");
  (* with no ambient recorder, timed is a passthrough and note a no-op *)
  Span.set_current None;
  Alcotest.(check int) "timed passthrough" 42 (Span.timed "x" (fun () -> 42));
  Span.note "k" "v";
  (* with one installed, timed records into it *)
  let amb = Span.create () in
  Span.set_current (Some amb);
  Fun.protect ~finally:(fun () -> Span.set_current None) @@ fun () ->
  Alcotest.(check int) "timed with recorder" 7
    (Span.timed "cmd" ~attrs:[ ("a", "b") ] (fun () ->
         Span.note "n" "v";
         7));
  match Span.spans amb with
  | [ s ] ->
    Alcotest.(check string) "ambient span name" "cmd" s.Span.name;
    Alcotest.(check (option string)) "start attr kept" (Some "b")
      (List.assoc_opt "a" s.Span.attrs);
    Alcotest.(check (option string)) "note lands on the ambient span"
      (Some "v")
      (List.assoc_opt "n" s.Span.attrs)
  | _ -> Alcotest.fail "ambient recorder did not record"

(* Random span trees, seeded: every child's [start, start+dur] interval
   must sit inside its parent's, depths must increase by one, and ids
   must be dense in start order.  This is the acceptance property for
   "consistent nesting" of the profile subcommand's span tree. *)
let prop_span_nesting =
  QCheck.Test.make ~name:"span intervals nest inside their parent" ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let t = Span.create () in
      let rec build depth =
        Span.with_ t (Printf.sprintf "n%d" depth) (fun () ->
            (* a little allocation so spans have nonzero footprints *)
            ignore (Sys.opaque_identity (Array.make (1 + Rng.int rng 64) 0));
            if depth < 3 then
              for _ = 1 to Rng.int rng 4 do
                build (depth + 1)
              done)
      in
      for _ = 0 to Rng.int rng 3 do
        build 0
      done;
      let spans = Array.of_list (Span.spans t) in
      let eps = 1e-9 in
      let ok = ref true in
      Array.iteri
        (fun i (s : Span.span) ->
          if s.Span.id <> i || s.Span.dur_s < 0. then ok := false;
          if s.Span.parent = -1 then begin
            if s.Span.depth <> 0 then ok := false
          end
          else begin
            let p = spans.(s.Span.parent) in
            if p.Span.depth + 1 <> s.Span.depth then ok := false;
            if p.Span.id >= s.Span.id then ok := false;
            if p.Span.start_s > s.Span.start_s +. eps then ok := false;
            if
              s.Span.start_s +. s.Span.dur_s
              > p.Span.start_s +. p.Span.dur_s +. eps
            then ok := false
          end)
        spans;
      !ok)

(* ------------------------------------------------------------------ *)
(* Domain-pool instrumentation                                         *)

let test_par_stats () =
  let seen = ref [] in
  Par.set_observer (Some (fun s -> seen := s :: !seen));
  Fun.protect ~finally:(fun () -> Par.set_observer None) @@ fun () ->
  let xs = List.init 20 Fun.id in
  let f x = x * x in
  (* an explicit jobs above the core count is honored (oversubscribed) *)
  let rs, s = Par.map_with_stats ~jobs:4 f xs in
  Alcotest.(check (list int)) "results in input order" (List.map f xs) rs;
  Alcotest.(check int) "four workers measured" 4 s.Par.jobs;
  Alcotest.(check int) "one stats row per worker" 4 (Array.length s.Par.workers);
  Alcotest.(check int) "every task claimed exactly once" 20
    (Array.fold_left (fun a w -> a + w.Par.tasks) 0 s.Par.workers);
  Array.iteri
    (fun i w ->
      Alcotest.(check int) "worker indexed" i w.Par.worker;
      Alcotest.(check int)
        (Printf.sprintf "W%d run histogram sums to its task count" i)
        w.Par.tasks
        (Array.fold_left ( + ) 0 w.Par.run_hist);
      Alcotest.(check bool) "nonnegative times" true
        (w.Par.busy_s >= 0. && w.Par.wait_s >= 0.))
    s.Par.workers;
  (* jobs never exceed the task count *)
  let _, s2 = Par.map_with_stats ~jobs:64 f [ 1; 2; 3 ] in
  Alcotest.(check int) "capped by task count" 3 s2.Par.jobs;
  (* the sequential path reports a single worker owning every task *)
  let _, s3 = Par.map_with_stats ~jobs:1 f xs in
  Alcotest.(check int) "sequential single worker" 1 (Array.length s3.Par.workers);
  Alcotest.(check int) "sequential tasks" 20 s3.Par.workers.(0).Par.tasks;
  (* the observer saw every fan-out, the sequential one included *)
  Alcotest.(check int) "observer notified" 3 (List.length !seen);
  (* the deterministic summary has one row per worker plus totals *)
  let txt = Par.render_stats s in
  Tutil.check_contains "summary row W0" txt "W0";
  Tutil.check_contains "summary row W3" txt "W3";
  Tutil.check_contains "summary totals" txt "total";
  Tutil.check_contains "summary trailer" txt "4 job(s), 20 task(s)"

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)

let test_flight () =
  let w = Ws.find "pverify" in
  let nprocs = 4 in
  let prog = w.W.build ~nprocs ~scale:1 in
  let recorded = Sim.record prog ~nprocs in
  let layout = Layout.default prog ~block:64 in
  let max_addr = Layout.size layout in
  let run flight =
    let c = C.create ~max_addr (C.default_config ~nprocs ~block:64) in
    Replay.simulate ?flight recorded.Sim.trace ~layout ~cache:c;
    C.counts c
  in
  let flight = Flight.create ~capacity:32 ~interval:512 () in
  let on = run (Some flight) in
  let off = run None in
  Alcotest.(check bool) "recorder never changes the simulation" true (on = off);
  let samples = Flight.samples flight in
  Alcotest.(check bool) "samples retained" true (samples <> []);
  Alcotest.(check bool) "ring bounded by capacity" true
    (List.length samples <= 32);
  let rec increasing = function
    | a :: (b :: _ as tl) ->
      a.Flight.s_event < b.Flight.s_event && increasing tl
    | _ -> true
  in
  Alcotest.(check bool) "event indices strictly increase" true
    (increasing samples);
  (* the final sample carries the cumulative end-state counters *)
  let last = List.nth samples (List.length samples - 1) in
  Alcotest.(check int) "last sample event index"
    (Cell_trace.length recorded.Sim.trace - 1)
    last.Flight.s_event;
  Alcotest.(check int) "final reads" off.C.reads last.Flight.s_reads;
  Alcotest.(check int) "final writes" off.C.writes last.Flight.s_writes;
  Alcotest.(check int) "final false sharing" off.C.false_sh
    last.Flight.s_false_sh;
  let d = Flight.digest flight in
  Alcotest.(check int) "digest events" last.Flight.s_event d.Flight.d_events;
  Alcotest.(check int) "digest retained" (List.length samples)
    d.Flight.d_retained;
  Alcotest.(check bool) "digest taken covers retained" true
    (d.Flight.d_taken >= d.Flight.d_retained);
  Alcotest.(check int) "digest cold" off.C.cold d.Flight.d_cold;
  Alcotest.(check int) "digest true sharing" off.C.true_sh d.Flight.d_true_sh;
  Alcotest.(check int) "digest false sharing" off.C.false_sh
    d.Flight.d_false_sh;
  Alcotest.(check bool) "hot block identified" true (d.Flight.d_hot_block >= 0);
  Alcotest.(check bool) "hot share in (0,1]" true
    (d.Flight.d_hot_share > 0. && d.Flight.d_hot_share <= 1.);
  (* reuse across runs: start resets the ring *)
  let again = run (Some flight) in
  Alcotest.(check bool) "reused recorder still agrees" true (again = off);
  Alcotest.(check int) "ring reset on reuse" d.Flight.d_retained
    (Flight.digest flight).Flight.d_retained;
  (* the render and JSON exports carry the digest *)
  Tutil.check_contains "render shows cadence" (Flight.render flight) "512";
  match Flight.to_json flight with
  | Fs_obs.Json.Obj fields ->
    Alcotest.(check bool) "json has samples" true
      (List.mem_assoc "samples" fields);
    Alcotest.(check bool) "json has rate" true
      (List.mem_assoc "mevents_per_s" fields)
  | _ -> Alcotest.fail "flight json is not an object"

let suite =
  [ Alcotest.test_case "span basics" `Quick test_span_basics;
    Alcotest.test_case "span errors and ambient recorder" `Quick
      test_span_errors_and_ambient;
    QCheck_alcotest.to_alcotest prop_span_nesting;
    Alcotest.test_case "pool instrumentation" `Quick test_par_stats;
    Alcotest.test_case "flight recorder" `Quick test_flight ]
