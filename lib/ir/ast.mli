(** Abstract syntax of ParC, the explicitly parallel C-like mini-language.

    ParC models the programming paradigm of Section 2 of the paper: SPMD
    processes created by an implicit fork of [main], differentiated by a
    process differentiating variable (the [Pdv] expression), synchronizing
    with global barriers and mutual-exclusion locks, and sharing statically
    declared global data.

    All scalars (ints, floats, pointers, lock words) occupy {!word_size}
    bytes of simulated memory.  Shared globals live in simulated memory and
    produce trace events when accessed; private variables are per-process
    interpreter bindings and are not traced (they model registers and
    per-process stack data, which do not participate in false sharing). *)

val word_size : int
(** Size in bytes of every ParC scalar cell (4). *)

(** Scalar types. *)
type scalar =
  | Tint
  | Tfloat
  | Tlock  (** a lock word; only valid as the target of lock/unlock *)

type ty =
  | Scalar of scalar
  | Array of ty * int  (** [Array (t, n)]: [n] elements of type [t] *)
  | Struct of string   (** reference to a named struct *)

type struct_def = {
  sname : string;
  fields : (string * ty) list;
}

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Min | Max

type expr =
  | Int_lit of int
  | Float_lit of float
  | Pdv                     (** this process's id, in [\[0, nprocs)] *)
  | Nprocs                  (** the number of processes *)
  | Priv of string          (** read of a private variable or parameter *)
  | Load of lvalue          (** read of shared memory *)
  | Unop of unop * expr
  | Binop of binop * expr * expr

(** An lvalue designates a scalar cell of a shared global: the global's name
    followed by a path of array indexings and struct field selections. *)
and lvalue = {
  base : string;
  path : access list;
}

and access =
  | Idx of expr
  | Fld of string

type stmt =
  | Store of lvalue * expr          (** write to shared memory *)
  | Set of string * expr            (** assignment to a private variable *)
  | Decl of string * expr           (** declare + initialize a private int/float *)
  | If of expr * block * block
  | While of expr * block
  | For of string * expr * expr * block
      (** [For (v, lo, hi, body)]: private [v] ranges over [lo .. hi-1] *)
  | Call of { ret : string option; callee : string; args : expr list }
  | Spawn of { callee : string; args : expr list }
      (** enqueue a task — a deferred activation of [callee] — on this
          process's work-stealing deque; the runtime ({!Fs_sched}) decides
          which process eventually executes it *)
  | Sync
      (** join: run and steal tasks until every task spawned by the
          current activation has completed (at the entry's top level:
          until the whole program is quiescent) *)
  | Return of expr option
  | Barrier                         (** global barrier over all processes *)
  | Lock of lvalue                  (** acquire; target must be a [Tlock] cell *)
  | Unlock of lvalue

and block = stmt list

type func = {
  fname : string;
  params : string list;   (** private, by value *)
  body : block;
}

type program = {
  pname : string;
  structs : struct_def list;
  globals : (string * ty) list;  (** shared, zero-initialized, decl order = memory order *)
  funcs : func list;
  entry : string;                (** executed by every process (SPMD) *)
}

val find_struct : program -> string -> struct_def
(** @raise Not_found if no struct has that name. *)

val find_func : program -> string -> func
(** @raise Not_found if no function has that name. *)

val find_global : program -> string -> ty
(** @raise Not_found if no global has that name. *)

val scalar_of_ty : program -> ty -> path:access list -> scalar option
(** [scalar_of_ty p t ~path] is the scalar type reached from [t] by
    following the {e shape} of [path] (indices are not evaluated), or
    [None] if the path does not lead to a scalar. *)

val iter_exprs_stmt : (expr -> unit) -> stmt -> unit
(** Apply [f] to every expression directly contained in the statement
    (not recursing into nested blocks). *)

val iter_blocks_stmt : (block -> unit) -> stmt -> unit
(** Apply [f] to every block directly nested in the statement. *)

val iter_stmts : (stmt -> unit) -> block -> unit
(** Pre-order traversal of every statement in a block, recursing into
    nested blocks. *)

val iter_lvalues_expr : (lvalue -> unit) -> expr -> unit
(** Apply [f] to every lvalue read inside an expression, including lvalues
    nested in index expressions. *)
