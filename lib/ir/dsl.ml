open Ast

let int_t = Scalar Tint
let float_t = Scalar Tfloat
let lock_t = Scalar Tlock
let arr t n = Array (t, n)
let arr2 t n m = Array (Array (t, m), n)
let struct_t name = Struct name

let i n = Int_lit n
let f x = Float_lit x
let pdv = Pdv
let nprocs = Nprocs
let p name = Priv name

let ( +% ) a b = Binop (Add, a, b)
let ( -% ) a b = Binop (Sub, a, b)
let ( *% ) a b = Binop (Mul, a, b)
let ( /% ) a b = Binop (Div, a, b)
let ( %% ) a b = Binop (Mod, a, b)
let ( ==% ) a b = Binop (Eq, a, b)
let ( <>% ) a b = Binop (Ne, a, b)
let ( <% ) a b = Binop (Lt, a, b)
let ( <=% ) a b = Binop (Le, a, b)
let ( >% ) a b = Binop (Gt, a, b)
let ( >=% ) a b = Binop (Ge, a, b)
let ( &&% ) a b = Binop (And, a, b)
let ( ||% ) a b = Binop (Or, a, b)
let neg e = Unop (Neg, e)
let not_ e = Unop (Not, e)
let min_ a b = Binop (Min, a, b)
let max_ a b = Binop (Max, a, b)

let v base = { base; path = [] }
let ( .%() ) lv e = { lv with path = lv.path @ [ Idx e ] }
let ( .%{} ) lv fld = { lv with path = lv.path @ [ Fld fld ] }
let ld lv = Load lv

let ( <-- ) lv e = Store (lv, e)
let set name e = Set (name, e)
let decl name e = Decl (name, e)
let sif c t e = If (c, t, e)
let when_ c b = If (c, b, [])
let swhile c b = While (c, b)
let sfor var lo hi body = For (var, lo, hi, body)
let call callee args = Call { ret = None; callee; args }
let call_ret ret callee args = Call { ret = Some ret; callee; args }
let spawn callee args = Spawn { callee; args }
let sync = Sync
let ret e = Return (Some e)
let ret_void = Return None
let barrier = Barrier
let lock lv = Lock lv
let unlock lv = Unlock lv
let incr_ lv = Store (lv, Binop (Add, Load lv, Int_lit 1))
let bump lv e = Store (lv, Binop (Add, Load lv, e))

let fn fname params body = { fname; params; body }

let program ~name ?(structs = []) ~globals ?(entry = "main") funcs =
  { pname = name; structs; globals; funcs; entry }
