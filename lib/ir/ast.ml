let word_size = 4

type scalar = Tint | Tfloat | Tlock

type ty = Scalar of scalar | Array of ty * int | Struct of string

type struct_def = { sname : string; fields : (string * ty) list }

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Min | Max

type expr =
  | Int_lit of int
  | Float_lit of float
  | Pdv
  | Nprocs
  | Priv of string
  | Load of lvalue
  | Unop of unop * expr
  | Binop of binop * expr * expr

and lvalue = { base : string; path : access list }
and access = Idx of expr | Fld of string

type stmt =
  | Store of lvalue * expr
  | Set of string * expr
  | Decl of string * expr
  | If of expr * block * block
  | While of expr * block
  | For of string * expr * expr * block
  | Call of { ret : string option; callee : string; args : expr list }
  | Spawn of { callee : string; args : expr list }
  | Sync
  | Return of expr option
  | Barrier
  | Lock of lvalue
  | Unlock of lvalue

and block = stmt list

type func = { fname : string; params : string list; body : block }

type program = {
  pname : string;
  structs : struct_def list;
  globals : (string * ty) list;
  funcs : func list;
  entry : string;
}

let find_struct p name = List.find (fun s -> s.sname = name) p.structs
let find_func p name = List.find (fun f -> f.fname = name) p.funcs
let find_global p name = List.assoc name p.globals

let rec scalar_of_ty p t ~path =
  match (t, path) with
  | Scalar s, [] -> Some s
  | Scalar _, _ :: _ -> None
  | Array (elt, _), Idx _ :: rest -> scalar_of_ty p elt ~path:rest
  | Array _, _ -> None
  | Struct name, Fld f :: rest -> (
    match List.assoc_opt f (find_struct p name).fields with
    | Some ft -> scalar_of_ty p ft ~path:rest
    | None -> None)
  | Struct _, _ -> None

let iter_exprs_stmt f = function
  | Store (lv, e) ->
    List.iter (function Idx e -> f e | Fld _ -> ()) lv.path;
    f e
  | Set (_, e) | Decl (_, e) -> f e
  | If (c, _, _) | While (c, _) -> f c
  | For (_, lo, hi, _) -> f lo; f hi
  | Call { args; _ } | Spawn { args; _ } -> List.iter f args
  | Return (Some e) -> f e
  | Return None | Barrier | Sync -> ()
  | Lock lv | Unlock lv ->
    List.iter (function Idx e -> f e | Fld _ -> ()) lv.path

let iter_blocks_stmt f = function
  | If (_, b1, b2) -> f b1; f b2
  | While (_, b) | For (_, _, _, b) -> f b
  | Store _ | Set _ | Decl _ | Call _ | Spawn _ | Sync | Return _ | Barrier
  | Lock _ | Unlock _ ->
    ()

let rec iter_stmts f block =
  List.iter
    (fun s ->
      f s;
      iter_blocks_stmt (iter_stmts f) s)
    block

let rec iter_lvalues_expr f = function
  | Int_lit _ | Float_lit _ | Pdv | Nprocs | Priv _ -> ()
  | Load lv ->
    f lv;
    List.iter
      (function Idx e -> iter_lvalues_expr f e | Fld _ -> ())
      lv.path
  | Unop (_, e) -> iter_lvalues_expr f e
  | Binop (_, e1, e2) -> iter_lvalues_expr f e1; iter_lvalues_expr f e2
