open Ast

let dup_names what names errs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem tbl n then
        errs := Printf.sprintf "duplicate %s %S" what n :: !errs
      else Hashtbl.add tbl n ())
    names

(* Struct acyclicity: a struct may not (transitively) contain itself. *)
let check_struct_cycles p errs =
  let visiting = Hashtbl.create 16 in
  let done_ = Hashtbl.create 16 in
  let rec visit name =
    if Hashtbl.mem done_ name then ()
    else if Hashtbl.mem visiting name then
      errs := Printf.sprintf "struct %S contains itself" name :: !errs
    else begin
      Hashtbl.add visiting name ();
      (match List.find_opt (fun s -> s.sname = name) p.structs with
       | None -> ()
       | Some s -> List.iter (fun (_, ft) -> visit_ty ft) s.fields);
      Hashtbl.remove visiting name;
      Hashtbl.add done_ name ()
    end
  and visit_ty = function
    | Scalar _ -> ()
    | Array (t, _) -> visit_ty t
    | Struct n -> visit n
  in
  List.iter (fun s -> visit s.sname) p.structs

let rec check_ty p where t errs =
  match t with
  | Scalar _ -> ()
  | Array (elt, n) ->
    if n <= 0 then
      errs := Printf.sprintf "%s: array dimension %d not positive" where n :: !errs;
    check_ty p where elt errs
  | Struct name ->
    if not (List.exists (fun s -> s.sname = name) p.structs) then
      errs := Printf.sprintf "%s: unknown struct %S" where name :: !errs

(* Shape-check an lvalue path; returns the scalar it reaches, if any. *)
let check_lvalue p where lv errs =
  match List.assoc_opt lv.base p.globals with
  | None ->
    errs := Printf.sprintf "%s: unknown global %S" where lv.base :: !errs;
    None
  | Some t0 ->
    let rec walk t path =
      match (t, path) with
      | Scalar s, [] -> Some s
      | Scalar _, _ :: _ ->
        errs := Printf.sprintf "%s: path into scalar on %S" where lv.base :: !errs;
        None
      | Array (elt, _), Idx _ :: rest -> walk elt rest
      | Array _, (Fld _ :: _ | []) ->
        errs :=
          Printf.sprintf "%s: array access on %S needs an index" where lv.base :: !errs;
        None
      | Struct name, Fld f :: rest -> (
        match List.find_opt (fun s -> s.sname = name) p.structs with
        | None -> None (* already reported by check_ty *)
        | Some s -> (
          match List.assoc_opt f s.fields with
          | Some ft -> walk ft rest
          | None ->
            errs :=
              Printf.sprintf "%s: struct %S has no field %S" where name f :: !errs;
            None))
      | Struct _, (Idx _ :: _ | []) ->
        errs :=
          Printf.sprintf "%s: struct access on %S needs a field" where lv.base :: !errs;
        None
    in
    walk t0 lv.path

let check_func p func errs =
  let where = "function " ^ func.fname in
  let privs = Hashtbl.create 16 in
  List.iter (fun prm -> Hashtbl.replace privs prm ()) func.params;
  (* Collect every private binding in the function, flow-insensitively. *)
  iter_stmts
    (fun s ->
      match s with
      | Decl (n, _) | For (n, _, _, _) | Call { ret = Some n; _ } ->
        Hashtbl.replace privs n ()
      | _ -> ())
    func.body;
  let rec check_expr e =
    match e with
    | Int_lit _ | Float_lit _ | Pdv | Nprocs -> ()
    | Priv n ->
      if not (Hashtbl.mem privs n) then
        errs := Printf.sprintf "%s: undeclared private %S" where n :: !errs
    | Load lv -> check_access ~want_lock:false lv
    | Unop (_, e) -> check_expr e
    | Binop (_, e1, e2) -> check_expr e1; check_expr e2
  and check_access ~want_lock lv =
    List.iter (function Idx e -> check_expr e | Fld _ -> ()) lv.path;
    match check_lvalue p where lv errs with
    | None -> ()
    | Some Tlock when not want_lock ->
      errs := Printf.sprintf "%s: data access to lock cell %S" where lv.base :: !errs
    | Some (Tint | Tfloat) when want_lock ->
      errs := Printf.sprintf "%s: lock operation on data cell %S" where lv.base :: !errs
    | Some _ -> ()
  in
  iter_stmts
    (fun s ->
      match s with
      | Store (lv, e) -> check_access ~want_lock:false lv; check_expr e
      | Set (n, e) ->
        if not (Hashtbl.mem privs n) then
          errs := Printf.sprintf "%s: set of undeclared private %S" where n :: !errs;
        check_expr e
      | Decl (_, e) -> check_expr e
      | If (c, _, _) | While (c, _) -> check_expr c
      | For (_, lo, hi, _) -> check_expr lo; check_expr hi
      | Call { callee; args; _ } ->
        (match List.find_opt (fun f -> f.fname = callee) p.funcs with
         | None ->
           errs := Printf.sprintf "%s: call to unknown function %S" where callee :: !errs
         | Some f ->
           if List.length f.params <> List.length args then
             errs :=
               Printf.sprintf "%s: call to %S with %d args, expected %d" where
                 callee (List.length args) (List.length f.params)
               :: !errs);
        List.iter check_expr args
      | Spawn { callee; args } ->
        (match List.find_opt (fun f -> f.fname = callee) p.funcs with
         | None ->
           errs := Printf.sprintf "%s: spawn of unknown function %S" where callee :: !errs
         | Some f ->
           if List.length f.params <> List.length args then
             errs :=
               Printf.sprintf "%s: spawn of %S with %d args, expected %d" where
                 callee (List.length args) (List.length f.params)
               :: !errs);
        List.iter check_expr args
      | Return (Some e) -> check_expr e
      | Return None | Barrier | Sync -> ()
      | Lock lv | Unlock lv -> check_access ~want_lock:true lv)
    func.body

(* A spawned task may be executed by any process (a thief), so a barrier
   inside it — directly or through any call or nested spawn — would tear
   the global barrier out of the SPMD structure the model depends on. *)
let check_task_barriers p errs =
  let memo = Hashtbl.create 16 in
  let rec has_barrier fname =
    match Hashtbl.find_opt memo fname with
    | Some b -> b
    | None ->
      Hashtbl.add memo fname false (* cycle cut: recursion adds nothing *)
      ;
      let found = ref false in
      (match List.find_opt (fun f -> f.fname = fname) p.funcs with
       | None -> ()
       | Some f ->
         iter_stmts
           (fun s ->
             match s with
             | Barrier -> found := true
             | Call { callee; _ } | Spawn { callee; _ } ->
               if has_barrier callee then found := true
             | _ -> ())
           f.body);
      Hashtbl.replace memo fname !found;
      !found
  in
  List.iter
    (fun f ->
      iter_stmts
        (fun s ->
          match s with
          | Spawn { callee; _ } ->
            if has_barrier callee then
              errs :=
                Printf.sprintf
                  "function %s: spawned function %S reaches a barrier (tasks \
                   may migrate between processes and cannot synchronize \
                   globally)"
                  f.fname callee
                :: !errs
          | _ -> ())
        f.body)
    p.funcs

let check p =
  let errs = ref [] in
  dup_names "struct" (List.map (fun s -> s.sname) p.structs) errs;
  dup_names "global" (List.map fst p.globals) errs;
  dup_names "function" (List.map (fun f -> f.fname) p.funcs) errs;
  List.iter
    (fun s ->
      dup_names ("field of struct " ^ s.sname) (List.map fst s.fields) errs;
      List.iter (fun (f, ft) -> check_ty p (s.sname ^ "." ^ f) ft errs) s.fields)
    p.structs;
  check_struct_cycles p errs;
  List.iter (fun (g, t) -> check_ty p ("global " ^ g) t errs) p.globals;
  (match List.find_opt (fun f -> f.fname = p.entry) p.funcs with
   | None -> errs := Printf.sprintf "entry function %S not defined" p.entry :: !errs
   | Some f ->
     if f.params <> [] then
       errs := Printf.sprintf "entry function %S must take no parameters" p.entry :: !errs);
  List.iter (fun f -> check_func p f errs) p.funcs;
  check_task_barriers p errs;
  match List.rev !errs with [] -> Ok () | l -> Error l

exception Invalid_program of string list

let validate_exn p =
  match check p with Ok () -> p | Error errs -> raise (Invalid_program errs)
