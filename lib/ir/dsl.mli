(** Builder combinators for constructing ParC programs in OCaml.

    The workload programs (lib/workloads) are written with these.  Open the
    module locally: [let open Fs_ir.Dsl in ...]. *)

(** {1 Types} *)

val int_t : Ast.ty
val float_t : Ast.ty
val lock_t : Ast.ty
val arr : Ast.ty -> int -> Ast.ty
(** [arr t n] is [t\[n\]]. *)

val arr2 : Ast.ty -> int -> int -> Ast.ty
(** [arr2 t n m] is [t\[n\]\[m\]] ([n] rows of [m] elements). *)

val struct_t : string -> Ast.ty

(** {1 Expressions} *)

val i : int -> Ast.expr
val f : float -> Ast.expr
val pdv : Ast.expr
val nprocs : Ast.expr
val p : string -> Ast.expr
(** Read of a private variable. *)

val ( +% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( -% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( *% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( /% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( %% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( ==% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <>% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <=% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >=% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( &&% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( ||% ) : Ast.expr -> Ast.expr -> Ast.expr
val neg : Ast.expr -> Ast.expr
val not_ : Ast.expr -> Ast.expr
val min_ : Ast.expr -> Ast.expr -> Ast.expr
val max_ : Ast.expr -> Ast.expr -> Ast.expr

(** {1 Lvalues} *)

val v : string -> Ast.lvalue
(** A bare shared global. *)

val ( .%() ) : Ast.lvalue -> Ast.expr -> Ast.lvalue
(** Indexing: [(v "a").%(e)] is [a\[e\]]. *)

val ( .%{} ) : Ast.lvalue -> string -> Ast.lvalue
(** Field selection: [(v "n").%{"next"}] is [n.next]. *)

val ld : Ast.lvalue -> Ast.expr
(** Read of shared memory. *)

(** {1 Statements} *)

val ( <-- ) : Ast.lvalue -> Ast.expr -> Ast.stmt
(** Store to shared memory. *)

val set : string -> Ast.expr -> Ast.stmt
val decl : string -> Ast.expr -> Ast.stmt
val sif : Ast.expr -> Ast.block -> Ast.block -> Ast.stmt
val when_ : Ast.expr -> Ast.block -> Ast.stmt
(** [when_ c b] is [sif c b \[\]]. *)

val swhile : Ast.expr -> Ast.block -> Ast.stmt
val sfor : string -> Ast.expr -> Ast.expr -> Ast.block -> Ast.stmt
(** [sfor v lo hi body]: [v] ranges over [lo..hi-1]. *)

val call : string -> Ast.expr list -> Ast.stmt
val call_ret : string -> string -> Ast.expr list -> Ast.stmt
(** [call_ret x f args] is [x = f (args)] where [x] is private. *)

val spawn : string -> Ast.expr list -> Ast.stmt
(** [spawn f args] enqueues a task on this process's deque. *)

val sync : Ast.stmt
(** Join on the current activation's spawned tasks. *)

val ret : Ast.expr -> Ast.stmt
val ret_void : Ast.stmt
val barrier : Ast.stmt
val lock : Ast.lvalue -> Ast.stmt
val unlock : Ast.lvalue -> Ast.stmt
val incr_ : Ast.lvalue -> Ast.stmt
(** Read-modify-write increment of a shared cell. *)

val bump : Ast.lvalue -> Ast.expr -> Ast.stmt
(** [bump lv e] is [lv <-- ld lv +% e]. *)

(** {1 Program assembly} *)

val fn : string -> string list -> Ast.block -> Ast.func

val program :
  name:string ->
  ?structs:Ast.struct_def list ->
  globals:(string * Ast.ty) list ->
  ?entry:string ->
  Ast.func list ->
  Ast.program
(** [entry] defaults to ["main"]. *)
