open Ast

(* Split a type into its base (non-array) type and C-style dimension list. *)
let rec split_dims = function
  | Array (elt, n) ->
    let base, dims = split_dims elt in
    (base, n :: dims)
  | t -> (t, [])

let ty fmt t =
  match t with
  | Scalar Tint -> Format.pp_print_string fmt "int"
  | Scalar Tfloat -> Format.pp_print_string fmt "float"
  | Scalar Tlock -> Format.pp_print_string fmt "lock"
  | Struct name -> Format.fprintf fmt "struct %s" name
  | Array _ -> invalid_arg "Pp.ty: array type must be printed via a declaration"

let decl_with_dims fmt t name =
  let base, dims = split_dims t in
  ty fmt base;
  Format.fprintf fmt " %s" name;
  List.iter (fun d -> Format.fprintf fmt "[%d]" d) dims

let unop_str = function Neg -> "-" | Not -> "!"

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"
  | Min -> "`min`" | Max -> "`max`"

(* Higher binds tighter; mirrors the parser's precedence table. *)
let prec_of = function
  | Mul | Div | Mod -> 7
  | Add | Sub -> 6
  | Min | Max -> 5
  | Lt | Le | Gt | Ge -> 4
  | Eq | Ne -> 3
  | And -> 2
  | Or -> 1

let rec expr_prec fmt ctx e =
  match e with
  | Int_lit n ->
    if n < 0 then Format.fprintf fmt "(%d)" n else Format.fprintf fmt "%d" n
  | Float_lit x -> Format.fprintf fmt "%h" x
  | Pdv -> Format.pp_print_string fmt "pid"
  | Nprocs -> Format.pp_print_string fmt "nprocs"
  | Priv name -> Format.pp_print_string fmt name
  | Load lv -> lvalue fmt lv
  | Unop (op, e) ->
    Format.fprintf fmt "%s" (unop_str op);
    expr_prec fmt 8 e
  | Binop (op, e1, e2) ->
    let prec = prec_of op in
    if prec < ctx then Format.pp_print_string fmt "(";
    expr_prec fmt prec e1;
    Format.fprintf fmt " %s " (binop_str op);
    expr_prec fmt (prec + 1) e2;
    if prec < ctx then Format.pp_print_string fmt ")"

and lvalue fmt lv =
  Format.pp_print_string fmt lv.base;
  List.iter
    (function
      | Idx e ->
        Format.pp_print_string fmt "[";
        expr_prec fmt 0 e;
        Format.pp_print_string fmt "]"
      | Fld f -> Format.fprintf fmt ".%s" f)
    lv.path

let expr fmt e = expr_prec fmt 0 e

let rec stmt fmt s =
  match s with
  | Store (lv, e) -> Format.fprintf fmt "@[<h>%a = %a;@]" lvalue lv expr e
  | Set (n, e) -> Format.fprintf fmt "@[<h>%s = %a;@]" n expr e
  | Decl (n, e) -> Format.fprintf fmt "@[<h>let %s = %a;@]" n expr e
  | If (c, b1, []) ->
    Format.fprintf fmt "@[<v 2>if (%a) {%a@]@,}" expr c block b1
  | If (c, b1, b2) ->
    Format.fprintf fmt "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}" expr c
      block b1 block b2
  | While (c, b) ->
    Format.fprintf fmt "@[<v 2>while (%a) {%a@]@,}" expr c block b
  | For (n, lo, hi, b) ->
    Format.fprintf fmt "@[<v 2>for (%s = %a; %s < %a; %s++) {%a@]@,}" n expr lo
      n expr hi n block b
  | Call { ret = None; callee; args } ->
    Format.fprintf fmt "@[<h>%s(%a);@]" callee args_pp args
  | Call { ret = Some r; callee; args } ->
    Format.fprintf fmt "@[<h>%s = %s(%a);@]" r callee args_pp args
  | Spawn { callee; args } ->
    Format.fprintf fmt "@[<h>spawn %s(%a);@]" callee args_pp args
  | Sync -> Format.pp_print_string fmt "sync;"
  | Return None -> Format.pp_print_string fmt "return;"
  | Return (Some e) -> Format.fprintf fmt "@[<h>return %a;@]" expr e
  | Barrier -> Format.pp_print_string fmt "barrier;"
  | Lock lv -> Format.fprintf fmt "@[<h>lock(%a);@]" lvalue lv
  | Unlock lv -> Format.fprintf fmt "@[<h>unlock(%a);@]" lvalue lv

and block fmt b = List.iter (fun s -> Format.fprintf fmt "@,%a" stmt s) b

and args_pp fmt args =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    expr fmt args

let func fmt f =
  Format.fprintf fmt "@[<v 2>void %s(%s) {%a@]@,}" f.fname
    (String.concat ", " f.params)
    block f.body

let struct_def fmt s =
  Format.fprintf fmt "@[<v 2>struct %s {" s.sname;
  List.iter
    (fun (name, t) -> Format.fprintf fmt "@,%a;" (fun fmt () -> decl_with_dims fmt t name) ())
    s.fields;
  Format.fprintf fmt "@]@,}"

let program fmt p =
  Format.fprintf fmt "@[<v>program %s;@,@," p.pname;
  List.iter (fun s -> Format.fprintf fmt "%a@,@," struct_def s) p.structs;
  List.iter
    (fun (name, t) ->
      Format.fprintf fmt "shared %a;@," (fun fmt () -> decl_with_dims fmt t name) ())
    p.globals;
  if p.globals <> [] then Format.fprintf fmt "@,";
  List.iter (fun f -> Format.fprintf fmt "%a@,@," func f) p.funcs;
  if p.entry <> "main" then Format.fprintf fmt "entry %s;@," p.entry;
  Format.fprintf fmt "@]"

let program_to_string p = Format.asprintf "%a" program p
