module Sha256 = Fs_util.Sha256

let magic = "falseshare-store 1"

type corrupt = {
  ckey : string;
  cpath : string;
  reason : string;
  quarantined_to : string option;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  quarantined : int;
  puts : int;
  bytes : int;
  entries : int;
}

type entry = { size : int; mutable last : int }

type t = {
  root : string;
  budget : int;
  lock : Mutex.t;
  index : (string, entry) Hashtbl.t;
  mutable total : int;          (* summed [entry.size] *)
  mutable tick : int;
  mutable tmp_seq : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable quarantined : int;
  mutable puts : int;
}

let default_budget_bytes = 256 * 1024 * 1024

let locked t f = Mutex.protect t.lock f

let entry_suffix = ".entry"
let path_of t key = Filename.concat t.root (key ^ entry_suffix)

let is_hex s =
  String.length s = 64
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

let mkdir_p d =
  if not (Sys.file_exists d) then
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let open_ ?(budget_bytes = default_budget_bytes) root =
  if budget_bytes < 1 then invalid_arg "Store.open_: budget must be >= 1";
  mkdir_p root;
  let t =
    {
      root;
      budget = budget_bytes;
      lock = Mutex.create ();
      index = Hashtbl.create 64;
      total = 0;
      tick = 0;
      tmp_seq = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      quarantined = 0;
      puts = 0;
    }
  in
  (* rebuild the index from the directory: recency = file mtime, so the
     LRU order survives restarts *)
  let files =
    Sys.readdir root |> Array.to_list
    |> List.filter_map (fun f ->
           if Filename.check_suffix f entry_suffix then
             let key = Filename.chop_suffix f entry_suffix in
             if is_hex key then
               match Unix.stat (Filename.concat root f) with
               | st -> Some (key, st.Unix.st_size, st.Unix.st_mtime)
               | exception Unix.Unix_error _ -> None
             else None
           else None)
    |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
  in
  List.iter
    (fun (key, size, _) ->
      t.tick <- t.tick + 1;
      Hashtbl.replace t.index key { size; last = t.tick };
      t.total <- t.total + size)
    files;
  t

let dir t = t.root
let sep = ':'

let key parts =
  let ctx = Sha256.init () in
  List.iter
    (fun p ->
      Sha256.feed ctx (string_of_int (String.length p));
      Sha256.feed ctx (String.make 1 sep);
      Sha256.feed ctx p)
    parts;
  Sha256.hex ctx

(* ------------------------------------------------------------------ *)
(* Entry file format:
     falseshare-store 1\n
     <key> <payload-length> <payload-sha256>\n
     <payload bytes>                                                   *)

let encode key payload =
  Printf.sprintf "%s\n%s %d %s\n%s" magic key (String.length payload)
    (Sha256.digest_hex payload)
    payload

(* verify everything the header claims; any failure is a reason string *)
let decode ~key text =
  let fail reason = Error reason in
  match String.index_opt text '\n' with
  | None -> fail "missing magic line"
  | Some l1 ->
    if String.sub text 0 l1 <> magic then fail "bad magic"
    else (
      match String.index_from_opt text (l1 + 1) '\n' with
      | None -> fail "missing header line"
      | Some l2 -> (
        let header = String.sub text (l1 + 1) (l2 - l1 - 1) in
        match String.split_on_char ' ' header with
        | [ hkey; hlen; hsum ] -> (
          if hkey <> key then fail "key mismatch"
          else
            match int_of_string_opt hlen with
            | None -> fail "bad length field"
            | Some len ->
              let have = String.length text - l2 - 1 in
              if have <> len then
                fail
                  (Printf.sprintf "payload truncated (%d of %d bytes)" have
                     len)
              else
                let payload = String.sub text (l2 + 1) len in
                if Sha256.digest_hex payload <> hsum then
                  fail "payload checksum mismatch"
                else Ok payload)
        | _ -> fail "malformed header line"))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* under [t.lock] *)
let forget t key =
  match Hashtbl.find_opt t.index key with
  | None -> ()
  | Some e ->
    Hashtbl.remove t.index key;
    t.total <- t.total - e.size

(* under [t.lock]: move a bad entry aside, never serve or delete it *)
let quarantine t key path reason =
  t.quarantined <- t.quarantined + 1;
  forget t key;
  let qdir = Filename.concat t.root "quarantine" in
  let dst = Filename.concat qdir (Filename.basename path) in
  let moved =
    try
      mkdir_p qdir;
      Sys.rename path dst;
      Some dst
    with Sys_error _ | Unix.Unix_error _ -> None
  in
  { ckey = key; cpath = path; reason; quarantined_to = moved }

let touch path =
  try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

let find t k =
  locked t (fun () ->
      let path = path_of t k in
      if not (Hashtbl.mem t.index k) && not (Sys.file_exists path) then begin
        t.misses <- t.misses + 1;
        Ok None
      end
      else
        match read_file path with
        | exception (Sys_error _ | End_of_file) ->
          (* raced with an eviction or never indexed; a plain miss *)
          forget t k;
          t.misses <- t.misses + 1;
          Ok None
        | text -> (
          match decode ~key:k text with
          | Ok payload ->
            t.hits <- t.hits + 1;
            t.tick <- t.tick + 1;
            (match Hashtbl.find_opt t.index k with
             | Some e -> e.last <- t.tick
             | None ->
               (* on-disk but unindexed (written by another process);
                  adopt it *)
               Hashtbl.replace t.index k
                 { size = String.length text; last = t.tick };
               t.total <- t.total + String.length text);
            touch path;
            Ok (Some payload)
          | Error reason ->
            t.misses <- t.misses + 1;
            Error (quarantine t k path reason)))

(* under [t.lock]; [keep] (the entry just written) is never a victim,
   even when it alone blows the budget *)
let evict_over_budget t ~keep =
  let out_of_victims = ref false in
  while (not !out_of_victims) && t.total > t.budget do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          if k = keep then acc
          else
            match acc with
            | Some (_, be) when be.last <= e.last -> acc
            | _ -> Some (k, e))
        t.index None
    in
    match victim with
    | None -> out_of_victims := true
    | Some (vk, _) ->
      (try Sys.remove (path_of t vk) with Sys_error _ -> ());
      forget t vk;
      t.evictions <- t.evictions + 1
  done

let put t k payload =
  locked t (fun () ->
      let text = encode k payload in
      let tmp =
        t.tmp_seq <- t.tmp_seq + 1;
        Filename.concat t.root
          (Printf.sprintf ".tmp-%d-%d" (Unix.getpid ()) t.tmp_seq)
      in
      let oc = open_out_bin tmp in
      (try
         output_string oc text;
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Sys.rename tmp (path_of t k);
      forget t k;
      t.tick <- t.tick + 1;
      Hashtbl.replace t.index k { size = String.length text; last = t.tick };
      t.total <- t.total + String.length text;
      t.puts <- t.puts + 1;
      evict_over_budget t ~keep:k)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        quarantined = t.quarantined;
        puts = t.puts;
        bytes = t.total;
        entries = Hashtbl.length t.index;
      })

let clear t =
  locked t (fun () ->
      Hashtbl.iter
        (fun k _ -> try Sys.remove (path_of t k) with Sys_error _ -> ())
        t.index;
      Hashtbl.reset t.index;
      t.total <- 0)
