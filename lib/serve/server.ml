module E = Falseshare.Experiments
module Sim = Falseshare.Sim
module Emit = Falseshare.Emit
module Trace_memo = Falseshare.Trace_memo
module W = Fs_workloads.Workload
module Ws = Fs_workloads.Workloads
module Json = Fs_obs.Json
module Span = Fs_obs.Span
module Metrics = Fs_obs.Metrics
module Par = Fs_util.Par

(* a client's fault: becomes a 400 with this message *)
exception Client_error of string

let client_err fmt = Printf.ksprintf (fun m -> raise (Client_error m)) fmt

type config = {
  port : int;
  workers : int;
  queue_capacity : int;
  jobs : int;
  cache_dir : string;
  cache_budget_bytes : int;
  recent : int;
  debug_endpoints : bool;
  socket_timeout_s : float;
}

let default_config =
  {
    port = 0;
    workers = 4;
    queue_capacity = 64;
    jobs = Par.default_jobs ();
    cache_dir = "_falseshare_cache";
    cache_budget_bytes = Store.default_budget_bytes;
    recent = 32;
    debug_endpoints = false;
    socket_timeout_s = 30.0;
  }

type job = {
  jid : int;
  jfd : Unix.file_descr;
  jreq : Http.request;
  jendpoint : string;
  jenq : float;  (** [gettimeofday] at admission; latency includes queueing *)
}

type ring_entry = {
  rid : int;
  rendpoint : string;
  rstatus : int;
  rcached : bool;
  rcoalesced : bool;
  relapsed_s : float;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  store : Store.t;
  sf : (string * bool) Singleflight.t;  (* key -> (payload, served-from-store) *)
  queue : job Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable stopping : bool;
  mutable next_id : int;
  reg : Metrics.t;
  reg_lock : Mutex.t;
  (* worker threads share domain 0, whose ambient span recorder is
     domain-local: only one heavy computation may own it (and the
     machine's domains) at a time *)
  compute_lock : Mutex.t;
  mutable last_store : Store.stats;
  ring : ring_entry option array;
  mutable ring_next : int;
  started_at : float;
  mutable accept_thread : Thread.t option;
  mutable worker_threads : Thread.t list;
  join_lock : Mutex.t;
  join_cond : Condition.t;
  mutable join_state : [ `Idle | `Joining | `Done ];
}

let port t = t.bound_port

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let with_reg t f = Mutex.protect t.reg_lock (fun () -> f t.reg)

let latency_buckets = [ 0.001; 0.005; 0.02; 0.1; 0.5; 2.0; 10.0 ]

let count_request t ~endpoint ~status =
  with_reg t (fun reg ->
      Metrics.Counter.incr
        (Metrics.counter reg "serve_requests_total"
           ~labels:[ ("endpoint", endpoint); ("status", string_of_int status) ]
           ~help:"Requests answered, by endpoint and HTTP status"))

let observe_latency t ~endpoint seconds =
  with_reg t (fun reg ->
      Metrics.Histogram.observe
        (Metrics.histogram reg "serve_request_seconds"
           ~labels:[ ("endpoint", endpoint) ]
           ~buckets:latency_buckets
           ~help:"Request latency in seconds, admission to response")
        seconds)

let set_gauge t name help v =
  with_reg t (fun reg ->
      Metrics.Gauge.set (Metrics.gauge reg name ~help) v)

let add_gauge t name help d =
  with_reg t (fun reg ->
      Metrics.Gauge.add (Metrics.gauge reg name ~help) d)

let incr_counter t name help =
  with_reg t (fun reg ->
      Metrics.Counter.incr (Metrics.counter reg name ~help))

let queue_depth t = Mutex.protect t.qlock (fun () -> Queue.length t.queue)

let publish_queue_depth t =
  let d = queue_depth t in
  set_gauge t "serve_queue_depth" "Admitted requests not yet being served"
    (float_of_int d)

(* fold the store's own counters into the registry as monotone deltas,
   so Prometheus counters stay counters across scrapes *)
let sync_store_counters t =
  let cur = Store.stats t.store in
  with_reg t (fun reg ->
      let c name help = Metrics.counter reg name ~help in
      let add ctr d = if d > 0 then Metrics.Counter.add ctr d in
      let last = t.last_store in
      add (c "serve_cache_hits_total" "Result-store hits") (cur.Store.hits - last.Store.hits);
      add (c "serve_cache_misses_total" "Result-store misses") (cur.misses - last.misses);
      add (c "serve_cache_evictions_total" "Result-store evictions") (cur.evictions - last.evictions);
      add
        (c "serve_cache_quarantined_total"
           "Result-store entries quarantined after failed verification")
        (cur.quarantined - last.quarantined);
      add (c "serve_cache_puts_total" "Result-store writes") (cur.puts - last.puts);
      Metrics.Gauge.set
        (Metrics.gauge reg "serve_cache_bytes" ~help:"Result-store bytes on disk")
        (float_of_int cur.bytes);
      Metrics.Gauge.set
        (Metrics.gauge reg "serve_cache_entries" ~help:"Result-store entries")
        (float_of_int cur.entries);
      t.last_store <- cur)

(* ------------------------------------------------------------------ *)
(* Request parameters                                                  *)

type params = {
  pendpoint : string;
  pprog : Fs_ir.Ast.program;
  psource : string;  (** printed program text — the content that is addressed *)
  pwname : string;
  pworkload : W.t option;
  pnprocs : int;
  pscale : int;
  pblock : int;
  playout : string;
  ptop : int;
  pmax_iters : int;
  psched_seed : int option;
      (** required when the program spawns tasks; [None] otherwise *)
}

let parse_params endpoint (req : Http.request) =
  let j =
    match Json.of_string (if req.Http.body = "" then "{}" else req.Http.body) with
    | Ok j -> j
    | Error m -> client_err "request body is not JSON: %s" m
  in
  let int_field name default =
    match Json.member name j with
    | None -> default
    | Some v -> (
      match Json.get_int v with
      | Some n -> n
      | None -> client_err "field %S must be an integer" name)
  in
  let str_field name =
    match Json.member name j with
    | None -> None
    | Some v -> (
      match Json.get_string v with
      | Some s -> Some s
      | None -> client_err "field %S must be a string" name)
  in
  let nprocs = int_field "nprocs" 12 in
  if nprocs < 1 || nprocs > 64 then client_err "nprocs must be in 1..64";
  let block = int_field "block" 128 in
  if block < 4 || block > 4096 then client_err "block must be in 4..4096";
  let layout =
    let default =
      (* the feedback-flavored endpoints default to the compiler's layout,
         like their CLI counterparts *)
      match endpoint with
      | "hotlines" | "repair" | "profile" -> "compiler"
      | _ -> "unoptimized"
    in
    match str_field "layout" with
    | None -> default
    | Some ("unoptimized" | "compiler" | "programmer" as l) -> l
    | Some other ->
      client_err
        "unknown layout %S (expected unoptimized, compiler, or programmer)"
        other
  in
  let top = int_field "top" 10 in
  if top < 1 || top > 10_000 then client_err "top must be in 1..10000";
  let max_iters =
    int_field "max_iters" Fs_feedback.Repair.default_options.max_iters
  in
  if max_iters < 0 || max_iters > 100 then
    client_err "max_iters must be in 0..100";
  let sched_seed =
    match Json.member "sched_seed" j with
    | None -> None
    | Some v -> (
      match Json.get_int v with
      | Some n -> Some n
      | None -> client_err "field \"sched_seed\" must be an integer")
  in
  let workload, prog, scale, wname =
    match (str_field "workload", str_field "source") with
    | Some _, Some _ -> client_err "give either \"workload\" or \"source\", not both"
    | Some name, None -> (
      match Ws.find name with
      | w ->
        let scale = int_field "scale" w.W.default_scale in
        if scale < 1 then client_err "scale must be positive";
        (Some w, w.W.build ~nprocs ~scale, scale, w.W.name)
      | exception Not_found ->
        let names = List.map (fun w -> w.W.name) Ws.every in
        let hint =
          match Fs_util.Strdist.suggest name names with
          | [] -> "GET /statusz lists the suite"
          | near ->
            Printf.sprintf "did you mean %s?"
              (String.concat " or " (List.map (Printf.sprintf "%S") near))
        in
        client_err "unknown workload %S (%s)" name hint)
    | None, Some src -> (
      match Fs_parc.Parser.parse_and_validate src with
      | Ok prog ->
        (* a submitted source that spawns tasks gets the scheduler globals
           grafted on here, like the registered dynamic workloads do in
           their builders (instrument is the identity otherwise) *)
        let prog = Fs_sched.Sched.instrument ~nprocs prog in
        (None, prog, int_field "scale" 1, "<source>")
      | Error errs -> client_err "source does not validate: %s" (String.concat "; " errs))
    | None, None ->
      client_err "body must name a \"workload\" or carry ParC \"source\""
  in
  (* dynamic executions refuse to run without an explicit seed — a silent
     default would let two tenants' "same" request alias different steal
     schedules the day the default changes *)
  (match sched_seed with
   | None when Fs_sched.Sched.uses_tasks prog ->
     client_err
       "program %S spawns tasks: the work-stealing schedule needs an \
        explicit \"sched_seed\" (an integer; same seed, same execution)"
       wname
   | _ -> ());
  {
    pendpoint = endpoint;
    pprog = prog;
    psource = Fs_ir.Pp.program_to_string prog;
    pwname = wname;
    pworkload = workload;
    pnprocs = nprocs;
    pscale = scale;
    pblock = block;
    playout = layout;
    ptop = top;
    pmax_iters = max_iters;
    psched_seed = sched_seed;
  }

(* every resolved parameter is part of the address: two requests whose
   defaults resolve differently must never alias *)
let cache_version = "falseshare-serve/2"

(* the on-disk trace format feeds the memoized recordings every handler
   replays, so it is part of the address too: a daemon restarted after a
   format-default change must recompute, not alias the old entries *)
let trace_format =
  Printf.sprintf "tracefmt=%d"
    (Fs_trace.Cell_trace.format_version Fs_trace.Cell_trace.default_format)

let cache_key p =
  Store.key
    [
      cache_version;
      trace_format;
      p.pendpoint;
      p.pwname;
      p.psource;
      string_of_int p.pnprocs;
      string_of_int p.pscale;
      string_of_int p.pblock;
      p.playout;
      string_of_int p.ptop;
      string_of_int p.pmax_iters;
      (match p.psched_seed with
       | None -> "seed=-"
       | Some s -> Printf.sprintf "seed=%d" s);
    ]

(* ------------------------------------------------------------------ *)
(* Handlers: each returns the result payload as a JSON string           *)

let plan_of p =
  match p.playout with
  | "unoptimized" -> []
  | "compiler" -> (
    match p.pworkload with
    | Some w -> E.plan_for w W.C p.pprog ~nprocs:p.pnprocs ~scale:p.pscale
    | None -> Sim.compiler_plan p.pprog ~nprocs:p.pnprocs)
  | "programmer" -> (
    match p.pworkload with
    | Some w when List.mem W.P w.W.versions ->
      E.plan_for w W.P p.pprog ~nprocs:p.pnprocs ~scale:p.pscale
    | Some w -> client_err "workload %S has no programmer layout" w.W.name
    | None -> client_err "a ParC source has no programmer layout")
  | _ -> assert false

let recorded_for p =
  match p.pworkload with
  | Some w ->
    Span.timed "memo"
      ~attrs:[ ("workload", w.W.name) ]
      (fun () ->
        E.recorded_of
          (Trace_memo.get ?seed:p.psched_seed w ~nprocs:p.pnprocs
             ~scale:p.pscale))
  | None ->
    let sched = Option.map Fs_sched.Sched.seeded p.psched_seed in
    Span.timed "record" (fun () ->
        Sim.record ?sched p.pprog ~nprocs:p.pnprocs)

let versions_of p =
  match p.pworkload with
  | Some w ->
    List.filter_map
      (fun v ->
        match v with
        | W.N -> Some ("unoptimized", [])
        | W.C ->
          Some ("compiler", E.plan_for w W.C p.pprog ~nprocs:p.pnprocs ~scale:p.pscale)
        | W.P ->
          Some
            ("programmer", E.plan_for w W.P p.pprog ~nprocs:p.pnprocs ~scale:p.pscale))
      (if List.mem W.N w.W.versions then w.W.versions else W.N :: w.W.versions)
  | None ->
    [ ("unoptimized", []);
      ("compiler", Sim.compiler_plan p.pprog ~nprocs:p.pnprocs) ]

let handle_analyze ~jobs p =
  let versions = Span.timed "plan" (fun () -> versions_of p) in
  let recorded = recorded_for p in
  let runs =
    Span.timed "replay"
      ~attrs:[ ("versions", string_of_int (List.length versions)) ]
      (fun () ->
        Par.map ~jobs
          (fun (name, plan) ->
            ( name,
              Sim.cache_sim ~recorded p.pprog plan ~nprocs:p.pnprocs
                ~block:p.pblock ))
          versions)
  in
  Emit.sim ~workload:p.pwname ~nprocs:p.pnprocs ~block:p.pblock runs

let handle_blame p =
  let plan = Span.timed "plan" (fun () -> plan_of p) in
  let recorded = recorded_for p in
  Emit.blame
    (Span.timed "replay" (fun () ->
         Falseshare.Blame.analyze ~top:p.ptop ~recorded p.pprog plan
           ~nprocs:p.pnprocs ~block:p.pblock))

let handle_phases p =
  let plan = Span.timed "plan" (fun () -> plan_of p) in
  let recorded = recorded_for p in
  Emit.phases
    (Span.timed "replay" (fun () ->
         Falseshare.Phases.analyze ~recorded p.pprog plan ~nprocs:p.pnprocs
           ~block:p.pblock))

let handle_hotlines p =
  let plan = Span.timed "plan" (fun () -> plan_of p) in
  let recorded = recorded_for p in
  Emit.hotlines
    (Span.timed "replay" (fun () ->
         Falseshare.Hotlines.analyze ~top:p.ptop ~recorded p.pprog plan
           ~nprocs:p.pnprocs ~block:p.pblock))

let handle_repair p =
  let plan = Span.timed "plan" (fun () -> plan_of p) in
  let recorded = recorded_for p in
  let options =
    { Fs_feedback.Repair.default_options with
      max_iters = p.pmax_iters;
      top = p.ptop }
  in
  Fs_feedback.Repair.to_json
    (Span.timed "repair" (fun () ->
         Fs_feedback.Repair.refine ~options ~recorded p.pprog plan
           ~nprocs:p.pnprocs ~block:p.pblock))

let profile_blocks = [ 8; 16; 32; 64; 128; 256 ]

let handle_profile ~jobs p =
  let plan = Span.timed "plan" (fun () -> plan_of p) in
  let recorded = recorded_for p in
  let sweep, pool =
    Span.timed "replay"
      ~attrs:[ ("jobs", string_of_int jobs) ]
      (fun () ->
        Par.map_with_stats ~jobs
          (fun block ->
            ( block,
              (Sim.cache_sim ~recorded p.pprog plan ~nprocs:p.pnprocs ~block)
                .Sim.counts ))
          profile_blocks)
  in
  let module C = Fs_cache.Mpcache in
  Json.Obj
    [ ("workload", Json.String p.pwname);
      ("nprocs", Json.Int p.pnprocs);
      ("scale", Json.Int p.pscale);
      ("layout", Json.String p.playout);
      ("pool", Fs_obs.Pool.to_json pool);
      ( "sweep",
        Json.List
          (List.map
             (fun (block, (c : C.counts)) ->
               Json.Obj
                 [ ("block", Json.Int block);
                   ("accesses", Json.Int (C.accesses c));
                   ("misses", Json.Int (C.misses c));
                   ("false_sharing", Json.Int c.C.false_sh) ])
             sweep)) ]

let compute ~jobs p =
  let payload =
    match p.pendpoint with
    | "analyze" -> handle_analyze ~jobs p
    | "blame" -> handle_blame p
    | "phases" -> handle_phases p
    | "hotlines" -> handle_hotlines p
    | "repair" -> handle_repair p
    | "profile" -> handle_profile ~jobs p
    | ep -> client_err "unknown endpoint %S" ep
  in
  Json.to_string payload

(* ------------------------------------------------------------------ *)
(* The work path: singleflight -> store -> compute                      *)

let store_find t recorder key =
  Span.with_ recorder "store.find" (fun () ->
      match Store.find t.store key with
      | Ok (Some payload) ->
        Span.attr recorder "outcome" "hit";
        Some payload
      | Ok None ->
        Span.attr recorder "outcome" "miss";
        None
      | Error (c : Store.corrupt) ->
        Span.attr recorder "outcome" "corrupt";
        Printf.eprintf
          "falseshare serve: quarantined corrupt cache entry %s (%s)%s\n%!"
          c.Store.ckey c.Store.reason
          (match c.Store.quarantined_to with
           | Some q -> " -> " ^ q
           | None -> "");
        None)

(* returns (payload, served_from_store, coalesced) *)
let run_query t recorder req endpoint =
  let p =
    Span.with_ recorder "parse"
      ~attrs:[ ("bytes", string_of_int (String.length req.Http.body)) ]
      (fun () -> parse_params endpoint req)
  in
  let key = cache_key p in
  Span.attr recorder "key" key;
  let (payload, from_store), role =
    Singleflight.run t.sf key (fun () ->
        match store_find t recorder key with
        | Some payload -> (payload, true)
        | None ->
          let payload =
            Span.with_ recorder "compute" (fun () ->
                Mutex.protect t.compute_lock (fun () ->
                    (* the ambient recorder is domain-local and worker
                       threads share domain 0: it may only be installed
                       while holding the compute lock *)
                    Span.set_current (Some recorder);
                    Fun.protect
                      ~finally:(fun () -> Span.set_current None)
                      (fun () -> compute ~jobs:t.cfg.jobs p)))
          in
          Span.with_ recorder "store.put" (fun () ->
              Store.put t.store key payload);
          (payload, false))
  in
  (payload, from_store, role = `Joined)

let json_error m = Json.to_string (Json.Obj [ ("error", Json.String m) ])

let spans_json recorder (req : Http.request) =
  match Http.query_param req "spans" with
  | Some "none" -> "null"
  | Some "chrome" ->
    Json.to_string (Fs_obs.Timeline.to_json (Span.to_timeline recorder))
  | _ -> Json.to_string (Span.to_json recorder)

let envelope ~id ~endpoint ~cached ~coalesced ~elapsed_s ~payload ~spans =
  Printf.sprintf
    "{\"request_id\":%d,\"endpoint\":%s,\"cached\":%b,\"coalesced\":%b,\"elapsed_s\":%s,\"result\":%s,\"spans\":%s}"
    id
    (Json.to_string (Json.String endpoint))
    cached coalesced
    (Json.to_string (Json.float elapsed_s))
    payload spans

let ring_push t e =
  Mutex.protect t.qlock (fun () ->
      if Array.length t.ring > 0 then begin
        t.ring.(t.ring_next mod Array.length t.ring) <- Some e;
        t.ring_next <- t.ring_next + 1
      end)

let inflight_help = "Requests being served right now"

let handle_job t job =
  add_gauge t "serve_inflight" inflight_help 1.0;
  let recorder = Span.create () in
  let finishing =
    match
      Span.with_ recorder job.jendpoint
        ~attrs:[ ("request_id", string_of_int job.jid) ]
        (fun () ->
          if job.jendpoint = "sleepz" then begin
            let s =
              match Http.query_param job.jreq "s" with
              | Some v -> (
                match float_of_string_opt v with
                | Some s when s >= 0.0 && s <= 10.0 -> s
                | _ -> client_err "s must be a number of seconds in 0..10")
              | None -> 0.05
            in
            Thread.delay s;
            (Printf.sprintf "{\"slept\":%s}" (Json.to_string (Json.float s)),
             false, false)
          end
          else run_query t recorder job.jreq job.jendpoint)
    with
    | payload, cached, coalesced ->
      let elapsed = Unix.gettimeofday () -. job.jenq in
      let body =
        envelope ~id:job.jid ~endpoint:job.jendpoint ~cached ~coalesced
          ~elapsed_s:elapsed ~payload
          ~spans:(spans_json recorder job.jreq)
      in
      (200, body, cached, coalesced)
    | exception Client_error m -> (400, json_error m, false, false)
    | exception Http.Bad_request m -> (400, json_error m, false, false)
    | exception e ->
      (500, json_error (Printf.sprintf "internal error: %s" (Printexc.to_string e)),
       false, false)
  in
  let status, body, cached, coalesced = finishing in
  let elapsed = Unix.gettimeofday () -. job.jenq in
  (* account before answering: a client that scrapes /metrics right
     after its response must see its own request counted *)
  if coalesced then
    incr_counter t "serve_coalesced_total"
      "Requests that joined another request's in-flight computation";
  count_request t ~endpoint:job.jendpoint ~status;
  observe_latency t ~endpoint:job.jendpoint elapsed;
  ring_push t
    {
      rid = job.jid;
      rendpoint = job.jendpoint;
      rstatus = status;
      rcached = cached;
      rcoalesced = coalesced;
      relapsed_s = elapsed;
    };
  (try Http.respond job.jfd ~status body
   with Unix.Unix_error _ | Sys_error _ -> () (* client gone *));
  (try Unix.close job.jfd with Unix.Unix_error _ -> ());
  add_gauge t "serve_inflight" inflight_help (-1.0)

(* ------------------------------------------------------------------ *)
(* Fast endpoints (answered on the accept thread)                       *)

let uptime t = Unix.gettimeofday () -. t.started_at

let healthz t =
  Json.to_string
    (Json.Obj [ ("ok", Json.Bool true); ("uptime_s", Json.float (uptime t)) ])

let metrics_text t =
  publish_queue_depth t;
  sync_store_counters t;
  set_gauge t "serve_uptime_seconds" "Seconds since the daemon started"
    (uptime t);
  with_reg t Metrics.render

let statusz t =
  let recent =
    Mutex.protect t.qlock (fun () ->
        let n = Array.length t.ring in
        let entries = ref [] in
        for i = 0 to n - 1 do
          (* oldest first *)
          match t.ring.((t.ring_next + i) mod n) with
          | None -> ()
          | Some e -> entries := e :: !entries
        done;
        !entries)
  in
  let store_stats = Store.stats t.store in
  let mh, mm, me, md = Trace_memo.read_stats () in
  Json.to_string ~compact:false
    (Json.Obj
       [ ("ok", Json.Bool true);
         ("uptime_s", Json.float (uptime t));
         ("version", Json.String "1.0.0");
         ("ocaml", Json.String Sys.ocaml_version);
         ( "config",
           Json.Obj
             [ ("port", Json.Int t.bound_port);
               ("workers", Json.Int t.cfg.workers);
               ("queue_capacity", Json.Int t.cfg.queue_capacity);
               ("jobs", Json.Int t.cfg.jobs);
               ("cache_dir", Json.String (Store.dir t.store));
               ("cache_budget_bytes", Json.Int t.cfg.cache_budget_bytes);
               ("cache_version", Json.String cache_version);
               ("trace_format",
                Json.Int
                  (Fs_trace.Cell_trace.format_version
                     Fs_trace.Cell_trace.default_format)) ] );
         ( "store",
           Json.Obj
             [ ("hits", Json.Int store_stats.Store.hits);
               ("misses", Json.Int store_stats.misses);
               ("evictions", Json.Int store_stats.evictions);
               ("quarantined", Json.Int store_stats.quarantined);
               ("puts", Json.Int store_stats.puts);
               ("bytes", Json.Int store_stats.bytes);
               ("entries", Json.Int store_stats.entries) ] );
         ( "memo",
           Json.Obj
             [ ("hits", Json.Int mh);
               ("misses", Json.Int mm);
               ("evictions", Json.Int me);
               ("disk_loads", Json.Int md);
               ("coalesced", Json.Int (Trace_memo.read_coalesced ())) ] );
         ( "workloads",
           Json.List
             (List.map
                (fun (w : W.t) ->
                  Json.Obj
                    [ ("name", Json.String w.name);
                      ("scheduling",
                       Json.String (if w.dynamic then "dynamic" else "static")) ])
                Ws.every) );
         ( "recent",
           Json.List
             (List.rev_map
                (fun e ->
                  Json.Obj
                    [ ("id", Json.Int e.rid);
                      ("endpoint", Json.String e.rendpoint);
                      ("status", Json.Int e.rstatus);
                      ("cached", Json.Bool e.rcached);
                      ("coalesced", Json.Bool e.rcoalesced);
                      ("elapsed_s", Json.float e.relapsed_s) ])
                recent) ) ])

(* ------------------------------------------------------------------ *)
(* Routing and the accept loop                                          *)

let work_endpoints = [ "analyze"; "blame"; "hotlines"; "phases"; "repair"; "profile" ]

let initiate_stop t =
  Mutex.protect t.qlock (fun () ->
      if not t.stopping then begin
        t.stopping <- true;
        Condition.broadcast t.qcond
      end);
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ -> ());
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

(* admit or reject with backpressure; the worker owns [fd] on success *)
let enqueue t fd req endpoint =
  let admitted =
    Mutex.protect t.qlock (fun () ->
        if t.stopping then `Stopping
        else if Queue.length t.queue >= t.cfg.queue_capacity then `Full
        else begin
          t.next_id <- t.next_id + 1;
          Queue.push
            {
              jid = t.next_id;
              jfd = fd;
              jreq = req;
              jendpoint = endpoint;
              jenq = Unix.gettimeofday ();
            }
            t.queue;
          Condition.signal t.qcond;
          `Admitted
        end)
  in
  match admitted with
  | `Admitted -> publish_queue_depth t; true
  | `Stopping ->
    count_request t ~endpoint ~status:503;
    (try
       Http.respond fd ~status:503
         ~headers:[ ("Retry-After", "1") ]
         (json_error "shutting down")
     with Unix.Unix_error _ | Sys_error _ -> ());
    false
  | `Full ->
    incr_counter t "serve_rejected_total"
      "Requests rejected with 503 because the queue was full";
    count_request t ~endpoint ~status:503;
    (try
       Http.respond fd ~status:503
         ~headers:[ ("Retry-After", "1") ]
         (json_error "queue full, retry later")
     with Unix.Unix_error _ | Sys_error _ -> ());
    false

(* the metric label of a path: the endpoint name without its slash, or a
   catch-all so unknown paths cannot explode the label cardinality *)
let endpoint_of t path =
  let bare =
    if String.length path > 1 && path.[0] = '/' then
      String.sub path 1 (String.length path - 1)
    else path
  in
  if List.mem bare work_endpoints then bare
  else
    match bare with
    | "healthz" | "metrics" | "statusz" | "quitquitquit" -> bare
    | "sleepz" when t.cfg.debug_endpoints -> bare
    | _ -> "other"

let route t fd (req : Http.request) =
  let endpoint = endpoint_of t req.Http.path in
  let answer ?content_type ?headers status body =
    count_request t ~endpoint ~status;
    try Http.respond ?content_type ?headers fd ~status body
    with Unix.Unix_error _ | Sys_error _ -> ()
  in
  let close () = try Unix.close fd with Unix.Unix_error _ -> () in
  match (req.Http.meth, req.Http.path) with
  | "GET", "/healthz" ->
    answer 200 (healthz t);
    close ()
  | "GET", "/metrics" ->
    answer ~content_type:"text/plain; version=0.0.4" 200 (metrics_text t);
    close ()
  | "GET", "/statusz" ->
    answer 200 (statusz t);
    close ()
  | "POST", "/quitquitquit" ->
    answer 200 "{\"ok\":true,\"stopping\":true}";
    close ();
    initiate_stop t
  | "GET", "/sleepz" when t.cfg.debug_endpoints ->
    if not (enqueue t fd req "sleepz") then close ()
  | "POST", _ when List.mem endpoint work_endpoints ->
    if not (enqueue t fd req endpoint) then close ()
  | _, _ when endpoint <> "other" ->
    (* a known endpoint under the wrong method *)
    answer 405 (json_error (Printf.sprintf "%s does not take %s" req.Http.path req.Http.meth));
    close ()
  | _, path ->
    answer 404 (json_error (Printf.sprintf "no such endpoint %S" path));
    close ()

let handle_conn t fd =
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.socket_timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.socket_timeout_s
   with Unix.Unix_error _ -> ());
  match Http.read_request fd with
  | None -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | Some req -> route t fd req
  | exception Http.Bad_request m ->
    (try Http.respond fd ~status:400 (json_error m)
     with Unix.Unix_error _ | Sys_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> (
    try Unix.close fd with Unix.Unix_error _ -> ())

let rec accept_loop t =
  let stopping () = Mutex.protect t.qlock (fun () -> t.stopping) in
  match Unix.accept t.listen_fd with
  | fd, _ ->
    handle_conn t fd;
    if not (stopping ()) then accept_loop t
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    if not (stopping ()) then accept_loop t
  | exception Unix.Unix_error _ ->
    (* the listener was shut down (stop/quitquitquit), or is broken
       beyond accepting; either way this thread is done *)
    ()

let rec worker_loop t =
  let job =
    Mutex.protect t.qlock (fun () ->
        let rec next () =
          if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
          else if t.stopping then None
          else begin
            Condition.wait t.qcond t.qlock;
            next ()
          end
        in
        next ())
  in
  match job with
  | None -> ()
  | Some job ->
    publish_queue_depth t;
    (try handle_job t job
     with e ->
       (* a handler bug must not kill the worker *)
       Printf.eprintf "falseshare serve: worker error: %s\n%!"
         (Printexc.to_string e));
    worker_loop t

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)

let start cfg =
  if cfg.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if cfg.queue_capacity < 1 then
    invalid_arg "Server.start: queue_capacity must be >= 1";
  (* a peer that disappears mid-write must be an EPIPE error, not a
     process-killing signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let bound_port =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, cfg.port));
      Unix.listen listen_fd 64;
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> cfg.port
    with e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise e
  in
  let store = Store.open_ ~budget_bytes:cfg.cache_budget_bytes cfg.cache_dir in
  let t =
    {
      cfg;
      listen_fd;
      bound_port;
      store;
      sf = Singleflight.create ();
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      stopping = false;
      next_id = 0;
      reg = Metrics.create ();
      reg_lock = Mutex.create ();
      compute_lock = Mutex.create ();
      last_store = Store.stats store;
      ring = Array.make (max cfg.recent 0) None;
      ring_next = 0;
      started_at = Unix.gettimeofday ();
      accept_thread = None;
      worker_threads = [];
      join_lock = Mutex.create ();
      join_cond = Condition.create ();
      join_state = `Idle;
    }
  in
  (* the domain pool's fan-out stats flow into this daemon's registry;
     the observer fires on worker threads, so it must take the registry
     lock *)
  Par.set_observer (Some (fun s -> with_reg t (fun reg -> Fs_obs.Pool.ingest reg s)));
  (* pre-register the instruments a scraper should see even before the
     first request *)
  with_reg t (fun reg ->
      ignore
        (Metrics.gauge reg "serve_queue_depth"
           ~help:"Admitted requests not yet being served");
      ignore
        (Metrics.gauge reg "serve_inflight"
           ~help:"Requests being served right now");
      ignore
        (Metrics.counter reg "serve_rejected_total"
           ~help:"Requests rejected with 503 because the queue was full");
      ignore
        (Metrics.counter reg "serve_coalesced_total"
           ~help:"Requests that joined another request's in-flight computation");
      ignore (Metrics.counter reg "serve_cache_hits_total" ~help:"Result-store hits");
      ignore
        (Metrics.counter reg "serve_cache_misses_total" ~help:"Result-store misses"));
  t.worker_threads <-
    List.init cfg.workers (fun _ -> Thread.create worker_loop t);
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

(* exactly one caller performs the joins; the rest block until it is
   done — and the join lock is never held across a Thread.join, so a
   concurrent [stop] can still get in to trigger the shutdown the
   joiner is waiting on *)
let join_all t =
  let mine =
    Mutex.protect t.join_lock (fun () ->
        match t.join_state with
        | `Idle ->
          t.join_state <- `Joining;
          true
        | `Joining | `Done -> false)
  in
  if mine then begin
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    List.iter Thread.join t.worker_threads;
    Par.set_observer None;
    Mutex.protect t.join_lock (fun () ->
        t.join_state <- `Done;
        Condition.broadcast t.join_cond)
  end
  else
    Mutex.protect t.join_lock (fun () ->
        while t.join_state <> `Done do
          Condition.wait t.join_cond t.join_lock
        done)

let shutdown t = initiate_stop t

let stop t =
  initiate_stop t;
  join_all t

let wait t = join_all t
