(** Request coalescing: N concurrent callers asking for the same key run
    the computation once.

    The first caller for a key becomes the {e leader} and runs the thunk;
    everyone else arriving while the leader is still computing becomes a
    {e follower} and blocks until the leader finishes, then shares its
    result (or re-raises its exception).  As soon as the flight lands the
    key is retired, so a later caller starts a fresh flight — this is
    deliberately {e not} a cache: the daemon's {!Store} remembers results,
    this module only collapses the thundering herd that builds up while a
    result is being produced.

    The group mutex is held only for table bookkeeping; leaders compute
    outside it, and followers wait on the flight's own condition variable
    — coalescing never serializes flights for {e different} keys. *)

type 'a t

val create : unit -> 'a t

val run : 'a t -> string -> (unit -> 'a) -> 'a * [ `Led | `Joined ]
(** [run t key f] returns [f ()]'s value, tagged [`Led] if this caller
    executed [f] and [`Joined] if it piggybacked on a leader already in
    flight for [key].  If the leader's [f] raises, every caller of the
    flight (leader and followers alike) raises that same exception. *)
