exception Bad_request of string

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

let max_header_bytes = 65536

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> bad "bad percent escape"

let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
     | '%' ->
       if !i + 2 >= n then bad "truncated percent escape";
       Buffer.add_char buf
         (Char.chr ((hex_val s.[!i + 1] lsl 4) lor hex_val s.[!i + 2]));
       i := !i + 2
     | '+' -> Buffer.add_char buf ' '
     | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let parse_query q =
  if q = "" then []
  else
    List.map
      (fun pair ->
        match String.index_opt pair '=' with
        | Some i ->
          ( percent_decode (String.sub pair 0 i),
            percent_decode
              (String.sub pair (i + 1) (String.length pair - i - 1)) )
        | None -> (percent_decode pair, ""))
      (String.split_on_char '&' q)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

let read_more fd buf chunk =
  let n = Unix.read fd chunk 0 (Bytes.length chunk) in
  if n > 0 then Buffer.add_subbytes buf chunk 0 n;
  n

(* index of the first header/body separator in [s], with its length —
   we accept \r\n\r\n and the bare \n\n of hand-typed clients *)
let find_separator s =
  let n = String.length s in
  let rec go i =
    if i >= n then None
    else if s.[i] = '\n' then
      if i + 1 < n && s.[i + 1] = '\n' then Some (i, 2)
      else if i + 2 < n && s.[i + 1] = '\r' && s.[i + 2] = '\n' then
        Some (i, 3)
      else go (i + 1)
    else go (i + 1)
  in
  go 0

let trim_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let parse_head head =
  match String.split_on_char '\n' head with
  | [] -> bad "empty request"
  | request_line :: header_lines ->
    let request_line = trim_cr request_line in
    let meth, target =
      match String.split_on_char ' ' request_line with
      | [ m; t; v ]
        when v = "HTTP/1.1" || v = "HTTP/1.0" ->
        (String.uppercase_ascii m, t)
      | _ -> bad "malformed request line %S" request_line
    in
    let headers =
      List.filter_map
        (fun line ->
          let line = trim_cr line in
          if line = "" then None
          else
            match String.index_opt line ':' with
            | None -> bad "malformed header line %S" line
            | Some i ->
              Some
                ( String.lowercase_ascii (String.sub line 0 i),
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1)) ))
        header_lines
    in
    let path, query =
      match String.index_opt target '?' with
      | None -> (percent_decode target, [])
      | Some i ->
        ( percent_decode (String.sub target 0 i),
          parse_query (String.sub target (i + 1) (String.length target - i - 1))
        )
    in
    (meth, path, query, headers)

let read_request ?(max_body = 4 * 1024 * 1024) fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 8192 in
  (* accumulate until the blank line ending the headers *)
  let rec head_loop () =
    match find_separator (Buffer.contents buf) with
    | Some (at, sep_len) -> Some (at, sep_len)
    | None ->
      if Buffer.length buf > max_header_bytes then bad "headers too large";
      if read_more fd buf chunk = 0 then
        if Buffer.length buf = 0 then None else bad "truncated request head"
      else head_loop ()
  in
  match head_loop () with
  | None -> None
  | Some (at, sep_len) ->
    let text = Buffer.contents buf in
    let meth, path, query, headers = parse_head (String.sub text 0 at) in
    let body_start = at + sep_len in
    let declared =
      match List.assoc_opt "content-length" headers with
      | None -> 0
      | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some n when n >= 0 -> n
        | _ -> bad "bad content-length %S" v)
    in
    if declared > max_body then bad "body too large (%d bytes)" declared;
    let rec body_loop () =
      if Buffer.length buf - body_start < declared then
        if read_more fd buf chunk = 0 then bad "truncated body"
        else body_loop ()
    in
    body_loop ();
    let body = String.sub (Buffer.contents buf) body_start declared in
    Some { meth; path; query; headers; body }

let header req name = List.assoc_opt (String.lowercase_ascii name) req.headers
let query_param req name = List.assoc_opt name req.query

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

let reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Payload Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

let respond ?(content_type = "application/json") ?(headers = []) fd ~status
    body =
  let buf = Buffer.create (String.length body + 256) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason status));
  Buffer.add_string buf (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string buf "Connection: close\r\n\r\n";
  Buffer.add_string buf body;
  write_all fd (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Client                                                              *)

let request ?meth ?body ?(headers = []) ~port target =
  let meth =
    match (meth, body) with
    | Some m, _ -> m
    | None, Some _ -> "POST"
    | None, None -> "GET"
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let body = Option.value body ~default:"" in
      let buf = Buffer.create 512 in
      Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
      Buffer.add_string buf "Host: 127.0.0.1\r\n";
      if body <> "" || meth = "POST" then
        Buffer.add_string buf
          (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
        headers;
      Buffer.add_string buf "Connection: close\r\n\r\n";
      Buffer.add_string buf body;
      write_all fd (Buffer.contents buf);
      (* the server closes after one response, so read to EOF *)
      let acc = Buffer.create 1024 in
      let chunk = Bytes.create 8192 in
      let rec drain () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes acc chunk 0 n;
          drain ()
        end
      in
      drain ();
      let text = Buffer.contents acc in
      match find_separator text with
      | None -> bad "no header/body separator in response"
      | Some (at, sep_len) ->
        let head = String.sub text 0 at in
        let body =
          String.sub text (at + sep_len) (String.length text - at - sep_len)
        in
        (match String.split_on_char '\n' head with
         | status_line :: header_lines ->
           let status =
             match
               String.split_on_char ' ' (trim_cr status_line)
             with
             | _http :: code :: _ -> (
               match int_of_string_opt code with
               | Some c -> c
               | None -> bad "bad status line %S" status_line)
             | _ -> bad "bad status line %S" status_line
           in
           let headers =
             List.filter_map
               (fun line ->
                 let line = trim_cr line in
                 if line = "" then None
                 else
                   match String.index_opt line ':' with
                   | None -> None
                   | Some i ->
                     Some
                       ( String.lowercase_ascii (String.sub line 0 i),
                         String.trim
                           (String.sub line (i + 1)
                              (String.length line - i - 1)) ))
               header_lines
           in
           (status, headers, body)
         | [] -> bad "empty response"))
