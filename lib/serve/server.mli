(** The analysis daemon: [falseshare serve].

    One process serves the whole toolchain over HTTP/JSON to any number
    of tenants: POST a workload name or a ParC source to [/analyze],
    [/blame], [/hotlines], [/phases], [/repair], or [/profile] and get
    back the same JSON the CLI's [--json] mode prints, wrapped in an
    envelope carrying the request id, cache/coalescing provenance, and
    the request's causal span tree.

    {2 Anatomy}

    An accept thread reads each request (one per connection) and answers
    the cheap endpoints — [GET /healthz], [GET /metrics] (Prometheus
    text exposition), [GET /statusz], [POST /quitquitquit] — inline.
    Work endpoints go through a {e bounded} queue drained by a fixed set
    of worker threads; when the queue is full the daemon answers
    [503 Service Unavailable] with [Retry-After: 1] instead of building
    an unbounded backlog.  Inside a request, parallelism comes from the
    {!Fs_util.Par} domain pool ([jobs] domains), not from threads:
    worker threads share the runtime's domain 0, so heavy computations
    are serialized by a compute lock and only ever oversubscribe the
    machine by the domain fan-out they ask for.

    {2 Caching}

    Results are content-addressed in a {!Store} under the SHA-256 of
    (endpoint × program text × every resolved parameter): a repeated
    query is served from disk — no interpretation, no replay, and its
    span tree shows the store probe where the computation would be.
    Identical requests {e in flight} coalesce through {!Singleflight},
    so N tenants asking the same question while it is being computed
    cost one computation.

    {2 Shutdown}

    [POST /quitquitquit] (or {!stop}) closes the listener; workers
    drain the queue, answer what was already admitted, and exit.
    {!wait} blocks until that has happened. *)

type config = {
  port : int;            (** 0 picks an ephemeral port; see {!port} *)
  workers : int;         (** worker threads draining the queue *)
  queue_capacity : int;  (** admitted-but-unserved bound before 503 *)
  jobs : int;            (** domain fan-out available to one request *)
  cache_dir : string;    (** root of the result {!Store} *)
  cache_budget_bytes : int;
  recent : int;          (** requests remembered for [/statusz] *)
  debug_endpoints : bool;
      (** enable [GET /sleepz?s=0.2] — a queue-occupying no-op the
          tests and benchmarks use to exercise backpressure *)
  socket_timeout_s : float;
      (** per-connection read/write timeout *)
}

val default_config : config
(** Port 0, 4 workers, queue of 64, {!Fs_util.Par.default_jobs} domains,
    [_falseshare_cache], {!Store.default_budget_bytes}, 32 recent,
    debug endpoints off, 30 s socket timeout. *)

type t

val start : config -> t
(** Bind 127.0.0.1, spawn the accept thread and the workers, register
    the [serve_*] metrics, and route the domain pool's observer into
    the daemon's registry.
    @raise Unix.Unix_error when the port cannot be bound. *)

val port : t -> int
(** The bound port — the ephemeral one when [config.port] was 0. *)

val shutdown : t -> unit
(** Begin stopping — close the listener and wake the workers — without
    waiting for anything.  Safe from a signal handler or a request
    context; pair with {!wait} to block until the drain completes. *)

val stop : t -> unit
(** {!shutdown}, then join every thread once the workers have drained
    the queue.  Idempotent; must not be called from a request handler or
    a signal handler (those use {!shutdown} / [/quitquitquit]). *)

val wait : t -> unit
(** Block until the daemon has stopped (via {!stop} or
    [/quitquitquit]) and every thread has been joined. *)
