(** A hand-rolled slice of HTTP/1.1 over [Unix] file descriptors — just
    enough protocol for the analysis daemon: one request per connection
    (the server always answers [Connection: close]), request-line +
    headers + [Content-Length] body, percent-decoded paths and query
    strings.  No chunked encoding, no keep-alive, no TLS, and no
    dependencies beyond the stdlib.

    The reader enforces hard limits (64 KB of headers, a caller-chosen
    body cap) so a misbehaving client cannot balloon the daemon; anything
    outside the accepted subset raises {!Bad_request} with a reason the
    server turns into a 400. *)

exception Bad_request of string

type request = {
  meth : string;                      (** verb, uppercased: GET, POST, … *)
  path : string;                      (** percent-decoded, no query string *)
  query : (string * string) list;     (** decoded key/value pairs, in order *)
  headers : (string * string) list;   (** names lowercased, values trimmed *)
  body : string;
}

val read_request : ?max_body:int -> Unix.file_descr -> request option
(** Read and parse one request.  [None] on a clean EOF before the first
    byte (client connected and left).  [max_body] (default 4 MB) bounds
    the declared [Content-Length].
    @raise Bad_request on a malformed or over-limit request. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query_param : request -> string -> string option

val reason : int -> string
(** The canonical reason phrase of a status code ("OK", "Not Found", …). *)

val respond :
  ?content_type:string ->
  ?headers:(string * string) list ->
  Unix.file_descr ->
  status:int ->
  string ->
  unit
(** Write a complete response: status line, [Content-Type] (default
    [application/json]), [Content-Length], any extra [headers],
    [Connection: close], then the body.  Raises [Unix.Unix_error] if the
    peer is gone; the server treats that as the client's problem. *)

(** {1 A matching loopback client}

    Used by the test suite, the benchmark harness, and anyone scripting
    the daemon without curl. *)

val request :
  ?meth:string ->
  ?body:string ->
  ?headers:(string * string) list ->
  port:int ->
  string ->
  int * (string * string) list * string
(** [request ~port "/path?q=v"] connects to 127.0.0.1:[port], sends one
    request ([meth] defaults to GET, or POST when [body] is given), and
    returns (status, headers, body).  @raise Bad_request on an
    unparsable response. *)
