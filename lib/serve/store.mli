(** The content-addressed on-disk result store.

    {!Fs_core}'s [Trace_memo] keeps whole traces in process memory; this
    store is its durable counterpart: any byte payload (a result JSON, a
    serialized plan, a counts record) filed under the SHA-256 of what
    produced it — program text × version × layout × block size, hashed
    through {!key} — so a repeated query is a disk hit even across
    daemon restarts.

    Entries are single files under one directory, written atomically
    (temp file + [rename]) with a self-describing header carrying the
    key and a payload checksum.  The store holds an LRU over a byte
    budget: recency survives restarts through file mtimes, and {!put}
    evicts oldest-first until the total fits.  A file that fails any
    header or checksum verification is {e quarantined} — moved aside
    into [quarantine/], never silently served or deleted — and reported
    as a typed {!corrupt} value so the daemon can count and log it.

    All operations are mutex-protected; the store may be shared by every
    worker thread of the daemon. *)

type t

type corrupt = {
  ckey : string;              (** the key whose entry was bad *)
  cpath : string;             (** where the bad entry lived *)
  reason : string;            (** what failed: magic, length, checksum … *)
  quarantined_to : string option;
      (** where the bad file was moved, when the move succeeded *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  quarantined : int;
  puts : int;
  bytes : int;      (** current on-disk payload + header bytes *)
  entries : int;
}

val default_budget_bytes : int
(** 256 MB. *)

val open_ : ?budget_bytes:int -> string -> t
(** Open (creating if needed) the store rooted at a directory.  Existing
    entries are indexed by file mtime, oldest least recently used.
    @raise Invalid_argument on a budget below 1. *)

val dir : t -> string

val key : string list -> string
(** The canonical content address of a list of parts: each part is
    length-prefixed before hashing (so part boundaries can't be forged
    by concatenation), then SHA-256, as 64 hex characters. *)

val find : t -> string -> (string option, corrupt) result
(** Look a key up.  [Ok (Some payload)] refreshes the entry's recency
    (in memory and on disk via mtime).  [Ok None] is a miss.  [Error c]
    means the entry existed but failed verification and has been
    quarantined; callers should treat it as a miss after accounting. *)

val put : t -> string -> string -> unit
(** [put t key payload] writes atomically, then evicts least-recently
    used entries until the byte budget holds.  A payload alone larger
    than the whole budget is written and immediately becomes the only
    eviction candidate — the store never refuses a put. *)

val stats : t -> stats

val clear : t -> unit
(** Remove every entry (quarantined files stay). *)
