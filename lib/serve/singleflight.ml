type 'a state = Running | Done of ('a, exn) result

type 'a cell = {
  clock : Mutex.t;
  ccond : Condition.t;
  mutable state : 'a state;
}

type 'a t = {
  lock : Mutex.t;
  inflight : (string, 'a cell) Hashtbl.t;
}

let create () = { lock = Mutex.create (); inflight = Hashtbl.create 16 }

let finish cell result =
  Mutex.protect cell.clock (fun () ->
      cell.state <- Done result;
      Condition.broadcast cell.ccond)

let join cell =
  Mutex.protect cell.clock (fun () ->
      let rec wait () =
        match cell.state with
        | Running ->
          Condition.wait cell.ccond cell.clock;
          wait ()
        | Done r -> r
      in
      wait ())

let run t key f =
  let role =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.inflight key with
        | Some cell -> `Follower cell
        | None ->
          let cell =
            {
              clock = Mutex.create ();
              ccond = Condition.create ();
              state = Running;
            }
          in
          Hashtbl.add t.inflight key cell;
          `Leader cell)
  in
  match role with
  | `Follower cell -> (
    match join cell with
    | Ok v -> (v, `Joined)
    | Error e -> raise e)
  | `Leader cell -> (
    let result = try Ok (f ()) with e -> Error e in
    (* land the flight before retiring the key, so a caller racing the
       retirement either joins a completed flight or starts a new one —
       never waits forever *)
    finish cell result;
    Mutex.protect t.lock (fun () -> Hashtbl.remove t.inflight key);
    match result with
    | Ok v -> (v, `Led)
    | Error e -> raise e)
