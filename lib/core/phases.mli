(** Phase-resolved sharing forensics: the epoch segmenter.

    The paper's stage 2 (non-concurrency analysis) treats false sharing
    as a {e per-phase} phenomenon — data write-shared in one
    barrier-delimited phase may be perfectly private in the next.  This
    module makes that visible dynamically: it replays a recorded
    execution through the cache simulator and splits the run into
    {e epochs} at barrier releases, accumulating the full per-processor
    miss-class counters separately for every epoch.  Per-epoch counters
    sum exactly to the whole-run counters — the counters are snapshots
    of the same monotone accumulators, so nothing is counted twice or
    dropped (a property test holds this over every workload).

    The dynamic stream is also cross-checked against the static phase
    structure: a variable observed write-shared within one epoch (two or
    more distinct writing processors between two consecutive barrier
    releases) must be one the summary analysis predicts concurrently
    write-shared.  When the program's barriers all sit at loop depth 0
    and the dynamic epoch count matches the static phase count, epochs
    map one-to-one onto static phases and the check is per-phase
    ({!Exact}); when barriers repeat inside loops the dynamic epochs
    cycle through the static phases and each epoch is checked against
    the union of all phases' predictions ({!Folded}).  Lock words are
    exempt — their traffic is synchronization, handled by lock padding,
    not a data-layout prediction.  Any variable that fails the check is
    reported as a {!violation}: either the static analysis lost
    soundness or the trace disagrees with the phase structure, and both
    are worth knowing.  Scheduler globals ([__sched_*]) are exempt like
    lock words: their deque traffic exists only at run time and is
    invisible to the static analyses by design. *)

type epoch = {
  index : int;
  per_proc : Fs_cache.Mpcache.counts array;
      (** this epoch's counter deltas, one per processor *)
  write_shared : (string * int) list;
      (** variables written by >= 2 processors within the epoch, with the
          bitmask of writing processors; empty for address-level
          segmentation (see {!tracker}) *)
}

type violation = {
  vepoch : int;
  vvar : string;
  vwriters : int;  (** bitmask of observed writers *)
}

type mapping =
  | Exact   (** epoch [i] is static phase [i] *)
  | Folded  (** barriers repeat; epochs checked against all phases *)

type t = {
  nprocs : int;
  block : int;
  epochs : epoch list;  (** in execution order; last epoch follows the
                            final barrier *)
  aggregate : Fs_cache.Mpcache.counts;  (** the whole-run totals *)
  static_phases : int;
  mapping : mapping;
  violations : violation list;
}

val epoch_total : epoch -> Fs_cache.Mpcache.counts
(** Sum of the epoch's per-processor counters. *)

val proc_mask_list : int -> int list
(** The set bits of a processor bitmask, ascending. *)

val tracker :
  Fs_cache.Mpcache.t ->
  Fs_trace.Listener.t * (unit -> epoch list)
(** The reusable address-level segmenter: a listener that snapshots the
    cache's per-processor counters at every barrier release.  Combine it
    with the cache's own sink on the same replay; the thunk closes the
    final epoch and returns all of them.  [write_shared] is empty at this
    level — variable identity only exists in the cell stream. *)

val analyze :
  ?cache_bytes:int ->
  ?assoc:int ->
  ?sched:Fs_sched.Sched.config ->
  ?recorded:Sim.recorded ->
  Fs_ir.Ast.program ->
  Fs_layout.Plan.t ->
  nprocs:int ->
  block:int ->
  t
(** Replay (recording a fresh execution when [recorded] is omitted)
    through a cache simulation segmented at barrier releases, with the
    cell-level tap that attributes write-sharing to variables, and run
    the static cross-check. *)

val fs_matrix : t -> float array array
(** Processor × epoch false-sharing misses, ready for
    {!Fs_obs.Heatmap.render}. *)

val render : t -> string
