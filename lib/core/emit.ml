module Json = Fs_obs.Json
module Mpcache = Fs_cache.Mpcache
module Workload = Fs_workloads.Workload
module T = Fs_transform.Transform
module E = Experiments

let counts (c : Mpcache.counts) =
  Json.Obj
    [ ("reads", Json.Int c.Mpcache.reads);
      ("writes", Json.Int c.writes);
      ("accesses", Json.Int (Mpcache.accesses c));
      ("misses", Json.Int (Mpcache.misses c));
      ("cold", Json.Int c.cold);
      ("replacement", Json.Int c.repl);
      ("true_sharing", Json.Int c.true_sh);
      ("false_sharing", Json.Int c.false_sh);
      ("invalidations", Json.Int c.invalidations);
      ("upgrades", Json.Int c.upgrades);
      ("miss_rate", Json.float (Mpcache.miss_rate c));
      ("false_sharing_rate", Json.float (Mpcache.false_sharing_rate c)) ]

let fig3_cell (c : E.fig3_cell) =
  Json.Obj
    [ ("accesses", Json.Int c.accesses);
      ("misses", Json.Int c.misses);
      ("false_sharing", Json.Int c.false_sharing) ]

let fig3 rows =
  Json.List
    (List.map
       (fun (r : E.fig3_row) ->
         Json.Obj
           [ ("workload", Json.String r.name);
             ("procs", Json.Int r.procs);
             ("block", Json.Int r.block);
             ("unoptimized", fig3_cell r.unopt);
             ("compiler", fig3_cell r.compiler) ])
       rows)

let table2 rows =
  Json.List
    (List.map
       (fun (r : E.table2_row) ->
         Json.Obj
           [ ("workload", Json.String r.name);
             ("total_reduction", Json.float r.total_reduction);
             ("group_transpose", Json.float r.group_transpose);
             ("indirection", Json.float r.indirection);
             ("pad_align", Json.float r.pad_align);
             ("locks", Json.float r.locks) ])
       rows)

let series ss =
  Json.List
    (List.map
       (fun (s : E.series) ->
         Json.Obj
           [ ("workload", Json.String s.workload);
             ("version", Json.String (Workload.version_to_string s.version));
             ("points",
              Json.List
                (List.map
                   (fun (p, sp) ->
                     Json.Obj
                       [ ("procs", Json.Int p); ("speedup", Json.float sp) ])
                   s.points)) ])
       ss)

let table3 rows =
  Json.List
    (List.map
       (fun (r : E.table3_row) ->
         Json.Obj
           [ ("workload", Json.String r.name);
             ("results",
              Json.List
                (List.map
                   (fun (v, speedup, at) ->
                     Json.Obj
                       [ ("version", Json.String (Workload.version_to_string v));
                         ("best_speedup", Json.float speedup);
                         ("at_procs", Json.Int at) ])
                   r.results)) ])
       rows)

let stats (s : E.stats) =
  Json.Obj
    [ ("fs_share_of_misses_128", Json.float s.fs_share_of_misses_128);
      ("fs_removed_128", Json.float s.fs_removed_128);
      ("other_miss_increase_128", Json.float s.other_miss_increase_128);
      ("total_miss_reduction_64", Json.float s.total_miss_reduction_64) ]

let exec rows =
  Json.List
    (List.map
       (fun (r : E.exec_row) ->
         Json.Obj
           [ ("workload", Json.String r.name);
             ("improvement", Json.float r.improvement);
             ("at_procs", Json.Int r.at_procs) ])
       rows)

let sim ~workload ~nprocs ~block versions =
  Json.Obj
    [ ("workload", Json.String workload);
      ("procs", Json.Int nprocs);
      ("block", Json.Int block);
      ("versions",
       Json.List
         (List.map
            (fun (name, (r : Sim.cache_run)) ->
              Json.Obj
                [ ("version", Json.String name);
                  ("counts", counts r.Sim.counts);
                  ("layout_bytes", Json.Int r.layout_bytes);
                  ("barrier_episodes",
                   Json.Int r.interp.Fs_interp.Interp.barrier_episodes) ])
            versions)) ]

let attribution rows =
  Json.List
    (List.map
       (fun (r : Attribution.row) ->
         Json.Obj
           [ ("var", Json.String r.Attribution.var);
             ("blocks", Json.Int r.blocks);
             ("counts", counts r.counts) ])
       rows)

let blame (b : Blame.t) =
  Json.Obj
    [ ("procs", Json.Int b.Blame.nprocs);
      ("block", Json.Int b.block);
      ("vars",
       Json.List
         (List.map
            (fun (row : Blame.var_row) ->
              Json.Obj
                [ ("var", Json.String row.var);
                  ("invalidations", Json.Int row.invalidations);
                  ("by_upgrade", Json.Int row.by_upgrade);
                  ("by_write_miss", Json.Int row.by_write_miss);
                  ("pairs",
                   Json.List
                     (List.map
                        (fun (p : Blame.pair) ->
                          Json.Obj
                            [ ("src", Json.Int p.src);
                              ("victim", Json.Int p.victim);
                              ("upgrades", Json.Int p.upgrades);
                              ("write_misses", Json.Int p.write_misses) ])
                        row.pairs)) ])
            b.rows));
      ("hot_blocks",
       Json.List
         (List.map
            (fun (h : Blame.hot_block) ->
              Json.Obj
                [ ("block", Json.Int h.block);
                  ("owner", Json.String h.var);
                  ("cell_lo", Json.Int h.cell_lo);
                  ("cell_hi", Json.Int h.cell_hi);
                  ("counts", counts h.counts) ])
            b.hot)) ]

let workloads ws =
  Json.List
    (List.map
       (fun (w : Workload.t) ->
         Json.Obj
           [ ("name", Json.String w.name);
             ("description", Json.String w.description);
             ("lines_of_c", Json.Int w.lines_of_c);
             ("versions",
              Json.List
                (List.map
                   (fun v -> Json.String (Workload.version_to_string v))
                   w.versions));
             ("scheduling",
              Json.String (if w.dynamic then "dynamic" else "static"));
             ("fig3_procs", Json.Int w.fig3_procs);
             ("default_scale", Json.Int w.default_scale) ])
       ws)

let decision = function
  | T.Keep -> Json.Obj [ ("kind", Json.String "keep") ]
  | T.Group { axis } ->
    Json.Obj [ ("kind", Json.String "group_transpose"); ("axis", Json.Int axis) ]
  | T.Regroup { ways; chunked } ->
    Json.Obj
      [ ("kind", Json.String "regroup");
        ("ways", Json.Int ways);
        ("chunked", Json.Bool chunked) ]
  | T.Indirection { field } ->
    Json.Obj [ ("kind", Json.String "indirection"); ("field", Json.String field) ]
  | T.Pad { element } ->
    Json.Obj [ ("kind", Json.String "pad_align"); ("element", Json.Bool element) ]

let transform_report (r : T.report) =
  Json.Obj
    [ ("entries",
       Json.List
         (List.map
            (fun (e : T.entry) ->
              Json.Obj
                [ ("var", Json.String e.key.Fs_analysis.Summary.var);
                  ("fieldsig",
                   Json.List
                     (List.map
                        (fun f -> Json.String f)
                        e.key.Fs_analysis.Summary.fieldsig));
                  ("read_weight", Json.float e.read_weight);
                  ("write_weight", Json.float e.write_weight);
                  ("dominant_phase", Json.Int e.dominant_phase);
                  ("per_process_writes", Json.Bool e.per_process_writes);
                  ("decision", decision e.decision);
                  ("reason", Json.String e.reason) ])
            r.entries));
      ("plan",
       Json.List
         (List.map
            (fun a ->
              Json.String (Format.asprintf "%a" Fs_layout.Plan.pp_action a))
            r.plan)) ]

let phases (p : Phases.t) =
  Json.Obj
    [ ("procs", Json.Int p.Phases.nprocs);
      ("block", Json.Int p.block);
      ("static_phases", Json.Int p.static_phases);
      ("mapping",
       Json.String
         (match p.mapping with Phases.Exact -> "exact" | Folded -> "folded"));
      ("aggregate", counts p.aggregate);
      ("epochs",
       Json.List
         (List.map
            (fun (e : Phases.epoch) ->
              Json.Obj
                [ ("index", Json.Int e.index);
                  ("total", counts (Phases.epoch_total e));
                  ("per_proc",
                   Json.List
                     (Array.to_list (Array.map counts e.per_proc)));
                  ("write_shared",
                   Json.List
                     (List.map
                        (fun (var, mask) ->
                          Json.Obj
                            [ ("var", Json.String var);
                              ("writers",
                               Json.List
                                 (List.map
                                    (fun p -> Json.Int p)
                                    (Phases.proc_mask_list mask))) ])
                        e.write_shared)) ])
            p.epochs));
      ("violations",
       Json.List
         (List.map
            (fun (v : Phases.violation) ->
              Json.Obj
                [ ("epoch", Json.Int v.vepoch);
                  ("var", Json.String v.vvar);
                  ("writers",
                   Json.List
                     (List.map
                        (fun p -> Json.Int p)
                        (Phases.proc_mask_list v.vwriters))) ])
            p.violations)) ]

let hotlines (h : Hotlines.t) =
  Json.Obj
    [ ("procs", Json.Int h.Hotlines.nprocs);
      ("block", Json.Int h.block);
      ("total", counts h.total);
      ("dropped", Json.Int h.dropped);
      ("lines",
       Json.List
         (List.map
            (fun (x : Hotlines.hot) ->
              let l = x.line in
              Json.Obj
                [ ("block", Json.Int l.Mpcache.line_block);
                  ("owner", Json.String x.owner);
                  ("cell_lo", Json.Int x.cell_lo);
                  ("cell_hi", Json.Int x.cell_hi);
                  ("counts", counts x.counts);
                  ("reads", Json.Int l.line_reads);
                  ("writes", Json.Int l.line_writes);
                  ("writers", Json.Int l.writers);
                  ("readers", Json.Int l.readers);
                  ("migrations", Json.Int l.migrations);
                  ("pingpong_aba", Json.Int l.pingpong);
                  ("pingpong_score", Json.float x.score);
                  ("max_run", Json.Int l.max_run);
                  ("max_inval_chain", Json.Int l.max_inval_chain);
                  ("written_words", Json.Int l.written_words);
                  ("shared_words", Json.Int l.shared_words);
                  ("verdict",
                   Json.String (Hotlines.verdict_to_string x.verdict));
                  ("fix", Json.String x.fix) ])
            h.hot)) ]

let machine (r : Fs_machine.Ksr.result) =
  let arr a = Json.List (Array.to_list (Array.map (fun n -> Json.Int n) a)) in
  Json.Obj
    [ ("cycles", Json.Int r.Fs_machine.Ksr.cycles);
      ("per_proc", arr r.per_proc);
      ("mem_stall", arr r.mem_stall);
      ("sync_stall", arr r.sync_stall);
      ("lock_stall", arr r.lock_stall);
      ("cache", counts r.cache) ]
