(** One fully instrumented pipeline run.

    Runs every stage — the PDV and non-concurrency analyses, side-effect
    summarization, transformation planning, layout realization,
    interpretation with cache simulation, and (optionally) the KSR2
    timing model — under a {!Fs_obs.Profile} wall-clock profiler, and
    collects a {!Fs_obs.Metrics} registry holding the interpreter's work
    and synchronization counters, the cache's per-processor miss,
    invalidation, and upgrade counts, and the machine model's stall-cycle
    breakdown (barrier idle vs. lock serialization). *)

type t = {
  report : Fs_transform.Transform.report;
  cache : Sim.cache_run;
  machine : Fs_machine.Ksr.result option;
  epochs : Phases.epoch list option;
      (** barrier-delimited per-epoch counters, when requested *)
  metrics : Fs_obs.Metrics.t;
  profile : Fs_obs.Profile.t;
}

val run :
  ?options:Fs_transform.Transform.options ->
  ?machine:bool ->
  ?epochs:bool ->
  ?shards:int ->
  ?pool:Fs_util.Par.Pool.t ->
  ?plan:Fs_layout.Plan.t ->
  ?profile:Fs_obs.Profile.t ->
  ?sched:Fs_sched.Sched.config ->
  Fs_ir.Ast.program ->
  nprocs:int ->
  block:int ->
  t
(** [machine] (default [false]) also runs the KSR2 model (a second
    interpreter pass).  [epochs] (default [false]) segments the cache
    replay at barrier releases with {!Phases.tracker} and fills in the
    [epochs] field.  [shards] (default 1) runs the cache replay sharded
    across domains ({!Fs_replay.Replay.simulate_sharded}, optionally on
    [pool]) with bit-identical counts and per-block table; it applies
    only when [epochs] is off — the epoch tracker needs the live
    listener stream — and a sharded run omits the per-event [interp_*]
    metrics for the same reason.  [plan] overrides the compiler's plan
    for the simulated layout (the compiler analysis still runs and is
    profiled); by default the compiler's own plan is simulated.
    [profile] lets the caller pre-record phases of its own (e.g.
    parsing) into the same table.  [sched] seeds the work-stealing
    runtime; required for programs using [spawn]/[sync]. *)

val to_json : t -> Fs_obs.Json.t
