module Mpcache = Fs_cache.Mpcache
module Layout = Fs_layout.Layout
module Table = Fs_util.Table

type pair = { src : int; victim : int; upgrades : int; write_misses : int }

type var_row = {
  var : string;
  invalidations : int;
  by_upgrade : int;
  by_write_miss : int;
  matrix : int array array;
  pairs : pair list;
}

type hot_block = {
  block : int;
  var : string;
  cell_lo : int;
  cell_hi : int;
  counts : Mpcache.counts;
}

type t = {
  nprocs : int;
  block : int;
  rows : var_row list;
  hot : hot_block list;
}

let analyze ?(cache_bytes = 32 * 1024) ?(assoc = 4) ?(top = 10) ?sched
    ?recorded prog plan ~nprocs ~block =
  let recorded =
    match recorded with Some r -> r | None -> Sim.record ?sched prog ~nprocs
  in
  let layout = Layout.realize prog plan ~block in
  let cache =
    Mpcache.create ~track_blocks:true ~track_pairs:true
      ~max_addr:(Layout.size layout)
      { Mpcache.nprocs; block; cache_bytes; assoc }
  in
  Fs_replay.Replay.replay_to_sink recorded.Sim.trace ~layout
    ~sink:(Mpcache.sink cache);
  let owner = Attribution.block_owner prog layout ~block in
  (* fold the per-block pair flows onto the owning variables: per variable,
     a (src, victim) -> (upgrades, write misses) accumulator *)
  let per_var : (string, (int * int, int ref * int ref) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (p : Mpcache.pair) ->
      let var = owner p.block in
      let flows =
        match Hashtbl.find_opt per_var var with
        | Some f -> f
        | None ->
          let f = Hashtbl.create 16 in
          Hashtbl.add per_var var f;
          f
      in
      let u, m =
        match Hashtbl.find_opt flows (p.src, p.victim) with
        | Some cell -> cell
        | None ->
          let cell = (ref 0, ref 0) in
          Hashtbl.add flows (p.src, p.victim) cell;
          cell
      in
      u := !u + p.upgrades;
      m := !m + p.write_misses)
    (Mpcache.invalidation_pairs cache);
  let rows =
    Hashtbl.fold
      (fun var flows acc ->
        let matrix = Array.make_matrix nprocs nprocs 0 in
        let pairs =
          Hashtbl.fold
            (fun (src, victim) (u, m) acc ->
              matrix.(src).(victim) <- !u + !m;
              { src; victim; upgrades = !u; write_misses = !m } :: acc)
            flows []
          |> List.sort (fun a b ->
                 compare
                   (b.upgrades + b.write_misses, a.src, a.victim)
                   (a.upgrades + a.write_misses, b.src, b.victim))
        in
        let sum f = List.fold_left (fun acc p -> acc + f p) 0 pairs in
        { var;
          invalidations = sum (fun p -> p.upgrades + p.write_misses);
          by_upgrade = sum (fun p -> p.upgrades);
          by_write_miss = sum (fun p -> p.write_misses);
          matrix;
          pairs }
        :: acc)
      per_var []
    |> List.sort (fun a b -> compare b.invalidations a.invalidations)
  in
  (* hottest blocks, with the owning variable's cell range *)
  let cell_range = Attribution.cell_range prog layout ~block in
  let hot =
    Mpcache.per_block cache
    |> List.sort (fun (_, a) (_, b) ->
           compare
             (b.Mpcache.invalidations, b.Mpcache.false_sh)
             (a.Mpcache.invalidations, a.Mpcache.false_sh))
    |> List.filteri (fun i _ -> i < top)
    |> List.filter (fun (_, (c : Mpcache.counts)) -> c.invalidations > 0)
    |> List.map (fun (blk, counts) ->
           let var = owner blk in
           let cell_lo, cell_hi = cell_range var blk in
           { block = blk; var; cell_lo; cell_hi; counts })
  in
  { nprocs; block; rows; hot }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let active_procs row =
  let seen = Array.make (Array.length row.matrix) false in
  Array.iteri
    (fun src vrow ->
      Array.iteri
        (fun victim n ->
          if n > 0 then begin
            seen.(src) <- true;
            seen.(victim) <- true
          end)
        vrow)
    row.matrix;
  let acc = ref [] in
  Array.iteri (fun p s -> if s then acc := p :: !acc) seen;
  List.rev !acc

let render t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "invalidation blame matrix (%d processors, %dB blocks)\n\n"
       t.nprocs t.block);
  if t.rows = [] then Buffer.add_string buf "no invalidations recorded\n"
  else
    List.iter
      (fun (row : var_row) ->
        Buffer.add_string buf
          (Printf.sprintf "%s — %d invalidations (%d by upgrade, %d by write miss)\n"
             row.var row.invalidations row.by_upgrade row.by_write_miss);
        let procs = active_procs row in
        let header =
          "writer\\victim" :: List.map (fun p -> Printf.sprintf "P%d" p) procs
        in
        let body =
          List.filter_map
            (fun src ->
              if Array.exists (fun n -> n > 0) row.matrix.(src) then
                Some
                  (Printf.sprintf "P%d" src
                   :: List.map
                        (fun victim ->
                          let n = row.matrix.(src).(victim) in
                          if n = 0 then "." else string_of_int n)
                        procs)
              else None)
            procs
        in
        Buffer.add_string buf (Table.render ~header body);
        Buffer.add_char buf '\n')
      t.rows;
  if t.hot <> [] then begin
    Buffer.add_string buf "hottest blocks\n";
    let header =
      [ "block"; "owner"; "cells"; "invalidations"; "false sh."; "true sh." ]
    in
    let body =
      List.map
        (fun (h : hot_block) ->
          [ Printf.sprintf "0x%x" h.block;
            h.var;
            (if h.cell_lo < 0 then "-"
             else if h.cell_lo = h.cell_hi then string_of_int h.cell_lo
             else Printf.sprintf "%d..%d" h.cell_lo h.cell_hi);
            string_of_int h.counts.Mpcache.invalidations;
            string_of_int h.counts.Mpcache.false_sh;
            string_of_int h.counts.Mpcache.true_sh ])
        t.hot
    in
    Buffer.add_string buf (Table.render ~header body)
  end;
  Buffer.contents buf
