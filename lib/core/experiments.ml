module Workload = Fs_workloads.Workload
module Workloads = Fs_workloads.Workloads
module Plan = Fs_layout.Plan
module Mpcache = Fs_cache.Mpcache
module Table = Fs_util.Table
module Par = Fs_util.Par
module Span = Fs_obs.Span

type version = Workload.version

(* ------------------------------------------------------------------ *)
(* Plan memo: figure3, table2, the speedup sweeps and the CLI all ask
   for the same compiler plan; analyze once per (workload, version,
   nprocs, scale).  The memo trusts that [prog] is the workload's build
   at that configuration, which is how every caller obtains it.          *)

let plan_cache : (string * version * int * int, Plan.t) Hashtbl.t =
  Hashtbl.create 32

let plan_lock = Mutex.create ()

let plan_for (w : Workload.t) version prog ~nprocs ~scale =
  if nprocs <= 1 then Plan.empty
  else
    match version with
    | Workload.N -> Plan.empty
    | Workload.C | Workload.P -> (
      let key = (w.name, version, nprocs, scale) in
      match
        Mutex.protect plan_lock (fun () -> Hashtbl.find_opt plan_cache key)
      with
      | Some plan -> plan
      | None ->
        let plan =
          match version with
          | Workload.C -> Sim.compiler_plan prog ~nprocs
          | Workload.P -> (
            match w.programmer_plan with
            | Some f -> f ~nprocs ~scale
            | None ->
              invalid_arg (w.name ^ " has no programmer-optimized version"))
          | Workload.N -> assert false
        in
        Mutex.protect plan_lock (fun () ->
            Hashtbl.replace plan_cache key plan);
        plan)

let recorded_of (e : Trace_memo.entry) =
  { Sim.trace = e.trace; interp = e.interp }

(* ------------------------------------------------------------------ *)
(* Figure 3                                                            *)

type fig3_cell = { accesses : int; misses : int; false_sharing : int }

type fig3_row = {
  name : string;
  procs : int;
  block : int;
  unopt : fig3_cell;
  compiler : fig3_cell;
}

let cell_of_counts (c : Mpcache.counts) =
  {
    accesses = Mpcache.accesses c;
    misses = Mpcache.misses c;
    false_sharing = c.Mpcache.false_sh;
  }

let figure3 ?(blocks = [ 16; 128 ]) ?scale_override ?jobs () =
  Span.timed "figure3"
    ~attrs:
      [ ("blocks", String.concat "," (List.map string_of_int blocks)) ]
  @@ fun () ->
  let ws = Workloads.simulated () in
  let configs =
    List.map
      (fun (w : Workload.t) ->
        (w, w.fig3_procs, Option.value scale_override ~default:w.default_scale))
      ws
  in
  let entries = Trace_memo.get_all ?jobs configs in
  let tasks =
    List.concat
      (List.map2
         (fun (w, nprocs, scale) (e : Trace_memo.entry) ->
           let cplan = plan_for w Workload.C e.prog ~nprocs ~scale in
           List.map (fun block -> (w, nprocs, e, cplan, block)) blocks)
         configs entries)
  in
  Par.map ?jobs
    (fun ((w : Workload.t), nprocs, (e : Trace_memo.entry), cplan, block) ->
      let recorded = recorded_of e in
      let unopt = Sim.cache_sim ~recorded e.prog Plan.empty ~nprocs ~block in
      let compiler = Sim.cache_sim ~recorded e.prog cplan ~nprocs ~block in
      {
        name = w.name;
        procs = nprocs;
        block;
        unopt = cell_of_counts unopt.Sim.counts;
        compiler = cell_of_counts compiler.Sim.counts;
      })
    tasks

let pct_rate num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let render_figure3 rows =
  let header =
    [ "program"; "P"; "block"; "unopt miss%"; "unopt FS%"; "xform miss%";
      "xform FS%"; "FS removed" ]
  in
  let body =
    List.map
      (fun r ->
        let mr c = Table.pct (pct_rate c.misses c.accesses) in
        let fr c = Table.pct (pct_rate c.false_sharing c.accesses) in
        [ r.name;
          string_of_int r.procs;
          string_of_int r.block;
          mr r.unopt;
          fr r.unopt;
          mr r.compiler;
          fr r.compiler;
          Table.pct
            (pct_rate
               (r.unopt.false_sharing - r.compiler.false_sharing)
               r.unopt.false_sharing) ])
      rows
  in
  Table.render ~header body

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)

type table2_row = {
  name : string;
  total_reduction : float;
  group_transpose : float;
  indirection : float;
  pad_align : float;
  locks : float;
}

(* The four transformation families, in the paper's column order. *)
let family = function
  | Plan.Group_transpose _ | Plan.Regroup _ -> `Gt
  | Plan.Indirect _ -> `Ind
  | Plan.Pad_align _ -> `Pad
  | Plan.Pad_locks -> `Locks

let table2 ?(blocks = [ 8; 16; 32; 64; 128; 256 ]) ?jobs () =
  Span.timed "table2" @@ fun () ->
  let ws = Workloads.simulated () in
  let configs =
    List.map
      (fun (w : Workload.t) -> (w, w.fig3_procs, w.default_scale))
      ws
  in
  let entries = Trace_memo.get_all ?jobs configs in
  (* per workload: the cumulative plans of the four families, in the
     paper's order — each family's marginal effect on top of the last *)
  let prepped =
    List.map2
      (fun (w, nprocs, scale) (e : Trace_memo.entry) ->
        let cplan = plan_for w Workload.C e.prog ~nprocs ~scale in
        let upto fam prev = prev @ List.filter (fun a -> family a = fam) cplan in
        let p1 = upto `Gt [] in
        let p2 = upto `Ind p1 in
        let p3 = upto `Pad p2 in
        let p4 = upto `Locks p3 in
        (w, nprocs, e, [| Plan.empty; p1; p2; p3; p4 |]))
      configs entries
  in
  let tasks =
    List.concat_map
      (fun (w, nprocs, e, plans) ->
        List.map (fun block -> (w, nprocs, e, plans, block)) blocks)
      prepped
  in
  let fs_counts =
    Par.map ?jobs
      (fun (_, nprocs, (e : Trace_memo.entry), plans, block) ->
        let recorded = recorded_of e in
        Array.map
          (fun plan ->
            (Sim.cache_sim ~recorded e.prog plan ~nprocs ~block)
              .Sim.counts.Mpcache.false_sh)
          plans)
      tasks
  in
  let by_task = Hashtbl.create 64 in
  List.iter2
    (fun ((w : Workload.t), _, _, _, block) counts ->
      Hashtbl.replace by_task (w.name, block) counts)
    tasks fs_counts;
  List.map
    (fun ((w : Workload.t), _, _, _) ->
      let fractions =
        List.map
          (fun block ->
            let c = Hashtbl.find by_task (w.name, block) in
            let fs0 = c.(0) in
            if fs0 = 0 then (0.0, 0.0, 0.0, 0.0, 0.0)
            else begin
              let f1 = c.(1) and f2 = c.(2) and f3 = c.(3) and f4 = c.(4) in
              let frac a b = float_of_int (a - b) /. float_of_int fs0 in
              ( float_of_int (fs0 - f4) /. float_of_int fs0,
                frac fs0 f1, frac f1 f2, frac f2 f3, frac f3 f4 )
            end)
          blocks
      in
      let avg f = Fs_util.Stats.mean (List.map f fractions) in
      {
        name = w.name;
        total_reduction = avg (fun (t, _, _, _, _) -> t);
        group_transpose = avg (fun (_, g, _, _, _) -> g);
        indirection = avg (fun (_, _, i, _, _) -> i);
        pad_align = avg (fun (_, _, _, p, _) -> p);
        locks = avg (fun (_, _, _, _, l) -> l);
      })
    prepped

let render_table2 rows =
  let header =
    [ "program"; "total FS reduction"; "group&transpose"; "indirection";
      "pad&align"; "locks" ]
  in
  let dash f = if abs_float f < 0.001 then "-" else Table.pct f in
  let body =
    List.map
      (fun r ->
        [ r.name;
          Table.pct r.total_reduction;
          dash r.group_transpose;
          dash r.indirection;
          dash r.pad_align;
          dash r.locks ])
      rows
  in
  Table.render ~header body

(* ------------------------------------------------------------------ *)
(* Speedups (Figure 4, Table 3)                                        *)

type series = {
  workload : string;
  version : version;
  points : (int * float) list;
}

let default_procs = [ 1; 2; 4; 8; 12; 16; 20; 24; 28; 32; 40; 48; 56 ]

(* One KSR2 run per (workload, version, nprocs), replayed from the
   (workload, nprocs) trace: the three versions differ only in layout.
   Cycle counts are memoized process-wide — Figure 4, Table 3 and the
   execution-time sweep largely ask for the same runs. *)
let cycles_cache : (string * version * int * int, int) Hashtbl.t =
  Hashtbl.create 64

let cycles_lock = Mutex.create ()

let cycles_table ?jobs (triples : (Workload.t * version * int) list) =
  Span.timed "cycles-table"
    ~attrs:[ ("runs", string_of_int (List.length triples)) ]
  @@ fun () ->
  let seen = Hashtbl.create 64 in
  let deduped =
    List.filter
      (fun ((w : Workload.t), version, nprocs) ->
        let key = (w.name, version, nprocs) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      triples
  in
  let table = Hashtbl.create 64 in
  let tasks =
    Mutex.protect cycles_lock (fun () ->
        List.filter
          (fun ((w : Workload.t), version, nprocs) ->
            match
              Hashtbl.find_opt cycles_cache
                (w.name, version, nprocs, w.default_scale)
            with
            | Some c ->
              Hashtbl.replace table (w.name, version, nprocs) c;
              false
            | None -> true)
          deduped)
  in
  let entries =
    Trace_memo.get_all ?jobs
      (List.map
         (fun ((w : Workload.t), _, nprocs) -> (w, nprocs, w.default_scale))
         tasks)
  in
  (* plans are computed on the calling domain (the transform pass is the
     compiler; replay tasks only consume its output) *)
  let prepped =
    List.map2
      (fun ((w : Workload.t), version, nprocs) (e : Trace_memo.entry) ->
        let plan = plan_for w version e.prog ~nprocs ~scale:w.default_scale in
        (w, version, nprocs, e, plan))
      tasks entries
  in
  let results =
    Par.map ?jobs
      (fun ((w : Workload.t), version, nprocs, (e : Trace_memo.entry), plan) ->
        let r = Sim.machine_sim ~recorded:(recorded_of e) e.prog plan ~nprocs in
        ((w.name, version, nprocs, w.default_scale),
         r.Sim.machine.Fs_machine.Ksr.cycles))
      prepped
  in
  Mutex.protect cycles_lock (fun () ->
      List.iter
        (fun (((name, version, nprocs, _) as key), cycles) ->
          Hashtbl.replace cycles_cache key cycles;
          Hashtbl.replace table (name, version, nprocs) cycles)
        results);
  fun (w : Workload.t) version nprocs -> Hashtbl.find table (w.name, version, nprocs)

let speedups ?(procs = default_procs) ?names ?jobs () =
  Span.timed "speedups" @@ fun () ->
  let selected =
    match names with
    | None -> Workloads.all
    | Some ns -> List.map Workloads.find ns
  in
  let triples =
    List.concat_map
      (fun (w : Workload.t) ->
        (w, Workload.N, 1)
        :: List.concat_map
             (fun version -> List.map (fun p -> (w, version, p)) procs)
             w.versions)
      selected
  in
  let cycles = cycles_table ?jobs triples in
  List.concat_map
    (fun (w : Workload.t) ->
      let base = cycles w Workload.N 1 in
      List.map
        (fun version ->
          let points =
            List.map
              (fun nprocs ->
                let c = cycles w version nprocs in
                (nprocs, if c = 0 then 0.0 else float_of_int base /. float_of_int c))
              procs
          in
          { workload = w.name; version; points })
        w.versions)
    selected

let figure4 ?procs ?jobs () =
  speedups ?procs ~names:[ "raytrace"; "fmm"; "pverify" ] ?jobs ()

let render_series series =
  let buf = Buffer.create 1024 in
  let by_workload = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let l = Option.value (Hashtbl.find_opt by_workload s.workload) ~default:[] in
      Hashtbl.replace by_workload s.workload (s :: l))
    series;
  let names =
    List.sort_uniq compare (List.map (fun s -> s.workload) series)
  in
  List.iter
    (fun name ->
      let group = List.rev (Hashtbl.find by_workload name) in
      Buffer.add_string buf (Printf.sprintf "%s (speedup vs processors)\n" name);
      let procs = List.map fst (List.hd group).points in
      let header =
        "version" :: List.map string_of_int procs
      in
      let body =
        List.map
          (fun s ->
            Workload.version_to_string s.version
            :: List.map (fun (_, sp) -> Table.f1 sp) s.points)
          group
      in
      Buffer.add_string buf (Table.render ~header body);
      Buffer.add_char buf '\n')
    names;
  Buffer.contents buf

type table3_row = {
  name : string;
  results : (version * float * int) list;
}

let table3 ?procs ?series ?jobs () =
  Span.timed "table3" @@ fun () ->
  let series = match series with Some s -> s | None -> speedups ?procs ?jobs () in
  let names = List.map (fun (w : Workload.t) -> w.name) Workloads.all in
  List.map
    (fun name ->
      let mine = List.filter (fun s -> s.workload = name) series in
      let results =
        List.map
          (fun s ->
            let best_p, best =
              List.fold_left
                (fun (bp, bv) (p, sp) -> if sp > bv then (p, sp) else (bp, bv))
                (1, 0.0) s.points
            in
            (s.version, best, best_p))
          mine
      in
      { name; results })
    names

let render_table3 rows =
  let header = [ "program"; "original"; "compiler"; "programmer" ] in
  let cell results v =
    match List.find_opt (fun (v', _, _) -> v' = v) results with
    | Some (_, sp, at) -> Printf.sprintf "%s (%d)" (Table.f1 sp) at
    | None -> ""
  in
  let body =
    List.map
      (fun r ->
        [ r.name;
          cell r.results Workload.N;
          cell r.results Workload.C;
          cell r.results Workload.P ])
      rows
  in
  Table.render ~header body

(* ------------------------------------------------------------------ *)
(* Headline statistics                                                 *)

type stats = {
  fs_share_of_misses_128 : float;
  fs_removed_128 : float;
  other_miss_increase_128 : float;
  total_miss_reduction_64 : float;
}

let text_stats ?jobs () =
  Span.timed "stats" @@ fun () ->
  let rows128 = figure3 ~blocks:[ 128 ] ?jobs () in
  let rows64 = figure3 ~blocks:[ 64 ] ?jobs () in
  let sum f rows = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let fs_u = sum (fun r -> r.unopt.false_sharing) rows128 in
  let fs_c = sum (fun r -> r.compiler.false_sharing) rows128 in
  let miss_u = sum (fun r -> r.unopt.misses) rows128 in
  let other_u = sum (fun r -> r.unopt.misses - r.unopt.false_sharing) rows128 in
  let other_c =
    sum (fun r -> r.compiler.misses - r.compiler.false_sharing) rows128
  in
  let m64_u = sum (fun r -> r.unopt.misses) rows64 in
  let m64_c = sum (fun r -> r.compiler.misses) rows64 in
  {
    fs_share_of_misses_128 = pct_rate fs_u miss_u;
    fs_removed_128 = pct_rate (fs_u - fs_c) fs_u;
    other_miss_increase_128 = pct_rate (other_c - other_u) other_u;
    total_miss_reduction_64 = pct_rate (m64_u - m64_c) m64_u;
  }

let render_stats s =
  String.concat "\n"
    [ Printf.sprintf
        "false sharing share of misses at 128B blocks:  %s (paper: ~70%%)"
        (Table.pct s.fs_share_of_misses_128);
      Printf.sprintf
        "false-sharing misses removed at 128B blocks:   %s (paper: ~80%%)"
        (Table.pct s.fs_removed_128);
      Printf.sprintf
        "other-miss increase at 128B blocks:            %s (paper: ~19%%)"
        (Table.pct s.other_miss_increase_128);
      Printf.sprintf
        "total-miss reduction at 64B blocks:            %s (paper: ~49%%)"
        (Table.pct s.total_miss_reduction_64);
      "" ]

(* ------------------------------------------------------------------ *)
(* Execution-time improvements                                         *)

type exec_row = { name : string; improvement : float; at_procs : int }

let exec_time_improvements ?(procs = default_procs) ?jobs () =
  Span.timed "exec-time" @@ fun () ->
  let ws = Workloads.simulated () in
  let n_cycles =
    cycles_table ?jobs
      (List.concat_map
         (fun w -> List.map (fun p -> (w, Workload.N, p)) procs)
         ws)
  in
  (* the range where the unoptimized version still scales: processor
     counts up to the unoptimized version's best point *)
  let ranges =
    List.map
      (fun (w : Workload.t) ->
        let n_curve = List.map (fun p -> (p, n_cycles w Workload.N p)) procs in
        let best_p =
          fst
            (List.fold_left
               (fun (bp, bc) (p, c) -> if c < bc then (p, c) else (bp, bc))
               (1, max_int) n_curve)
        in
        (w, List.filter (fun (p, _) -> p <= best_p) n_curve))
      ws
  in
  let c_cycles =
    cycles_table ?jobs
      (List.concat_map
         (fun (w, in_range) ->
           List.map (fun (p, _) -> (w, Workload.C, p)) in_range)
         ranges)
  in
  List.map
    (fun ((w : Workload.t), in_range) ->
      let improvement, at_procs =
        List.fold_left
          (fun (bi, bp) (p, tn) ->
            let tc = c_cycles w Workload.C p in
            let imp = if tn = 0 then 0.0 else float_of_int (tn - tc) /. float_of_int tn in
            if imp > bi then (imp, p) else (bi, bp))
          (0.0, 1) in_range
      in
      { name = w.name; improvement; at_procs })
    ranges

let render_exec rows =
  let header = [ "program"; "max exec-time improvement"; "at P" ] in
  let body =
    List.map
      (fun r -> [ r.name; Table.pct r.improvement; string_of_int r.at_procs ])
      rows
  in
  Table.render ~header body
