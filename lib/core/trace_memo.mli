(** The trace memo: interpret each (workload, nprocs, scale) once.

    Interpreted executions are layout-free ({!Fs_trace.Cell_trace}), so
    every experiment that varies only the layout — block-size sweeps,
    plan ablations, version comparisons — can share one recorded trace.
    This module is the process-wide cache that makes the sharing happen
    across experiment drivers: Figure 3, Table 2 and the headline stats
    all hit the same six traces; the speedup sweeps share one trace per
    (workload, processor count) across the N/C/P versions.

    The cache is bounded (LRU over whole entries, default 128) and
    thread-compatible: bookkeeping is mutex-protected, and {!get_all}
    records missing traces on a {!Fs_util.Par} domain pool while the
    table itself is only touched from the calling domain's lock scope.
    Concurrent misses on the {e same} key coalesce: the first caller
    records the trace while the others block on a condition variable and
    pick the entry up when it lands, so N tenants asking for one
    configuration cost exactly one interpretation.

    With a capture directory set, recorded traces are also written to
    disk ([<workload>-p<nprocs>-s<scale>.fstrace], atomically) and
    re-loaded on later misses — even across processes.  A disk-loaded
    entry's [interp] summary is reconstructed from the event stream; its
    final-memory [store] is empty (values are not part of the trace).
    Entries are additionally keyed by a [stamp] of the capture file —
    its trace-format version, size, and mtime — so a capture that is
    converted or replaced on disk misses and reloads instead of aliasing
    the stale in-memory entry. *)

type key = {
  workload : string;
  nprocs : int;
  scale : int;
  seed : int option;
      (** scheduler seed for dynamic workloads; part of the trace's
          identity (capture files gain a [-seed<n>] suffix) *)
  stamp : string;
}

type entry = {
  prog : Fs_ir.Ast.program;
  trace : Fs_trace.Cell_trace.t;
  interp : Fs_interp.Interp.result;
}

val get :
  ?seed:int -> Fs_workloads.Workload.t -> nprocs:int -> scale:int -> entry
(** Cached, or interpreted (or disk-loaded) on miss.  [seed] seeds the
    work-stealing runtime and must be given for dynamic workloads. *)

val get_all :
  ?jobs:int ->
  ?seed:int ->
  (Fs_workloads.Workload.t * int * int) list ->
  entry list
(** [(workload, nprocs, scale)] configurations, result in input order.
    Misses are recorded in parallel on up to [jobs] domains; each
    distinct configuration is interpreted exactly once. *)

val set_capacity : int -> unit
(** @raise Invalid_argument below 1. *)

val set_capture_dir : string option -> unit

val clear : unit -> unit

val read_stats : unit -> int * int * int * int
(** (hits, misses, evictions, disk loads) since the last {!clear}. *)

val read_coalesced : unit -> int
(** How many callers piggybacked on another caller's in-flight recording
    instead of recording themselves, since the last {!clear}. *)
