(** Hot-line forensics: line lifetimes mapped back to source variables.

    The per-block counters say {e how many} misses a cache line cost; the
    line-lifetime stats from {!Fs_cache.Mpcache.lines} say {e why}: how
    ownership of the line migrated between writers, how long the
    alternating-writer runs were, how many distinct words each processor
    touched.  This module joins the two, attributes every line to the
    variable owning it through the layout oracle, classifies the sharing
    it exhibits at word granularity, and names the transformation that
    would fix it — the static planner's decision when it made one, a
    recommendation derived from the word-level footprint when the
    planner kept the layout (dynamically partitioned data, which the
    static analysis cannot attribute to a PDV axis, lands here). *)

type verdict =
  | Falsely_shared
      (** the line's sharing misses are dominantly false — invalidations
          moved data the victim never consumed *)
  | Truly_shared  (** dominantly true — the communication is real *)
  | Mixed         (** a genuine mix of the two *)
  | Private_line  (** at most one writer *)

val verdict_to_string : verdict -> string

type hot = {
  line : Fs_cache.Mpcache.line;
  counts : Fs_cache.Mpcache.counts;  (** the line's per-block miss counters *)
  owner : string;
  cell_lo : int;
  cell_hi : int;
  score : float;   (** {!Fs_cache.Mpcache.pingpong_score} *)
  verdict : verdict;
  fix : string;    (** the transformation that would fix the line *)
}

type t = {
  nprocs : int;
  block : int;
  total : Fs_cache.Mpcache.counts;
  hot : hot list;  (** top-K by false-sharing misses, then invalidations *)
  dropped : int;   (** lines beyond the top-K cut *)
}

val analyze :
  ?cache_bytes:int ->
  ?assoc:int ->
  ?top:int ->
  ?sched:Fs_sched.Sched.config ->
  ?recorded:Sim.recorded ->
  Fs_ir.Ast.program ->
  Fs_layout.Plan.t ->
  nprocs:int ->
  block:int ->
  t
(** Replay (recording a fresh execution when [recorded] is omitted) with
    block and line tracking on, and rank the lines.  [top] defaults
    to 10. *)

val render : t -> string
(** Ranked table plus migration histogram bars. *)
