module Workload = Fs_workloads.Workload
module Cell_trace = Fs_trace.Cell_trace
module Cell_event = Fs_trace.Cell_event
module Interp = Fs_interp.Interp
module Par = Fs_util.Par

(* [stamp] pins the entry to the on-disk capture it came from (or will
   be written to): the file's format version, byte size, and mtime.  A
   capture that is converted, re-recorded, or replaced between lookups
   therefore misses instead of aliasing the stale in-memory entry; with
   no capture dir the stamp is empty and keys degenerate to the plain
   (workload, nprocs, scale, seed) tuple.  [seed] is the scheduler seed
   for dynamic (task-parallel) workloads: it changes the recorded
   schedule, so it is part of the trace's identity, in memory and in the
   capture filename alike. *)
type key = {
  workload : string;
  nprocs : int;
  scale : int;
  seed : int option;
  stamp : string;
}

type entry = {
  prog : Fs_ir.Ast.program;
  trace : Cell_trace.t;
  interp : Interp.result;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable disk_loads : int;
  mutable coalesced : int;
}

(* The memo is process-global, like the workload registry it mirrors.
   All bookkeeping happens under [lock] so the experiment drivers can
   consult it around their Par fan-outs; interpretation itself always
   runs outside the lock.  [inflight] holds the keys some caller is
   currently recording: a second caller asking for one blocks on [cond]
   instead of recording the same trace again, so N tenants hammering the
   same configuration cost one interpretation. *)
let lock = Mutex.create ()
let cond = Condition.create ()
let table : (key, entry * int ref) Hashtbl.t = Hashtbl.create 32
let inflight : (key, unit) Hashtbl.t = Hashtbl.create 8
let tick = ref 0
let capacity = ref 128
let capture_dir : string option ref = ref None
let stats = { hits = 0; misses = 0; evictions = 0; disk_loads = 0; coalesced = 0 }

let locked f = Mutex.protect lock f

let set_capacity n =
  if n < 1 then invalid_arg "Trace_memo.set_capacity: capacity must be >= 1";
  locked (fun () -> capacity := n)

let set_capture_dir d = locked (fun () -> capture_dir := d)

let clear () =
  locked (fun () ->
      Hashtbl.reset table;
      tick := 0;
      stats.hits <- 0;
      stats.misses <- 0;
      stats.evictions <- 0;
      stats.disk_loads <- 0;
      stats.coalesced <- 0)

let read_stats () =
  locked (fun () ->
      (stats.hits, stats.misses, stats.evictions, stats.disk_loads))

let read_coalesced () = locked (fun () -> stats.coalesced)

(* ------------------------------------------------------------------ *)

let path_of dir k =
  let seed =
    match k.seed with None -> "" | Some s -> Printf.sprintf "-seed%d" s
  in
  Filename.concat dir
    (Printf.sprintf "%s-p%d-s%d%s.fstrace" k.workload k.nprocs k.scale seed)

let stamp_of dir k =
  match dir with
  | None -> ""
  | Some d -> (
    let path = path_of d k in
    match Unix.stat path with
    | st ->
      let version =
        match Cell_trace.file_format path with
        | f -> string_of_int (Cell_trace.format_version f)
        | exception (Cell_trace.Corrupt _ | Sys_error _) -> "?"
      in
      Printf.sprintf "v%s:%d:%h" version st.Unix.st_size st.Unix.st_mtime
    | exception Unix.Unix_error _ -> "")

(* A disk-loaded trace carries no final memory image, but the summary
   counters of the original run are all derivable from the event
   stream. *)
let result_of_trace trace =
  let nprocs = Cell_trace.nprocs trace in
  let work = Array.make nprocs 0 in
  let accesses = Array.make nprocs 0 in
  let barriers = ref 0 in
  Cell_trace.iter
    (function
      | Cell_event.Access { proc; _ } -> accesses.(proc) <- accesses.(proc) + 1
      | Cell_event.Work { proc; amount } -> work.(proc) <- work.(proc) + amount
      | Cell_event.Barrier_release -> incr barriers
      | _ -> ())
    trace;
  {
    Interp.work;
    accesses;
    barrier_episodes = !barriers;
    store = Hashtbl.create 1;
    (* full runtime counters (tasks, attempts) are not in the stream;
       consumers wanting steal counts scan the trace's Steal events *)
    sched = None;
  }

let compute dir (w : Workload.t) k =
  Fs_obs.Span.timed "record"
    ~attrs:
      [ ("workload", k.workload);
        ("nprocs", string_of_int k.nprocs);
        ("scale", string_of_int k.scale) ]
  @@ fun () ->
  let prog = w.Workload.build ~nprocs:k.nprocs ~scale:k.scale in
  let from_disk =
    match dir with
    | None -> None
    | Some d -> (
      let path = path_of d k in
      if not (Sys.file_exists path) then None
      else
        match Cell_trace.read_file path with
        | trace when Cell_trace.nprocs trace = k.nprocs ->
          Some { prog; trace; interp = result_of_trace trace }
        | _ -> None
        | exception (Cell_trace.Corrupt _ | Sys_error _) -> None)
  in
  match from_disk with
  | Some e ->
    Fs_obs.Span.note "source" "disk";
    (e, true)
  | None ->
    Fs_obs.Span.note "source" "interp";
    let sched = Option.map Fs_sched.Sched.seeded k.seed in
    let trace, interp = Interp.record ?sched prog ~nprocs:k.nprocs in
    (match dir with
     | Some d when Sys.file_exists d -> Cell_trace.write_file trace (path_of d k)
     | _ -> ());
    ({ prog; trace; interp }, false)

(* under [lock] *)
let insert k e =
  stats.misses <- stats.misses + 1;
  if not (Hashtbl.mem table k) then begin
    while Hashtbl.length table >= !capacity do
      let victim =
        Hashtbl.fold
          (fun k (_, last) acc ->
            match acc with
            | Some (_, best) when !best <= !last -> acc
            | _ -> Some (k, last))
          table None
      in
      match victim with
      | Some (vk, _) ->
        Hashtbl.remove table vk;
        stats.evictions <- stats.evictions + 1
      | None -> assert false
    done;
    incr tick;
    Hashtbl.add table k (e, ref !tick)
  end

let find k =
  match Hashtbl.find_opt table k with
  | Some (e, last) ->
    incr tick;
    last := !tick;
    stats.hits <- stats.hits + 1;
    Some e
  | None -> None

let key_of dir (w : Workload.t) ~seed ~nprocs ~scale =
  let base = { workload = w.Workload.name; nprocs; scale; seed; stamp = "" } in
  { base with stamp = stamp_of dir base }

(* under [lock]: computing [k] may have created or rewritten the capture
   file, so the entry is inserted under the key's refreshed stamp — the
   one the next lookup will compute *)
let insert_fresh dir k e =
  insert { k with stamp = stamp_of dir k } e

(* under [lock]: claim [k] for this caller, or wait out whoever holds it.
   Returns [true] when the caller must compute, [false] when the leader
   finished while we waited (the caller should re-check the table). *)
let claim_or_wait k =
  if Hashtbl.mem inflight k then begin
    while Hashtbl.mem inflight k do
      Condition.wait cond lock
    done;
    stats.coalesced <- stats.coalesced + 1;
    false
  end
  else begin
    Hashtbl.add inflight k ();
    true
  end

(* under [lock] *)
let release k =
  Hashtbl.remove inflight k;
  Condition.broadcast cond

let rec get ?seed (w : Workload.t) ~nprocs ~scale =
  let dir = locked (fun () -> !capture_dir) in
  let k = key_of dir w ~seed ~nprocs ~scale in
  let action =
    locked (fun () ->
        match find k with
        | Some e -> `Hit e
        | None -> if claim_or_wait k then `Compute else `Retry)
  in
  match action with
  | `Hit e -> e
  | `Retry ->
    (* the leader finished (or failed); its entry is in the table unless
       it was evicted or raised — either way the re-check does the right
       thing *)
    get ?seed w ~nprocs ~scale
  | `Compute -> (
    match compute dir w k with
    | e, from_disk ->
      locked (fun () ->
          insert_fresh dir k e;
          if from_disk then stats.disk_loads <- stats.disk_loads + 1;
          release k);
      e
    | exception ex ->
      locked (fun () -> release k);
      raise ex)

let get_all ?jobs ?seed configs =
  let dir = locked (fun () -> !capture_dir) in
  let keyed =
    List.map
      (fun (w, nprocs, scale) -> (w, key_of dir w ~seed ~nprocs ~scale))
      configs
  in
  let cached = locked (fun () -> List.map (fun (_, k) -> find k) keyed) in
  (* distinct missing keys, first occurrence wins *)
  let missing = Hashtbl.create 16 in
  List.iter2
    (fun (w, k) hit ->
      if hit = None && not (Hashtbl.mem missing k) then Hashtbl.add missing k w)
    keyed cached;
  (* claim the keys nobody else is recording; the rest are in flight on
     another thread and are fetched with a blocking [get] below *)
  let todo =
    locked (fun () ->
        Hashtbl.fold
          (fun k w acc ->
            if Hashtbl.mem inflight k then acc
            else begin
              Hashtbl.add inflight k ();
              (w, k) :: acc
            end)
          missing [])
  in
  let computed =
    match Par.map ?jobs (fun (w, k) -> (k, compute dir w k)) todo with
    | r -> r
    | exception ex ->
      locked (fun () -> List.iter (fun (_, k) -> release k) todo);
      raise ex
  in
  locked (fun () ->
      List.iter
        (fun (k, (e, from_disk)) ->
          insert_fresh dir k e;
          if from_disk then stats.disk_loads <- stats.disk_loads + 1;
          release k)
        computed);
  List.map2
    (fun (w, k) hit ->
      match hit with
      | Some e -> e
      | None -> (
        match List.assoc_opt k computed with
        | Some (e, _) -> e
        | None -> get ?seed:k.seed w ~nprocs:k.nprocs ~scale:k.scale))
    keyed cached
