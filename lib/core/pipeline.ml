module T = Fs_transform.Transform
module Pdv = Fs_analysis.Pdv
module Nonconcurrency = Fs_analysis.Nonconcurrency
module Summary = Fs_analysis.Summary
module Layout = Fs_layout.Layout
module Mpcache = Fs_cache.Mpcache
module Ksr = Fs_machine.Ksr
module Interp = Fs_interp.Interp
module Replay = Fs_replay.Replay
module Cell_trace = Fs_trace.Cell_trace
module Listener = Fs_trace.Listener
module Metrics = Fs_obs.Metrics
module Profile = Fs_obs.Profile
module Span = Fs_obs.Span
module Json = Fs_obs.Json

type t = {
  report : T.report;
  cache : Sim.cache_run;
  machine : Ksr.result option;
  epochs : Phases.epoch list option;
  metrics : Metrics.t;
  profile : Profile.t;
}

let proc_label p = [ ("proc", string_of_int p) ]

let ingest_cache metrics ~proc_counts ~per_block =
  Array.iteri
    (fun p (c : Mpcache.counts) ->
      let set name v =
        Metrics.Counter.add (Metrics.counter metrics ~labels:(proc_label p) name) v
      in
      set "cache_accesses" (Mpcache.accesses c);
      set "cache_misses" (Mpcache.misses c);
      set "cache_false_sharing" c.Mpcache.false_sh;
      set "cache_true_sharing" c.true_sh;
      set "cache_invalidations" c.invalidations;
      set "cache_upgrades" c.upgrades)
    proc_counts;
  let hist =
    Metrics.histogram metrics "cache_block_invalidations"
      ~buckets:[ 1.; 10.; 100.; 1_000.; 10_000. ]
  in
  List.iter
    (fun (_, (c : Mpcache.counts)) ->
      if c.Mpcache.invalidations > 0 then
        Metrics.Histogram.observe hist (float_of_int c.Mpcache.invalidations))
    per_block

let ingest_machine metrics (r : Ksr.result) =
  Metrics.Gauge.set (Metrics.gauge metrics "ksr_cycles") (float_of_int r.Ksr.cycles);
  Array.iteri
    (fun p stall ->
      let lock = r.lock_stall.(p) in
      let set name v =
        Metrics.Gauge.set
          (Metrics.gauge metrics ~labels:(proc_label p) name)
          (float_of_int v)
      in
      set "ksr_mem_stall_cycles" r.mem_stall.(p);
      set "ksr_barrier_idle_cycles" (stall - lock);
      set "ksr_lock_stall_cycles" lock)
    r.sync_stall

let run ?options ?(machine = false) ?(epochs = false) ?(shards = 1) ?pool ?plan
    ?profile ?sched prog ~nprocs ~block =
  Span.timed "pipeline"
    ~attrs:
      [ ("nprocs", string_of_int nprocs); ("block", string_of_int block) ]
  @@ fun () ->
  let profile = match profile with Some p -> p | None -> Profile.create () in
  let metrics = Metrics.create () in
  let rsd_limit, static_profile =
    match options with
    | Some (o : T.options) -> (o.rsd_limit, o.profile)
    | None -> (T.default_options.rsd_limit, T.default_options.profile)
  in
  (* the analyses are timed stage by stage; the transform pass re-runs them
     internally, so its entry reflects the full planning cost.  Each stage
     also opens an ambient span, so a telemetry-enabled caller sees the
     same names as the profile, arranged causally. *)
  Span.timed "pdv" (fun () ->
      ignore
        (Profile.time profile "pdv"
           ~events:(fun _ -> List.length prog.Fs_ir.Ast.funcs)
           (fun () -> Pdv.analyze prog)));
  Span.timed "non-concurrency" (fun () ->
      ignore
        (Profile.time profile "non-concurrency"
           ~events:Nonconcurrency.phase_count
           (fun () -> Nonconcurrency.analyze prog)));
  Span.timed "summary" (fun () ->
      ignore
        (Profile.time profile "summary"
           ~events:(fun s -> List.length (Summary.keys s))
           (fun () ->
             Summary.analyze ~rsd_limit ~profile:static_profile prog ~nprocs)));
  let report =
    Span.timed "transform" (fun () ->
        Profile.time profile "transform"
          ~events:(fun (r : T.report) -> List.length r.plan)
          (fun () -> T.plan ?options prog ~nprocs))
  in
  Span.note "plan_actions" (string_of_int (List.length report.T.plan));
  let plan = Option.value plan ~default:report.T.plan in
  let layout =
    Span.timed "layout" (fun () ->
        Profile.time profile "layout" ~events:Layout.size (fun () ->
            Layout.realize prog plan ~block))
  in
  (* interpret once, layout-free; the cache and machine runs below both
     replay the same trace under their own layouts *)
  let recorded =
    Span.timed "interp" (fun () ->
        Profile.time profile "interp"
          ~events:(fun (r : Sim.recorded) ->
            Array.fold_left ( + ) 0 r.interp.Interp.accesses)
          (fun () -> Sim.record ?sched prog ~nprocs))
  in
  let cache_config = Mpcache.default_config ~nprocs ~block in
  (* the sharded route covers everything the result surface needs (the
     per-block table rides on the slabs) except the epoch tracker's
     per-segment views and the per-event [Metrics.listener] interp_*
     counters, which need the live listener stream — [epochs] therefore
     pins the run to the listener path, and a sharded run reports cache
     metrics only *)
  let counts, per_block, epoch_list =
    if shards > 1 && not epochs then begin
      let sharded =
        Span.timed "replay+cache"
          ~attrs:
            [ ("events", string_of_int (Cell_trace.length recorded.Sim.trace));
              ("shards", string_of_int shards) ]
          (fun () ->
            Profile.time profile "replay+cache"
              ~events:(fun (_ : Replay.sharded) ->
                Cell_trace.length recorded.Sim.trace)
              (fun () ->
                Replay.simulate_sharded ?pool ~track_blocks:true
                  recorded.Sim.trace ~shards ~layout ~config:cache_config))
      in
      let caches = Replay.sharded_caches sharded in
      ingest_cache metrics
        ~proc_counts:(Mpcache.merged_proc_counts caches)
        ~per_block:(Mpcache.merged_per_block caches);
      (sharded.Replay.counts, Mpcache.merged_per_block caches, None)
    end
    else begin
      let cache =
        Mpcache.create ~track_blocks:true ~max_addr:(Layout.size layout)
          cache_config
      in
      let tracker, close_epochs =
        if epochs then Phases.tracker cache else (Listener.null, fun () -> [])
      in
      let listener =
        Listener.combine
          (Listener.of_sink (Mpcache.sink cache))
          (Listener.combine (Metrics.listener metrics) tracker)
      in
      Span.timed "replay+cache"
        ~attrs:
          [ ("events", string_of_int (Cell_trace.length recorded.Sim.trace)) ]
        (fun () ->
          Profile.time profile "replay+cache"
            ~events:(fun () -> Cell_trace.length recorded.Sim.trace)
            (fun () -> Replay.replay recorded.Sim.trace ~layout ~listener));
      let epoch_list = if epochs then Some (close_epochs ()) else None in
      ingest_cache metrics
        ~proc_counts:(Mpcache.proc_counts cache)
        ~per_block:(Mpcache.per_block cache);
      (Mpcache.counts cache, Mpcache.per_block cache, epoch_list)
    end
  in
  let interp = recorded.Sim.interp in
  let machine_result =
    if not machine then None
    else
      Some
        (Span.timed "machine" (fun () ->
             Profile.time profile "machine"
               ~events:(fun (r : Ksr.result) -> r.Ksr.cycles)
               (fun () ->
                 let m = Ksr.create (Ksr.default_config ~nprocs) in
                 let mlayout =
                   Layout.realize prog plan
                     ~block:(Ksr.default_config ~nprocs).Ksr.block
                 in
                 Replay.replay recorded.Sim.trace ~layout:mlayout
                   ~listener:(Ksr.listener m);
                 Ksr.finish m)))
  in
  Option.iter (ingest_machine metrics) machine_result;
  {
    report;
    cache =
      { Sim.counts; per_block; layout_bytes = Layout.size layout; interp };
    machine = machine_result;
    epochs = epoch_list;
    metrics;
    profile;
  }

let to_json t =
  Json.Obj
    ([ ("plan",
        Json.List
          (List.map
             (fun a -> Json.String (Format.asprintf "%a" Fs_layout.Plan.pp_action a))
             t.report.T.plan));
       ("counts", Emit.counts t.cache.Sim.counts);
       ("profile", Profile.to_json t.profile);
       ("metrics", Metrics.to_json t.metrics) ]
    @ (match t.epochs with
       | None -> []
       | Some es ->
         [ ("epochs",
            Json.List
              (List.map
                 (fun (e : Phases.epoch) ->
                   Json.Obj
                     [ ("index", Json.Int e.Phases.index);
                       ("total", Emit.counts (Phases.epoch_total e)) ])
                 es)) ])
    @
    match t.machine with
    | None -> []
    | Some m -> [ ("machine", Emit.machine m) ])
