module Mpcache = Fs_cache.Mpcache
module Layout = Fs_layout.Layout
module Interp = Fs_interp.Interp

type row = { var : string; counts : Mpcache.counts; blocks : int }

let pointer_owner = "(indirection pointers)"
let unmapped_owner = "(unmapped)"

(* Dominant owner of each block, by cell count. *)
let block_owner prog layout ~block =
  let owner_cells : (int, (string, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
  let bump blk var =
    let tbl =
      match Hashtbl.find_opt owner_cells blk with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.add owner_cells blk t;
        t
    in
    Hashtbl.replace tbl var
      (1 + Option.value (Hashtbl.find_opt tbl var) ~default:0)
  in
  List.iter
    (fun (name, _) ->
      let vl = Layout.lookup layout name in
      Array.iter (fun a -> bump (a / block) name) vl.Layout.addr;
      Array.iter (fun a -> if a >= 0 then bump (a / block) pointer_owner) vl.Layout.extra)
    prog.Fs_ir.Ast.globals;
  fun blk ->
    match Hashtbl.find_opt owner_cells blk with
    | None -> unmapped_owner
    | Some tbl ->
      fst
        (Hashtbl.fold
           (fun var n (bv, bn) -> if n > bn then (var, n) else (bv, bn))
           tbl (unmapped_owner, 0))

let cell_range prog layout ~block var blk =
  match List.assoc_opt var prog.Fs_ir.Ast.globals with
  | None -> (-1, -1)
  | Some _ ->
    let vl = Layout.lookup layout var in
    let lo = ref max_int and hi = ref (-1) in
    Array.iteri
      (fun cell a ->
        if a / block = blk then begin
          if cell < !lo then lo := cell;
          if cell > !hi then hi := cell
        end)
      vl.Layout.addr;
    if !hi < 0 then (-1, -1) else (!lo, !hi)

let attribute ?(cache_bytes = 32 * 1024) ?(assoc = 4) ?sched prog plan ~nprocs
    ~block =
  let layout = Layout.realize prog plan ~block in
  let cache =
    Mpcache.create ~track_blocks:true ~max_addr:(Layout.size layout)
      { Mpcache.nprocs; block; cache_bytes; assoc }
  in
  let _ =
    Interp.run_to_sink ?sched prog ~nprocs ~layout ~sink:(Mpcache.sink cache)
  in
  let dominant = block_owner prog layout ~block in
  let per_var : (string, Mpcache.counts * int ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (blk, c) ->
      let var = dominant blk in
      let dst, nblocks =
        match Hashtbl.find_opt per_var var with
        | Some x -> x
        | None ->
          let x = (Mpcache.zero_counts (), ref 0) in
          Hashtbl.add per_var var x;
          x
      in
      incr nblocks;
      Mpcache.add_into dst c)
    (Mpcache.per_block cache);
  Hashtbl.fold
    (fun var (counts, nblocks) acc ->
      { var; counts; blocks = !nblocks } :: acc)
    per_var []
  |> List.sort (fun a b ->
         compare b.counts.Mpcache.false_sh a.counts.Mpcache.false_sh)

let render rows =
  let header =
    [ "data structure"; "blocks"; "accesses"; "misses"; "false sh."; "true sh." ]
  in
  let body =
    List.map
      (fun r ->
        [ r.var;
          string_of_int r.blocks;
          string_of_int (Mpcache.accesses r.counts);
          string_of_int (Mpcache.misses r.counts);
          string_of_int r.counts.Mpcache.false_sh;
          string_of_int r.counts.Mpcache.true_sh ])
      rows
  in
  Fs_util.Table.render ~header body
