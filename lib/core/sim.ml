module Mpcache = Fs_cache.Mpcache
module Layout = Fs_layout.Layout
module Interp = Fs_interp.Interp
module Replay = Fs_replay.Replay
module Listener = Fs_trace.Listener
module Ksr = Fs_machine.Ksr

type recorded = { trace : Fs_trace.Cell_trace.t; interp : Interp.result }

let record ?quantum ?max_steps ?sched prog ~nprocs =
  let trace, interp = Interp.record ?quantum ?max_steps ?sched prog ~nprocs in
  { trace; interp }

type cache_run = {
  counts : Mpcache.counts;
  per_block : (int * Mpcache.counts) list;
  layout_bytes : int;
  interp : Interp.result;
}

let cache_sim ?(cache_bytes = 32 * 1024) ?(assoc = 4) ?(track_blocks = false)
    ?flight ?(shards = 1) ?pool ?sched ?recorded prog plan ~nprocs ~block =
  let recorded =
    match recorded with Some r -> r | None -> record ?sched prog ~nprocs
  in
  let layout = Layout.realize prog plan ~block in
  let config = { Mpcache.nprocs; block; cache_bytes; assoc } in
  (* untracked runs take the fused packed-replay loop — sharded across
     domains when [shards > 1]; with per-block tracking on, the
     reference listener path keeps the hot loop honest (and is what
     epoch/line consumers layer their taps onto).  A flight recorder
     pins the run to the single-core instrumented loop. *)
  if (not track_blocks) && flight = None && shards > 1 then begin
    let sharded =
      Replay.simulate_sharded ?pool recorded.trace ~shards ~layout ~config
    in
    {
      counts = sharded.Replay.counts;
      per_block = [];
      layout_bytes = Layout.size layout;
      interp = recorded.interp;
    }
  end
  else begin
    let cache =
      Mpcache.create ~track_blocks ~max_addr:(Layout.size layout) config
    in
    if track_blocks then
      Replay.replay_to_sink recorded.trace ~layout ~sink:(Mpcache.sink cache)
    else Replay.simulate ?flight recorded.trace ~layout ~cache;
    {
      counts = Mpcache.counts cache;
      per_block = (if track_blocks then Mpcache.per_block cache else []);
      layout_bytes = Layout.size layout;
      interp = recorded.interp;
    }
  end

type timed_run = { machine : Ksr.result; work : int array }

let machine_sim ?config ?sched ?recorded prog plan ~nprocs =
  let config =
    match config with Some c -> c | None -> Ksr.default_config ~nprocs
  in
  let recorded =
    match recorded with Some r -> r | None -> record ?sched prog ~nprocs
  in
  let layout = Layout.realize prog plan ~block:config.Ksr.block in
  let machine = Ksr.create config in
  Replay.replay recorded.trace ~layout ~listener:(Ksr.listener machine);
  { machine = Ksr.finish machine; work = recorded.interp.Interp.work }

let compiler_plan ?options prog ~nprocs =
  (Fs_transform.Transform.plan ?options prog ~nprocs).Fs_transform.Transform.plan
