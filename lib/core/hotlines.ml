module Mpcache = Fs_cache.Mpcache
module Layout = Fs_layout.Layout
module Table = Fs_util.Table

type verdict = Falsely_shared | Truly_shared | Mixed | Private_line

let verdict_to_string = function
  | Falsely_shared -> "false sharing"
  | Truly_shared -> "true sharing"
  | Mixed -> "mixed"
  | Private_line -> "private"

type hot = {
  line : Mpcache.line;
  counts : Mpcache.counts;
  owner : string;
  cell_lo : int;
  cell_hi : int;
  score : float;
  verdict : verdict;
  fix : string;
}

type t = {
  nprocs : int;
  block : int;
  total : Mpcache.counts;
  hot : hot list;
  dropped : int;
}

(* The miss classifier is the authority: at every sharing miss it checked
   whether a remotely-modified word was actually consumed.  The whole-run
   word masks would misread dynamically partitioned data — a revolving
   partition writes every word from many processors across epochs while
   each individual miss is still false sharing.  The masks only break the
   tie for lines with no sharing misses at all. *)
let classify (l : Mpcache.line) (c : Mpcache.counts) =
  if l.Mpcache.writers < 2 then Private_line
  else
    let f = c.Mpcache.false_sh and t = c.true_sh in
    if f = 0 && t = 0 then
      if l.shared_words = 0 then Falsely_shared
      else if l.shared_words = l.written_words then Truly_shared
      else Mixed
    else if f >= 2 * t then Falsely_shared
    else if t >= 2 * f then Truly_shared
    else Mixed

(* What the planner decided for [var], if it decided anything.  Several
   summary keys (struct fields) can share one variable; the first
   non-Keep decision wins (the planner's own arbitration rule). *)
let planned_fix report var =
  Fs_transform.Transform.(decision_label (decision_for report var))

(* Fallback when the planner kept the layout: read the fix off the
   word-level footprint.  Dynamically partitioned data — distinct
   processors writing distinct words with no PDV axis the static
   analysis could group on — is the main customer. *)
let dynamic_fix verdict (l : Mpcache.line) =
  match verdict with
  | Falsely_shared ->
    if l.Mpcache.written_words > 1 then
      "align per-processor partitions to block boundaries"
    else "pad & align"
  | Mixed -> "split shared words from per-processor words, then pad"
  | Truly_shared -> "none — the communication is real"
  | Private_line -> "none — single writer"

let verdict_and_fix report var (l : Mpcache.line) (c : Mpcache.counts) =
  let verdict = classify l c in
  let fix =
    match verdict with
    | Truly_shared | Private_line -> dynamic_fix verdict l
    | Falsely_shared | Mixed -> (
      match planned_fix report var with
      | Some f -> f
      | None -> dynamic_fix verdict l)
  in
  (verdict, fix)

let analyze ?(cache_bytes = 32 * 1024) ?(assoc = 4) ?(top = 10) ?sched
    ?recorded prog plan ~nprocs ~block =
  let recorded =
    match recorded with Some r -> r | None -> Sim.record ?sched prog ~nprocs
  in
  let layout = Layout.realize prog plan ~block in
  let cache =
    Mpcache.create ~track_blocks:true ~track_lines:true
      ~max_addr:(Layout.size layout)
      { Mpcache.nprocs; block; cache_bytes; assoc }
  in
  Fs_replay.Replay.replay_to_sink recorded.Sim.trace ~layout
    ~sink:(Mpcache.sink cache);
  let owner = Attribution.block_owner prog layout ~block in
  let cell_range = Attribution.cell_range prog layout ~block in
  let per_block = Mpcache.per_block cache in
  let report = Fs_transform.Transform.plan prog ~nprocs in
  let ranked =
    Mpcache.lines cache
    |> List.map (fun (l : Mpcache.line) ->
           let counts =
             match List.assoc_opt l.line_block per_block with
             | Some c -> c
             | None -> Mpcache.zero_counts ()
           in
           (l, counts))
    |> List.sort (fun ((a : Mpcache.line), (ca : Mpcache.counts))
                      ((b : Mpcache.line), (cb : Mpcache.counts)) ->
           compare
             (cb.false_sh, cb.invalidations, b.migrations, a.line_block)
             (ca.false_sh, ca.invalidations, a.migrations, b.line_block))
  in
  let nlines = List.length ranked in
  let hot =
    ranked
    |> List.filteri (fun i _ -> i < top)
    |> List.map (fun ((l : Mpcache.line), counts) ->
           let var = owner l.line_block in
           let cell_lo, cell_hi = cell_range var l.line_block in
           let verdict, fix = verdict_and_fix report var l counts in
           { line = l; counts; owner = var; cell_lo; cell_hi;
             score = Mpcache.pingpong_score l; verdict; fix })
  in
  { nprocs; block;
    total = Mpcache.copy_counts (Mpcache.counts cache);
    hot;
    dropped = max 0 (nlines - top) }

(* ------------------------------------------------------------------ *)

let cells_to_string h =
  if h.cell_lo < 0 then "-"
  else if h.cell_lo = h.cell_hi then string_of_int h.cell_lo
  else Printf.sprintf "%d..%d" h.cell_lo h.cell_hi

let line_label h = Printf.sprintf "0x%x %s" h.line.Mpcache.line_block h.owner

let render t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "hot cache lines (%d processors, %dB blocks): %d false-sharing / %d \
        true-sharing misses whole-run\n\n"
       t.nprocs t.block t.total.Mpcache.false_sh t.total.Mpcache.true_sh);
  if t.hot = [] then Buffer.add_string buf "no lines tracked\n"
  else begin
    let header =
      [ "line"; "owner"; "cells"; "false sh."; "inval"; "writers";
        "migrations"; "ping-pong"; "max run"; "words shr/wr"; "verdict";
        "suggested fix" ]
    in
    let body =
      List.map
        (fun h ->
          [ Printf.sprintf "0x%x" h.line.Mpcache.line_block;
            h.owner;
            cells_to_string h;
            string_of_int h.counts.Mpcache.false_sh;
            string_of_int h.counts.Mpcache.invalidations;
            string_of_int h.line.Mpcache.writers;
            string_of_int h.line.Mpcache.migrations;
            Printf.sprintf "%.3f" h.score;
            string_of_int h.line.Mpcache.max_run;
            Printf.sprintf "%d/%d" h.line.Mpcache.shared_words
              h.line.Mpcache.written_words;
            verdict_to_string h.verdict;
            h.fix ])
        t.hot
    in
    Buffer.add_string buf (Table.render ~header body);
    if t.dropped > 0 then
      Buffer.add_string buf
        (Printf.sprintf "(%d cooler line(s) beyond the top %d not shown)\n"
           t.dropped (List.length t.hot));
    Buffer.add_string buf "\nownership migrations per line:\n";
    Buffer.add_string buf
      (Fs_obs.Heatmap.bars
         (List.map (fun h -> (line_label h, h.line.Mpcache.migrations)) t.hot))
  end;
  Buffer.contents buf
