module Mpcache = Fs_cache.Mpcache
module Layout = Fs_layout.Layout
module Cell_trace = Fs_trace.Cell_trace
module Cell_listener = Fs_trace.Cell_listener
module Listener = Fs_trace.Listener
module Nonconcurrency = Fs_analysis.Nonconcurrency
module Summary = Fs_analysis.Summary
module Table = Fs_util.Table

type epoch = {
  index : int;
  per_proc : Mpcache.counts array;
  write_shared : (string * int) list;
}

type violation = { vepoch : int; vvar : string; vwriters : int }

type mapping = Exact | Folded

type t = {
  nprocs : int;
  block : int;
  epochs : epoch list;
  aggregate : Mpcache.counts;
  static_phases : int;
  mapping : mapping;
  violations : violation list;
}

let epoch_total e =
  let total = Mpcache.zero_counts () in
  Array.iter (Mpcache.add_into total) e.per_proc;
  total

let proc_mask_list mask =
  let rec go p acc =
    if 1 lsl p > mask then List.rev acc
    else go (p + 1) (if mask land (1 lsl p) <> 0 then p :: acc else acc)
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Segmentation: snapshot the cache's per-processor counters at every
   barrier release; each epoch is the delta since the previous one.     *)

type seg = {
  cache : Mpcache.t;
  mutable prev : Mpcache.counts array;  (* snapshot at the last release *)
  mutable acc : epoch list;             (* closed epochs, reversed *)
  mutable next : int;
}

let seg_create cache =
  {
    cache;
    prev = Array.map Mpcache.copy_counts (Mpcache.proc_counts cache);
    acc = [];
    next = 0;
  }

let seg_close seg ~write_shared =
  let now = Array.map Mpcache.copy_counts (Mpcache.proc_counts seg.cache) in
  let per_proc = Array.map2 Mpcache.sub_counts now seg.prev in
  seg.acc <- { index = seg.next; per_proc; write_shared } :: seg.acc;
  seg.prev <- now;
  seg.next <- seg.next + 1

let seg_finish seg ~write_shared =
  (* the tail of the run after the last barrier is an epoch of its own *)
  seg_close seg ~write_shared;
  List.rev seg.acc

let tracker cache =
  let seg = seg_create cache in
  let listener =
    { Listener.null with
      barrier_release = (fun () -> seg_close seg ~write_shared:[]) }
  in
  (listener, fun () -> seg_finish seg ~write_shared:[])

(* ------------------------------------------------------------------ *)
(* The static prediction: per phase, which variables does the summary
   analysis consider concurrently write-shared (written by >= 2 process
   ids)?  Lock words are exempt — their traffic is synchronization.     *)

let rec has_lock = function
  | Fs_ir.Ast.Scalar Fs_ir.Ast.Tlock -> true
  | Fs_ir.Ast.Scalar _ -> false
  | Fs_ir.Ast.Array (ty, _) -> has_lock ty
  | Fs_ir.Ast.Struct _ -> false

let lock_vars (prog : Fs_ir.Ast.program) =
  List.filter_map
    (fun (name, ty) -> if has_lock ty then Some name else None)
    prog.Fs_ir.Ast.globals

let predicted_write_shared summary =
  let phases = Summary.phases summary in
  let nprocs = Summary.nprocs summary in
  let keys = Summary.keys summary in
  Array.init phases (fun phase ->
      let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (key : Summary.key) ->
          for pid = 0 to nprocs - 1 do
            match Summary.get summary ~phase ~pid key with
            | Some acc when not (Fs_rsd.Rsd.Set.is_empty acc.Summary.writes) ->
              Hashtbl.replace tbl key.Summary.var
                (1 lsl pid
                 lor Option.value (Hashtbl.find_opt tbl key.Summary.var)
                       ~default:0)
            | _ -> ()
          done)
        keys;
      let shared = Hashtbl.create 16 in
      Hashtbl.iter
        (fun var mask -> if mask land (mask - 1) <> 0 then Hashtbl.replace shared var ())
        tbl;
      shared)

let cross_check prog ~nprocs epochs =
  let nc = Nonconcurrency.analyze prog in
  let static_phases = Nonconcurrency.phase_count nc in
  let mapping =
    if
      List.for_all (fun d -> d = 0) (Nonconcurrency.barrier_depths nc)
      && List.length epochs = static_phases
    then Exact
    else Folded
  in
  let summary = Summary.analyze prog ~nprocs in
  let predicted = predicted_write_shared summary in
  let locks = lock_vars prog in
  let allowed epoch_index var =
    List.mem var locks
    (* scheduler globals only exist at run time: the static analyses
       never see the deque traffic, so like lock words their
       write-sharing is expected, not a violation *)
    || Fs_sched.Sched.is_sched_var var
    ||
    match mapping with
    | Exact -> Hashtbl.mem predicted.(epoch_index) var
    | Folded -> Array.exists (fun tbl -> Hashtbl.mem tbl var) predicted
  in
  let violations =
    List.concat_map
      (fun e ->
        List.filter_map
          (fun (var, writers) ->
            if allowed e.index var then None
            else Some { vepoch = e.index; vvar = var; vwriters = writers })
          e.write_shared)
      epochs
  in
  (static_phases, mapping, violations)

(* ------------------------------------------------------------------ *)

let analyze ?(cache_bytes = 32 * 1024) ?(assoc = 4) ?sched ?recorded prog plan
    ~nprocs ~block =
  let recorded =
    match recorded with Some r -> r | None -> Sim.record ?sched prog ~nprocs
  in
  let layout = Layout.realize prog plan ~block in
  let cache =
    Mpcache.create ~max_addr:(Layout.size layout)
      { Mpcache.nprocs; block; cache_bytes; assoc }
  in
  let trace = recorded.Sim.trace in
  let vars = Cell_trace.vars trace in
  let o = Fs_replay.Replay.oracle layout ~vars in
  let translated =
    Fs_replay.Replay.translating o (Listener.of_sink (Mpcache.sink cache))
  in
  let seg = seg_create cache in
  (* per-variable writer bitmask, reset at each epoch boundary *)
  let writer_masks = Array.make (Array.length vars) 0 in
  let write_shared_now () =
    let acc = ref [] in
    Array.iteri
      (fun v mask ->
        if mask land (mask - 1) <> 0 then acc := (vars.(v), mask) :: !acc)
      writer_masks;
    List.sort compare !acc
  in
  let tap =
    { Cell_listener.null with
      access =
        (fun ~proc ~write ~var ~cell:_ ->
          if write then
            writer_masks.(var) <- writer_masks.(var) lor (1 lsl proc));
      barrier_release =
        (fun () ->
          seg_close seg ~write_shared:(write_shared_now ());
          Array.fill writer_masks 0 (Array.length writer_masks) 0);
    }
  in
  Cell_trace.deliver trace (Cell_listener.combine translated tap);
  let epochs = seg_finish seg ~write_shared:(write_shared_now ()) in
  let aggregate = Mpcache.copy_counts (Mpcache.counts cache) in
  let static_phases, mapping, violations = cross_check prog ~nprocs epochs in
  { nprocs; block; epochs; aggregate; static_phases; mapping; violations }

let fs_matrix t =
  let nepochs = List.length t.epochs in
  let m = Array.make_matrix t.nprocs nepochs 0.0 in
  List.iter
    (fun e ->
      Array.iteri
        (fun p (c : Mpcache.counts) ->
          m.(p).(e.index) <- float_of_int c.Mpcache.false_sh)
        e.per_proc)
    t.epochs;
  m

(* ------------------------------------------------------------------ *)

let procs_to_string mask =
  String.concat ","
    (List.map (Printf.sprintf "P%d") (proc_mask_list mask))

let render t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "phase-resolved sharing (%d processors, %dB blocks): %d epochs over \
        %d static phases (%s mapping)\n\n"
       t.nprocs t.block (List.length t.epochs) t.static_phases
       (match t.mapping with Exact -> "exact" | Folded -> "folded"));
  let header =
    [ "epoch"; "accesses"; "misses"; "cold"; "repl"; "true sh."; "false sh.";
      "inval"; "write-shared" ]
  in
  let body =
    List.map
      (fun e ->
        let c = epoch_total e in
        let shared =
          match e.write_shared with
          | [] -> "-"
          | vars -> String.concat " " (List.map fst vars)
        in
        [ string_of_int e.index;
          string_of_int (Mpcache.accesses c);
          string_of_int (Mpcache.misses c);
          string_of_int c.Mpcache.cold;
          string_of_int c.repl;
          string_of_int c.true_sh;
          string_of_int c.false_sh;
          string_of_int c.invalidations;
          shared ])
      t.epochs
  in
  Buffer.add_string buf (Table.render ~header body);
  Buffer.add_string buf "\nfalse-sharing misses, processor x epoch:\n";
  Buffer.add_string buf (Fs_obs.Heatmap.render (fs_matrix t));
  (match t.violations with
   | [] ->
     Buffer.add_string buf
       "\nstatic cross-check: ok — every epoch's write-sharing was \
        predicted concurrent\n"
   | vs ->
     Buffer.add_string buf
       (Printf.sprintf "\nstatic cross-check: %d VIOLATION(S)\n"
          (List.length vs));
     List.iter
       (fun v ->
         Buffer.add_string buf
           (Printf.sprintf
              "  epoch %d: %s written by %s but not predicted \
               concurrently write-shared\n"
              v.vepoch v.vvar (procs_to_string v.vwriters)))
       vs);
  Buffer.contents buf
