(** The false-sharing blame matrix.

    {!Attribution} answers {e which} data structure misses; this module
    answers {e who does it to whom}: for every shared variable, a
    processor-pair matrix of the invalidations its blocks suffered —
    writer (src) × loser (victim) — split between upgrade writes and
    write misses, plus the top-K hottest blocks with their owning
    variable and cell ranges.

    Per-variable totals agree with {!Attribution.attribute}: both fold
    the same per-block counters through the same dominant-owner map. *)

type pair = { src : int; victim : int; upgrades : int; write_misses : int }

type var_row = {
  var : string;
  invalidations : int;  (** total copies of this variable's blocks destroyed *)
  by_upgrade : int;
  by_write_miss : int;
  matrix : int array array;  (** [src][victim] -> invalidations *)
  pairs : pair list;         (** the nonzero flows, heaviest first *)
}

type hot_block = {
  block : int;
  var : string;
  cell_lo : int;  (** lowest cell id of [var] in the block, or -1 *)
  cell_hi : int;
  counts : Fs_cache.Mpcache.counts;
}

type t = {
  nprocs : int;
  block : int;
  rows : var_row list;      (** variables with invalidations, heaviest first *)
  hot : hot_block list;     (** top-K blocks by invalidations *)
}

val analyze :
  ?cache_bytes:int ->
  ?assoc:int ->
  ?top:int ->
  ?sched:Fs_sched.Sched.config ->
  ?recorded:Sim.recorded ->
  Fs_ir.Ast.program ->
  Fs_layout.Plan.t ->
  nprocs:int ->
  block:int ->
  t
(** Replays a recorded execution (fresh if [recorded] is omitted) through
    the cache simulation with pair tracking.  [top] bounds the hot-block
    list (default 10). *)

val render : t -> string
