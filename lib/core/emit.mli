(** JSON emitters for every experiment record.

    One function per record type of {!Experiments}, {!Sim},
    {!Attribution}, and {!Blame}, plus the workload catalog and the
    compiler report — the machine-readable counterparts of the [render_*]
    text tables, used by the CLI's [--json] mode and the benchmark
    harness.  Schemas are flat and self-describing; the test suite
    round-trips each one through {!Fs_obs.Json.of_string}. *)

module Json = Fs_obs.Json

val counts : Fs_cache.Mpcache.counts -> Json.t

val fig3 : Experiments.fig3_row list -> Json.t
val table2 : Experiments.table2_row list -> Json.t
val series : Experiments.series list -> Json.t
val table3 : Experiments.table3_row list -> Json.t
val stats : Experiments.stats -> Json.t
val exec : Experiments.exec_row list -> Json.t

val sim :
  workload:string ->
  nprocs:int ->
  block:int ->
  (string * Sim.cache_run) list ->
  Json.t
(** One entry per simulated version (name, run). *)

val attribution : Attribution.row list -> Json.t
val blame : Blame.t -> Json.t

val phases : Phases.t -> Json.t
(** Per-epoch totals and per-processor counters, the write-sharing
    observed in each epoch, and any static cross-check violations. *)

val hotlines : Hotlines.t -> Json.t
(** Ranked hot lines with their lifetime stats, verdicts, and fixes. *)

val workloads : Fs_workloads.Workload.t list -> Json.t

val transform_report : Fs_transform.Transform.report -> Json.t
(** Entries with their decisions and reasons, plus the plan actions
    (pretty-printed). *)

val machine : Fs_machine.Ksr.result -> Json.t
