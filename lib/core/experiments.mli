(** Reproduction drivers for every table and figure in the paper's
    evaluation (Section 5), plus the headline statistics quoted in the
    text.  Each driver returns structured data and has a renderer that
    prints rows shaped like the paper's. *)

type version = Fs_workloads.Workload.version

val plan_for :
  Fs_workloads.Workload.t ->
  version ->
  Fs_ir.Ast.program ->
  nprocs:int ->
  scale:int ->
  Fs_layout.Plan.t
(** The layout plan of a benchmark version: empty for N (and for a single
    process, where sharing cannot occur), the compiler's plan for C, the
    hand-written plan for P.  Plans are memoized per
    (workload, version, nprocs, scale); [prog] must be the workload's
    build at that configuration. *)

val recorded_of : Trace_memo.entry -> Sim.recorded
(** View a memoized trace as a replayable execution — the glue every
    driver (and the feedback layer above this library) uses between
    {!Trace_memo.get_all} and {!Sim.cache_sim}. *)

(** {1 Figure 3} — total miss rates split into false sharing and other
    misses, unoptimized vs compiler-transformed, per block size. *)

type fig3_cell = {
  accesses : int;
  misses : int;
  false_sharing : int;
}

type fig3_row = {
  name : string;
  procs : int;
  block : int;
  unopt : fig3_cell;
  compiler : fig3_cell;
}

val figure3 :
  ?blocks:int list -> ?scale_override:int -> ?jobs:int -> unit -> fig3_row list
(** Defaults: the six simulated benchmarks at their Figure 3 processor
    counts (12; Topopt 9), block sizes 16 and 128.  Each workload is
    interpreted once (via {!Trace_memo}) and the per-block cache runs
    replay that trace, fanned out over [jobs] domains. *)

val render_figure3 : fig3_row list -> string

(** {1 Table 2} — false-sharing reduction, total and attributed to each
    transformation, averaged over block sizes. *)

type table2_row = {
  name : string;
  total_reduction : float;   (** fraction of false-sharing misses removed *)
  group_transpose : float;   (** fraction of the original false sharing
                                 removed by group & transpose (incl.
                                 regrouping) *)
  indirection : float;
  pad_align : float;
  locks : float;
}

val table2 : ?blocks:int list -> ?jobs:int -> unit -> table2_row list
(** Default blocks: 8–256 bytes, as in the paper.  Attribution applies the
    plan's transformation families cumulatively (group & transpose, then
    indirection, then pad & align, then lock padding) and charges each
    family its marginal reduction. *)

val render_table2 : table2_row list -> string

(** {1 Figure 4 / Table 3} — scalability on the KSR2 model. *)

type series = {
  workload : string;
  version : version;
  points : (int * float) list;  (** processor count, speedup *)
}

val speedups :
  ?procs:int list -> ?names:string list -> ?jobs:int -> unit -> series list
(** Speedups relative to the single-processor run of the unoptimized
    version, as in Figure 4.  Default processor counts:
    1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56. *)

val figure4 : ?procs:int list -> ?jobs:int -> unit -> series list
(** The paper's three representative programs: Raytrace, Fmm, Pverify. *)

val render_series : series list -> string

type table3_row = {
  name : string;
  results : (version * float * int) list;
      (** per available version: maximum speedup and the processor count
          where it occurs *)
}

val table3 :
  ?procs:int list -> ?series:series list -> ?jobs:int -> unit -> table3_row list
(** Computed from {!speedups} over all ten benchmarks (pass [series] to
    reuse already-computed curves). *)

val render_table3 : table3_row list -> string

(** {1 Headline statistics} quoted in the abstract and Section 1:
    the fraction of misses that are false sharing at 128-byte blocks, the
    fraction of false-sharing misses the transformations remove, the
    increase in other misses, and the total-miss reduction at 64-byte
    blocks. *)

type stats = {
  fs_share_of_misses_128 : float;
  fs_removed_128 : float;
  other_miss_increase_128 : float;
  total_miss_reduction_64 : float;
}

val text_stats : ?jobs:int -> unit -> stats
val render_stats : stats -> string

(** {1 Execution-time improvements} (Section 5): the largest reduction in
    execution time of the compiler version over the unoptimized version,
    within the processor range where the unoptimized version still
    scales. *)

type exec_row = {
  name : string;
  improvement : float;  (** fraction of unoptimized time saved *)
  at_procs : int;
}

val exec_time_improvements : ?procs:int list -> ?jobs:int -> unit -> exec_row list
val render_exec : exec_row list -> string
