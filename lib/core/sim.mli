(** One-call simulation drivers tying the pipeline together:
    program -> plan -> layout -> interpreter -> cache / timing model.

    Since the interpreter's schedule is layout-free, interpretation and
    simulation are decoupled: {!record} interprets once, and both
    {!cache_sim} and {!machine_sim} accept the [?recorded] execution to
    replay under their layout instead of re-interpreting.  Without
    [?recorded] each call records a fresh (identical) execution. *)

type recorded = {
  trace : Fs_trace.Cell_trace.t;
  interp : Fs_interp.Interp.result;
}

val record :
  ?quantum:int ->
  ?max_steps:int ->
  ?sched:Fs_sched.Sched.config ->
  Fs_ir.Ast.program ->
  nprocs:int ->
  recorded
(** Interpret once, layout-free.  [sched] seeds the work-stealing
    runtime and is required for programs that use [spawn]/[sync]. *)

type cache_run = {
  counts : Fs_cache.Mpcache.counts;
  per_block : (int * Fs_cache.Mpcache.counts) list;
      (** populated when [track_blocks] *)
  layout_bytes : int;
  interp : Fs_interp.Interp.result;
}

val cache_sim :
  ?cache_bytes:int ->
  ?assoc:int ->
  ?track_blocks:bool ->
  ?flight:Fs_replay.Flight.t ->
  ?shards:int ->
  ?pool:Fs_util.Par.Pool.t ->
  ?sched:Fs_sched.Sched.config ->
  ?recorded:recorded ->
  Fs_ir.Ast.program ->
  Fs_layout.Plan.t ->
  nprocs:int ->
  block:int ->
  cache_run
(** Trace-driven simulation of the paper's Section 4 architecture
    (32 KB 4-way L1 per processor unless overridden, infinite L2).
    [recorded] must come from the same program at the same [nprocs].
    [flight] attaches a {!Fs_replay.Flight} recorder to the fused replay
    loop (untracked runs only — the tracked listener path ignores it).
    [shards > 1] routes an untracked, unrecorded run through
    {!Fs_replay.Replay.simulate_sharded} — counts are bit-identical to
    the single-core run; [pool] optionally supplies the persistent
    domain pool to run the shards on. *)

type timed_run = {
  machine : Fs_machine.Ksr.result;
  work : int array;
}

val machine_sim :
  ?config:Fs_machine.Ksr.config ->
  ?sched:Fs_sched.Sched.config ->
  ?recorded:recorded ->
  Fs_ir.Ast.program ->
  Fs_layout.Plan.t ->
  nprocs:int ->
  timed_run
(** Execution-time run on the KSR2 model (128-byte blocks). *)

val compiler_plan :
  ?options:Fs_transform.Transform.options ->
  Fs_ir.Ast.program ->
  nprocs:int ->
  Fs_layout.Plan.t
(** The compiler path: analyze and choose transformations. *)
