(** Per-data-structure miss attribution.

    The paper's central validation is that the static analysis identifies
    the data structures responsible for most false-sharing misses.  This
    module closes that loop from the dynamic side: it runs the cache
    simulation with per-block tracking and folds the per-block counters
    back onto the shared globals through the layout's address map, so the
    simulator's verdict can be compared with the compiler's report
    structure by structure. *)

val pointer_owner : string
(** The pseudo-variable owning injected indirection-pointer cells. *)

val unmapped_owner : string
(** The pseudo-variable owning blocks no global maps to. *)

val block_owner :
  Fs_ir.Ast.program -> Fs_layout.Layout.t -> block:int -> int -> string
(** [block_owner prog layout ~block] maps a block number to the variable
    owning the most cells in it — the attribution rule shared with
    {!Blame}. *)

val cell_range :
  Fs_ir.Ast.program ->
  Fs_layout.Layout.t ->
  block:int ->
  string ->
  int ->
  int * int
(** [cell_range prog layout ~block var blk] is the lowest and highest cell
    index of [var] mapped into block [blk], or [(-1, -1)] when [var] is a
    pseudo-variable or owns no cell there. *)

type row = {
  var : string;
      (** a shared global, or ["(indirection pointers)"] for the pointer
          cells a transformation injected *)
  counts : Fs_cache.Mpcache.counts;
  blocks : int;  (** distinct cache blocks the variable's cells occupy *)
}

val attribute :
  ?cache_bytes:int ->
  ?assoc:int ->
  ?sched:Fs_sched.Sched.config ->
  Fs_ir.Ast.program ->
  Fs_layout.Plan.t ->
  nprocs:int ->
  block:int ->
  row list
(** Rows sorted by false-sharing misses, heaviest first.  A block shared
    by several variables (the packed default layout) is attributed to the
    variable owning the most cells in it. *)

val render : row list -> string
