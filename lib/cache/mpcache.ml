module Align = Fs_util.Align

let word_size = 4

type config = { nprocs : int; block : int; cache_bytes : int; assoc : int }

let default_config ~nprocs ~block =
  { nprocs; block; cache_bytes = 32 * 1024; assoc = 4 }

type kind = Cold | Replacement | True_sharing | False_sharing

let kind_to_string = function
  | Cold -> "cold"
  | Replacement -> "replacement"
  | True_sharing -> "true sharing"
  | False_sharing -> "false sharing"

type counts = {
  mutable reads : int;
  mutable writes : int;
  mutable cold : int;
  mutable repl : int;
  mutable true_sh : int;
  mutable false_sh : int;
  mutable invalidations : int;
  mutable upgrades : int;
}

let zero_counts () =
  { reads = 0; writes = 0; cold = 0; repl = 0; true_sh = 0; false_sh = 0;
    invalidations = 0; upgrades = 0 }

let accesses c = c.reads + c.writes
let misses c = c.cold + c.repl + c.true_sh + c.false_sh

let miss_rate c =
  let a = accesses c in
  if a = 0 then 0.0 else float_of_int (misses c) /. float_of_int a

let false_sharing_rate c =
  let a = accesses c in
  if a = 0 then 0.0 else float_of_int c.false_sh /. float_of_int a

let copy_counts c =
  { reads = c.reads; writes = c.writes; cold = c.cold; repl = c.repl;
    true_sh = c.true_sh; false_sh = c.false_sh;
    invalidations = c.invalidations; upgrades = c.upgrades }

let add_into dst src =
  dst.reads <- dst.reads + src.reads;
  dst.writes <- dst.writes + src.writes;
  dst.cold <- dst.cold + src.cold;
  dst.repl <- dst.repl + src.repl;
  dst.true_sh <- dst.true_sh + src.true_sh;
  dst.false_sh <- dst.false_sh + src.false_sh;
  dst.invalidations <- dst.invalidations + src.invalidations;
  dst.upgrades <- dst.upgrades + src.upgrades

let sub_counts a b =
  { reads = a.reads - b.reads; writes = a.writes - b.writes;
    cold = a.cold - b.cold; repl = a.repl - b.repl;
    true_sh = a.true_sh - b.true_sh; false_sh = a.false_sh - b.false_sh;
    invalidations = a.invalidations - b.invalidations;
    upgrades = a.upgrades - b.upgrades }

type miss_info = { kind : kind; provider : int }

type outcome =
  | Hit
  | Upgrade of { invalidated : int }
  | Miss of { info : miss_info; invalidated : int }

(* Why a processor's copy of a block went away. *)
type lost = Never | Evicted | Invalidated of int

(* Per-processor, per-block bookkeeping; survives loss of the copy. *)
type entry = {
  mutable state : int;  (* 0 = I, 1 = S, 2 = M *)
  mutable lost : lost;
  mutable last_use : int;
}

(* Global, per-block bookkeeping. *)
type binfo = {
  mutable mask : int;        (* bit p: processor p holds a valid copy *)
  mutable owner : int;       (* processor with the M copy, or -1 *)
  mutable last_writer : int; (* most recent writer ever, or -1 *)
  wproc : int array;         (* per word: last writing processor, or -1 *)
  wtime : int array;         (* per word: time of that write *)
}

type pcache = {
  entries : (int, entry) Hashtbl.t;  (* block -> entry *)
  sets : int list array;             (* set index -> resident blocks *)
}

(* One invalidation flow: writes by [src] that destroyed [victim]'s copy
   of a block, split by whether the write hit a Shared copy (upgrade) or
   missed outright. *)
type flow = { mutable by_upgrade : int; mutable by_miss : int }

type pair = {
  block : int;
  src : int;
  victim : int;
  upgrades : int;
  write_misses : int;
}

(* Mutable lifetime accumulator for one line; [linfo] is the working
   state, [line] below the exported snapshot. *)
type linfo = {
  mutable lreads : int;
  mutable lwrites : int;
  mutable reader_mask : int;
  mutable writer_mask : int;
  mutable last_w : int;        (* most recent writer, or -1 *)
  mutable prev_w : int;        (* the writer before that, or -1 *)
  mutable lmigrations : int;
  mutable lpingpong : int;
  mutable run : int;           (* current alternating-writer run, in writes *)
  mutable lmax_run : int;
  mutable ichain : int;        (* current invalidating-write streak *)
  mutable lmax_ichain : int;
  lword_writers : int array;
}

type line = {
  line_block : int;
  line_reads : int;
  line_writes : int;
  writers : int;
  readers : int;
  migrations : int;
  pingpong : int;
  max_run : int;
  max_inval_chain : int;
  written_words : int;
  shared_words : int;
  word_writers : int array;
}

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let pingpong_score l =
  if l.line_writes = 0 then 0.0
  else float_of_int l.migrations /. float_of_int l.line_writes

type t = {
  cfg : config;
  nsets : int;
  procs : pcache array;
  blocks : (int, binfo) Hashtbl.t;
  totals : counts;
  per_proc : counts array;
  per_block_tbl : (int, counts) Hashtbl.t option;
  pair_tbl : (int * int * int, flow) Hashtbl.t option;  (* block, src, victim *)
  line_tbl : (int, linfo) Hashtbl.t option;
  mutable time : int;
}

let create ?(track_blocks = false) ?(track_pairs = false)
    ?(track_lines = false) (cfg : config) =
  if not (Align.is_power_of_two cfg.block) || cfg.block < word_size then
    invalid_arg "Mpcache.create: block must be a power of two >= 4";
  if cfg.assoc <= 0 || cfg.cache_bytes < cfg.block * cfg.assoc then
    invalid_arg "Mpcache.create: cache too small for one set";
  let nsets = cfg.cache_bytes / (cfg.block * cfg.assoc) in
  {
    cfg;
    nsets;
    procs =
      Array.init cfg.nprocs (fun _ ->
          { entries = Hashtbl.create 512; sets = Array.make nsets [] });
    blocks = Hashtbl.create 1024;
    totals = zero_counts ();
    per_proc = Array.init cfg.nprocs (fun _ -> zero_counts ());
    per_block_tbl = (if track_blocks then Some (Hashtbl.create 256) else None);
    pair_tbl = (if track_pairs then Some (Hashtbl.create 256) else None);
    line_tbl = (if track_lines then Some (Hashtbl.create 256) else None);
    time = 0;
  }

let config t = t.cfg

let entry_of pc b =
  match Hashtbl.find_opt pc.entries b with
  | Some e -> e
  | None ->
    let e = { state = 0; lost = Never; last_use = 0 } in
    Hashtbl.add pc.entries b e;
    e

let binfo_of t b =
  match Hashtbl.find_opt t.blocks b with
  | Some bi -> bi
  | None ->
    let words = t.cfg.block / word_size in
    let bi =
      { mask = 0; owner = -1; last_writer = -1;
        wproc = Array.make words (-1); wtime = Array.make words 0 }
    in
    Hashtbl.add t.blocks b bi;
    bi

let block_counts t b =
  match t.per_block_tbl with
  | None -> None
  | Some tbl -> (
    match Hashtbl.find_opt tbl b with
    | Some c -> Some c
    | None ->
      let c = zero_counts () in
      Hashtbl.add tbl b c;
      Some c)

let linfo_of tbl b words =
  match Hashtbl.find_opt tbl b with
  | Some l -> l
  | None ->
    let l =
      { lreads = 0; lwrites = 0; reader_mask = 0; writer_mask = 0;
        last_w = -1; prev_w = -1; lmigrations = 0; lpingpong = 0;
        run = 0; lmax_run = 0; ichain = 0; lmax_ichain = 0;
        lword_writers = Array.make words 0 }
    in
    Hashtbl.add tbl b l;
    l

(* Lifetime bookkeeping for one reference, after the protocol has acted
   on it ([invalidated] remote copies were destroyed by this write). *)
let note_line t ~proc ~write ~word ~invalidated b =
  match t.line_tbl with
  | None -> ()
  | Some tbl ->
    let l = linfo_of tbl b (t.cfg.block / word_size) in
    if write then begin
      l.lwrites <- l.lwrites + 1;
      l.writer_mask <- l.writer_mask lor (1 lsl proc);
      l.lword_writers.(word) <- l.lword_writers.(word) lor (1 lsl proc);
      if l.last_w >= 0 && l.last_w <> proc then begin
        l.lmigrations <- l.lmigrations + 1;
        if l.prev_w = proc then l.lpingpong <- l.lpingpong + 1;
        (* a run starts at 2 writes: the previous one and this one *)
        l.run <- (if l.run = 0 then 2 else l.run + 1);
        if l.run > l.lmax_run then l.lmax_run <- l.run
      end
      else l.run <- 0;
      l.prev_w <- l.last_w;
      l.last_w <- proc;
      if invalidated > 0 then begin
        l.ichain <- l.ichain + 1;
        if l.ichain > l.lmax_ichain then l.lmax_ichain <- l.ichain
      end
      else l.ichain <- 0
    end
    else begin
      l.lreads <- l.lreads + 1;
      l.reader_mask <- l.reader_mask lor (1 lsl proc)
    end

(* Remove [victim]'s copy because a write by [src] invalidated it.
   [cause] distinguishes upgrades (write hits on a Shared copy) from
   outright write misses, for the blame matrix. *)
let invalidate t bi b ~src ~victim ~cause =
  let pc = t.procs.(victim) in
  let e = entry_of pc b in
  e.state <- 0;
  e.lost <- Invalidated t.time;
  bi.mask <- bi.mask land lnot (1 lsl victim);
  if bi.owner = victim then bi.owner <- -1;
  let set = b mod t.nsets in
  pc.sets.(set) <- List.filter (fun b' -> b' <> b) pc.sets.(set);
  t.totals.invalidations <- t.totals.invalidations + 1;
  let c = t.per_proc.(victim) in
  c.invalidations <- c.invalidations + 1;
  (match t.per_block_tbl with
   | None -> ()
   | Some tbl -> (
     match Hashtbl.find_opt tbl b with
     | Some c -> c.invalidations <- c.invalidations + 1
     | None ->
       let c = zero_counts () in
       c.invalidations <- 1;
       Hashtbl.add tbl b c));
  match t.pair_tbl with
  | None -> ()
  | Some tbl ->
    let key = (b, src, victim) in
    let f =
      match Hashtbl.find_opt tbl key with
      | Some f -> f
      | None ->
        let f = { by_upgrade = 0; by_miss = 0 } in
        Hashtbl.add tbl key f;
        f
    in
    (match cause with
     | `Upgrade -> f.by_upgrade <- f.by_upgrade + 1
     | `Wmiss -> f.by_miss <- f.by_miss + 1)

let invalidate_others t bi b ~keep ~cause =
  let mask = bi.mask land lnot (1 lsl keep) in
  let n = ref 0 in
  if mask <> 0 then
    for q = 0 to t.cfg.nprocs - 1 do
      if mask land (1 lsl q) <> 0 then begin
        invalidate t bi b ~src:keep ~victim:q ~cause;
        incr n
      end
    done;
  !n

(* Make room in [proc]'s set for block [b] and insert it. *)
let install t ~proc b =
  let pc = t.procs.(proc) in
  let set = b mod t.nsets in
  let resident = pc.sets.(set) in
  if List.length resident >= t.cfg.assoc then begin
    let victim =
      List.fold_left
        (fun best b' ->
          let e' = Hashtbl.find pc.entries b' in
          match best with
          | None -> Some (b', e'.last_use)
          | Some (_, lu) when e'.last_use < lu -> Some (b', e'.last_use)
          | some -> some)
        None resident
    in
    match victim with
    | None -> ()
    | Some (vb, _) ->
      let ve = Hashtbl.find pc.entries vb in
      ve.state <- 0;
      ve.lost <- Evicted;
      let vbi = binfo_of t vb in
      vbi.mask <- vbi.mask land lnot (1 lsl proc);
      if vbi.owner = proc then vbi.owner <- -1;
      pc.sets.(set) <- List.filter (fun b' -> b' <> vb) pc.sets.(set)
  end;
  pc.sets.(set) <- b :: pc.sets.(set)

let classify_miss bi ~proc ~word e =
  match e.lost with
  | Never -> Cold
  | Evicted -> Replacement
  | Invalidated t_inv ->
    if bi.wproc.(word) >= 0 && bi.wproc.(word) <> proc && bi.wtime.(word) >= t_inv
    then True_sharing
    else False_sharing

let provider_of bi =
  if bi.owner >= 0 then bi.owner
  else if bi.last_writer >= 0 && bi.mask land (1 lsl bi.last_writer) <> 0 then
    bi.last_writer
  else -1

let bump_kind c = function
  | Cold -> c.cold <- c.cold + 1
  | Replacement -> c.repl <- c.repl + 1
  | True_sharing -> c.true_sh <- c.true_sh + 1
  | False_sharing -> c.false_sh <- c.false_sh + 1

let access t ~proc ~write ~addr =
  t.time <- t.time + 1;
  let b = addr / t.cfg.block in
  let word = addr mod t.cfg.block / word_size in
  let pc = t.procs.(proc) in
  let e = entry_of pc b in
  let bi = binfo_of t b in
  let bc = block_counts t b in
  let count f =
    f t.totals;
    f t.per_proc.(proc);
    Option.iter f bc
  in
  if write then count (fun c -> c.writes <- c.writes + 1)
  else count (fun c -> c.reads <- c.reads + 1);
  let note_write () =
    bi.wproc.(word) <- proc;
    bi.wtime.(word) <- t.time;
    bi.last_writer <- proc
  in
  let outcome =
    if write then begin
      match e.state with
      | 2 ->
        e.last_use <- t.time;
        note_write ();
        Hit
      | 1 ->
        (* write hit on a shared copy: upgrade, invalidating other sharers *)
        let invalidated = invalidate_others t bi b ~keep:proc ~cause:`Upgrade in
        e.state <- 2;
        e.last_use <- t.time;
        bi.owner <- proc;
        note_write ();
        count (fun c -> c.upgrades <- c.upgrades + 1);
        Upgrade { invalidated }
      | _ ->
        let kind = classify_miss bi ~proc ~word e in
        let provider = provider_of bi in
        let invalidated = invalidate_others t bi b ~keep:proc ~cause:`Wmiss in
        install t ~proc b;
        e.state <- 2;
        e.lost <- Never;
        e.last_use <- t.time;
        bi.mask <- bi.mask lor (1 lsl proc);
        bi.owner <- proc;
        note_write ();
        count (fun c -> bump_kind c kind);
        Miss { info = { kind; provider }; invalidated }
    end
    else begin
      match e.state with
      | 1 | 2 ->
        e.last_use <- t.time;
        Hit
      | _ ->
        let kind = classify_miss bi ~proc ~word e in
        let provider = provider_of bi in
        (* a modified copy elsewhere is downgraded to shared *)
        if bi.owner >= 0 then begin
          let oe = entry_of t.procs.(bi.owner) b in
          oe.state <- 1;
          bi.owner <- -1
        end;
        install t ~proc b;
        e.state <- 1;
        e.lost <- Never;
        e.last_use <- t.time;
        bi.mask <- bi.mask lor (1 lsl proc);
        count (fun c -> bump_kind c kind);
        Miss { info = { kind; provider }; invalidated = 0 }
    end
  in
  (if t.line_tbl <> None then
     let invalidated =
       match outcome with
       | Hit -> 0
       | Upgrade { invalidated } | Miss { invalidated; _ } -> invalidated
     in
     note_line t ~proc ~write ~word ~invalidated b);
  outcome

let sink t ~proc ~write ~addr = ignore (access t ~proc ~write ~addr)

let counts t = t.totals

let proc_counts t = t.per_proc

let tracking_off what flag =
  invalid_arg
    (Printf.sprintf
       "Mpcache.%s: cache was created without ~%s:true, nothing was recorded"
       what flag)

let invalidation_pairs t =
  match t.pair_tbl with
  | None -> tracking_off "invalidation_pairs" "track_pairs"
  | Some tbl ->
    Hashtbl.fold
      (fun (block, src, victim) f acc ->
        { block; src; victim; upgrades = f.by_upgrade; write_misses = f.by_miss }
        :: acc)
      tbl []
    |> List.sort (fun a b ->
           compare (a.block, a.src, a.victim) (b.block, b.src, b.victim))

let per_block t =
  match t.per_block_tbl with
  | None -> tracking_off "per_block" "track_blocks"
  | Some tbl ->
    Hashtbl.fold (fun b c acc -> (b, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

let lines t =
  match t.line_tbl with
  | None -> tracking_off "lines" "track_lines"
  | Some tbl ->
    Hashtbl.fold
      (fun b (l : linfo) acc ->
        let written = ref 0 and shared = ref 0 in
        Array.iter
          (fun m ->
            if m <> 0 then begin
              incr written;
              if m land (m - 1) <> 0 then incr shared
            end)
          l.lword_writers;
        { line_block = b;
          line_reads = l.lreads;
          line_writes = l.lwrites;
          writers = popcount l.writer_mask;
          readers = popcount l.reader_mask;
          migrations = l.lmigrations;
          pingpong = l.lpingpong;
          max_run = l.lmax_run;
          max_inval_chain = l.lmax_ichain;
          written_words = !written;
          shared_words = !shared;
          word_writers = Array.copy l.lword_writers }
        :: acc)
      tbl []
    |> List.sort (fun a b -> compare a.line_block b.line_block)

let state_of t ~proc ~addr =
  let b = addr / t.cfg.block in
  match Hashtbl.find_opt t.procs.(proc).entries b with
  | Some { state = 2; _ } -> `Modified
  | Some { state = 1; _ } -> `Shared
  | Some _ | None -> `Invalid
