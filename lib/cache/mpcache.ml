module Align = Fs_util.Align

let word_size = 4

type config = { nprocs : int; block : int; cache_bytes : int; assoc : int }

let default_config ~nprocs ~block =
  { nprocs; block; cache_bytes = 32 * 1024; assoc = 4 }

type kind = Cold | Replacement | True_sharing | False_sharing

let kind_to_string = function
  | Cold -> "cold"
  | Replacement -> "replacement"
  | True_sharing -> "true sharing"
  | False_sharing -> "false sharing"

type counts = {
  mutable reads : int;
  mutable writes : int;
  mutable cold : int;
  mutable repl : int;
  mutable true_sh : int;
  mutable false_sh : int;
  mutable invalidations : int;
  mutable upgrades : int;
}

let zero_counts () =
  { reads = 0; writes = 0; cold = 0; repl = 0; true_sh = 0; false_sh = 0;
    invalidations = 0; upgrades = 0 }

let accesses c = c.reads + c.writes
let misses c = c.cold + c.repl + c.true_sh + c.false_sh

let miss_rate c =
  let a = accesses c in
  if a = 0 then 0.0 else float_of_int (misses c) /. float_of_int a

let false_sharing_rate c =
  let a = accesses c in
  if a = 0 then 0.0 else float_of_int c.false_sh /. float_of_int a

let copy_counts c =
  { reads = c.reads; writes = c.writes; cold = c.cold; repl = c.repl;
    true_sh = c.true_sh; false_sh = c.false_sh;
    invalidations = c.invalidations; upgrades = c.upgrades }

let add_into dst src =
  dst.reads <- dst.reads + src.reads;
  dst.writes <- dst.writes + src.writes;
  dst.cold <- dst.cold + src.cold;
  dst.repl <- dst.repl + src.repl;
  dst.true_sh <- dst.true_sh + src.true_sh;
  dst.false_sh <- dst.false_sh + src.false_sh;
  dst.invalidations <- dst.invalidations + src.invalidations;
  dst.upgrades <- dst.upgrades + src.upgrades

let sub_counts a b =
  { reads = a.reads - b.reads; writes = a.writes - b.writes;
    cold = a.cold - b.cold; repl = a.repl - b.repl;
    true_sh = a.true_sh - b.true_sh; false_sh = a.false_sh - b.false_sh;
    invalidations = a.invalidations - b.invalidations;
    upgrades = a.upgrades - b.upgrades }

type miss_info = { kind : kind; provider : int }

type outcome =
  | Hit
  | Upgrade of { invalidated : int }
  | Miss of { info : miss_info; invalidated : int }

(* One invalidation flow: writes by [src] that destroyed [victim]'s copy
   of a block, split by whether the write hit a Shared copy (upgrade) or
   missed outright. *)
type flow = { mutable by_upgrade : int; mutable by_miss : int }

type pair = {
  block : int;
  src : int;
  victim : int;
  upgrades : int;
  write_misses : int;
}

(* Mutable lifetime accumulator for one line; [linfo] is the working
   state, [line] below the exported snapshot. *)
type linfo = {
  mutable lreads : int;
  mutable lwrites : int;
  mutable reader_mask : int;
  mutable writer_mask : int;
  mutable last_w : int;        (* most recent writer, or -1 *)
  mutable prev_w : int;        (* the writer before that, or -1 *)
  mutable lmigrations : int;
  mutable lpingpong : int;
  mutable run : int;           (* current alternating-writer run, in writes *)
  mutable lmax_run : int;
  mutable ichain : int;        (* current invalidating-write streak *)
  mutable lmax_ichain : int;
  lword_writers : int array;
}

type line = {
  line_block : int;
  line_reads : int;
  line_writes : int;
  writers : int;
  readers : int;
  migrations : int;
  pingpong : int;
  max_run : int;
  max_inval_chain : int;
  written_words : int;
  shared_words : int;
  word_writers : int array;
}

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let pingpong_score l =
  if l.line_writes = 0 then 0.0
  else float_of_int l.migrations /. float_of_int l.line_writes

(* Why a processor's copy of a block went away, packed into one int:
   [lost_never] before the block was ever held, [lost_evicted] after an
   LRU eviction, and the (positive) invalidation time after a remote
   write destroyed the copy.  Times start at 1, so they never collide
   with the two sentinels — and [lost_never] is 0 so freshly grown
   storage needs no re-fill. *)
let lost_never = 0
let lost_evicted = -1

(* The simulator state is array-dense, indexed by block id over the
   layout's contiguous arena.  Fields touched by the same protocol step
   are interleaved so one reference lands on one cache line, not three:

   - per (block, proc) entry state is a (state, lost, last_use, slot)
     quad at element index [4 * (b * nprocs + p)] — 32 bytes, so two
     entries per cache line;
   - per-block coherence state is a (sharer mask, owner, last_writer)
     triple at [3 * b], and the word-level write history a
     (writer, time) pair at [2 * (b * words_per_block + w)];
   - LRU sets are fixed [assoc]-wide slot arrays per (proc, set),
     updated in place (free slots hold -1); each resident entry's
     [slot] field caches its absolute index into [slots], making
     invalidation-time removal O(1).

   Owners and writers are stored as [proc + 1] with 0 meaning none, so
   every growable array zero-fills and growth is a single blit.
   Nothing on the access path allocates; the optional tracking tables
   (per-block counts, blame pairs, line lifetimes) stay hash-based,
   since they are opt-in and off the untracked hot path. *)
type t = {
  cfg : config;
  nsets : int;
  nprocs : int;             (* = cfg.nprocs, unboxed copy for the hot path *)
  assoc : int;              (* = cfg.assoc, likewise *)
  block_shift : int;        (* log2 block *)
  word_mask : int;          (* block - 1 *)
  set_mask : int;           (* nsets - 1 when nsets is a power of two, else 0 *)
  words : int;              (* words per block *)
  mutable cap : int;        (* block ids currently backed by the arrays *)
  (* per (block, proc): state (0 = I, 1 = S, 2 = M), lost, last_use,
     and the absolute [slots] index while resident *)
  mutable ent : int array;
  (* per block: sharer mask (bit p: p holds a valid copy), owner + 1,
     last_writer + 1 *)
  mutable blk : int array;
  (* per (block, word): last writing processor + 1, time of that write *)
  mutable wrd : int array;
  (* per (proc, set, way), stride nsets * assoc per proc *)
  slots : int array;          (* resident block id, or -1 *)
  totals : counts;
  per_proc : counts array;
  per_block_tbl : (int, counts) Hashtbl.t option;
  pair_tbl : (int * int * int, flow) Hashtbl.t option;  (* block, src, victim *)
  line_tbl : (int, linfo) Hashtbl.t option;
  mutable time : int;
}

let create ?(track_blocks = false) ?(track_pairs = false)
    ?(track_lines = false) ?max_addr (cfg : config) =
  if not (Align.is_power_of_two cfg.block) || cfg.block < word_size then
    invalid_arg "Mpcache.create: block must be a power of two >= 4";
  if cfg.assoc <= 0 || cfg.cache_bytes < cfg.block * cfg.assoc then
    invalid_arg "Mpcache.create: cache too small for one set";
  let nsets = cfg.cache_bytes / (cfg.block * cfg.assoc) in
  let log2 n =
    let rec go s n = if n <= 1 then s else go (s + 1) (n lsr 1) in
    go 0 n
  in
  let words = cfg.block / word_size in
  let cap =
    match max_addr with
    | Some a when a > 0 -> ((a - 1) / cfg.block) + 1
    | _ -> 1024
  in
  {
    cfg;
    nsets;
    nprocs = cfg.nprocs;
    assoc = cfg.assoc;
    block_shift = log2 cfg.block;
    word_mask = cfg.block - 1;
    set_mask = (if Align.is_power_of_two nsets then nsets - 1 else 0);
    words;
    cap;
    ent = Array.make (cap * cfg.nprocs * 4) 0;
    blk = Array.make (cap * 3) 0;
    wrd = Array.make (cap * words * 2) 0;
    slots = Array.make (cfg.nprocs * nsets * cfg.assoc) (-1);
    totals = zero_counts ();
    per_proc = Array.init cfg.nprocs (fun _ -> zero_counts ());
    per_block_tbl = (if track_blocks then Some (Hashtbl.create 256) else None);
    pair_tbl = (if track_pairs then Some (Hashtbl.create 256) else None);
    line_tbl = (if track_lines then Some (Hashtbl.create 256) else None);
    time = 0;
  }

let config t = t.cfg

(* Double the backing arrays until block id [b] fits; strides are fixed
   and zero means "empty" everywhere, so old contents move with a single
   blit per array. *)
let grow t b =
  let cap = ref t.cap in
  while b >= !cap do
    cap := !cap * 2
  done;
  let cap = !cap in
  let extend stride old =
    let bigger = Array.make (cap * stride) 0 in
    Array.blit old 0 bigger 0 (t.cap * stride);
    bigger
  in
  t.ent <- extend (t.nprocs * 4) t.ent;
  t.blk <- extend 3 t.blk;
  t.wrd <- extend (t.words * 2) t.wrd;
  t.cap <- cap

let set_index t b =
  if t.set_mask <> 0 then b land t.set_mask else b mod t.nsets

let block_counts t b =
  match t.per_block_tbl with
  | None -> None
  | Some tbl -> (
    match Hashtbl.find_opt tbl b with
    | Some c -> Some c
    | None ->
      let c = zero_counts () in
      Hashtbl.add tbl b c;
      Some c)

let linfo_of tbl b words =
  match Hashtbl.find_opt tbl b with
  | Some l -> l
  | None ->
    let l =
      { lreads = 0; lwrites = 0; reader_mask = 0; writer_mask = 0;
        last_w = -1; prev_w = -1; lmigrations = 0; lpingpong = 0;
        run = 0; lmax_run = 0; ichain = 0; lmax_ichain = 0;
        lword_writers = Array.make words 0 }
    in
    Hashtbl.add tbl b l;
    l

(* Lifetime bookkeeping for one reference, after the protocol has acted
   on it ([invalidated] remote copies were destroyed by this write). *)
let note_line t ~proc ~write ~word ~invalidated b =
  match t.line_tbl with
  | None -> ()
  | Some tbl ->
    let l = linfo_of tbl b t.words in
    if write then begin
      l.lwrites <- l.lwrites + 1;
      l.writer_mask <- l.writer_mask lor (1 lsl proc);
      l.lword_writers.(word) <- l.lword_writers.(word) lor (1 lsl proc);
      if l.last_w >= 0 && l.last_w <> proc then begin
        l.lmigrations <- l.lmigrations + 1;
        if l.prev_w = proc then l.lpingpong <- l.lpingpong + 1;
        (* a run starts at 2 writes: the previous one and this one *)
        l.run <- (if l.run = 0 then 2 else l.run + 1);
        if l.run > l.lmax_run then l.lmax_run <- l.run
      end
      else l.run <- 0;
      l.prev_w <- l.last_w;
      l.last_w <- proc;
      if invalidated > 0 then begin
        l.ichain <- l.ichain + 1;
        if l.ichain > l.lmax_ichain then l.lmax_ichain <- l.ichain
      end
      else l.ichain <- 0
    end
    else begin
      l.lreads <- l.lreads + 1;
      l.reader_mask <- l.reader_mask lor (1 lsl proc)
    end

(* Remove [victim]'s copy because a write by [src] invalidated it.
   [cause] distinguishes upgrades (write hits on a Shared copy) from
   outright write misses, for the blame matrix.  The victim holds a
   valid copy (it is in the sharer mask), so its cached slot index is
   current and the LRU removal is a single store. *)
let invalidate t b ~src ~victim ~cause =
  let e = ((b * t.nprocs) + victim) * 4 in
  Array.unsafe_set t.ent e 0;
  Array.unsafe_set t.ent (e + 1) t.time;
  let b3 = b * 3 in
  let m = Array.unsafe_get t.blk b3 in
  Array.unsafe_set t.blk b3 (m land lnot (1 lsl victim));
  if Array.unsafe_get t.blk (b3 + 1) = victim + 1 then
    Array.unsafe_set t.blk (b3 + 1) 0;
  Array.unsafe_set t.slots (Array.unsafe_get t.ent (e + 3)) (-1);
  (* the caller batches [totals.invalidations] over all victims *)
  let c = t.per_proc.(victim) in
  c.invalidations <- c.invalidations + 1;
  (match t.per_block_tbl with
   | None -> ()
   | Some tbl -> (
     match Hashtbl.find_opt tbl b with
     | Some c -> c.invalidations <- c.invalidations + 1
     | None ->
       let c = zero_counts () in
       c.invalidations <- 1;
       Hashtbl.add tbl b c));
  match t.pair_tbl with
  | None -> ()
  | Some tbl ->
    let key = (b, src, victim) in
    let f =
      match Hashtbl.find_opt tbl key with
      | Some f -> f
      | None ->
        let f = { by_upgrade = 0; by_miss = 0 } in
        Hashtbl.add tbl key f;
        f
    in
    (match cause with
     | `Upgrade -> f.by_upgrade <- f.by_upgrade + 1
     | `Wmiss -> f.by_miss <- f.by_miss + 1)

let invalidate_others t b ~keep ~cause =
  let mask = t.blk.(b * 3) land lnot (1 lsl keep) in
  (* walk the sharer mask, stopping after its highest set bit *)
  let n = ref 0 in
  let m = ref mask in
  let q = ref 0 in
  while !m <> 0 do
    if !m land 1 <> 0 then begin
      invalidate t b ~src:keep ~victim:!q ~cause;
      incr n
    end;
    m := !m lsr 1;
    incr q
  done;
  if !n > 0 then t.totals.invalidations <- t.totals.invalidations + !n;
  !n

(* Make room in [proc]'s set for block [b] and insert it.  The LRU victim
   is unique: [last_use] times are distinct access times, so the scan
   order cannot change which block is evicted. *)
let install t ~proc b =
  let base = ((proc * t.nsets) + set_index t b) * t.assoc in
  let free = ref (-1) in
  let victim_i = ref (-1) in
  let victim_lu = ref max_int in
  for i = 0 to t.assoc - 1 do
    let b' = Array.unsafe_get t.slots (base + i) in
    if b' < 0 then begin
      if !free < 0 then free := i
    end
    else begin
      let lu = Array.unsafe_get t.ent ((((b' * t.nprocs) + proc) * 4) + 2) in
      if lu < !victim_lu then begin
        victim_lu := lu;
        victim_i := i
      end
    end
  done;
  let si =
    if !free >= 0 then base + !free
    else begin
      let vb = Array.unsafe_get t.slots (base + !victim_i) in
      let ve = ((vb * t.nprocs) + proc) * 4 in
      Array.unsafe_set t.ent ve 0;
      Array.unsafe_set t.ent (ve + 1) lost_evicted;
      let vb3 = vb * 3 in
      t.blk.(vb3) <- t.blk.(vb3) land lnot (1 lsl proc);
      if t.blk.(vb3 + 1) = proc + 1 then t.blk.(vb3 + 1) <- 0;
      base + !victim_i
    end
  in
  Array.unsafe_set t.slots si b;
  Array.unsafe_set t.ent ((((b * t.nprocs) + proc) * 4) + 3) si

(* [e] is the entry triple's base index, [w2] the word pair's. *)
let classify_miss t ~proc ~w2 e =
  let lost = Array.unsafe_get t.ent (e + 1) in
  if lost = lost_never then Cold
  else if lost = lost_evicted then Replacement
  else
    (* invalidated at time [lost] *)
    let wp = Array.unsafe_get t.wrd w2 - 1 in
    if wp >= 0 && wp <> proc && Array.unsafe_get t.wrd (w2 + 1) >= lost then
      True_sharing
    else False_sharing

let provider_of t b3 =
  let o = Array.unsafe_get t.blk (b3 + 1) - 1 in
  if o >= 0 then o
  else
    let lw = Array.unsafe_get t.blk (b3 + 2) - 1 in
    if lw >= 0 && Array.unsafe_get t.blk b3 land (1 lsl lw) <> 0 then lw
    else -1

let bump_kind c = function
  | Cold -> c.cold <- c.cold + 1
  | Replacement -> c.repl <- c.repl + 1
  | True_sharing -> c.true_sh <- c.true_sh + 1
  | False_sharing -> c.false_sh <- c.false_sh + 1

(* The raw protocol step.  Returns the outcome packed into an int —
   bits 0-2 a code (0 hit, 1 upgrade, 2-5 a miss of that [kind]),
   bits 3-11 [provider + 1], bits 12+ the invalidation count — so the
   fused replay loop pays no allocation; {!access} below re-boxes it. *)
let kind_code = function
  | Cold -> 2
  | Replacement -> 3
  | True_sharing -> 4
  | False_sharing -> 5

let access_raw t ~proc ~write ~addr =
  (* one range check up front licenses the unsafe array accesses below:
     every index is then [b * stride + k] with [b < cap] (after [grow]),
     [proc < nprocs], [word < words] by construction *)
  if proc < 0 || proc >= t.nprocs || addr < 0 then
    invalid_arg "Mpcache.access: processor id or address out of range";
  t.time <- t.time + 1;
  let b = addr lsr t.block_shift in
  if b >= t.cap then grow t b;
  let e = ((b * t.nprocs) + proc) * 4 in
  (* short-circuit keeps the untracked hot path free of the call *)
  let bc =
    match t.per_block_tbl with None -> None | Some _ -> block_counts t b
  in
  let pp = Array.unsafe_get t.per_proc proc in
  (if write then begin
     t.totals.writes <- t.totals.writes + 1;
     pp.writes <- pp.writes + 1;
     match bc with Some c -> c.writes <- c.writes + 1 | None -> ()
   end
   else begin
     t.totals.reads <- t.totals.reads + 1;
     pp.reads <- pp.reads + 1;
     match bc with Some c -> c.reads <- c.reads + 1 | None -> ()
   end);
  let raw =
    if write then begin
      let w2 = ((b * t.words) + ((addr land t.word_mask) lsr 2)) * 2 in
      let b3 = b * 3 in
      let note_write () =
        Array.unsafe_set t.wrd w2 (proc + 1);
        Array.unsafe_set t.wrd (w2 + 1) t.time;
        Array.unsafe_set t.blk (b3 + 2) (proc + 1)
      in
      match Array.unsafe_get t.ent e with
      | 2 ->
        Array.unsafe_set t.ent (e + 2) t.time;
        note_write ();
        0
      | 1 ->
        (* write hit on a shared copy: upgrade, invalidating other sharers *)
        let invalidated = invalidate_others t b ~keep:proc ~cause:`Upgrade in
        Array.unsafe_set t.ent e 2;
        Array.unsafe_set t.ent (e + 2) t.time;
        Array.unsafe_set t.blk (b3 + 1) (proc + 1);
        note_write ();
        t.totals.upgrades <- t.totals.upgrades + 1;
        pp.upgrades <- pp.upgrades + 1;
        (match bc with Some c -> c.upgrades <- c.upgrades + 1 | None -> ());
        1 lor (invalidated lsl 12)
      | _ ->
        let kind = classify_miss t ~proc ~w2 e in
        let provider = provider_of t b3 in
        let invalidated = invalidate_others t b ~keep:proc ~cause:`Wmiss in
        install t ~proc b;
        Array.unsafe_set t.ent e 2;
        Array.unsafe_set t.ent (e + 1) lost_never;
        Array.unsafe_set t.ent (e + 2) t.time;
        Array.unsafe_set t.blk b3 (Array.unsafe_get t.blk b3 lor (1 lsl proc));
        Array.unsafe_set t.blk (b3 + 1) (proc + 1);
        note_write ();
        bump_kind t.totals kind;
        bump_kind pp kind;
        (match bc with Some c -> bump_kind c kind | None -> ());
        kind_code kind lor ((provider + 1) lsl 3) lor (invalidated lsl 12)
    end
    else begin
      match Array.unsafe_get t.ent e with
      | 1 | 2 ->
        Array.unsafe_set t.ent (e + 2) t.time;
        0
      | _ ->
        let w2 = ((b * t.words) + ((addr land t.word_mask) lsr 2)) * 2 in
        let b3 = b * 3 in
        let kind = classify_miss t ~proc ~w2 e in
        let provider = provider_of t b3 in
        (* a modified copy elsewhere is downgraded to shared *)
        let o = Array.unsafe_get t.blk (b3 + 1) - 1 in
        if o >= 0 then begin
          Array.unsafe_set t.ent (((b * t.nprocs) + o) * 4) 1;
          Array.unsafe_set t.blk (b3 + 1) 0
        end;
        install t ~proc b;
        Array.unsafe_set t.ent e 1;
        Array.unsafe_set t.ent (e + 1) lost_never;
        Array.unsafe_set t.ent (e + 2) t.time;
        Array.unsafe_set t.blk b3 (Array.unsafe_get t.blk b3 lor (1 lsl proc));
        bump_kind t.totals kind;
        bump_kind pp kind;
        (match bc with Some c -> bump_kind c kind | None -> ());
        kind_code kind lor ((provider + 1) lsl 3)
    end
  in
  (match t.line_tbl with
   | None -> ()
   | Some _ ->
     note_line t ~proc ~write
       ~word:((addr land t.word_mask) lsr 2)
       ~invalidated:(raw lsr 12) b);
  raw

let touch t ~proc ~write ~addr = ignore (access_raw t ~proc ~write ~addr : int)

let kind_of_code = function
  | 2 -> Cold
  | 3 -> Replacement
  | 4 -> True_sharing
  | _ -> False_sharing

let access t ~proc ~write ~addr =
  let raw = access_raw t ~proc ~write ~addr in
  match raw land 7 with
  | 0 -> Hit
  | 1 -> Upgrade { invalidated = raw lsr 12 }
  | code ->
    Miss
      { info = { kind = kind_of_code code; provider = ((raw lsr 3) land 0x1ff) - 1 };
        invalidated = raw lsr 12 }

let sink t ~proc ~write ~addr = touch t ~proc ~write ~addr

let counts t = t.totals

let proc_counts t = t.per_proc

let tracking_off what flag =
  invalid_arg
    (Printf.sprintf
       "Mpcache.%s: cache was created without ~%s:true, nothing was recorded"
       what flag)

let invalidation_pairs t =
  match t.pair_tbl with
  | None -> tracking_off "invalidation_pairs" "track_pairs"
  | Some tbl ->
    Hashtbl.fold
      (fun (block, src, victim) f acc ->
        { block; src; victim; upgrades = f.by_upgrade; write_misses = f.by_miss }
        :: acc)
      tbl []
    |> List.sort (fun a b ->
           compare (a.block, a.src, a.victim) (b.block, b.src, b.victim))

let per_block t =
  match t.per_block_tbl with
  | None -> tracking_off "per_block" "track_blocks"
  | Some tbl ->
    Hashtbl.fold (fun b c acc -> (b, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

let lines t =
  match t.line_tbl with
  | None -> tracking_off "lines" "track_lines"
  | Some tbl ->
    Hashtbl.fold
      (fun b (l : linfo) acc ->
        let written = ref 0 and shared = ref 0 in
        Array.iter
          (fun m ->
            if m <> 0 then begin
              incr written;
              if m land (m - 1) <> 0 then incr shared
            end)
          l.lword_writers;
        { line_block = b;
          line_reads = l.lreads;
          line_writes = l.lwrites;
          writers = popcount l.writer_mask;
          readers = popcount l.reader_mask;
          migrations = l.lmigrations;
          pingpong = l.lpingpong;
          max_run = l.lmax_run;
          max_inval_chain = l.lmax_ichain;
          written_words = !written;
          shared_words = !shared;
          word_writers = Array.copy l.lword_writers }
        :: acc)
      tbl []
    |> List.sort (fun a b -> compare a.line_block b.line_block)

let state_of t ~proc ~addr =
  let b = addr lsr t.block_shift in
  if b >= t.cap then `Invalid
  else
    match t.ent.(((b * t.nprocs) + proc) * 4) with
    | 2 -> `Modified
    | 1 -> `Shared
    | _ -> `Invalid

(* ------------------------------------------------------------------ *)
(* Sharding.  The MESI-style lifecycle of a block depends only on the
   access substream that touches that block, so the simulation splits
   across domains — but the LRU sets couple blocks: which block a miss
   evicts depends on the [last_use] interleaving of every resident block
   of the same (proc, set).  The shard key therefore hashes the {e set}
   index, not the raw block index: all blocks of one set land in one
   shard, every cross-block interaction (coherence: none; replacement:
   set-local) stays inside a shard, and a shard replaying its substream
   in trace order reproduces the unsharded run's decisions exactly.
   Shard-local [time] values differ from the global run's, but every
   comparison the protocol makes (word write time vs. invalidation
   time, LRU [last_use] ordering) is between events of the same block
   or set — same shard — where partitioning preserves relative order,
   so the comparisons, and with them all counts, are bit-identical. *)

type sharding = { s_block_shift : int; s_nsets : int; s_set_mask : int }

let sharding (cfg : config) =
  if not (Align.is_power_of_two cfg.block) || cfg.block < word_size then
    invalid_arg "Mpcache.sharding: block must be a power of two >= 4";
  if cfg.assoc <= 0 || cfg.cache_bytes < cfg.block * cfg.assoc then
    invalid_arg "Mpcache.sharding: cache too small for one set";
  let nsets = cfg.cache_bytes / (cfg.block * cfg.assoc) in
  let rec log2 s n = if n <= 1 then s else log2 (s + 1) (n lsr 1) in
  { s_block_shift = log2 0 cfg.block;
    s_nsets = nsets;
    s_set_mask = (if Align.is_power_of_two nsets then nsets - 1 else 0) }

let[@inline] shard_of_addr s ~shards ~addr =
  let b = addr lsr s.s_block_shift in
  let set = if s.s_set_mask <> 0 then b land s.s_set_mask else b mod s.s_nsets in
  set mod shards

(* Deterministic merges.  Shard-local states are disjoint by block when
   the caches were fed through {!shard_of_addr}, so merging is summing
   (counts) and a sorted union (per-block tables); the operations are
   associative and order-independent, which the property tests pin. *)

let merge_counts a b =
  let c = copy_counts a in
  add_into c b;
  c

let merged_counts caches =
  let total = zero_counts () in
  Array.iter (fun t -> add_into total t.totals) caches;
  total

let merged_proc_counts caches =
  if Array.length caches = 0 then [||]
  else begin
    let nprocs = caches.(0).nprocs in
    Array.iter
      (fun t ->
        if t.nprocs <> nprocs then
          invalid_arg "Mpcache.merged_proc_counts: mismatched processor counts")
      caches;
    let out = Array.init nprocs (fun _ -> zero_counts ()) in
    Array.iter
      (fun t -> Array.iteri (fun p c -> add_into out.(p) c) t.per_proc)
      caches;
    out
  end

(* collisions (the same key in two shards) are summed — they cannot
   happen under set-aligned sharding, but the merge should not silently
   drop data if a caller partitions differently *)
let merged_assoc fold_one add caches =
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun t ->
      fold_one t (fun key c ->
          match Hashtbl.find_opt tbl key with
          | Some acc -> add acc c
          | None -> Hashtbl.add tbl key c))
    caches;
  tbl

let merged_per_block caches =
  let tbl =
    merged_assoc
      (fun t f -> List.iter (fun (b, c) -> f b (copy_counts c)) (per_block t))
      add_into caches
  in
  Hashtbl.fold (fun b c acc -> (b, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merged_pairs caches =
  let tbl =
    merged_assoc
      (fun t f ->
        List.iter
          (fun p -> f (p.block, p.src, p.victim) p)
          (invalidation_pairs t))
      (fun _ _ ->
        invalid_arg "Mpcache.merged_pairs: pair present in two shards")
      caches
  in
  Hashtbl.fold (fun _ p acc -> p :: acc) tbl []
  |> List.sort (fun a b ->
         compare (a.block, a.src, a.victim) (b.block, b.src, b.victim))

let merged_lines caches =
  let tbl =
    merged_assoc
      (fun t f -> List.iter (fun l -> f l.line_block l) (lines t))
      (fun _ _ -> invalid_arg "Mpcache.merged_lines: line present in two shards")
      caches
  in
  Hashtbl.fold (fun _ l acc -> l :: acc) tbl []
  |> List.sort (fun a b -> compare a.line_block b.line_block)

module Shard = struct
  type cache = t

  type t = {
    sh_cache : cache;
    sh_index : int;
    sh_count : int;
    sh : sharding;
  }

  let create ?track_blocks ?track_pairs ?track_lines ?max_addr ~shards ~index
      cfg =
    if shards <= 0 then invalid_arg "Mpcache.Shard.create: shards must be >= 1";
    if index < 0 || index >= shards then
      invalid_arg "Mpcache.Shard.create: index out of range";
    { sh_cache = create ?track_blocks ?track_pairs ?track_lines ?max_addr cfg;
      sh_index = index;
      sh_count = shards;
      sh = sharding cfg }

  let cache t = t.sh_cache
  let index t = t.sh_index
  let shards t = t.sh_count
  let owns t ~addr = shard_of_addr t.sh ~shards:t.sh_count ~addr = t.sh_index
  let access_raw t ~proc ~write ~addr = access_raw t.sh_cache ~proc ~write ~addr
  let touch t ~proc ~write ~addr = touch t.sh_cache ~proc ~write ~addr
end
