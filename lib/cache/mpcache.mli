(** Write-invalidate multiprocessor cache simulator.

    Models the simulation architecture of Section 4 of the paper: one
    private first-level cache per processor (default 32 KB, 4-way LRU) in
    front of an infinite second-level cache, kept coherent with an MSI
    write-invalidate protocol.  The block size is a parameter (the paper
    sweeps 4–256 bytes).

    Every first-level miss is classified:
    - {b Cold} — the processor touches the block for the first time.
    - {b Replacement} — the processor's copy was evicted (capacity or
      conflict; with LRU sets the two are not distinguished).
    - {b True sharing} — the copy was invalidated by another processor,
      and the word now accessed was written by another processor while
      this processor's copy was invalid: the communication was essential.
    - {b False sharing} — the copy was invalidated, but the word now
      accessed was not written by any other processor in that interval;
      the miss exists only because unrelated data share the block, and
      would vanish with one-word blocks.

    The classification is exact at word (4-byte) granularity: the simulator
    tracks the last writer and write time of every word, and the
    invalidation time of every processor/block pair. *)

type config = {
  nprocs : int;
  block : int;        (** block size in bytes, a power of two >= 4 *)
  cache_bytes : int;  (** capacity of each processor's cache *)
  assoc : int;        (** set associativity *)
}

val default_config : nprocs:int -> block:int -> config
(** 32 KB, 4-way, as in the paper's simulations. *)

type kind = Cold | Replacement | True_sharing | False_sharing

val kind_to_string : kind -> string

type counts = {
  mutable reads : int;
  mutable writes : int;
  mutable cold : int;
  mutable repl : int;
  mutable true_sh : int;
  mutable false_sh : int;
  mutable invalidations : int;  (** copies invalidated by remote writes *)
  mutable upgrades : int;       (** S->M transitions without data transfer *)
}

val accesses : counts -> int
val misses : counts -> int
val miss_rate : counts -> float
val false_sharing_rate : counts -> float
(** False-sharing misses per access. *)

type miss_info = {
  kind : kind;
  provider : int;
      (** processor whose cache supplies the block: the current modified
          owner, else the most recent writer still holding a copy, else
          [-1] (the block comes from the infinite second level) *)
}

(** Result of one reference.  [invalidated] is the number of remote copies
    the reference destroyed — the coherence traffic it put on the
    interconnect. *)
type outcome =
  | Hit
  | Upgrade of { invalidated : int }
      (** write hit on a Shared copy: invalidations, but no data transfer *)
  | Miss of { info : miss_info; invalidated : int }

type t

(** One invalidation flow for the blame matrix: writes by [src] that
    destroyed [victim]'s copy of [block], split between upgrades (write
    hits on a Shared copy) and outright write misses. *)
type pair = {
  block : int;
  src : int;
  victim : int;
  upgrades : int;
  write_misses : int;
}

val create : ?track_blocks:bool -> ?track_pairs:bool -> config -> t
val config : t -> config

val access : t -> proc:int -> write:bool -> addr:int -> outcome
(** Simulate one reference. *)

val sink : t -> Fs_trace.Sink.t
(** Feed the simulator from an interpreter run, ignoring outcomes. *)

val counts : t -> counts
(** Live totals (the record is the simulator's own accumulator). *)

val proc_counts : t -> counts array
(** Per-processor counters, always maintained: accesses and misses are
    the acting processor's, [invalidations] count copies {e this}
    processor lost to remote writes. *)

val per_block : t -> (int * counts) list
(** Per-block counters, available when created with [~track_blocks:true];
    empty otherwise.  Sorted by block number.  [invalidations] are
    attributed to the block whose copies were destroyed. *)

val invalidation_pairs : t -> pair list
(** Who invalidates whom, per block, available when created with
    [~track_pairs:true]; empty otherwise.  Sorted by (block, src,
    victim).  Summing [upgrades + write_misses] over all pairs equals
    [(counts t).invalidations]. *)

val state_of : t -> proc:int -> addr:int -> [ `Modified | `Shared | `Invalid ]
(** Protocol state of the block containing [addr] in [proc]'s cache
    (Invalid when never present or evicted) — for invariant tests. *)
