(** Write-invalidate multiprocessor cache simulator.

    Models the simulation architecture of Section 4 of the paper: one
    private first-level cache per processor (default 32 KB, 4-way LRU) in
    front of an infinite second-level cache, kept coherent with an MSI
    write-invalidate protocol.  The block size is a parameter (the paper
    sweeps 4–256 bytes).

    Every first-level miss is classified:
    - {b Cold} — the processor touches the block for the first time.
    - {b Replacement} — the processor's copy was evicted (capacity or
      conflict; with LRU sets the two are not distinguished).
    - {b True sharing} — the copy was invalidated by another processor,
      and the word now accessed was written by another processor while
      this processor's copy was invalid: the communication was essential.
    - {b False sharing} — the copy was invalidated, but the word now
      accessed was not written by any other processor in that interval;
      the miss exists only because unrelated data share the block, and
      would vanish with one-word blocks.

    The classification is exact at word (4-byte) granularity: the simulator
    tracks the last writer and write time of every word, and the
    invalidation time of every processor/block pair. *)

type config = {
  nprocs : int;
  block : int;        (** block size in bytes, a power of two >= 4 *)
  cache_bytes : int;  (** capacity of each processor's cache *)
  assoc : int;        (** set associativity *)
}

val default_config : nprocs:int -> block:int -> config
(** 32 KB, 4-way, as in the paper's simulations. *)

type kind = Cold | Replacement | True_sharing | False_sharing

val kind_to_string : kind -> string

type counts = {
  mutable reads : int;
  mutable writes : int;
  mutable cold : int;
  mutable repl : int;
  mutable true_sh : int;
  mutable false_sh : int;
  mutable invalidations : int;  (** copies invalidated by remote writes *)
  mutable upgrades : int;       (** S->M transitions without data transfer *)
}

val accesses : counts -> int
val misses : counts -> int
val miss_rate : counts -> float
val false_sharing_rate : counts -> float
(** False-sharing misses per access. *)

val zero_counts : unit -> counts

val copy_counts : counts -> counts

val add_into : counts -> counts -> unit
(** [add_into dst src] accumulates [src] into [dst], field by field. *)

val sub_counts : counts -> counts -> counts
(** [sub_counts a b] is the fresh field-wise difference [a - b] — the
    delta between two snapshots of a monotone accumulator. *)

type miss_info = {
  kind : kind;
  provider : int;
      (** processor whose cache supplies the block: the current modified
          owner, else the most recent writer still holding a copy, else
          [-1] (the block comes from the infinite second level) *)
}

(** Result of one reference.  [invalidated] is the number of remote copies
    the reference destroyed — the coherence traffic it put on the
    interconnect. *)
type outcome =
  | Hit
  | Upgrade of { invalidated : int }
      (** write hit on a Shared copy: invalidations, but no data transfer *)
  | Miss of { info : miss_info; invalidated : int }

type t

(** One invalidation flow for the blame matrix: writes by [src] that
    destroyed [victim]'s copy of [block], split between upgrades (write
    hits on a Shared copy) and outright write misses. *)
type pair = {
  block : int;
  src : int;
  victim : int;
  upgrades : int;
  write_misses : int;
}

(** Lifetime of one cache line, available with [~track_lines:true]: how
    write ownership of the line moved between processors over the run.

    A {e migration} is a write whose processor differs from the line's
    previous writer; a {e ping-pong} is the strict A→B→A case where the
    line bounces straight back.  [max_run] is the length (in consecutive
    writes) of the longest alternating-writer run — every write in the run
    by a different processor than the one before — and [max_inval_chain]
    the longest streak of consecutive writes that each destroyed at least
    one remote copy.  [word_writers] is the word-level footprint: bit [p]
    of entry [w] is set when processor [p] wrote word [w]; [shared_words]
    counts words written by two or more processors, so
    [writers >= 2 && shared_words = 0] identifies a line whose write
    traffic is {e pure} false sharing (disjoint word footprints). *)
type line = {
  line_block : int;
  line_reads : int;
  line_writes : int;
  writers : int;          (** distinct writing processors *)
  readers : int;          (** distinct reading processors *)
  migrations : int;
  pingpong : int;
  max_run : int;
  max_inval_chain : int;
  written_words : int;
  shared_words : int;
  word_writers : int array;
}

val pingpong_score : line -> float
(** Migrations per write — the fraction of writes that moved the line's
    write ownership; 0 for an unwritten or single-writer line. *)

val create :
  ?track_blocks:bool ->
  ?track_pairs:bool ->
  ?track_lines:bool ->
  ?max_addr:int ->
  config ->
  t
(** The simulator state is array-dense, indexed by block id over the
    address arena.  [max_addr] presizes the arrays for an arena of that
    many bytes (pass {!Fs_layout.Layout.size} of the replayed layout);
    without it the arrays start small and grow by doubling as higher
    addresses appear.  Either way the per-reference path is
    allocation-free unless a tracking flag is on. *)

val config : t -> config

val access : t -> proc:int -> write:bool -> addr:int -> outcome
(** Simulate one reference. *)

val touch : t -> proc:int -> write:bool -> addr:int -> unit
(** Exactly {!access} minus the boxed [outcome] — the entry point of the
    fused replay loop, which needs the counters but not the per-reference
    result.  Allocation-free when no tracking flag is on. *)

val sink : t -> Fs_trace.Sink.t
(** Feed the simulator from an interpreter run, ignoring outcomes. *)

val counts : t -> counts
(** Live totals (the record is the simulator's own accumulator). *)

val proc_counts : t -> counts array
(** Per-processor counters, always maintained: accesses and misses are
    the acting processor's, [invalidations] count copies {e this}
    processor lost to remote writes. *)

val per_block : t -> (int * counts) list
(** Per-block counters, sorted by block number.  [invalidations] are
    attributed to the block whose copies were destroyed.
    @raise Invalid_argument unless created with [~track_blocks:true] —
    a silent [[]] used to mask forgotten tracking flags. *)

val invalidation_pairs : t -> pair list
(** Who invalidates whom, per block, sorted by (block, src, victim).
    Summing [upgrades + write_misses] over all pairs equals
    [(counts t).invalidations].
    @raise Invalid_argument unless created with [~track_pairs:true]. *)

val lines : t -> line list
(** Per-line lifetime records, sorted by block number.
    @raise Invalid_argument unless created with [~track_lines:true]. *)

val state_of : t -> proc:int -> addr:int -> [ `Modified | `Shared | `Invalid ]
(** Protocol state of the block containing [addr] in [proc]'s cache
    (Invalid when never present or evicted) — for invariant tests. *)

(** {1 Sharding}

    A block's coherence lifecycle depends only on the accesses that touch
    that block, and LRU replacement couples blocks only within a cache
    {e set} — so partitioning the address space {e by set} across several
    simulator instances, each replaying its substream in trace order,
    reproduces the unsharded run's counts bit for bit.  {!shard_of_addr}
    is that set-aligned hash; {!Shard} wraps one slab; the [merged_*]
    functions reassemble whole-run results. *)

type sharding
(** Precomputed geometry (block shift, set count) of one {!config}. *)

val sharding : config -> sharding

val shard_of_addr : sharding -> shards:int -> addr:int -> int
(** The shard in [0 .. shards - 1] owning [addr]'s cache set.  All
    addresses of one block — and all blocks of one LRU set — map to the
    same shard, for any [shards >= 1]. *)

val merge_counts : counts -> counts -> counts
(** Fresh field-wise sum.  Associative and commutative, so shard merge
    order never matters (pinned by a QCheck property). *)

val merged_counts : t array -> counts
(** Field-wise sum of every simulator's totals. *)

val merged_proc_counts : t array -> counts array
(** Per-processor sums across shards.
    @raise Invalid_argument on mismatched processor counts. *)

val merged_per_block : t array -> (int * counts) list
(** Union of the shards' per-block tables, sorted by block; a block
    present in several shards (impossible under set-aligned sharding)
    has its counts summed.
    @raise Invalid_argument unless all created with [~track_blocks:true]. *)

val merged_pairs : t array -> pair list
(** Union of the shards' invalidation pairs, sorted by
    (block, src, victim).
    @raise Invalid_argument if a pair appears in two shards, or unless
    all created with [~track_pairs:true]. *)

val merged_lines : t array -> line list
(** Union of the shards' line records, sorted by block.
    @raise Invalid_argument if a block appears in two shards, or unless
    all created with [~track_lines:true]. *)

(** One shard-local slab: a full simulator plus the ownership test.  The
    hot path ({!Shard.touch}) is the unsharded one — sharding adds no
    per-reference cost, only the partitioning done by the caller. *)
module Shard : sig
  type cache := t
  type t

  val create :
    ?track_blocks:bool ->
    ?track_pairs:bool ->
    ?track_lines:bool ->
    ?max_addr:int ->
    shards:int ->
    index:int ->
    config ->
    t
  (** @raise Invalid_argument unless [0 <= index < shards]. *)

  val cache : t -> cache
  (** The underlying simulator — query it with {!counts}, {!per_block},
      etc., or pass the whole slab array to the [merged_*] functions. *)

  val index : t -> int
  val shards : t -> int

  val owns : t -> addr:int -> bool
  (** Whether this shard's slab simulates [addr]'s set.  Feeding a shard
      an address it does not own is not checked — the partitioner is
      responsible — and breaks the bit-identity guarantee. *)

  val access_raw : t -> proc:int -> write:bool -> addr:int -> int
  (** The packed allocation-free outcome of one reference, identical to
      the unsharded simulator's internal hot path: bits 0-2 the outcome
      code (0 hit, 1 upgrade, 2 cold, 3 replacement, 4 true sharing,
      5 false sharing), bits 3-11 provider + 1, bits 12+ the number of
      remote copies invalidated. *)

  val touch : t -> proc:int -> write:bool -> addr:int -> unit
end
