(** Shared-data transformation plans.

    A plan is what the compiler front end (lib/transform) emits and what the
    layout engine (lib/layout) realizes: a set of data transformations drawn
    from the paper's suite of four (Section 3.2).  Plans are also written by
    hand for the "programmer-optimized" benchmark versions. *)

type action =
  | Group_transpose of { vars : string list; pdv_axis : int }
      (** Gather the per-process chunks of the listed arrays (all rectangular
          scalar array nests whose dimension [pdv_axis], counted from the
          outermost, is indexed by the PDV and has the same extent in every
          listed array), transpose so that the PDV dimension is outermost,
          and pad each processor's group to a cache-block multiple. *)
  | Indirect of { var : string; fields : string list }
      (** [var] is an array of structs; [fields] are its per-process
          fields (arrays indexed by the PDV, all with the same extent).
          Replace each field by a pointer into per-processor data areas —
          one area per process, holding that process's slice of every
          listed field of every record, grouped — and charge every access
          to a listed field one extra (read-shared) pointer load. *)
  | Pad_align of { var : string; element : bool }
      (** Give [var] cache blocks of its own.  With [element = true], each
          top-level array element of [var] is padded to a block multiple
          individually. *)
  | Regroup of { var : string; ways : int; chunked : bool }
      (** Group & transpose for flat arrays whose per-process structure
          lives in the outermost dimension's index arithmetic rather than
          in a dedicated dimension: with [chunked = false], element [i]
          belongs to process [i mod ways] (the [k*P+pid] idiom) and the
          per-process subsequences are gathered into contiguous,
          block-padded areas; with [chunked = true], element [i] belongs to
          process [i / ceil(extent/ways)] (the [pid*chunk+k] idiom) and
          each chunk is padded to a block boundary. *)
  | Pad_locks
      (** Relocate every lock cell of the program into a region where each
          lock has a cache block of its own. *)

type t = action list

val empty : t

val pp_action : Format.formatter -> action -> unit
val pp : Format.formatter -> t -> unit

val transformed_vars : t -> string list
(** Variables named by [Group_transpose], [Indirect] or [Pad_align] actions,
    without duplicates, in plan order. *)

exception Plan_error of string

val validate : Fs_ir.Ast.program -> t -> unit
(** Checks the plan against the program: named variables exist,
    [Group_transpose] targets are rectangular scalar array nests with a
    common extent along the PDV axis, [Indirect] targets are arrays of
    structs with the named field, and no variable is claimed by two actions
    (the error names both offending actions).
    @raise Plan_error on violations. *)

val claimed_vars : action -> string list
(** Variables an action claims the layout of ([] for [Pad_locks]). *)

(** A variable claimed by an action of both plans being merged. *)
type conflict = {
  cvar : string;
  in_base : action;
  in_delta : action;
}

val conflicts : t -> t -> conflict list
(** [conflicts base delta] — every variable claimed by an action on each
    side, in delta order.  [Pad_locks] on both sides is not a conflict
    (it is idempotent and deduplicated by {!merge}). *)

val merge : t -> t -> t
(** [merge base delta] appends the delta's actions to the base plan.
    A second [Pad_locks] is dropped rather than duplicated.
    @raise Plan_error when {!conflicts} is non-empty, naming each
    variable and both actions that claim it. *)
