module Ast = Fs_ir.Ast
module Cells = Fs_ir.Cells

type action =
  | Group_transpose of { vars : string list; pdv_axis : int }
  | Indirect of { var : string; fields : string list }
  | Pad_align of { var : string; element : bool }
  | Regroup of { var : string; ways : int; chunked : bool }
  | Pad_locks

type t = action list

let empty = []

let pp_action fmt = function
  | Group_transpose { vars; pdv_axis } ->
    Format.fprintf fmt "group&transpose [%s] on axis %d"
      (String.concat ", " vars) pdv_axis
  | Indirect { var; fields } ->
    Format.fprintf fmt "indirection %s.{%s}" var (String.concat ", " fields)
  | Pad_align { var; element } ->
    Format.fprintf fmt "pad&align %s%s" var (if element then " (per element)" else "")
  | Regroup { var; ways; chunked } ->
    Format.fprintf fmt "regroup %s %d-way (%s)" var ways
      (if chunked then "chunked" else "strided")
  | Pad_locks -> Format.pp_print_string fmt "pad locks"

let pp fmt t =
  if t = [] then Format.pp_print_string fmt "(no transformations)"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
      pp_action fmt t

let claimed_vars = function
  | Group_transpose { vars; _ } -> vars
  | Indirect { var; _ } | Pad_align { var; _ } | Regroup { var; _ } -> [ var ]
  | Pad_locks -> []

let transformed_vars t =
  let seen = Hashtbl.create 8 in
  let keep v = if Hashtbl.mem seen v then false else (Hashtbl.add seen v (); true) in
  List.concat_map (fun a -> List.filter keep (claimed_vars a)) t

exception Plan_error of string

let err fmt = Format.kasprintf (fun s -> raise (Plan_error s)) fmt

type conflict = {
  cvar : string;
  in_base : action;
  in_delta : action;
}

let conflicts base delta =
  let claimed = Hashtbl.create 8 in
  List.iter
    (fun a ->
      List.iter
        (fun v -> if not (Hashtbl.mem claimed v) then Hashtbl.add claimed v a)
        (claimed_vars a))
    base;
  List.concat_map
    (fun a ->
      List.filter_map
        (fun v ->
          Option.map
            (fun b -> { cvar = v; in_base = b; in_delta = a })
            (Hashtbl.find_opt claimed v))
        (claimed_vars a))
    delta

let merge base delta =
  (match conflicts base delta with
   | [] -> ()
   | cs ->
     err "plan merge: %s"
       (String.concat "; "
          (List.map
             (fun c ->
               Format.asprintf
                 "variable %s claimed by both [%a] and [%a]" c.cvar pp_action
                 c.in_base pp_action c.in_delta)
             cs)));
  let have_locks = List.mem Pad_locks base in
  base @ List.filter (fun a -> not (a = Pad_locks && have_locks)) delta

let validate p t =
  let claimed = Hashtbl.create 8 in
  let current = ref Pad_locks in
  let claim v =
    (match Hashtbl.find_opt claimed v with
     | Some prev ->
       err "variable %s claimed by two actions: [%a] and [%a]" v pp_action prev
         pp_action !current
     | None -> ());
    Hashtbl.add claimed v !current
  in
  let global v =
    match List.assoc_opt v p.Ast.globals with
    | Some ty -> ty
    | None -> err "plan names unknown global %s" v
  in
  let check a =
    current := a;
    match a with
    | Group_transpose { vars; pdv_axis } ->
      if vars = [] then err "empty group&transpose";
      let extent v =
        claim v;
        match Cells.array_dims p (global v) with
        | Some (dims, Ast.Scalar _) ->
          if pdv_axis < 0 || pdv_axis >= List.length dims then
            err "group&transpose of %s: axis %d out of rank %d" v pdv_axis
              (List.length dims);
          List.nth dims pdv_axis
        | Some (_, _) | None ->
          err "group&transpose target %s is not a scalar array nest" v
      in
      (match List.map extent vars with
       | [] -> assert false
       | e :: rest ->
         if List.exists (fun e' -> e' <> e) rest then
           err "group&transpose targets disagree on PDV extent")
    | Indirect { var; fields } -> (
      claim var;
      if fields = [] then err "indirection on %s names no fields" var;
      let seen = Hashtbl.create 4 in
      List.iter
        (fun f ->
          if Hashtbl.mem seen f then err "indirection on %s repeats field %s" var f;
          Hashtbl.add seen f ())
        fields;
      match global var with
      | Ast.Array (Ast.Struct sname, _) ->
        let s = Ast.find_struct p sname in
        let extents =
          List.map
            (fun f ->
              match List.assoc_opt f s.fields with
              | None -> err "indirection: struct %s has no field %s" sname f
              | Some (Ast.Array (_, n)) -> n
              | Some _ ->
                err "indirection: field %s.%s is not a per-process array" var f)
            fields
        in
        (match extents with
         | e :: rest when List.exists (fun e' -> e' <> e) rest ->
           err "indirection fields of %s disagree on PDV extent" var
         | _ -> ())
      | _ -> err "indirection target %s is not an array of structs" var)
    | Pad_align { var; _ } -> claim var; ignore (global var)
    | Regroup { var; ways; _ } -> (
      claim var;
      match global var with
      | Ast.Array (_, n) ->
        if ways < 2 || ways > n then
          err "regroup of %s: %d ways does not fit extent %d" var ways n
      | _ -> err "regroup target %s is not an array" var)
    | Pad_locks -> ()
  in
  List.iter check t;
  let n_padlocks =
    List.length (List.filter (function Pad_locks -> true | _ -> false) t)
  in
  if n_padlocks > 1 then err "duplicate pad-locks action"
