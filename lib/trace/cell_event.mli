(** Layout-free interpreter events.

    Where {!Event} speaks in physical byte addresses, a cell event names
    the abstract location — (variable id, scalar cell id) — leaving every
    layout decision to replay time.  The variable id is the variable's
    index in the program's global-declaration order; a recorded
    {!Cell_trace} carries the id -> name table.

    Events pack into single OCaml ints (processor and variable ids below
    256, cell ids below 2^34), so traces of tens of millions of events
    stay cheap to hold and to scan. *)

type t =
  | Access of { proc : int; write : bool; var : int; cell : int }
      (** one shared-memory reference; pointer loads injected by an
          indirection layout are {e not} recorded — they are a property of
          the layout and materialize at replay *)
  | Work of { proc : int; amount : int }
  | Barrier_arrive of { proc : int }
  | Barrier_release
  | Lock_wait of { proc : int; var : int; cell : int }
  | Lock_grant of { proc : int; var : int; cell : int; from : int }
      (** [from = -1] when the lock was free *)

val pack : t -> int
(** @raise Invalid_argument when a field exceeds its packed range. *)

val unpack : int -> t

(** {1 Allocation-free field access}

    Extractors over the packed int, for hot loops that cannot afford
    [unpack]'s per-event variant allocation.  [packed_proc] and
    [packed_var] are meaningful for every tag but [Barrier_release];
    [packed_write] and [packed_cell] only when [packed_is_access]. *)

val tag_barrier_release : int
(** The {!packed_tag} value of [Barrier_release] — the epoch cut the
    sharded replay and the phase tracker both key on. *)

val packed_tag : int -> int
val packed_is_access : int -> bool
val packed_proc : int -> int
val packed_var : int -> int
val packed_write : int -> bool
val packed_cell : int -> int

val max_proc : int
val max_var : int
val max_cell : int

val pp : Format.formatter -> t -> unit
