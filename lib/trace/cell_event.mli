(** Layout-free interpreter events.

    Where {!Event} speaks in physical byte addresses, a cell event names
    the abstract location — (variable id, scalar cell id) — leaving every
    layout decision to replay time.  The variable id is the variable's
    index in the program's global-declaration order; a recorded
    {!Cell_trace} carries the id -> name table.

    Events pack into single OCaml ints (processor and variable ids below
    256, cell ids below 2^34), so traces of tens of millions of events
    stay cheap to hold and to scan. *)

type t =
  | Access of { proc : int; write : bool; var : int; cell : int }
      (** one shared-memory reference; pointer loads injected by an
          indirection layout are {e not} recorded — they are a property of
          the layout and materialize at replay *)
  | Work of { proc : int; amount : int }
  | Barrier_arrive of { proc : int }
  | Barrier_release
  | Lock_wait of { proc : int; var : int; cell : int }
  | Lock_grant of { proc : int; var : int; cell : int; from : int }
      (** [from = -1] when the lock was free *)
  | Steal of { thief : int; victim : int; task : int }
      (** the work-stealing runtime ({!Fs_sched}) moved task [task] from
          [victim]'s deque to [thief].  Packs the thief in the proc field
          and the victim in the var field, so the generic extractors
          below apply. *)

val pack : t -> int
(** @raise Invalid_argument when a field exceeds its packed range. *)

val unpack : int -> t

(** {1 Allocation-free field access}

    Extractors over the packed int, for hot loops that cannot afford
    [unpack]'s per-event variant allocation.  [packed_proc] and
    [packed_var] are meaningful for every tag but [Barrier_release];
    [packed_write] and [packed_cell] only when [packed_is_access]. *)

val tag_barrier_release : int
(** The {!packed_tag} value of [Barrier_release] — the epoch cut the
    sharded replay and the phase tracker both key on. *)

val tag_access : int
val tag_work : int
val tag_barrier_arrive : int
val tag_lock_wait : int
val tag_lock_grant : int

val tag_steal : int
(** Steal events carry no memory traffic of their own (the deque cell
    traffic is recorded as ordinary [Access] events on the scheduler's
    globals); cache simulations skip this tag. *)

val packed_tag : int -> int
val packed_is_access : int -> bool
val packed_proc : int -> int
val packed_var : int -> int
val packed_write : int -> bool
val packed_cell : int -> int

val packed_amount : int -> int
(** Meaningful for [Work] only. *)

val packed_grant_from1 : int -> int
(** [from + 1] of a packed [Lock_grant] (0 means the lock was free). *)

val packed_grant_cell : int -> int
(** The cell of a packed [Lock_grant], whose payload layout differs from
    the other cell-bearing tags. *)

val max_proc : int
val max_var : int
val max_cell : int
(** Cell bound for [Lock_grant], whose payload shares bits with the
    grantor. *)

val max_wide_cell : int
(** Cell bound for [Access] / [Lock_wait]. *)

val max_amount : int

(** {1 Unchecked packing}

    Constructors that skip {!pack}'s range checks, for the v2 trace
    decoder, which validates decoded fields itself before packing.
    Out-of-range arguments silently corrupt neighbouring fields — only
    call these with values already checked against the bounds above. *)

val unsafe_pack_access : write:bool -> proc:int -> var:int -> cell:int -> int
val unsafe_pack_work : proc:int -> amount:int -> int
val unsafe_pack_barrier_arrive : proc:int -> int
val unsafe_pack_lock_wait : proc:int -> var:int -> cell:int -> int
val unsafe_pack_lock_grant : proc:int -> var:int -> from1:int -> cell:int -> int
val unsafe_pack_steal : thief:int -> victim:int -> task:int -> int

val pp : Format.formatter -> t -> unit
