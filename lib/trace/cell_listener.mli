(** Consumers of the interpreter's layout-free event stream.

    The cell-level twin of {!Listener}: the interpreter calls these
    closures in program order, naming locations as (var id, cell id)
    rather than byte addresses.  [Fs_replay.Replay.translating] turns an
    address-level {!Listener} into one of these by routing every event
    through a layout's address oracle. *)

type t = {
  access : proc:int -> write:bool -> var:int -> cell:int -> unit;
  work : proc:int -> amount:int -> unit;
  barrier_arrive : proc:int -> unit;
  barrier_release : unit -> unit;
  lock_wait : proc:int -> var:int -> cell:int -> unit;
  lock_grant : proc:int -> var:int -> cell:int -> from:int -> unit;
  steal : thief:int -> victim:int -> task:int -> unit;
}

val null : t

val combine : t -> t -> t
(** Deliver every event to both, first argument first. *)

val dispatch : t -> Cell_event.t -> unit
(** Feed one reified event to the listener. *)
