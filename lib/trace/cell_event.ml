type t =
  | Access of { proc : int; write : bool; var : int; cell : int }
  | Work of { proc : int; amount : int }
  | Barrier_arrive of { proc : int }
  | Barrier_release
  | Lock_wait of { proc : int; var : int; cell : int }
  | Lock_grant of { proc : int; var : int; cell : int; from : int }
  | Steal of { thief : int; victim : int; task : int }

(* Packed representation, one event per OCaml int:

   bits 0-2   tag
   bits 3     write flag            (Access)
   bits 4-11  proc                  (all but Barrier_release)
   bits 12-19 var                   (Access, Lock_wait, Lock_grant)
   bits 20+   cell / amount payload (Lock_grant: bits 20-28 carry from+1,
                                     which spans [0,256], the cell starts
                                     at bit 29)

   Simulated processor counts stay below 256 and programs declare far
   fewer than 256 globals, so the 8-bit fields are comfortable; cells and
   work amounts get 34+ bits. *)

let max_proc = 255
let max_var = 255
let max_cell = (1 lsl 34) - 1
let max_wide_cell = (1 lsl 43) - 1
let max_amount = (1 lsl 51) - 1

let tag_access = 0
let tag_work = 1
let tag_barrier_arrive = 2
let tag_barrier_release = 3
let tag_lock_wait = 4
let tag_lock_grant = 5

(* Steal reuses the Access field slots: the thief rides in the proc
   field, the victim in the var field, the task id in the cell payload —
   so the generic proc/var extractors keep working on it. *)
let tag_steal = 6

let check what v limit =
  if v < 0 || v > limit then
    invalid_arg (Printf.sprintf "Cell_event.pack: %s %d out of range [0,%d]" what v limit)

let pack = function
  | Access { proc; write; var; cell } ->
    check "proc" proc max_proc;
    check "var" var max_var;
    check "cell" cell max_wide_cell;
    tag_access
    lor ((if write then 1 else 0) lsl 3)
    lor (proc lsl 4) lor (var lsl 12) lor (cell lsl 20)
  | Work { proc; amount } ->
    check "proc" proc max_proc;
    check "amount" amount max_amount;
    tag_work lor (proc lsl 4) lor (amount lsl 12)
  | Barrier_arrive { proc } ->
    check "proc" proc max_proc;
    tag_barrier_arrive lor (proc lsl 4)
  | Barrier_release -> tag_barrier_release
  | Lock_wait { proc; var; cell } ->
    check "proc" proc max_proc;
    check "var" var max_var;
    check "cell" cell max_wide_cell;
    tag_lock_wait lor (proc lsl 4) lor (var lsl 12) lor (cell lsl 20)
  | Lock_grant { proc; var; cell; from } ->
    check "proc" proc max_proc;
    check "var" var max_var;
    check "from+1" (from + 1) (max_proc + 1);
    check "cell" cell max_cell;
    tag_lock_grant lor (proc lsl 4) lor (var lsl 12)
    lor ((from + 1) lsl 20) lor (cell lsl 29)
  | Steal { thief; victim; task } ->
    check "thief" thief max_proc;
    check "victim" victim max_proc;
    check "task" task max_wide_cell;
    tag_steal lor (thief lsl 4) lor (victim lsl 12) lor (task lsl 20)

(* Field extractors over the packed form, for consumers that cannot
   afford [unpack]'s variant allocation per event (the fused replay
   loop).  They must mirror the bit layout above exactly; the pack/unpack
   round-trip property test pins them down. *)
let[@inline] packed_tag packed = packed land 7
let[@inline] packed_is_access packed = packed land 7 = tag_access
let[@inline] packed_proc packed = (packed lsr 4) land 0xff
let[@inline] packed_var packed = (packed lsr 12) land 0xff
let[@inline] packed_write packed = packed land 8 <> 0
let[@inline] packed_cell packed = packed lsr 20
let[@inline] packed_amount packed = packed lsr 12
let[@inline] packed_grant_from1 packed = (packed lsr 20) land 0x1ff
let[@inline] packed_grant_cell packed = packed lsr 29

(* Unchecked constructors over already-validated fields, for the v2 trace
   decoder: it range-checks every decoded field itself (so corruption
   surfaces as [Cell_trace.Corrupt], not [Invalid_argument]) and then
   builds the packed form without paying [pack]'s checks per event. *)
let[@inline] unsafe_pack_access ~write ~proc ~var ~cell =
  tag_access
  lor ((if write then 1 else 0) lsl 3)
  lor (proc lsl 4) lor (var lsl 12) lor (cell lsl 20)

let[@inline] unsafe_pack_work ~proc ~amount = tag_work lor (proc lsl 4) lor (amount lsl 12)
let[@inline] unsafe_pack_barrier_arrive ~proc = tag_barrier_arrive lor (proc lsl 4)

let[@inline] unsafe_pack_lock_wait ~proc ~var ~cell =
  tag_lock_wait lor (proc lsl 4) lor (var lsl 12) lor (cell lsl 20)

let[@inline] unsafe_pack_lock_grant ~proc ~var ~from1 ~cell =
  tag_lock_grant lor (proc lsl 4) lor (var lsl 12) lor (from1 lsl 20) lor (cell lsl 29)

let[@inline] unsafe_pack_steal ~thief ~victim ~task =
  tag_steal lor (thief lsl 4) lor (victim lsl 12) lor (task lsl 20)

let unpack packed =
  let proc = (packed lsr 4) land 0xff in
  let var = (packed lsr 12) land 0xff in
  match packed land 7 with
  | 0 -> Access { proc; write = packed land 8 <> 0; var; cell = packed lsr 20 }
  | 1 -> Work { proc; amount = packed lsr 12 }
  | 2 -> Barrier_arrive { proc }
  | 3 -> Barrier_release
  | 4 -> Lock_wait { proc; var; cell = packed lsr 20 }
  | 5 ->
    Lock_grant
      { proc; var; from = ((packed lsr 20) land 0x1ff) - 1; cell = packed lsr 29 }
  | 6 -> Steal { thief = proc; victim = var; task = packed lsr 20 }
  | t -> invalid_arg (Printf.sprintf "Cell_event.unpack: bad tag %d" t)

let pp fmt = function
  | Access { proc; write; var; cell } ->
    Format.fprintf fmt "P%d %s v%d[%d]" proc (if write then "W" else "R") var cell
  | Work { proc; amount } -> Format.fprintf fmt "P%d work %d" proc amount
  | Barrier_arrive { proc } -> Format.fprintf fmt "P%d barrier" proc
  | Barrier_release -> Format.fprintf fmt "barrier release"
  | Lock_wait { proc; var; cell } ->
    Format.fprintf fmt "P%d lock-wait v%d[%d]" proc var cell
  | Lock_grant { proc; var; cell; from } ->
    Format.fprintf fmt "P%d lock-grant v%d[%d] from %d" proc var cell from
  | Steal { thief; victim; task } ->
    Format.fprintf fmt "P%d steals task %d from P%d" thief task victim
