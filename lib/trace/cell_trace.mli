(** Recorded layout-free traces.

    A cell trace is the durable form of one interpreted execution: the
    packed {!Cell_event} stream in program order plus the variable-id ->
    name table and the processor count it was recorded with.  Because the
    interpreter's schedule is layout-independent, a single trace replays
    under {e any} layout of the same program — the trace-once /
    replay-many contract the experiment drivers build on. *)

type t

val create : vars:string array -> nprocs:int -> t
(** [vars] maps variable ids (indices) to global names — the program's
    declaration order.
    @raise Invalid_argument on a non-positive [nprocs] or more than 256
    variables. *)

val recorder : t -> Cell_listener.t
(** Appends every delivered event to the trace. *)

val vars : t -> string array
val nprocs : t -> int
val length : t -> int

val var_id : t -> string -> int option

val get : t -> int -> Cell_event.t
(** @raise Invalid_argument out of range. *)

val iter : (Cell_event.t -> unit) -> t -> unit
val iter_packed : (int -> unit) -> t -> unit
val deliver : t -> Cell_listener.t -> unit
(** Re-deliver the recorded stream, in order. *)

val unsafe_data : t -> int array
(** The backing array of packed events.  Only indices
    [0 .. length t - 1] hold events (the array over-allocates for
    growth), and the array must not be mutated; it is exposed so the
    fused replay loop can iterate without a per-event closure call. *)

val equal : t -> t -> bool

(** {1 Capture to disk}

    Two little-endian binary formats, both written atomically (temp file
    + rename) and both understood by every reader here:

    - {b v1} ("FSTRACE1"): one flat 8-byte word per packed event.
    - {b v2} ("FSTRACE2"): events grouped into fixed-size blocks, each
      block delta + LEB128-varint encoded with a footer carrying its
      event count, payload length and CRC-32, plus a trailing index
      mapping block starts and [Barrier_release] positions to file
      offsets (so replay can seek to an epoch without scanning).  Block
      delta state resets at each boundary, making blocks independently —
      and concurrently — decodable.

    Readers sniff the magic; writers default to v2. *)

exception Corrupt of string

type format = V1 | V2

val default_format : format
(** What writers emit unless told otherwise: [V2]. *)

val format_version : format -> int
val format_of_version : int -> format option

val default_block_events : int
(** Events per v2 block unless overridden: 65536. *)

val file_format : string -> format
(** Sniff a trace file's magic.
    @raise Corrupt when the file is not a trace. *)

val write_file : ?format:format -> ?block_events:int -> t -> string -> unit
val read_file : string -> t
(** @raise Corrupt on malformed input, [Sys_error] on IO failure. *)

val write_channel : ?format:format -> ?block_events:int -> t -> out_channel -> unit
val read_channel : in_channel -> t

(** {1 Streaming capture}

    Record straight to disk — header first, then blocks as they fill —
    so a recording's heap cost is one encoder block, not the trace.
    This is what makes 10{^8}-event captures practical. *)

module Writer : sig
  type t

  val create :
    ?format:format ->
    ?block_events:int ->
    vars:string array ->
    nprocs:int ->
    string ->
    t
  (** Open a streaming writer targeting [path] (written as
      [path ^ ".tmp"], renamed on {!close}).
      @raise Invalid_argument on bad [nprocs] / [vars] /
      [block_events]. *)

  val push : t -> int -> unit
  (** Append one packed event.
      @raise Invalid_argument after {!close} / {!abort}. *)

  val recorder : t -> Cell_listener.t
  (** A listener that pushes every delivered event — plug it into
      [Interp.run_cells] to record without materializing the trace. *)

  val length : t -> int
  (** Events pushed so far. *)

  val close : t -> unit
  (** Finalize (v1: patch the length word; v2: flush the last block and
      write index + trailer) and atomically rename into place. *)

  val abort : t -> unit
  (** Discard: close and delete the temp file.  Idempotent, as is
      {!close}; whichever runs first wins. *)
end

(** {1 Streaming replay}

    For traces too large to hold in memory.  Both formats present the
    same shape: a sequence of blocks, each decoded on demand into a
    caller buffer, so peak heap is bounded by the block size however
    long the trace.  For v1 a block is a chunk-sized window of the
    memory-mapped word array; for v2 it is an encoded block, CRC-checked
    against its footer and located through the trailing index.  Headers
    and (v2) index geometry are validated eagerly at open time. *)

module Stream : sig
  type t

  val open_file : ?chunk:int -> string -> t
  (** [chunk] is the v1 window size in events (default 2{^20}); v2 block
      granularity is fixed by the file.
      @raise Corrupt on malformed or truncated input, [Sys_error] /
      [Unix.Unix_error] on IO failure,  [Invalid_argument] on a
      non-positive [chunk]. *)

  val format : t -> format
  val vars : t -> string array
  val nprocs : t -> int

  val length : t -> int
  (** Total events in the trace (not the window). *)

  val chunk : t -> int

  val byte_size : t -> int
  (** Size of the underlying file in bytes — the denominator for
      bytes/event and effective-bandwidth reporting. *)

  val nblocks : t -> int

  val block_events : t -> int -> int
  (** Events in block [k]. *)

  val block_start : t -> int -> int
  (** Global index of block [k]'s first event. *)

  val max_block_events : t -> int
  (** An upper bound on {!block_events} over all blocks — the buffer
      size {!decode_block} requires.  At least 1. *)

  val epochs : t -> int array option
  (** v2 only: the global event position of every [Barrier_release], in
      order, from the index — the seek points for epoch-addressed
      consumers. *)

  val decode_block : t -> int -> int array -> int
  (** [decode_block t k buf] decodes block [k] into [buf.(0 .. n - 1)]
      and returns [n].  Scratch state is per call, so distinct blocks of
      one open stream may be decoded from different domains
      concurrently.
      @raise Corrupt on a damaged block (the message names it),
      [Invalid_argument] if closed, [k] is out of range, or [buf] is
      smaller than {!max_block_events}. *)

  val iter_chunks : (int array -> int -> unit) -> t -> unit
  (** [iter_chunks f s] calls [f buf n] for each successive block: the
      packed events are [buf.(0 .. n - 1)], in trace order.  [buf] is
      {e one reused array} — callers must consume (or copy) its contents
      before returning, and must not hold references to it across
      calls. *)

  val close : t -> unit
  (** Fence further iteration ([iter_chunks] / [decode_block] then raise
      [Invalid_argument]); the mapping itself is reclaimed by the GC. *)
end

val of_file_stream : ?chunk:int -> string -> Stream.t
(** Alias for {!Stream.open_file}. *)
