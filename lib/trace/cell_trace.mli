(** Recorded layout-free traces.

    A cell trace is the durable form of one interpreted execution: the
    packed {!Cell_event} stream in program order plus the variable-id ->
    name table and the processor count it was recorded with.  Because the
    interpreter's schedule is layout-independent, a single trace replays
    under {e any} layout of the same program — the trace-once /
    replay-many contract the experiment drivers build on. *)

type t

val create : vars:string array -> nprocs:int -> t
(** [vars] maps variable ids (indices) to global names — the program's
    declaration order.
    @raise Invalid_argument on a non-positive [nprocs] or more than 256
    variables. *)

val recorder : t -> Cell_listener.t
(** Appends every delivered event to the trace. *)

val vars : t -> string array
val nprocs : t -> int
val length : t -> int

val var_id : t -> string -> int option

val get : t -> int -> Cell_event.t
(** @raise Invalid_argument out of range. *)

val iter : (Cell_event.t -> unit) -> t -> unit
val iter_packed : (int -> unit) -> t -> unit
val deliver : t -> Cell_listener.t -> unit
(** Re-deliver the recorded stream, in order. *)

val unsafe_data : t -> int array
(** The backing array of packed events.  Only indices
    [0 .. length t - 1] hold events (the array over-allocates for
    growth), and the array must not be mutated; it is exposed so the
    fused replay loop can iterate without a per-event closure call. *)

val equal : t -> t -> bool

(** {1 Capture to disk}

    Little-endian binary format, written atomically (temp file + rename). *)

exception Corrupt of string

val write_file : t -> string -> unit
val read_file : string -> t
(** @raise Corrupt on malformed input, [Sys_error] on IO failure. *)

val write_channel : t -> out_channel -> unit
val read_channel : in_channel -> t
