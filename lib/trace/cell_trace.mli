(** Recorded layout-free traces.

    A cell trace is the durable form of one interpreted execution: the
    packed {!Cell_event} stream in program order plus the variable-id ->
    name table and the processor count it was recorded with.  Because the
    interpreter's schedule is layout-independent, a single trace replays
    under {e any} layout of the same program — the trace-once /
    replay-many contract the experiment drivers build on. *)

type t

val create : vars:string array -> nprocs:int -> t
(** [vars] maps variable ids (indices) to global names — the program's
    declaration order.
    @raise Invalid_argument on a non-positive [nprocs] or more than 256
    variables. *)

val recorder : t -> Cell_listener.t
(** Appends every delivered event to the trace. *)

val vars : t -> string array
val nprocs : t -> int
val length : t -> int

val var_id : t -> string -> int option

val get : t -> int -> Cell_event.t
(** @raise Invalid_argument out of range. *)

val iter : (Cell_event.t -> unit) -> t -> unit
val iter_packed : (int -> unit) -> t -> unit
val deliver : t -> Cell_listener.t -> unit
(** Re-deliver the recorded stream, in order. *)

val unsafe_data : t -> int array
(** The backing array of packed events.  Only indices
    [0 .. length t - 1] hold events (the array over-allocates for
    growth), and the array must not be mutated; it is exposed so the
    fused replay loop can iterate without a per-event closure call. *)

val equal : t -> t -> bool

(** {1 Capture to disk}

    Little-endian binary format, written atomically (temp file + rename). *)

exception Corrupt of string

val write_file : t -> string -> unit
val read_file : string -> t
(** @raise Corrupt on malformed input, [Sys_error] on IO failure. *)

val write_channel : t -> out_channel -> unit
val read_channel : in_channel -> t

(** {1 Streaming}

    For traces too large to hold in memory: the same on-disk format,
    read through a chunked window instead of one whole-file load.  The
    header (names, counts) is parsed and validated eagerly — including
    the event count against the file size, so a truncated file fails at
    open time with {!Corrupt} — and the event section is memory-mapped,
    so peak heap use is bounded by the chunk size, not the trace
    length. *)

module Stream : sig
  type t

  val open_file : ?chunk:int -> string -> t
  (** [chunk] is the window size in events (default 2{^20}).
      @raise Corrupt on malformed or truncated input, [Sys_error] /
      [Unix.Unix_error] on IO failure,  [Invalid_argument] on a
      non-positive [chunk]. *)

  val vars : t -> string array
  val nprocs : t -> int

  val length : t -> int
  (** Total events in the trace (not the window). *)

  val chunk : t -> int

  val iter_chunks : (int array -> int -> unit) -> t -> unit
  (** [iter_chunks f s] calls [f buf n] for each successive window: the
      packed events are [buf.(0 .. n - 1)], in trace order, with [n] the
      chunk size except possibly for the final window.  [buf] is {e one
      reused array} — callers must consume (or copy) its contents before
      returning, and must not hold references to it across calls. *)

  val close : t -> unit
  (** Fence further iteration ([iter_chunks] then raises
      [Invalid_argument]); the mapping itself is reclaimed by the GC. *)
end

val of_file_stream : ?chunk:int -> string -> Stream.t
(** Alias for {!Stream.open_file}. *)
