type t = {
  vars : string array;
  ids : (string, int) Hashtbl.t;  (* name -> variable id, built once *)
  nprocs : int;
  mutable data : int array;
  mutable len : int;
}

let id_table vars =
  let ids = Hashtbl.create (Array.length vars) in
  Array.iteri (fun i name -> if not (Hashtbl.mem ids name) then Hashtbl.add ids name i) vars;
  ids

let create ~vars ~nprocs =
  if nprocs <= 0 then invalid_arg "Cell_trace.create: nprocs must be positive";
  if Array.length vars > Cell_event.max_var + 1 then
    invalid_arg "Cell_trace.create: too many variables";
  { vars; ids = id_table vars; nprocs; data = Array.make 1024 0; len = 0 }

let vars t = t.vars
let nprocs t = t.nprocs
let length t = t.len

let var_id t name = Hashtbl.find_opt t.ids name

let push t packed =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- packed;
  t.len <- t.len + 1

let listener_of_push push =
  {
    Cell_listener.access =
      (fun ~proc ~write ~var ~cell ->
        push (Cell_event.pack (Access { proc; write; var; cell })));
    work = (fun ~proc ~amount -> push (Cell_event.pack (Work { proc; amount })));
    barrier_arrive =
      (fun ~proc -> push (Cell_event.pack (Barrier_arrive { proc })));
    barrier_release = (fun () -> push (Cell_event.pack Barrier_release));
    lock_wait =
      (fun ~proc ~var ~cell ->
        push (Cell_event.pack (Lock_wait { proc; var; cell })));
    lock_grant =
      (fun ~proc ~var ~cell ~from ->
        push (Cell_event.pack (Lock_grant { proc; var; cell; from })));
    steal =
      (fun ~thief ~victim ~task ->
        push (Cell_event.pack (Steal { thief; victim; task })));
  }

let recorder t = listener_of_push (push t)

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Cell_trace.get: out of range";
  Cell_event.unpack t.data.(i)

let iter_packed f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let unsafe_data t = t.data

let iter f t = iter_packed (fun packed -> f (Cell_event.unpack packed)) t

let deliver t listener = iter (Cell_listener.dispatch listener) t

let equal a b =
  a.nprocs = b.nprocs && a.vars = b.vars && a.len = b.len
  &&
  let rec go i = i >= a.len || (a.data.(i) = b.data.(i) && go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Disk formats.  Both are little-endian with 64-bit header fields.

   v1 — flat words:

     "FSTRACE1" | nprocs | nvars | (name length | name bytes)* | len
     | len x 8-byte packed events

   v2 — delta/varint blocks with a trailing index:

     "FSTRACE2" | nprocs | nvars | (name length | name bytes)*
     | block_events
     | block*      each block: payload bytes
                   ++ footer (events | payload length | CRC-32 of payload)
     | index       nblocks | (payload offset | events)* per block
                   | nepochs | (global event position of each
                     Barrier_release)* | total events
     | trailer     index offset | CRC-32 of index | "FSTRIDX2"

   Blocks are located through the index (the footer trails its payload,
   so a forward scan cannot skip a block without decoding it); the
   trailer is found from the end of the file.  Each block's delta state
   resets, so any block decodes independently — that is what lets the
   streamed replay hand blocks to pool workers in parallel and lets an
   epoch seek start at a block boundary.

   Per-event encoding inside a block.  The lead byte's low 3 bits are
   the event tag, with two pseudo-tags for the hot path:

     tag 6 / 7     compact read / write access: var = last var this
                   proc touched, cell = last cell there + 1 (the
                   sequential inner-loop pattern).  Bits 3-7 hold q:
                   q <= 29 encodes zigzag(proc - prev proc) inline,
                   q = 31 means an explicit proc varint follows, and
                   lead byte 0xF6 (tag 6, q = 30) escapes to a Steal
                   event: varints thief, victim, task follow and the
                   previous-proc register becomes the thief.  0xFE
                   (tag 7, q = 30) stays reserved.
     tags 0-5      standard form: bit 3 = write flag (Access),
                   bits 4-5 proc code (0 same as previous event's,
                   1 previous + 1, 2 explicit varint), bits 6-7
                   payload code — for cell-bearing tags the cell delta
                   vs the last cell of (proc, var) (0 -> +1, 1 -> +0,
                   2 -> explicit zigzag varint); for Work the amount
                   vs this proc's last (0 -> same, 2 -> explicit
                   zigzag delta).
                   Trailing fields, in order: proc varint (code 2);
                   zigzag var delta vs this proc's last var (Access /
                   Lock_wait / Lock_grant, always); cell delta varint
                   (code 2); from + 1 varint (Lock_grant); amount
                   delta varint (Work, code 2).

   Barrier_release (lead byte 0x03) does not update the previous-proc
   register; every other event does. *)

let magic_v1 = "FSTRACE1"
let magic_v2 = "FSTRACE2"
let magic_index = "FSTRIDX2"

type format = V1 | V2

let format_version = function V1 -> 1 | V2 -> 2
let format_of_version = function 1 -> Some V1 | 2 -> Some V2 | _ -> None
let default_format = V2
let default_block_events = 1 lsl 16

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let format_of_magic m =
  if String.equal m magic_v1 then Some V1
  else if String.equal m magic_v2 then Some V2
  else None

let read_magic ic =
  let m = Bytes.create 8 in
  (try really_input ic m 0 8 with End_of_file -> corrupt "truncated trace");
  match format_of_magic (Bytes.to_string m) with
  | Some f -> f
  | None -> corrupt "bad magic"

let file_format path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_magic ic)

(* ------------------------------------------------------------------ *)
(* v1 writer / reader (flat words). *)

let write_channel_v1 t oc =
  let b = Bytes.create 8 in
  let w64 n =
    Bytes.set_int64_le b 0 (Int64.of_int n);
    output_bytes oc b
  in
  output_string oc magic_v1;
  w64 t.nprocs;
  w64 (Array.length t.vars);
  Array.iter
    (fun name ->
      w64 (String.length name);
      output_string oc name)
    t.vars;
  w64 t.len;
  for i = 0 to t.len - 1 do
    w64 t.data.(i)
  done

(* Parse and validate the v1 header after its magic; returns the header
   fields with the channel positioned at the first event.  Shared by the
   in-memory reader and the streaming one. *)
let read_v1_header ic =
  let b = Bytes.create 8 in
  let r64 () =
    (try really_input ic b 0 8 with End_of_file -> corrupt "truncated trace");
    Int64.to_int (Bytes.get_int64_le b 0)
  in
  let nprocs = r64 () in
  if nprocs <= 0 || nprocs > Cell_event.max_proc + 1 then
    corrupt "bad nprocs %d" nprocs;
  let nvars = r64 () in
  if nvars < 0 || nvars > Cell_event.max_var + 1 then corrupt "bad nvars %d" nvars;
  let vars =
    Array.init nvars (fun _ ->
        let n = r64 () in
        if n < 0 || n > 4096 then corrupt "bad name length %d" n;
        let s = Bytes.create n in
        (try really_input ic s 0 n with End_of_file -> corrupt "truncated trace");
        Bytes.to_string s)
  in
  let len = r64 () in
  if len < 0 then corrupt "bad length %d" len;
  (nprocs, vars, len)

let read_channel_v1 ic =
  let nprocs, vars, len = read_v1_header ic in
  (* the event section is one bulk read: a single [really_input] of
     [len * 8] bytes decoded in place, instead of one 8-byte read per
     event — truncation still surfaces as [Corrupt] *)
  let data = Array.make (max len 1) 0 in
  if len > 0 then begin
    let raw =
      try Bytes.create (len * 8)
      with Invalid_argument _ -> corrupt "bad length %d" len
    in
    (try really_input ic raw 0 (len * 8)
     with End_of_file -> corrupt "truncated trace");
    for i = 0 to len - 1 do
      data.(i) <- Int64.to_int (Bytes.get_int64_le raw (i * 8))
    done
  end;
  { vars; ids = id_table vars; nprocs; data; len }

(* ------------------------------------------------------------------ *)
(* v2 encoder. *)

let[@inline] zigzag v = (v lsl 1) lxor (v asr 62)
let[@inline] unzigzag u = (u lsr 1) lxor (-(u land 1))

let rec put_varint b v =
  if v < 0x80 then Buffer.add_char b (Char.unsafe_chr v)
  else begin
    Buffer.add_char b (Char.unsafe_chr (0x80 lor (v land 0x7f)));
    put_varint b (v lsr 7)
  end

(* Per-block delta state; reset at every block boundary so each block
   decodes independently of the others. *)
type enc = {
  en_nprocs : int;
  en_nvars : int;
  en_buf : Buffer.t;
  en_last_var : int array;     (* per proc: last var touched *)
  en_last_amount : int array;  (* per proc: last work amount *)
  en_last_cell : int array;    (* proc * nvars + var: last cell touched *)
  mutable en_prev_proc : int;
}

let enc_create ~nprocs ~nvars =
  {
    en_nprocs = nprocs;
    en_nvars = nvars;
    en_buf = Buffer.create (1 lsl 16);
    en_last_var = Array.make (max 1 nprocs) 0;
    en_last_amount = Array.make (max 1 nprocs) 0;
    en_last_cell = Array.make (max 1 (nprocs * nvars)) 0;
    en_prev_proc = 0;
  }

let enc_reset e =
  Buffer.clear e.en_buf;
  Array.fill e.en_last_var 0 (Array.length e.en_last_var) 0;
  Array.fill e.en_last_amount 0 (Array.length e.en_last_amount) 0;
  Array.fill e.en_last_cell 0 (Array.length e.en_last_cell) 0;
  e.en_prev_proc <- 0

let[@inline] enc_pcode e proc =
  if proc = e.en_prev_proc then 0 else if proc = e.en_prev_proc + 1 then 1 else 2

let enc_field_guard e ~proc ~var =
  if proc >= e.en_nprocs || var >= e.en_nvars then
    invalid_arg "Cell_trace: event proc/var exceeds the trace header"

let enc_event e packed =
  let buf = e.en_buf in
  let tag = packed land 7 in
  match tag with
  | 0 ->
    let proc = Cell_event.packed_proc packed in
    let var = Cell_event.packed_var packed in
    let cell = Cell_event.packed_cell packed in
    let write = Cell_event.packed_write packed in
    enc_field_guard e ~proc ~var;
    let ctx = (proc * e.en_nvars) + var in
    let d = cell - e.en_last_cell.(ctx) in
    if d = 1 && var = e.en_last_var.(proc) then begin
      (* compact access: the sequential inner-loop case, one byte *)
      let q = zigzag (proc - e.en_prev_proc) in
      let lead = if write then 7 else 6 in
      if q <= 29 then Buffer.add_char buf (Char.unsafe_chr (lead lor (q lsl 3)))
      else begin
        Buffer.add_char buf (Char.unsafe_chr (lead lor (31 lsl 3)));
        put_varint buf proc
      end
    end
    else begin
      let pcode = enc_pcode e proc in
      let ccode = if d = 1 then 0 else if d = 0 then 1 else 2 in
      Buffer.add_char buf
        (Char.unsafe_chr
           (tag lor (if write then 8 else 0) lor (pcode lsl 4) lor (ccode lsl 6)));
      if pcode = 2 then put_varint buf proc;
      put_varint buf (zigzag (var - e.en_last_var.(proc)));
      if ccode = 2 then put_varint buf (zigzag d)
    end;
    e.en_last_var.(proc) <- var;
    e.en_last_cell.(ctx) <- cell;
    e.en_prev_proc <- proc
  | 1 ->
    let proc = Cell_event.packed_proc packed in
    let amount = Cell_event.packed_amount packed in
    enc_field_guard e ~proc ~var:0;
    let pcode = enc_pcode e proc in
    let acode = if amount = e.en_last_amount.(proc) then 0 else 2 in
    Buffer.add_char buf (Char.unsafe_chr (tag lor (pcode lsl 4) lor (acode lsl 6)));
    if pcode = 2 then put_varint buf proc;
    if acode = 2 then put_varint buf (zigzag (amount - e.en_last_amount.(proc)));
    e.en_last_amount.(proc) <- amount;
    e.en_prev_proc <- proc
  | 2 ->
    let proc = Cell_event.packed_proc packed in
    enc_field_guard e ~proc ~var:0;
    let pcode = enc_pcode e proc in
    Buffer.add_char buf (Char.unsafe_chr (tag lor (pcode lsl 4)));
    if pcode = 2 then put_varint buf proc;
    e.en_prev_proc <- proc
  | 3 -> Buffer.add_char buf '\003'
  | 4 | 5 ->
    let proc = Cell_event.packed_proc packed in
    let var = Cell_event.packed_var packed in
    let cell =
      if tag = 5 then Cell_event.packed_grant_cell packed
      else Cell_event.packed_cell packed
    in
    enc_field_guard e ~proc ~var;
    let ctx = (proc * e.en_nvars) + var in
    let d = cell - e.en_last_cell.(ctx) in
    let pcode = enc_pcode e proc in
    let ccode = if d = 1 then 0 else if d = 0 then 1 else 2 in
    Buffer.add_char buf (Char.unsafe_chr (tag lor (pcode lsl 4) lor (ccode lsl 6)));
    if pcode = 2 then put_varint buf proc;
    put_varint buf (zigzag (var - e.en_last_var.(proc)));
    if ccode = 2 then put_varint buf (zigzag d);
    if tag = 5 then put_varint buf (Cell_event.packed_grant_from1 packed);
    e.en_last_var.(proc) <- var;
    e.en_last_cell.(ctx) <- cell;
    e.en_prev_proc <- proc
  | 6 ->
    (* steal: escape through the reserved compact-access lead byte *)
    let thief = Cell_event.packed_proc packed in
    let victim = Cell_event.packed_var packed in
    let task = Cell_event.packed_cell packed in
    if thief >= e.en_nprocs || victim >= e.en_nprocs then
      invalid_arg "Cell_trace: steal thief/victim exceeds the trace header";
    Buffer.add_char buf '\xf6';
    put_varint buf thief;
    put_varint buf victim;
    put_varint buf task;
    e.en_prev_proc <- thief
  | _ -> invalid_arg "Cell_trace: bad packed tag"

(* Streaming v2 emitter over an out_channel: header at create, one block
   flushed per [v2_block_events] events, index + trailer at finish. *)
type v2_writer = {
  v_oc : out_channel;
  v_block_events : int;
  v_enc : enc;
  v_b8 : Bytes.t;
  mutable v_in_block : int;
  mutable v_total : int;
  mutable v_pos : int;  (* running file offset *)
  mutable v_blocks_rev : (int * int) list;  (* payload offset, events *)
  mutable v_epochs_rev : int list;
}

let vw64 w n =
  Bytes.set_int64_le w.v_b8 0 (Int64.of_int n);
  output_bytes w.v_oc w.v_b8;
  w.v_pos <- w.v_pos + 8

let v2_start oc ~vars ~nprocs ~block_events =
  if block_events <= 0 then
    invalid_arg "Cell_trace: block_events must be positive";
  let w =
    {
      v_oc = oc;
      v_block_events = block_events;
      v_enc = enc_create ~nprocs ~nvars:(Array.length vars);
      v_b8 = Bytes.create 8;
      v_in_block = 0;
      v_total = 0;
      v_pos = 0;
      v_blocks_rev = [];
      v_epochs_rev = [];
    }
  in
  output_string oc magic_v2;
  w.v_pos <- 8;
  vw64 w nprocs;
  vw64 w (Array.length vars);
  Array.iter
    (fun name ->
      vw64 w (String.length name);
      output_string oc name;
      w.v_pos <- w.v_pos + String.length name)
    vars;
  vw64 w block_events;
  w

let v2_flush_block w =
  if w.v_in_block > 0 then begin
    let payload = Buffer.contents w.v_enc.en_buf in
    let plen = String.length payload in
    w.v_blocks_rev <- (w.v_pos, w.v_in_block) :: w.v_blocks_rev;
    output_string w.v_oc payload;
    w.v_pos <- w.v_pos + plen;
    vw64 w w.v_in_block;
    vw64 w plen;
    vw64 w (Fs_util.Crc32.of_string payload);
    w.v_in_block <- 0;
    enc_reset w.v_enc
  end

let v2_push w packed =
  if Cell_event.packed_tag packed = Cell_event.tag_barrier_release then
    w.v_epochs_rev <- w.v_total :: w.v_epochs_rev;
  enc_event w.v_enc packed;
  w.v_in_block <- w.v_in_block + 1;
  w.v_total <- w.v_total + 1;
  if w.v_in_block >= w.v_block_events then v2_flush_block w

let v2_finish w =
  v2_flush_block w;
  let ib = Buffer.create 1024 in
  let a64 n = Buffer.add_int64_le ib (Int64.of_int n) in
  let blocks = List.rev w.v_blocks_rev in
  a64 (List.length blocks);
  List.iter
    (fun (off, n) ->
      a64 off;
      a64 n)
    blocks;
  let epochs = List.rev w.v_epochs_rev in
  a64 (List.length epochs);
  List.iter a64 epochs;
  a64 w.v_total;
  let index = Buffer.contents ib in
  let index_off = w.v_pos in
  output_string w.v_oc index;
  w.v_pos <- w.v_pos + String.length index;
  vw64 w index_off;
  vw64 w (Fs_util.Crc32.of_string index);
  output_string w.v_oc magic_index;
  w.v_pos <- w.v_pos + 8

let write_channel ?(format = default_format) ?(block_events = default_block_events)
    t oc =
  match format with
  | V1 -> write_channel_v1 t oc
  | V2 ->
    let w = v2_start oc ~vars:t.vars ~nprocs:t.nprocs ~block_events in
    for i = 0 to t.len - 1 do
      v2_push w t.data.(i)
    done;
    v2_finish w

let write_file ?format ?block_events t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> write_channel ?format ?block_events t oc);
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* v2 decoder, over the whole file as a byte bigarray (memory map or a
   slurped channel).  All scratch is per call, so concurrent decodes of
   different blocks of one open stream are safe. *)

type bigstring = Fs_util.Crc32.bigstring

let[@inline] get_byte (map : bigstring) i =
  Char.code (Bigarray.Array1.unsafe_get map i)

(* Unsigned LE 64-bit read as an OCaml int.  Well-formed files never
   carry values near 2^62; a corrupt huge value wraps negative and fails
   the range checks downstream. *)
let get64 (map : bigstring) i =
  let v = ref 0 in
  for k = 7 downto 0 do
    v := (!v lsl 8) lor get_byte map (i + k)
  done;
  !v

let read_varint map pos limit ~block =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= limit then corrupt "block %d: truncated varint" block;
    if !shift > 62 then corrupt "block %d: varint too long" block;
    let b = get_byte map !pos in
    incr pos;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then continue := false
  done;
  !v

(* Decode [count] events of the payload at [pos, pos + plen) into
   [dst.(dst_off ..)].  Every decoded field is range-checked before the
   unchecked pack, so data that defeats the CRC still cannot produce
   packed events outside the event invariants. *)
let decode_v2_payload map ~pos ~plen ~count ~block ~nprocs ~nvars dst dst_off =
  let limit = pos + plen in
  let pos = ref pos in
  let last_var = Array.make (max 1 nprocs) 0 in
  let last_amount = Array.make (max 1 nprocs) 0 in
  let last_cell = Array.make (max 1 (nprocs * nvars)) 0 in
  let prev_proc = ref 0 in
  for n = dst_off to dst_off + count - 1 do
    if !pos >= limit then corrupt "block %d: truncated payload" block;
    let b = get_byte map !pos in
    incr pos;
    let tag = b land 7 in
    if tag >= 6 then begin
      let q = b lsr 3 in
      if q = 30 then begin
        (* 0xF6: steal escape (0xFE stays reserved) *)
        if tag = 7 then corrupt "block %d: reserved proc code" block;
        let thief = read_varint map pos limit ~block in
        let victim = read_varint map pos limit ~block in
        let task = read_varint map pos limit ~block in
        if thief >= nprocs || victim >= nprocs then
          corrupt "block %d: steal proc out of range" block;
        if task > Cell_event.max_wide_cell then
          corrupt "block %d: task out of range" block;
        dst.(n) <- Cell_event.unsafe_pack_steal ~thief ~victim ~task;
        prev_proc := thief
      end
      else begin
        (* compact access *)
        let proc =
          if q = 31 then read_varint map pos limit ~block
          else !prev_proc + unzigzag q
        in
        if proc < 0 || proc >= nprocs then
          corrupt "block %d: proc %d out of range" block proc;
        let var = last_var.(proc) in
        let ctx = (proc * nvars) + var in
        let cell = last_cell.(ctx) + 1 in
        if cell > Cell_event.max_wide_cell then
          corrupt "block %d: cell out of range" block;
        dst.(n) <- Cell_event.unsafe_pack_access ~write:(tag = 7) ~proc ~var ~cell;
        last_cell.(ctx) <- cell;
        prev_proc := proc
      end
    end
    else if tag = 3 then begin
      if b <> 3 then corrupt "block %d: bad release lead byte" block;
      dst.(n) <- Cell_event.tag_barrier_release
    end
    else begin
      let proc =
        match (b lsr 4) land 3 with
        | 0 -> !prev_proc
        | 1 -> !prev_proc + 1
        | 2 -> read_varint map pos limit ~block
        | _ -> corrupt "block %d: reserved proc code" block
      in
      if proc < 0 || proc >= nprocs then
        corrupt "block %d: proc %d out of range" block proc;
      (match tag with
      | 0 | 4 | 5 ->
        let dv = unzigzag (read_varint map pos limit ~block) in
        let var = last_var.(proc) + dv in
        if var < 0 || var >= nvars then
          corrupt "block %d: var %d out of range" block var;
        let ctx = (proc * nvars) + var in
        let d =
          match b lsr 6 with
          | 0 -> 1
          | 1 -> 0
          | 2 -> unzigzag (read_varint map pos limit ~block)
          | _ -> corrupt "block %d: reserved cell code" block
        in
        let cell = last_cell.(ctx) + d in
        if cell < 0 then corrupt "block %d: cell out of range" block;
        (if tag = 5 then begin
           let from1 = read_varint map pos limit ~block in
           if from1 > Cell_event.max_proc + 1 then
             corrupt "block %d: bad lock source" block;
           if cell > Cell_event.max_cell then
             corrupt "block %d: cell out of range" block;
           dst.(n) <- Cell_event.unsafe_pack_lock_grant ~proc ~var ~from1 ~cell
         end
         else begin
           if cell > Cell_event.max_wide_cell then
             corrupt "block %d: cell out of range" block;
           dst.(n) <-
             (if tag = 0 then
                Cell_event.unsafe_pack_access ~write:(b land 8 <> 0) ~proc ~var
                  ~cell
              else Cell_event.unsafe_pack_lock_wait ~proc ~var ~cell)
         end);
        last_var.(proc) <- var;
        last_cell.(ctx) <- cell
      | 1 ->
        let amount =
          match b lsr 6 with
          | 0 -> last_amount.(proc)
          | 2 -> last_amount.(proc) + unzigzag (read_varint map pos limit ~block)
          | _ -> corrupt "block %d: reserved amount code" block
        in
        if amount < 0 || amount > Cell_event.max_amount then
          corrupt "block %d: amount out of range" block;
        dst.(n) <- Cell_event.unsafe_pack_work ~proc ~amount;
        last_amount.(proc) <- amount
      | 2 ->
        if b lsr 6 <> 0 then corrupt "block %d: bad arrive lead byte" block;
        dst.(n) <- Cell_event.unsafe_pack_barrier_arrive ~proc
      | _ -> assert false);
      prev_proc := proc
    end
  done;
  if !pos <> limit then
    corrupt "block %d: %d trailing payload bytes" block (limit - !pos)

(* Parsed v2 geometry: everything but the payloads, validated. *)
type v2_info = {
  i_nprocs : int;
  i_vars : string array;
  i_block_events : int;
  i_offsets : int array;  (* payload start per block *)
  i_lens : int array;     (* payload bytes per block *)
  i_counts : int array;   (* events per block *)
  i_starts : int array;   (* first event index per block *)
  i_epochs : int array;   (* event position of each Barrier_release *)
  i_total : int;
}

let parse_v2 (map : bigstring) =
  let l = Bigarray.Array1.dim map in
  if l < 8 + (3 * 8) + 24 then corrupt "truncated trace";
  let pos = ref 8 in
  let r64 () =
    if !pos + 8 > l then corrupt "truncated trace";
    let v = get64 map !pos in
    pos := !pos + 8;
    v
  in
  let nprocs = r64 () in
  if nprocs <= 0 || nprocs > Cell_event.max_proc + 1 then
    corrupt "bad nprocs %d" nprocs;
  let nvars = r64 () in
  if nvars < 0 || nvars > Cell_event.max_var + 1 then corrupt "bad nvars %d" nvars;
  let vars = Array.make nvars "" in
  for i = 0 to nvars - 1 do
    let n = r64 () in
    if n < 0 || n > 4096 then corrupt "bad name length %d" n;
    if !pos + n > l then corrupt "truncated trace";
    vars.(i) <- String.init n (fun k -> Bigarray.Array1.get map (!pos + k));
    pos := !pos + n
  done;
  let block_events = r64 () in
  if block_events <= 0 || block_events > 1 lsl 30 then
    corrupt "bad block size %d" block_events;
  let header_end = !pos in
  (* trailer *)
  if String.init 8 (fun i -> Bigarray.Array1.get map (l - 8 + i)) <> magic_index
  then corrupt "bad index trailer (truncated trace?)";
  let index_off = get64 map (l - 24) in
  let index_crc = get64 map (l - 16) in
  if index_off < header_end || index_off > l - 24 then corrupt "bad index offset";
  let index_end = l - 24 in
  if Fs_util.Crc32.of_bigstring_sub map index_off (index_end - index_off)
     <> index_crc
  then corrupt "index checksum mismatch";
  pos := index_off;
  let r64i () =
    if !pos + 8 > index_end then corrupt "truncated index";
    let v = get64 map !pos in
    pos := !pos + 8;
    v
  in
  let nblocks = r64i () in
  if nblocks < 0 || nblocks > (index_end - index_off) / 16 then
    corrupt "bad block count %d" nblocks;
  let offsets = Array.make nblocks 0 in
  let counts = Array.make nblocks 0 in
  for k = 0 to nblocks - 1 do
    offsets.(k) <- r64i ();
    counts.(k) <- r64i ()
  done;
  let nepochs = r64i () in
  if nepochs < 0 || nepochs > (index_end - index_off) / 8 then
    corrupt "bad epoch count %d" nepochs;
  let epochs = Array.make nepochs 0 in
  for k = 0 to nepochs - 1 do
    epochs.(k) <- r64i ()
  done;
  let total = r64i () in
  if !pos <> index_end then corrupt "index has trailing bytes";
  if total < 0 then corrupt "bad event count %d" total;
  let lens = Array.make nblocks 0 in
  let starts = Array.make nblocks 0 in
  let sum = ref 0 in
  for k = 0 to nblocks - 1 do
    let off = offsets.(k) in
    let expect = if k = 0 then header_end else offsets.(k - 1) in
    if off < expect || off > index_off then corrupt "block %d: bad offset" k;
    let next = if k + 1 < nblocks then offsets.(k + 1) else index_off in
    let plen = next - off - 24 in
    if plen < 0 then corrupt "block %d: bad extent" k;
    lens.(k) <- plen;
    starts.(k) <- !sum;
    let c = counts.(k) in
    if c <= 0 || c > block_events then
      corrupt "block %d: bad event count %d" k c;
    sum := !sum + c
  done;
  if nblocks > 0 && offsets.(0) <> header_end then corrupt "block 0: bad offset";
  if nblocks = 0 && index_off <> header_end then corrupt "orphan bytes before index";
  if total <> !sum then
    corrupt "event count mismatch: index says %d, blocks hold %d" total !sum;
  let last = ref (-1) in
  Array.iter
    (fun e ->
      if e <= !last || e >= total then corrupt "bad epoch position %d" e;
      last := e)
    epochs;
  {
    i_nprocs = nprocs;
    i_vars = vars;
    i_block_events = block_events;
    i_offsets = offsets;
    i_lens = lens;
    i_counts = counts;
    i_starts = starts;
    i_epochs = epochs;
    i_total = total;
  }

(* Verify one block's footer + CRC against the index, then decode its
   payload into [dst] at [dst_off].  Raises [Corrupt] naming the block. *)
let decode_v2_block (map : bigstring) info k dst dst_off =
  let off = info.i_offsets.(k) in
  let plen = info.i_lens.(k) in
  let count = info.i_counts.(k) in
  let fpos = off + plen in
  if get64 map fpos <> count || get64 map (fpos + 8) <> plen then
    corrupt "block %d: footer disagrees with index" k;
  if Fs_util.Crc32.of_bigstring_sub map off plen <> get64 map (fpos + 16) then
    corrupt "block %d: checksum mismatch" k;
  decode_v2_payload map ~pos:off ~plen ~count ~block:k ~nprocs:info.i_nprocs
    ~nvars:(Array.length info.i_vars) dst dst_off

let of_v2_map map =
  let info = parse_v2 map in
  let data = Array.make (max info.i_total 1) 0 in
  for k = 0 to Array.length info.i_offsets - 1 do
    decode_v2_block map info k data info.i_starts.(k)
  done;
  {
    vars = info.i_vars;
    ids = id_table info.i_vars;
    nprocs = info.i_nprocs;
    data;
    len = info.i_total;
  }

let map_whole_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      Bigarray.array1_of_genarray
        (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |]))

let read_channel ic =
  match read_magic ic with
  | V1 -> read_channel_v1 ic
  | V2 ->
    (* channels cannot be mapped: slurp the rest and parse in memory *)
    let rest = In_channel.input_all ic in
    let n = 8 + String.length rest in
    let map = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n in
    String.iteri (fun i c -> Bigarray.Array1.set map i c) magic_v2;
    String.iteri (fun i c -> Bigarray.Array1.set map (8 + i) c) rest;
    of_v2_map map

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match read_magic ic with
      | V1 -> read_channel_v1 ic
      | V2 -> of_v2_map (map_whole_file path))

(* ------------------------------------------------------------------ *)
(* Streaming writer: record straight to disk without holding the trace
   in memory — the path that makes 10^8-event recordings practical. *)

module Writer = struct
  type body =
    | W1 of { w1_len_pos : int }  (* the length word, patched at close *)
    | W2 of v2_writer

  type w = {
    w_oc : out_channel;
    w_tmp : string;
    w_path : string;
    w_body : body;
    mutable w_len : int;
    mutable w_done : bool;
  }

  type nonrec t = w

  let create ?(format = default_format) ?(block_events = default_block_events)
      ~vars ~nprocs path =
    if nprocs <= 0 || nprocs > Cell_event.max_proc + 1 then
      invalid_arg "Cell_trace.Writer.create: bad nprocs";
    if Array.length vars > Cell_event.max_var + 1 then
      invalid_arg "Cell_trace.Writer.create: too many variables";
    if block_events <= 0 then
      invalid_arg "Cell_trace.Writer.create: block_events must be positive";
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    match
      match format with
      | V2 -> W2 (v2_start oc ~vars ~nprocs ~block_events)
      | V1 ->
        let b = Bytes.create 8 in
        let w64 n =
          Bytes.set_int64_le b 0 (Int64.of_int n);
          output_bytes oc b
        in
        output_string oc magic_v1;
        w64 nprocs;
        w64 (Array.length vars);
        Array.iter
          (fun name ->
            w64 (String.length name);
            output_string oc name)
          vars;
        let len_pos = pos_out oc in
        w64 0;
        W1 { w1_len_pos = len_pos }
    with
    | body ->
      { w_oc = oc; w_tmp = tmp; w_path = path; w_body = body; w_len = 0;
        w_done = false }
    | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

  let push t packed =
    if t.w_done then invalid_arg "Cell_trace.Writer.push: closed";
    (match t.w_body with
    | W1 _ ->
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.of_int packed);
      output_bytes t.w_oc b
    | W2 w -> v2_push w packed);
    t.w_len <- t.w_len + 1

  let length t = t.w_len
  let recorder t = listener_of_push (push t)

  let close t =
    if not t.w_done then begin
      t.w_done <- true;
      (match t.w_body with
      | W1 { w1_len_pos } ->
        seek_out t.w_oc w1_len_pos;
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 (Int64.of_int t.w_len);
        output_bytes t.w_oc b
      | W2 w -> v2_finish w);
      close_out t.w_oc;
      Sys.rename t.w_tmp t.w_path
    end

  let abort t =
    if not t.w_done then begin
      t.w_done <- true;
      close_out_noerr t.w_oc;
      (try Sys.remove t.w_tmp with Sys_error _ -> ())
    end
end

(* ------------------------------------------------------------------ *)
(* Streaming reader.  Both formats present the same shape: a sequence of
   blocks, each decodable independently into a caller buffer, so peak
   heap is bounded by the block size however long the trace.  For v1 a
   "block" is a chunk-sized window of the mapped word array; for v2 it
   is an encoded block, CRC-checked and located through the index. *)

module Stream = struct
  type body =
    | S1 of (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t
    | S2 of { s2_map : bigstring; s2_info : v2_info }

  type nonrec t = {
    s_vars : string array;
    s_nprocs : int;
    s_len : int;
    s_chunk : int;  (* v1: window size; v2: the file's block_events *)
    s_bytes : int;  (* whole file, for effective-bandwidth reporting *)
    s_body : body;
    mutable s_closed : bool;
  }

  let default_chunk = 1 lsl 20

  let open_file ?(chunk = default_chunk) path =
    if chunk <= 0 then
      invalid_arg "Cell_trace.Stream.open_file: chunk must be positive";
    match file_format path with
    | V2 ->
      let map = map_whole_file path in
      let info = parse_v2 map in
      {
        s_vars = info.i_vars;
        s_nprocs = info.i_nprocs;
        s_len = info.i_total;
        s_chunk = info.i_block_events;
        s_bytes = Bigarray.Array1.dim map;
        s_body = S2 { s2_map = map; s2_info = info };
        s_closed = false;
      }
    | V1 ->
      let ic = open_in_bin path in
      let nprocs, vars, len, pos, bytes =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let fmt = read_magic ic in
            assert (fmt = V1);
            let nprocs, vars, len = read_v1_header ic in
            let pos = pos_in ic in
            let bytes = in_channel_length ic in
            if bytes - pos < len * 8 then corrupt "truncated trace";
            (nprocs, vars, len, pos, bytes))
      in
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      let map =
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Bigarray.array1_of_genarray
              (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int64
                 Bigarray.c_layout false [| len |]))
      in
      { s_vars = vars; s_nprocs = nprocs; s_len = len; s_chunk = chunk;
        s_bytes = bytes; s_body = S1 map; s_closed = false }

  let vars t = t.s_vars
  let nprocs t = t.s_nprocs
  let length t = t.s_len
  let chunk t = t.s_chunk
  let byte_size t = t.s_bytes
  let format t = match t.s_body with S1 _ -> V1 | S2 _ -> V2

  let nblocks t =
    match t.s_body with
    | S1 _ -> if t.s_len = 0 then 0 else (t.s_len + t.s_chunk - 1) / t.s_chunk
    | S2 { s2_info; _ } -> Array.length s2_info.i_offsets

  let block_events t k =
    match t.s_body with
    | S1 _ -> min t.s_chunk (t.s_len - (k * t.s_chunk))
    | S2 { s2_info; _ } -> s2_info.i_counts.(k)

  let block_start t k =
    match t.s_body with
    | S1 _ -> k * t.s_chunk
    | S2 { s2_info; _ } -> s2_info.i_starts.(k)

  let max_block_events t =
    match t.s_body with
    | S1 _ -> max 1 (min t.s_chunk t.s_len)
    | S2 { s2_info; _ } -> max 1 s2_info.i_block_events

  let epochs t =
    match t.s_body with
    | S1 _ -> None
    | S2 { s2_info; _ } -> Some (Array.copy s2_info.i_epochs)

  let decode_block t k buf =
    if t.s_closed then invalid_arg "Cell_trace.Stream.decode_block: closed";
    if k < 0 || k >= nblocks t then
      invalid_arg "Cell_trace.Stream.decode_block: block out of range";
    let n = block_events t k in
    if Array.length buf < n then
      invalid_arg "Cell_trace.Stream.decode_block: buffer too small";
    (match t.s_body with
    | S1 map ->
      let start = k * t.s_chunk in
      for i = 0 to n - 1 do
        buf.(i) <- Int64.to_int (Bigarray.Array1.unsafe_get map (start + i))
      done
    | S2 { s2_map; s2_info } -> decode_v2_block s2_map s2_info k buf 0);
    n

  let iter_chunks f t =
    if t.s_closed then invalid_arg "Cell_trace.Stream.iter_chunks: closed";
    let nb = nblocks t in
    if nb > 0 then begin
      let buf = Array.make (max_block_events t) 0 in
      for k = 0 to nb - 1 do
        let n = decode_block t k buf in
        f buf n
      done
    end

  (* the mapping itself is released when the bigarray is collected;
     [close] only fences further iteration so a use-after-close is an
     error instead of a silent read *)
  let close t = t.s_closed <- true
end

let of_file_stream = Stream.open_file
