type t = {
  vars : string array;
  ids : (string, int) Hashtbl.t;  (* name -> variable id, built once *)
  nprocs : int;
  mutable data : int array;
  mutable len : int;
}

let id_table vars =
  let ids = Hashtbl.create (Array.length vars) in
  Array.iteri (fun i name -> if not (Hashtbl.mem ids name) then Hashtbl.add ids name i) vars;
  ids

let create ~vars ~nprocs =
  if nprocs <= 0 then invalid_arg "Cell_trace.create: nprocs must be positive";
  if Array.length vars > Cell_event.max_var + 1 then
    invalid_arg "Cell_trace.create: too many variables";
  { vars; ids = id_table vars; nprocs; data = Array.make 1024 0; len = 0 }

let vars t = t.vars
let nprocs t = t.nprocs
let length t = t.len

let var_id t name = Hashtbl.find_opt t.ids name

let push t packed =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- packed;
  t.len <- t.len + 1

let recorder t =
  {
    Cell_listener.access =
      (fun ~proc ~write ~var ~cell ->
        push t (Cell_event.pack (Access { proc; write; var; cell })));
    work =
      (fun ~proc ~amount -> push t (Cell_event.pack (Work { proc; amount })));
    barrier_arrive =
      (fun ~proc -> push t (Cell_event.pack (Barrier_arrive { proc })));
    barrier_release =
      (fun () -> push t (Cell_event.pack Barrier_release));
    lock_wait =
      (fun ~proc ~var ~cell ->
        push t (Cell_event.pack (Lock_wait { proc; var; cell })));
    lock_grant =
      (fun ~proc ~var ~cell ~from ->
        push t (Cell_event.pack (Lock_grant { proc; var; cell; from })));
  }

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Cell_trace.get: out of range";
  Cell_event.unpack t.data.(i)

let iter_packed f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let unsafe_data t = t.data

let iter f t = iter_packed (fun packed -> f (Cell_event.unpack packed)) t

let deliver t listener = iter (Cell_listener.dispatch listener) t

let equal a b =
  a.nprocs = b.nprocs && a.vars = b.vars && a.len = b.len
  &&
  let rec go i = i >= a.len || (a.data.(i) = b.data.(i) && go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Disk format: little-endian 64-bit fields throughout.

   "FSTRACE1" | nprocs | nvars | (name length | name bytes) * | len | events *)

let magic = "FSTRACE1"

exception Corrupt of string

let write_channel t oc =
  let b = Bytes.create 8 in
  let w64 n =
    Bytes.set_int64_le b 0 (Int64.of_int n);
    output_bytes oc b
  in
  output_string oc magic;
  w64 t.nprocs;
  w64 (Array.length t.vars);
  Array.iter
    (fun name ->
      w64 (String.length name);
      output_string oc name)
    t.vars;
  w64 t.len;
  for i = 0 to t.len - 1 do
    w64 t.data.(i)
  done

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

(* Parse and validate everything up to (not including) the event words;
   returns the header fields with the channel positioned at the first
   event.  Shared by the in-memory reader and the streaming one. *)
let read_header ic =
  let b = Bytes.create 8 in
  let r64 () =
    (try really_input ic b 0 8 with End_of_file -> corrupt "truncated trace");
    Int64.to_int (Bytes.get_int64_le b 0)
  in
  let m = Bytes.create (String.length magic) in
  (try really_input ic m 0 (String.length magic)
   with End_of_file -> corrupt "truncated trace");
  if Bytes.to_string m <> magic then corrupt "bad magic";
  let nprocs = r64 () in
  if nprocs <= 0 || nprocs > Cell_event.max_proc + 1 then
    corrupt "bad nprocs %d" nprocs;
  let nvars = r64 () in
  if nvars < 0 || nvars > Cell_event.max_var + 1 then corrupt "bad nvars %d" nvars;
  let vars =
    Array.init nvars (fun _ ->
        let n = r64 () in
        if n < 0 || n > 4096 then corrupt "bad name length %d" n;
        let s = Bytes.create n in
        (try really_input ic s 0 n with End_of_file -> corrupt "truncated trace");
        Bytes.to_string s)
  in
  let len = r64 () in
  if len < 0 then corrupt "bad length %d" len;
  (nprocs, vars, len)

let read_channel ic =
  let nprocs, vars, len = read_header ic in
  (* the event section is one bulk read: a single [really_input] of
     [len * 8] bytes decoded in place, instead of one 8-byte read per
     event — truncation still surfaces as [Corrupt] *)
  let data = Array.make (max len 1) 0 in
  if len > 0 then begin
    let raw =
      try Bytes.create (len * 8)
      with Invalid_argument _ -> corrupt "bad length %d" len
    in
    (try really_input ic raw 0 (len * 8)
     with End_of_file -> corrupt "truncated trace");
    for i = 0 to len - 1 do
      data.(i) <- Int64.to_int (Bytes.get_int64_le raw (i * 8))
    done
  end;
  { vars; ids = id_table vars; nprocs; data; len }

let write_file t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> write_channel t oc);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_channel ic)

(* ------------------------------------------------------------------ *)
(* Streaming.  The header is parsed eagerly (so corruption surfaces at
   open time, with the event count checked against the file size), then
   the event section is memory-mapped as an Int64 bigarray: the OS pages
   events in on demand, and [iter_chunks] copies each chunk into one
   reused int array, so the OCaml heap holds at most [chunk] events of
   the trace at any moment regardless of its length. *)

module Stream = struct
  type nonrec t = {
    s_vars : string array;
    s_nprocs : int;
    s_len : int;
    s_chunk : int;
    s_map : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t;
    mutable s_closed : bool;
  }

  let default_chunk = 1 lsl 20

  let open_file ?(chunk = default_chunk) path =
    if chunk <= 0 then invalid_arg "Cell_trace.Stream.open_file: chunk must be positive";
    let ic = open_in_bin path in
    let nprocs, vars, len, pos =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let nprocs, vars, len = read_header ic in
          let pos = pos_in ic in
          if in_channel_length ic - pos < len * 8 then corrupt "truncated trace";
          (nprocs, vars, len, pos))
    in
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    let map =
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Bigarray.array1_of_genarray
            (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int64
               Bigarray.c_layout false [| len |]))
    in
    { s_vars = vars; s_nprocs = nprocs; s_len = len; s_chunk = chunk;
      s_map = map; s_closed = false }

  let vars t = t.s_vars
  let nprocs t = t.s_nprocs
  let length t = t.s_len
  let chunk t = t.s_chunk

  let iter_chunks f t =
    if t.s_closed then invalid_arg "Cell_trace.Stream.iter_chunks: closed";
    let buf = Array.make (max 1 (min t.s_chunk t.s_len)) 0 in
    let off = ref 0 in
    while !off < t.s_len do
      let n = min t.s_chunk (t.s_len - !off) in
      for i = 0 to n - 1 do
        buf.(i) <- Int64.to_int (Bigarray.Array1.unsafe_get t.s_map (!off + i))
      done;
      f buf n;
      off := !off + n
    done

  (* the mapping itself is released when the bigarray is collected;
     [close] only fences further iteration so a use-after-close is an
     error instead of a silent read *)
  let close t = t.s_closed <- true
end

let of_file_stream = Stream.open_file
