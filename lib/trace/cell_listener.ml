type t = {
  access : proc:int -> write:bool -> var:int -> cell:int -> unit;
  work : proc:int -> amount:int -> unit;
  barrier_arrive : proc:int -> unit;
  barrier_release : unit -> unit;
  lock_wait : proc:int -> var:int -> cell:int -> unit;
  lock_grant : proc:int -> var:int -> cell:int -> from:int -> unit;
  steal : thief:int -> victim:int -> task:int -> unit;
}

let null =
  {
    access = (fun ~proc:_ ~write:_ ~var:_ ~cell:_ -> ());
    work = (fun ~proc:_ ~amount:_ -> ());
    barrier_arrive = (fun ~proc:_ -> ());
    barrier_release = (fun () -> ());
    lock_wait = (fun ~proc:_ ~var:_ ~cell:_ -> ());
    lock_grant = (fun ~proc:_ ~var:_ ~cell:_ ~from:_ -> ());
    steal = (fun ~thief:_ ~victim:_ ~task:_ -> ());
  }

let combine a b =
  {
    access =
      (fun ~proc ~write ~var ~cell ->
        a.access ~proc ~write ~var ~cell;
        b.access ~proc ~write ~var ~cell);
    work =
      (fun ~proc ~amount ->
        a.work ~proc ~amount;
        b.work ~proc ~amount);
    barrier_arrive =
      (fun ~proc ->
        a.barrier_arrive ~proc;
        b.barrier_arrive ~proc);
    barrier_release =
      (fun () ->
        a.barrier_release ();
        b.barrier_release ());
    lock_wait =
      (fun ~proc ~var ~cell ->
        a.lock_wait ~proc ~var ~cell;
        b.lock_wait ~proc ~var ~cell);
    lock_grant =
      (fun ~proc ~var ~cell ~from ->
        a.lock_grant ~proc ~var ~cell ~from;
        b.lock_grant ~proc ~var ~cell ~from);
    steal =
      (fun ~thief ~victim ~task ->
        a.steal ~thief ~victim ~task;
        b.steal ~thief ~victim ~task);
  }

let dispatch t = function
  | Cell_event.Access { proc; write; var; cell } -> t.access ~proc ~write ~var ~cell
  | Cell_event.Work { proc; amount } -> t.work ~proc ~amount
  | Cell_event.Barrier_arrive { proc } -> t.barrier_arrive ~proc
  | Cell_event.Barrier_release -> t.barrier_release ()
  | Cell_event.Lock_wait { proc; var; cell } -> t.lock_wait ~proc ~var ~cell
  | Cell_event.Lock_grant { proc; var; cell; from } ->
    t.lock_grant ~proc ~var ~cell ~from
  | Cell_event.Steal { thief; victim; task } -> t.steal ~thief ~victim ~task
