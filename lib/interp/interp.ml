module Ast = Fs_ir.Ast
module Cells = Fs_ir.Cells
module Layout = Fs_layout.Layout
module Listener = Fs_trace.Listener
module Cell_listener = Fs_trace.Cell_listener
module Cell_trace = Fs_trace.Cell_trace
module Sched = Fs_sched.Sched
module Rng = Fs_util.Rng

exception Runtime_error of string
exception Deadlock of string
exception Nontermination of string

type result = {
  work : int array;
  accesses : int array;
  barrier_episodes : int;
  store : (string, Value.t array) Hashtbl.t;
  sched : Sched.stats option;
}

(* ------------------------------------------------------------------ *)
(* Effects through which processes yield to the scheduler.  Locks are
   identified by their abstract location (var id, cell id): layouts give
   distinct cells distinct addresses, so this names exactly the same
   locks the address did, without consulting any layout.                *)

type _ Effect.t += Yield : unit Effect.t
type _ Effect.t += Barrier_wait : unit Effect.t
type _ Effect.t += Lock_acq : (int * int) -> unit Effect.t
type _ Effect.t += Lock_rel : (int * int) -> unit Effect.t

exception Return_of of Value.t option

(* ------------------------------------------------------------------ *)
(* Run context and per-process environments.                           *)

type ginfo = {
  gty : Ast.ty;
  vid : int;                  (* variable id: index in declaration order *)
  values : Value.t array;     (* cell id -> current value *)
}

(* One activation frame per function invocation (entry, call, or task).
   [sync] joins the frame's own spawned children — except in the entry
   activation, where it waits for global quiescence so that processes
   which spawned nothing still steal. *)
type frame = { mutable fpending : int; fentry : bool }

type env = { proc : int; privs : Value.t array; frame : frame }

type compiled_fun = env -> Value.t option

type task = {
  t_id : int;
  t_cf : compiled_fun ref;
  t_args : Value.t array;
  t_frame : frame;            (* spawning activation, for the join count *)
}

(* Shadow state of the per-process Chase–Lev-style deques.  Every state
   transition is plain OCaml and therefore atomic with respect to the
   coroutine scheduler; the matching cell traffic on the scheduler's
   ParC globals is emitted afterwards (emitting can yield). *)
type sched_state = {
  s_cap : int;                     (* slots per process *)
  s_deque : task option array array;
  s_top : int array;               (* unbounded; slot = idx mod cap *)
  s_bot : int array;
  s_fails : int array;             (* consecutive failed random probes *)
  s_rngs : Rng.t array;            (* per-process victim stream *)
  s_g_top : ginfo;
  s_g_bot : ginfo;
  s_g_deq : ginfo;
  mutable s_outstanding : int;     (* queued tasks not yet completed *)
  mutable s_tasks_n : int;
  mutable s_steals : int;
  mutable s_attempts : int;
  mutable s_inline : int;
  mutable s_next_id : int;
}

type ctx = {
  prog : Ast.program;
  nprocs : int;
  quantum : int;
  max_steps : int;
  cells : Cell_listener.t;
  ginfos : (string, ginfo) Hashtbl.t;
  sched : sched_state option;
  pending : int array;        (* work units since last yield, per proc *)
  workpend : int array;       (* work units since last cells.work flush *)
  work : int array;
  accesses : int array;
  mutable total : int;
  mutable barrier_episodes : int;
}

let err fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

let flush_work ctx proc =
  let w = ctx.workpend.(proc) in
  if w > 0 then begin
    ctx.workpend.(proc) <- 0;
    ctx.cells.Cell_listener.work ~proc ~amount:w
  end

let tick ctx proc w =
  ctx.total <- ctx.total + w;
  if ctx.total > ctx.max_steps then
    raise (Nontermination (Printf.sprintf "exceeded %d work units" ctx.max_steps));
  ctx.work.(proc) <- ctx.work.(proc) + w;
  ctx.workpend.(proc) <- ctx.workpend.(proc) + w;
  let p = ctx.pending.(proc) + w in
  if p >= ctx.quantum then begin
    ctx.pending.(proc) <- 0;
    Effect.perform Yield
  end
  else ctx.pending.(proc) <- p

let access_cost = 3

let emit ctx g ~write ~proc cell =
  flush_work ctx proc;
  ctx.accesses.(proc) <- ctx.accesses.(proc) + 1;
  ctx.cells.Cell_listener.access ~proc ~write ~var:g.vid ~cell;
  tick ctx proc access_cost

(* ------------------------------------------------------------------ *)
(* The work-stealing task runtime behind [spawn]/[sync].

   Help-first child stealing: the spawner pushes the child at the bottom
   of its own deque and continues; idle processes pop their own bottom
   (LIFO) or steal from a victim's top (FIFO).  Victims come from a
   per-thief split PRNG stream seeded by the run's scheduler config, so
   the whole execution is a pure function of (program, nprocs, seed).
   After [nprocs - 1] consecutive failed random probes the thief sweeps
   every victim deterministically, so progress never depends on luck.

   The deque indices and slots are ParC globals ([Sched.top_var] etc.):
   each operation below emits the cell traffic a real Chase–Lev deque
   would generate, which is how the scheduler's own false sharing enters
   the trace. *)

let new_frame fentry = { fpending = 0; fentry }

let[@inline] deq_cell s p idx = (p * s.s_cap) + (idx mod s.s_cap)

let run_task _ctx s env (t : task) =
  ignore (!(t.t_cf) { proc = env.proc; privs = t.t_args; frame = new_frame false });
  t.t_frame.fpending <- t.t_frame.fpending - 1;
  s.s_outstanding <- s.s_outstanding - 1

let spawn_task ctx s env (cf : compiled_fun ref) argv =
  let p = env.proc in
  s.s_tasks_n <- s.s_tasks_n + 1;
  if s.s_bot.(p) - s.s_top.(p) >= s.s_cap then begin
    (* deque full: run in place — the fullness probe still reads top *)
    s.s_inline <- s.s_inline + 1;
    emit ctx s.s_g_top ~write:false ~proc:p p;
    ignore (!cf { proc = p; privs = argv; frame = new_frame false })
  end
  else begin
    let id = s.s_next_id in
    s.s_next_id <- id + 1;
    let b = s.s_bot.(p) in
    s.s_deque.(p).(b mod s.s_cap) <-
      Some { t_id = id; t_cf = cf; t_args = argv; t_frame = env.frame };
    s.s_bot.(p) <- b + 1;
    env.frame.fpending <- env.frame.fpending + 1;
    s.s_outstanding <- s.s_outstanding + 1;
    (* push: fullness check reads top, then the slot and bottom writes *)
    emit ctx s.s_g_top ~write:false ~proc:p p;
    let cell = deq_cell s p b in
    s.s_g_deq.values.(cell) <- Value.Vint id;
    emit ctx s.s_g_deq ~write:true ~proc:p cell;
    s.s_g_bot.values.(p) <- Value.Vint (b + 1);
    emit ctx s.s_g_bot ~write:true ~proc:p p
  end

let pop_own ctx s p =
  if s.s_bot.(p) - s.s_top.(p) <= 0 then None
  else begin
    let b = s.s_bot.(p) - 1 in
    s.s_bot.(p) <- b;
    let t = s.s_deque.(p).(b mod s.s_cap) in
    s.s_deque.(p).(b mod s.s_cap) <- None;
    (* owner pop: bottom write, top race check, slot read *)
    s.s_g_bot.values.(p) <- Value.Vint b;
    emit ctx s.s_g_bot ~write:true ~proc:p p;
    emit ctx s.s_g_top ~write:false ~proc:p p;
    emit ctx s.s_g_deq ~write:false ~proc:p (deq_cell s p b);
    t
  end

let steal_from ctx s ~thief ~victim =
  s.s_attempts <- s.s_attempts + 1;
  if s.s_bot.(victim) - s.s_top.(victim) <= 0 then begin
    (* failed probe: the thief still reads both ends of the victim's deque *)
    emit ctx s.s_g_top ~write:false ~proc:thief victim;
    emit ctx s.s_g_bot ~write:false ~proc:thief victim;
    None
  end
  else begin
    let tp = s.s_top.(victim) in
    let t = s.s_deque.(victim).(tp mod s.s_cap) in
    s.s_deque.(victim).(tp mod s.s_cap) <- None;
    s.s_top.(victim) <- tp + 1;
    emit ctx s.s_g_top ~write:false ~proc:thief victim;
    emit ctx s.s_g_bot ~write:false ~proc:thief victim;
    emit ctx s.s_g_deq ~write:false ~proc:thief (deq_cell s victim tp);
    s.s_g_top.values.(victim) <- Value.Vint (tp + 1);
    emit ctx s.s_g_top ~write:true ~proc:thief victim;
    (match t with
     | Some t ->
       s.s_steals <- s.s_steals + 1;
       flush_work ctx thief;
       ctx.cells.Cell_listener.steal ~thief ~victim ~task:t.t_id
     | None -> ());
    t
  end

let try_steal ctx s p =
  let n = ctx.nprocs in
  if n <= 1 then None
  else
    let v = (p + 1 + Rng.int s.s_rngs.(p) (n - 1)) mod n in
    match steal_from ctx s ~thief:p ~victim:v with
    | Some _ as r ->
      s.s_fails.(p) <- 0;
      r
    | None ->
      s.s_fails.(p) <- s.s_fails.(p) + 1;
      if s.s_fails.(p) < n - 1 then None
      else begin
        s.s_fails.(p) <- 0;
        let rec sweep k =
          if k >= n then None
          else
            match steal_from ctx s ~thief:p ~victim:((p + k) mod n) with
            | Some _ as r -> r
            | None -> sweep (k + 1)
        in
        sweep 1
      end

let rec sched_sync ctx s env =
  let done_ () =
    if env.frame.fentry then s.s_outstanding = 0 else env.frame.fpending <= 0
  in
  if not (done_ ()) then begin
    (match pop_own ctx s env.proc with
     | Some t -> run_task ctx s env t
     | None -> (
       match try_steal ctx s env.proc with
       | Some t -> run_task ctx s env t
       | None ->
         (* nothing visible to run: burn a unit and let the others go *)
         tick ctx env.proc 1;
         ctx.pending.(env.proc) <- 0;
         Effect.perform Yield));
    sched_sync ctx s env
  end

(* ------------------------------------------------------------------ *)
(* Compilation of the AST to closures.                                 *)

(* Private variables of a function are slot-allocated, flow-insensitively:
   one slot per distinct name among parameters, [Decl]s, [For] variables
   and call-return targets. *)
let slot_table (f : Ast.func) =
  let slots = Hashtbl.create 16 in
  let add n = if not (Hashtbl.mem slots n) then Hashtbl.add slots n (Hashtbl.length slots) in
  List.iter add f.params;
  Ast.iter_stmts
    (fun s ->
      match s with
      | Ast.Decl (n, _) | Ast.For (n, _, _, _) | Ast.Call { ret = Some n; _ } -> add n
      | _ -> ())
    f.body;
  slots

let compile ctx =
  let prog = ctx.prog in
  let funs : (string, compiled_fun ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      Hashtbl.add funs f.fname (ref (fun _ -> err "function %s not yet compiled" f.fname)))
    prog.funcs;
  let ginfo name =
    match Hashtbl.find_opt ctx.ginfos name with
    | Some g -> g
    | None -> err "unknown global %s" name
  in
  let compile_func (f : Ast.func) =
    let slots = slot_table f in
    let nslots = Hashtbl.length slots in
    let slot n =
      match Hashtbl.find_opt slots n with
      | Some s -> s
      | None -> err "undeclared private %s in %s" n f.fname
    in
    let rec compile_expr (e : Ast.expr) : env -> Value.t =
      match e with
      | Int_lit n ->
        let v = Value.Vint n in
        fun _ -> v
      | Float_lit x ->
        let v = Value.Vfloat x in
        fun _ -> v
      | Pdv -> fun env -> Value.Vint env.proc
      | Nprocs ->
        let v = Value.Vint ctx.nprocs in
        fun _ -> v
      | Priv n ->
        let s = slot n in
        fun env -> env.privs.(s)
      | Load lv ->
        let g, cellf = compile_lvalue lv in
        fun env ->
          let cell = cellf env in
          emit ctx g ~write:false ~proc:env.proc cell;
          g.values.(cell)
      | Unop (op, e) ->
        let ce = compile_expr e in
        fun env -> Value.unop op (ce env)
      | Binop (And, e1, e2) ->
        let c1 = compile_expr e1 and c2 = compile_expr e2 in
        fun env -> if Value.truthy (c1 env) then Value.of_bool (Value.truthy (c2 env)) else Value.zero
      | Binop (Or, e1, e2) ->
        let c1 = compile_expr e1 and c2 = compile_expr e2 in
        fun env -> if Value.truthy (c1 env) then Value.Vint 1 else Value.of_bool (Value.truthy (c2 env))
      | Binop (op, e1, e2) ->
        let c1 = compile_expr e1 and c2 = compile_expr e2 in
        fun env -> Value.binop op (c1 env) (c2 env)

    (* An lvalue compiles to its global's info plus a cell-id computation:
       constant field offsets are folded at compile time; each index
       contributes eval * stride with a bounds check. *)
    and compile_lvalue (lv : Ast.lvalue) : ginfo * (env -> int) =
      let g = ginfo lv.base in
      let rec walk ty path const parts =
        match (ty, path) with
        | _, [] -> (const, List.rev parts)
        | Ast.Array (elt, n), Ast.Idx e :: rest ->
          let ce = compile_expr e in
          let stride = Cells.count prog elt in
          walk elt rest const ((ce, stride, n) :: parts)
        | Ast.Struct sname, Ast.Fld fld :: rest ->
          let sdef = Ast.find_struct prog sname in
          let fty =
            match List.assoc_opt fld sdef.fields with
            | Some t -> t
            | None -> err "struct %s has no field %s" sname fld
          in
          walk fty rest (const + Cells.field_offset prog sdef fld) parts
        | _ -> err "ill-shaped access path on %s" lv.base
      in
      let const, parts = walk g.gty lv.path 0 [] in
      let check i n =
        if i < 0 || i >= n then
          err "index %d out of bounds [0,%d) on %s" i n lv.base
      in
      let cellf =
        match parts with
        | [] -> fun _ -> const
        | [ (ce, stride, n) ] ->
          fun env ->
            let i = Value.to_int (ce env) in
            check i n;
            const + (i * stride)
        | parts ->
          let parts = Array.of_list parts in
          fun env ->
            let cell = ref const in
            Array.iter
              (fun (ce, stride, n) ->
                let i = Value.to_int (ce env) in
                check i n;
                cell := !cell + (i * stride))
              parts;
            !cell
      in
      (g, cellf)
    in
    let rec compile_stmt (s : Ast.stmt) : env -> unit =
      match s with
      | Store (lv, e) ->
        let g, cellf = compile_lvalue lv in
        let ce = compile_expr e in
        fun env ->
          tick ctx env.proc 1;
          let cell = cellf env in
          let v = ce env in
          emit ctx g ~write:true ~proc:env.proc cell;
          g.values.(cell) <- v
      | Set (n, e) ->
        let s = slot n and ce = compile_expr e in
        fun env ->
          tick ctx env.proc 1;
          env.privs.(s) <- ce env
      | Decl (n, e) ->
        let s = slot n and ce = compile_expr e in
        fun env ->
          tick ctx env.proc 1;
          env.privs.(s) <- ce env
      | If (c, b1, b2) ->
        let cc = compile_expr c in
        let cb1 = compile_block b1 and cb2 = compile_block b2 in
        fun env ->
          tick ctx env.proc 1;
          if Value.truthy (cc env) then cb1 env else cb2 env
      | While (c, b) ->
        let cc = compile_expr c in
        let cb = compile_block b in
        fun env ->
          tick ctx env.proc 1;
          while Value.truthy (cc env) do
            cb env;
            tick ctx env.proc 1
          done
      | For (n, lo, hi, b) ->
        let s = slot n in
        let clo = compile_expr lo and chi = compile_expr hi in
        let cb = compile_block b in
        fun env ->
          tick ctx env.proc 1;
          let i = ref (Value.to_int (clo env)) in
          while !i < Value.to_int (chi env) do
            env.privs.(s) <- Value.Vint !i;
            cb env;
            tick ctx env.proc 1;
            incr i
          done
      | Call { ret; callee; args } ->
        let cf =
          match Hashtbl.find_opt funs callee with
          | Some r -> r
          | None -> err "call to unknown function %s" callee
        in
        let cargs = Array.of_list (List.map compile_expr args) in
        let rslot = Option.map (fun n -> slot n) ret in
        fun env ->
          tick ctx env.proc 1;
          let argv = Array.map (fun ce -> ce env) cargs in
          let callee_frame =
            (* frames only matter to the task runtime; without it, reusing
               the caller's frame saves an allocation per call *)
            match ctx.sched with None -> env.frame | Some _ -> new_frame false
          in
          let res = !cf { proc = env.proc; privs = argv; frame = callee_frame } in
          (match (rslot, res) with
           | None, _ -> ()
           | Some s, Some v -> env.privs.(s) <- v
           | Some _, None -> err "function %s returned no value" callee)
      | Spawn { callee; args } ->
        let cf =
          match Hashtbl.find_opt funs callee with
          | Some r -> r
          | None -> err "spawn of unknown function %s" callee
        in
        let cargs = Array.of_list (List.map compile_expr args) in
        fun env ->
          tick ctx env.proc 1;
          let argv = Array.map (fun ce -> ce env) cargs in
          (match ctx.sched with
           | Some s -> spawn_task ctx s env cf argv
           | None -> err "spawn executed without an active scheduler")
      | Sync ->
        fun env ->
          tick ctx env.proc 1;
          (match ctx.sched with
           | Some s -> sched_sync ctx s env
           | None -> err "sync executed without an active scheduler")
      | Return e ->
        let ce = Option.map compile_expr e in
        fun env ->
          tick ctx env.proc 1;
          raise (Return_of (Option.map (fun ce -> ce env) ce))
      | Barrier ->
        fun env ->
          tick ctx env.proc 1;
          flush_work ctx env.proc;
          ctx.cells.Cell_listener.barrier_arrive ~proc:env.proc;
          Effect.perform Barrier_wait
      | Lock lv ->
        let g, cellf = compile_lvalue lv in
        fun env ->
          tick ctx env.proc 1;
          let cell = cellf env in
          (* the probe read of test-and-test-and-set *)
          emit ctx g ~write:false ~proc:env.proc cell;
          Effect.perform (Lock_acq (g.vid, cell));
          (* granted: the re-read after invalidation and the acquiring write *)
          emit ctx g ~write:false ~proc:env.proc cell;
          emit ctx g ~write:true ~proc:env.proc cell;
          g.values.(cell) <- Value.Vint 1
      | Unlock lv ->
        let g, cellf = compile_lvalue lv in
        fun env ->
          tick ctx env.proc 1;
          let cell = cellf env in
          emit ctx g ~write:true ~proc:env.proc cell;
          g.values.(cell) <- Value.Vint 0;
          Effect.perform (Lock_rel (g.vid, cell))
    and compile_block (b : Ast.block) : env -> unit =
      let stmts = Array.of_list (List.map compile_stmt b) in
      fun env -> Array.iter (fun cs -> cs env) stmts
    in
    let cbody = compile_block f.body in
    let nparams = List.length f.params in
    fun (env : env) ->
      (* The caller passes evaluated arguments as the privs array; grow it
         to the function's full slot count. *)
      let privs =
        if Array.length env.privs = nslots then env.privs
        else begin
          let a = Array.make nslots Value.zero in
          Array.blit env.privs 0 a 0 (min nparams (Array.length env.privs));
          a
        end
      in
      let env = { env with privs } in
      match cbody env with () -> None | exception Return_of v -> v
  in
  List.iter
    (fun (f : Ast.func) -> Hashtbl.find funs f.fname := compile_func f)
    prog.funcs;
  funs

(* ------------------------------------------------------------------ *)
(* The scheduler.                                                      *)

type pstate =
  | Not_started
  | Ready of (unit, unit) Effect.Deep.continuation
  | Running
  | At_barrier of (unit, unit) Effect.Deep.continuation
  | Waiting_lock
  | Finished

type lockinfo = {
  mutable owner : int;  (* -1 = free *)
  waiters : (int * (unit, unit) Effect.Deep.continuation) Queue.t;
}

let run_cells ?(quantum = 12) ?(max_steps = 400_000_000) ?sched prog ~nprocs
    ~cells =
  if nprocs <= 0 then invalid_arg "Interp.run: nprocs must be positive";
  (match Fs_ir.Validate.check prog with
   | Ok () -> ()
   | Error errs -> raise (Fs_ir.Validate.Invalid_program errs));
  let ginfos = Hashtbl.create 16 in
  List.iteri
    (fun vid (name, gty) ->
      let n = Cells.count prog gty in
      Hashtbl.add ginfos name { gty; vid; values = Array.make n Value.zero })
    prog.Ast.globals;
  let sched_state =
    let uses = Sched.uses_tasks prog in
    match sched with
    | Some cfg when uses ->
      let cap =
        match Sched.deque_cap ~nprocs prog with
        | Some c -> c
        | None ->
          err
            "program uses spawn/sync but lacks the scheduler globals; \
             build it through Sched.instrument"
      in
      let gi name =
        match Hashtbl.find_opt ginfos name with
        | Some g -> g
        | None -> err "scheduler global %s missing" name
      in
      let master = Rng.create cfg.Sched.seed in
      Some
        {
          s_cap = cap;
          s_deque = Array.init nprocs (fun _ -> Array.make cap None);
          s_top = Array.make nprocs 0;
          s_bot = Array.make nprocs 0;
          s_fails = Array.make nprocs 0;
          s_rngs = Array.init nprocs (fun _ -> Rng.split master);
          s_g_top = gi Sched.top_var;
          s_g_bot = gi Sched.bot_var;
          s_g_deq = gi Sched.deq_var;
          s_outstanding = 0;
          s_tasks_n = 0;
          s_steals = 0;
          s_attempts = 0;
          s_inline = 0;
          s_next_id = 0;
        }
    | _ ->
      if uses then
        raise
          (Runtime_error
             "program uses spawn/sync: a scheduler seed is required (pass \
              --sched-seed)");
      None
  in
  let ctx =
    {
      prog;
      nprocs;
      quantum;
      max_steps;
      cells;
      ginfos;
      sched = sched_state;
      pending = Array.make nprocs 0;
      workpend = Array.make nprocs 0;
      work = Array.make nprocs 0;
      accesses = Array.make nprocs 0;
      total = 0;
      barrier_episodes = 0;
    }
  in
  let funs = compile ctx in
  let entry =
    match Hashtbl.find_opt funs prog.entry with
    | Some r -> !r
    | None -> err "entry function %s not found" prog.entry
  in
  let states = Array.make nprocs Not_started in
  let locks : (int * int, lockinfo) Hashtbl.t = Hashtbl.create 16 in
  let lockinfo key =
    match Hashtbl.find_opt locks key with
    | Some l -> l
    | None ->
      let l = { owner = -1; waiters = Queue.create () } in
      Hashtbl.add locks key l;
      l
  in
  let alive_count () =
    Array.fold_left
      (fun acc s -> match s with Finished -> acc | _ -> acc + 1)
      0 states
  in
  let barrier_count () =
    Array.fold_left
      (fun acc s -> match s with At_barrier _ -> acc + 1 | _ -> acc)
      0 states
  in
  let release_barrier_if_complete () =
    let n_at = barrier_count () in
    if n_at > 0 && n_at = alive_count () then begin
      ctx.barrier_episodes <- ctx.barrier_episodes + 1;
      ctx.cells.Cell_listener.barrier_release ();
      Array.iteri
        (fun i s ->
          match s with At_barrier k -> states.(i) <- Ready k | _ -> ())
        states
    end
  in
  let run_proc proc =
    let body () =
      let res = entry { proc; privs = [||]; frame = new_frame true } in
      ignore res;
      flush_work ctx proc
    in
    Effect.Deep.match_with body ()
      {
        retc = (fun () -> states.(proc) <- Finished);
        exnc = (fun e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  states.(proc) <- Ready k)
            | Barrier_wait ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  states.(proc) <- At_barrier k;
                  release_barrier_if_complete ())
            | Lock_acq ((var, cell) as key) ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  let l = lockinfo key in
                  if l.owner < 0 then begin
                    l.owner <- proc;
                    ctx.cells.Cell_listener.lock_grant ~proc ~var ~cell ~from:(-1);
                    Effect.Deep.continue k ()
                  end
                  else begin
                    flush_work ctx proc;
                    ctx.cells.Cell_listener.lock_wait ~proc ~var ~cell;
                    Queue.add (proc, k) l.waiters;
                    states.(proc) <- Waiting_lock
                  end)
            | Lock_rel ((var, cell) as key) ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  let l = lockinfo key in
                  if l.owner <> proc then
                    err "P%d unlocks lock v%d[%d] held by %d" proc var cell l.owner;
                  (match Queue.take_opt l.waiters with
                   | None -> l.owner <- -1
                   | Some (waiter, wk) ->
                     l.owner <- waiter;
                     ctx.cells.Cell_listener.lock_grant ~proc:waiter ~var ~cell
                       ~from:proc;
                     states.(waiter) <- Ready wk);
                  Effect.Deep.continue k ())
            | _ -> None);
      }
  in
  (* Round-robin over ready processes; deterministic. *)
  let next = ref 0 in
  let find_ready () =
    let rec go tried =
      if tried >= nprocs then None
      else
        let p = (!next + tried) mod nprocs in
        match states.(p) with
        | Not_started | Ready _ -> Some p
        | Running | At_barrier _ | Waiting_lock | Finished -> go (tried + 1)
    in
    go 0
  in
  let rec loop () =
    match find_ready () with
    | Some p ->
      next := (p + 1) mod nprocs;
      (match states.(p) with
       | Not_started ->
         states.(p) <- Running;
         run_proc p
       | Ready k ->
         states.(p) <- Running;
         Effect.Deep.continue k ()
       | _ -> assert false);
      loop ()
    | None ->
      if alive_count () = 0 then ()
      else begin
        let held =
          Hashtbl.fold
            (fun (var, cell) l acc ->
              if l.owner >= 0 then
                Printf.sprintf "lock v%d[%d] held by P%d" var cell l.owner :: acc
              else acc)
            locks []
        in
        raise
          (Deadlock
             (Printf.sprintf "%d processes blocked (%d at barrier)%s"
                (alive_count ()) (barrier_count ())
                (match held with [] -> "" | l -> "; " ^ String.concat ", " l)))
      end
  in
  loop ();
  let store = Hashtbl.create 16 in
  Hashtbl.iter (fun name g -> Hashtbl.add store name g.values) ginfos;
  {
    work = ctx.work;
    accesses = ctx.accesses;
    barrier_episodes = ctx.barrier_episodes;
    store;
    sched =
      Option.map
        (fun s ->
          {
            Sched.tasks = s.s_tasks_n;
            steals = s.s_steals;
            steal_attempts = s.s_attempts;
            inline_runs = s.s_inline;
          })
        sched_state;
  }

let vars prog = Array.of_list (List.map fst prog.Ast.globals)

let record ?quantum ?max_steps ?sched prog ~nprocs =
  let trace = Cell_trace.create ~vars:(vars prog) ~nprocs in
  let r =
    run_cells ?quantum ?max_steps ?sched prog ~nprocs
      ~cells:(Cell_trace.recorder trace)
  in
  (trace, r)

let run ?quantum ?max_steps ?sched prog ~nprocs ~layout ~listener =
  (* the direct path: translation through the layout's address oracle
     happens inline, as each event is produced *)
  let oracle = Fs_replay.Replay.oracle layout ~vars:(vars prog) in
  run_cells ?quantum ?max_steps ?sched prog ~nprocs
    ~cells:(Fs_replay.Replay.translating oracle listener)

let run_to_sink ?quantum ?max_steps ?sched prog ~nprocs ~layout ~sink =
  run ?quantum ?max_steps ?sched prog ~nprocs ~layout
    ~listener:(Listener.of_sink sink)

let read_global r name cell =
  match Hashtbl.find_opt r.store name with
  | None -> raise Not_found
  | Some values -> values.(cell)
