(** The SPMD interpreter.

    Runs a ParC program with [nprocs] processes, each executing the entry
    function with [Pdv] bound to its process id, exactly as the fork model
    of Section 2 of the paper: processes are created together, run the same
    code, synchronize at barriers and locks, and share the global data.

    Processes are OCaml effect-handler coroutines scheduled round-robin
    with a small quantum measured in interpreter work units, so the emitted
    reference trace interleaves processor accesses at fine grain — the
    cross-processor interleaving false sharing depends on.  Scheduling is
    fully deterministic.

    Execution is {e layout-free}: the interpreter names every shared
    reference by its abstract location — (variable id, cell id) — and
    reports it through a {!Fs_trace.Cell_listener}.  Locks are likewise
    identified by cell, so the schedule is a property of the program
    alone and one interpreted execution can be re-laid-out arbitrarily
    often.  {!record} captures the stream as a {!Fs_trace.Cell_trace} for
    replay; {!run} is the direct path, wiring the cell stream through
    [Fs_replay.Replay.translating] inline so consumers see byte
    addresses — when the layout carries an indirection, the injected
    pointer load is emitted before the data access.  Spin waiting on a
    contended lock is modelled as test-and-test-and-set: the initial
    probe read, then silence while spinning on the locally cached copy,
    then the re-read and the acquiring write when the lock is handed
    over. *)

exception Runtime_error of string
exception Deadlock of string
exception Nontermination of string

type result = {
  work : int array;        (** interpreter work units per processor *)
  accesses : int array;    (** shared-memory references per processor *)
  barrier_episodes : int;  (** completed global barriers *)
  store : (string, Value.t array) Hashtbl.t;  (** final shared memory *)
  sched : Fs_sched.Sched.stats option;
      (** task-runtime counters; [Some] exactly when the program uses
          [spawn]/[sync] and a scheduler config was supplied *)
}

val run_cells :
  ?quantum:int ->
  ?max_steps:int ->
  ?sched:Fs_sched.Sched.config ->
  Fs_ir.Ast.program ->
  nprocs:int ->
  cells:Fs_trace.Cell_listener.t ->
  result
(** The layout-free core: one interpreted execution, events delivered at
    cell granularity.  Everything else is a wrapper.

    [sched] seeds the deterministic work-stealing runtime executing any
    [spawn]/[sync] in the program (see {!Fs_sched.Sched}); running a
    task-parallel program without it is a [Runtime_error] — never a
    silent default, because the seed is part of the experiment's
    identity.  For programs without tasks, [sched] is ignored. *)

val record :
  ?quantum:int ->
  ?max_steps:int ->
  ?sched:Fs_sched.Sched.config ->
  Fs_ir.Ast.program ->
  nprocs:int ->
  Fs_trace.Cell_trace.t * result
(** Interpret once, capturing the full cell-event stream for later
    replay under any layout.  Identical [sched] seeds give bit-identical
    traces; steals appear as [Cell_event.Steal] alongside the deque cell
    traffic. *)

val vars : Fs_ir.Ast.program -> string array
(** Variable ids in declaration order, as used by cell events. *)

val run :
  ?quantum:int ->
  ?max_steps:int ->
  ?sched:Fs_sched.Sched.config ->
  Fs_ir.Ast.program ->
  nprocs:int ->
  layout:Fs_layout.Layout.t ->
  listener:Fs_trace.Listener.t ->
  result
(** [quantum] (default 12) is the number of work units a process executes
    between scheduling points; an access costs 3 units, other statements 1.
    [max_steps] (default 400 million) bounds total work.

    @raise Runtime_error on dynamic errors (bad index, float index,
      division by zero, unlock of a lock not held, missing return value)
    @raise Deadlock when no process can make progress
    @raise Nontermination when [max_steps] is exceeded *)

val run_to_sink :
  ?quantum:int ->
  ?max_steps:int ->
  ?sched:Fs_sched.Sched.config ->
  Fs_ir.Ast.program ->
  nprocs:int ->
  layout:Fs_layout.Layout.t ->
  sink:Fs_trace.Sink.t ->
  result
(** Convenience wrapper around {!run} for consumers that only need memory
    references. *)

val read_global : result -> string -> int -> Value.t
(** [read_global r name cell] reads a cell of the final shared memory.
    @raise Not_found / Invalid_argument on bad names or cells. *)
