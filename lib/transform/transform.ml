module Ast = Fs_ir.Ast
module Cells = Fs_ir.Cells
module Sym = Fs_rsd.Sym
module Rsd = Fs_rsd.Rsd
module Summary = Fs_analysis.Summary
module Plan = Fs_layout.Plan

type options = {
  hot_threshold : float;
  write_read_ratio : float;
  rsd_limit : int;
  profile : bool;
  pad_locks : bool;
}

let default_options =
  {
    hot_threshold = 0.01;
    write_read_ratio = 10.0;
    rsd_limit = Rsd.Set.default_limit;
    profile = true;
    pad_locks = true;
  }

type decision =
  | Keep
  | Group of { axis : int }
  | Regroup of { ways : int; chunked : bool }
  | Indirection of { field : string }
  | Pad of { element : bool }

type entry = {
  key : Summary.key;
  read_weight : float;
  write_weight : float;
  dominant_phase : int;
  per_process_writes : bool;
  decision : decision;
  reason : string;
}

type report = {
  entries : entry list;
  plan : Plan.t;
  summary : Summary.t;
}

(* The scalar type a key's accesses reach (descending arrays implicitly and
   structs by the field signature). *)
let rec terminal_scalar prog (ty : Ast.ty) fieldsig =
  match (ty, fieldsig) with
  | Ast.Scalar s, [] -> Some s
  | Ast.Scalar _, _ :: _ -> None
  | Ast.Array (elt, _), fs -> terminal_scalar prog elt fs
  | Ast.Struct sname, f :: fs -> (
    match List.assoc_opt f (Ast.find_struct prog sname).fields with
    | Some fty -> terminal_scalar prog fty fs
    | None -> None)
  | Ast.Struct _, [] -> None

(* Sections a process touches in a phase, projected on one dimension. *)
let projections access dim =
  List.filter_map
    (fun (r : Rsd.t) ->
      if dim < Array.length r.dims then Some r.dims.(dim) else None)
    access

let pairwise_disjoint nprocs per_pid =
  let rec go p =
    if p >= nprocs then true
    else
      let rec inner q =
        if q >= nprocs then true
        else if
          List.exists
            (fun a -> List.exists (fun b -> Sym.overlaps a b) (per_pid q))
            (per_pid p)
        then false
        else inner (q + 1)
      in
      inner (p + 1) && go (p + 1)
  in
  go 0

(* Writes are per-process when no two processes' write sections can
   intersect (full regular sections, all dimensions). *)
let writes_per_process summary ~phase key =
  let nprocs = Summary.nprocs summary in
  let sets =
    Array.init nprocs (fun pid ->
        match Summary.get summary ~phase ~pid key with
        | Some a -> Rsd.Set.to_list a.writes
        | None -> [])
  in
  let rec go p =
    if p >= nprocs then true
    else
      let rec inner q =
        if q >= nprocs then true
        else if
          List.exists
            (fun a -> List.exists (fun b -> Rsd.overlaps a b) sets.(q))
            sets.(p)
        then false
        else inner (q + 1)
      in
      inner (p + 1) && go (p + 1)
  in
  go 0

(* Split the read weight of a key into a per-process part (sections no
   other process reads in the same phase) and a shared part, keeping the
   shared descriptors for the spatial-locality judgement.  All phases
   contribute: a transformation changes the layout everywhere, so reads in
   any phase pay for lost locality. *)
let read_classes summary key =
  let nprocs = Summary.nprocs summary in
  let private_w = ref 0.0 and shared_w = ref 0.0 in
  let shared_rsds = ref [] in
  for phase = 0 to Summary.phases summary - 1 do
    let sets =
      Array.init nprocs (fun pid ->
          match Summary.get summary ~phase ~pid key with
          | Some a -> Rsd.Set.to_list a.reads
          | None -> [])
    in
    Array.iteri
      (fun pid mine ->
        List.iter
          (fun (r : Rsd.t) ->
            let shared =
              let found = ref false in
              Array.iteri
                (fun q s ->
                  if q <> pid && List.exists (Rsd.overlaps r) s then found := true)
                sets;
              !found
            in
            if shared then begin
              shared_w := !shared_w +. r.weight;
              shared_rsds := r :: !shared_rsds
            end
            else private_w := !private_w +. r.weight)
          mine)
      sets
  done;
  (!private_w, !shared_w, !shared_rsds)

(* Spatial locality: every section is a point or a dense (stride <= 2)
   range in every dimension.  Scalars (rank 0) have no spatial locality to
   preserve. *)
let has_locality rsds =
  List.exists (fun (r : Rsd.t) -> Array.length r.dims > 0) rsds
  && List.for_all
       (fun (r : Rsd.t) ->
         Array.for_all
           (function
             | Sym.Const _ -> true
             | Sym.Interval { stride; _ } -> stride <= 2
             | Sym.Strided s -> s <= 2
             | Sym.Congruent { m; _ } -> m <= 2
             | Sym.Unknown -> false)
           r.dims)
       rsds

let all_rsds summary ~phase key ~write =
  let acc = ref [] in
  for pid = 0 to Summary.nprocs summary - 1 do
    match Summary.get summary ~phase ~pid key with
    | Some a ->
      acc := (if write then Rsd.Set.to_list a.writes else Rsd.Set.to_list a.reads) @ !acc
    | None -> ()
  done;
  !acc

(* Which array axis separates the processes: distinct per-process
   coordinates with no overlap.  Among the working axes, the one with the
   smallest extent is the PDV axis (the others separate by accident of the
   iteration space). *)
let find_pdv_axis summary ~phase key ~dims =
  let nprocs = Summary.nprocs summary in
  let per_pid_writes pid =
    match Summary.get summary ~phase ~pid key with
    | Some a -> Rsd.Set.to_list a.writes
    | None -> []
  in
  let axis_works a =
    pairwise_disjoint nprocs (fun pid -> projections (per_pid_writes pid) a)
  in
  (* The PDV axis must also be compact: each process touches a narrow band
     of coordinates.  A process whose section spans the whole axis (e.g.
     the strided [t*P+pid] footprint on a flattened array) is regrouping
     territory, not transposition. *)
  let compact a extent =
    let band = max 1 (extent / nprocs) in
    List.for_all
      (fun pid ->
        List.for_all
          (fun proj ->
            match Sym.bounds proj with
            | Some (lo, hi) -> hi - lo < max band 2
            | None -> false)
          (projections (per_pid_writes pid) a))
      (List.init nprocs Fun.id)
  in
  let candidates =
    List.mapi (fun a extent -> (a, extent)) dims
    |> List.filter (fun (a, extent) -> axis_works a && compact a extent)
  in
  match List.sort (fun (_, e1) (_, e2) -> compare e1 e2) candidates with
  | (axis, extent) :: _ -> Some (axis, extent)
  | [] -> None

(* Flat per-process structure in the outermost dimension's index
   arithmetic: either interleaved ([k*P+pid]: equal strides, distinct
   offset classes) or chunked ([pid*chunk+k]: disjoint dense ranges). *)
let find_regroup summary ~phase key ~nprocs =
  let per_pid_proj pid =
    match Summary.get summary ~phase ~pid key with
    | Some a -> projections (Rsd.Set.to_list a.writes) 0
    | None -> []
  in
  let projs = Array.init nprocs per_pid_proj in
  let strides =
    Array.to_list projs |> List.concat
    |> List.map (function
         | Sym.Interval { stride; _ } -> Some stride
         | Sym.Congruent { m; _ } -> Some m
         | Sym.Const _ -> Some 1
         | _ -> None)
  in
  if List.exists (fun s -> s = None) strides || strides = [] then None
  else
    let strides = List.filter_map Fun.id strides in
    let s0 = List.hd strides in
    if List.for_all (fun s -> s = s0) strides then
      if s0 >= 2 then Some (Regroup { ways = s0; chunked = false })
      else Some (Regroup { ways = nprocs; chunked = true })
    else None

(* Weight of a key inside one phase, across processes. *)
let key_phase_weight summary ~phase key =
  let acc = ref 0.0 in
  for pid = 0 to Summary.nprocs summary - 1 do
    match Summary.get summary ~phase ~pid key with
    | Some a ->
      acc := !acc +. Rsd.Set.total_weight a.reads +. Rsd.Set.total_weight a.writes
    | None -> ()
  done;
  !acc

(* The phase whose sharing pattern the data is restructured for: the
   heaviest phase among those that write the datum.  (A phase that only
   reads it cannot reveal the write pattern, and writes are what create
   invalidations.)  Falls back to the heaviest phase overall when no phase
   writes. *)
let dominant_phase summary key =
  let key_write_weight phase =
    let acc = ref 0.0 in
    for pid = 0 to Summary.nprocs summary - 1 do
      match Summary.get summary ~phase ~pid key with
      | Some a -> acc := !acc +. Fs_rsd.Rsd.Set.total_weight a.writes
      | None -> ()
    done;
    !acc
  in
  let best = ref (-1) and best_w = ref 0.0 in
  for phase = 0 to Summary.phases summary - 1 do
    if key_write_weight phase > 0.0 then begin
      let w = key_phase_weight summary ~phase key in
      if !best < 0 || w > !best_w then begin
        best := phase;
        best_w := w
      end
    end
  done;
  if !best >= 0 then !best
  else begin
    let best = ref 0 and best_w = ref (-1.0) in
    for phase = 0 to Summary.phases summary - 1 do
      let w = key_phase_weight summary ~phase key in
      if w > !best_w then begin
        best := phase;
        best_w := w
      end
    done;
    !best
  end

let classify prog options summary total_write_weight (key : Summary.key) : entry =
  let read_weight = Summary.read_weight summary key in
  let write_weight = Summary.write_weight summary key in
  let phase = dominant_phase summary key in
  let gty = Ast.find_global prog key.var in
  let keep reason ~ppw =
    { key; read_weight; write_weight; dominant_phase = phase;
      per_process_writes = ppw; decision = Keep; reason }
  in
  match terminal_scalar prog gty key.fieldsig with
  | Some Ast.Tlock -> keep "lock datum (handled by lock padding)" ~ppw:false
  | None -> keep "unresolvable field signature" ~ppw:false
  | Some (Ast.Tint | Ast.Tfloat) ->
    let share = write_weight /. total_write_weight in
    if write_weight = 0.0 then keep "read-only" ~ppw:false
    else if share < options.hot_threshold then
      keep
        (Printf.sprintf "below hotness threshold (%.2f%% of write weight)"
           (100.0 *. share))
        ~ppw:false
    else begin
      let nwriters =
        let c = ref 0 in
        for pid = 0 to Summary.nprocs summary - 1 do
          match Summary.get summary ~phase ~pid key with
          | Some a when not (Rsd.Set.is_empty a.writes) -> incr c
          | _ -> ()
        done;
        !c
      in
      let ppw = nwriters >= 2 && writes_per_process summary ~phase key in
      let private_r, shared_r, shared_rsds = read_classes summary key in
      let read_locality = has_locality shared_rsds in
      if ppw then begin
        (* group & transpose or indirection, if the reads allow it: the
           dominant read pattern must be per-process, or the shared reads
           must lack locality, or the writes must dominate them by an
           order of magnitude (Section 3.3) *)
        let reads_ok =
          shared_r = 0.0 || shared_r <= private_r || (not read_locality)
          || write_weight >= options.write_read_ratio *. shared_r
        in
        if not reads_ok then
          keep "reads are shared with locality and not write-dominated" ~ppw
        else
          match (key.fieldsig, Cells.array_dims prog gty) with
          | [], Some (dims, Ast.Scalar _) -> (
            let nprocs = Summary.nprocs summary in
            match find_pdv_axis summary ~phase key ~dims with
            | Some (axis, extent) when extent <= 2 * nprocs ->
              (* the axis really is the processor dimension *)
              { key; read_weight; write_weight; dominant_phase = phase;
                per_process_writes = ppw; decision = Group { axis };
                reason = "per-process writes; plain array with a PDV axis" }
            | Some _ | None -> (
              (* the per-process structure may live in the outer index
                 arithmetic of a flat array *)
              match find_regroup summary ~phase key ~nprocs with
              | Some d ->
                { key; read_weight; write_weight; dominant_phase = phase;
                  per_process_writes = ppw; decision = d;
                  reason = "per-process writes in flat index arithmetic" }
              | None ->
                keep "per-process writes but no single separating axis" ~ppw))
          | [ field ], _ -> (
            match gty with
            | Ast.Array (Ast.Struct sname, _) -> (
              let sdef = Ast.find_struct prog sname in
              match List.assoc_opt field sdef.fields with
              | Some (Ast.Array _) ->
                { key; read_weight; write_weight; dominant_phase = phase;
                  per_process_writes = ppw;
                  decision = Indirection { field };
                  reason = "per-process field embedded in a record array" }
              | Some _ -> (
                (* a scalar field, per-process because the *records* are
                   owned per-process: regroup the record array itself *)
                let nprocs = Summary.nprocs summary in
                match find_regroup summary ~phase key ~nprocs with
                | Some d ->
                  { key; read_weight; write_weight; dominant_phase = phase;
                    per_process_writes = ppw; decision = d;
                    reason = "per-process record ownership in a record array" }
                | None -> keep "per-process record field is not an array" ~ppw)
              | None -> keep "unknown field" ~ppw)
            | _ -> keep "per-process writes in an untransformable shape" ~ppw)
          | _ -> keep "per-process writes in an untransformable shape" ~ppw
      end
      else begin
        (* write-shared: pad & align only without processor/spatial locality *)
        let writes = all_rsds summary ~phase key ~write:true in
        let write_locality = has_locality writes in
        if nwriters < 2 then keep "single writing process" ~ppw:false
        else if (not write_locality) && not read_locality then
          let element = match gty with Ast.Array _ -> true | _ -> false in
          { key; read_weight; write_weight; dominant_phase = phase;
            per_process_writes = false; decision = Pad { element };
            reason = "write-shared without processor or spatial locality" }
        else keep "write-shared but accesses have spatial locality" ~ppw:false
      end
    end

let has_lock_cells prog =
  List.exists
    (fun (_, ty) ->
      let found = ref false in
      Cells.iter_scalars prog ty (fun _ s -> if s = Ast.Tlock then found := true);
      !found)
    prog.Ast.globals

(* Per-variable arbitration: several keys (fields) of one variable may ask
   for different transformations; the heaviest writer wins. *)
let arbitrate entries =
  let by_var = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.decision with
      | Keep -> ()
      | _ -> (
        let var = e.key.Summary.var in
        match Hashtbl.find_opt by_var var with
        | Some prev when prev.write_weight >= e.write_weight -> ()
        | _ -> Hashtbl.replace by_var var e))
    entries;
  by_var

let build_plan prog options entries summary =
  ignore summary;
  let by_var = arbitrate entries in
  let winners = Hashtbl.fold (fun _ e acc -> e :: acc) by_var [] in
  let winners =
    List.sort (fun a b -> compare a.key.Summary.var b.key.Summary.var) winners
  in
  (* group & transpose actions grouped by (phase, axis, extent) *)
  let groups = Hashtbl.create 8 in
  let actions = ref [] in
  List.iter
    (fun e ->
      let var = e.key.Summary.var in
      match e.decision with
      | Group { axis } ->
        let extent =
          match Cells.array_dims prog (Ast.find_global prog var) with
          | Some (dims, _) -> List.nth dims axis
          | None -> -1
        in
        let gkey = (e.dominant_phase, axis, extent) in
        let prev = Option.value (Hashtbl.find_opt groups gkey) ~default:[] in
        Hashtbl.replace groups gkey (var :: prev)
      | Regroup { ways; chunked } ->
        actions := Plan.Regroup { var; ways; chunked } :: !actions
      | Indirection _ ->
        (* gather every per-process field of this record array into one
           indirection (the per-process areas group them, Figure 2b) *)
        let fields =
          List.filter_map
            (fun e' ->
              match e'.decision with
              | Indirection { field } when e'.key.Summary.var = var -> Some field
              | _ -> None)
            entries
          |> List.sort_uniq compare
        in
        actions := Plan.Indirect { var; fields } :: !actions
      | Pad { element } -> actions := Plan.Pad_align { var; element } :: !actions
      | Keep -> ())
    winners;
  let group_actions =
    Hashtbl.fold
      (fun (_, axis, _) vars acc ->
        Plan.Group_transpose { vars = List.sort compare vars; pdv_axis = axis } :: acc)
      groups []
    |> List.sort compare
  in
  let lock_actions =
    if options.pad_locks && has_lock_cells prog then [ Plan.Pad_locks ] else []
  in
  group_actions @ List.rev !actions @ lock_actions

let plan ?(options = default_options) prog ~nprocs =
  let summary =
    Summary.analyze ~rsd_limit:options.rsd_limit ~profile:options.profile prog
      ~nprocs
  in
  let total_write_weight =
    List.fold_left
      (fun acc key -> acc +. Summary.write_weight summary key)
      0.0 (Summary.keys summary)
  in
  let total_write_weight = if total_write_weight <= 0.0 then 1.0 else total_write_weight in
  let entries =
    List.map (classify prog options summary total_write_weight) (Summary.keys summary)
  in
  let plan = build_plan prog options entries summary in
  Plan.validate prog plan;
  { entries; plan; summary }

let entries_for r var =
  List.filter (fun e -> e.key.Summary.var = var) r.entries

let decision_for r var =
  match
    List.find_opt (fun e -> e.decision <> Keep) (entries_for r var)
  with
  | Some e -> e.decision
  | None -> Keep

let decision_label = function
  | Keep -> None
  | Group { axis } -> Some (Printf.sprintf "group & transpose (axis %d)" axis)
  | Regroup { ways; chunked } ->
    Some
      (Printf.sprintf "regroup %d-way %s" ways
         (if chunked then "chunked" else "interleaved"))
  | Indirection { field } -> Some (Printf.sprintf "indirection on .%s" field)
  | Pad { element } ->
    Some (if element then "pad & align each element" else "pad & align")

let pp_decision fmt = function
  | Keep -> Format.pp_print_string fmt "keep"
  | Group { axis } -> Format.fprintf fmt "group&transpose(axis %d)" axis
  | Regroup { ways; chunked } ->
    Format.fprintf fmt "group&transpose(%d-way %s)" ways
      (if chunked then "chunked" else "strided")
  | Indirection { field } -> Format.fprintf fmt "indirection(%s)" field
  | Pad { element } ->
    Format.fprintf fmt "pad&align%s" (if element then "(per element)" else "")

let pp_report fmt r =
  Format.fprintf fmt "@[<v>plan: %a@," Plan.pp r.plan;
  List.iter
    (fun e ->
      Format.fprintf fmt "%-24s R%8.1f W%8.1f  ph%d  %-28s %s@,"
        (Summary.key_to_string e.key)
        e.read_weight e.write_weight e.dominant_phase
        (Format.asprintf "%a" pp_decision e.decision)
        e.reason)
    r.entries;
  Format.fprintf fmt "@]"
