(** The transformation heuristics of Section 3.3.

    Classifies every summarized shared datum from the per-process
    side-effect analysis and chooses a transformation:

    - {b group & transpose} when the writes are per-process (disjoint
      regular sections across process ids) and the variable is a plain
      array with an identifiable PDV axis;
    - {b indirection} when the per-process data is a field embedded in an
      array of records, so the layout of the record array itself cannot be
      transposed;
    - {b pad & align} when both reads and writes are shared across
      processes without processor or spatial locality (busy scalars,
      scattered record updates);
    - {b lock padding} always, when the program has locks.

    Group & transpose / indirection additionally require the reads to be
    per-process or shared {e without} locality; reads shared {e with}
    locality are tolerated only when writes outweigh reads by at least
    {!default_options.write_read_ratio} (an order of magnitude in the
    paper).  Data whose estimated access weight falls below
    [hot_threshold] (as a share of the total) is left untouched — the
    static-profiling misestimates the paper reports for busy scalars in
    Maxflow and Raytrace enter exactly here. *)

type options = {
  hot_threshold : float;    (** minimum share of total access weight *)
  write_read_ratio : float; (** writes must dominate reads by this factor
                                when reads are shared with locality *)
  rsd_limit : int;
  profile : bool;           (** static-profile weighting (ablation hook) *)
  pad_locks : bool;         (** pad locks (ablation hook) *)
}

val default_options : options

type decision =
  | Keep
  | Group of { axis : int }
  | Regroup of { ways : int; chunked : bool }
      (** group & transpose expressed on a flat array's outer index
          arithmetic; realized by {!Fs_layout.Plan.Regroup} *)
  | Indirection of { field : string }
  | Pad of { element : bool }

type entry = {
  key : Fs_analysis.Summary.key;
  read_weight : float;
  write_weight : float;
  dominant_phase : int;
  per_process_writes : bool;
  decision : decision;
  reason : string;  (** human-readable justification *)
}

type report = {
  entries : entry list;
  plan : Fs_layout.Plan.t;
  summary : Fs_analysis.Summary.t;
}

val plan : ?options:options -> Fs_ir.Ast.program -> nprocs:int -> report
(** Run the full analysis and heuristics.  The returned plan validates
    against the program. *)

val entries_for : report -> string -> entry list
(** The planner's per-variable classification: every summary entry whose
    key names [var], in report order (struct fields contribute one entry
    each).  This is the hook dynamic consumers — hot-line forensics, the
    feedback repair loop — use to ask what the static analysis thought of
    a variable and why. *)

val decision_for : report -> string -> decision
(** The planner's effective decision for [var]: the first non-[Keep]
    decision among {!entries_for} (mirroring the per-variable arbitration
    that builds the plan), or [Keep]. *)

val decision_label : decision -> string option
(** Human-readable name of a transformation decision; [None] for [Keep]. *)

val pp_report : Format.formatter -> report -> unit
