module Workload = Fs_workloads.Workload
module Workloads = Fs_workloads.Workloads
module Plan = Fs_layout.Plan
module Mpcache = Fs_cache.Mpcache
module Table = Fs_util.Table
module Par = Fs_util.Par
module Json = Fs_obs.Json
module E = Falseshare.Experiments
module Trace_memo = Falseshare.Trace_memo
module Sim = Falseshare.Sim

type cell = { accesses : int; misses : int; false_sharing : int }

type refined = {
  rcell : cell;
  iters : int;
  stop : Repair.stop;
  repairs : string list;
}

type row = {
  name : string;
  procs : int;
  block : int;
  unopt : cell;
  compiler : cell;
  feedback : refined;
  programmer : cell option;
  feedback_p : refined option;
  locks_repaired : bool;
}

let cell_of_counts (c : Mpcache.counts) =
  {
    accesses = Mpcache.accesses c;
    misses = Mpcache.misses c;
    false_sharing = c.Mpcache.false_sh;
  }

let refined_of (r : Repair.t) =
  {
    rcell = cell_of_counts r.Repair.final;
    iters = Repair.accepted r;
    stop = r.Repair.stop;
    repairs =
      List.filter_map
        (fun (it : Repair.iteration) ->
          Option.map Repair.candidate_label it.Repair.applied)
        r.Repair.iterations;
  }

let table ?(blocks = [ 16; 128 ]) ?scale_override ?options ?jobs () =
  let configs =
    List.map
      (fun (w : Workload.t) ->
        (w, w.fig3_procs, Option.value scale_override ~default:w.default_scale))
      Workloads.all
  in
  let entries = Trace_memo.get_all ?jobs configs in
  let tasks =
    List.concat
      (List.map2
         (fun (w, nprocs, scale) (e : Trace_memo.entry) ->
           let cplan = E.plan_for w Workload.C e.prog ~nprocs ~scale in
           let pplan =
             if List.mem Workload.P w.Workload.versions then
               Some (E.plan_for w Workload.P e.prog ~nprocs ~scale)
             else None
           in
           List.map (fun block -> (w, nprocs, e, cplan, pplan, block)) blocks)
         configs entries)
  in
  Par.map ?jobs
    (fun ((w : Workload.t), nprocs, (e : Trace_memo.entry), cplan, pplan, block)
    ->
      let recorded = E.recorded_of e in
      let counts plan =
        cell_of_counts (Sim.cache_sim ~recorded e.prog plan ~nprocs ~block).Sim.counts
      in
      let f = Repair.refine ?options ~recorded e.prog cplan ~nprocs ~block in
      let fp =
        Option.map
          (fun p -> Repair.refine ?options ~recorded e.prog p ~nprocs ~block)
          pplan
      in
      let locks_repaired =
        match (pplan, fp) with
        | Some p, Some r ->
          (not (List.mem Plan.Pad_locks p))
          && List.mem Plan.Pad_locks r.Repair.plan
        | _ -> false
      in
      {
        name = w.name;
        procs = nprocs;
        block;
        unopt = counts Plan.empty;
        compiler = counts cplan;
        feedback = refined_of f;
        programmer = Option.map counts pplan;
        feedback_p = Option.map refined_of fp;
        locks_repaired;
      })
    tasks

let rate num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let render rows =
  let header =
    [ "program"; "P"; "block"; "N FS%"; "C FS%"; "F FS%"; "C->F removed";
      "iters"; "stop"; "P FS%"; "F(P) FS%"; "locks fixed" ]
  in
  let body =
    List.map
      (fun r ->
        let fs c = Table.pct (rate c.false_sharing c.accesses) in
        let removed =
          if r.compiler.false_sharing = 0 then "-"
          else
            Table.pct
              (rate
                 (r.compiler.false_sharing - r.feedback.rcell.false_sharing)
                 r.compiler.false_sharing)
        in
        [ r.name;
          string_of_int r.procs;
          string_of_int r.block;
          fs r.unopt;
          fs r.compiler;
          fs r.feedback.rcell;
          removed;
          string_of_int r.feedback.iters;
          Repair.stop_to_string r.feedback.stop;
          (match r.programmer with Some c -> fs c | None -> "-");
          (match r.feedback_p with Some f -> fs f.rcell | None -> "-");
          (if r.locks_repaired then "yes"
           else match r.feedback_p with Some _ -> "no" | None -> "-") ])
      rows
  in
  Table.render ~header body

let cell_json c =
  Json.Obj
    [ ("accesses", Json.Int c.accesses);
      ("misses", Json.Int c.misses);
      ("false_sharing", Json.Int c.false_sharing) ]

let refined_json f =
  Json.Obj
    [ ("counts", cell_json f.rcell);
      ("iterations", Json.Int f.iters);
      ("stop", Json.String (Repair.stop_to_string f.stop));
      ("repairs", Json.List (List.map (fun s -> Json.String s) f.repairs)) ]

let to_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [ ("program", Json.String r.name);
             ("procs", Json.Int r.procs);
             ("block", Json.Int r.block);
             ("unopt", cell_json r.unopt);
             ("compiler", cell_json r.compiler);
             ("feedback", refined_json r.feedback);
             ("programmer",
              match r.programmer with
              | None -> Json.Null
              | Some c -> cell_json c);
             ("feedback_from_programmer",
              match r.feedback_p with
              | None -> Json.Null
              | Some f -> refined_json f);
             ("locks_repaired", Json.Bool r.locks_repaired) ])
       rows)

(* ------------------------------------------------------------------ *)
(* The stealing table: N/C/F over the dynamic workload family.  The
   compiler version is planned from the AST, which shows neither the
   scheduler's deque traffic nor which process a stolen task's writes
   land on — so C leaves residual false sharing that the profile-guided
   repair removes.  The deque columns isolate the scheduler's own share:
   false-sharing misses on blocks owned by the [__sched_] globals.      *)

module Sched = Fs_sched.Sched
module Attribution = Falseshare.Attribution
module Layout = Fs_layout.Layout
module Cell_trace = Fs_trace.Cell_trace
module Cell_event = Fs_trace.Cell_event

type steal_row = {
  sname : string;
  sprocs : int;
  sblock : int;
  sseed : int;
  stasks : int;   (** tasks spawned (0 for a disk-loaded trace) *)
  ssteals : int;  (** steal events in the trace *)
  sunopt : cell;
  scompiler : cell;
  sfeedback : refined;
  deque_fs_c : int;  (** false-sharing misses on scheduler blocks under C *)
  deque_fs_f : int;  (** ... and after repair *)
}

let steal_count trace =
  let n = ref 0 in
  Cell_trace.iter
    (function Cell_event.Steal _ -> incr n | _ -> ())
    trace;
  !n

(* false-sharing misses charged to blocks the scheduler globals own *)
let sched_fs ~recorded prog plan ~nprocs ~block =
  let run = Sim.cache_sim ~track_blocks:true ~recorded prog plan ~nprocs ~block in
  let layout = Layout.realize prog plan ~block in
  let owner = Attribution.block_owner prog layout ~block in
  List.fold_left
    (fun acc (b, (c : Mpcache.counts)) ->
      if Sched.is_sched_var (owner b) then acc + c.Mpcache.false_sh else acc)
    0 run.Sim.per_block

let stealing_table ?(blocks = [ 16; 128 ]) ?(seed = 42) ?scale_override
    ?options ?jobs () =
  let configs =
    List.map
      (fun (w : Workload.t) ->
        (w, w.fig3_procs, Option.value scale_override ~default:w.default_scale))
      Workloads.dynamic
  in
  let entries = Trace_memo.get_all ?jobs ~seed configs in
  let tasks =
    List.concat
      (List.map2
         (fun (w, nprocs, scale) (e : Trace_memo.entry) ->
           let cplan = E.plan_for w Workload.C e.prog ~nprocs ~scale in
           List.map (fun block -> (w, nprocs, e, cplan, block)) blocks)
         configs entries)
  in
  Par.map ?jobs
    (fun ((w : Workload.t), nprocs, (e : Trace_memo.entry), cplan, block) ->
      let recorded = E.recorded_of e in
      let counts plan =
        cell_of_counts
          (Sim.cache_sim ~recorded e.prog plan ~nprocs ~block).Sim.counts
      in
      let f = Repair.refine ?options ~recorded e.prog cplan ~nprocs ~block in
      {
        sname = w.name;
        sprocs = nprocs;
        sblock = block;
        sseed = seed;
        stasks =
          (match e.interp.Fs_interp.Interp.sched with
           | Some s -> s.Sched.tasks
           | None -> 0);
        ssteals = steal_count e.trace;
        sunopt = counts Plan.empty;
        scompiler = counts cplan;
        sfeedback = refined_of f;
        deque_fs_c = sched_fs ~recorded e.prog cplan ~nprocs ~block;
        deque_fs_f = sched_fs ~recorded e.prog f.Repair.plan ~nprocs ~block;
      })
    tasks

let render_stealing rows =
  let header =
    [ "program"; "P"; "block"; "tasks"; "steals"; "N FS"; "C FS"; "F FS";
      "C->F removed"; "deque FS C"; "deque FS F"; "repairs" ]
  in
  let body =
    List.map
      (fun r ->
        let removed =
          if r.scompiler.false_sharing = 0 then "-"
          else
            Table.pct
              (rate
                 (r.scompiler.false_sharing - r.sfeedback.rcell.false_sharing)
                 r.scompiler.false_sharing)
        in
        [ r.sname;
          string_of_int r.sprocs;
          string_of_int r.sblock;
          string_of_int r.stasks;
          string_of_int r.ssteals;
          string_of_int r.sunopt.false_sharing;
          string_of_int r.scompiler.false_sharing;
          string_of_int r.sfeedback.rcell.false_sharing;
          removed;
          string_of_int r.deque_fs_c;
          string_of_int r.deque_fs_f;
          String.concat "; " r.sfeedback.repairs ])
      rows
  in
  Table.render ~header body

let stealing_to_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [ ("program", Json.String r.sname);
             ("procs", Json.Int r.sprocs);
             ("block", Json.Int r.sblock);
             ("seed", Json.Int r.sseed);
             ("tasks", Json.Int r.stasks);
             ("steals", Json.Int r.ssteals);
             ("unopt", cell_json r.sunopt);
             ("compiler", cell_json r.scompiler);
             ("feedback", refined_json r.sfeedback);
             ("deque_fs_compiler", Json.Int r.deque_fs_c);
             ("deque_fs_feedback", Json.Int r.deque_fs_f) ])
       rows)
