(** Profile-guided layout repair: replay → diagnose → patch, to fixpoint.

    The static planner of {!Fs_transform.Transform} works from per-process
    side-effect summaries; the paper itself reports the cases where that
    profile misleads it — busy scalars whose weight the static profile
    underestimates (Maxflow, Raytrace), and dynamically partitioned arrays
    whose revolving ownership has no PDV axis to group on (Topopt).  This
    module closes the loop from the dynamic side: given one recorded cell
    trace and a starting plan, it replays under the plan with line tracking
    on, reads repair candidates off the hot-line forensics
    ({!Falseshare.Hotlines}), scores them with a cost model (false-sharing
    misses removed against space overhead and indirection loads), applies
    the best candidate as a plan delta through {!Fs_layout.Plan.merge}, and
    iterates until no candidate survives.

    Everything is deterministic — candidates are ranked by score with total
    tie-breaks — and the loop is accept-only-if-better: a delta is kept
    only when the replayed false-sharing count strictly drops and total
    misses do not rise, so a refined plan never regresses the plan it
    started from. *)

type options = {
  max_iters : int;     (** cap on accepted repairs (default 5) *)
  top : int;           (** hot lines tracked per diagnosis (default 64) *)
  min_fs_gain : int;
      (** stop once an accepted repair removes fewer false-sharing misses
          than this (default 1: any strict improvement continues) *)
  space_weight : float;
      (** score penalty per cache block of layout growth *)
  load_weight : float;
      (** score penalty per estimated injected pointer load *)
  cache_bytes : int;   (** simulated L1 capacity *)
  assoc : int;         (** simulated L1 associativity *)
}

val default_options : options

(** What a candidate does, in terms a narration can print and a test can
    pattern-match. *)
type kind =
  | Pad_hot_scalars of string list
      (** pad & align every unclaimed data scalar co-allocated in the hot
          blocks — the busy-scalar repair; the payload lists the padded
          variables in declaration order *)
  | Pad_lock_cells
      (** add {!Fs_layout.Plan.Pad_locks}: a falsely shared line holds a
          lock co-allocated with data (or another lock) *)
  | Partition_array of { ways : int; chunked : bool }
      (** regroup a revolving array so inferred per-processor partitions
          start on block boundaries *)
  | Widen_pad  (** replace a whole-variable pad with a per-element pad *)
  | Pad_elements
      (** pad & align every element of an array (the record-array repair) *)
  | Isolate_variable
      (** pad & align the variable as a unit, splitting it from whatever
          shares its blocks *)
  | Indirect_fields of string list
      (** hoist per-process array fields out of an array of records *)

type candidate = {
  target : string;  (** the variable that motivated the repair *)
  kind : kind;
  adds : Fs_layout.Plan.action list;
  drops : Fs_layout.Plan.action list;
      (** existing actions the delta replaces (widening a pad) *)
  est_fs : int;
      (** false-sharing misses on the hot lines this repair addresses *)
  space_blocks : int;
      (** exact layout growth, in blocks, of applying the delta *)
  load_est : int;  (** extra pointer loads (indirection only) *)
  score : float;   (** est_fs - space_weight*space - load_weight*loads *)
}

val candidate_label : candidate -> string

val apply : Fs_layout.Plan.t -> candidate -> Fs_layout.Plan.t
(** Drop [drops], then {!Fs_layout.Plan.merge} in [adds].
    @raise Fs_layout.Plan.Plan_error on a conflicting delta. *)

val extract :
  ?options:options ->
  Fs_ir.Ast.program ->
  Fs_layout.Plan.t ->
  Falseshare.Hotlines.t ->
  candidate list
(** Read repair candidates off a hot-line report produced under [plan],
    scored and sorted best-first.  Candidates whose delta does not
    validate against the program are silently dropped; the list may pair
    alternatives for the same variable (partition vs. isolate vs. pad) —
    the refinement loop tries them in score order. *)

type iteration = {
  index : int;  (** 1-based *)
  considered : candidate list;  (** scored candidates, best first *)
  applied : candidate option;
      (** [None] only in a final round where no candidate passed the
          accept gate *)
  fs_before : int;
  fs_after : int;
  misses_before : int;
  misses_after : int;
}

type stop =
  | Zero_fs        (** no false-sharing misses remain *)
  | Exhausted      (** diagnosis produced no candidates *)
  | No_gain
      (** no candidate passed the accept gate, or the accepted gain fell
          below [min_fs_gain] *)
  | Iteration_cap

val stop_to_string : stop -> string

type t = {
  nprocs : int;
  block : int;
  plan0 : Fs_layout.Plan.t;   (** the starting plan *)
  plan : Fs_layout.Plan.t;    (** the refined plan *)
  initial : Fs_cache.Mpcache.counts;
  final : Fs_cache.Mpcache.counts;
  iterations : iteration list;
  stop : stop;
}

val refine :
  ?options:options ->
  ?sched:Fs_sched.Sched.config ->
  ?recorded:Falseshare.Sim.recorded ->
  Fs_ir.Ast.program ->
  Fs_layout.Plan.t ->
  nprocs:int ->
  block:int ->
  t
(** Run the loop.  [recorded] must come from the same program at the same
    [nprocs]; when omitted, one execution is recorded first.  Guarantees
    [final.false_sh <= initial.false_sh] and
    [misses final <= misses initial].
    @raise Fs_layout.Plan.Plan_error when [plan0] itself is invalid. *)

val accepted : t -> int
(** Number of repairs the gate accepted. *)

val removed_fraction : t -> float
(** Share of the starting plan's false-sharing misses the refinement
    removed; 0 when there were none. *)

val render : t -> string
(** Per-iteration narration plus the final plan. *)

val to_json : t -> Fs_obs.Json.t
