module Ast = Fs_ir.Ast
module Cells = Fs_ir.Cells
module Plan = Fs_layout.Plan
module Layout = Fs_layout.Layout
module Mpcache = Fs_cache.Mpcache
module Json = Fs_obs.Json
module Hotlines = Falseshare.Hotlines
module Attribution = Falseshare.Attribution
module Sim = Falseshare.Sim

type options = {
  max_iters : int;
  top : int;
  min_fs_gain : int;
  space_weight : float;
  load_weight : float;
  cache_bytes : int;
  assoc : int;
}

let default_options =
  {
    max_iters = 5;
    top = 64;
    min_fs_gain = 1;
    space_weight = 0.25;
    load_weight = 0.05;
    cache_bytes = 32 * 1024;
    assoc = 4;
  }

type kind =
  | Pad_hot_scalars of string list
  | Pad_lock_cells
  | Partition_array of { ways : int; chunked : bool }
  | Widen_pad
  | Pad_elements
  | Isolate_variable
  | Indirect_fields of string list

type candidate = {
  target : string;
  kind : kind;
  adds : Plan.action list;
  drops : Plan.action list;
  est_fs : int;
  space_blocks : int;
  load_est : int;
  score : float;
}

let candidate_label c =
  match c.kind with
  | Pad_hot_scalars vars ->
    Printf.sprintf "pad & align busy scalars {%s}" (String.concat ", " vars)
  | Pad_lock_cells -> "pad & align lock cells"
  | Partition_array { ways; chunked } ->
    Printf.sprintf "regroup %s %d-way (%s) to block-align its partitions"
      c.target ways
      (if chunked then "chunked" else "strided")
  | Widen_pad -> Printf.sprintf "widen the pad of %s to per-element" c.target
  | Pad_elements -> Printf.sprintf "pad & align each element of %s" c.target
  | Isolate_variable -> Printf.sprintf "isolate %s in its own block(s)" c.target
  | Indirect_fields fields ->
    Printf.sprintf "indirect per-process fields %s.{%s}" c.target
      (String.concat ", " fields)

let apply plan cand =
  let base = List.filter (fun a -> not (List.mem a cand.drops)) plan in
  Plan.merge base cand.adds

(* ------------------------------------------------------------------ *)
(* Candidate extraction                                               *)
(* ------------------------------------------------------------------ *)

let is_pseudo v = v = Attribution.pointer_owner || v = Attribution.unmapped_owner

(* Blocks holding at least one lock cell under [layout]. *)
let lock_blocks prog layout ~block =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, ty) ->
      let vl = Layout.lookup layout v in
      Cells.iter_scalars prog ty (fun i s ->
          if s = Ast.Tlock then
            Hashtbl.replace tbl (vl.Layout.addr.(i) / block) ()))
    prog.Ast.globals;
  tbl

(* Per-cell writer masks read off the tracked lines: bit [p] of the mask is
   set when processor [p] wrote the cell's word; -1 when the cell's line
   was not tracked. *)
let cell_masks (h : Hotlines.t) layout var ncells =
  let block = h.Hotlines.block in
  let lines = Hashtbl.create 16 in
  List.iter
    (fun (hl : Hotlines.hot) ->
      Hashtbl.replace lines hl.line.Mpcache.line_block
        hl.line.Mpcache.word_writers)
    h.hot;
  let vl = Layout.lookup layout var in
  Array.init ncells (fun c ->
      let addr = vl.Layout.addr.(c) in
      match Hashtbl.find_opt lines (addr / block) with
      | Some ww -> ww.((addr mod block) / Ast.word_size)
      | None -> -1)

(* Lengths of maximal runs of equal, known, written masks. *)
let mask_runs masks =
  let runs = ref [] in
  let n = Array.length masks in
  let i = ref 0 in
  while !i < n do
    let m = masks.(!i) in
    let j = ref !i in
    while !j < n && masks.(!j) = m do
      incr j
    done;
    if m > 0 then runs := (!j - !i) :: !runs;
    i := !j
  done;
  List.rev !runs

(* Most frequent run length; ties broken toward the longer run (partial
   partitions at the array tail produce one short run each). *)
let mode_run runs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Hashtbl.replace tbl r
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl r)))
    runs;
  Hashtbl.fold
    (fun len cnt best ->
      match best with
      | Some (blen, bcnt) when (cnt, len) <= (bcnt, blen) -> best
      | _ -> Some (len, cnt))
    tbl None

(* Infer the dynamic partitioning of an array from the word-writer masks:
   runs of adjacent cells sharing a writer set are contiguous partitions
   (regroup chunked so each starts on a block boundary); a periodic mask
   over the outer index is a strided partition. *)
let infer_partition prog (h : Hotlines.t) layout var ty =
  match ty with
  | Ast.Array (elt_ty, d0) -> (
    let cells_per_outer = Cells.count prog elt_ty in
    let ncells = cells_per_outer * d0 in
    let masks = cell_masks h layout var ncells in
    let known =
      Array.fold_left (fun n m -> if m >= 0 then n + 1 else n) 0 masks
    in
    let distinct = Hashtbl.create 8 in
    Array.iter (fun m -> if m > 0 then Hashtbl.replace distinct m ()) masks;
    if 2 * known < ncells || Hashtbl.length distinct < 2 then None
    else
      match mode_run (mask_runs masks) with
      | None -> None
      | Some (run, _) ->
        if run >= 2 * cells_per_outer && run mod cells_per_outer = 0 then begin
          let chunk = run / cells_per_outer in
          let ways = (d0 + chunk - 1) / chunk in
          if ways >= 2 && ways <= d0 then Some (ways, true) else None
        end
        else if run = cells_per_outer then begin
          (* adjacent outer elements have different writers: look for the
             smallest period over the outer index *)
          let om = Array.init d0 (fun i -> masks.(i * cells_per_outer)) in
          let valid p =
            let ok = ref true in
            for i = 0 to d0 - 1 - p do
              if om.(i) >= 0 && om.(i + p) >= 0 && om.(i) <> om.(i + p) then
                ok := false
            done;
            !ok
          in
          let rec find p =
            if p > d0 / 2 then None
            else if valid p then Some (p, false)
            else find (p + 1)
          in
          find 2
        end
        else None)
  | _ -> None

let indirect_fields prog (h : Hotlines.t) sname =
  let s = Ast.find_struct prog sname in
  List.filter_map
    (fun (f, fty) ->
      match fty with
      | Ast.Array (_, n) when n = h.Hotlines.nprocs -> Some f
      | _ -> None)
    s.Ast.fields

let score_candidate opts prog plan ~block ~base_bytes c =
  match
    try
      let bytes = Layout.size (Layout.realize prog (apply plan c) ~block) in
      Some ((bytes - base_bytes) / block)
    with Plan.Plan_error _ -> None
  with
  | None -> None
  | Some blocks ->
    let score =
      float_of_int c.est_fs
      -. (opts.space_weight *. float_of_int blocks)
      -. (opts.load_weight *. float_of_int c.load_est)
    in
    Some { c with space_blocks = blocks; score }

let extract ?(options = default_options) prog plan (h : Hotlines.t) =
  let block = h.Hotlines.block in
  let layout = Layout.realize prog plan ~block in
  let base_bytes = Layout.size layout in
  let claimed = Plan.transformed_vars plan in
  let is_claimed v = List.mem v claimed in
  let locks = lock_blocks prog layout ~block in
  (* any line carrying false-sharing misses is a lead, whatever the
     dominant verdict — the paper's busy scalars (Maxflow's queue heads)
     hide on true-sharing-dominant lines, and the accept gate will throw
     out repairs that do not actually help *)
  let fs_lines =
    List.filter
      (fun (hl : Hotlines.hot) -> hl.counts.Mpcache.false_sh > 0)
      h.hot
  in
  let lock_lines, data_lines =
    List.partition
      (fun (hl : Hotlines.hot) ->
        Hashtbl.mem locks hl.line.Mpcache.line_block)
      fs_lines
  in
  let sum_fs ls =
    List.fold_left
      (fun a (hl : Hotlines.hot) -> a + hl.counts.Mpcache.false_sh)
      0 ls
  in
  let raw = ref [] in
  let mk target kind adds drops est_fs load_est =
    raw :=
      { target; kind; adds; drops; est_fs; space_blocks = 0; load_est;
        score = 0. }
      :: !raw
  in
  (* a falsely shared line holding a lock: pad the lock cells *)
  if lock_lines <> [] && not (List.mem Plan.Pad_locks plan) then
    mk "(locks)" Pad_lock_cells [ Plan.Pad_locks ] [] (sum_fs lock_lines) 0;
  (* group the data lines by owning variable, hottest owner first *)
  let by_owner : (string, Hotlines.hot list ref) Hashtbl.t = Hashtbl.create 8 in
  let owners = ref [] in
  List.iter
    (fun (hl : Hotlines.hot) ->
      if not (is_pseudo hl.owner) then
        match Hashtbl.find_opt by_owner hl.owner with
        | Some l -> l := hl :: !l
        | None ->
          Hashtbl.add by_owner hl.owner (ref [ hl ]);
          owners := hl.owner :: !owners)
    data_lines;
  let owners = List.rev !owners in
  let lines_of v = List.rev !(Hashtbl.find by_owner v) in
  (* busy scalars: one joint candidate padding every unclaimed data scalar
     co-allocated in the scalar-owned hot blocks *)
  let scalar_owners =
    List.filter
      (fun v ->
        match List.assoc_opt v prog.Ast.globals with
        | Some ty -> Cells.count prog ty = 1 && not (is_claimed v)
        | None -> false)
      owners
  in
  (if scalar_owners <> [] then begin
     let lines = List.concat_map lines_of scalar_owners in
     let hot_blocks = Hashtbl.create 8 in
     List.iter
       (fun (hl : Hotlines.hot) ->
         Hashtbl.replace hot_blocks hl.line.Mpcache.line_block ())
       lines;
     let pads =
       List.filter_map
         (fun (v, ty) ->
           if Cells.count prog ty <> 1 || is_claimed v then None
           else
             match ty with
             | Ast.Scalar Ast.Tlock -> None
             | _ ->
               let vl = Layout.lookup layout v in
               if Hashtbl.mem hot_blocks (vl.Layout.addr.(0) / block) then
                 Some v
               else None)
         prog.Ast.globals
     in
     if pads <> [] then
       mk (List.hd scalar_owners) (Pad_hot_scalars pads)
         (List.map (fun v -> Plan.Pad_align { var = v; element = false }) pads)
         [] (sum_fs lines) 0
   end);
  (* arrays and records, one owner at a time *)
  List.iter
    (fun v ->
      match List.assoc_opt v prog.Ast.globals with
      | None -> ()
      | Some ty when Cells.count prog ty = 1 -> ()
      | Some ty ->
        let lines = lines_of v in
        let est = sum_fs lines in
        if is_claimed v then begin
          (* the one repair available to an already-transformed variable:
             widen a whole-variable pad to per-element *)
          match
            List.find_opt
              (function
                | Plan.Pad_align { var; element = false } -> var = v
                | _ -> false)
              plan
          with
          | Some old ->
            mk v Widen_pad
              [ Plan.Pad_align { var = v; element = true } ]
              [ old ] est 0
          | None -> ()
        end
        else begin
          let loads =
            List.fold_left
              (fun a (hl : Hotlines.hot) ->
                a + hl.line.Mpcache.line_reads + hl.line.Mpcache.line_writes)
              0 lines
          in
          let isolate () =
            mk v Isolate_variable
              [ Plan.Pad_align { var = v; element = false } ]
              [] est 0
          in
          let pad_elements () =
            mk v Pad_elements
              [ Plan.Pad_align { var = v; element = true } ]
              [] est 0
          in
          match Cells.array_dims prog ty with
          | Some (_, Ast.Scalar s) ->
            if s <> Ast.Tlock then begin
              (match infer_partition prog h layout v ty with
               | Some (ways, chunked) ->
                 mk v
                   (Partition_array { ways; chunked })
                   [ Plan.Regroup { var = v; ways; chunked } ]
                   [] est 0
               | None -> ());
              isolate ();
              pad_elements ()
            end
          | Some (_, Ast.Struct sname) ->
            (match indirect_fields prog h sname with
             | [] -> ()
             | fields ->
               mk v (Indirect_fields fields)
                 [ Plan.Indirect { var = v; fields } ]
                 [] est loads);
            pad_elements ();
            isolate ()
          | Some (_, Ast.Array _) -> ()
          | None -> isolate ()
        end)
    owners;
  List.rev !raw
  |> List.filter_map (score_candidate options prog plan ~block ~base_bytes)
  |> List.sort (fun a b ->
         let c = compare b.score a.score in
         if c <> 0 then c
         else
           let c = compare b.est_fs a.est_fs in
           if c <> 0 then c
           else
             let c = compare a.target b.target in
             if c <> 0 then c
             else compare (candidate_label a) (candidate_label b))

(* ------------------------------------------------------------------ *)
(* The refinement loop                                                *)
(* ------------------------------------------------------------------ *)

type iteration = {
  index : int;
  considered : candidate list;
  applied : candidate option;
  fs_before : int;
  fs_after : int;
  misses_before : int;
  misses_after : int;
}

type stop = Zero_fs | Exhausted | No_gain | Iteration_cap

let stop_to_string = function
  | Zero_fs -> "no false-sharing misses remain"
  | Exhausted -> "no repair candidates remain"
  | No_gain -> "no further false-sharing improvement"
  | Iteration_cap -> "iteration cap reached"

type t = {
  nprocs : int;
  block : int;
  plan0 : Plan.t;
  plan : Plan.t;
  initial : Mpcache.counts;
  final : Mpcache.counts;
  iterations : iteration list;
  stop : stop;
}

let accepted t =
  List.length (List.filter (fun it -> it.applied <> None) t.iterations)

let removed_fraction t =
  let fs0 = t.initial.Mpcache.false_sh in
  if fs0 = 0 then 0.
  else float_of_int (fs0 - t.final.Mpcache.false_sh) /. float_of_int fs0

let refine ?(options = default_options) ?sched ?recorded prog plan0 ~nprocs
    ~block =
  Fs_obs.Span.timed "refine"
    ~attrs:
      [ ("nprocs", string_of_int nprocs);
        ("block", string_of_int block);
        ("max_iters", string_of_int options.max_iters) ]
  @@ fun () ->
  Plan.validate prog plan0;
  let recorded =
    match recorded with Some r -> r | None -> Sim.record ?sched prog ~nprocs
  in
  let eval plan =
    let run =
      Sim.cache_sim ~cache_bytes:options.cache_bytes ~assoc:options.assoc
        ~recorded prog plan ~nprocs ~block
    in
    Mpcache.copy_counts run.Sim.counts
  in
  let c0 = eval plan0 in
  let rec loop plan (c : Mpcache.counts) naccepted iters =
    if c.Mpcache.false_sh = 0 then (plan, c, List.rev iters, Zero_fs)
    else if naccepted >= options.max_iters then
      (plan, c, List.rev iters, Iteration_cap)
    else begin
      (* each iteration is its own span; the recursion happens outside it
         so successive iterations are siblings under "refine", not an
         ever-deepening nest *)
      let outcome =
        Fs_obs.Span.timed "iteration"
          ~attrs:[ ("index", string_of_int (naccepted + 1)) ]
        @@ fun () ->
        let h =
          Hotlines.analyze ~cache_bytes:options.cache_bytes ~assoc:options.assoc
            ~top:options.top ~recorded prog plan ~nprocs ~block
        in
        match extract ~options prog plan h with
        | [] -> `Stop (plan, c, List.rev iters, Exhausted)
        | cands -> (
          (* try candidates best-first against the accept gate: false sharing
             must strictly drop and total misses must not rise *)
          let pick =
            List.find_map
              (fun cand ->
                match
                  try Some (apply plan cand) with Plan.Plan_error _ -> None
                with
                | None -> None
                | Some plan' ->
                  let c' = eval plan' in
                  if
                    c'.Mpcache.false_sh < c.Mpcache.false_sh
                    && Mpcache.misses c' <= Mpcache.misses c
                  then Some (cand, plan', c')
                  else None)
              cands
          in
          Fs_obs.Span.note "candidates" (string_of_int (List.length cands));
          match pick with
          | None ->
            let it =
              { index = naccepted + 1; considered = cands; applied = None;
                fs_before = c.Mpcache.false_sh; fs_after = c.Mpcache.false_sh;
                misses_before = Mpcache.misses c;
                misses_after = Mpcache.misses c }
            in
            `Stop (plan, c, List.rev (it :: iters), No_gain)
          | Some (cand, plan', c') ->
            let it =
              { index = naccepted + 1; considered = cands; applied = Some cand;
                fs_before = c.Mpcache.false_sh; fs_after = c'.Mpcache.false_sh;
                misses_before = Mpcache.misses c;
                misses_after = Mpcache.misses c' }
            in
            if c.Mpcache.false_sh - c'.Mpcache.false_sh < options.min_fs_gain
            then `Stop (plan', c', List.rev (it :: iters), No_gain)
            else `Continue (plan', c', naccepted + 1, it :: iters))
      in
      match outcome with
      | `Stop r -> r
      | `Continue (plan', c', n', iters') -> loop plan' c' n' iters'
    end
  in
  let plan, final, iterations, stop = loop plan0 c0 0 [] in
  { nprocs; block; plan0; plan; initial = c0; final; iterations; stop }

(* ------------------------------------------------------------------ *)

let render t =
  let b = Buffer.create 1024 in
  let fs0 = t.initial.Mpcache.false_sh and fs1 = t.final.Mpcache.false_sh in
  Printf.bprintf b
    "feedback repair (%d processors, %dB blocks): false sharing %d -> %d"
    t.nprocs t.block fs0 fs1;
  if fs0 > 0 then Printf.bprintf b " (-%.1f%%)" (100. *. removed_fraction t);
  Printf.bprintf b ", total misses %d -> %d\n"
    (Mpcache.misses t.initial)
    (Mpcache.misses t.final);
  List.iter
    (fun it ->
      match it.applied with
      | Some c ->
        Printf.bprintf b
          "  iter %d: %s  [est -%d FS, %+d block(s)%s]  FS %d -> %d, misses \
           %d -> %d  (%d candidate(s) scored)\n"
          it.index (candidate_label c) c.est_fs c.space_blocks
          (if c.load_est > 0 then
             Printf.sprintf ", ~%d pointer loads" c.load_est
           else "")
          it.fs_before it.fs_after it.misses_before it.misses_after
          (List.length it.considered)
      | None ->
        Printf.bprintf b
          "  iter %d: %d candidate(s) scored, none passed the accept gate\n"
          it.index
          (List.length it.considered))
    t.iterations;
  Printf.bprintf b "  fixpoint: %s after %d accepted repair(s)\n"
    (stop_to_string t.stop) (accepted t);
  Printf.bprintf b "final plan: %s\n" (Format.asprintf "%a" Plan.pp t.plan);
  Buffer.contents b

let counts_json (c : Mpcache.counts) =
  Json.Obj
    [ ("reads", Json.Int c.Mpcache.reads);
      ("writes", Json.Int c.writes);
      ("cold", Json.Int c.cold);
      ("replacement", Json.Int c.repl);
      ("true_sharing", Json.Int c.true_sh);
      ("false_sharing", Json.Int c.false_sh);
      ("invalidations", Json.Int c.invalidations);
      ("upgrades", Json.Int c.upgrades);
      ("misses", Json.Int (Mpcache.misses c)) ]

let action_json a = Json.String (Format.asprintf "%a" Plan.pp_action a)

let candidate_json c =
  Json.Obj
    [ ("target", Json.String c.target);
      ("label", Json.String (candidate_label c));
      ("adds", Json.List (List.map action_json c.adds));
      ("drops", Json.List (List.map action_json c.drops));
      ("est_fs", Json.Int c.est_fs);
      ("space_blocks", Json.Int c.space_blocks);
      ("load_est", Json.Int c.load_est);
      ("score", Json.float c.score) ]

let to_json t =
  Json.Obj
    [ ("nprocs", Json.Int t.nprocs);
      ("block", Json.Int t.block);
      ("stop", Json.String (stop_to_string t.stop));
      ("accepted", Json.Int (accepted t));
      ("initial", counts_json t.initial);
      ("final", counts_json t.final);
      ("fs_removed_fraction", Json.float (removed_fraction t));
      ("plan0", Json.List (List.map action_json t.plan0));
      ("plan", Json.List (List.map action_json t.plan));
      ("iterations",
       Json.List
         (List.map
            (fun it ->
              Json.Obj
                [ ("index", Json.Int it.index);
                  ("applied",
                   match it.applied with
                   | None -> Json.Null
                   | Some c -> candidate_json c);
                  ("candidates", Json.Int (List.length it.considered));
                  ("fs_before", Json.Int it.fs_before);
                  ("fs_after", Json.Int it.fs_after);
                  ("misses_before", Json.Int it.misses_before);
                  ("misses_after", Json.Int it.misses_after) ])
            t.iterations)) ]
