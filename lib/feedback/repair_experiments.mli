(** The feedback experiment: N / C / P / F across the whole suite.

    Extends the paper's three-version comparison (not optimized, compiler
    optimized, programmer optimized) with a fourth column F — the compiler
    plan refined by the profile-guided repair loop of {!Repair} — and,
    where a programmer plan exists, F(P), the programmer plan refined the
    same way.  F(P) is where the loop repairs the programmers' documented
    layout mistakes: the hand plans that forgot to pad locks get
    [Pad_locks] back from the dynamic diagnosis.

    This driver lives in [fs_feedback] rather than
    [Falseshare.Experiments] because the repair engine consumes the
    hot-line forensics of the core library — the dependency points this
    way. *)

type cell = {
  accesses : int;
  misses : int;
  false_sharing : int;
}

type refined = {
  rcell : cell;              (** counts under the refined plan *)
  iters : int;               (** repairs the accept gate admitted *)
  stop : Repair.stop;
  repairs : string list;     (** labels of the applied candidates *)
}

type row = {
  name : string;
  procs : int;
  block : int;
  unopt : cell;
  compiler : cell;
  feedback : refined;              (** F: refine the compiler plan *)
  programmer : cell option;        (** None when the paper has no P *)
  feedback_p : refined option;     (** F(P): refine the programmer plan *)
  locks_repaired : bool;
      (** the programmer plan omitted [Pad_locks] and F(P) restored it *)
}

val table :
  ?blocks:int list ->
  ?scale_override:int ->
  ?options:Repair.options ->
  ?jobs:int ->
  unit ->
  row list
(** All ten workloads at their Figure 3 processor counts, one row per
    (workload, block); [blocks] defaults to [[16; 128]].  Traces come from
    the process-wide memo, rows are produced on the parallel pool, and the
    result is deterministic in input order. *)

val render : row list -> string

val to_json : row list -> Fs_obs.Json.t

(** {1 The stealing table}

    N / C / F over the dynamic (task-parallel) workload family, run on
    the seeded work-stealing scheduler.  The compiler plan is produced
    from the AST, which shows neither the scheduler's deque traffic nor
    which process a stolen task's writes land on, so C leaves residual
    false sharing; the repair loop removes it from the profile —
    including padding the scheduler's own [__sched_top]/[__sched_bot]
    index arrays. *)

type steal_row = {
  sname : string;
  sprocs : int;
  sblock : int;
  sseed : int;       (** the scheduler seed the whole row ran under *)
  stasks : int;      (** tasks spawned (0 for a disk-loaded trace) *)
  ssteals : int;     (** steal events counted in the trace *)
  sunopt : cell;
  scompiler : cell;
  sfeedback : refined;
  deque_fs_c : int;
      (** false-sharing misses on blocks owned by scheduler globals
          under the compiler plan *)
  deque_fs_f : int;  (** the same after repair *)
}

val stealing_table :
  ?blocks:int list ->
  ?seed:int ->
  ?scale_override:int ->
  ?options:Repair.options ->
  ?jobs:int ->
  unit ->
  steal_row list
(** One row per (dynamic workload, block); [blocks] defaults to
    [[16; 128]], [seed] to 42.  Deterministic: same seed, same rows. *)

val render_stealing : steal_row list -> string

val stealing_to_json : steal_row list -> Fs_obs.Json.t
