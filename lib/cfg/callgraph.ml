module Ast = Fs_ir.Ast

type t = {
  prog : Ast.program;
  callees_tbl : (string, string list) Hashtbl.t;
  callers_tbl : (string, string list) Hashtbl.t;
  recursive_tbl : (string, bool) Hashtbl.t;
  barriers_tbl : (string, int) Hashtbl.t;
}

let direct_callees (f : Ast.func) =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Ast.iter_stmts
    (fun s ->
      match s with
      | Ast.Call { callee; _ } | Ast.Spawn { callee; _ } ->
        if not (Hashtbl.mem seen callee) then begin
          Hashtbl.add seen callee ();
          acc := callee :: !acc
        end
      | _ -> ())
    f.body;
  List.rev !acc

(* Tarjan-free cycle detection: a function is recursive iff it can reach
   itself.  The graphs here are tiny, so a DFS per function is fine. *)
let can_reach callees_tbl start target =
  let visited = Hashtbl.create 16 in
  let rec go n =
    List.exists
      (fun c ->
        c = target
        || (not (Hashtbl.mem visited c))
           && (Hashtbl.add visited c ();
               match Hashtbl.find_opt callees_tbl c with
               | Some _ -> go c
               | None -> false))
      (match Hashtbl.find_opt callees_tbl n with Some l -> l | None -> [])
  in
  go start

let build (prog : Ast.program) =
  let callees_tbl = Hashtbl.create 16 in
  let callers_tbl = Hashtbl.create 16 in
  List.iter (fun (f : Ast.func) -> Hashtbl.add callers_tbl f.fname []) prog.funcs;
  List.iter
    (fun (f : Ast.func) ->
      let cs = direct_callees f in
      Hashtbl.add callees_tbl f.fname cs;
      List.iter
        (fun c ->
          match Hashtbl.find_opt callers_tbl c with
          | Some l when not (List.mem f.fname l) ->
            Hashtbl.replace callers_tbl c (f.fname :: l)
          | _ -> ())
        cs)
    prog.funcs;
  let recursive_tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      Hashtbl.add recursive_tbl f.fname (can_reach callees_tbl f.fname f.fname))
    prog.funcs;
  (* Static barrier counts, memoized; on-cycle calls contribute nothing
     beyond the first unrolling. *)
  let barriers_tbl = Hashtbl.create 16 in
  let rec barriers stack fname =
    match Hashtbl.find_opt barriers_tbl fname with
    | Some n -> n
    | None ->
      if List.mem fname stack then 0
      else begin
        let f = Ast.find_func prog fname in
        let n = ref 0 in
        Ast.iter_stmts
          (fun s ->
            match s with
            | Ast.Barrier -> incr n
            | Ast.Call { callee; _ } -> n := !n + barriers (fname :: stack) callee
            | _ -> ())
          f.body;
        (* Memoize only cycle-free results; recursive functions keep
           recomputing, which is fine at this scale. *)
        if not (Hashtbl.find recursive_tbl fname) then Hashtbl.add barriers_tbl fname !n;
        !n
      end
  in
  List.iter (fun (f : Ast.func) -> ignore (barriers [] f.fname)) prog.funcs;
  let t = { prog; callees_tbl; callers_tbl; recursive_tbl; barriers_tbl } in
  t

let callees t fname =
  match Hashtbl.find_opt t.callees_tbl fname with
  | Some l -> l
  | None -> raise Not_found

let callers t fname =
  match Hashtbl.find_opt t.callers_tbl fname with
  | Some l -> l
  | None -> raise Not_found

let reachable t =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec go n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.add visited n ();
      order := n :: !order;
      match Hashtbl.find_opt t.callees_tbl n with
      | Some cs -> List.iter go cs
      | None -> ()
    end
  in
  go t.prog.entry;
  List.rev !order

let is_recursive t fname =
  match Hashtbl.find_opt t.recursive_tbl fname with
  | Some b -> b
  | None -> raise Not_found

let barriers_in t fname =
  match Hashtbl.find_opt t.barriers_tbl fname with
  | Some n -> n
  | None ->
    (* recursive function: recompute with a cycle cut *)
    let rec barriers stack fname =
      if List.mem fname stack then 0
      else begin
        let f = Ast.find_func t.prog fname in
        let n = ref 0 in
        Ast.iter_stmts
          (fun s ->
            match s with
            | Ast.Barrier -> incr n
            | Ast.Call { callee; _ } -> n := !n + barriers (fname :: stack) callee
            | _ -> ())
          f.body;
        !n
      end
    in
    barriers [] fname
