module Ast = Fs_ir.Ast

type node_id = int

type node_kind =
  | Entry
  | Exit
  | Straight of Ast.stmt list
  | Branch of Ast.expr
  | Loop_head of Ast.expr

type node = {
  kind : node_kind;
  mutable succs : node_id list;  (* ordered: true/body edge first *)
  mutable preds : node_id list;
  depth : int;
}

type t = { nodes : node array; entry : node_id; exit_ : node_id }

type builder = { mutable acc : node list; mutable count : int }

let fresh b kind depth =
  let id = b.count in
  b.count <- id + 1;
  b.acc <- { kind; succs = []; preds = []; depth } :: b.acc;
  id

let node_of b id = List.nth b.acc (b.count - 1 - id)

let link b src dst =
  let s = node_of b src and d = node_of b dst in
  s.succs <- s.succs @ [ dst ];
  d.preds <- d.preds @ [ src ]

(* Statements that do not change control flow within the function.  Calls
   and returns are kept inside straight-line blocks: the interprocedural
   analyses handle calls themselves, and a return simply truncates the
   block's fallthrough (conservatively ignored here — the graph
   over-approximates flow, which is the safe direction for analysis). *)
let is_simple = function
  | Ast.Store _ | Ast.Set _ | Ast.Decl _ | Ast.Call _ | Ast.Spawn _
  | Ast.Sync | Ast.Return _ | Ast.Barrier | Ast.Lock _ | Ast.Unlock _ -> true
  | Ast.If _ | Ast.While _ | Ast.For _ -> false

(* Compile a block; returns the node every path of the block exits from. *)
let rec build_block b depth (stmts : Ast.block) ~from =
  match stmts with
  | [] -> from
  | _ ->
    let simple, rest =
      let rec span acc = function
        | s :: tl when is_simple s -> span (s :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      span [] stmts
    in
    let from =
      if simple = [] then from
      else begin
        let n = fresh b (Straight simple) depth in
        link b from n;
        n
      end
    in
    (match rest with
     | [] -> from
     | ctrl :: tail ->
       let after_ctrl =
         match ctrl with
         | Ast.If (c, b1, b2) ->
           let br = fresh b (Branch c) depth in
           link b from br;
           (* Build the true arm and link it to the join before building the
              false arm, so the branch node's successor order stays
              true-edge-first even when an arm is empty (an empty arm's
              [build_block] returns [br] itself). *)
           let t_end = build_block b depth b1 ~from:br in
           let join = fresh b (Straight []) depth in
           link b t_end join;
           let f_end = build_block b depth b2 ~from:br in
           if not (f_end = br && t_end = br) then link b f_end join;
           join
         | Ast.While (c, body) ->
           let head = fresh b (Loop_head c) depth in
           link b from head;
           let body_end = build_block b (depth + 1) body ~from:head in
           link b body_end head;
           let exit_n = fresh b (Straight []) depth in
           link b head exit_n;
           exit_n
         | Ast.For (v, lo, hi, body) ->
           (* model the trip test as a loop head on v < hi *)
           let init = fresh b (Straight [ Ast.Set (v, lo) ]) depth in
           link b from init;
           let head = fresh b (Loop_head (Ast.Binop (Ast.Lt, Ast.Priv v, hi))) depth in
           link b init head;
           let body_end = build_block b (depth + 1) body ~from:head in
           link b body_end head;
           let exit_n = fresh b (Straight []) depth in
           link b head exit_n;
           exit_n
         | _ -> assert false
       in
       build_block b depth tail ~from:after_ctrl)

let build (f : Ast.func) =
  let b = { acc = []; count = 0 } in
  let entry = fresh b Entry 0 in
  let last = build_block b 0 f.body ~from:entry in
  let exit_ = fresh b Exit 0 in
  link b last exit_;
  { nodes = Array.of_list (List.rev b.acc); entry; exit_ }

let entry t = t.entry
let exit_node t = t.exit_
let kind t id = t.nodes.(id).kind
let succs t id = t.nodes.(id).succs
let preds t id = t.nodes.(id).preds
let nodes t = List.init (Array.length t.nodes) Fun.id
let loop_depth t id = t.nodes.(id).depth

let pp fmt t =
  Array.iteri
    (fun i n ->
      let k =
        match n.kind with
        | Entry -> "entry"
        | Exit -> "exit"
        | Straight ss -> Printf.sprintf "straight(%d)" (List.length ss)
        | Branch _ -> "branch"
        | Loop_head _ -> "loop"
      in
      Format.fprintf fmt "%d:%s -> %s@." i k
        (String.concat "," (List.map string_of_int n.succs)))
    t.nodes
