(* [FALSESHARE_JOBS] overrides the detected core count for every caller
   that does not pass an explicit job count; a CLI [--jobs] always wins
   because it reaches [map]/[Pool.create] as an explicit argument and
   this function is only the default.  Malformed or non-positive values
   fall back to the detected count rather than erroring: the variable is
   an operator knob, not an API. *)
let default_jobs () =
  match Sys.getenv_opt "FALSESHARE_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> min n 64
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* Pool instrumentation.  Every fan-out measures, per worker, how many
   tasks it claimed, how long it spent running them, and how long it
   spent idle (claim latency plus the tail after the queue drained).
   Task durations additionally land in fixed log-spaced histograms so
   the telemetry layer can expose them without keeping one float per
   task. *)

(* finite upper bounds in seconds; one overflow bucket rides on top *)
let bucket_bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. |]

let nbuckets = Array.length bucket_bounds + 1

type worker_stats = {
  worker : int;
  tasks : int;
  busy_s : float;
  wait_s : float;
  run_hist : int array;
  wait_hist : int array;
}

type stats = {
  jobs : int;
  task_count : int;
  wall_s : float;
  workers : worker_stats array;
}

(* mutable accumulation cell; each worker owns exactly one, so the
   fan-out needs no locking around its bookkeeping *)
type cell = {
  mutable c_tasks : int;
  mutable c_busy : float;
  mutable c_wait : float;
  c_run_hist : int array;
  c_wait_hist : int array;
}

let fresh_cell () =
  { c_tasks = 0; c_busy = 0.; c_wait = 0.;
    c_run_hist = Array.make nbuckets 0; c_wait_hist = Array.make nbuckets 0 }

let observe hist v =
  let n = Array.length bucket_bounds in
  let rec find i = if i >= n || v <= bucket_bounds.(i) then i else find (i + 1) in
  let i = find 0 in
  hist.(i) <- hist.(i) + 1

let finalize worker (c : cell) =
  { worker; tasks = c.c_tasks; busy_s = c.c_busy; wait_s = c.c_wait;
    run_hist = Array.copy c.c_run_hist; wait_hist = Array.copy c.c_wait_hist }

(* The observer is process-global so long-lived front ends (the CLI, the
   bench harness) can fold every internal fan-out — including the ones
   buried inside Experiments and Trace_memo — into one metrics registry
   without threading a recorder through each call site. *)
let observer : (stats -> unit) option ref = ref None
let observer_lock = Mutex.create ()

let set_observer f = Mutex.protect observer_lock (fun () -> observer := f)

let notify s =
  match Mutex.protect observer_lock (fun () -> !observer) with
  | None -> ()
  | Some f -> f s

let map_with_stats ?jobs f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  (* when the caller doesn't say, never exceed the core count —
     oversubscribing OCaml 5 domains serializes on the stop-the-world
     minor GC; an explicit [jobs] is honored (a CI box with one core
     should still produce a 4-worker summary when asked for --jobs 4),
     capped only by the task count and a hard domain-sanity limit *)
  let jobs =
    max 1
      (min
         (min (Option.value jobs ~default:(default_jobs ())) 64)
         (max n 1))
  in
  let t_start = Unix.gettimeofday () in
  if jobs <= 1 || n <= 1 then begin
    let cell = fresh_cell () in
    let results =
      List.map
        (fun x ->
          let t0 = Unix.gettimeofday () in
          let r = f x in
          let dt = Unix.gettimeofday () -. t0 in
          cell.c_tasks <- cell.c_tasks + 1;
          cell.c_busy <- cell.c_busy +. dt;
          observe cell.c_run_hist dt;
          r)
        xs
    in
    let wall = Unix.gettimeofday () -. t_start in
    let s =
      { jobs = 1; task_count = n; wall_s = wall;
        workers = [| finalize 0 cell |] }
    in
    notify s;
    (results, s)
  end
  else begin
    let results = Array.make n None in
    let error : exn option Atomic.t = Atomic.make None in
    let next = Atomic.make 0 in
    let cells = Array.init jobs (fun _ -> fresh_cell ()) in
    let worker w =
      let cell = cells.(w) in
      let rec loop last_end =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get error = None then begin
          let t0 = Unix.gettimeofday () in
          let wait = t0 -. last_end in
          cell.c_wait <- cell.c_wait +. wait;
          observe cell.c_wait_hist wait;
          (match f arr.(i) with
           | v ->
             let t1 = Unix.gettimeofday () in
             cell.c_tasks <- cell.c_tasks + 1;
             cell.c_busy <- cell.c_busy +. (t1 -. t0);
             observe cell.c_run_hist (t1 -. t0);
             results.(i) <- Some v;
             loop t1
           | exception e ->
             let t1 = Unix.gettimeofday () in
             cell.c_tasks <- cell.c_tasks + 1;
             cell.c_busy <- cell.c_busy +. (t1 -. t0);
             observe cell.c_run_hist (t1 -. t0);
             ignore (Atomic.compare_and_set error None (Some e));
             loop t1)
        end
        else
          (* queue drained (or a task failed): the idle tail until the
             join counts as wait so utilization = busy / wall adds up *)
          cell.c_wait <- cell.c_wait +. (Unix.gettimeofday () -. last_end)
      in
      loop (Unix.gettimeofday ())
    in
    let domains = List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
    worker 0;
    List.iter Domain.join domains;
    (match Atomic.get error with Some e -> raise e | None -> ());
    let out =
      Array.to_list
        (Array.map
           (function
             | Some v -> v
             | None -> invalid_arg "Par.map: task dropped (worker died?)")
           results)
    in
    let wall = Unix.gettimeofday () -. t_start in
    let s =
      { jobs; task_count = n; wall_s = wall;
        workers = Array.mapi finalize cells }
    in
    notify s;
    (out, s)
  end

let map ?jobs f xs = fst (map_with_stats ?jobs f xs)
let iter ?jobs f xs = ignore (map ?jobs (fun x -> f x) xs)

(* ------------------------------------------------------------------ *)
(* The persistent pool: [jobs - 1] long-lived domains plus the calling
   domain, reused across many [run] barriers.  [map] above spawns and
   joins per call, which is fine for coarse experiment fan-outs but far
   too expensive for a replay loop that synchronizes once per trace
   chunk; the pool amortizes domain startup over the whole replay.

   A [run] is one generation: the caller publishes a body under the
   mutex, bumps the generation counter, and every worker (the caller
   included, as worker 0) executes [body w] exactly once before the
   caller's barrier releases.  Exceptions are collected first-wins and
   re-raised in the caller after the barrier, leaving the pool usable. *)

module Pool = struct
  type pool = {
    p_jobs : int;
    m : Mutex.t;
    start : Condition.t;
    finished : Condition.t;
    mutable body : (int -> unit) option;
    mutable gen : int;            (* bumped once per run *)
    mutable pending : int;        (* spawned workers still in this gen *)
    mutable stop : bool;
    mutable error : exn option;   (* first failure of the current gen *)
    mutable domains : unit Domain.t list;
    cells : cell array;           (* per-worker accumulation, worker 0 first *)
    mutable runs : int;
    mutable wall : float;         (* summed wall-clock of all runs *)
  }

  type t = pool

  let jobs t = t.p_jobs

  (* one worker's share of one generation, timed into its own cell *)
  let execute t w body =
    let t0 = Unix.gettimeofday () in
    (try body w
     with e ->
       Mutex.protect t.m (fun () ->
           if t.error = None then t.error <- Some e));
    let dt = Unix.gettimeofday () -. t0 in
    let c = t.cells.(w) in
    c.c_tasks <- c.c_tasks + 1;
    c.c_busy <- c.c_busy +. dt;
    observe c.c_run_hist dt

  let worker t w =
    let rec loop seen =
      Mutex.lock t.m;
      while (not t.stop) && t.gen = seen do
        Condition.wait t.start t.m
      done;
      if t.stop then Mutex.unlock t.m
      else begin
        let gen = t.gen in
        let body = Option.get t.body in
        Mutex.unlock t.m;
        execute t w body;
        Mutex.lock t.m;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.finished;
        Mutex.unlock t.m;
        loop gen
      end
    in
    loop 0

  let create ?jobs () =
    let jobs = max 1 (min (Option.value jobs ~default:(default_jobs ())) 64) in
    let t =
      { p_jobs = jobs;
        m = Mutex.create ();
        start = Condition.create ();
        finished = Condition.create ();
        body = None;
        gen = 0;
        pending = 0;
        stop = false;
        error = None;
        domains = [];
        cells = Array.init jobs (fun _ -> fresh_cell ());
        runs = 0;
        wall = 0. }
    in
    t.domains <-
      List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker t (k + 1)));
    t

  let run t body =
    let t0 = Unix.gettimeofday () in
    Mutex.lock t.m;
    if t.stop then begin
      Mutex.unlock t.m;
      invalid_arg "Par.Pool.run: pool is shut down"
    end;
    if t.body <> None then begin
      Mutex.unlock t.m;
      invalid_arg "Par.Pool.run: nested run on the same pool"
    end;
    t.body <- Some body;
    t.error <- None;
    t.gen <- t.gen + 1;
    t.pending <- t.p_jobs - 1;
    Condition.broadcast t.start;
    Mutex.unlock t.m;
    execute t 0 body;
    Mutex.lock t.m;
    while t.pending > 0 do
      Condition.wait t.finished t.m
    done;
    t.body <- None;
    let err = t.error in
    t.error <- None;
    Mutex.unlock t.m;
    t.runs <- t.runs + 1;
    t.wall <- t.wall +. (Unix.gettimeofday () -. t0);
    match err with None -> () | Some e -> raise e

  (* Cumulative over the pool's lifetime.  Wait is derived (wall minus
     busy): the workers block on a condition variable between
     generations, so claim-latency histograms would only measure the
     scheduler. *)
  let stats t =
    { jobs = t.p_jobs;
      task_count = t.runs * t.p_jobs;
      wall_s = t.wall;
      workers =
        Array.mapi
          (fun w c ->
            let s = finalize w c in
            { s with wait_s = Float.max 0. (t.wall -. s.busy_s) })
          t.cells }

  let shutdown t =
    let already =
      Mutex.protect t.m (fun () ->
          let a = t.stop in
          t.stop <- true;
          Condition.broadcast t.start;
          a)
    in
    if not already then begin
      List.iter Domain.join t.domains;
      t.domains <- [];
      if t.runs > 0 then notify (stats t)
    end

  let with_pool ?jobs f =
    let t = create ?jobs () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end

(* ------------------------------------------------------------------ *)
(* The deterministic pool summary: workers in index order, fixed
   columns, fixed number formats — only the measured values vary. *)

let ms s = Printf.sprintf "%.1f ms" (s *. 1000.0)

let utilization (s : stats) (w : worker_stats) =
  if s.wall_s > 0. then w.busy_s /. s.wall_s else 0.

let render_stats (s : stats) =
  let header = [ "worker"; "tasks"; "busy"; "wait"; "util" ] in
  let body =
    Array.to_list
      (Array.map
         (fun w ->
           [ Printf.sprintf "W%d" w.worker;
             string_of_int w.tasks;
             ms w.busy_s;
             ms w.wait_s;
             Table.pct (utilization s w) ])
         s.workers)
  in
  let busy = Array.fold_left (fun acc w -> acc +. w.busy_s) 0. s.workers in
  let total =
    [ "total"; string_of_int s.task_count; ms busy; "-";
      (if s.wall_s > 0. then
         Table.pct (busy /. (s.wall_s *. float_of_int s.jobs))
       else "-") ]
  in
  Table.render ~header (body @ [ total ])
  ^ Printf.sprintf "%d job(s), %d task(s), wall %s\n" s.jobs s.task_count
      (ms s.wall_s)
