let default_jobs () = Domain.recommended_domain_count ()

let map ?jobs f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  (* clamp once to [1, min (core count) n]: oversubscribing OCaml 5
     domains serializes on the stop-the-world minor GC and only adds
     overhead, and more domains than tasks would sit idle *)
  let cores = default_jobs () in
  let jobs = max 1 (min (Option.value jobs ~default:cores) (min cores n)) in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let error : exn option Atomic.t = Atomic.make None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && Atomic.get error = None then begin
        (match f arr.(i) with
         | v -> results.(i) <- Some v
         | exception e -> ignore (Atomic.compare_and_set error None (Some e)));
        worker ()
      end
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map
         (function
           | Some v -> v
           | None -> invalid_arg "Par.map: task dropped (worker died?)")
         results)
  end

let iter ?jobs f xs = ignore (map ?jobs (fun x -> f x) xs)
