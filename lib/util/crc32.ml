(* CRC-32 (IEEE 802.3, the zlib polynomial), table-driven, one byte per
   step.  Used by the v2 trace format to checksum each event block and
   the trailing index, so bit rot surfaces as a typed [Corrupt] naming
   the damaged block instead of silently wrong replay counts. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(* running CRCs are carried pre-inverted (the usual ~crc register form);
   [start] and [finish] do the inversions once per checksum *)
let start = 0xffffffff
let finish crc = crc lxor 0xffffffff

let[@inline] byte crc b =
  let t = Lazy.force table in
  Array.unsafe_get t ((crc lxor b) land 0xff) lxor (crc lsr 8)

let string_sub crc s pos len =
  let t = Lazy.force table in
  let c = ref crc in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get t ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c

let bigstring_sub crc (b : bigstring) pos len =
  let t = Lazy.force table in
  let c = ref crc in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get t
        ((!c lxor Char.code (Bigarray.Array1.unsafe_get b i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c

let of_string s = finish (string_sub start s 0 (String.length s))

let of_bigstring_sub b pos len = finish (bigstring_sub start b pos len)
