(** SHA-256 (FIPS 180-4), pure OCaml.

    The content-addressed result store keys every cached analysis by the
    hash of (program text × version × layout × block size); the stdlib
    only ships MD5 ([Digest]), so the serve layer brings its own digest.
    One-shot and streaming interfaces; verified against the NIST
    short-message vectors in the test suite. *)

type ctx

val init : unit -> ctx
val feed : ctx -> string -> unit
(** Absorb bytes; may be called any number of times. *)

val hex : ctx -> string
(** Finalize and return the 64-character lowercase hex digest.  The
    context must not be fed again afterwards. *)

val digest_hex : string -> string
(** One-shot [init |> feed |> hex]. *)
