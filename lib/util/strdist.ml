let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) Fun.id in
    let curr = Array.make (lb + 1) 0 in
    for i = 1 to la do
      curr.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let suggest ?(max_dist = 2) query candidates =
  let q = String.lowercase_ascii query in
  List.mapi (fun i c -> (levenshtein q (String.lowercase_ascii c), i, c)) candidates
  |> List.filter (fun (d, _, _) -> d <= max_dist)
  |> List.sort (fun (d1, i1, _) (d2, i2, _) -> compare (d1, i1) (d2, i2))
  |> List.map (fun (_, _, c) -> c)
