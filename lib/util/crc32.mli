(** CRC-32 (IEEE 802.3 polynomial, as in zlib and gzip).

    Checksums are 32-bit values returned as non-negative OCaml ints.
    The incremental interface carries the conventional inverted
    register: begin with {!start}, fold bytes with {!byte} /
    {!string_sub} / {!bigstring_sub}, and {!finish} to obtain the
    checksum. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val start : int
val finish : int -> int

val byte : int -> int -> int
(** [byte crc b] folds the byte [b] (low 8 bits) into a running crc. *)

val string_sub : int -> string -> int -> int -> int
val bigstring_sub : int -> bigstring -> int -> int -> int

val of_string : string -> int
(** One-shot checksum of a whole string. *)

val of_bigstring_sub : bigstring -> int -> int -> int
(** One-shot checksum of [len] bytes of a mapped region from [pos]. *)
