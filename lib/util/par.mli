(** A minimal work-stealing-free domain pool.

    [map ~jobs f xs] applies [f] to every element of [xs] on up to [jobs]
    OCaml 5 domains (the calling domain participates, so [jobs] is the
    total degree of parallelism) and returns the results {e in input
    order} — results never depend on [jobs], only wall-clock does.  Tasks
    are claimed from a shared atomic counter, so long and short tasks mix
    without static partitioning.

    [f] must be domain-safe: it may freely read shared immutable data
    (programs, recorded traces, plans) but must own any mutable state it
    touches (caches, layouts, machines it creates itself).

    If any task raises, the first exception observed is re-raised in the
    caller after all domains join; remaining queued tasks are abandoned. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [jobs] defaults to {!default_jobs}; values below 1 mean 1 (purely
    sequential, no domains spawned), and values above {!default_jobs}
    are clamped to it — oversubscribing domains only adds stop-the-world
    GC overhead, and results don't depend on [jobs] anyway. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
