(** A minimal work-stealing-free domain pool, instrumented.

    [map ~jobs f xs] applies [f] to every element of [xs] on up to [jobs]
    OCaml 5 domains (the calling domain participates, so [jobs] is the
    total degree of parallelism) and returns the results {e in input
    order} — results never depend on [jobs], only wall-clock does.  Tasks
    are claimed from a shared atomic counter, so long and short tasks mix
    without static partitioning.

    [f] must be domain-safe: it may freely read shared immutable data
    (programs, recorded traces, plans) but must own any mutable state it
    touches (caches, layouts, machines it creates itself).

    If any task raises, the first exception observed is re-raised in the
    caller after all domains join; remaining queued tasks are abandoned.

    Every fan-out also measures itself: per worker, the number of tasks
    claimed, the time spent running them, the time spent waiting (claim
    latency plus the idle tail after the queue drains), and fixed-bucket
    histograms of per-task run and wait times.  [map_with_stats] returns
    the measurements; [map]/[iter] discard them but still deliver them to
    the {!set_observer} hook, so a front end can fold every internal
    fan-out into one metrics registry. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], unless the [FALSESHARE_JOBS]
    environment variable holds a positive integer, which then takes
    precedence (clamped to 64).  An explicit [?jobs] argument — e.g. a
    CLI [--jobs] — always wins over both, because this function is only
    the default.  Malformed values of the variable are ignored. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [jobs] defaults to {!default_jobs}; values below 1 mean 1 (purely
    sequential, no domains spawned).  An explicit [jobs] above the core
    count is honored (capped at 64 and at the task count) — results
    never depend on [jobs], and a one-core CI box asked for [--jobs 4]
    should still measure four workers, just oversubscribed. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit

(** {1 Pool instrumentation} *)

val bucket_bounds : float array
(** Finite upper bounds, in seconds, of the per-task run/wait histograms
    (log-spaced 1µs … 10s); an overflow bucket rides on top, so the
    histogram arrays have [Array.length bucket_bounds + 1] entries. *)

type worker_stats = {
  worker : int;          (** 0 is the calling domain *)
  tasks : int;
  busy_s : float;        (** summed task run time *)
  wait_s : float;        (** claim latency + idle tail until join *)
  run_hist : int array;  (** per-bucket (not cumulative) task run times *)
  wait_hist : int array; (** per-bucket claim-wait times *)
}

type stats = {
  jobs : int;            (** the clamped degree of parallelism *)
  task_count : int;
  wall_s : float;        (** fan-out wall-clock, spawn to last join *)
  workers : worker_stats array;  (** indexed by worker, length [jobs] *)
}

val map_with_stats : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list * stats
(** {!map}, plus the fan-out's measurements.  The sequential path
    (one job or fewer than two tasks) reports a single worker. *)

val utilization : stats -> worker_stats -> float
(** A worker's busy share of the fan-out's wall-clock. *)

val render_stats : stats -> string
(** A deterministic text table — workers in index order, fixed columns
    and number formats — of tasks, busy/wait time, and utilization per
    worker, with a totals row. *)

val set_observer : (stats -> unit) option -> unit
(** Install (or clear) a process-global hook receiving the [stats] of
    every fan-out, including purely sequential ones.  Called on the
    fan-out's calling domain after all workers join.  A {!Pool} delivers
    its cumulative stats to the same hook once, at {!Pool.shutdown}. *)

(** {1 Persistent pool}

    {!map} spawns and joins domains per call — fine for coarse
    experiment fan-outs, far too expensive for a replay loop that
    synchronizes once per trace chunk.  A [Pool.t] keeps [jobs - 1]
    domains alive and reuses them across many {!Pool.run} barriers,
    amortizing domain startup over a whole replay. *)

module Pool : sig
  type t

  val create : ?jobs:int -> unit -> t
  (** Spawn a pool of [jobs] workers total (the calling domain
      participates as worker 0).  [jobs] defaults to {!default_jobs},
      clamped to [1, 64]. *)

  val jobs : t -> int

  val run : t -> (int -> unit) -> unit
  (** One barrier generation: every worker [w] in [0 .. jobs - 1]
      executes [body w] exactly once, and [run] returns only after all
      have finished.  The body must be domain-safe and must own any
      mutable state it touches.  If any worker raises, the first
      exception observed is re-raised in the caller after the barrier;
      the pool remains usable.
      @raise Invalid_argument on a nested [run] from inside a body, or
      after {!shutdown}. *)

  val stats : t -> stats
  (** Cumulative measurements over the pool's lifetime: per worker, the
      number of generations it ran and the time it spent in bodies;
      [wait_s] is derived as total run wall-clock minus busy time, and
      [task_count] counts one task per worker per generation. *)

  val shutdown : t -> unit
  (** Stop and join the workers, then deliver {!stats} to the
      {!set_observer} hook (if any generations ran).  Idempotent. *)

  val with_pool : ?jobs:int -> (t -> 'a) -> 'a
  (** [create], run [f], always [shutdown]. *)
end
