(** Edit distance, for "did you mean …?" suggestions. *)

val levenshtein : string -> string -> int
(** Unit-cost insert/delete/substitute distance; case-sensitive. *)

val suggest : ?max_dist:int -> string -> string list -> string list
(** Candidates within [max_dist] (default 2) of the query, closest first,
    compared case-insensitively; ties break in candidate-list order. *)
