module Ast = Fs_ir.Ast

type config = { seed : int }

let seeded seed = { seed }

type stats = {
  tasks : int;
  steals : int;
  steal_attempts : int;
  inline_runs : int;
}

let prefix = "__sched_"
let top_var = prefix ^ "top"
let bot_var = prefix ^ "bot"
let deq_var = prefix ^ "deq"

let is_sched_var name =
  String.length name >= String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

let default_cap = 64

let uses_tasks (p : Ast.program) =
  List.exists
    (fun (f : Ast.func) ->
      let found = ref false in
      Ast.iter_stmts
        (fun s ->
          match s with Ast.Spawn _ | Ast.Sync -> found := true | _ -> ())
        f.body;
      !found)
    p.funcs

let instrument ?(cap = default_cap) ~nprocs (p : Ast.program) =
  if cap <= 0 then invalid_arg "Sched.instrument: cap must be positive";
  if nprocs <= 0 then invalid_arg "Sched.instrument: nprocs must be positive";
  if List.mem_assoc top_var p.globals then p
  else
    let int_arr n = Ast.Array (Ast.Scalar Ast.Tint, n) in
    {
      p with
      globals =
        p.globals
        @ [
            (top_var, int_arr nprocs);
            (bot_var, int_arr nprocs);
            (deq_var, int_arr (nprocs * cap));
          ];
    }

let deque_cap ~nprocs (p : Ast.program) =
  match List.assoc_opt deq_var p.globals with
  | Some (Ast.Array (Ast.Scalar Ast.Tint, n))
    when nprocs > 0 && n mod nprocs = 0 && n / nprocs > 0 ->
    Some (n / nprocs)
  | _ -> None
