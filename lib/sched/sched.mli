(** The deterministic work-stealing runtime's shared face.

    ParC's [spawn]/[sync] statements are executed by a per-process
    Chase–Lev-style deque scheduler living inside the interpreter
    ({!Fs_interp.Interp}).  This module owns everything about that
    scheduler which the rest of the pipeline needs to see:

    - the {e configuration} (a single PRNG seed — victim selection is
      driven by split streams of {!Fs_util.Rng}, so the whole execution
      is a pure function of the program, [nprocs], and the seed;
      identical seeds give bit-identical traces);
    - the {e scheduler globals}: the deque [top]/[bot] index arrays and
      the slot array are real ParC globals appended by {!instrument}, so
      deque traffic is recorded as ordinary cell events, flows through
      every layout, and exhibits — and can be cured of — false sharing
      like any program data.  Crucially these accesses exist only at run
      time: the static planner walks the AST, never sees them, and so
      leaves them packed (the gap the profile-guided repair closes);
    - the {!stats} the interpreter reports per run.

    Scheduling discipline: help-first (the spawner pushes the child and
    continues), LIFO pop from the owner's bottom, steals from the
    victim's top, victims drawn from a per-thief split PRNG stream with
    a deterministic sweep fallback so progress never depends on luck. *)

type config = { seed : int }

val seeded : int -> config

type stats = {
  tasks : int;          (** tasks spawned over the whole run *)
  steals : int;         (** tasks that migrated between processes *)
  steal_attempts : int; (** steal probes, successful or not *)
  inline_runs : int;    (** spawns run in place because the deque was full *)
}

val prefix : string
(** Name prefix of every scheduler global ([__sched_]).  Phase-level
    write-sharing cross-checks exempt these, like lock cells: they are
    invisible to the static analyses by design. *)

val top_var : string
val bot_var : string
val deq_var : string

val is_sched_var : string -> bool

val default_cap : int
(** Per-process deque capacity used by {!instrument} by default (64). *)

val uses_tasks : Fs_ir.Ast.program -> bool
(** Does any function contain a [spawn] or [sync]? *)

val instrument : ?cap:int -> nprocs:int -> Fs_ir.Ast.program -> Fs_ir.Ast.program
(** Append the scheduler globals ([top]/[bot]: [int\[nprocs\]], slots:
    [int\[nprocs * cap\]]) to a task-parallel program.  Idempotent: a
    program already carrying [__sched_top] is returned unchanged.
    Workload [build] functions call this so the globals are visible to
    layouts, plans, and the repair loop alike. *)

val deque_cap : nprocs:int -> Fs_ir.Ast.program -> int option
(** Recover the per-process capacity from the instrumented slot array,
    or [None] if the program lacks (consistent) scheduler globals. *)
