module Mpcache = Fs_cache.Mpcache
module Listener = Fs_trace.Listener

type config = {
  nprocs : int;
  ring_size : int;
  block : int;
  cache_bytes : int;
  assoc : int;
  work_cpi : int;
  hit_cycles : int;
  same_ring_latency : int;
  cross_ring_latency : int;
  upgrade_latency : int;
  occupancy : int;
  ring_occupancy : int;
  inval_occupancy : int;
  barrier_base : int;
  barrier_slope : int;
}

let default_config ~nprocs =
  {
    nprocs;
    ring_size = 32;
    block = 128;
    cache_bytes = 256 * 1024;
    assoc = 4;
    work_cpi = 4;
    hit_cycles = 1;
    same_ring_latency = 175;
    cross_ring_latency = 600;
    upgrade_latency = 90;
    occupancy = 40;
    ring_occupancy = 8;
    inval_occupancy = 60;
    barrier_base = 400;
    barrier_slope = 25;
  }

type result = {
  cycles : int;
  per_proc : int array;
  mem_stall : int array;
  sync_stall : int array;
  lock_stall : int array;
  cache : Mpcache.counts;
}

type t = {
  cfg : config;
  cache : Mpcache.t;
  clock : int array;
  mem_stall : int array;
  sync_stall : int array;
  lock_stall : int array;
  busy_until : (int, int) Hashtbl.t;  (* block -> cycle it finishes serving *)
  mutable phase_anchor : int;  (* wall time at which the current phase began *)
  mutable ring_cycles : int;   (* interconnect occupancy accrued this phase *)
  at_barrier : bool array;
}

let create cfg =
  {
    cfg;
    cache =
      Mpcache.create
        {
          Mpcache.nprocs = cfg.nprocs;
          block = cfg.block;
          cache_bytes = cfg.cache_bytes;
          assoc = cfg.assoc;
        };
    clock = Array.make cfg.nprocs 0;
    mem_stall = Array.make cfg.nprocs 0;
    sync_stall = Array.make cfg.nprocs 0;
    lock_stall = Array.make cfg.nprocs 0;
    busy_until = Hashtbl.create 256;
    phase_anchor = 0;
    ring_cycles = 0;
    at_barrier = Array.make cfg.nprocs false;
  }

let ring t proc = proc / t.cfg.ring_size

(* Latency of fetching a block supplied by [provider] (or its home node
   when the infinite second level supplies it). *)
let transfer_latency t ~proc ~provider ~block =
  let src = if provider >= 0 then provider else block mod t.cfg.nprocs in
  if ring t proc = ring t src then t.cfg.same_ring_latency
  else t.cfg.cross_ring_latency

(* Every coherence transaction occupies the interconnect, which serves one
   transaction at a time.  Per-processor clocks advance out of order, so
   rather than a cycle-accurate queue the model enforces the constraint at
   the synchronization points: a phase cannot complete faster than the
   serial interconnect time of the coherence traffic it generated (see
   [barrier_release]).  Invalidation traffic from false sharing grows with
   the number of sharers, which is what turns it into the machine-wide
   scalability bottleneck of Section 5. *)
let ring_charge t ~invalidated =
  t.ring_cycles <-
    t.ring_cycles + t.cfg.ring_occupancy + (invalidated * t.cfg.inval_occupancy)

let miss_cost t ~proc ~block ~invalidated latency =
  (* Serialize concurrent misses to the same block: a request arriving
     while the block is still serving an earlier one queues behind it.
     The queueing delay is capped at a full round of waiters, which also
     bounds the effect of cross-processor clock skew. *)
  let queued =
    match Hashtbl.find_opt t.busy_until block with
    | Some busy when busy > t.clock.(proc) ->
      min (busy - t.clock.(proc)) (t.cfg.occupancy * t.cfg.nprocs)
    | _ -> 0
  in
  Hashtbl.replace t.busy_until block
    (max t.clock.(proc) (Option.value (Hashtbl.find_opt t.busy_until block) ~default:0)
     + t.cfg.occupancy);
  ring_charge t ~invalidated;
  queued + latency

let access t ~proc ~write ~addr =
  let block = addr / t.cfg.block in
  let cost =
    match Mpcache.access t.cache ~proc ~write ~addr with
    | Mpcache.Hit -> t.cfg.hit_cycles
    | Mpcache.Upgrade { invalidated } ->
      ring_charge t ~invalidated;
      t.cfg.upgrade_latency
    | Mpcache.Miss { info = { provider; _ }; invalidated } ->
      miss_cost t ~proc ~block ~invalidated
        (transfer_latency t ~proc ~provider ~block)
  in
  t.clock.(proc) <- t.clock.(proc) + cost;
  if cost > t.cfg.hit_cycles then
    t.mem_stall.(proc) <- t.mem_stall.(proc) + cost - t.cfg.hit_cycles

let barrier_release t =
  let latest = ref 0 and any = ref false in
  Array.iteri
    (fun p at ->
      if at then begin
        any := true;
        if t.clock.(p) > !latest then latest := t.clock.(p)
      end)
    t.at_barrier;
  if !any then begin
    (* Interconnect contention: the phase's coherence traffic passes
       through the ring one transaction at a time, so the phase cannot
       complete faster than the serial time of that traffic.  Invalidation
       counts grow with the processor count (more sharers reacquire each
       falsely shared block between writes), which is the memory
       contention that reverses the unoptimized programs' speedup curves
       (Section 5). *)
    let serial_floor = t.phase_anchor + t.ring_cycles in
    let resume =
      max !latest serial_floor
      + t.cfg.barrier_base
      + (t.cfg.barrier_slope * t.cfg.nprocs)
    in
    Array.iteri
      (fun p at ->
        if at then begin
          t.sync_stall.(p) <- t.sync_stall.(p) + resume - t.clock.(p);
          t.clock.(p) <- resume;
          t.at_barrier.(p) <- false
        end)
      t.at_barrier;
    t.phase_anchor <- resume;
    t.ring_cycles <- 0
  end

let listener t =
  {
    Listener.access = (fun ~proc ~write ~addr -> access t ~proc ~write ~addr);
    work =
      (fun ~proc ~amount ->
        t.clock.(proc) <- t.clock.(proc) + (amount * t.cfg.work_cpi));
    barrier_arrive = (fun ~proc -> t.at_barrier.(proc) <- true);
    barrier_release = (fun () -> barrier_release t);
    lock_wait = (fun ~proc:_ ~addr:_ -> ());
    lock_grant =
      (fun ~proc ~addr:_ ~from ->
        (* A contended lock hands over no earlier than its release. *)
        if from >= 0 && t.clock.(from) > t.clock.(proc) then begin
          let stall = t.clock.(from) - t.clock.(proc) in
          t.sync_stall.(proc) <- t.sync_stall.(proc) + stall;
          t.lock_stall.(proc) <- t.lock_stall.(proc) + stall;
          t.clock.(proc) <- t.clock.(from)
        end);
  }

let finish t =
  let latest = Array.fold_left max 0 t.clock in
  let cycles = max latest (t.phase_anchor + t.ring_cycles) in
  {
    cycles;
    per_proc = Array.copy t.clock;
    mem_stall = Array.copy t.mem_stall;
    sync_stall = Array.copy t.sync_stall;
    lock_stall = Array.copy t.lock_stall;
    cache = Mpcache.counts t.cache;
  }

let cache t = t.cache
