(** Execution-time model of a KSR2-like ring-based shared-memory machine.

    Used for the paper's run-time experiments (Figure 4, Table 3): a
    56-processor machine built from two slotted rings of 32 processors,
    512 KB first-level caches (we model the 256 KB data half), a 128-byte
    coherence unit, and remote miss latencies of 175 cycles within a ring
    and 600 cycles across rings (Section 4).

    The model is driven by the interpreter's event stream.  Each processor
    has its own cycle clock:

    - computation advances the clock by [work_cpi] cycles per interpreter
      work unit;
    - memory references run through an embedded {!Fs_cache.Mpcache}
      write-invalidate simulator; hits cost [hit_cycles], upgrades a ring
      round-trip, and misses the same-/cross-ring latency of the provider;
    - every miss also occupies the serviced block for [occupancy] cycles,
      and a processor whose miss finds the block busy queues behind earlier
      requests — this is the memory contention that makes falsely shared
      blocks a scalability bottleneck (Section 5);
    - barriers align the participants' clocks to the latest arrival plus a
      cost that grows with the processor count;
    - a contended lock hands over from the releaser's clock to the waiter.

    Timing does not feed back into the interleaving (the trace is
    schedule-determined); this keeps runs deterministic and preserves the
    phenomena under study, which depend on miss counts and per-block
    queueing rather than on fine-grained timing feedback. *)

type config = {
  nprocs : int;
  ring_size : int;           (** processors per ring (32 on the KSR2) *)
  block : int;               (** coherence unit (128 bytes) *)
  cache_bytes : int;         (** per-processor data cache (256 KB) *)
  assoc : int;
  work_cpi : int;            (** cycles per interpreter work unit *)
  hit_cycles : int;
  same_ring_latency : int;   (** 175 *)
  cross_ring_latency : int;  (** 600 *)
  upgrade_latency : int;     (** invalidation round-trip on a write upgrade *)
  occupancy : int;           (** cycles a block stays busy serving one miss *)
  ring_occupancy : int;      (** interconnect cycles per coherence transaction *)
  inval_occupancy : int;     (** extra interconnect cycles per invalidated copy *)
  barrier_base : int;        (** barrier cost: base + slope * nprocs *)
  barrier_slope : int;
}

val default_config : nprocs:int -> config

type result = {
  cycles : int;               (** the run's makespan: latest processor clock *)
  per_proc : int array;       (** final clock of each processor *)
  mem_stall : int array;      (** cycles spent in misses/queueing, per processor *)
  sync_stall : int array;     (** cycles spent waiting at barriers and locks *)
  lock_stall : int array;     (** the lock-serialization share of [sync_stall];
                                  barrier idle time is the difference *)
  cache : Fs_cache.Mpcache.counts;  (** protocol totals at 128-byte blocks *)
}

type t

val create : config -> t
val listener : t -> Fs_trace.Listener.t
val cache : t -> Fs_cache.Mpcache.t
(** The embedded protocol simulator (for per-processor telemetry). *)

val finish : t -> result
(** Call after the interpreter run driving {!listener} has completed. *)
