type entry = { name : string; seconds : float; events : int }

type cell = { mutable secs : float; mutable evs : int }

type t = {
  tbl : (string, cell) Hashtbl.t;
  mutable order : string list;  (* reversed *)
}

let create () = { tbl = Hashtbl.create 16; order = [] }

let cell_of t name =
  match Hashtbl.find_opt t.tbl name with
  | Some c -> c
  | None ->
    let c = { secs = 0.0; evs = 0 } in
    Hashtbl.add t.tbl name c;
    t.order <- name :: t.order;
    c

let time t ?events name f =
  let c = cell_of t name in
  let t0 = Unix.gettimeofday () in
  let record () = c.secs <- c.secs +. (Unix.gettimeofday () -. t0) in
  match f () with
  | r ->
    record ();
    (match events with Some ev -> c.evs <- c.evs + ev r | None -> ());
    r
  | exception e ->
    record ();
    raise e

let entries t =
  List.rev_map
    (fun name ->
      let c = Hashtbl.find t.tbl name in
      { name; seconds = c.secs; events = c.evs })
    t.order

let total_seconds t = List.fold_left (fun acc e -> acc +. e.seconds) 0.0 (entries t)

let render t =
  let total = total_seconds t in
  let header = [ "phase"; "time"; "share"; "events" ] in
  let body =
    List.map
      (fun e ->
        [ e.name;
          Printf.sprintf "%.1f ms" (e.seconds *. 1000.0);
          (if total > 0.0 then Fs_util.Table.pct (e.seconds /. total) else "-");
          (if e.events > 0 then string_of_int e.events else "-") ])
      (entries t)
  in
  Fs_util.Table.render ~header body

let to_json t =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [ ("phase", Json.String e.name);
             ("seconds", Json.float e.seconds);
             ("events", Json.Int e.events) ])
       (entries t))
