(** A timeline recorder for interpreter runs, exported as Chrome
    trace-event JSON (loadable in Perfetto or chrome://tracing).

    The recorder is a {!Fs_trace.Listener.t}: attach it (possibly combined
    with the cache or machine listener) to an [Interp.run] and it captures

    - per-processor {b work segments} — one duration slice per batch of
      work units, annotated with the accesses issued since the previous
      slice;
    - {b barrier episodes} — a "barrier wait" slice per processor from its
      arrival to the episode's release (the latest arrival), plus a global
      instant event at the release;
    - {b lock contention} — a "lock wait" slice from a processor's failed
      acquire to its grant, ending no earlier than the granting
      processor's clock.

    Time is the interpreter's logical time: one work unit = one
    microsecond of trace time.  The trace is not cycle-accurate (that is
    the KSR2 model's job); it shows {e structure} — phase lengths, barrier
    skew, and lock convoys. *)

type t

val create : nprocs:int -> t

val listener : t -> Fs_trace.Listener.t
(** Events for out-of-range processors are ignored. *)

val events : t -> int
(** Number of trace events recorded so far. *)

val time : t -> int
(** The recorder's current logical time: the furthest per-processor
    clock.  Barrier releases leave every clock equal, so sampled there it
    is {e the} global time — where per-epoch counter samples belong. *)

val slice :
  t ->
  name:string ->
  ts:int ->
  dur:int ->
  tid:int ->
  args:(string * Json.t) list ->
  unit
(** Append a duration event ([ph = "X"]) directly — the escape hatch for
    recorders that are not interpreter listeners (the {!Span} export). *)

val counter : t -> name:string -> ts:int -> values:(string * float) list -> unit
(** Append a Chrome counter event ([ph = "C"]): a named track of stacked
    series sampled at [ts].  Used for the per-epoch miss-class tracks —
    one sample per barrier release — so Perfetto draws false sharing over
    the run's phase structure. *)

val to_json : t -> Json.t
(** The full trace: [{"traceEvents": [...], "displayTimeUnit": "ms"}].
    Includes process/thread-name metadata events. *)

val write_file : t -> string -> unit
(** Write the trace (pretty-printed) to a file. *)
