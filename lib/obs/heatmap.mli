(** ASCII intensity grids and bar charts for terminal forensics output.

    The phase-resolved reports need two shapes no {!Fs_util.Table} covers:
    a dense processor × epoch grid where each cell is one shaded
    character (so 32 processors × 40 epochs still fits a terminal), and
    labeled horizontal bars for histograms.  Intensity is log-scaled —
    false-sharing counts are heavy-tailed, and a linear ramp would render
    everything but the hottest cell as blank. *)

val render :
  ?row_label:(int -> string) ->
  ?col_tick:int ->
  float array array ->
  string
(** [render values] draws one character per cell, rows top to bottom.
    Ragged rows are padded as empty.  [row_label] (default [P<i>])
    prefixes each row; [col_tick] (default 5) spaces the column ruler
    printed above the grid.  A legend line maps the palette back to the
    value range in fixed two-decimal formatting (never scientific
    notation, so report output diffs stably).  An all-zero grid renders
    every cell as ['.'] with a [0.00] legend.  Empty input renders as an
    empty string. *)

val bars : ?width:int -> (string * int) list -> string
(** [bars rows] draws one labeled horizontal bar per (label, count),
    linearly scaled so the largest count spans [width] (default 40)
    characters, with the count printed after the bar. *)
