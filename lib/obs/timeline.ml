(* Chrome trace-event records, accumulated in reverse order.

   The trace-event format (the "JSON Array Format" of the Trace Event
   spec) wants, per event: name, ph (phase: "X" duration, "i" instant,
   "M" metadata), ts/dur in microseconds, pid, tid, and free-form args. *)

type ev = {
  name : string;
  ph : string;
  ts : int;
  dur : int;          (* -1 when not a duration event *)
  tid : int;
  scope : string;     (* instant-event scope, "" when absent *)
  args : (string * Json.t) list;
}

type t = {
  nprocs : int;
  clock : int array;            (* per-proc logical time, in work units *)
  accesses : int array;         (* accesses since the last work slice *)
  barrier_at : int array;       (* arrival ts, or -1 *)
  lock_at : (int * int) array;  (* (lock addr, wait-start ts), or (-1,-1) *)
  mutable evs : ev list;
  mutable nevs : int;
}

let create ~nprocs =
  if nprocs <= 0 then invalid_arg "Timeline.create: nprocs must be positive";
  {
    nprocs;
    clock = Array.make nprocs 0;
    accesses = Array.make nprocs 0;
    barrier_at = Array.make nprocs (-1);
    lock_at = Array.make nprocs (-1, -1);
    evs = [];
    nevs = 0;
  }

let push t ev =
  t.evs <- ev :: t.evs;
  t.nevs <- t.nevs + 1

let events t = t.nevs

let slice t ~name ~ts ~dur ~tid ~args =
  push t { name; ph = "X"; ts; dur; tid; scope = ""; args }

let instant t ~name ~ts ~tid ~scope =
  push t { name; ph = "i"; ts; dur = -1; tid; scope; args = [] }

let time t = Array.fold_left max 0 t.clock

let counter t ~name ~ts ~values =
  push t
    { name; ph = "C"; ts; dur = -1; tid = 0; scope = "";
      args = List.map (fun (k, v) -> (k, Json.float v)) values }

let ok t proc = proc >= 0 && proc < t.nprocs

let listener t =
  {
    Fs_trace.Listener.access =
      (fun ~proc ~write:_ ~addr:_ ->
        if ok t proc then t.accesses.(proc) <- t.accesses.(proc) + 1);
    work =
      (fun ~proc ~amount ->
        if ok t proc && amount > 0 then begin
          let args =
            if t.accesses.(proc) > 0 then [ ("accesses", Json.Int t.accesses.(proc)) ]
            else []
          in
          slice t ~name:"work" ~ts:t.clock.(proc) ~dur:amount ~tid:proc ~args;
          t.accesses.(proc) <- 0;
          t.clock.(proc) <- t.clock.(proc) + amount
        end);
    barrier_arrive =
      (fun ~proc -> if ok t proc then t.barrier_at.(proc) <- t.clock.(proc));
    barrier_release =
      (fun () ->
        let release = ref 0 and any = ref false in
        Array.iter
          (fun at ->
            if at >= 0 then begin
              any := true;
              if at > !release then release := at
            end)
          t.barrier_at;
        if !any then begin
          for p = 0 to t.nprocs - 1 do
            let at = t.barrier_at.(p) in
            if at >= 0 then begin
              if !release > at then
                slice t ~name:"barrier wait" ~ts:at ~dur:(!release - at) ~tid:p
                  ~args:[];
              t.clock.(p) <- !release;
              t.barrier_at.(p) <- -1
            end
          done;
          instant t ~name:"barrier release" ~ts:!release ~tid:0 ~scope:"g"
        end);
    lock_wait =
      (fun ~proc ~addr ->
        if ok t proc then t.lock_at.(proc) <- (addr, t.clock.(proc)));
    lock_grant =
      (fun ~proc ~addr ~from ->
        if ok t proc then begin
          match t.lock_at.(proc) with
          | a, start when a = addr && start >= 0 ->
            (* the grant happens no earlier than the releasing processor's
               present — a contended lock serializes its critical sections *)
            let fin =
              if from >= 0 && ok t from then max t.clock.(from) start else start
            in
            slice t
              ~name:(Printf.sprintf "lock 0x%x wait" addr)
              ~ts:start ~dur:(fin - start) ~tid:proc
              ~args:
                (if from >= 0 then [ ("granted_by", Json.Int from) ] else []);
            t.clock.(proc) <- fin;
            t.lock_at.(proc) <- (-1, -1)
          | _ -> ()
        end);
  }

let to_json t =
  let meta =
    Json.Obj
      [ ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String "falseshare interp") ]) ]
    :: List.init t.nprocs (fun p ->
           Json.Obj
             [ ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 0);
               ("tid", Json.Int p);
               ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "P%d" p)) ]) ])
  in
  let body =
    List.rev_map
      (fun ev ->
        let fields =
          [ ("name", Json.String ev.name);
            ("ph", Json.String ev.ph);
            ("ts", Json.Int ev.ts);
            ("pid", Json.Int 0);
            ("tid", Json.Int ev.tid) ]
          @ (if ev.dur >= 0 then [ ("dur", Json.Int ev.dur) ] else [])
          @ (if ev.scope <> "" then [ ("s", Json.String ev.scope) ] else [])
          @ if ev.args <> [] then [ ("args", Json.Obj ev.args) ] else []
        in
        Json.Obj fields)
      t.evs
  in
  Json.Obj
    [ ("traceEvents", Json.List (meta @ body));
      ("displayTimeUnit", Json.String "ms") ]

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel ~compact:false oc (to_json t))
