module Par = Fs_util.Par

let worker_label w = [ ("worker", string_of_int w) ]

let bounds_list = Array.to_list Par.bucket_bounds

let ingest reg (s : Par.stats) =
  Metrics.Counter.incr
    (Metrics.counter reg "pool_maps_total"
       ~help:"Domain-pool fan-outs executed");
  Metrics.Counter.add
    (Metrics.counter reg "pool_tasks_total" ~help:"Tasks run on the domain pool")
    s.Par.task_count;
  Metrics.Gauge.set
    (Metrics.gauge reg "pool_jobs" ~help:"Degree of parallelism of the last fan-out")
    (float_of_int s.Par.jobs);
  Metrics.Gauge.add
    (Metrics.gauge reg "pool_wall_seconds"
       ~help:"Wall-clock seconds spent inside fan-outs")
    s.Par.wall_s;
  Array.iter
    (fun (w : Par.worker_stats) ->
      let labels = worker_label w.Par.worker in
      Metrics.Counter.add
        (Metrics.counter reg ~labels "pool_worker_tasks_total"
           ~help:"Tasks claimed per worker")
        w.Par.tasks;
      Metrics.Gauge.add
        (Metrics.gauge reg ~labels "pool_worker_busy_seconds"
           ~help:"Seconds each worker spent running tasks")
        w.Par.busy_s;
      Metrics.Gauge.add
        (Metrics.gauge reg ~labels "pool_worker_wait_seconds"
           ~help:"Seconds each worker spent waiting (claim latency + idle tail)")
        w.Par.wait_s;
      Metrics.Gauge.set
        (Metrics.gauge reg ~labels "pool_worker_utilization"
           ~help:"Busy share of the last fan-out's wall-clock, per worker")
        (Par.utilization s w);
      Metrics.Histogram.absorb
        (Metrics.histogram reg "pool_task_run_seconds" ~buckets:bounds_list
           ~help:"Per-task run time on the domain pool")
        ~counts:w.Par.run_hist ~sum:w.Par.busy_s;
      Metrics.Histogram.absorb
        (Metrics.histogram reg "pool_task_wait_seconds" ~buckets:bounds_list
           ~help:"Per-claim wait time on the domain pool")
        ~counts:w.Par.wait_hist ~sum:w.Par.wait_s)
    s.Par.workers

let worker_to_json s (w : Par.worker_stats) =
  Json.Obj
    [ ("worker", Json.Int w.Par.worker);
      ("tasks", Json.Int w.Par.tasks);
      ("busy_s", Json.float w.Par.busy_s);
      ("wait_s", Json.float w.Par.wait_s);
      ("utilization", Json.float (Par.utilization s w));
      ("run_hist",
       Json.List (Array.to_list (Array.map (fun n -> Json.Int n) w.Par.run_hist)));
      ("wait_hist",
       Json.List (Array.to_list (Array.map (fun n -> Json.Int n) w.Par.wait_hist))) ]

let to_json (s : Par.stats) =
  Json.Obj
    [ ("jobs", Json.Int s.Par.jobs);
      ("tasks", Json.Int s.Par.task_count);
      ("wall_s", Json.float s.Par.wall_s);
      ("bucket_bounds_s",
       Json.List (List.map (fun b -> Json.float b) bounds_list));
      ("workers",
       Json.List (Array.to_list (Array.map (worker_to_json s) s.Par.workers))) ]
