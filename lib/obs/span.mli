(** Causal spans: nested start/stop timing with parent links, wall-clock
    and allocation deltas, and structured attributes.

    Where {!Profile} answers "how long did each named phase take in
    total", a span recorder keeps the {e tree}: which phase ran inside
    which, in what order, with what arguments.  The pipeline, the
    experiment drivers, the trace memo, the repair loop, and every CLI
    subcommand push spans into the ambient recorder; the result exports
    as an indented text tree, a nested JSON tree, or a Chrome-trace
    {!Timeline} loadable in Perfetto.

    A recorder is single-domain, like the metrics registry.  The ambient
    recorder is {e domain-local}: installing one on the calling domain
    never races the pool's worker domains — on a domain with no recorder,
    {!timed} runs its thunk directly and {!note} is a no-op, so
    instrumented code costs nothing when telemetry is off. *)

type span = {
  id : int;           (** dense, in start order *)
  parent : int;       (** id of the enclosing span, -1 for roots *)
  depth : int;
  name : string;
  mutable attrs : (string * string) list;
  start_s : float;    (** seconds since the recorder was created *)
  mutable dur_s : float;        (** wall seconds; -1.0 while still open *)
  start_alloc : float;
  mutable alloc_bytes : float;  (** GC-allocated bytes; -1.0 while open *)
}

type t

val create : unit -> t

val with_ : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_ t name f] runs [f] inside a fresh span nested under the
    innermost open span.  The span is closed when [f] returns {e or}
    raises (the exception is recorded as an ["error"] attribute and
    re-raised). *)

val attr : t -> string -> string -> unit
(** Attach an attribute to the innermost open span; no-op when no span
    is open. *)

val spans : t -> span list
(** All spans in start order, open ones included. *)

val duration : t -> span -> float
(** The span's wall time; for a still-open span, elapsed so far. *)

val allocated : t -> span -> float
(** The span's allocation delta in bytes (as {!Gc.allocated_bytes}
    measures it, so child spans' allocations are included); for a
    still-open span, allocated so far. *)

(** {1 The ambient recorder} *)

val set_current : t option -> unit
(** Install (or clear) the current domain's ambient recorder. *)

val current : unit -> t option

val timed : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** {!with_} on the ambient recorder; just the thunk when none is
    installed. *)

val note : string -> string -> unit
(** {!attr} on the ambient recorder; no-op when none is installed. *)

(** {1 Export} *)

val render : t -> string
(** The span tree as indented text: name, wall ms, allocation, attrs. *)

val to_json : t -> Json.t
(** A list of root span objects [{"id", "name", "start_s", "wall_s",
    "alloc_bytes", "attrs"?, "children"?}], nesting recursively. *)

val to_timeline : t -> Timeline.t
(** One Chrome-trace duration slice per span (microsecond timestamps),
    ready for {!Timeline.write_file} and Perfetto. *)

val write_file : t -> string -> unit
(** Write {!to_json} (pretty-printed) to a file. *)
