(** Pipeline phase profiling: wall-clock time and an event count per
    stage (parse, analyses, transform, layout, interpretation,
    simulation), in execution order. *)

type entry = {
  name : string;
  seconds : float;
  events : int;  (** stage-defined unit of output: keys, actions, refs… *)
}

type t

val create : unit -> t

val time : t -> ?events:('a -> int) -> string -> (unit -> 'a) -> 'a
(** [time t name f] runs [f], records its wall-clock duration under
    [name], and derives the entry's event count from the result via
    [events] (default 0).  Exceptions propagate; the phase is still
    recorded.  Re-using a name accumulates into the same entry. *)

val entries : t -> entry list
(** In first-use order. *)

val total_seconds : t -> float

val render : t -> string
(** A text table: phase, time, share of total, events. *)

val to_json : t -> Json.t
