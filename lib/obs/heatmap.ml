(* The palette runs blank -> dense; zero cells always print as '.' so a
   sparse matrix still shows its extent, and any nonzero cell is visibly
   distinct from zero even after log scaling. *)
let palette = [| '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let level ~vmax v =
  if v <= 0.0 || vmax <= 0.0 then 0
  else
    let n = Array.length palette - 1 in
    let scaled = log (1.0 +. v) /. log (1.0 +. vmax) in
    max 1 (min n (1 + int_of_float (scaled *. float_of_int (n - 1))))

let render ?(row_label = Printf.sprintf "P%d") ?(col_tick = 5) values =
  let nrows = Array.length values in
  if nrows = 0 then ""
  else begin
    let ncols = Array.fold_left (fun m r -> max m (Array.length r)) 0 values in
    let vmax =
      Array.fold_left
        (fun m r -> Array.fold_left (fun m v -> if v > m then v else m) m r)
        0.0 values
    in
    let gutter =
      Array.fold_left
        (fun m i -> max m (String.length (row_label i)))
        0
        (Array.init nrows (fun i -> i))
    in
    let buf = Buffer.create (nrows * (ncols + gutter + 4)) in
    (* column ruler: a tick index every [col_tick] columns *)
    let ruler = Bytes.make (gutter + 2 + ncols) ' ' in
    let c = ref 0 in
    while !c < ncols do
      let s = string_of_int !c in
      if gutter + 2 + !c + String.length s <= Bytes.length ruler then
        Bytes.blit_string s 0 ruler (gutter + 2 + !c) (String.length s);
      c := !c + max 1 col_tick
    done;
    Buffer.add_string buf (Bytes.to_string ruler);
    Buffer.add_char buf '\n';
    Array.iteri
      (fun i row ->
        let lbl = row_label i in
        Buffer.add_string buf lbl;
        Buffer.add_string buf (String.make (gutter - String.length lbl + 2) ' ');
        for j = 0 to ncols - 1 do
          let v = if j < Array.length row then row.(j) else 0.0 in
          Buffer.add_char buf palette.(level ~vmax v)
        done;
        Buffer.add_char buf '\n')
      values;
    (* fixed two-decimal formatting: %g would switch to scientific
       notation (and width) with the data's magnitude, which breaks
       golden-output diffs of the forensics reports *)
    Buffer.add_string buf
      (Printf.sprintf "%s  ['%c'=0.00 .. '%c'=%.2f, log scale]\n"
         (String.make gutter ' ')
         palette.(0)
         palette.(Array.length palette - 1)
         vmax);
    Buffer.contents buf
  end

let bars ?(width = 40) rows =
  if rows = [] then ""
  else begin
    let vmax = List.fold_left (fun m (_, n) -> max m n) 0 rows in
    let gutter = List.fold_left (fun m (l, _) -> max m (String.length l)) 0 rows in
    let buf = Buffer.create 256 in
    List.iter
      (fun (label, n) ->
        let w =
          if vmax = 0 || n <= 0 then 0
          else max 1 (n * width / vmax)
        in
        Buffer.add_string buf
          (Printf.sprintf "%-*s  %-*s %d\n" gutter label width
             (String.make w '#') n))
      rows;
    Buffer.contents buf
  end
