type span = {
  id : int;
  parent : int;
  depth : int;
  name : string;
  mutable attrs : (string * string) list;
  start_s : float;
  mutable dur_s : float;        (* -1.0 while open *)
  start_alloc : float;
  mutable alloc_bytes : float;  (* -1.0 while open *)
}

type t = {
  mutable rev_spans : span list;  (* in reverse start order *)
  mutable count : int;
  mutable stack : span list;      (* open spans, innermost first *)
  epoch : float;
}

let create () =
  { rev_spans = []; count = 0; stack = []; epoch = Unix.gettimeofday () }

let now t = Unix.gettimeofday () -. t.epoch

let start t ?(attrs = []) name =
  let parent, depth =
    match t.stack with [] -> (-1, 0) | s :: _ -> (s.id, s.depth + 1)
  in
  let sp =
    { id = t.count; parent; depth; name; attrs; start_s = now t; dur_s = -1.0;
      start_alloc = Gc.allocated_bytes (); alloc_bytes = -1.0 }
  in
  t.count <- t.count + 1;
  t.rev_spans <- sp :: t.rev_spans;
  t.stack <- sp :: t.stack;
  sp

let finish t sp =
  (match t.stack with
   | s :: rest when s == sp -> t.stack <- rest
   | _ -> invalid_arg "Span.finish: span is not the innermost open span");
  sp.dur_s <- now t -. sp.start_s;
  sp.alloc_bytes <- Gc.allocated_bytes () -. sp.start_alloc

let with_ t ?attrs name f =
  let sp = start t ?attrs name in
  match f () with
  | r ->
    finish t sp;
    r
  | exception e ->
    sp.attrs <- sp.attrs @ [ ("error", Printexc.to_string e) ];
    finish t sp;
    raise e

let attr t key value =
  match t.stack with
  | [] -> ()
  | sp :: _ -> sp.attrs <- sp.attrs @ [ (key, value) ]

let spans t = List.rev t.rev_spans

(* durations of still-open spans read as "elapsed so far", so a live
   recorder (the CLI's root command span, say) renders sensibly *)
let duration t sp = if sp.dur_s >= 0. then sp.dur_s else now t -. sp.start_s

let allocated t sp =
  ignore t;
  if sp.alloc_bytes >= 0. then sp.alloc_bytes
  else Gc.allocated_bytes () -. sp.start_alloc

(* ------------------------------------------------------------------ *)
(* The ambient recorder: one per domain, so worker domains of the pool
   never race the caller's recorder — on a domain with no recorder
   installed, [timed] is a tail call to the thunk and [note] a no-op.  *)

let ambient : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let set_current o = Domain.DLS.set ambient o
let current () = Domain.DLS.get ambient

let timed ?attrs name f =
  match Domain.DLS.get ambient with
  | None -> f ()
  | Some t -> with_ t ?attrs name f

let note key value =
  match Domain.DLS.get ambient with None -> () | Some t -> attr t key value

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

(* children of each span, in start order, via one pass over the list *)
let children_of t =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      let siblings = Option.value ~default:[] (Hashtbl.find_opt tbl sp.parent) in
      Hashtbl.replace tbl sp.parent (sp :: siblings))
    t.rev_spans;
  (* rev_spans is reversed, so each bucket came out in start order *)
  fun id -> Option.value ~default:[] (Hashtbl.find_opt tbl id)

let to_json t =
  let children = children_of t in
  let rec build sp =
    Json.Obj
      ([ ("id", Json.Int sp.id);
         ("name", Json.String sp.name);
         ("start_s", Json.float sp.start_s);
         ("wall_s", Json.float (duration t sp));
         ("alloc_bytes", Json.float (allocated t sp)) ]
       @ (if sp.attrs = [] then []
          else
            [ ("attrs",
               Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) sp.attrs)) ])
       @
       match children sp.id with
       | [] -> []
       | kids -> [ ("children", Json.List (List.map build kids)) ])
  in
  Json.List (List.map build (children (-1)))

let human_bytes b =
  if b >= 1048576.0 then Printf.sprintf "%.1f MB" (b /. 1048576.0)
  else if b >= 1024.0 then Printf.sprintf "%.1f KB" (b /. 1024.0)
  else Printf.sprintf "%.0f B" b

let render t =
  let buf = Buffer.create 512 in
  let children = children_of t in
  let rec walk sp =
    let label = String.make (2 * sp.depth) ' ' ^ sp.name in
    Buffer.add_string buf
      (Printf.sprintf "%-40s  %9.1f ms  %10s%s\n" label
         (duration t sp *. 1000.0)
         (human_bytes (allocated t sp))
         (match sp.attrs with
          | [] -> ""
          | attrs ->
            "  "
            ^ String.concat " "
                (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs)));
    List.iter walk (children sp.id)
  in
  List.iter walk (children (-1));
  Buffer.contents buf

let to_timeline t =
  let tl = Timeline.create ~nprocs:1 in
  List.iter
    (fun sp ->
      Timeline.slice tl ~name:sp.name
        ~ts:(int_of_float (sp.start_s *. 1e6))
        ~dur:(int_of_float (duration t sp *. 1e6))
        ~tid:0
        ~args:
          (("alloc_bytes", Json.float (allocated t sp))
           :: List.map (fun (k, v) -> (k, Json.String v)) sp.attrs))
    (spans t);
  tl

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel ~compact:false oc (to_json t);
      output_char oc '\n')
