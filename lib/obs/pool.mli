(** The bridge from {!Fs_util.Par}'s pool measurements into the
    telemetry layer: fold fan-out stats into a {!Metrics} registry (so
    the Prometheus surface gains per-worker task counts, busy/wait
    gauges, utilization, and run/wait-time histograms), or serialize
    them as JSON.

    Typical wiring, done once per process:
    {[ Fs_util.Par.set_observer
         (Some (Fs_obs.Pool.ingest (Fs_obs.Metrics.global ()))) ]} *)

val ingest : Metrics.t -> Fs_util.Par.stats -> unit
(** Accumulate one fan-out's measurements: counters and busy/wait
    seconds add up across fan-outs, [pool_jobs] and per-worker
    utilization reflect the latest one, and the per-task run/wait
    histograms absorb the pool's fixed-bucket counts. *)

val to_json : Fs_util.Par.stats -> Json.t
(** [{"jobs", "tasks", "wall_s", "bucket_bounds_s", "workers": [...]}]
    with per-worker tasks, busy/wait seconds, utilization, and raw
    histogram bucket counts. *)
