(** A labeled metrics registry: counters, gauges, and histograms.

    Every stage of the pipeline registers what it measures here — the
    interpreter its work units, barrier waits, and lock contention; the
    cache simulator its per-processor misses, invalidations, and upgrades;
    the KSR2 model its stall cycles — so a run's telemetry is one
    structure, renderable as text or JSON.

    Metrics are identified by name plus a label set; asking twice for the
    same (name, labels) returns the same instrument.  Registries are
    single-threaded, like everything in the simulator. *)

type t

val create : unit -> t

val global : unit -> t
(** The process-global registry.  Long-lived front ends (the CLI, the
    bench harness) accumulate cross-cutting telemetry here — pool
    fan-out stats, command timings — and dump it with [--metrics-out]. *)

type labels = (string * string) list

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit

  val count : t -> int
  val sum : t -> float

  val buckets : t -> (float * int) list
  (** Upper bound of each bucket (the last is [infinity]) with the
      {e cumulative} count of observations at or below it. *)

  val absorb : t -> counts:int array -> sum:float -> unit
  (** Merge pre-bucketed observations: [counts] are {e per-bucket} (not
      cumulative) counts, one per finite bound plus the overflow bucket,
      and [sum] is the sum of the underlying observations.  Used to fold
      the domain pool's fixed-bucket task histograms into a registry.
      @raise Invalid_argument if the bucket counts don't line up. *)
end

val counter : t -> ?labels:labels -> ?help:string -> string -> Counter.t
val gauge : t -> ?labels:labels -> ?help:string -> string -> Gauge.t

val histogram :
  t -> ?labels:labels -> ?help:string -> ?buckets:float list -> string ->
  Histogram.t
(** [buckets] are the finite upper bounds, sorted ascending; a catch-all
    [infinity] bucket is appended.  Defaults to powers of ten from 1 to
    1e6.  The bucket list of an existing histogram is not changed.

    For all three: [help] sets the metric's [# HELP] text; the first
    registration to supply one wins.

    Metric and label names are validated against the Prometheus grammar
    at registration time — metric names must match
    [[a-zA-Z_:][a-zA-Z0-9_:]*], label names [[a-zA-Z_][a-zA-Z0-9_]*] —
    because a dash or a leading digit would render an exposition no
    scraper accepts.
    @raise Invalid_argument on a name outside the grammar. *)

val listener : t -> Fs_trace.Listener.t
(** Instrument an interpreter run: counts work units and accesses per
    processor, barrier arrivals and releases, lock waits and grants
    (contended grants — those handed over by another processor — counted
    separately). *)

val to_json : t -> Json.t
(** An array of metric objects
    [{"name", "type", "labels", "value" | "count"/"sum"/"buckets"}],
    sorted by name then labels. *)

val render : t -> string
(** The Prometheus text exposition format: series grouped per metric
    under [# HELP] (when registered) and [# TYPE] headers; histograms
    emit the cumulative [_bucket{le="..."}] series ending at
    [le="+Inf"], then [_sum] and [_count].  Label values escape
    backslash, double quote, and newline; HELP text escapes backslash
    and newline. *)

val write_file : t -> string -> unit
(** Write {!render} to a file. *)
