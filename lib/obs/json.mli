(** A minimal JSON tree, serializer, and parser.

    The telemetry layer emits every experiment record as JSON so the
    benchmark trajectory, regression checks, and external viewers
    (Perfetto for timelines) can consume pipeline output without scraping
    text tables.  The parser exists so the test suite can round-trip
    everything the emitters produce; it accepts standard JSON (RFC 8259)
    and nothing more. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?compact:bool -> t -> string
(** Serialize.  [compact] (default [true]) omits all whitespace; otherwise
    the output is indented two spaces per level.  Floats are printed with
    enough digits to round-trip; non-finite floats become [null]. *)

val to_channel : ?compact:bool -> out_channel -> t -> unit

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.  Numbers
    without [.], [e] or [E] parse as [Int]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing fields or non-objects. *)

val get_int : t -> int option
(** [Int n] and integral [Float]s. *)

val get_float : t -> float option
(** [Float] and [Int]. *)

val get_string : t -> string option
val get_list : t -> t list option
val get_bool : t -> bool option

val float : float -> t
(** [Float], except non-finite values become [Null] (JSON has no
    representation for them). *)
