type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let float f = if Float.is_finite f then Float f else Null

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_buffer ~compact buf t =
  let nl indent =
    if not compact then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          go (indent + 2) item)
        items;
      nl indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          escape buf k;
          Buffer.add_char buf ':';
          if not compact then Buffer.add_char buf ' ';
          go (indent + 2) v)
        fields;
      nl indent;
      Buffer.add_char buf '}'
  in
  go 0 t

let to_string ?(compact = true) t =
  let buf = Buffer.create 1024 in
  to_buffer ~compact buf t;
  Buffer.contents buf

let to_channel ?(compact = true) oc t =
  let buf = Buffer.create 4096 in
  to_buffer ~compact buf t;
  Buffer.output_buffer oc buf;
  if not compact then output_char oc '\n'

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" !pos m))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C, found %C" c c'
    | None -> fail "expected %C, found end of input" c
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           (* encode the code point as UTF-8; surrogate pairs are not
              recombined — the emitters never produce them *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
           end
         | c -> fail "bad escape \\%C" c);
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "invalid number";
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let get_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let get_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_list = function List l -> Some l | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
